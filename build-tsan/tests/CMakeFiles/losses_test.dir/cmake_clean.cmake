file(REMOVE_RECURSE
  "CMakeFiles/losses_test.dir/losses_test.cc.o"
  "CMakeFiles/losses_test.dir/losses_test.cc.o.d"
  "losses_test"
  "losses_test.pdb"
  "losses_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/losses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for embed_extra_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/embed_extra_test.dir/embed_extra_test.cc.o"
  "CMakeFiles/embed_extra_test.dir/embed_extra_test.cc.o.d"
  "embed_extra_test"
  "embed_extra_test.pdb"
  "embed_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embed_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/embed_extra_test.cc" "tests/CMakeFiles/embed_extra_test.dir/embed_extra_test.cc.o" "gcc" "tests/CMakeFiles/embed_extra_test.dir/embed_extra_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/aneci_embed.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_attack.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_anomaly.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_tasks.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_autograd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/modularity_test.dir/modularity_test.cc.o"
  "CMakeFiles/modularity_test.dir/modularity_test.cc.o.d"
  "modularity_test"
  "modularity_test.pdb"
  "modularity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modularity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for modularity_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for parallel_kernels_test.
# This may be replaced when dependencies are built.

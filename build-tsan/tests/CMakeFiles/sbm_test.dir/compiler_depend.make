# Empty compiler generated dependencies file for sbm_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sbm_test.dir/sbm_test.cc.o"
  "CMakeFiles/sbm_test.dir/sbm_test.cc.o.d"
  "sbm_test"
  "sbm_test.pdb"
  "sbm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

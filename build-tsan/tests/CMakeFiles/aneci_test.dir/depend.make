# Empty dependencies file for aneci_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/aneci_test.dir/aneci_test.cc.o"
  "CMakeFiles/aneci_test.dir/aneci_test.cc.o.d"
  "aneci_test"
  "aneci_test.pdb"
  "aneci_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aneci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

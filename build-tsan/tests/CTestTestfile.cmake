# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/util_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/parallel_kernels_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/matrix_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sparse_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/kmeans_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/autograd_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/graph_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/proximity_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/modularity_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sbm_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/metrics_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/logreg_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/losses_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/aneci_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/embed_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/attack_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/anomaly_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/analysis_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/property_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/eigen_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/embed_extra_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/rng_stat_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/table_flags_test[1]_include.cmake")

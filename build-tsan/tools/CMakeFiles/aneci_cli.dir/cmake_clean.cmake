file(REMOVE_RECURSE
  "CMakeFiles/aneci_cli.dir/aneci_cli.cc.o"
  "CMakeFiles/aneci_cli.dir/aneci_cli.cc.o.d"
  "aneci_cli"
  "aneci_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aneci_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

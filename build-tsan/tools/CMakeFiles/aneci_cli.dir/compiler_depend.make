# Empty compiler generated dependencies file for aneci_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/aneci_linalg.dir/linalg/eigen.cc.o"
  "CMakeFiles/aneci_linalg.dir/linalg/eigen.cc.o.d"
  "CMakeFiles/aneci_linalg.dir/linalg/gmm.cc.o"
  "CMakeFiles/aneci_linalg.dir/linalg/gmm.cc.o.d"
  "CMakeFiles/aneci_linalg.dir/linalg/kmeans.cc.o"
  "CMakeFiles/aneci_linalg.dir/linalg/kmeans.cc.o.d"
  "CMakeFiles/aneci_linalg.dir/linalg/matrix.cc.o"
  "CMakeFiles/aneci_linalg.dir/linalg/matrix.cc.o.d"
  "CMakeFiles/aneci_linalg.dir/linalg/sparse.cc.o"
  "CMakeFiles/aneci_linalg.dir/linalg/sparse.cc.o.d"
  "libaneci_linalg.a"
  "libaneci_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aneci_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libaneci_linalg.a"
)

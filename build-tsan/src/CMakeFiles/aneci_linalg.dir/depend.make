# Empty dependencies file for aneci_linalg.
# This may be replaced when dependencies are built.

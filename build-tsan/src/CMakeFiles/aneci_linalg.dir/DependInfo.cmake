
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/eigen.cc" "src/CMakeFiles/aneci_linalg.dir/linalg/eigen.cc.o" "gcc" "src/CMakeFiles/aneci_linalg.dir/linalg/eigen.cc.o.d"
  "/root/repo/src/linalg/gmm.cc" "src/CMakeFiles/aneci_linalg.dir/linalg/gmm.cc.o" "gcc" "src/CMakeFiles/aneci_linalg.dir/linalg/gmm.cc.o.d"
  "/root/repo/src/linalg/kmeans.cc" "src/CMakeFiles/aneci_linalg.dir/linalg/kmeans.cc.o" "gcc" "src/CMakeFiles/aneci_linalg.dir/linalg/kmeans.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/aneci_linalg.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/aneci_linalg.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/sparse.cc" "src/CMakeFiles/aneci_linalg.dir/linalg/sparse.cc.o" "gcc" "src/CMakeFiles/aneci_linalg.dir/linalg/sparse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/aneci_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for aneci_embed.
# This may be replaced when dependencies are built.

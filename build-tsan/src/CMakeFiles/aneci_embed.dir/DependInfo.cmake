
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/age.cc" "src/CMakeFiles/aneci_embed.dir/embed/age.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/age.cc.o.d"
  "/root/repo/src/embed/aneci_embedder.cc" "src/CMakeFiles/aneci_embed.dir/embed/aneci_embedder.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/aneci_embedder.cc.o.d"
  "/root/repo/src/embed/anomaly_dae.cc" "src/CMakeFiles/aneci_embed.dir/embed/anomaly_dae.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/anomaly_dae.cc.o.d"
  "/root/repo/src/embed/dane.cc" "src/CMakeFiles/aneci_embed.dir/embed/dane.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/dane.cc.o.d"
  "/root/repo/src/embed/deepwalk.cc" "src/CMakeFiles/aneci_embed.dir/embed/deepwalk.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/deepwalk.cc.o.d"
  "/root/repo/src/embed/dgi.cc" "src/CMakeFiles/aneci_embed.dir/embed/dgi.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/dgi.cc.o.d"
  "/root/repo/src/embed/dominant.cc" "src/CMakeFiles/aneci_embed.dir/embed/dominant.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/dominant.cc.o.d"
  "/root/repo/src/embed/done.cc" "src/CMakeFiles/aneci_embed.dir/embed/done.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/done.cc.o.d"
  "/root/repo/src/embed/embedder.cc" "src/CMakeFiles/aneci_embed.dir/embed/embedder.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/embedder.cc.o.d"
  "/root/repo/src/embed/gae.cc" "src/CMakeFiles/aneci_embed.dir/embed/gae.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/gae.cc.o.d"
  "/root/repo/src/embed/gat.cc" "src/CMakeFiles/aneci_embed.dir/embed/gat.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/gat.cc.o.d"
  "/root/repo/src/embed/gcn_classifier.cc" "src/CMakeFiles/aneci_embed.dir/embed/gcn_classifier.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/gcn_classifier.cc.o.d"
  "/root/repo/src/embed/graphsage.cc" "src/CMakeFiles/aneci_embed.dir/embed/graphsage.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/graphsage.cc.o.d"
  "/root/repo/src/embed/hope.cc" "src/CMakeFiles/aneci_embed.dir/embed/hope.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/hope.cc.o.d"
  "/root/repo/src/embed/line.cc" "src/CMakeFiles/aneci_embed.dir/embed/line.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/line.cc.o.d"
  "/root/repo/src/embed/one.cc" "src/CMakeFiles/aneci_embed.dir/embed/one.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/one.cc.o.d"
  "/root/repo/src/embed/sdne.cc" "src/CMakeFiles/aneci_embed.dir/embed/sdne.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/sdne.cc.o.d"
  "/root/repo/src/embed/spectral.cc" "src/CMakeFiles/aneci_embed.dir/embed/spectral.cc.o" "gcc" "src/CMakeFiles/aneci_embed.dir/embed/spectral.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/aneci_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_autograd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_tasks.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_anomaly.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libaneci_embed.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aneci.cc" "src/CMakeFiles/aneci_core.dir/core/aneci.cc.o" "gcc" "src/CMakeFiles/aneci_core.dir/core/aneci.cc.o.d"
  "/root/repo/src/core/aneci_plus.cc" "src/CMakeFiles/aneci_core.dir/core/aneci_plus.cc.o" "gcc" "src/CMakeFiles/aneci_core.dir/core/aneci_plus.cc.o.d"
  "/root/repo/src/core/losses.cc" "src/CMakeFiles/aneci_core.dir/core/losses.cc.o" "gcc" "src/CMakeFiles/aneci_core.dir/core/losses.cc.o.d"
  "/root/repo/src/core/sage_encoder.cc" "src/CMakeFiles/aneci_core.dir/core/sage_encoder.cc.o" "gcc" "src/CMakeFiles/aneci_core.dir/core/sage_encoder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/aneci_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_autograd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_tasks.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

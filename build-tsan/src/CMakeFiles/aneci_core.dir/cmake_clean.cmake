file(REMOVE_RECURSE
  "CMakeFiles/aneci_core.dir/core/aneci.cc.o"
  "CMakeFiles/aneci_core.dir/core/aneci.cc.o.d"
  "CMakeFiles/aneci_core.dir/core/aneci_plus.cc.o"
  "CMakeFiles/aneci_core.dir/core/aneci_plus.cc.o.d"
  "CMakeFiles/aneci_core.dir/core/losses.cc.o"
  "CMakeFiles/aneci_core.dir/core/losses.cc.o.d"
  "CMakeFiles/aneci_core.dir/core/sage_encoder.cc.o"
  "CMakeFiles/aneci_core.dir/core/sage_encoder.cc.o.d"
  "libaneci_core.a"
  "libaneci_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aneci_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

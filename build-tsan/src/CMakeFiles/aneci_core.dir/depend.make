# Empty dependencies file for aneci_core.
# This may be replaced when dependencies are built.

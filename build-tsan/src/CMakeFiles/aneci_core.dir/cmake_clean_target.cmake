file(REMOVE_RECURSE
  "libaneci_core.a"
)

file(REMOVE_RECURSE
  "libaneci_data.a"
)

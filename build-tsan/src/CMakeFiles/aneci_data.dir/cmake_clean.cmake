file(REMOVE_RECURSE
  "CMakeFiles/aneci_data.dir/data/datasets.cc.o"
  "CMakeFiles/aneci_data.dir/data/datasets.cc.o.d"
  "CMakeFiles/aneci_data.dir/data/sbm.cc.o"
  "CMakeFiles/aneci_data.dir/data/sbm.cc.o.d"
  "libaneci_data.a"
  "libaneci_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aneci_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

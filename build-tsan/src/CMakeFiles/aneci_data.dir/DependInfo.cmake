
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/datasets.cc" "src/CMakeFiles/aneci_data.dir/data/datasets.cc.o" "gcc" "src/CMakeFiles/aneci_data.dir/data/datasets.cc.o.d"
  "/root/repo/src/data/sbm.cc" "src/CMakeFiles/aneci_data.dir/data/sbm.cc.o" "gcc" "src/CMakeFiles/aneci_data.dir/data/sbm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/aneci_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for aneci_data.
# This may be replaced when dependencies are built.

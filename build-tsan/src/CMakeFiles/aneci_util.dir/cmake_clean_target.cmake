file(REMOVE_RECURSE
  "libaneci_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/aneci_util.dir/util/status.cc.o"
  "CMakeFiles/aneci_util.dir/util/status.cc.o.d"
  "CMakeFiles/aneci_util.dir/util/table.cc.o"
  "CMakeFiles/aneci_util.dir/util/table.cc.o.d"
  "CMakeFiles/aneci_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/aneci_util.dir/util/thread_pool.cc.o.d"
  "libaneci_util.a"
  "libaneci_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aneci_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

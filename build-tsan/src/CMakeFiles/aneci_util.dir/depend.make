# Empty dependencies file for aneci_util.
# This may be replaced when dependencies are built.

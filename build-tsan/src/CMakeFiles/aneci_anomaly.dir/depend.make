# Empty dependencies file for aneci_anomaly.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libaneci_anomaly.a"
)

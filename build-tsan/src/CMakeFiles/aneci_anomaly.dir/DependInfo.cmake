
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anomaly/anomaly_score.cc" "src/CMakeFiles/aneci_anomaly.dir/anomaly/anomaly_score.cc.o" "gcc" "src/CMakeFiles/aneci_anomaly.dir/anomaly/anomaly_score.cc.o.d"
  "/root/repo/src/anomaly/isolation_forest.cc" "src/CMakeFiles/aneci_anomaly.dir/anomaly/isolation_forest.cc.o" "gcc" "src/CMakeFiles/aneci_anomaly.dir/anomaly/isolation_forest.cc.o.d"
  "/root/repo/src/anomaly/outlier_injection.cc" "src/CMakeFiles/aneci_anomaly.dir/anomaly/outlier_injection.cc.o" "gcc" "src/CMakeFiles/aneci_anomaly.dir/anomaly/outlier_injection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/aneci_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_tasks.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_autograd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/aneci_anomaly.dir/anomaly/anomaly_score.cc.o"
  "CMakeFiles/aneci_anomaly.dir/anomaly/anomaly_score.cc.o.d"
  "CMakeFiles/aneci_anomaly.dir/anomaly/isolation_forest.cc.o"
  "CMakeFiles/aneci_anomaly.dir/anomaly/isolation_forest.cc.o.d"
  "CMakeFiles/aneci_anomaly.dir/anomaly/outlier_injection.cc.o"
  "CMakeFiles/aneci_anomaly.dir/anomaly/outlier_injection.cc.o.d"
  "libaneci_anomaly.a"
  "libaneci_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aneci_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

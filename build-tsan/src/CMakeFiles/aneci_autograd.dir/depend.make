# Empty dependencies file for aneci_autograd.
# This may be replaced when dependencies are built.

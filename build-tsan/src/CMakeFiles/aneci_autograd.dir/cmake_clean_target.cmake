file(REMOVE_RECURSE
  "libaneci_autograd.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/aneci_autograd.dir/autograd/grad_check.cc.o"
  "CMakeFiles/aneci_autograd.dir/autograd/grad_check.cc.o.d"
  "CMakeFiles/aneci_autograd.dir/autograd/ops.cc.o"
  "CMakeFiles/aneci_autograd.dir/autograd/ops.cc.o.d"
  "CMakeFiles/aneci_autograd.dir/autograd/optimizer.cc.o"
  "CMakeFiles/aneci_autograd.dir/autograd/optimizer.cc.o.d"
  "CMakeFiles/aneci_autograd.dir/autograd/variable.cc.o"
  "CMakeFiles/aneci_autograd.dir/autograd/variable.cc.o.d"
  "libaneci_autograd.a"
  "libaneci_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aneci_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/aneci_tasks.dir/tasks/community.cc.o"
  "CMakeFiles/aneci_tasks.dir/tasks/community.cc.o.d"
  "CMakeFiles/aneci_tasks.dir/tasks/logistic_regression.cc.o"
  "CMakeFiles/aneci_tasks.dir/tasks/logistic_regression.cc.o.d"
  "CMakeFiles/aneci_tasks.dir/tasks/metrics.cc.o"
  "CMakeFiles/aneci_tasks.dir/tasks/metrics.cc.o.d"
  "CMakeFiles/aneci_tasks.dir/tasks/node_classification.cc.o"
  "CMakeFiles/aneci_tasks.dir/tasks/node_classification.cc.o.d"
  "libaneci_tasks.a"
  "libaneci_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aneci_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

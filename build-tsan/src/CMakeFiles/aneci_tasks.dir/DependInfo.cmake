
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tasks/community.cc" "src/CMakeFiles/aneci_tasks.dir/tasks/community.cc.o" "gcc" "src/CMakeFiles/aneci_tasks.dir/tasks/community.cc.o.d"
  "/root/repo/src/tasks/logistic_regression.cc" "src/CMakeFiles/aneci_tasks.dir/tasks/logistic_regression.cc.o" "gcc" "src/CMakeFiles/aneci_tasks.dir/tasks/logistic_regression.cc.o.d"
  "/root/repo/src/tasks/metrics.cc" "src/CMakeFiles/aneci_tasks.dir/tasks/metrics.cc.o" "gcc" "src/CMakeFiles/aneci_tasks.dir/tasks/metrics.cc.o.d"
  "/root/repo/src/tasks/node_classification.cc" "src/CMakeFiles/aneci_tasks.dir/tasks/node_classification.cc.o" "gcc" "src/CMakeFiles/aneci_tasks.dir/tasks/node_classification.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/aneci_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_autograd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

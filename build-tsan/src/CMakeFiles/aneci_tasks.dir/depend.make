# Empty dependencies file for aneci_tasks.
# This may be replaced when dependencies are built.

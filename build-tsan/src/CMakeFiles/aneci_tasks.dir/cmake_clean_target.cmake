file(REMOVE_RECURSE
  "libaneci_tasks.a"
)

# Empty dependencies file for aneci_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/aneci_graph.dir/graph/components.cc.o"
  "CMakeFiles/aneci_graph.dir/graph/components.cc.o.d"
  "CMakeFiles/aneci_graph.dir/graph/graph.cc.o"
  "CMakeFiles/aneci_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/aneci_graph.dir/graph/graph_io.cc.o"
  "CMakeFiles/aneci_graph.dir/graph/graph_io.cc.o.d"
  "CMakeFiles/aneci_graph.dir/graph/louvain.cc.o"
  "CMakeFiles/aneci_graph.dir/graph/louvain.cc.o.d"
  "CMakeFiles/aneci_graph.dir/graph/modularity.cc.o"
  "CMakeFiles/aneci_graph.dir/graph/modularity.cc.o.d"
  "CMakeFiles/aneci_graph.dir/graph/proximity.cc.o"
  "CMakeFiles/aneci_graph.dir/graph/proximity.cc.o.d"
  "libaneci_graph.a"
  "libaneci_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aneci_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

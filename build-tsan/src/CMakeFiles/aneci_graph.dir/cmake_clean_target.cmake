file(REMOVE_RECURSE
  "libaneci_graph.a"
)

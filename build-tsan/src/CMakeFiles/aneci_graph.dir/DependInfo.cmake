
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/components.cc" "src/CMakeFiles/aneci_graph.dir/graph/components.cc.o" "gcc" "src/CMakeFiles/aneci_graph.dir/graph/components.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/aneci_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/aneci_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/aneci_graph.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/aneci_graph.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/louvain.cc" "src/CMakeFiles/aneci_graph.dir/graph/louvain.cc.o" "gcc" "src/CMakeFiles/aneci_graph.dir/graph/louvain.cc.o.d"
  "/root/repo/src/graph/modularity.cc" "src/CMakeFiles/aneci_graph.dir/graph/modularity.cc.o" "gcc" "src/CMakeFiles/aneci_graph.dir/graph/modularity.cc.o.d"
  "/root/repo/src/graph/proximity.cc" "src/CMakeFiles/aneci_graph.dir/graph/proximity.cc.o" "gcc" "src/CMakeFiles/aneci_graph.dir/graph/proximity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/aneci_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

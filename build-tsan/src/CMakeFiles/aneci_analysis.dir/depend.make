# Empty dependencies file for aneci_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libaneci_analysis.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/aneci_analysis.dir/analysis/defense_score.cc.o"
  "CMakeFiles/aneci_analysis.dir/analysis/defense_score.cc.o.d"
  "CMakeFiles/aneci_analysis.dir/analysis/silhouette.cc.o"
  "CMakeFiles/aneci_analysis.dir/analysis/silhouette.cc.o.d"
  "CMakeFiles/aneci_analysis.dir/analysis/tsne.cc.o"
  "CMakeFiles/aneci_analysis.dir/analysis/tsne.cc.o.d"
  "libaneci_analysis.a"
  "libaneci_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aneci_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/defense_score.cc" "src/CMakeFiles/aneci_analysis.dir/analysis/defense_score.cc.o" "gcc" "src/CMakeFiles/aneci_analysis.dir/analysis/defense_score.cc.o.d"
  "/root/repo/src/analysis/silhouette.cc" "src/CMakeFiles/aneci_analysis.dir/analysis/silhouette.cc.o" "gcc" "src/CMakeFiles/aneci_analysis.dir/analysis/silhouette.cc.o.d"
  "/root/repo/src/analysis/tsne.cc" "src/CMakeFiles/aneci_analysis.dir/analysis/tsne.cc.o" "gcc" "src/CMakeFiles/aneci_analysis.dir/analysis/tsne.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/aneci_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/dice.cc" "src/CMakeFiles/aneci_attack.dir/attack/dice.cc.o" "gcc" "src/CMakeFiles/aneci_attack.dir/attack/dice.cc.o.d"
  "/root/repo/src/attack/fga.cc" "src/CMakeFiles/aneci_attack.dir/attack/fga.cc.o" "gcc" "src/CMakeFiles/aneci_attack.dir/attack/fga.cc.o.d"
  "/root/repo/src/attack/nettack.cc" "src/CMakeFiles/aneci_attack.dir/attack/nettack.cc.o" "gcc" "src/CMakeFiles/aneci_attack.dir/attack/nettack.cc.o.d"
  "/root/repo/src/attack/random_attack.cc" "src/CMakeFiles/aneci_attack.dir/attack/random_attack.cc.o" "gcc" "src/CMakeFiles/aneci_attack.dir/attack/random_attack.cc.o.d"
  "/root/repo/src/attack/surrogate.cc" "src/CMakeFiles/aneci_attack.dir/attack/surrogate.cc.o" "gcc" "src/CMakeFiles/aneci_attack.dir/attack/surrogate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/aneci_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_autograd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/aneci_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libaneci_attack.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/aneci_attack.dir/attack/dice.cc.o"
  "CMakeFiles/aneci_attack.dir/attack/dice.cc.o.d"
  "CMakeFiles/aneci_attack.dir/attack/fga.cc.o"
  "CMakeFiles/aneci_attack.dir/attack/fga.cc.o.d"
  "CMakeFiles/aneci_attack.dir/attack/nettack.cc.o"
  "CMakeFiles/aneci_attack.dir/attack/nettack.cc.o.d"
  "CMakeFiles/aneci_attack.dir/attack/random_attack.cc.o"
  "CMakeFiles/aneci_attack.dir/attack/random_attack.cc.o.d"
  "CMakeFiles/aneci_attack.dir/attack/surrogate.cc.o"
  "CMakeFiles/aneci_attack.dir/attack/surrogate.cc.o.d"
  "libaneci_attack.a"
  "libaneci_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aneci_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

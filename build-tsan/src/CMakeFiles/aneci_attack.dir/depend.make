# Empty dependencies file for aneci_attack.
# This may be replaced when dependencies are built.

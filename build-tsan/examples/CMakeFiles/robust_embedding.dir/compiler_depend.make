# Empty compiler generated dependencies file for robust_embedding.
# This may be replaced when dependencies are built.

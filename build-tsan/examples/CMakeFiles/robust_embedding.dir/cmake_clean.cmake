file(REMOVE_RECURSE
  "CMakeFiles/robust_embedding.dir/robust_embedding.cpp.o"
  "CMakeFiles/robust_embedding.dir/robust_embedding.cpp.o.d"
  "robust_embedding"
  "robust_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_community.dir/bench_fig7_community.cc.o"
  "CMakeFiles/bench_fig7_community.dir/bench_fig7_community.cc.o.d"
  "bench_fig7_community"
  "bench_fig7_community.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

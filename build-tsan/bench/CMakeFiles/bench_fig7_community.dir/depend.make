# Empty dependencies file for bench_fig7_community.
# This may be replaced when dependencies are built.

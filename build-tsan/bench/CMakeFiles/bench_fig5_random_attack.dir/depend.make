# Empty dependencies file for bench_fig5_random_attack.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_random_attack.dir/bench_fig5_random_attack.cc.o"
  "CMakeFiles/bench_fig5_random_attack.dir/bench_fig5_random_attack.cc.o.d"
  "bench_fig5_random_attack"
  "bench_fig5_random_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_random_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

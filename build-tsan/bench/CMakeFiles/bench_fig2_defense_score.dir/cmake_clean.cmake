file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_defense_score.dir/bench_fig2_defense_score.cc.o"
  "CMakeFiles/bench_fig2_defense_score.dir/bench_fig2_defense_score.cc.o.d"
  "bench_fig2_defense_score"
  "bench_fig2_defense_score.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_defense_score.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig2_defense_score.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_table3_node_classification.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig6_anomaly.
# This may be replaced when dependencies are built.

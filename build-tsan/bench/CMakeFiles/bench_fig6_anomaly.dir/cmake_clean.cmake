file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_anomaly.dir/bench_fig6_anomaly.cc.o"
  "CMakeFiles/bench_fig6_anomaly.dir/bench_fig6_anomaly.cc.o.d"
  "bench_fig6_anomaly"
  "bench_fig6_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig9_hops_rigidity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_hops_rigidity.dir/bench_fig9_hops_rigidity.cc.o"
  "CMakeFiles/bench_fig9_hops_rigidity.dir/bench_fig9_hops_rigidity.cc.o.d"
  "bench_fig9_hops_rigidity"
  "bench_fig9_hops_rigidity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_hops_rigidity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

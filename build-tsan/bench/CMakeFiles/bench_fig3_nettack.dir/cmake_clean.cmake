file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_nettack.dir/bench_fig3_nettack.cc.o"
  "CMakeFiles/bench_fig3_nettack.dir/bench_fig3_nettack.cc.o.d"
  "bench_fig3_nettack"
  "bench_fig3_nettack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_nettack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_comparison.dir/bench_attack_comparison.cc.o"
  "CMakeFiles/bench_attack_comparison.dir/bench_attack_comparison.cc.o.d"
  "bench_attack_comparison"
  "bench_attack_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_attack_comparison.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_fga.dir/bench_fig4_fga.cc.o"
  "CMakeFiles/bench_fig4_fga.dir/bench_fig4_fga.cc.o.d"
  "bench_fig4_fga"
  "bench_fig4_fga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

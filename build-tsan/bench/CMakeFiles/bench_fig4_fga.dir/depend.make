# Empty dependencies file for bench_fig4_fga.
# This may be replaced when dependencies are built.

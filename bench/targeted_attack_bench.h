// Shared driver for the targeted-attack defense figures (Fig. 3 NETTACK,
// Fig. 4 FGA): attack selected high-degree test nodes with 1..5 edge
// perturbations each, retrain every model on the poisoned graph, and report
// classification accuracy on the targets.
#ifndef ANECI_BENCH_TARGETED_ATTACK_BENCH_H_
#define ANECI_BENCH_TARGETED_ATTACK_BENCH_H_

#include <functional>

#include "attack/surrogate.h"
#include "bench/common.h"
#include "core/aneci_plus.h"
#include "embed/gcn_classifier.h"
#include "tasks/metrics.h"
#include "tasks/node_classification.h"
#include "util/table.h"

namespace aneci::bench {

using AttackFn = std::function<Graph(const Dataset&, const std::vector<int>&,
                                     int perturbations, Rng&)>;

inline double EvaluateMethodOnTargets(const std::string& method,
                                      const Dataset& ds,
                                      const Graph& attacked,
                                      const std::vector<int>& targets,
                                      const BenchEnv& env, Rng& rng) {
  // The dataset's labels/splits stay clean; only the structure is poisoned.
  Dataset poisoned = ds;
  poisoned.graph = attacked;
  poisoned.graph.SetLabels(ds.graph.labels());

  if (method == "GCN" || method == "RGCN") {
    GcnClassifier::Options opt;
    opt.epochs = env.epochs;
    opt.robust = method == "RGCN";
    GcnClassifier model(opt);
    model.Fit(poisoned, rng);
    return model.Accuracy(poisoned, targets);
  }
  Matrix z;
  if (method == "AnECI") {
    z = TrainAneciValidated(poisoned, DefaultAneciConfig(env), rng);
  } else if (method == "AnECI+") {
    AneciPlusConfig cfg;
    cfg.base = DefaultAneciConfig(env);
    cfg.base.seed = rng.NextU64();
    AneciPlusResult result = TrainAneciPlus(poisoned.graph, cfg);
    z = result.stage2.z;
  } else {
    auto embedder = CreateEmbedder(method);
    ANECI_CHECK(embedder.ok());
    z = embedder.value()->Embed(poisoned.graph, BenchEmbedOptions(rng, env));
  }
  return EvaluateEmbeddingOnNodes(z, poisoned, targets, rng).accuracy;
}

inline int RunTargetedAttackBench(const char* title, const char* csv_name,
                                  const AttackFn& attack, int argc,
                                  char** argv) {
  Flags flags(argc, argv);
  BenchEnv env = BenchEnv::FromFlags(flags);
  PrintEnv(title, env);
  const std::string only_dataset = flags.GetString("dataset", "");
  const int max_perturbations = flags.GetInt("max_perturbations", 5);
  const int step = flags.GetInt("perturbation_step", env.full ? 1 : 2);
  const int max_targets = flags.GetInt("targets", env.full ? 40 : 8);

  const std::vector<std::string> methods = {"GCN",  "RGCN",  "GAE",
                                            "DGI",  "AnECI", "AnECI+"};
  std::vector<std::string> header = {"dataset", "perturb"};
  for (const auto& m : methods) header.push_back(m);
  Table table(header);

  for (const std::string& dataset_name : DatasetNames()) {
    if (!only_dataset.empty() && dataset_name != only_dataset) continue;
    for (int perturb = 1; perturb <= max_perturbations; perturb += step) {
      table.AddRow().Add(dataset_name).Add(std::to_string(perturb));
      for (const std::string& method : methods) {
        std::vector<double> accs;
        for (int round = 0; round < env.rounds; ++round) {
          Dataset ds = MakeScaled(dataset_name, env, round);
          Rng rng(env.seed + round);
          std::vector<int> targets = SelectAttackTargets(ds, 5, max_targets, rng);
          Graph attacked = attack(ds, targets, perturb, rng);
          accs.push_back(EvaluateMethodOnTargets(method, ds, attacked,
                                                 targets, env, rng));
        }
        table.AddF(ComputeMeanStd(accs).mean, 3);
      }
      std::fprintf(stderr, "  %s perturb=%d done\n", dataset_name.c_str(),
                   perturb);
    }
  }

  table.Print(title);
  WriteBenchCsv(table, env, csv_name);
  return 0;
}

}  // namespace aneci::bench

#endif  // ANECI_BENCH_TARGETED_ATTACK_BENCH_H_

// google-benchmark microbenchmarks for the thread-pool kernel layer:
// serial (1 thread) vs N-thread MatMul / SpMM / SpGEMM / k-means, so the
// parallel speedup is measured rather than asserted. Run e.g.:
//   ./bench_kernels --benchmark_filter=MatMul
// The second Args() value is the thread count; compare the 1-thread and
// 4-thread rows of the same shape for the speedup (>= 2x at 4 threads on
// 1024x1024 MatMul on hardware with >= 4 free cores).
//
// GEMM rows also report a `gflops` rate counter, and BM_GemmBackend pins a
// single-thread 512^3 GEMM on EVERY compiled-in backend (scalar, avx2) so
// the SIMD speedup is a ratio inside one run. The emitted
// BENCH_kernels.json carries the process-wide active backend at top level;
// regenerate the scalar-pinned profile via ANECI_KERNEL_BACKEND=scalar
// (tools/bench_snapshot.sh writes both).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "linalg/kernels/kernels.h"
#include "linalg/kmeans.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "util/env.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace aneci {
namespace {

/// GFLOP/s rate counter for a kernel doing `flops` flops per iteration.
benchmark::Counter GflopsRate(double flops) {
  return benchmark::Counter(flops * 1e-9,
                            benchmark::Counter::kIsIterationInvariantRate);
}

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ScopedNumThreads guard(static_cast<int>(state.range(1)));
  Rng rng(1);
  const Matrix a = Matrix::RandomNormal(n, n, 1.0, rng);
  const Matrix b = Matrix::RandomNormal(n, n, 1.0, rng);
  for (auto _ : state) {
    Matrix c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["threads"] = static_cast<double>(NumThreads());
  state.counters["gflops"] = GflopsRate(2.0 * n * n * n);
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMul)
    ->Args({256, 1})
    ->Args({256, 4})
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({1024, 4})
    ->Args({1024, 8})
    ->Unit(benchmark::kMillisecond);

void BM_MatMulTransB(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ScopedNumThreads guard(static_cast<int>(state.range(1)));
  Rng rng(2);
  const Matrix a = Matrix::RandomNormal(n, n, 1.0, rng);
  const Matrix b = Matrix::RandomNormal(n, n, 1.0, rng);
  for (auto _ : state) {
    Matrix c = MatMulTransB(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["gflops"] = GflopsRate(2.0 * n * n * n);
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMulTransB)
    ->Args({512, 1})
    ->Args({512, 4})
    ->Unit(benchmark::kMillisecond);

SparseMatrix RandomAdjacency(int n, double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> trips;
  for (int r = 0; r < n; ++r) {
    trips.push_back({r, r, 1.0});
    for (int c = r + 1; c < n; ++c) {
      if (rng.NextBool(density)) {
        trips.push_back({r, c, 1.0});
        trips.push_back({c, r, 1.0});
      }
    }
  }
  return SparseMatrix::FromTriplets(n, n, trips);
}

void BM_SpMM(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ScopedNumThreads guard(static_cast<int>(state.range(1)));
  const SparseMatrix s = RandomAdjacency(n, 10.0 / n, 3);
  Rng rng(4);
  const Matrix x = Matrix::RandomNormal(n, 64, 1.0, rng);
  for (auto _ : state) {
    Matrix y = s.Multiply(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["nnz"] = static_cast<double>(s.nnz());
  state.SetItemsProcessed(state.iterations() * 2 * s.nnz() * 64);
}
BENCHMARK(BM_SpMM)
    ->Args({20000, 1})
    ->Args({20000, 2})
    ->Args({20000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_SpGemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ScopedNumThreads guard(static_cast<int>(state.range(1)));
  const SparseMatrix s = RandomAdjacency(n, 12.0 / n, 5);
  for (auto _ : state) {
    SparseMatrix p = s.MultiplySparse(s);
    benchmark::DoNotOptimize(p.nnz());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpGemm)
    ->Args({8000, 1})
    ->Args({8000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_KMeans(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ScopedNumThreads guard(static_cast<int>(state.range(1)));
  Rng data_rng(6);
  const Matrix points = Matrix::RandomNormal(n, 32, 1.0, data_rng);
  KMeansOptions options;
  options.max_iterations = 10;
  options.restarts = 1;
  for (auto _ : state) {
    Rng rng(7);
    KMeansResult r = KMeans(points, 16, rng, options);
    benchmark::DoNotOptimize(r.inertia);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * 16);
}
BENCHMARK(BM_KMeans)
    ->Args({20000, 1})
    ->Args({20000, 2})
    ->Args({20000, 4})
    ->Unit(benchmark::kMillisecond);

// One single-thread 512^3 GEMM per compiled-in backend, bypassing Active()
// via BackendByName so one run measures the scalar/avx2 ratio directly
// (the ISSUE's >= 3x acceptance gate). Registered from main() because the
// backend list is a runtime property.
void BM_GemmBackend(benchmark::State& state, const std::string& name) {
  const kernels::Backend* be = kernels::BackendByName(name);
  if (be == nullptr) {
    state.SkipWithError(("backend unavailable: " + name).c_str());
    return;
  }
  ScopedNumThreads guard(1);
  const int n = 512;
  Rng rng(10);
  const Matrix a = Matrix::RandomNormal(n, n, 1.0, rng);
  const Matrix b = Matrix::RandomNormal(n, n, 1.0, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    be->Gemm(false, false, 1.0, a, b, 0.0, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["gflops"] = GflopsRate(2.0 * n * n * n);
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}

void RegisterBackendBenchmarks() {
  for (const std::string& name : kernels::AvailableBackends()) {
    benchmark::RegisterBenchmark(("BM_GemmBackend/" + name + "/512").c_str(),
                                 [name](benchmark::State& st) {
                                   BM_GemmBackend(st, name);
                                 })
        ->Unit(benchmark::kMillisecond);
  }
}

// Instrumentation overhead probe: the same kernel mix with the metrics
// registry enabled (counters increment) vs disabled (each Add() is a single
// relaxed load + branch). Compare the two rows; the enabled one must stay
// within ~2% of disabled (the kernels' per-call work dwarfs a handful of
// sharded counter bumps). range(0) selects enabled.
void BM_MetricsOverhead(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  ScopedNumThreads guard(4);
  const int n = 256;
  Rng rng(8);
  const Matrix a = Matrix::RandomNormal(n, n, 1.0, rng);
  const Matrix b = Matrix::RandomNormal(n, n, 1.0, rng);
  const SparseMatrix s = RandomAdjacency(4000, 10.0 / 4000, 9);
  const Matrix x = Matrix::RandomNormal(4000, 64, 1.0, rng);
  MetricsRegistry::Global().set_enabled(enabled);
  for (auto _ : state) {
    Matrix c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
    Matrix y = s.Multiply(x);
    benchmark::DoNotOptimize(y.data());
  }
  MetricsRegistry::Global().set_enabled(true);
  state.counters["metrics_enabled"] = enabled ? 1.0 : 0.0;
}
BENCHMARK(BM_MetricsOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Capturing reporter: prints the usual console table AND accumulates every
// run so main() can emit a machine-readable BENCH_kernels.json (real time,
// throughput — items_per_second is the GEMM flop rate — and counters).
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      std::string entry = "{\"name\":\"" + run.benchmark_name() + "\"";
      entry += ",\"iterations\":" + std::to_string(run.iterations);
      entry += ",\"real_time_ms\":" +
               JsonDouble(run.GetAdjustedRealTime() * TimeScale(run));
      entry += ",\"cpu_time_ms\":" +
               JsonDouble(run.GetAdjustedCPUTime() * TimeScale(run));
      for (const auto& [name, counter] : run.counters)
        entry += ",\"" + name + "\":" + JsonDouble(counter);
      entry += "}";
      entries_.push_back(std::move(entry));
    }
  }

  std::string Json() const {
    std::string json = "{\"bench\":\"kernels\",\"backend\":\"" +
                       std::string(kernels::ActiveName()) +
                       "\",\"benchmarks\":[";
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (i > 0) json += ",";
      json += entries_[i];
    }
    json += "]}\n";
    return json;
  }

 private:
  /// GetAdjusted*Time() is in the run's own time unit; rescale to ms.
  static double TimeScale(const Run& run) {
    return 1e3 / benchmark::GetTimeUnitMultiplier(run.time_unit);
  }

  std::vector<std::string> entries_;
};

}  // namespace
}  // namespace aneci

int main(int argc, char** argv) {
  // Peel off --outdir / --outfile (ours) before google-benchmark sees the
  // flags. --outfile lets a backend-pinned run (ANECI_KERNEL_BACKEND=scalar)
  // land next to the default profile instead of overwriting it.
  std::string outdir = "results";
  std::string outfile = "BENCH_kernels.json";
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--outdir=", 0) == 0) {
      outdir = arg.substr(9);
      continue;
    }
    if (arg.rfind("--outfile=", 0) == 0) {
      outfile = arg.substr(10);
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  aneci::RegisterBackendBenchmarks();
  aneci::JsonCapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  aneci::Status st = aneci::Env::Default()->CreateDir(outdir);
  if (st.ok())
    st = aneci::Env::Default()->WriteFileAtomic(outdir + "/" + outfile,
                                                reporter.Json());
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", outfile.c_str(), st.ToString().c_str());
    return 1;
  }
  std::printf("json: %s/%s\n", outdir.c_str(), outfile.c_str());
  return 0;
}

// Reproduces Fig. 6: anomaly detection AUC with 5% implanted outliers of
// each kind (S / A / S&A / Mix) on all four datasets. Native scorers use
// their own schemes; generic embedders go through IsolationForest; AnECI
// scores by membership entropy.
#include "anomaly/isolation_forest.h"
#include "anomaly/outlier_injection.h"
#include "bench/common.h"
#include "tasks/metrics.h"
#include "util/table.h"

namespace aneci::bench {
namespace {

std::vector<double> ScoreWith(const std::string& method, const Graph& graph,
                              const BenchEnv& env, Rng& rng) {
  const EmbedOptions eo = BenchEmbedOptions(rng, env);
  if (method == "AnECI") {
    AneciEmbedder embedder(DefaultAneciConfig(env));
    return embedder.ScoreAnomalies(graph, eo);
  }
  auto embedder = CreateEmbedder(method);
  ANECI_CHECK(embedder.ok());
  if (auto* native = dynamic_cast<AnomalyScorer*>(embedder.value().get())) {
    return native->ScoreAnomalies(graph, eo);
  }
  Matrix z = embedder.value()->Embed(graph, eo);
  IsolationForest forest;
  forest.Fit(z, rng);
  return forest.Score(z);
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchEnv env = BenchEnv::FromFlags(flags);
  PrintEnv("Fig. 6: anomaly detection AUC (5% implanted outliers)", env);
  const std::string only_dataset = flags.GetString("dataset", "");
  const double fraction = flags.GetDouble("fraction", 0.05);

  const std::vector<std::string> methods = {
      "GAE", "DGI", "Dominant", "DONE", "ADONE", "AnomalyDAE", "AnECI"};
  const std::vector<OutlierKind> kinds = {
      OutlierKind::kStructural, OutlierKind::kAttribute,
      OutlierKind::kCombined, OutlierKind::kMix};

  std::vector<std::string> header = {"dataset", "kind"};
  for (const auto& m : methods) header.push_back(m);
  Table table(header);

  for (const std::string& dataset_name : DatasetNames()) {
    if (!only_dataset.empty() && dataset_name != only_dataset) continue;
    for (OutlierKind kind : kinds) {
      table.AddRow().Add(dataset_name).Add(OutlierKindName(kind));
      for (const std::string& method : methods) {
        std::vector<double> aucs;
        for (int round = 0; round < env.rounds; ++round) {
          Dataset ds = MakeScaled(dataset_name, env, round);
          Rng rng(env.seed + round);
          OutlierInjectionResult injected =
              InjectOutliers(ds.graph, kind, fraction, rng);
          std::vector<double> scores =
              ScoreWith(method, injected.graph, env, rng);
          aucs.push_back(AreaUnderRoc(scores, injected.is_outlier));
        }
        table.AddF(ComputeMeanStd(aucs).mean, 3);
      }
      std::fprintf(stderr, "  %s %s done\n", dataset_name.c_str(),
                   OutlierKindName(kind));
    }
  }

  table.Print("Fig. 6 — anomaly detection AUC");
  WriteBenchCsv(table, env, "fig6_anomaly.csv");
  return 0;
}

}  // namespace
}  // namespace aneci::bench

int main(int argc, char** argv) { return aneci::bench::Run(argc, argv); }

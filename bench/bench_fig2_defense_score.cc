// Reproduces Fig. 2: defense score DS(delta) under random attack at
// perturbation rates delta in (0, 0.5], for LINE, GAE, DGI and AnECI on the
// Cora analogue. Higher = fake edges kept further apart in embedding space.
#include "analysis/defense_score.h"
#include "attack/random_attack.h"
#include "bench/common.h"
#include "tasks/metrics.h"
#include "util/table.h"

namespace aneci::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchEnv env = BenchEnv::FromFlags(flags);
  PrintEnv("Fig. 2: defense score under random attack (Cora)", env);
  const double step = flags.GetDouble("step", env.full ? 0.02 : 0.1);
  const std::string dataset_name = flags.GetString("dataset", "cora");

  const std::vector<std::string> methods = {"LINE", "GAE", "DGI", "AnECI"};
  std::vector<std::string> header = {"delta"};
  for (const auto& m : methods) header.push_back(m);
  Table table(header);

  for (double delta = step; delta <= 0.5 + 1e-9; delta += step) {
    table.AddRow().AddF(delta, 2);
    for (const std::string& method : methods) {
      std::vector<double> scores;
      for (int round = 0; round < env.rounds; ++round) {
        Dataset ds = MakeScaled(dataset_name, env, round);
        Rng rng(env.seed + round);
        RandomAttackResult attack = RandomAttack(ds.graph, delta, rng);
        attack.attacked.SetLabels(ds.graph.labels());

        Matrix z;
        const EmbedOptions eo = BenchEmbedOptions(rng, env);
        if (method == "AnECI") {
          AneciEmbedder embedder(DefaultAneciConfig(env));
          z = embedder.Embed(attack.attacked, eo);
        } else {
          auto embedder = CreateEmbedder(method);
          ANECI_CHECK(embedder.ok());
          z = embedder.value()->Embed(attack.attacked, eo);
        }
        scores.push_back(DefenseScore(attack.attacked, attack.fake_edges, z));
      }
      table.AddF(ComputeMeanStd(scores).mean, 3);
    }
    std::fprintf(stderr, "  delta=%.2f done\n", delta);
  }

  table.Print("Fig. 2 — defense score DS(delta), higher is more robust");
  WriteBenchCsv(table, env, "fig2_defense_score.csv");
  return 0;
}

}  // namespace
}  // namespace aneci::bench

int main(int argc, char** argv) { return aneci::bench::Run(argc, argv); }

// Reproduces Fig. 7: community detection measured by classic modularity.
// Per the paper's fairness protocol, attributes are replaced by the unit
// matrix (AnECI runs structure-only). Baselines cluster their embeddings
// with k-means++; a Louvain-style greedy maximiser stands in for the
// non-embedding community methods (vGraph/ComE).
#include "bench/common.h"
#include "graph/louvain.h"
#include "tasks/community.h"
#include "tasks/metrics.h"
#include "util/table.h"

namespace aneci::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchEnv env = BenchEnv::FromFlags(flags);
  PrintEnv("Fig. 7: community detection (modularity)", env);
  const std::string only_dataset = flags.GetString("dataset", "");

  const std::vector<std::string> embed_methods = {"DeepWalk", "LINE", "GAE",
                                                  "DGI"};
  std::vector<std::string> header = {"dataset", "Louvain"};
  for (const auto& m : embed_methods) header.push_back(m);
  header.push_back("AnECI");
  Table table(header);

  for (const std::string& dataset_name : DatasetNames()) {
    if (!only_dataset.empty() && dataset_name != only_dataset) continue;
    table.AddRow().Add(dataset_name);

    // Community count = class count, the paper's protocol.
    Dataset probe = MakeScaled(dataset_name, env, 0);
    const int k = probe.graph.num_classes();

    auto average = [&](const std::function<double(const Graph&, Rng&)>& fn) {
      std::vector<double> mods;
      for (int round = 0; round < env.rounds; ++round) {
        Dataset ds = MakeScaled(dataset_name, env, round);
        // Structure-only evaluation: strip attributes (unit-matrix rule).
        Graph structure = Graph::FromEdges(ds.graph.num_nodes(),
                                           ds.graph.edges());
        structure.SetLabels(ds.graph.labels());
        Rng rng(env.seed + round);
        mods.push_back(fn(structure, rng));
      }
      return ComputeMeanStd(mods).mean;
    };

    table.AddF(average([&](const Graph& g, Rng& rng) {
      return Louvain(g, rng).modularity;
    }), 3);

    for (const std::string& method : embed_methods) {
      table.AddF(average([&](const Graph& g, Rng& rng) {
        auto embedder = CreateEmbedder(method);
        ANECI_CHECK(embedder.ok());
        Matrix z = embedder.value()->Embed(g, BenchEmbedOptions(rng, env));
        return DetectCommunitiesKMeans(g, z, k, rng).modularity;
      }), 3);
    }

    table.AddF(average([&](const Graph& g, Rng& rng) {
      AneciConfig cfg = DefaultAneciConfig(env);
      cfg.embed_dim = k;  // h = |C| so P infers the communities directly.
      cfg.epochs = env.full ? 600 : std::max(env.epochs, 300);  // Paper: 600.
      AneciEmbedder embedder(cfg);
      EmbedOptions eo;
      eo.rng = &rng;
      embedder.Embed(g, eo);
      return DetectCommunitiesArgmax(g, embedder.last_membership()).modularity;
    }), 3);
    std::fprintf(stderr, "  %s done\n", dataset_name.c_str());
  }

  table.Print("Fig. 7 — community detection modularity (structure only)");
  WriteBenchCsv(table, env, "fig7_community.csv");
  return 0;
}

}  // namespace
}  // namespace aneci::bench

int main(int argc, char** argv) { return aneci::bench::Run(argc, argv); }

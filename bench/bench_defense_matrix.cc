// Defense x attack x budget matrix: how much accuracy each purification
// defense recovers under the three poisoning attacks. Every cell poisons the
// graph, runs the defense pipeline on the poisoned copy, retrains AnECI and
// reports probe accuracy (mean±std over rounds). Within a round all defenses
// see the *same* poisoned graph, so the none-vs-defended comparison is
// paired. Global attacks (random, DICE) are scored on the test split;
// NETTACK on its attacked targets.
//
// Extra flags beyond bench/common.h:
//   --dataset=<name>   single dataset (default cora)
//   --targets=<n>      NETTACK target count (default 12, 40 under --full)
#include <algorithm>
#include <cmath>

#include "attack/dice.h"
#include "attack/nettack.h"
#include "attack/random_attack.h"
#include "attack/surrogate.h"
#include "bench/common.h"
#include "defense/defense.h"
#include "tasks/metrics.h"
#include "util/table.h"

namespace aneci::bench {
namespace {

struct DefenseSpec {
  const char* label;
  const char* pipeline;  // "" = undefended
};

constexpr DefenseSpec kDefenses[] = {
    {"none", ""},
    {"jaccard", "jaccard"},
    {"lowrank", "lowrank"},
    {"clip", "clip"},
    {"jaccard+lowrank", "jaccard,lowrank"},
};
constexpr const char* kAttacks[] = {"random", "dice", "nettack"};
constexpr double kBudgets[] = {0.05, 0.10, 0.20};

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchEnv env = BenchEnv::FromFlags(flags);
  // The acceptance bar (jaccard beats undefended at every budget) is a
  // mean over >=3 seeds; defense deltas are a few points, so default to 10
  // rounds to keep the paired comparison out of the noise.
  if (!flags.Has("rounds") && !env.full) env.rounds = 10;
  PrintEnv("Defense matrix (defense x attack x budget)", env);
  const std::string dataset_name = flags.GetString("dataset", "cora");
  const int max_targets = flags.GetInt("targets", env.full ? 40 : 12);

  std::vector<std::string> header = {"attack", "budget"};
  for (const DefenseSpec& d : kDefenses) header.push_back(d.label);
  Table table(header);

  // pass/fail bookkeeping for the headline claim: jaccard > none under the
  // informed attacks at every budget.
  bool jaccard_wins = true;

  for (const char* attack : kAttacks) {
    for (double budget : kBudgets) {
      std::vector<std::vector<double>> accs(std::size(kDefenses));
      for (int round = 0; round < env.rounds; ++round) {
        Dataset ds = MakeScaled(dataset_name, env, round);
        Rng rng(env.seed + 7919 * round);

        Graph poisoned(0);
        std::vector<int> eval_targets;  // empty = use the test split
        if (std::string(attack) == "random") {
          poisoned = RandomAttack(ds.graph, budget, rng).attacked;
        } else if (std::string(attack) == "dice") {
          poisoned = DiceAttack(ds.graph, {budget}, rng).attacked;
        } else {
          eval_targets = SelectAttackTargets(ds, 5, max_targets, rng);
          NettackOptions opt;
          // Budget maps to edge flips per target: 5%/10%/20% -> 5/10/20,
          // matching the per-target degree scale NETTACK operates at.
          opt.perturbations_per_target =
              std::max(1, static_cast<int>(std::lround(budget * 100)));
          poisoned = NettackAttack(ds, eval_targets, opt, rng);
        }

        for (size_t d = 0; d < std::size(kDefenses); ++d) {
          Dataset cell = ds;
          cell.graph = poisoned;
          cell.graph.SetLabels(ds.graph.labels());
          if (*kDefenses[d].pipeline) {
            StatusOr<DefensePipeline> pipeline =
                ParseDefensePipeline(kDefenses[d].pipeline);
            ANECI_CHECK_MSG(pipeline.ok(),
                            pipeline.status().ToString().c_str());
            Rng defense_rng(env.seed + 104729 * round + d);
            cell.graph = RunDefensePipeline(cell.graph, pipeline.value(),
                                            defense_rng)
                             .graph;
          }
          Rng train_rng(env.seed + 1299709 * round);
          Matrix z = TrainAneciValidated(cell, DefaultAneciConfig(env),
                                         train_rng);
          const double acc =
              eval_targets.empty()
                  ? EvaluateEmbedding(z, cell, train_rng, cell.test_idx)
                        .accuracy
                  : EvaluateEmbeddingOnNodes(z, cell, eval_targets, train_rng)
                        .accuracy;
          accs[d].push_back(acc);
        }
      }
      table.AddRow().Add(attack);
      char budget_str[16];
      std::snprintf(budget_str, sizeof(budget_str), "%.2f", budget);
      table.Add(budget_str);
      std::vector<MeanStd> stats;
      for (const std::vector<double>& a : accs)
        stats.push_back(ComputeMeanStd(a));
      for (const MeanStd& s : stats) table.AddMeanStd(s.mean, s.std, 3);
      if (std::string(attack) != "random" && stats[1].mean <= stats[0].mean)
        jaccard_wins = false;
      std::fprintf(stderr, "  %s budget=%.2f done\n", attack, budget);
    }
  }

  table.Print("Defense matrix (defense x attack x budget)");
  WriteBenchCsv(table, env, "defense_matrix.csv");
  std::printf("jaccard beats undefended under DICE/NETTACK at every budget: "
              "%s\n",
              jaccard_wins ? "yes" : "NO");
  return 0;
}

}  // namespace
}  // namespace aneci::bench

int main(int argc, char** argv) { return aneci::bench::Run(argc, argv); }

// Design-choice ablations beyond the paper's Table IV (the choices DESIGN.md
// calls out): adapting factor F = product vs minimum (Section IV-C4 offers
// both), dense vs sampled reconstruction, and the full-graph GCN vs the
// sampled-neighbour (GraphSAGE-style) encoder extension from the paper's
// conclusion. Each variant reports classification accuracy, community NMI
// and the final generalised modularity on the Cora analogue.
#include "bench/common.h"
#include "graph/modularity.h"
#include "tasks/metrics.h"
#include "tasks/node_classification.h"
#include "util/table.h"
#include "util/timer.h"

namespace aneci::bench {
namespace {

struct Variant {
  std::string name;
  std::function<void(AneciConfig*)> apply;
};

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchEnv env = BenchEnv::FromFlags(flags);
  PrintEnv("Design ablation: AnECI internal choices (Cora)", env);
  const std::string dataset_name = flags.GetString("dataset", "cora");

  const std::vector<Variant> variants = {
      {"baseline (product F, dense LR, full GCN)", [](AneciConfig*) {}},
      {"F = minimum",
       [](AneciConfig* cfg) {
         cfg->modularity_variant = ModularityVariant::kMinimum;
       }},
      {"sampled reconstruction",
       [](AneciConfig* cfg) {
         cfg->reconstruction = ReconstructionMode::kSampled;
       }},
      {"proximity order l = 1",
       [](AneciConfig* cfg) { cfg->proximity.order = 1; }},
      {"proximity order l = 3",
       [](AneciConfig* cfg) { cfg->proximity.order = 3; }},
      {"sampled-neighbor encoder (fanout 5)",
       [](AneciConfig* cfg) {
         cfg->encoder = EncoderMode::kSampledNeighbors;
         cfg->sage.fanout = 5;
       }},
      {"no self-loops in proximity",
       [](AneciConfig* cfg) { cfg->proximity.add_self_loops = false; }},
  };

  Table table({"Variant", "ACC", "NMI", "Q~ final", "train s"});
  for (const Variant& variant : variants) {
    std::vector<double> accs, nmis, mods, secs;
    for (int round = 0; round < env.rounds; ++round) {
      Dataset ds = MakeScaled(dataset_name, env, round);
      Rng rng(env.seed + round);
      AneciConfig cfg = DefaultAneciConfig(env);
      variant.apply(&cfg);
      cfg.seed = rng.NextU64();

      Timer timer;
      Aneci model(cfg);
      AneciResult result = model.Train(ds.graph);
      secs.push_back(timer.Seconds());

      accs.push_back(EvaluateEmbedding(result.z, ds, rng).accuracy);
      nmis.push_back(NormalizedMutualInformation(
          ArgmaxAssignment(result.p), ds.graph.labels()));
      mods.push_back(result.history.back().modularity);
    }
    table.AddRow()
        .Add(variant.name)
        .AddF(ComputeMeanStd(accs).mean, 3)
        .AddF(ComputeMeanStd(nmis).mean, 3)
        .AddF(ComputeMeanStd(mods).mean, 3)
        .AddF(ComputeMeanStd(secs).mean, 2);
    std::fprintf(stderr, "  %s done\n", variant.name.c_str());
  }

  table.Print("Design ablation — internal AnECI choices");
  WriteBenchCsv(table, env, "ablation_design.csv");
  return 0;
}

}  // namespace
}  // namespace aneci::bench

int main(int argc, char** argv) { return aneci::bench::Run(argc, argv); }

// Streaming perturbation sweep: replays the same background-churn event
// stream with a mid-stream DICE poisoning burst at increasing budgets and
// records, per batch, what the online drift monitor saw and decided — the
// streaming analogue of the static robustness sweeps (Fig. 3-5). Emits a
// per-batch CSV plus a machine-readable detection-lag summary, and enforces
// two gates: the monitor must reach suspected-poisoning at the highest rate
// and must never false-alarm on the clean (rate 0) stream.
//
//   ./bench_stream_perturbation [--rounds=N] [--seed=N] [--outdir=d]
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "core/aneci.h"
#include "data/sbm.h"
#include "graph/graph.h"
#include "linalg/matrix.h"
#include "stream/drift_monitor.h"
#include "stream/scenario.h"
#include "stream/stream_engine.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/table.h"

namespace aneci::bench {
namespace {

using stream::EventBatch;
using stream::StreamBatchReport;
using stream::StreamEngine;
using stream::StreamEngineOptions;
using stream::StreamHealth;

constexpr double kRates[] = {0.0, 0.05, 0.1, 0.2, 0.4};
constexpr int kBatches = 10;
constexpr int kPoisonBatch = 5;

// The detection gates need a converged baseline embedding (Q~ around 0.2):
// with a weak embedding the modularity-drop signal is flat and a heavy
// burst reads as mere drift. These mirror the constellation validated by
// tests/stream_chaos_test.cc; --seed shifts the graph, the rest are fixed.
constexpr uint64_t kTrainSeed = 5;
constexpr uint64_t kScenarioSeed = 77;
constexpr uint64_t kEngineSeed = 13;

// Seed world shared across the sweep: one converged embedding on a strongly
// assortative SBM (the monitor's signals are only meaningful once P carries
// real community structure), at the scale validated by the chaos test.
struct SeedWorld {
  Graph graph{0};
  Matrix z;
  Matrix p;
};

SeedWorld MakeWorld(const BenchEnv& env) {
  SeedWorld world;
  SbmOptions opt;
  opt.num_nodes = 300;
  opt.num_edges = 900;
  opt.num_classes = 3;
  opt.attribute_dim = 16;
  opt.intra_fraction = 0.9;
  Rng rng(env.seed);
  world.graph = GenerateSbm(opt, rng);

  AneciConfig config;
  config.hidden_dim = 32;
  config.embed_dim = 3;
  config.epochs = env.epochs;
  config.seed = kTrainSeed;
  AneciResult result = Aneci(config).Train(world.graph);
  world.z = std::move(result.z);
  world.p = std::move(result.p);
  return world;
}

StreamEngineOptions EngineOptions(const BenchEnv& env) {
  StreamEngineOptions options;
  // khops=1 keeps the refresh region a small fraction of the graph; a
  // larger region degrades global Q~ enough to read as drift on clean
  // traffic (see tests/stream_chaos_test.cc for the tuning rationale).
  options.refresh.khops = 1;
  options.refresh.epochs = 40;
  options.refresh.hidden_dim = 24;
  options.seed = kEngineSeed;
  return options;
}

struct SweepResult {
  double rate = 0.0;
  /// Batches between the burst and the first suspected-poisoning verdict;
  /// -1 when the monitor never escalated that far.
  int detection_lag = -1;
  int defenses = 0;
  StreamHealth final_state = StreamHealth::kHealthy;
  double min_modularity = 0.0;
  double max_churn = 0.0;
};

SweepResult RunRate(const SeedWorld& world, const BenchEnv& env, double rate,
                    Table* per_batch) {
  stream::StreamScenarioOptions scenario;
  scenario.batches = kBatches;
  scenario.events_per_batch = 4;
  scenario.seed = kScenarioSeed;
  scenario.poison_batch = rate > 0.0 ? kPoisonBatch : -1;
  scenario.poison_rate = rate > 0.0 ? rate : 0.2;
  auto log = stream::MakeEventStream(world.graph, scenario);
  ANECI_CHECK_MSG(log.ok(), log.status().ToString().c_str());

  auto engine = StreamEngine::Create(world.graph, world.z, world.p,
                                     EngineOptions(env));
  ANECI_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());

  SweepResult result;
  result.rate = rate;
  result.min_modularity = 1.0;
  for (const EventBatch& batch : log.value()) {
    auto report = engine.value()->ProcessBatch(batch);
    ANECI_CHECK_MSG(report.ok(), report.status().ToString().c_str());
    const StreamBatchReport& r = report.value();
    per_batch->AddRow()
        .AddF(rate, 2)
        .Add(std::to_string(r.sequence))
        .Add(stream::StreamHealthName(r.state))
        .Add(std::to_string(r.breach_level))
        .AddF(r.modularity, 4)
        .AddF(r.churn, 4)
        .AddF(r.degree_shift, 4)
        .Add(r.defense_invoked ? "1" : "0");
    if (r.state == StreamHealth::kSuspectedPoisoning &&
        result.detection_lag < 0)
      result.detection_lag = static_cast<int>(r.sequence) - kPoisonBatch;
    result.defenses += r.defense_invoked ? 1 : 0;
    result.final_state = r.state;
    result.min_modularity = std::min(result.min_modularity, r.modularity);
    result.max_churn = std::max(result.max_churn, r.churn);
  }
  return result;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchEnv env = BenchEnv::FromFlags(flags);
  if (!flags.Has("seed")) env.seed = 11;
  if (!flags.Has("epochs")) env.epochs = env.full ? 300 : 150;
  PrintEnv("bench_stream_perturbation", env);

  const SeedWorld world = MakeWorld(env);
  Table per_batch({"rate", "batch", "state", "breach", "modularity", "churn",
                   "degree_shift", "defense"});
  Table summary({"rate", "detection_lag", "defenses", "final_state",
                 "min_modularity", "max_churn"});
  std::vector<SweepResult> results;
  for (double rate : kRates) {
    SweepResult r = RunRate(world, env, rate, &per_batch);
    summary.AddRow()
        .AddF(r.rate, 2)
        .Add(std::to_string(r.detection_lag))
        .Add(std::to_string(r.defenses))
        .Add(stream::StreamHealthName(r.final_state))
        .AddF(r.min_modularity, 4)
        .AddF(r.max_churn, 4);
    results.push_back(r);
  }

  summary.Print("Streaming perturbation sweep (DICE burst at batch " +
                std::to_string(kPoisonBatch) + ")");
  WriteBenchCsv(per_batch, env, "BENCH_stream_perturbation_batches.csv");
  WriteBenchCsv(summary, env, "BENCH_stream_perturbation.csv");

  std::string json = "{\"bench\":\"stream_perturbation\",\"poison_batch\":" +
                     std::to_string(kPoisonBatch) + ",\"rates\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    if (i > 0) json += ",";
    json += "{\"rate\":" + JsonDouble(r.rate) +
            ",\"detection_lag\":" + std::to_string(r.detection_lag) +
            ",\"defenses\":" + std::to_string(r.defenses) +
            ",\"final_state\":\"" +
            stream::StreamHealthName(r.final_state) +
            "\",\"min_modularity\":" + JsonDouble(r.min_modularity) +
            ",\"max_churn\":" + JsonDouble(r.max_churn) + "}";
  }
  json += "]}\n";
  WriteBenchJson(json, env.outdir, "BENCH_stream_perturbation.json");

  // Gates: the sweep is only evidence if the monitor separates the
  // endpoints — detection at the heaviest burst, silence on clean traffic.
  ANECI_CHECK_MSG(results.front().detection_lag < 0 &&
                      results.front().defenses == 0,
                  "false alarm: suspected-poisoning on the clean stream");
  ANECI_CHECK_MSG(results.back().detection_lag >= 0,
                  "missed detection at the highest poison rate");
  std::printf("gates: clean stream silent, rate %.2f detected with lag %d\n",
              results.back().rate, results.back().detection_lag);
  return 0;
}

}  // namespace
}  // namespace aneci::bench

int main(int argc, char** argv) { return aneci::bench::Main(argc, argv); }

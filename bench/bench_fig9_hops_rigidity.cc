// Reproduces Fig. 9: (a) accuracy of AnECI on an attacked graph as the
// proximity order l grows (the high-order vs first-order modularity
// comparison) and (b) the Rigidity = tr(P^T P)/N and test accuracy along the
// training trajectory (overlapped community vs hard partition).
#include "attack/random_attack.h"
#include "bench/common.h"
#include "core/aneci.h"
#include "tasks/metrics.h"
#include "tasks/node_classification.h"
#include "util/table.h"

namespace aneci::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchEnv env = BenchEnv::FromFlags(flags);
  PrintEnv("Fig. 9: high-order hops & rigidity analysis (Cora)", env);
  const std::string dataset_name = flags.GetString("dataset", "cora");
  const int max_order = flags.GetInt("max_order", 4);
  const double noise = flags.GetDouble("noise", 0.2);

  // --- (a) accuracy vs proximity order on the attacked graph -------------
  Table hops({"order l", "ACC (attacked)"});
  for (int order = 1; order <= max_order; ++order) {
    std::vector<double> accs;
    for (int round = 0; round < env.rounds; ++round) {
      Dataset ds = MakeScaled(dataset_name, env, round);
      Rng rng(env.seed + round);
      RandomAttackResult attack = RandomAttack(ds.graph, noise, rng);
      attack.attacked.SetLabels(ds.graph.labels());
      AneciConfig cfg = DefaultAneciConfig(env);
      cfg.proximity.order = order;
      AneciEmbedder embedder(cfg);
      Dataset poisoned = ds;
      poisoned.graph = attack.attacked;
      EmbedOptions eo;
      eo.rng = &rng;
      Matrix z = embedder.Embed(poisoned.graph, eo);
      accs.push_back(EvaluateEmbedding(z, poisoned, rng).accuracy);
    }
    hops.AddRow().Add(std::to_string(order)).AddF(ComputeMeanStd(accs).mean, 3);
    std::fprintf(stderr, "  order %d done\n", order);
  }
  hops.Print("Fig. 9(a) — accuracy vs proximity order (noise ratio " +
             std::to_string(noise) + ")");
  WriteBenchCsv(hops, env, "fig9a_hops.csv");

  // --- (b) rigidity & accuracy during training ---------------------------
  Dataset ds = MakeScaled(dataset_name, env, 0);
  Rng rng(env.seed);
  AneciConfig cfg = DefaultAneciConfig(env);
  cfg.epochs = flags.GetInt("trajectory_epochs", env.full ? 150 : 80);
  const int every = flags.GetInt("eval_every", 10);

  Table traj({"epoch", "rigidity", "Q~", "ACC"});
  Aneci model(cfg);
  Rng eval_rng(env.seed + 7);
  model.Train(ds.graph, [&](const AneciEpochStats& stats, const Matrix& z,
                            const Matrix& p) {
    if (stats.epoch % every != 0) return;
    // Accuracy of the probe on the current membership matrix.
    const double acc = EvaluateEmbedding(p, ds, eval_rng).accuracy;
    traj.AddRow()
        .Add(std::to_string(stats.epoch))
        .AddF(stats.rigidity, 4)
        .AddF(stats.modularity, 4)
        .AddF(acc, 3);
  });
  traj.Print("Fig. 9(b) — rigidity / modularity / accuracy vs epoch");
  WriteBenchCsv(traj, env, "fig9b_rigidity.csv");
  return 0;
}

}  // namespace
}  // namespace aneci::bench

int main(int argc, char** argv) { return aneci::bench::Run(argc, argv); }

// Reproduces Table V: running-time comparison across methods, via
// google-benchmark. Each benchmark trains one method end-to-end on the Cora
// analogue (scaled by --scale via the ANECI_BENCH_SCALE env var, default
// 0.15) and reports wall time.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "core/aneci.h"
#include "data/datasets.h"
#include "embed/aneci_embedder.h"
#include "embed/embedder.h"
#include "embed/gcn_classifier.h"
#include "util/check.h"

namespace aneci {
namespace {

double BenchScale() {
  const char* env = std::getenv("ANECI_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 0.15;
}

const Dataset& CoraDataset() {
  static const Dataset* ds = new Dataset(MakeCora(42, BenchScale()));
  return *ds;
}

constexpr int kEpochs = 30;

void BM_Embedder(benchmark::State& state, const std::string& name) {
  const Dataset& ds = CoraDataset();
  for (auto _ : state) {
    Rng rng(7);
    auto embedder = CreateEmbedder(name, 16, kEpochs);
    ANECI_CHECK(embedder.ok());
    Matrix z = embedder.value()->Embed(ds.graph, rng);
    benchmark::DoNotOptimize(z.data());
  }
}

void BM_AnECI(benchmark::State& state) {
  const Dataset& ds = CoraDataset();
  for (auto _ : state) {
    Rng rng(7);
    AneciConfig cfg;
    cfg.epochs = kEpochs;
    // The scalable default: sampled reconstruction (the paper's dense
    // N^2 decoder maps to a GPU-friendly op; the sampled loss is the CPU
    // equivalent, see DESIGN.md).
    cfg.reconstruction = ReconstructionMode::kSampled;
    AneciEmbedder embedder(cfg);
    Matrix z = embedder.Embed(ds.graph, rng);
    benchmark::DoNotOptimize(z.data());
  }
}

void BM_Gcn(benchmark::State& state, bool robust) {
  const Dataset& ds = CoraDataset();
  for (auto _ : state) {
    Rng rng(7);
    GcnClassifier::Options opt;
    opt.epochs = kEpochs;
    opt.robust = robust;
    GcnClassifier model(opt);
    model.Fit(ds, rng);
    benchmark::DoNotOptimize(model.predictions().data());
  }
}

BENCHMARK_CAPTURE(BM_Embedder, DeepWalk, std::string("DeepWalk"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, LINE, std::string("LINE"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, GAE, std::string("GAE"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, VGAE, std::string("VGAE"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, DGI, std::string("DGI"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, DANE, std::string("DANE"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, DONE, std::string("DONE"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, ADONE, std::string("ADONE"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, AGE, std::string("AGE"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Gcn, GCN, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Gcn, RGCN, true)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnECI)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aneci

BENCHMARK_MAIN();

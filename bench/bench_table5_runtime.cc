// Reproduces Table V: running-time comparison across methods, via
// google-benchmark. Each benchmark trains one method end-to-end on the Cora
// analogue (scaled by --scale via the ANECI_BENCH_SCALE env var, default
// 0.15) and reports wall time.
//
// On top of the wall-time table, every method's run is bracketed by a
// metrics/trace reset+snapshot, and the per-phase span breakdown (setup,
// epoch loop, final forward, ...) is written to
// <ANECI_BENCH_OUTDIR|results>/table5_phases.csv — the observability
// layer's answer to "where does each method's time actually go".
//
// Extra flags (peeled before google-benchmark sees argv):
//   --full               paper scale: the Cora-analogue table runs at
//                        scale 1.0, plus one pinned-iteration AnECI run on
//                        the full-scale Pubmed analogue (N = 19717) — the
//                        measurement behind DESIGN.md's Pubmed-scale note
//   --metrics-out=<p>    after the run, record the process peak RSS
//                        (getrusage) as the `process/peak_rss_bytes` gauge
//                        and dump the metrics registry — including the
//                        memory planner's `autograd/peak_bytes` — as JSONL
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/aneci.h"
#include "data/datasets.h"
#include "embed/aneci_embedder.h"
#include "embed/embedder.h"
#include "embed/gcn_classifier.h"
#include "util/check.h"
#include "util/env.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace aneci {
namespace {

double BenchScale() {
  const char* env = std::getenv("ANECI_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 0.15;
}

const Dataset& CoraDataset() {
  static const Dataset* ds = new Dataset(MakeCora(42, BenchScale()));
  return *ds;
}

constexpr int kEpochs = 30;

/// Span aggregates collected per benchmarked method, flushed to CSV at exit.
/// (google-benchmark owns the timing loop, so phase rows are gathered as a
/// side effect and written from main after RunSpecifiedBenchmarks.)
std::map<std::string, std::vector<SpanStat>>& PhaseRows() {
  static auto* rows = new std::map<std::string, std::vector<SpanStat>>();
  return *rows;
}

/// Clears both registries so the upcoming run's spans are attributable to
/// exactly one method.
void ResetObservability() {
  MetricsRegistry::Global().ResetValues();
  TraceRegistry::Global().ResetValues();
}

void CapturePhases(const std::string& method) {
  PhaseRows()[method] = TraceRegistry::Global().Snapshot();
}

void BM_Embedder(benchmark::State& state, const std::string& name) {
  const Dataset& ds = CoraDataset();
  ResetObservability();
  for (auto _ : state) {
    Rng rng(7);
    auto embedder = CreateEmbedder(name);
    ANECI_CHECK(embedder.ok());
    EmbedOptions eo;
    eo.rng = &rng;
    eo.dim = 16;
    eo.epochs = kEpochs;
    Matrix z = embedder.value()->Embed(ds.graph, eo);
    benchmark::DoNotOptimize(z.data());
  }
  CapturePhases(name);
}

void BM_AnECI(benchmark::State& state) {
  const Dataset& ds = CoraDataset();
  ResetObservability();
  for (auto _ : state) {
    Rng rng(7);
    AneciConfig cfg;
    cfg.epochs = kEpochs;
    // The scalable default: sampled reconstruction (the paper's dense
    // N^2 decoder maps to a GPU-friendly op; the sampled loss is the CPU
    // equivalent, see DESIGN.md).
    cfg.reconstruction = ReconstructionMode::kSampled;
    AneciEmbedder embedder(cfg);
    EmbedOptions eo;
    eo.rng = &rng;
    Matrix z = embedder.Embed(ds.graph, eo);
    benchmark::DoNotOptimize(z.data());
  }
  CapturePhases("AnECI");
}

void BM_Gcn(benchmark::State& state, bool robust) {
  const Dataset& ds = CoraDataset();
  ResetObservability();
  for (auto _ : state) {
    Rng rng(7);
    GcnClassifier::Options opt;
    opt.epochs = kEpochs;
    opt.robust = robust;
    GcnClassifier model(opt);
    model.Fit(ds, rng);
    benchmark::DoNotOptimize(model.predictions().data());
  }
  CapturePhases(robust ? "RGCN" : "GCN");
}

// Full-scale Pubmed AnECI run, registered only under --full. One pinned
// iteration: the point is the absolute wall time at paper scale (and the
// memory-planner/RSS footprint), not a statistically tight mean.
void BM_AnECIPubmedFull(benchmark::State& state) {
  static const Dataset* ds = new Dataset(MakePubmed(42, /*scale=*/1.0));
  ResetObservability();
  for (auto _ : state) {
    Rng rng(7);
    AneciConfig cfg;
    cfg.epochs = kEpochs;
    cfg.reconstruction = ReconstructionMode::kSampled;
    AneciEmbedder embedder(cfg);
    EmbedOptions eo;
    eo.rng = &rng;
    Matrix z = embedder.Embed(ds->graph, eo);
    benchmark::DoNotOptimize(z.data());
  }
  CapturePhases("AnECI-Pubmed-full");
}

Status WritePhaseCsv() {
  const char* env = std::getenv("ANECI_BENCH_OUTDIR");
  const std::string outdir = env != nullptr ? env : "results";
  std::string csv = "method,phase,count,total_ms,mean_ms\n";
  for (const auto& [method, spans] : PhaseRows()) {
    for (const SpanStat& s : spans) {
      csv += method + "," + s.path + "," + std::to_string(s.count) + "," +
             JsonDouble(s.total_ms) + "," +
             JsonDouble(s.count ? s.total_ms / static_cast<double>(s.count)
                                : 0.0) +
             "\n";
    }
  }
  Status st = Env::Default()->CreateDir(outdir);
  if (!st.ok()) return st;
  return Env::Default()->WriteFileAtomic(outdir + "/table5_phases.csv", csv);
}

BENCHMARK_CAPTURE(BM_Embedder, DeepWalk, std::string("DeepWalk"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, LINE, std::string("LINE"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, GAE, std::string("GAE"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, VGAE, std::string("VGAE"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, DGI, std::string("DGI"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, DANE, std::string("DANE"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, DONE, std::string("DONE"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, ADONE, std::string("ADONE"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Embedder, AGE, std::string("AGE"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Gcn, GCN, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Gcn, RGCN, true)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnECI)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aneci

int main(int argc, char** argv) {
  bool full = false;
  std::string metrics_out;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      full = true;
      continue;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(14);
      continue;
    }
    args.push_back(argv[i]);
  }
  if (full) {
    // Paper scale for the whole table (CoraDataset() reads this lazily, on
    // the first benchmark's first iteration — after this point).
    setenv("ANECI_BENCH_SCALE", "1.0", /*overwrite=*/0);
    benchmark::RegisterBenchmark("BM_AnECIPubmedFull",
                                 aneci::BM_AnECIPubmedFull)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  aneci::Status st = aneci::WritePhaseCsv();
  if (!st.ok()) {
    std::fprintf(stderr, "phase csv: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!metrics_out.empty()) {
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
      // ru_maxrss is KiB on Linux.
      aneci::MetricsRegistry::Global()
          .GetGauge("process/peak_rss_bytes", aneci::MetricClass::kScheduling)
          ->Set(static_cast<double>(ru.ru_maxrss) * 1024.0);
    }
    st = aneci::WriteMetricsJsonl(metrics_out, aneci::Env::Default());
    if (!st.ok()) {
      std::fprintf(stderr, "metrics-out: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("metrics: %s\n", metrics_out.c_str());
  }
  return 0;
}

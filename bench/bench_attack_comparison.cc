// Extra ablation (beyond the paper): attack strength at equal edge budget.
// Compares Random, DICE and FGA poisoning at the same perturbation budget,
// measuring GCN and AnECI test accuracy on the poisoned graph. Expected
// ordering of damage: FGA (gradient-targeted) > DICE (label-aware) >
// Random, with AnECI degrading less than GCN under each.
#include "attack/dice.h"
#include "attack/fga.h"
#include "attack/random_attack.h"
#include "attack/surrogate.h"
#include "bench/common.h"
#include "embed/gcn_classifier.h"
#include "tasks/metrics.h"
#include "tasks/node_classification.h"
#include "util/table.h"

namespace aneci::bench {
namespace {

double GcnAccuracy(const Dataset& poisoned, const BenchEnv& env, Rng& rng) {
  GcnClassifier::Options opt;
  opt.epochs = env.epochs;
  GcnClassifier model(opt);
  model.Fit(poisoned, rng);
  return model.Accuracy(poisoned, poisoned.test_idx);
}

double AneciAccuracy(const Dataset& poisoned, const BenchEnv& env, Rng& rng) {
  Matrix z = TrainAneciValidated(poisoned, DefaultAneciConfig(env), rng);
  return EvaluateEmbedding(z, poisoned, rng).accuracy;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchEnv env = BenchEnv::FromFlags(flags);
  PrintEnv("Attack comparison at equal budget (Cora)", env);
  const std::string dataset_name = flags.GetString("dataset", "cora");
  const double budget = flags.GetDouble("budget", 0.2);

  Table table({"Attack", "GCN ACC", "AnECI ACC"});
  for (const std::string& attack : {"none", "random", "dice", "fga"}) {
    std::vector<double> gcn_accs, aneci_accs;
    for (int round = 0; round < env.rounds; ++round) {
      Dataset ds = MakeScaled(dataset_name, env, round);
      Rng rng(env.seed + round);
      Dataset poisoned = ds;
      if (attack == "random") {
        poisoned.graph = RandomAttack(ds.graph, budget, rng).attacked;
      } else if (attack == "dice") {
        DiceOptions opt;
        opt.budget = budget;
        poisoned.graph = DiceAttack(ds.graph, opt, rng).attacked;
      } else if (attack == "fga") {
        // Spread the same edge budget over the highest-degree test nodes.
        std::vector<int> targets = SelectAttackTargets(ds, 10, 20, rng);
        FgaOptions opt;
        opt.perturbations_per_target = std::max(
            1, static_cast<int>(budget * ds.graph.num_edges() /
                                std::max<size_t>(1, targets.size())));
        poisoned.graph = FgaAttack(ds, targets, opt, rng);
      }
      poisoned.graph.SetLabels(ds.graph.labels());
      gcn_accs.push_back(GcnAccuracy(poisoned, env, rng));
      aneci_accs.push_back(AneciAccuracy(poisoned, env, rng));
    }
    table.AddRow()
        .Add(attack)
        .AddF(ComputeMeanStd(gcn_accs).mean, 3)
        .AddF(ComputeMeanStd(aneci_accs).mean, 3);
    std::fprintf(stderr, "  %s done\n", attack.c_str());
  }

  table.Print("Attack comparison — accuracy at equal perturbation budget");
  WriteBenchCsv(table, env, "attack_comparison.csv");
  return 0;
}

}  // namespace
}  // namespace aneci::bench

int main(int argc, char** argv) { return aneci::bench::Run(argc, argv); }

// Serving-layer load benchmark: sustained mixed query traffic from N client
// threads over real loopback sockets, with hot-swaps landing mid-run.
//
// The run is a correctness gate as well as a throughput probe: every query
// must succeed (zero {"ok":false} responses, zero engine errors) across at
// least three atomic snapshot swaps issued while traffic is in flight.
// Latency percentiles come from the serving layer's own metrics registry
// histograms (HistogramQuantile), throughput from the request counters —
// the bench adds no instrumentation of its own beyond wall-clock QPS.
//
//   bench_serve_load [--clients=4] [--requests=2000] [--swaps=3]
//                    [--nodes=2000] [--dim=32] [--knn-every=16]
//                    [--chaos] [--chaos-seed=7]
//
// --chaos runs the same traffic through FaultInjectingSocketIo on both
// sides of the wire (docs/serving.md §6): short reads, delayed reads,
// resets, and torn writes on a deterministic seeded schedule, with the
// server's resilience limits engaged and clients calling through
// CallWithRetry. The clean-run zero-failure gate is replaced by the chaos
// invariant — every query reaches a definite outcome (ok, typed error, or
// exhausted retries; never a hang) and the server drains to zero
// connections — and the report adds shed/retry/fault rates alongside p99.
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "serve/client.h"
#include "serve/model_artifact.h"
#include "serve/model_snapshot.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/socket_io.h"
#include "util/env.h"
#include "util/metrics.h"
#include "util/table.h"
#include "util/timer.h"

namespace aneci::bench {
namespace {

using serve::EmbedServer;
using serve::EmbedService;
using serve::ModelArtifact;
using serve::ModelSnapshot;
using serve::ServeClient;

/// Deterministic synthetic artifact; `generation` shifts every value so each
/// swap target is distinguishable from the last.
ModelArtifact MakeArtifact(int nodes, int dim, int generation) {
  ModelArtifact artifact;
  artifact.num_nodes = nodes;
  artifact.embed_dim = dim;
  artifact.num_classes = 5;
  artifact.z = Matrix(nodes, dim);
  artifact.p = Matrix(nodes, dim);
  artifact.proba = Matrix(nodes, artifact.num_classes);
  Rng rng(1234 + generation);
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < dim; ++j) {
      artifact.z(i, j) = rng.NextDouble() + generation;
      artifact.p(i, j) = 1.0 / dim;
    }
    for (int c = 0; c < artifact.num_classes; ++c)
      artifact.proba(i, c) = 1.0 / artifact.num_classes;
  }
  artifact.community.assign(nodes, 0);
  artifact.anomaly.assign(nodes, 0.5);
  return artifact;
}

struct ClientStats {
  uint64_t ok = 0;
  /// Clean mode: any non-{"ok":true} outcome (the gate requires zero).
  uint64_t failed = 0;
  /// Chaos mode only: typed {"ok":false} replies (shed, deadline, bad op)
  /// and transport-level Status failures after retries were exhausted.
  /// Every outcome lands in exactly one bucket — that sum being `requests`
  /// is the chaos gate.
  uint64_t typed_errors = 0;
  uint64_t transport_errors = 0;
};

/// One client thread: `requests` mixed queries over its own connection
/// (`io` = nullptr for the default transport). In chaos mode queries go
/// through CallWithRetry and failures are counted, not printed — they are
/// the expected output of the fault schedule.
ClientStats RunClient(int port, int nodes, int requests, int knn_every,
                      uint64_t seed, std::atomic<uint64_t>* progress,
                      serve::SocketIo* io = nullptr, bool chaos = false) {
  ClientStats stats;
  StatusOr<ServeClient> client = ServeClient::Connect(port, io);
  ANECI_CHECK(client.ok());
  serve::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 16;
  policy.jitter_seed = seed;
  Rng rng(seed);
  const char* point_ops[] = {"lookup", "classify", "anomaly", "community"};
  for (int i = 0; i < requests; ++i) {
    std::string body;
    if (knn_every > 0 && i % knn_every == 0) {
      body = "{\"op\":\"knn\",\"id\":" +
             std::to_string(rng.NextU64() % nodes) + ",\"k\":10}";
    } else {
      body = std::string("{\"op\":\"") + point_ops[rng.NextU64() % 4] +
             "\",\"id\":" + std::to_string(rng.NextU64() % nodes) + "}";
    }
    StatusOr<std::string> reply = chaos
                                      ? client.value().CallWithRetry(body,
                                                                     policy)
                                      : client.value().Call(body);
    if (reply.ok() && reply.value().rfind("{\"ok\":true", 0) == 0) {
      ++stats.ok;
    } else if (chaos) {
      ++(reply.ok() ? stats.typed_errors : stats.transport_errors);
    } else {
      ++stats.failed;
      std::fprintf(stderr, "FAILED %s -> %s\n", body.c_str(),
                   reply.ok() ? reply.value().c_str()
                              : reply.status().ToString().c_str());
    }
    progress->fetch_add(1, std::memory_order_relaxed);
  }
  return stats;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const int clients = flags.GetInt("clients", 4);
  const int requests = flags.GetInt("requests", 2000);
  const int swaps = flags.GetInt("swaps", 3);
  const int nodes = flags.GetInt("nodes", 2000);
  const int dim = flags.GetInt("dim", 32);
  const int knn_every = flags.GetInt("knn-every", 16);
  const bool chaos = flags.Has("chaos");
  const uint64_t chaos_seed =
      static_cast<uint64_t>(flags.GetInt("chaos-seed", 7));
  const std::string outdir = flags.GetString("outdir", "results");
  std::printf(
      "serve load: %d clients x %d requests, %d nodes, dim %d, "
      ">=%d mid-run hot-swaps%s\n",
      clients, requests, nodes, dim, swaps,
      chaos ? " [CHAOS: faulty transports, retries engaged]" : "");

  // Artifact generation 0 serves first; generations 1..swaps are the swap
  // targets, written up front so the swap path only measures load+publish.
  const std::string dir = "/tmp/aneci_bench_serve_load";
  ANECI_CHECK(Env::Default()->CreateDir(dir).ok());
  std::vector<std::string> artifact_paths;
  for (int g = 0; g <= swaps; ++g) {
    std::string path = dir + "/model_g" + std::to_string(g) + ".ansv";
    ANECI_CHECK(SaveModelArtifact(MakeArtifact(nodes, dim, g), path).ok());
    artifact_paths.push_back(std::move(path));
  }
  StatusOr<std::shared_ptr<const ModelSnapshot>> initial =
      ModelSnapshot::Load(artifact_paths[0], /*version=*/1);
  ANECI_CHECK(initial.ok());
  EmbedService service(std::move(initial).value());

  // Chaos transports: deterministic seeded schedules on both sides of the
  // wire, plus the server's resilience limits engaged so shedding and
  // deadline reaping show up in the report.
  serve::SocketFaultSchedule server_faults;
  server_faults.seed = chaos_seed;
  server_faults.short_read = 0.20;
  server_faults.delayed_read = 0.05;
  server_faults.delay_ms = 2;
  server_faults.reset_read = 0.01;
  server_faults.partial_write = 0.01;
  serve::FaultInjectingSocketIo server_io(server_faults);
  serve::SocketFaultSchedule client_faults;
  client_faults.seed = chaos_seed ^ 0x9e3779b97f4a7c15ull;
  client_faults.reset_write = 0.02;
  client_faults.short_read = 0.10;
  serve::FaultInjectingSocketIo client_io(client_faults);

  serve::ServerOptions options;
  if (chaos) {
    options.max_connections = clients + 2;  // fleet + control + headroom
    options.read_deadline_ms = 5000;
    options.write_deadline_ms = 5000;
    options.max_pending_requests = clients * 8;
    options.drain_timeout_ms = 2000;
  }
  EmbedServer server(&service, options, chaos ? &server_io : nullptr);
  ANECI_CHECK(server.Start(0).ok());

  // Swapper: issues swap `g` once overall progress passes g/(swaps+1) of the
  // total, so the swaps land spread across the run, under full traffic.
  const uint64_t total = static_cast<uint64_t>(clients) * requests;
  std::atomic<uint64_t> progress{0};
  std::atomic<int> swaps_acked{0};
  std::thread swapper([&] {
    // The control connection stays on the clean default transport even in
    // chaos mode (the server-side faults still apply): swaps are
    // non-idempotent, so the bench retries them only via the explicit
    // opt-in, and tolerates lost acks rather than gating on them.
    StatusOr<ServeClient> control = ServeClient::Connect(server.port());
    ANECI_CHECK(control.ok());
    serve::RetryPolicy swap_policy;
    swap_policy.retry_non_idempotent = true;
    swap_policy.jitter_seed = chaos_seed + 99;
    for (int g = 1; g <= swaps; ++g) {
      const uint64_t threshold = total * g / (swaps + 1);
      while (progress.load(std::memory_order_relaxed) < threshold)
        std::this_thread::yield();
      const std::string body =
          "{\"op\":\"swap\",\"path\":\"" + artifact_paths[g] + "\"}";
      StatusOr<std::string> ack =
          chaos ? control.value().CallWithRetry(body, swap_policy)
                : control.value().Call(body);
      if (chaos && (!ack.ok() ||
                    ack.value().rfind("{\"ok\":true", 0) != 0)) {
        std::printf("  swap %d lost to chaos (%s)\n", g,
                    ack.ok() ? ack.value().c_str()
                             : ack.status().ToString().c_str());
        continue;
      }
      ANECI_CHECK(ack.ok());
      ANECI_CHECK(ack.value().rfind("{\"ok\":true", 0) == 0);
      swaps_acked.fetch_add(1);
      std::printf("  swap %d acked: %s\n", g, ack.value().c_str());
    }
  });

  Timer wall;
  std::vector<std::thread> threads;
  std::vector<ClientStats> stats(clients);
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      stats[c] = RunClient(server.port(), nodes, requests, knn_every,
                           77 + c, &progress, chaos ? &client_io : nullptr,
                           chaos);
    });
  for (std::thread& t : threads) t.join();
  swapper.join();
  const double seconds = wall.Seconds();
  server.Stop();

  uint64_t ok = 0, failed = 0, typed_errors = 0, transport_errors = 0;
  for (const ClientStats& s : stats) {
    ok += s.ok;
    failed += s.failed;
    typed_errors += s.typed_errors;
    transport_errors += s.transport_errors;
  }

  MetricsRegistry& registry = MetricsRegistry::Global();
  Table table({"op", "count", "p50_ms", "p99_ms", "max_ms"});
  uint64_t served = 0;
  std::string ops_json;
  for (const char* op :
       {"lookup", "knn", "classify", "anomaly", "community", "stats"}) {
    Histogram* latency = registry.GetHistogram(
        std::string("serve/latency_ms/") + op, {}, MetricClass::kScheduling);
    if (latency->Count() == 0) continue;
    served += latency->Count();
    table.AddRow()
        .Add(op)
        .Add(std::to_string(latency->Count()))
        .AddF(HistogramQuantile(*latency, 0.5))
        .AddF(HistogramQuantile(*latency, 0.99))
        .AddF(latency->Max());
    if (!ops_json.empty()) ops_json += ",";
    ops_json += "\"" + std::string(op) +
                "\":{\"count\":" + std::to_string(latency->Count()) +
                ",\"p50_ms\":" + JsonDouble(HistogramQuantile(*latency, 0.5)) +
                ",\"p99_ms\":" + JsonDouble(HistogramQuantile(*latency, 0.99)) +
                ",\"max_ms\":" + JsonDouble(latency->Max()) + "}";
  }
  table.Print("serve latency (registry histograms)");

  const uint64_t engine_errors =
      registry.GetCounter("serve/errors", MetricClass::kDeterministic)->Value();
  const uint64_t published =
      registry.GetCounter("serve/swaps", MetricClass::kDeterministic)->Value();
  std::printf(
      "\n%llu queries in %.2fs (%.0f QPS), %llu failed, %llu engine errors, "
      "%llu hot-swaps, final snapshot v%.0f\n",
      static_cast<unsigned long long>(ok + failed), seconds,
      (ok + failed) / seconds, static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(engine_errors),
      static_cast<unsigned long long>(published),
      registry.GetGauge("serve/snapshot_version", MetricClass::kDeterministic)
          ->Value());

  // Machine-readable summary (BENCH_serve_load.json) alongside the console
  // report, written before the gates so a failing run still leaves evidence.
  {
    std::string json = "{\"bench\":\"serve_load\"";
    json += ",\"chaos\":" + std::string(chaos ? "true" : "false");
    json += ",\"clients\":" + std::to_string(clients);
    json += ",\"requests_per_client\":" + std::to_string(requests);
    json += ",\"total_requests\":" + std::to_string(total);
    json += ",\"seconds\":" + JsonDouble(seconds);
    json += ",\"qps\":" + JsonDouble((ok + failed) / seconds);
    json += ",\"ops\":{" + ops_json + "}";
    json += ",\"outcomes\":{\"ok\":" + std::to_string(ok) +
            ",\"failed\":" + std::to_string(failed) +
            ",\"typed_errors\":" + std::to_string(typed_errors) +
            ",\"transport_errors\":" + std::to_string(transport_errors) + "}";
    json += ",\"engine_errors\":" + std::to_string(engine_errors);
    json += ",\"hot_swaps\":" + std::to_string(published);
    if (chaos) {
      const uint64_t shed =
          registry.GetCounter("serve/shed_requests", MetricClass::kScheduling)
              ->Value();
      const uint64_t retries =
          registry.GetCounter("serve/client_retries", MetricClass::kScheduling)
              ->Value();
      const int faults =
          server_io.injected_faults() + client_io.injected_faults();
      json += ",\"chaos_rates\":{\"injected_faults\":" +
              std::to_string(faults) +
              ",\"fault_rate\":" + JsonDouble(static_cast<double>(faults) /
                                              total) +
              ",\"retries\":" + std::to_string(retries) +
              ",\"retry_rate\":" + JsonDouble(static_cast<double>(retries) /
                                              total) +
              ",\"shed_requests\":" + std::to_string(shed) +
              ",\"shed_rate\":" + JsonDouble(static_cast<double>(shed) /
                                             total) +
              ",\"deadline_kills\":" +
              std::to_string(registry
                                 .GetCounter("serve/deadline_kills",
                                             MetricClass::kScheduling)
                                 ->Value()) +
              "}";
    }
    json += "}\n";
    WriteBenchJson(json, outdir, "BENCH_serve_load.json");
  }

  if (chaos) {
    const uint64_t shed_requests =
        registry.GetCounter("serve/shed_requests", MetricClass::kScheduling)
            ->Value();
    const uint64_t shed_connections =
        registry
            .GetCounter("serve/shed_connections", MetricClass::kScheduling)
            ->Value();
    const uint64_t deadline_kills =
        registry.GetCounter("serve/deadline_kills", MetricClass::kScheduling)
            ->Value();
    const uint64_t retries =
        registry.GetCounter("serve/client_retries", MetricClass::kScheduling)
            ->Value();
    std::printf(
        "chaos: %d injected faults (server) + %d (client), %llu retries "
        "(%.3f/query), %llu shed requests + %llu shed connections "
        "(shed rate %.3f), %llu deadline kills\n",
        server_io.injected_faults(), client_io.injected_faults(),
        static_cast<unsigned long long>(retries),
        static_cast<double>(retries) / total,
        static_cast<unsigned long long>(shed_requests),
        static_cast<unsigned long long>(shed_connections),
        static_cast<double>(shed_requests) / total,
        static_cast<unsigned long long>(deadline_kills));
    std::printf("chaos outcomes: %llu ok, %llu typed errors, %llu "
                "transport errors (all definite)\n",
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(typed_errors),
                static_cast<unsigned long long>(transport_errors));
    // The chaos gate: every query reached a definite outcome, most traffic
    // still landed through the retry loop, acked swaps published, and the
    // server drained clean — no leaked connection threads.
    ANECI_CHECK(ok + typed_errors + transport_errors == total);
    ANECI_CHECK(ok > 0);
    ANECI_CHECK(engine_errors == 0);
    ANECI_CHECK(published >= static_cast<uint64_t>(swaps_acked.load()));
    ANECI_CHECK(server.active_connections() == 0);
    std::printf("PASS: all %llu queries definite under injected faults\n",
                static_cast<unsigned long long>(total));
    return 0;
  }

  // The gate: sustained traffic across >=3 hot-swaps with zero failures.
  ANECI_CHECK(served == total);
  ANECI_CHECK(failed == 0);
  ANECI_CHECK(engine_errors == 0);
  ANECI_CHECK(published >= static_cast<uint64_t>(swaps));
  ANECI_CHECK(server.active_connections() == 0);
  std::printf("PASS: zero failed queries across %llu hot-swaps\n",
              static_cast<unsigned long long>(published));
  return 0;
}

}  // namespace
}  // namespace aneci::bench

int main(int argc, char** argv) { return aneci::bench::Run(argc, argv); }

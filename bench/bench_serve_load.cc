// Serving-layer load benchmark: sustained mixed query traffic from N client
// threads over real loopback sockets, with hot-swaps landing mid-run.
//
// The run is a correctness gate as well as a throughput probe: every query
// must succeed (zero {"ok":false} responses, zero engine errors) across at
// least three atomic snapshot swaps issued while traffic is in flight.
// Latency percentiles come from the serving layer's own metrics registry
// histograms (HistogramQuantile), throughput from the request counters —
// the bench adds no instrumentation of its own beyond wall-clock QPS.
//
//   bench_serve_load [--clients=4] [--requests=2000] [--swaps=3]
//                    [--nodes=2000] [--dim=32] [--knn-every=16]
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "serve/client.h"
#include "serve/model_artifact.h"
#include "serve/model_snapshot.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/env.h"
#include "util/metrics.h"
#include "util/table.h"
#include "util/timer.h"

namespace aneci::bench {
namespace {

using serve::EmbedServer;
using serve::EmbedService;
using serve::ModelArtifact;
using serve::ModelSnapshot;
using serve::ServeClient;

/// Deterministic synthetic artifact; `generation` shifts every value so each
/// swap target is distinguishable from the last.
ModelArtifact MakeArtifact(int nodes, int dim, int generation) {
  ModelArtifact artifact;
  artifact.num_nodes = nodes;
  artifact.embed_dim = dim;
  artifact.num_classes = 5;
  artifact.z = Matrix(nodes, dim);
  artifact.p = Matrix(nodes, dim);
  artifact.proba = Matrix(nodes, artifact.num_classes);
  Rng rng(1234 + generation);
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < dim; ++j) {
      artifact.z(i, j) = rng.NextDouble() + generation;
      artifact.p(i, j) = 1.0 / dim;
    }
    for (int c = 0; c < artifact.num_classes; ++c)
      artifact.proba(i, c) = 1.0 / artifact.num_classes;
  }
  artifact.community.assign(nodes, 0);
  artifact.anomaly.assign(nodes, 0.5);
  return artifact;
}

struct ClientStats {
  uint64_t ok = 0;
  uint64_t failed = 0;
};

/// One client thread: `requests` mixed queries over its own connection.
/// Any response that is not {"ok":true,...} counts as failed.
ClientStats RunClient(int port, int nodes, int requests, int knn_every,
                      uint64_t seed, std::atomic<uint64_t>* progress) {
  ClientStats stats;
  StatusOr<ServeClient> client = ServeClient::Connect(port);
  ANECI_CHECK(client.ok());
  Rng rng(seed);
  const char* point_ops[] = {"lookup", "classify", "anomaly", "community"};
  for (int i = 0; i < requests; ++i) {
    std::string body;
    if (knn_every > 0 && i % knn_every == 0) {
      body = "{\"op\":\"knn\",\"id\":" +
             std::to_string(rng.NextU64() % nodes) + ",\"k\":10}";
    } else {
      body = std::string("{\"op\":\"") + point_ops[rng.NextU64() % 4] +
             "\",\"id\":" + std::to_string(rng.NextU64() % nodes) + "}";
    }
    StatusOr<std::string> reply = client.value().Call(body);
    if (reply.ok() && reply.value().rfind("{\"ok\":true", 0) == 0) {
      ++stats.ok;
    } else {
      ++stats.failed;
      std::fprintf(stderr, "FAILED %s -> %s\n", body.c_str(),
                   reply.ok() ? reply.value().c_str()
                              : reply.status().ToString().c_str());
    }
    progress->fetch_add(1, std::memory_order_relaxed);
  }
  return stats;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const int clients = flags.GetInt("clients", 4);
  const int requests = flags.GetInt("requests", 2000);
  const int swaps = flags.GetInt("swaps", 3);
  const int nodes = flags.GetInt("nodes", 2000);
  const int dim = flags.GetInt("dim", 32);
  const int knn_every = flags.GetInt("knn-every", 16);
  std::printf(
      "serve load: %d clients x %d requests, %d nodes, dim %d, "
      ">=%d mid-run hot-swaps\n",
      clients, requests, nodes, dim, swaps);

  // Artifact generation 0 serves first; generations 1..swaps are the swap
  // targets, written up front so the swap path only measures load+publish.
  const std::string dir = "/tmp/aneci_bench_serve_load";
  ANECI_CHECK(Env::Default()->CreateDir(dir).ok());
  std::vector<std::string> artifact_paths;
  for (int g = 0; g <= swaps; ++g) {
    std::string path = dir + "/model_g" + std::to_string(g) + ".ansv";
    ANECI_CHECK(SaveModelArtifact(MakeArtifact(nodes, dim, g), path).ok());
    artifact_paths.push_back(std::move(path));
  }
  StatusOr<std::shared_ptr<const ModelSnapshot>> initial =
      ModelSnapshot::Load(artifact_paths[0], /*version=*/1);
  ANECI_CHECK(initial.ok());
  EmbedService service(std::move(initial).value());
  EmbedServer server(&service);
  ANECI_CHECK(server.Start(0).ok());

  // Swapper: issues swap `g` once overall progress passes g/(swaps+1) of the
  // total, so the swaps land spread across the run, under full traffic.
  const uint64_t total = static_cast<uint64_t>(clients) * requests;
  std::atomic<uint64_t> progress{0};
  std::thread swapper([&] {
    StatusOr<ServeClient> control = ServeClient::Connect(server.port());
    ANECI_CHECK(control.ok());
    for (int g = 1; g <= swaps; ++g) {
      const uint64_t threshold = total * g / (swaps + 1);
      while (progress.load(std::memory_order_relaxed) < threshold)
        std::this_thread::yield();
      StatusOr<std::string> ack = control.value().Call(
          "{\"op\":\"swap\",\"path\":\"" + artifact_paths[g] + "\"}");
      ANECI_CHECK(ack.ok());
      ANECI_CHECK(ack.value().rfind("{\"ok\":true", 0) == 0);
      std::printf("  swap %d acked: %s\n", g, ack.value().c_str());
    }
  });

  Timer wall;
  std::vector<std::thread> threads;
  std::vector<ClientStats> stats(clients);
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      stats[c] = RunClient(server.port(), nodes, requests, knn_every,
                           77 + c, &progress);
    });
  for (std::thread& t : threads) t.join();
  swapper.join();
  const double seconds = wall.Seconds();
  server.Stop();

  uint64_t ok = 0, failed = 0;
  for (const ClientStats& s : stats) {
    ok += s.ok;
    failed += s.failed;
  }

  MetricsRegistry& registry = MetricsRegistry::Global();
  Table table({"op", "count", "p50_ms", "p99_ms", "max_ms"});
  uint64_t served = 0;
  for (const char* op :
       {"lookup", "knn", "classify", "anomaly", "community", "stats"}) {
    Histogram* latency = registry.GetHistogram(
        std::string("serve/latency_ms/") + op, {}, MetricClass::kScheduling);
    if (latency->Count() == 0) continue;
    served += latency->Count();
    table.AddRow()
        .Add(op)
        .Add(std::to_string(latency->Count()))
        .AddF(HistogramQuantile(*latency, 0.5))
        .AddF(HistogramQuantile(*latency, 0.99))
        .AddF(latency->Max());
  }
  table.Print("serve latency (registry histograms)");

  const uint64_t engine_errors =
      registry.GetCounter("serve/errors", MetricClass::kDeterministic)->Value();
  const uint64_t published =
      registry.GetCounter("serve/swaps", MetricClass::kDeterministic)->Value();
  std::printf(
      "\n%llu queries in %.2fs (%.0f QPS), %llu failed, %llu engine errors, "
      "%llu hot-swaps, final snapshot v%.0f\n",
      static_cast<unsigned long long>(ok + failed), seconds,
      (ok + failed) / seconds, static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(engine_errors),
      static_cast<unsigned long long>(published),
      registry.GetGauge("serve/snapshot_version", MetricClass::kDeterministic)
          ->Value());

  // The gate: sustained traffic across >=3 hot-swaps with zero failures.
  ANECI_CHECK(served == total);
  ANECI_CHECK(failed == 0);
  ANECI_CHECK(engine_errors == 0);
  ANECI_CHECK(published >= static_cast<uint64_t>(swaps));
  std::printf("PASS: zero failed queries across %llu hot-swaps\n",
              static_cast<unsigned long long>(published));
  return 0;
}

}  // namespace
}  // namespace aneci::bench

int main(int argc, char** argv) { return aneci::bench::Run(argc, argv); }

// Reproduces Table IV: ablation of AnECI's modules on the Cora analogue.
// Variants: raw features / +Encoder (untrained propagation) / +Modularity
// (no reconstruction) / full model; evaluated on node classification (ACC),
// anomaly detection (AUC, Mix outliers) and community detection (Q).
#include "anomaly/outlier_injection.h"
#include "bench/common.h"
#include "tasks/community.h"
#include "tasks/metrics.h"
#include "tasks/node_classification.h"
#include "util/table.h"

namespace aneci::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchEnv env = BenchEnv::FromFlags(flags);
  PrintEnv("Table IV: ablation study (Cora)", env);
  const std::string dataset_name = flags.GetString("dataset", "cora");

  const std::vector<AneciVariant> variants = {
      AneciVariant::kRawFeature, AneciVariant::kEncoder,
      AneciVariant::kModularity, AneciVariant::kFull};

  Table table({"Variant", "Classification ACC", "Anomaly AUC (Mix)",
               "Community Q"});

  for (AneciVariant variant : variants) {
    std::vector<double> accs, aucs, mods;
    for (int round = 0; round < env.rounds; ++round) {
      Dataset ds = MakeScaled(dataset_name, env, round);
      Rng rng(env.seed + round);
      AneciConfig cfg = DefaultAneciConfig(env);

      // Per-variant configs differ in embed_dim, so the options carry only
      // the RNG and leave the config's width/budget untouched.
      EmbedOptions eo;
      eo.rng = &rng;

      // Classification on the clean graph.
      AneciEmbedder embedder(cfg, variant);
      Matrix z = embedder.Embed(ds.graph, eo);
      accs.push_back(EvaluateEmbedding(z, ds, rng).accuracy * 100.0);

      // Anomaly detection with mixed implanted outliers.
      OutlierInjectionResult injected =
          InjectOutliers(ds.graph, OutlierKind::kMix, 0.05, rng);
      AneciEmbedder anomaly_embedder(cfg, variant);
      std::vector<double> scores =
          anomaly_embedder.ScoreAnomalies(injected.graph, eo);
      aucs.push_back(AreaUnderRoc(scores, injected.is_outlier));

      // Community detection from the membership matrix.
      AneciConfig comm_cfg = cfg;
      comm_cfg.embed_dim = ds.graph.num_classes();
      AneciEmbedder comm_embedder(comm_cfg, variant);
      comm_embedder.Embed(ds.graph, eo);
      mods.push_back(
          DetectCommunitiesArgmax(ds.graph, comm_embedder.last_membership())
              .modularity);
    }
    table.AddRow()
        .Add(AneciVariantName(variant))
        .AddMeanStd(ComputeMeanStd(accs).mean, ComputeMeanStd(accs).std, 1)
        .AddF(ComputeMeanStd(aucs).mean, 3)
        .AddF(ComputeMeanStd(mods).mean, 3);
    std::fprintf(stderr, "  %s done\n", AneciVariantName(variant));
  }

  table.Print("Table IV — module ablation on " + dataset_name);
  WriteBenchCsv(table, env, "table4_ablation.csv");
  return 0;
}

}  // namespace
}  // namespace aneci::bench

int main(int argc, char** argv) { return aneci::bench::Run(argc, argv); }

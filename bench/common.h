// Shared helpers for the experiment harnesses: a minimal flag parser,
// dataset construction at a CPU-friendly scale, and uniform method
// configuration. Every bench accepts:
//   --scale=<f>    dataset size multiplier vs the paper (default 0.15)
//   --rounds=<n>   independent repetitions averaged per cell
//   --seed=<n>     base RNG seed
//   --epochs=<n>   training epochs for the neural methods
//   --outdir=<d>   directory for generated CSVs (default "results")
//   --full         paper-scale datasets (scale = 1), paper epoch budgets
#ifndef ANECI_BENCH_COMMON_H_
#define ANECI_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/aneci.h"
#include "data/datasets.h"
#include "embed/aneci_embedder.h"
#include "embed/embedder.h"
#include "tasks/node_classification.h"
#include "util/check.h"
#include "util/env.h"
#include "util/table.h"

namespace aneci::bench {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool Has(const std::string& name) const {
    for (const std::string& a : args_)
      if (a == "--" + name || a.rfind("--" + name + "=", 0) == 0) return true;
    return false;
  }

  double GetDouble(const std::string& name, double fallback) const {
    const std::string* v = Find(name);
    return v ? std::atof(v->c_str()) : fallback;
  }

  int GetInt(const std::string& name, int fallback) const {
    const std::string* v = Find(name);
    return v ? std::atoi(v->c_str()) : fallback;
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    const std::string* v = Find(name);
    return v ? *v : fallback;
  }

 private:
  const std::string* Find(const std::string& name) const {
    static thread_local std::string value;
    const std::string prefix = "--" + name + "=";
    for (const std::string& a : args_) {
      if (a.rfind(prefix, 0) == 0) {
        value = a.substr(prefix.size());
        return &value;
      }
    }
    return nullptr;
  }

  std::vector<std::string> args_;
};

struct BenchEnv {
  double scale = 0.15;
  int rounds = 1;
  uint64_t seed = 42;
  int epochs = 60;
  bool full = false;
  /// Generated CSVs land here (created on first write) instead of polluting
  /// the repo root; results/ is gitignored.
  std::string outdir = "results";

  static BenchEnv FromFlags(const Flags& flags) {
    BenchEnv env;
    env.full = flags.Has("full");
    env.scale = flags.GetDouble("scale", env.full ? 1.0 : 0.15);
    env.rounds = flags.GetInt("rounds", env.full ? 10 : 1);
    env.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    env.epochs = flags.GetInt("epochs", env.full ? 150 : 60);
    env.outdir = flags.GetString("outdir", env.outdir);
    return env;
  }
};

/// Writes `table` as CSV to `<env.outdir>/<filename>` (directory created on
/// demand, write is atomic via Env) and aborts the bench on IO failure: a
/// run whose results cannot be persisted must not look like a success.
inline void WriteBenchCsv(const Table& table, const BenchEnv& env,
                          const std::string& filename) {
  Status st = Env::Default()->CreateDir(env.outdir);
  if (st.ok()) st = table.WriteCsv(env.outdir + "/" + filename);
  ANECI_CHECK_MSG(st.ok(), st.ToString().c_str());
  std::printf("csv: %s/%s\n", env.outdir.c_str(), filename.c_str());
}

/// Writes a machine-readable bench summary (one JSON document) to
/// `<outdir>/<filename>` (directory created on demand, write is atomic via
/// Env). Same failure policy as WriteBenchCsv: a run whose results cannot
/// be persisted must not look like a success.
inline void WriteBenchJson(const std::string& json, const std::string& outdir,
                           const std::string& filename) {
  Status st = Env::Default()->CreateDir(outdir);
  if (st.ok())
    st = Env::Default()->WriteFileAtomic(outdir + "/" + filename, json);
  ANECI_CHECK_MSG(st.ok(), st.ToString().c_str());
  std::printf("json: %s/%s\n", outdir.c_str(), filename.c_str());
}

inline void PrintEnv(const char* bench_name, const BenchEnv& env) {
  std::printf(
      "%s | scale=%.2f rounds=%d epochs=%d seed=%llu%s\n"
      "(synthetic DC-SBM datasets matching Table II statistics; "
      "see DESIGN.md for the substitution rationale)\n",
      bench_name, env.scale, env.rounds, env.epochs,
      static_cast<unsigned long long>(env.seed), env.full ? " [FULL]" : "");
}

inline Dataset MakeScaled(const std::string& name, const BenchEnv& env,
                          uint64_t round) {
  StatusOr<Dataset> ds = MakeDataset(name, env.seed + round * 1000, env.scale);
  ANECI_CHECK_MSG(ds.ok(), ds.status().ToString().c_str());
  return std::move(ds).value();
}

/// AnECI configuration used across the benches (paper Section V-D scale,
/// budgeted epochs).
inline AneciConfig DefaultAneciConfig(const BenchEnv& env) {
  AneciConfig cfg;
  cfg.hidden_dim = 64;
  cfg.embed_dim = 16;
  cfg.epochs = env.epochs;
  cfg.proximity.order = 2;
  return cfg;
}

/// EmbedOptions for the bench protocol: paper embedding width 16 and the
/// env's epoch budget, threaded through the round's RNG.
inline EmbedOptions BenchEmbedOptions(Rng& rng, const BenchEnv& env,
                                      int dim = 16) {
  EmbedOptions eo;
  eo.rng = &rng;
  eo.dim = dim;
  eo.epochs = env.epochs;
  return eo;
}

/// The paper's node-classification protocol for AnECI: train the configured
/// number of epochs and keep the embedding with the best validation-set
/// probe accuracy ("the best embedding on the validation set is selected",
/// Section V-D). Falls back to the final embedding when the dataset has no
/// validation split.
inline Matrix TrainAneciValidated(const Dataset& dataset,
                                  const AneciConfig& config, Rng& rng,
                                  int eval_every = 10) {
  Aneci model(config);
  if (dataset.val_idx.empty() || dataset.train_idx.empty()) {
    return model.Train(dataset.graph).z;
  }
  Matrix best_z;
  double best_val = -1.0;
  Rng probe_rng(rng.NextU64());
  AneciResult result = model.Train(
      dataset.graph,
      [&](const AneciEpochStats& stats, const Matrix& z, const Matrix& p) {
        if (stats.epoch % eval_every != 0) return;
        const double acc =
            EvaluateEmbedding(z, dataset, probe_rng, dataset.val_idx).accuracy;
        if (acc > best_val) {
          best_val = acc;
          best_z = z;
        }
      });
  return best_z.empty() ? result.z : best_z;
}

}  // namespace aneci::bench

#endif  // ANECI_BENCH_COMMON_H_

// Reproduces Table III: node classification accuracy (%) on clean graphs.
// Semi-supervised GCN / RGCN plus the unsupervised embedders with a
// logistic-regression probe, over the four benchmark datasets.
#include <map>

#include "bench/common.h"
#include "embed/gat.h"
#include "embed/gcn_classifier.h"
#include "tasks/metrics.h"
#include "tasks/node_classification.h"
#include "util/table.h"

namespace aneci::bench {
namespace {

const std::vector<std::string> kUnsupervised = {
    "DeepWalk", "LINE", "GAE", "VGAE", "DGI", "DANE", "DONE", "ADONE", "AGE"};

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchEnv env = BenchEnv::FromFlags(flags);
  PrintEnv("Table III: node classification on clean datasets", env);

  std::vector<std::string> methods = {"GCN", "RGCN", "GAT"};
  for (const std::string& m : kUnsupervised) methods.push_back(m);
  methods.push_back("AnECI");
  const std::string only = flags.GetString("methods", "");

  Table table({"Method", "Cora", "Citeseer", "Polblogs", "Pubmed"});
  std::map<std::string, std::map<std::string, MeanStd>> cells;

  for (const std::string& method : methods) {
    if (!only.empty() && only.find(method) == std::string::npos) continue;
    for (const std::string& dataset_name : DatasetNames()) {
      std::vector<double> accs;
      for (int round = 0; round < env.rounds; ++round) {
        Dataset ds = MakeScaled(dataset_name, env, round);
        Rng rng(env.seed + round);
        double acc = 0.0;
        if (method == "GAT") {
          GatClassifier::Options opt;
          opt.epochs = env.epochs;
          GatClassifier model(opt);
          model.Fit(ds, rng);
          acc = model.Accuracy(ds, ds.test_idx);
        } else if (method == "GCN" || method == "RGCN") {
          GcnClassifier::Options opt;
          opt.epochs = env.epochs;
          opt.robust = method == "RGCN";
          GcnClassifier model(opt);
          model.Fit(ds, rng);
          acc = model.Accuracy(ds, ds.test_idx);
        } else if (method == "AnECI") {
          Matrix z = TrainAneciValidated(ds, DefaultAneciConfig(env), rng);
          acc = EvaluateEmbedding(z, ds, rng).accuracy;
        } else {
          auto embedder = CreateEmbedder(method);
          ANECI_CHECK(embedder.ok());
          Matrix z =
              embedder.value()->Embed(ds.graph, BenchEmbedOptions(rng, env));
          acc = EvaluateEmbedding(z, ds, rng).accuracy;
        }
        accs.push_back(acc * 100.0);
      }
      cells[method][dataset_name] = ComputeMeanStd(accs);
      std::fprintf(stderr, "  %-9s %-9s %.1f\n", method.c_str(),
                   dataset_name.c_str(), cells[method][dataset_name].mean);
    }
  }

  for (const std::string& method : methods) {
    if (!cells.count(method)) continue;
    table.AddRow().Add(method);
    for (const std::string& d : DatasetNames()) {
      const MeanStd& ms = cells[method][d];
      table.AddMeanStd(ms.mean, ms.std, 1);
    }
  }
  table.Print("Table III — node classification accuracy (%) on clean graphs");
  WriteBenchCsv(table, env, "table3_node_classification.csv");
  return 0;
}

}  // namespace
}  // namespace aneci::bench

int main(int argc, char** argv) { return aneci::bench::Run(argc, argv); }

// Reproduces Fig. 3: node classification accuracy on targeted nodes under
// NETTACK direct structure poisoning, 1..5 perturbations per target.
#include "attack/nettack.h"
#include "bench/targeted_attack_bench.h"

int main(int argc, char** argv) {
  using namespace aneci;
  bench::AttackFn attack = [](const Dataset& ds,
                              const std::vector<int>& targets,
                              int perturbations, Rng& rng) {
    NettackOptions opt;
    opt.perturbations_per_target = perturbations;
    opt.candidate_sample = 128;
    return NettackAttack(ds, targets, opt, rng);
  };
  return bench::RunTargetedAttackBench(
      "Fig. 3: accuracy on targeted nodes under NETTACK", "fig3_nettack.csv",
      attack, argc, argv);
}

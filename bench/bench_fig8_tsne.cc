// Reproduces Fig. 8: t-SNE visualisation of the ablation variants. Figures
// cannot be rendered here, so the bench emits (a) the quantitative
// class-separation each panel is meant to show (mean silhouette in both the
// embedding and the projected 2-D space) and (b) per-variant CSVs of the
// 2-D coordinates with labels, ready for plotting.
#include "analysis/silhouette.h"
#include "analysis/tsne.h"
#include "bench/common.h"
#include "util/table.h"

namespace aneci::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchEnv env = BenchEnv::FromFlags(flags);
  PrintEnv("Fig. 8: t-SNE of the ablation variants (Cora)", env);
  const std::string dataset_name = flags.GetString("dataset", "cora");
  const int max_points = flags.GetInt("points", env.full ? 1500 : 300);

  Dataset ds = MakeScaled(dataset_name, env, 0);

  // Subsample nodes for the O(N^2) exact t-SNE.
  Rng pick(env.seed);
  std::vector<int> nodes;
  {
    std::vector<int> order(ds.graph.num_nodes());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    for (int i = static_cast<int>(order.size()) - 1; i > 0; --i)
      std::swap(order[i], order[pick.NextInt(i + 1)]);
    const int count = std::min<int>(max_points, ds.graph.num_nodes());
    nodes.assign(order.begin(), order.begin() + count);
  }
  std::vector<int> labels;
  for (int i : nodes) labels.push_back(ds.graph.labels()[i]);

  const std::vector<AneciVariant> variants = {
      AneciVariant::kRawFeature, AneciVariant::kEncoder,
      AneciVariant::kModularity, AneciVariant::kFull};

  Table table({"Variant", "silhouette(embed)", "silhouette(tsne-2d)"});
  for (AneciVariant variant : variants) {
    Rng rng(env.seed);
    AneciEmbedder embedder(DefaultAneciConfig(env), variant);
    EmbedOptions eo;
    eo.rng = &rng;
    Matrix z = embedder.Embed(ds.graph, eo).SelectRows(nodes);

    TsneOptions opt;
    opt.iterations = env.full ? 500 : 250;
    Matrix coords = Tsne(z, opt, rng);

    table.AddRow()
        .Add(AneciVariantName(variant))
        .AddF(MeanSilhouette(z, labels), 3)
        .AddF(MeanSilhouette(coords, labels), 3);

    // Coordinate dump for external plotting.
    std::string csv = "fig8_tsne_";
    for (char c : std::string(AneciVariantName(variant)))
      csv += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    csv += ".csv";
    Table dump({"x", "y", "label"});
    for (int i = 0; i < coords.rows(); ++i) {
      dump.AddRow().AddF(coords(i, 0), 4).AddF(coords(i, 1), 4).Add(
          std::to_string(labels[i]));
    }
    WriteBenchCsv(dump, env, csv);
    std::fprintf(stderr, "  %s done -> %s/%s\n", AneciVariantName(variant),
                 env.outdir.c_str(), csv.c_str());
  }

  table.Print("Fig. 8 — class separation per ablation stage");
  WriteBenchCsv(table, env, "fig8_tsne_summary.csv");
  return 0;
}

}  // namespace
}  // namespace aneci::bench

int main(int argc, char** argv) { return aneci::bench::Run(argc, argv); }

// Reproduces Fig. 4: node classification accuracy on targeted nodes under
// the FGA gradient attack, 1..5 perturbations per target.
#include "attack/fga.h"
#include "bench/targeted_attack_bench.h"

int main(int argc, char** argv) {
  using namespace aneci;
  bench::AttackFn attack = [](const Dataset& ds,
                              const std::vector<int>& targets,
                              int perturbations, Rng& rng) {
    FgaOptions opt;
    opt.perturbations_per_target = perturbations;
    return FgaAttack(ds, targets, opt, rng);
  };
  return bench::RunTargetedAttackBench(
      "Fig. 4: accuracy on targeted nodes under FGA", "fig4_fga.csv", attack,
      argc, argv);
}

// Reproduces Fig. 5: overall test accuracy under non-targeted random-edge
// poisoning, noise ratio 0..50%.
#include "attack/random_attack.h"
#include "bench/common.h"
#include "core/aneci_plus.h"
#include "embed/gcn_classifier.h"
#include "tasks/metrics.h"
#include "tasks/node_classification.h"
#include "util/table.h"

namespace aneci::bench {
namespace {

double Evaluate(const std::string& method, const Dataset& clean,
                const Graph& attacked, const BenchEnv& env, Rng& rng) {
  Dataset poisoned = clean;
  poisoned.graph = attacked;
  poisoned.graph.SetLabels(clean.graph.labels());
  if (method == "GCN" || method == "RGCN") {
    GcnClassifier::Options opt;
    opt.epochs = env.epochs;
    opt.robust = method == "RGCN";
    GcnClassifier model(opt);
    model.Fit(poisoned, rng);
    return model.Accuracy(poisoned, poisoned.test_idx);
  }
  Matrix z;
  if (method == "AnECI") {
    z = TrainAneciValidated(poisoned, DefaultAneciConfig(env), rng);
  } else if (method == "AnECI+") {
    AneciPlusConfig cfg;
    cfg.base = DefaultAneciConfig(env);
    cfg.base.seed = rng.NextU64();
    z = TrainAneciPlus(poisoned.graph, cfg).stage2.z;
  } else {
    auto embedder = CreateEmbedder(method);
    ANECI_CHECK(embedder.ok());
    z = embedder.value()->Embed(poisoned.graph, BenchEmbedOptions(rng, env));
  }
  return EvaluateEmbedding(z, poisoned, rng).accuracy;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchEnv env = BenchEnv::FromFlags(flags);
  PrintEnv("Fig. 5: accuracy under non-targeted random attack", env);
  const std::string only_dataset = flags.GetString("dataset", "");
  const double step = flags.GetDouble("step", 0.1);

  const std::vector<std::string> methods = {"GCN",  "RGCN",  "GAE",
                                            "DGI",  "AnECI", "AnECI+"};
  std::vector<std::string> header = {"dataset", "noise"};
  for (const auto& m : methods) header.push_back(m);
  Table table(header);

  for (const std::string& dataset_name : DatasetNames()) {
    if (!only_dataset.empty() && dataset_name != only_dataset) continue;
    for (double noise = 0.0; noise <= 0.5 + 1e-9; noise += step) {
      table.AddRow().Add(dataset_name).AddF(noise, 1);
      for (const std::string& method : methods) {
        std::vector<double> accs;
        for (int round = 0; round < env.rounds; ++round) {
          Dataset ds = MakeScaled(dataset_name, env, round);
          Rng rng(env.seed + round);
          RandomAttackResult attack = RandomAttack(ds.graph, noise, rng);
          accs.push_back(Evaluate(method, ds, attack.attacked, env, rng));
        }
        table.AddF(ComputeMeanStd(accs).mean, 3);
      }
      std::fprintf(stderr, "  %s noise=%.1f done\n", dataset_name.c_str(),
                   noise);
    }
  }

  table.Print("Fig. 5 — test accuracy vs noise-edge ratio (random attack)");
  WriteBenchCsv(table, env, "fig5_random_attack.csv");
  return 0;
}

}  // namespace
}  // namespace aneci::bench

int main(int argc, char** argv) { return aneci::bench::Run(argc, argv); }

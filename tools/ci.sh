#!/usr/bin/env bash
# Static analysis, tier-1 verification, and a three-way sanitizer matrix.
#
#   tools/ci.sh [build-dir-prefix]
#
# Stage 0 builds and runs aneci_lint over the whole tree — a hard-fail gate:
# any unsuppressed finding (or a suppression without a reason) stops CI
# before a single test runs, and failures name the exact check as
# `file:line: check-name: message`. This includes the cross-TU concurrency
# suite (guarded-member-access, lock-order-cycle, determinism-taint) over
# the ANECI_GUARDED_BY/... annotations. Use `aneci_lint --check=<name>`
# locally to reproduce one check in isolation (`aneci_lint --list-checks`).
#
# Stage 0b cross-checks the same annotations with clang's flow-sensitive
# -Wthread-safety analysis (the macros lower to the native attributes under
# clang). The leg needs clang++ AND an annotated standard library (libc++
# with _LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS; libstdc++'s std::mutex
# carries no capability attributes, so clang would see no acquisitions at
# all). When either is missing the leg is skipped with a notice — the
# lexical suite in stage 0 remains the hard gate either way.
#
# Stage 1 builds the default configuration and runs the full ctest suite
# (the tier-1 gate), which includes the linter's own test suite (-L lint).
# The kernel-backend suite (-L kernels) then re-runs with
# ANECI_KERNEL_BACKEND=scalar so the portable fallback keeps full coverage
# on hardware whose auto-selection would otherwise always pick avx2.
#
# Stage 2 is the sanitizer matrix: the fault-injection, attack, serving,
# and streaming test subsets (-L 'fault|attack|serve|stream') run under
# ASan, UBSan, and TSan — the subsets that exercise error paths over
# partially written buffers and fuzzed protocol frames (ASan), integer/
# float conversions in the perturbation math and wire decoding (UBSan),
# and the parallel kernels plus the hot-swap path (TSan). The stream label
# covers the event-log replay and chaos tests, whose thread-count
# replay-identity contract is exactly what TSan must see race-free. The
# TSan build additionally re-runs the thread-pool and defense determinism
# suites plus the metrics-labelled observability tests (sharded counters
# and span aggregation are lock-free hot paths), where a data race would
# actually bite.
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"

echo "== stage 0: aneci_lint (static analysis, hard fail) =="
cmake -B "${prefix}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${prefix}" -j "$(nproc)" --target aneci_lint
"./${prefix}/tools/aneci_lint" --root=.

echo "== stage 0b: clang -Wthread-safety annotation cross-check =="
if command -v clang++ >/dev/null 2>&1; then
  if printf '#include <mutex>\nint main(){std::mutex m;std::lock_guard<std::mutex> l(m);}\n' |
    clang++ -x c++ -std=c++17 -stdlib=libc++ \
      -D_LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS -fsyntax-only - \
      >/dev/null 2>&1; then
    ts_failed=0
    while IFS= read -r tu; do
      clang++ -x c++ -std=c++17 -stdlib=libc++ \
        -D_LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS \
        -Isrc -I. -fsyntax-only -Wthread-safety -Werror=thread-safety \
        "$tu" || ts_failed=1
    done < <(find src -name '*.cc' | sort)
    if [[ "${ts_failed}" != 0 ]]; then
      echo "stage 0b: clang -Wthread-safety reported violations" >&2
      exit 1
    fi
  else
    echo "notice: clang++ found but no annotated libc++;" \
      "skipping the -Wthread-safety leg (stage 0 remains the hard gate)"
  fi
else
  echo "notice: clang++ not installed; skipping the -Wthread-safety leg" \
    "(stage 0's lexical concurrency suite remains the hard gate)"
fi

echo "== stage 1: tier-1 build + full test suite =="
cmake --build "${prefix}" -j "$(nproc)"
ctest --test-dir "${prefix}" --output-on-failure -j "$(nproc)"

echo "== stage 1b: kernel suite pinned to the scalar backend =="
# Auto-selection picks avx2 wherever the hardware has it, so without this
# leg the portable fallback would only ever run on machines that lack AVX2.
ANECI_KERNEL_BACKEND=scalar ctest --test-dir "${prefix}" \
  --output-on-failure -j "$(nproc)" -L kernels

# Test binaries exercised by the sanitizer matrix
# (fault/attack/serve/stream labels).
matrix_targets=(checkpoint_test resilience_test graph_io_robustness_test
                attack_test surrogate_test serve_protocol_test
                serve_snapshot_test serve_golden_test serve_chaos_test
                watchdog_edge_test stream_test stream_chaos_test
                kernels_test memory_planner_test)

echo "== stage 2a: AddressSanitizer (fault + attack + serve + stream tests) =="
cmake -B "${prefix}-asan" -S . -DANECI_ASAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${prefix}-asan" -j "$(nproc)" --target "${matrix_targets[@]}"
ctest --test-dir "${prefix}-asan" --output-on-failure -j "$(nproc)" \
  -L 'fault|attack|serve|stream|kernels'
# The scalar fallback's packing/tail paths get the same ASan coverage.
ANECI_KERNEL_BACKEND=scalar ctest --test-dir "${prefix}-asan" \
  --output-on-failure -j "$(nproc)" -L kernels

echo "== stage 2b: UndefinedBehaviorSanitizer (fault + attack + serve + stream tests) =="
cmake -B "${prefix}-ubsan" -S . -DANECI_UBSAN=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${prefix}-ubsan" -j "$(nproc)" --target "${matrix_targets[@]}"
ctest --test-dir "${prefix}-ubsan" --output-on-failure -j "$(nproc)" \
  -L 'fault|attack|serve|stream|kernels'

echo "== stage 2c: ThreadSanitizer (fault + attack + serve + stream + concurrency tests) =="
cmake -B "${prefix}-tsan" -S . -DANECI_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${prefix}-tsan" -j "$(nproc)" \
  --target "${matrix_targets[@]}" thread_pool_test defense_test \
  observability_test
ctest --test-dir "${prefix}-tsan" --output-on-failure -j "$(nproc)" \
  -L 'fault|attack|serve|stream|metrics|kernels'
ctest --test-dir "${prefix}-tsan" --output-on-failure -j "$(nproc)" \
  -R 'ThreadPool|Defense|Jaccard|LowRank|AttributeClip|Smoothing|AdversarialTraining'

echo "== ci.sh: all stages passed =="

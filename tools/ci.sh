#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass.
#
#   tools/ci.sh [build-dir-prefix]
#
# Stage 1 builds the default configuration and runs the full ctest suite
# (the tier-1 gate). Stage 2 rebuilds the concurrency-sensitive targets
# under -DANECI_TSAN=ON and runs the thread-pool and defense tests, which
# exercise the parallel kernels and the determinism-at-any-thread-count
# contracts where a data race would actually bite.
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"

echo "== stage 1: tier-1 build + full test suite =="
cmake -B "${prefix}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${prefix}" -j "$(nproc)"
ctest --test-dir "${prefix}" --output-on-failure -j "$(nproc)"

echo "== stage 2: ThreadSanitizer build (thread_pool + defense tests) =="
cmake -B "${prefix}-tsan" -S . -DANECI_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${prefix}-tsan" -j "$(nproc)" --target thread_pool_test defense_test
ctest --test-dir "${prefix}-tsan" --output-on-failure -j "$(nproc)" \
  -R 'ThreadPool|Defense|Jaccard|LowRank|AttributeClip|Smoothing|AdversarialTraining'

echo "== ci.sh: all stages passed =="

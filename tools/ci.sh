#!/usr/bin/env bash
# Static analysis, tier-1 verification, and a three-way sanitizer matrix.
#
#   tools/ci.sh [build-dir-prefix]
#
# Stage 0 builds and runs aneci_lint over the whole tree — a hard-fail gate:
# any unsuppressed finding (or a suppression without a reason) stops CI
# before a single test runs, and failures name the exact check as
# `file:line: check-name: message`. Use `aneci_lint --check=<name>` locally
# to reproduce one check in isolation (see `aneci_lint --list-checks`).
#
# Stage 1 builds the default configuration and runs the full ctest suite
# (the tier-1 gate), which includes the linter's own test suite (-L lint).
#
# Stage 2 is the sanitizer matrix: the fault-injection, attack, serving,
# and streaming test subsets (-L 'fault|attack|serve|stream') run under
# ASan, UBSan, and TSan — the subsets that exercise error paths over
# partially written buffers and fuzzed protocol frames (ASan), integer/
# float conversions in the perturbation math and wire decoding (UBSan),
# and the parallel kernels plus the hot-swap path (TSan). The stream label
# covers the event-log replay and chaos tests, whose thread-count
# replay-identity contract is exactly what TSan must see race-free. The
# TSan build additionally re-runs the thread-pool and defense determinism
# suites plus the metrics-labelled observability tests (sharded counters
# and span aggregation are lock-free hot paths), where a data race would
# actually bite.
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"

echo "== stage 0: aneci_lint (static analysis, hard fail) =="
cmake -B "${prefix}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${prefix}" -j "$(nproc)" --target aneci_lint
"./${prefix}/tools/aneci_lint" --root=.

echo "== stage 1: tier-1 build + full test suite =="
cmake --build "${prefix}" -j "$(nproc)"
ctest --test-dir "${prefix}" --output-on-failure -j "$(nproc)"

# Test binaries exercised by the sanitizer matrix
# (fault/attack/serve/stream labels).
matrix_targets=(checkpoint_test resilience_test graph_io_robustness_test
                attack_test surrogate_test serve_protocol_test
                serve_snapshot_test serve_golden_test serve_chaos_test
                watchdog_edge_test stream_test stream_chaos_test)

echo "== stage 2a: AddressSanitizer (fault + attack + serve + stream tests) =="
cmake -B "${prefix}-asan" -S . -DANECI_ASAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${prefix}-asan" -j "$(nproc)" --target "${matrix_targets[@]}"
ctest --test-dir "${prefix}-asan" --output-on-failure -j "$(nproc)" \
  -L 'fault|attack|serve|stream'

echo "== stage 2b: UndefinedBehaviorSanitizer (fault + attack + serve + stream tests) =="
cmake -B "${prefix}-ubsan" -S . -DANECI_UBSAN=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${prefix}-ubsan" -j "$(nproc)" --target "${matrix_targets[@]}"
ctest --test-dir "${prefix}-ubsan" --output-on-failure -j "$(nproc)" \
  -L 'fault|attack|serve|stream'

echo "== stage 2c: ThreadSanitizer (fault + attack + serve + stream + concurrency tests) =="
cmake -B "${prefix}-tsan" -S . -DANECI_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${prefix}-tsan" -j "$(nproc)" \
  --target "${matrix_targets[@]}" thread_pool_test defense_test \
  observability_test
ctest --test-dir "${prefix}-tsan" --output-on-failure -j "$(nproc)" \
  -L 'fault|attack|serve|stream|metrics'
ctest --test-dir "${prefix}-tsan" --output-on-failure -j "$(nproc)" \
  -R 'ThreadPool|Defense|Jaccard|LowRank|AttributeClip|Smoothing|AdversarialTraining'

echo "== ci.sh: all stages passed =="

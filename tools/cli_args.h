// Flag access for aneci_cli (same --name=value convention as bench/common.h)
// plus strict validation: every flag passed on the command line must appear
// in the command's allowlist, so a typo ("--epocs=10") fails loudly with a
// usage message instead of silently training with defaults. Lives in a
// header so tests/table_flags_test.cc can cover the parsing and the
// unknown-flag detection without spawning the binary.
#ifndef ANECI_TOOLS_CLI_ARGS_H_
#define ANECI_TOOLS_CLI_ARGS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/env.h"

namespace aneci::cli {

class Args {
 public:
  /// Consumes argv after the subcommand (argv[1]).
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::string Get(const std::string& name, const std::string& fallback) const {
    const std::string prefix = "--" + name + "=";
    for (const std::string& a : args_)
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    return fallback;
  }

  double GetDouble(const std::string& name, double fallback) const {
    const std::string v = Get(name, "");
    return v.empty() ? fallback : std::atof(v.c_str());
  }

  int GetInt(const std::string& name, int fallback) const {
    const std::string v = Get(name, "");
    return v.empty() ? fallback : std::atoi(v.c_str());
  }

  bool Has(const std::string& name) const {
    for (const std::string& a : args_)
      if (a == "--" + name) return true;
    return false;
  }

  /// Arguments that are not "--name" or "--name=value" for any allowed
  /// name — including positional garbage, which a flags-only CLI should
  /// also reject.
  std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& allowed) const {
    std::vector<std::string> unknown;
    for (const std::string& a : args_) {
      bool ok = false;
      for (const std::string& name : allowed) {
        if (a == "--" + name || a.rfind("--" + name + "=", 0) == 0) {
          ok = true;
          break;
        }
      }
      if (!ok) unknown.push_back(a);
    }
    return unknown;
  }

 private:
  std::vector<std::string> args_;
};

/// The exact deprecation warning ResolveOutPath emits for --out. A separate
/// function so the CLI regression test can assert the emitted text matches
/// this, character for character (a silently-dropped warning once shipped).
inline std::string OutFlagDeprecationWarning(const std::string& default_name) {
  return "warning: --out=<file> is deprecated; use --outdir=<dir> (writes "
         "<dir>/" +
         default_name + ")\n";
}

/// Output-path resolution for subcommands that moved from --out=<file> to
/// the --outdir=<dir> convention (the file name inside the directory is
/// fixed per command). --out still works for one deprecation cycle but
/// prints a warning on `warnings` (stderr when null — the test seam).
/// Returns empty when neither flag is present, so callers with optional
/// output can skip writing.
inline std::string ResolveOutPath(const Args& args,
                                  const std::string& default_name,
                                  std::FILE* warnings = nullptr) {
  const std::string legacy = args.Get("out", "");
  if (!legacy.empty()) {
    std::fputs(OutFlagDeprecationWarning(default_name).c_str(),
               warnings ? warnings : stderr);
    return legacy;
  }
  const std::string outdir = args.Get("outdir", "");
  if (!outdir.empty()) {
    // Best-effort: if this fails the subsequent write reports the real error.
    (void)Env::Default()->CreateDir(outdir);
    return outdir + "/" + default_name;
  }
  return "";
}

}  // namespace aneci::cli

#endif  // ANECI_TOOLS_CLI_ARGS_H_

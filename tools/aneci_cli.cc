// Command-line interface over the AnECI library: generate synthetic
// benchmark graphs, train embeddings, poison graphs, purify poisoned graphs,
// detect anomalies and communities — all on the text graph format of
// graph/graph_io.h.
//
// Usage:
//   aneci_cli generate  --dataset=cora --scale=0.2 --seed=42 --out=g.txt
//   aneci_cli train     --graph=g.txt --out=z.csv [--epochs=150 --dim=16
//                        --order=2 --plus --checkpoint-dir=ckpt
//                        --checkpoint-every=10 --resume
//                        --defense=jaccard,lowrank --adv-train
//                        --adv-budget=0.05 --adv-every=1 --adv-kind=random
//                        --certify --certify-samples=7 --certify-radius=0.05
//                        --certify-seeds=3]
//   aneci_cli defend    --graph=g.txt --defense=jaccard,lowrank,clip
//                        --out=purified.txt [--seed=42]
//   aneci_cli embed     --graph=g.txt --method=GAE --outdir=run [--epochs=..]
//   aneci_cli attack    --graph=g.txt --type=random --rate=0.2 --out=ga.txt
//   aneci_cli detect    --graph=g.txt --kind=Mix --fraction=0.05
//   aneci_cli community --graph=g.txt --k=7 [--outdir=run]
//   aneci_cli serve     --model=model.ansv [--port=7707 --probe]
//   aneci_cli stats     metrics.jsonl [--zero-timings]
//
// Every subcommand accepts --metrics-out=<path>: after the command runs, the
// process-wide metrics registry (counters, gauges, histograms, trace spans
// and the per-epoch training telemetry ring) is written there as JSONL.
// Lines with "class":"det" are byte-identical at any ANECI_THREADS value;
// "class":"sched" lines carry timings and scheduling tallies.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error (unknown
// subcommand or flag).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "anomaly/anomaly_score.h"
#include "anomaly/outlier_injection.h"
#include "attack/random_attack.h"
#include "core/aneci.h"
#include "core/aneci_plus.h"
#include "data/datasets.h"
#include "defense/defense.h"
#include "defense/smoothing.h"
#include "embed/aneci_embedder.h"
#include "embed/embedder.h"
#include "graph/graph_io.h"
#include "graph/louvain.h"
#include "serve/client.h"
#include "serve/model_artifact.h"
#include "serve/model_snapshot.h"
#include "serve/server.h"
#include "serve/service.h"
#include "stream/event_log.h"
#include "stream/scenario.h"
#include "stream/stream_engine.h"
#include "tasks/community.h"
#include "tasks/metrics.h"
#include "tools/cli_args.h"
#include "util/env.h"
#include "util/metrics.h"

namespace aneci::cli {
namespace {

int Usage(std::FILE* stream) {
  std::fprintf(
      stream,
      "usage: aneci_cli <command> [--flags]\n"
      "commands:\n"
      "  generate   --dataset=cora --scale=1.0 --seed=42 --out=g.txt\n"
      "  train      --graph=g.txt [--out=z.csv --epochs=150 --dim=16\n"
      "              --hidden=64 --order=2 --seed=42 --plus\n"
      "              --checkpoint-dir=ckpt --checkpoint-every=10 --resume\n"
      "              --watchdog-explosion-factor=1e4\n"
      "              --watchdog-max-rollbacks=3 --watchdog-lr-backoff=0.5\n"
      "              --watchdog-snapshot-every=10\n"
      "              --defense=jaccard,lowrank,clip --adv-train\n"
      "              --adv-budget=0.05 --adv-every=1 --adv-kind=random|dice\n"
      "              --certify --certify-samples=7 --certify-radius=0.05\n"
      "              --certify-seeds=3]\n"
      "  defend     --graph=g.txt [--defense=jaccard --out=purified.txt\n"
      "              --seed=42]\n"
      "  embed      --graph=g.txt [--method=GAE --dim=32 --epochs=0\n"
      "              --seed=42 --outdir=run]\n"
      "  attack     --graph=g.txt [--type=random --rate=0.2 --seed=42\n"
      "              --out=attacked.txt]\n"
      "  detect     --graph=g.txt [--kind=Mix --fraction=0.05 --epochs=100\n"
      "              --seed=42]\n"
      "  community  --graph=g.txt [--k=7 --epochs=300 --seed=42 --outdir=run]\n"
      "  serve      --model=model.ansv [--port=0 --probe\n"
      "              --max-connections=64 --read-deadline-ms=0\n"
      "              --write-deadline-ms=0 --request-budget=0\n"
      "              --drain-timeout-ms=2000]\n"
      "             (train --model-out=model.ansv exports the artifact;\n"
      "              --port=0 picks an ephemeral port; --probe issues one\n"
      "              stats query against the live server, then exits;\n"
      "              over-cap connects and over-budget requests shed with\n"
      "              typed \"overloaded\" errors, slow peers are reaped\n"
      "              after the read deadline — docs/serving.md section 6)\n"
      "  stream     --graph=g.txt --events=events.anel [--dim=16\n"
      "              --epochs=80 --khops=2 --refresh-epochs=30\n"
      "              --min-region=8 --defense=jaccard:tau=0.05\n"
      "              --escalate-after=2 --recover-after=3 --seed=42\n"
      "              --report-out=stream.jsonl --model-out=model.ansv]\n"
      "             (trains an initial embedding, then replays the event\n"
      "              log through the streaming monitor: incremental k-hop\n"
      "              refresh, drift/poisoning escalation with hysteresis,\n"
      "              region-scoped defense — docs/robustness.md section 12)\n"
      "  stream     --make-events --graph=g.txt --out=events.anel\n"
      "              [--batches=10 --events-per-batch=8 --poison-batch=-1\n"
      "              --poison-rate=0.2 --seed=42]\n"
      "             (generates a churn stream, optionally with a DICE\n"
      "              poisoning burst at --poison-batch)\n"
      "  stats      <metrics.jsonl> [--zero-timings]\n"
      "every command also accepts --metrics-out=<path> to dump the metrics\n"
      "registry (counters, spans, training telemetry) as JSONL on exit\n");
  return 2;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// 0 when every flag is recognised; otherwise prints the offenders plus the
/// usage text and returns 2.
int RejectUnknownFlags(const Args& args,
                       const std::vector<std::string>& allowed) {
  const std::vector<std::string> unknown = args.UnknownFlags(allowed);
  if (unknown.empty()) return 0;
  for (const std::string& flag : unknown)
    std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
  return Usage(stderr);
}

StatusOr<Graph> LoadRequiredGraph(const Args& args) {
  const std::string path = args.Get("graph", "");
  if (path.empty()) return Status::InvalidArgument("--graph=<file> required");
  return LoadGraph(path);
}

/// Writes the embedding as CSV through Env's atomic temp+rename path, so a
/// killed run never leaves a truncated embedding behind.
Status WriteEmbeddingCsv(const Matrix& z, const std::string& path) {
  std::ostringstream out;
  for (int i = 0; i < z.rows(); ++i) {
    for (int c = 0; c < z.cols(); ++c) {
      if (c) out << ',';
      out << z(i, c);
    }
    out << '\n';
  }
  return Env::Default()->WriteFileAtomic(path, out.str());
}

int CmdGenerate(const Args& args) {
  if (int rc = RejectUnknownFlags(
          args, {"dataset", "scale", "seed", "out", "metrics-out"}))
    return rc;
  const std::string out = args.Get("out", "graph.txt");
  StatusOr<Dataset> ds =
      MakeDataset(args.Get("dataset", "cora"),
                  static_cast<uint64_t>(args.GetInt("seed", 42)),
                  args.GetDouble("scale", 1.0));
  if (!ds.ok()) return Fail(ds.status().ToString());
  Status st = SaveGraph(ds.value().graph, out);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("wrote %s: %d nodes, %d edges, %d classes, %d attributes\n",
              out.c_str(), ds.value().graph.num_nodes(),
              ds.value().graph.num_edges(), ds.value().graph.num_classes(),
              ds.value().graph.attribute_dim());
  return 0;
}

int CmdDefend(const Args& args) {
  if (int rc = RejectUnknownFlags(
          args, {"graph", "defense", "out", "seed", "metrics-out"}))
    return rc;
  StatusOr<Graph> graph = LoadRequiredGraph(args);
  if (!graph.ok()) return Fail(graph.status().ToString());
  StatusOr<DefensePipeline> pipeline =
      ParseDefensePipeline(args.Get("defense", "jaccard"));
  if (!pipeline.ok()) return Fail(pipeline.status().ToString());

  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  PurifiedGraph purified =
      RunDefensePipeline(graph.value(), pipeline.value(), rng);
  for (const DefenseReport& report : purified.reports)
    std::printf("%s\n", report.ToString().c_str());
  std::printf("total: dropped %d of %d edges, clipped %d nodes\n",
              purified.total_edges_dropped(), graph.value().num_edges(),
              purified.total_nodes_clipped());

  const std::string out = args.Get("out", "purified.txt");
  Status st = SaveGraph(purified.graph, out);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("wrote %s (%d nodes, %d edges)\n", out.c_str(),
              purified.graph.num_nodes(), purified.graph.num_edges());
  return 0;
}

/// Deterministic planetoid-style split for CLI certification (graph files
/// carry no splits).
Dataset MakeCertifySplit(const Graph& graph, uint64_t seed) {
  Dataset ds;
  ds.name = "cli";
  ds.graph = graph;
  const int n = graph.num_nodes();
  const int val = std::min(500, n / 5);
  const int test = std::min(1000, n / 3);
  Rng rng(seed);
  MakePlanetoidSplit(ds.graph, 10, val, test, rng, &ds);
  return ds;
}

int CmdTrain(const Args& args) {
  if (int rc = RejectUnknownFlags(
          args,
          {"graph", "out", "model-out", "dim", "hidden", "epochs", "order",
           "seed", "plus", "checkpoint-dir", "checkpoint-every", "resume",
           "watchdog-explosion-factor", "watchdog-max-rollbacks",
           "watchdog-lr-backoff", "watchdog-snapshot-every",
           "defense", "adv-train", "adv-budget", "adv-every", "adv-kind",
           "certify", "certify-samples", "certify-radius", "certify-seeds",
           "metrics-out"}))
    return rc;
  StatusOr<Graph> loaded = LoadRequiredGraph(args);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  Graph graph = std::move(loaded).value();

  const std::string defense_spec = args.Get("defense", "");
  if (!defense_spec.empty()) {
    StatusOr<DefensePipeline> pipeline = ParseDefensePipeline(defense_spec);
    if (!pipeline.ok()) return Fail(pipeline.status().ToString());
    Rng defense_rng(static_cast<uint64_t>(args.GetInt("seed", 42)) + 77);
    PurifiedGraph purified =
        RunDefensePipeline(graph, pipeline.value(), defense_rng);
    for (const DefenseReport& report : purified.reports)
      std::printf("%s\n", report.ToString().c_str());
    graph = std::move(purified.graph);
  }

  AneciConfig cfg;
  cfg.embed_dim = args.GetInt("dim", 16);
  cfg.hidden_dim = args.GetInt("hidden", 64);
  cfg.epochs = args.GetInt("epochs", 150);
  cfg.proximity.order = args.GetInt("order", 2);
  cfg.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  cfg.checkpoint_dir = args.Get("checkpoint-dir", "");
  cfg.checkpoint_every = args.GetInt("checkpoint-every", 10);
  if (args.Has("resume")) {
    if (cfg.checkpoint_dir.empty())
      return Fail("--resume requires --checkpoint-dir=<dir>");
    cfg.resume_from = cfg.checkpoint_dir;
  }
  cfg.watchdog.explosion_factor =
      args.GetDouble("watchdog-explosion-factor", cfg.watchdog.explosion_factor);
  cfg.watchdog.max_rollbacks =
      args.GetInt("watchdog-max-rollbacks", cfg.watchdog.max_rollbacks);
  cfg.watchdog.lr_backoff =
      args.GetDouble("watchdog-lr-backoff", cfg.watchdog.lr_backoff);
  cfg.watchdog.snapshot_every =
      args.GetInt("watchdog-snapshot-every", cfg.watchdog.snapshot_every);
  if (Status st = ValidateWatchdogOptions(cfg.watchdog); !st.ok())
    return Fail(st.ToString());
  if (args.Has("adv-train")) {
    cfg.adversarial.enabled = true;
    cfg.adversarial.budget = args.GetDouble("adv-budget", 0.05);
    cfg.adversarial.every = args.GetInt("adv-every", 1);
    const std::string kind = args.Get("adv-kind", "random");
    if (kind == "dice") {
      cfg.adversarial.kind = AdversarialTrainingOptions::Kind::kDice;
    } else if (kind != "random") {
      return Fail("--adv-kind must be random or dice, got '" + kind + "'");
    }
  }

  Matrix z, p;
  if (args.Has("plus")) {
    AneciPlusConfig plus;
    plus.base = cfg;
    AneciPlusResult result = TrainAneciPlus(graph, plus);
    std::printf("AnECI+ removed %d suspicious edges (rho=%.2f)\n",
                result.edges_removed, result.drop_ratio);
    z = result.stage2.z;
    p = result.stage2.p;
  } else {
    Aneci model(cfg);
    StatusOr<AneciResult> trained = model.TrainWithResilience(graph);
    if (!trained.ok()) return Fail(trained.status().ToString());
    const AneciResult& result = trained.value();
    if (result.resumed_from_epoch >= 0)
      std::printf("resumed from checkpoint at epoch %d\n",
                  result.resumed_from_epoch);
    if (result.watchdog_rollbacks > 0)
      std::printf("watchdog took %d rollback(s); lr decayed to %g\n",
                  result.watchdog_rollbacks, result.final_lr);
    std::printf("trained %zu epochs, Q~=%.4f rigidity=%.3f\n",
                result.history.size(), result.history.back().modularity,
                result.history.back().rigidity);
    z = result.z;
    p = result.p;
  }
  const std::string out = args.Get("out", "embedding.csv");
  if (Status st = WriteEmbeddingCsv(z, out); !st.ok()) return Fail(st.ToString());
  std::printf("wrote %s (%d x %d)\n", out.c_str(), z.rows(), z.cols());

  const std::string model_out = args.Get("model-out", "");
  if (!model_out.empty()) {
    const serve::ModelArtifact artifact =
        serve::BuildModelArtifact(graph, z, p, cfg.seed + 555);
    if (Status st = serve::SaveModelArtifact(artifact, model_out); !st.ok())
      return Fail(st.ToString());
    std::printf("model artifact written to %s (%d nodes, dim %d, %d classes)\n",
                model_out.c_str(), artifact.num_nodes, artifact.embed_dim,
                artifact.num_classes);
  }

  if (args.Has("certify")) {
    if (!graph.has_labels())
      return Fail("--certify needs a labelled graph (the probe and the "
                  "certificate are label-based)");
    SmoothingOptions smooth;
    smooth.num_samples = args.GetInt("certify-samples", 7);
    smooth.radius = args.GetDouble("certify-radius", 0.05);
    const int seeds = args.GetInt("certify-seeds", 3);
    if (seeds < 1) return Fail("--certify-seeds must be >= 1");
    Dataset ds = MakeCertifySplit(graph, cfg.seed + 101);
    std::vector<double> smoothed, certified;
    for (int s = 0; s < seeds; ++s) {
      smooth.seed = 9001 + 131 * static_cast<uint64_t>(s);
      SmoothedClassification cls = SmoothedClassify(ds, cfg, smooth);
      smoothed.push_back(cls.smoothed_accuracy);
      certified.push_back(cls.certified_accuracy);
    }
    const MeanStd sm = ComputeMeanStd(smoothed);
    const MeanStd ct = ComputeMeanStd(certified);
    std::printf(
        "smoothed inference (K=%d, r=%.3f, %d seed(s)): "
        "accuracy %.3f±%.3f, certified-at-r %.3f±%.3f\n",
        smooth.num_samples, smooth.radius, seeds, sm.mean, sm.std, ct.mean,
        ct.std);
  }
  return 0;
}

int CmdEmbed(const Args& args) {
  if (int rc = RejectUnknownFlags(
          args, {"graph", "method", "dim", "epochs", "seed", "out", "outdir",
                 "metrics-out"}))
    return rc;
  StatusOr<Graph> graph = LoadRequiredGraph(args);
  if (!graph.ok()) return Fail(graph.status().ToString());
  const std::string method = args.Get("method", "GAE");
  auto embedder = CreateEmbedder(method);
  if (!embedder.ok()) return Fail(embedder.status().ToString());
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  EmbedOptions eo;
  eo.rng = &rng;
  eo.dim = args.GetInt("dim", 32);
  eo.epochs = args.GetInt("epochs", 0);
  Matrix z = embedder.value()->Embed(graph.value(), eo);
  std::string out = ResolveOutPath(args, "embedding.csv");
  if (out.empty()) out = "embedding.csv";
  if (Status st = WriteEmbeddingCsv(z, out); !st.ok()) return Fail(st.ToString());
  std::printf("%s embedding written to %s (%d x %d)\n", method.c_str(),
              out.c_str(), z.rows(), z.cols());
  return 0;
}

int CmdAttack(const Args& args) {
  if (int rc = RejectUnknownFlags(
          args, {"graph", "type", "rate", "seed", "out", "metrics-out"}))
    return rc;
  StatusOr<Graph> graph = LoadRequiredGraph(args);
  if (!graph.ok()) return Fail(graph.status().ToString());
  const std::string type = args.Get("type", "random");
  if (type != "random")
    return Fail("only --type=random is file-driven; FGA/NETTACK need splits "
                "(see bench_fig3/bench_fig4)");
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  RandomAttackResult result =
      RandomAttack(graph.value(), args.GetDouble("rate", 0.2), rng);
  const std::string out = args.Get("out", "attacked.txt");
  Status st = SaveGraph(result.attacked, out);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("injected %zu fake edges; wrote %s\n",
              result.fake_edges.size(), out.c_str());
  return 0;
}

int CmdDetect(const Args& args) {
  if (int rc = RejectUnknownFlags(
          args, {"graph", "kind", "fraction", "epochs", "seed", "metrics-out"}))
    return rc;
  StatusOr<Graph> graph = LoadRequiredGraph(args);
  if (!graph.ok()) return Fail(graph.status().ToString());
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));

  const std::string kind_name = args.Get("kind", "Mix");
  OutlierKind kind = OutlierKind::kMix;
  if (kind_name == "S") kind = OutlierKind::kStructural;
  if (kind_name == "A") kind = OutlierKind::kAttribute;
  if (kind_name == "S&A") kind = OutlierKind::kCombined;

  OutlierInjectionResult injected = InjectOutliers(
      graph.value(), kind, args.GetDouble("fraction", 0.05), rng);

  AneciConfig cfg;
  cfg.epochs = args.GetInt("epochs", 100);
  cfg.early_stop_patience = 20;
  AneciEmbedder model(cfg);
  EmbedOptions eo;
  eo.rng = &rng;
  std::vector<double> scores = model.ScoreAnomalies(injected.graph, eo);
  std::printf("implanted %zu %s outliers; AnECI AUC = %.3f\n",
              injected.outlier_ids.size(), kind_name.c_str(),
              AreaUnderRoc(scores, injected.is_outlier));
  return 0;
}

int CmdCommunity(const Args& args) {
  if (int rc = RejectUnknownFlags(args, {"graph", "k", "epochs", "seed", "out",
                                         "outdir", "metrics-out"}))
    return rc;
  StatusOr<Graph> graph = LoadRequiredGraph(args);
  if (!graph.ok()) return Fail(graph.status().ToString());
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  const int k = args.GetInt(
      "k", graph.value().has_labels() ? graph.value().num_classes() : 4);

  AneciConfig cfg;
  cfg.embed_dim = k;
  cfg.epochs = args.GetInt("epochs", 300);
  AneciEmbedder model(cfg);
  EmbedOptions eo;
  eo.rng = &rng;
  model.Embed(graph.value(), eo);
  CommunityResult aneci_comm =
      DetectCommunitiesArgmax(graph.value(), model.last_membership());

  LouvainResult louvain = Louvain(graph.value(), rng);
  std::printf("AnECI : Q=%.3f (%d communities)\n", aneci_comm.modularity,
              aneci_comm.num_communities);
  std::printf("Louvain: Q=%.3f (%d communities)\n", louvain.modularity,
              louvain.num_communities);
  const std::string out = ResolveOutPath(args, "communities.txt");
  if (!out.empty()) {
    // Previously written with an unchecked ofstream: a bad path still
    // printed "assignment written". Atomic write + checked Status now.
    std::string lines;
    for (int c : aneci_comm.assignment) lines += std::to_string(c) + '\n';
    Status st = Env::Default()->WriteFileAtomic(out, lines);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("assignment written to %s\n", out.c_str());
  }
  return 0;
}

/// Serves a model artifact over the line-JSON wire protocol
/// (docs/serving.md). The process parks until killed; --probe instead
/// issues one stats query through a real client connection and exits, which
/// is how scripts (and the e2e tests) check a server binary end to end.
int CmdServe(const Args& args) {
  if (int rc = RejectUnknownFlags(
          args, {"model", "port", "probe", "metrics-out", "max-connections",
                 "read-deadline-ms", "write-deadline-ms", "request-budget",
                 "drain-timeout-ms"}))
    return rc;
  const std::string model = args.Get("model", "");
  if (model.empty()) return Fail("--model=<model.ansv> required");
  StatusOr<std::shared_ptr<const serve::ModelSnapshot>> snapshot =
      serve::ModelSnapshot::Load(model, /*version=*/1);
  if (!snapshot.ok()) return Fail(snapshot.status().ToString());
  serve::EmbedService service(snapshot.value());
  serve::ServerOptions options;
  options.max_connections = args.GetInt("max-connections", 64);
  options.read_deadline_ms = args.GetInt("read-deadline-ms", 0);
  options.write_deadline_ms = args.GetInt("write-deadline-ms", 0);
  options.max_pending_requests = args.GetInt("request-budget", 0);
  options.drain_timeout_ms = args.GetInt("drain-timeout-ms", 2000);
  serve::EmbedServer server(&service, options);
  if (Status st = server.Start(args.GetInt("port", 0)); !st.ok())
    return Fail(st.ToString());
  std::printf(
      "serving %s on 127.0.0.1:%d (%d nodes, dim %d, %d classes; "
      "max-connections=%d read-deadline-ms=%d request-budget=%d)\n",
      model.c_str(), server.port(), snapshot.value()->num_nodes(),
      snapshot.value()->embed_dim(), snapshot.value()->num_classes(),
      options.max_connections, options.read_deadline_ms,
      options.max_pending_requests);
  std::fflush(stdout);
  if (args.Has("probe")) {
    StatusOr<serve::ServeClient> client =
        serve::ServeClient::Connect(server.port());
    if (!client.ok()) {
      server.Stop();
      return Fail(client.status().ToString());
    }
    StatusOr<std::string> reply = client.value().Call("{\"op\":\"stats\"}");
    server.Stop();
    if (!reply.ok()) return Fail(reply.status().ToString());
    std::printf("probe: %s\n", reply.value().c_str());
    return 0;
  }
  server.Wait();
  return 0;
}

/// Generates a streaming scenario (--make-events) or replays an event log
/// through the full streaming stack: initial training, per-batch incremental
/// refresh, the drift/poisoning monitor, and region-scoped defense
/// (docs/robustness.md §12).
int CmdStream(const Args& args) {
  if (int rc = RejectUnknownFlags(
          args,
          {"graph", "events", "make-events", "out", "batches",
           "events-per-batch", "poison-batch", "poison-rate", "dim", "epochs",
           "khops", "refresh-epochs", "min-region", "defense",
           "escalate-after", "recover-after", "seed", "report-out",
           "model-out", "metrics-out"}))
    return rc;
  StatusOr<Graph> loaded = LoadRequiredGraph(args);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  Graph graph = std::move(loaded).value();
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  if (args.Has("make-events")) {
    stream::StreamScenarioOptions scenario;
    scenario.batches = args.GetInt("batches", 10);
    scenario.events_per_batch = args.GetInt("events-per-batch", 8);
    scenario.poison_batch = args.GetInt("poison-batch", -1);
    scenario.poison_rate = args.GetDouble("poison-rate", 0.2);
    scenario.seed = seed;
    StatusOr<std::vector<stream::EventBatch>> batches =
        stream::MakeEventStream(graph, scenario);
    if (!batches.ok()) return Fail(batches.status().ToString());
    const std::string out = args.Get("out", "events.anel");
    if (Status st = stream::SaveEventLog(batches.value(), out); !st.ok())
      return Fail(st.ToString());
    size_t events = 0;
    for (const stream::EventBatch& b : batches.value()) events += b.events.size();
    std::printf("wrote %s: %zu batches, %zu events%s\n", out.c_str(),
                batches.value().size(), events,
                scenario.poison_batch >= 0
                    ? (" (poison burst at batch " +
                       std::to_string(scenario.poison_batch) + ")")
                          .c_str()
                    : "");
    return 0;
  }

  const std::string events_path = args.Get("events", "");
  if (events_path.empty())
    return Fail("--events=<events.anel> required (or --make-events)");
  StatusOr<std::vector<stream::EventBatch>> log =
      stream::LoadEventLog(events_path);
  if (!log.ok()) return Fail(log.status().ToString());

  AneciConfig cfg;
  cfg.embed_dim = args.GetInt("dim", 16);
  cfg.epochs = args.GetInt("epochs", 80);
  cfg.seed = seed;
  Aneci model(cfg);
  StatusOr<AneciResult> trained = model.TrainWithResilience(graph);
  if (!trained.ok()) return Fail(trained.status().ToString());
  std::printf("initial embedding trained (%d nodes, dim %d)\n",
              graph.num_nodes(), cfg.embed_dim);

  stream::StreamEngineOptions options;
  options.refresh.khops = args.GetInt("khops", 2);
  options.refresh.epochs = args.GetInt("refresh-epochs", 30);
  options.refresh.min_region = args.GetInt("min-region", 8);
  options.defense_spec = args.Get("defense", "jaccard:tau=0.05");
  options.monitor.escalate_after = args.GetInt("escalate-after", 2);
  options.monitor.recover_after = args.GetInt("recover-after", 3);
  options.seed = seed;
  StatusOr<std::unique_ptr<stream::StreamEngine>> engine =
      stream::StreamEngine::Create(graph, trained.value().z,
                                   trained.value().p, std::move(options));
  if (!engine.ok()) return Fail(engine.status().ToString());

  StatusOr<std::vector<stream::StreamBatchReport>> reports =
      engine.value()->ProcessLog(log.value());
  if (!reports.ok()) return Fail(reports.status().ToString());
  for (const stream::StreamBatchReport& r : reports.value()) {
    std::printf(
        "batch %llu: +%d/-%d edges, region %d, Q~=%.4f churn=%.3f "
        "state=%s%s%s%s\n",
        static_cast<unsigned long long>(r.sequence), r.edges_added,
        r.edges_removed, r.region_nodes, r.modularity, r.churn,
        stream::StreamHealthName(r.state),
        r.refresh_vetoed ? " [refresh vetoed, rolled back]" : "",
        r.defense_invoked ? " [defense invoked]" : "",
        r.published_version > 0
            ? (" [published v" + std::to_string(r.published_version) + "]")
                  .c_str()
            : "");
  }
  std::printf("final state: %s (%d defense invocation(s), %d veto(es))\n",
              stream::StreamHealthName(engine.value()->health()),
              engine.value()->defense_invocations(),
              engine.value()->refresh_vetoes());

  const std::string report_out = args.Get("report-out", "");
  if (!report_out.empty()) {
    Status st = Env::Default()->WriteFileAtomic(
        report_out, engine.value()->SummaryJsonl());
    if (!st.ok()) return Fail(st.ToString());
    std::printf("batch reports written to %s\n", report_out.c_str());
  }
  const std::string model_out = args.Get("model-out", "");
  if (!model_out.empty()) {
    const serve::ModelArtifact artifact = serve::BuildModelArtifact(
        engine.value()->graph(), engine.value()->z(), engine.value()->p(),
        seed + 555);
    if (Status st = serve::SaveModelArtifact(artifact, model_out); !st.ok())
      return Fail(st.ToString());
    std::printf("refreshed model artifact written to %s\n", model_out.c_str());
  }
  return 0;
}

/// Pretty-prints a metrics JSONL dump produced by --metrics-out. Takes the
/// file as a positional argument (the one place the CLI does, since the file
/// is the whole point of the command). --zero-timings blanks every duration
/// so the report can be diffed across machines or thread counts.
int CmdStats(int argc, char** argv) {
  if (argc < 3 || argv[2][0] == '-') {
    std::fprintf(stderr, "error: stats needs a metrics.jsonl path\n");
    return Usage(stderr);
  }
  bool zero_timings = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--zero-timings") == 0) {
      zero_timings = true;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return Usage(stderr);
    }
  }
  StatusOr<std::string> bytes = Env::Default()->ReadFile(argv[2]);
  if (!bytes.ok()) return Fail(bytes.status().ToString());
  StatusOr<std::string> report = FormatStatsReport(bytes.value(), zero_timings);
  if (!report.ok()) return Fail(report.status().ToString());
  std::fputs(report.value().c_str(), stdout);
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage(stderr);
  const std::string cmd = argv[1];
  if (cmd == "stats") return CmdStats(argc, argv);
  const Args args(argc, argv);
  int rc;
  if (cmd == "generate") {
    rc = CmdGenerate(args);
  } else if (cmd == "train") {
    rc = CmdTrain(args);
  } else if (cmd == "defend") {
    rc = CmdDefend(args);
  } else if (cmd == "embed") {
    rc = CmdEmbed(args);
  } else if (cmd == "attack") {
    rc = CmdAttack(args);
  } else if (cmd == "detect") {
    rc = CmdDetect(args);
  } else if (cmd == "community") {
    rc = CmdCommunity(args);
  } else if (cmd == "serve") {
    rc = CmdServe(args);
  } else if (cmd == "stream") {
    rc = CmdStream(args);
  } else {
    std::fprintf(stderr, "error: unknown command '%s'\n", cmd.c_str());
    return Usage(stderr);
  }
  // Dump telemetry even when the command failed: a diverged or crashed run
  // is exactly when the epoch ring and watchdog events are worth reading.
  const std::string metrics_out = args.Get("metrics-out", "");
  if (rc != 2 && !metrics_out.empty()) {
    Status st = WriteMetricsJsonl(metrics_out, nullptr);
    if (!st.ok()) return Fail(st.ToString());
    std::fprintf(stderr, "metrics written to %s\n", metrics_out.c_str());
  }
  return rc;
}

}  // namespace
}  // namespace aneci::cli

int main(int argc, char** argv) { return aneci::cli::Run(argc, argv); }

// Command-line interface over the AnECI library: generate synthetic
// benchmark graphs, train embeddings, poison graphs, detect anomalies and
// communities — all on the text graph format of graph/graph_io.h.
//
// Usage:
//   aneci_cli generate  --dataset=cora --scale=0.2 --seed=42 --out=g.txt
//   aneci_cli train     --graph=g.txt --out=z.csv [--epochs=150 --dim=16
//                        --order=2 --plus --checkpoint-dir=ckpt
//                        --checkpoint-every=10 --resume]
//   aneci_cli embed     --graph=g.txt --method=GAE --out=z.csv [--epochs=..]
//   aneci_cli attack    --graph=g.txt --type=random --rate=0.2 --out=ga.txt
//   aneci_cli detect    --graph=g.txt --kind=Mix --fraction=0.05
//   aneci_cli community --graph=g.txt --k=7
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "anomaly/anomaly_score.h"
#include "anomaly/outlier_injection.h"
#include "attack/random_attack.h"
#include "core/aneci.h"
#include "core/aneci_plus.h"
#include "data/datasets.h"
#include "embed/aneci_embedder.h"
#include "embed/embedder.h"
#include "graph/graph_io.h"
#include "graph/louvain.h"
#include "tasks/community.h"
#include "tasks/metrics.h"

namespace aneci::cli {
namespace {

// Minimal flag access over argv (same convention as bench/common.h).
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) args_.emplace_back(argv[i]);
  }
  std::string Get(const std::string& name, const std::string& fallback) const {
    const std::string prefix = "--" + name + "=";
    for (const std::string& a : args_)
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    return fallback;
  }
  double GetDouble(const std::string& name, double fallback) const {
    const std::string v = Get(name, "");
    return v.empty() ? fallback : std::atof(v.c_str());
  }
  int GetInt(const std::string& name, int fallback) const {
    const std::string v = Get(name, "");
    return v.empty() ? fallback : std::atoi(v.c_str());
  }
  bool Has(const std::string& name) const {
    for (const std::string& a : args_)
      if (a == "--" + name) return true;
    return false;
  }

 private:
  std::vector<std::string> args_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

StatusOr<Graph> LoadRequiredGraph(const Args& args) {
  const std::string path = args.Get("graph", "");
  if (path.empty()) return Status::InvalidArgument("--graph=<file> required");
  return LoadGraph(path);
}

bool WriteEmbeddingCsv(const Matrix& z, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (int i = 0; i < z.rows(); ++i) {
    for (int c = 0; c < z.cols(); ++c) {
      if (c) out << ',';
      out << z(i, c);
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

int CmdGenerate(const Args& args) {
  const std::string out = args.Get("out", "graph.txt");
  StatusOr<Dataset> ds =
      MakeDataset(args.Get("dataset", "cora"),
                  static_cast<uint64_t>(args.GetInt("seed", 42)),
                  args.GetDouble("scale", 1.0));
  if (!ds.ok()) return Fail(ds.status().ToString());
  Status st = SaveGraph(ds.value().graph, out);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("wrote %s: %d nodes, %d edges, %d classes, %d attributes\n",
              out.c_str(), ds.value().graph.num_nodes(),
              ds.value().graph.num_edges(), ds.value().graph.num_classes(),
              ds.value().graph.attribute_dim());
  return 0;
}

int CmdTrain(const Args& args) {
  StatusOr<Graph> graph = LoadRequiredGraph(args);
  if (!graph.ok()) return Fail(graph.status().ToString());

  AneciConfig cfg;
  cfg.embed_dim = args.GetInt("dim", 16);
  cfg.hidden_dim = args.GetInt("hidden", 64);
  cfg.epochs = args.GetInt("epochs", 150);
  cfg.proximity.order = args.GetInt("order", 2);
  cfg.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  cfg.checkpoint_dir = args.Get("checkpoint-dir", "");
  cfg.checkpoint_every = args.GetInt("checkpoint-every", 10);
  if (args.Has("resume")) {
    if (cfg.checkpoint_dir.empty())
      return Fail("--resume requires --checkpoint-dir=<dir>");
    cfg.resume_from = cfg.checkpoint_dir;
  }

  Matrix z;
  if (args.Has("plus")) {
    AneciPlusConfig plus;
    plus.base = cfg;
    AneciPlusResult result = TrainAneciPlus(graph.value(), plus);
    std::printf("AnECI+ removed %d suspicious edges (rho=%.2f)\n",
                result.edges_removed, result.drop_ratio);
    z = result.stage2.z;
  } else {
    Aneci model(cfg);
    StatusOr<AneciResult> trained = model.TrainWithResilience(graph.value());
    if (!trained.ok()) return Fail(trained.status().ToString());
    const AneciResult& result = trained.value();
    if (result.resumed_from_epoch >= 0)
      std::printf("resumed from checkpoint at epoch %d\n",
                  result.resumed_from_epoch);
    if (result.watchdog_rollbacks > 0)
      std::printf("watchdog took %d rollback(s); lr decayed to %g\n",
                  result.watchdog_rollbacks, result.final_lr);
    std::printf("trained %zu epochs, Q~=%.4f rigidity=%.3f\n",
                result.history.size(), result.history.back().modularity,
                result.history.back().rigidity);
    z = result.z;
  }
  const std::string out = args.Get("out", "embedding.csv");
  if (!WriteEmbeddingCsv(z, out)) return Fail("cannot write " + out);
  std::printf("wrote %s (%d x %d)\n", out.c_str(), z.rows(), z.cols());
  return 0;
}

int CmdEmbed(const Args& args) {
  StatusOr<Graph> graph = LoadRequiredGraph(args);
  if (!graph.ok()) return Fail(graph.status().ToString());
  const std::string method = args.Get("method", "GAE");
  auto embedder = CreateEmbedder(method, args.GetInt("dim", 32),
                                 args.GetInt("epochs", 0));
  if (!embedder.ok()) return Fail(embedder.status().ToString());
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  Matrix z = embedder.value()->Embed(graph.value(), rng);
  const std::string out = args.Get("out", "embedding.csv");
  if (!WriteEmbeddingCsv(z, out)) return Fail("cannot write " + out);
  std::printf("%s embedding written to %s (%d x %d)\n", method.c_str(),
              out.c_str(), z.rows(), z.cols());
  return 0;
}

int CmdAttack(const Args& args) {
  StatusOr<Graph> graph = LoadRequiredGraph(args);
  if (!graph.ok()) return Fail(graph.status().ToString());
  const std::string type = args.Get("type", "random");
  if (type != "random")
    return Fail("only --type=random is file-driven; FGA/NETTACK need splits "
                "(see bench_fig3/bench_fig4)");
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  RandomAttackResult result =
      RandomAttack(graph.value(), args.GetDouble("rate", 0.2), rng);
  const std::string out = args.Get("out", "attacked.txt");
  Status st = SaveGraph(result.attacked, out);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("injected %zu fake edges; wrote %s\n",
              result.fake_edges.size(), out.c_str());
  return 0;
}

int CmdDetect(const Args& args) {
  StatusOr<Graph> graph = LoadRequiredGraph(args);
  if (!graph.ok()) return Fail(graph.status().ToString());
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));

  const std::string kind_name = args.Get("kind", "Mix");
  OutlierKind kind = OutlierKind::kMix;
  if (kind_name == "S") kind = OutlierKind::kStructural;
  if (kind_name == "A") kind = OutlierKind::kAttribute;
  if (kind_name == "S&A") kind = OutlierKind::kCombined;

  OutlierInjectionResult injected = InjectOutliers(
      graph.value(), kind, args.GetDouble("fraction", 0.05), rng);

  AneciConfig cfg;
  cfg.epochs = args.GetInt("epochs", 100);
  cfg.early_stop_patience = 20;
  AneciEmbedder model(cfg);
  std::vector<double> scores = model.ScoreAnomalies(injected.graph, rng);
  std::printf("implanted %zu %s outliers; AnECI AUC = %.3f\n",
              injected.outlier_ids.size(), kind_name.c_str(),
              AreaUnderRoc(scores, injected.is_outlier));
  return 0;
}

int CmdCommunity(const Args& args) {
  StatusOr<Graph> graph = LoadRequiredGraph(args);
  if (!graph.ok()) return Fail(graph.status().ToString());
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  const int k = args.GetInt(
      "k", graph.value().has_labels() ? graph.value().num_classes() : 4);

  AneciConfig cfg;
  cfg.embed_dim = k;
  cfg.epochs = args.GetInt("epochs", 300);
  AneciEmbedder model(cfg);
  model.Embed(graph.value(), rng);
  CommunityResult aneci_comm =
      DetectCommunitiesArgmax(graph.value(), model.last_membership());

  LouvainResult louvain = Louvain(graph.value(), rng);
  std::printf("AnECI : Q=%.3f (%d communities)\n", aneci_comm.modularity,
              aneci_comm.num_communities);
  std::printf("Louvain: Q=%.3f (%d communities)\n", louvain.modularity,
              louvain.num_communities);
  const std::string out = args.Get("out", "");
  if (!out.empty()) {
    std::ofstream f(out);
    for (int c : aneci_comm.assignment) f << c << '\n';
    std::printf("assignment written to %s\n", out.c_str());
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: aneci_cli <generate|train|embed|attack|detect|"
                 "community> [--flags]\n");
    return 1;
  }
  const Args args(argc, argv);
  const std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "train") return CmdTrain(args);
  if (cmd == "embed") return CmdEmbed(args);
  if (cmd == "attack") return CmdAttack(args);
  if (cmd == "detect") return CmdDetect(args);
  if (cmd == "community") return CmdCommunity(args);
  return Fail("unknown command: " + cmd);
}

}  // namespace
}  // namespace aneci::cli

int main(int argc, char** argv) { return aneci::cli::Run(argc, argv); }

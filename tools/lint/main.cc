// aneci_lint driver: walks src/, tools/, bench/ and tests/ (or explicit
// paths), runs every registered check, and prints findings as
// `file:line: check-name: message` — the format terminals and CI annotate.
//
//   aneci_lint [--root=DIR] [--check=NAME] [--list-checks] [paths...]
//
// Exit codes: 0 clean, 1 findings, 2 usage error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace aneci::lint {
namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
         ext == ".cxx";
}

/// Collects lintable files under `path` (file or directory), repo-relative
/// to `root`. Build trees and hidden directories are skipped.
void CollectFiles(const fs::path& root, const fs::path& path,
                  std::vector<std::string>* out) {
  std::error_code ec;
  if (fs::is_regular_file(path, ec)) {
    if (IsSourceFile(path))
      out->push_back(path.lexically_relative(root).generic_string());
    return;
  }
  for (fs::recursive_directory_iterator it(path, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    const std::string name = it->path().filename().string();
    if (it->is_directory(ec) &&
        (name.rfind("build", 0) == 0 || name.rfind(".", 0) == 0)) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file(ec) && IsSourceFile(it->path()))
      out->push_back(it->path().lexically_relative(root).generic_string());
  }
}

int Run(int argc, char** argv) {
  std::string root = ".";
  LintOptions options;
  std::vector<std::string> explicit_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-checks") {
      for (const CheckInfo& c : RegisteredChecks())
        std::printf("%-24s %s\n", c.name.c_str(), c.description.c_str());
      return 0;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--check=", 0) == 0) {
      options.only_check = arg.substr(8);
      if (!IsRegisteredCheck(options.only_check)) {
        std::fprintf(stderr,
                     "aneci_lint: unknown check '%s' (see --list-checks)\n",
                     options.only_check.c_str());
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "aneci_lint: unknown flag '%s'\n"
                   "usage: aneci_lint [--root=DIR] [--check=NAME] "
                   "[--list-checks] [paths...]\n",
                   arg.c_str());
      return 2;
    } else {
      explicit_paths.push_back(arg);
    }
  }

  const fs::path root_path(root);
  std::vector<std::string> files;
  if (explicit_paths.empty()) {
    for (const char* dir : {"src", "tools", "bench", "tests"})
      CollectFiles(root_path, root_path / dir, &files);
  } else {
    for (const std::string& p : explicit_paths)
      CollectFiles(root_path, root_path / p, &files);
  }
  std::sort(files.begin(), files.end());

  Linter linter;
  int unreadable = 0;
  for (const std::string& rel : files) {
    std::ifstream in(root_path / rel, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "aneci_lint: cannot read %s\n", rel.c_str());
      ++unreadable;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    linter.AddFile(rel, buf.str());
  }
  if (files.empty() || unreadable > 0) {
    std::fprintf(stderr, "aneci_lint: no lintable files under '%s'\n",
                 root.c_str());
    return 2;
  }

  const std::vector<Finding> findings = linter.Run(options);
  for (const Finding& f : findings) std::printf("%s\n", f.ToString().c_str());
  if (findings.empty()) {
    std::fprintf(stderr, "aneci_lint: clean (%zu files)\n", files.size());
    return 0;
  }
  std::fprintf(stderr, "aneci_lint: %zu finding(s) in %zu files\n",
               findings.size(), files.size());
  return 1;
}

}  // namespace
}  // namespace aneci::lint

int main(int argc, char** argv) { return aneci::lint::Run(argc, argv); }

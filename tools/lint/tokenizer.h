// Lightweight C++ tokenizer for aneci_lint. It does NOT parse C++; it
// produces a stream of lexical tokens with comments, string/char literals
// and preprocessor directives correctly stripped out of the token stream,
// which is exactly the precision the lint checks need: a banned identifier
// inside a string literal or a comment must not fire, and a `// NOLINT(...)`
// comment must be attributable to the physical line it sits on.
//
// Handled lexical edge cases (each covered by tests/lint_test.cc):
//   - line comments, including backslash-continued ones
//   - block comments spanning lines
//   - string/char literals with escape sequences and encoding prefixes
//   - raw string literals R"delim(...)delim" (no escape processing inside)
//   - preprocessor directives with backslash-newline continuations
#ifndef ANECI_TOOLS_LINT_TOKENIZER_H_
#define ANECI_TOOLS_LINT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace aneci::lint {

enum class TokenKind {
  kIdentifier,    // foo, std, NOLINT-like words outside comments
  kNumber,        // 123, 0xff, 1.5e-3
  kString,        // "..."; text holds the raw literal including quotes
  kChar,          // '...'
  kPreprocessor,  // whole logical directive line, e.g. "#pragma once"
  kPunct,         // one operator/punctuator; "::" and "->" are single tokens
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;  // 1-based physical line of the token's first character
};

struct Comment {
  std::string text;  // comment body without the // or /* */ markers
  int line;          // 1-based physical line where the comment starts
  bool block;        // true for /* */ comments
};

struct TokenizedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  /// Physical lines that are phase-2 continuations of the previous line,
  /// i.e. the line before them ended in a backslash-newline splice. Sorted
  /// ascending; raw-string bodies never contribute (their newlines are
  /// real). Lets clients map a physical line back to the start of its
  /// logical line — NOLINT/NOLINTNEXTLINE suppressions are logical-line
  /// scoped (docs/static_analysis.md).
  std::vector<int> continuation_lines;
};

/// First physical line of the logical line containing physical line
/// `line`, per `f.continuation_lines`. Identity for non-continued lines.
int LogicalLineStart(const TokenizedFile& f, int line);

/// Tokenizes `source`. Never fails: unterminated constructs are closed at
/// end of input (a linter must degrade gracefully on in-progress code).
TokenizedFile Tokenize(std::string_view source);

}  // namespace aneci::lint

#endif  // ANECI_TOOLS_LINT_TOKENIZER_H_

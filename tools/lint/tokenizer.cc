#include "tools/lint/tokenizer.h"

#include <algorithm>
#include <cctype>

namespace aneci::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Cursor over the source that tracks physical line numbers and transparently
/// splices backslash-newline line continuations (phase-2 translation), except
/// where the caller opts out (raw string bodies).
class Cursor {
 public:
  Cursor(std::string_view src, std::vector<int>* continuations)
      : src_(src), continuations_(continuations) {}

  bool done() const { return pos_ >= src_.size(); }
  int line() const { return line_; }
  size_t pos() const { return pos_; }

  /// Current character after splicing continuations; '\0' at end.
  char Peek() {
    SkipContinuations();
    return done() ? '\0' : src_[pos_];
  }

  char PeekAt(size_t ahead) {
    SkipContinuations();
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  /// Consumes and returns the current (spliced) character.
  char Get() {
    SkipContinuations();
    if (done()) return '\0';
    const char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  /// Consumes one character WITHOUT splicing continuations (raw strings).
  char GetRaw() {
    if (done()) return '\0';
    const char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

 private:
  void SkipContinuations() {
    while (pos_ + 1 < src_.size() && src_[pos_] == '\\' &&
           (src_[pos_ + 1] == '\n' ||
            (src_[pos_ + 1] == '\r' && pos_ + 2 < src_.size() &&
             src_[pos_ + 2] == '\n'))) {
      pos_ += src_[pos_ + 1] == '\r' ? 3 : 2;
      ++line_;
      // The line we just moved onto continues the logical line that the
      // backslash ended. Splices are encountered left-to-right, so the
      // vector stays sorted; the same line can be recorded at most once.
      if (continuations_ != nullptr &&
          (continuations_->empty() || continuations_->back() != line_)) {
        continuations_->push_back(line_);
      }
    }
  }

  std::string_view src_;
  std::vector<int>* continuations_;
  size_t pos_ = 0;
  int line_ = 1;
};

/// True if `prefix` (the identifier just lexed) is a string-literal encoding
/// prefix, i.e. `u8"x"` / `R"(x)"` style literals.
bool IsStringPrefix(const std::string& prefix) {
  return prefix == "R" || prefix == "L" || prefix == "u" || prefix == "U" ||
         prefix == "u8" || prefix == "LR" || prefix == "uR" || prefix == "UR" ||
         prefix == "u8R";
}

}  // namespace

int LogicalLineStart(const TokenizedFile& f, int line) {
  while (std::binary_search(f.continuation_lines.begin(),
                            f.continuation_lines.end(), line)) {
    --line;
  }
  return line;
}

TokenizedFile Tokenize(std::string_view source) {
  TokenizedFile out;
  Cursor cur(source, &out.continuation_lines);
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto push = [&](TokenKind kind, std::string text, int line) {
    out.tokens.push_back(Token{kind, std::move(text), line});
  };

  // Consumes a quoted literal. The opening quote is already consumed;
  // `quote` is '"' or '\''. Returns the literal body including both quotes.
  auto lex_quoted = [&](char quote) {
    std::string text(1, quote);
    while (!cur.done()) {
      const char c = cur.Get();
      text += c;
      if (c == '\\') {
        if (!cur.done()) text += cur.Get();  // escaped quote or backslash
        continue;
      }
      if (c == quote || c == '\n') break;  // newline: unterminated, recover
    }
    return text;
  };

  // Consumes R"delim( ... )delim". The R and opening quote are consumed.
  auto lex_raw_string = [&] {
    std::string delim;
    while (!cur.done() && cur.Peek() != '(' && cur.Peek() != '\n' &&
           delim.size() < 16)
      delim += cur.Get();
    if (cur.Peek() == '(') cur.Get();
    const std::string closer = ")" + delim + "\"";
    std::string body;
    while (!cur.done()) {
      body += cur.GetRaw();  // no splicing: raw string bodies are verbatim
      if (body.size() >= closer.size() &&
          body.compare(body.size() - closer.size(), closer.size(), closer) ==
              0) {
        break;
      }
    }
    return "R\"" + delim + "(" + body;
  };

  while (!cur.done()) {
    const char c = cur.Peek();
    const int line = cur.line();

    if (c == '\n') {
      cur.Get();
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.Get();
      continue;
    }

    // Comments.
    if (c == '/' && cur.PeekAt(1) == '/') {
      cur.Get();
      cur.Get();
      std::string text;
      // Peek() splices backslash-newlines, so a line comment ending in a
      // backslash correctly swallows the next physical line too.
      while (!cur.done() && cur.Peek() != '\n') text += cur.Get();
      out.comments.push_back(Comment{std::move(text), line, false});
      continue;
    }
    if (c == '/' && cur.PeekAt(1) == '*') {
      cur.Get();
      cur.Get();
      std::string text;
      while (!cur.done()) {
        const char d = cur.GetRaw();
        if (d == '*' && cur.Peek() == '/') {
          cur.Get();
          break;
        }
        text += d;
      }
      out.comments.push_back(Comment{std::move(text), line, true});
      continue;
    }

    // Preprocessor directive: '#' first on the line; eat the logical line
    // (Get() splices backslash-newline continuations automatically).
    if (c == '#' && at_line_start) {
      std::string text;
      while (!cur.done() && cur.Peek() != '\n') {
        if (cur.Peek() == '/' && cur.PeekAt(1) == '/') break;
        if (cur.Peek() == '/' && cur.PeekAt(1) == '*') break;
        text += cur.Get();
      }
      while (!text.empty() && std::isspace(static_cast<unsigned char>(
                                  text.back())))
        text.pop_back();
      push(TokenKind::kPreprocessor, std::move(text), line);
      at_line_start = false;
      continue;
    }

    at_line_start = false;

    if (c == '"') {
      cur.Get();
      push(TokenKind::kString, lex_quoted('"'), line);
      continue;
    }
    if (c == '\'') {
      cur.Get();
      push(TokenKind::kChar, lex_quoted('\''), line);
      continue;
    }

    if (IsIdentStart(c)) {
      std::string ident;
      while (!cur.done() && IsIdentChar(cur.Peek())) ident += cur.Get();
      if (cur.Peek() == '"' && IsStringPrefix(ident)) {
        cur.Get();
        if (ident.back() == 'R') {
          push(TokenKind::kString, lex_raw_string(), line);
        } else {
          push(TokenKind::kString, ident + lex_quoted('"'), line);
        }
        continue;
      }
      push(TokenKind::kIdentifier, std::move(ident), line);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.PeekAt(1))))) {
      // pp-number: digits, idents, quotes as digit separators, and exponent
      // signs. Over-accepting here is fine; checks never look at numbers.
      std::string num;
      num += cur.Get();
      while (!cur.done()) {
        const char d = cur.Peek();
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          num += cur.Get();
        } else if ((d == '+' || d == '-') && !num.empty() &&
                   (num.back() == 'e' || num.back() == 'E' ||
                    num.back() == 'p' || num.back() == 'P')) {
          num += cur.Get();
        } else {
          break;
        }
      }
      push(TokenKind::kNumber, std::move(num), line);
      continue;
    }

    // Punctuation. "::" and "->" are fused because the checks match
    // qualified names and member calls; everything else is one char.
    if (c == ':' && cur.PeekAt(1) == ':') {
      cur.Get();
      cur.Get();
      push(TokenKind::kPunct, "::", line);
      continue;
    }
    if (c == '-' && cur.PeekAt(1) == '>') {
      cur.Get();
      cur.Get();
      push(TokenKind::kPunct, "->", line);
      continue;
    }
    push(TokenKind::kPunct, std::string(1, cur.Get()), line);
  }

  return out;
}

}  // namespace aneci::lint

// Cross-TU project model for aneci_lint's concurrency-discipline suite.
//
// The tokenizer gives us lexical streams; this layer extracts just enough
// structure from them to reason across translation units:
//
//   * classes/structs, their std::mutex members, members annotated
//     ANECI_GUARDED_BY, and methods annotated ANECI_REQUIRES /
//     ANECI_ACQUIRE / ANECI_RELEASE / ANECI_EXCLUDES
//     (src/util/thread_annotations.h),
//   * function definitions with their body token ranges, attributed to a
//     class either lexically (defined inside the class body) or by the
//     `Type Class::Name(` qualifier,
//   * a per-function summary from one lexical walk of each body: mutexes
//     acquired via lock_guard / scoped_lock / unique_lock / .lock(), the
//     nesting (lock-order) edges those acquisitions imply, call sites with
//     the set of mutexes held at the call, and banned-nondeterminism call
//     sites.
//
// Three checks consume the model (rationale and limits in
// docs/static_analysis.md):
//
//   guarded-member-access   a read/write of an ANECI_GUARDED_BY member in a
//                           method of its class without the guard held;
//                           also calling an ANECI_REQUIRES method without
//                           the lock, or an ANECI_EXCLUDES method with it
//   lock-order-cycle        any cycle in the cross-file mutex acquisition
//                           graph (nested lock scopes, ANECI_REQUIRES
//                           context, and call-graph-propagated "may
//                           acquire" sets); a self-loop is a recursive
//                           acquisition of a non-recursive mutex
//   determinism-taint       a function reachable from a deterministic
//                           entry point (registers a
//                           MetricClass::kDeterministic metric, or is/calls
//                           ParallelFor[Chunks]) transitively calls the
//                           banned-nondeterminism set; upgrades the
//                           per-file textual ban to a call-graph property
//
// Deliberate scope limits (this is a linter, not a compiler): analysis is
// lexical and flow-insensitive apart from lock scopes; accesses through a
// pointer to ANOTHER object (`job->error`) are not checked (only bare and
// `this->` accesses inside methods of the declaring class); constructor and
// destructor bodies are exempt from guarded-member-access (the object is
// not yet / no longer shared); lambda bodies run later, so they start with
// an empty held-set — EXCEPT predicates passed to condition_variable
// wait/wait_for/wait_until, which run under the caller's lock and inherit
// it. The clang -Wthread-safety CI leg (tools/ci.sh) covers the
// flow-sensitive remainder on toolchains that have clang.
#ifndef ANECI_TOOLS_LINT_MODEL_H_
#define ANECI_TOOLS_LINT_MODEL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lint.h"
#include "tools/lint/tokenizer.h"

namespace aneci::lint {

/// What one class declares, merged across every file that declares members
/// of a class with this name (header + out-of-line definitions).
struct ClassInfo {
  /// Names of std::mutex / recursive_mutex / shared_mutex members.
  std::set<std::string> mutex_members;
  /// Guarded member name -> canonical mutex id of its guard.
  std::map<std::string, std::string> guarded;
  /// Method name -> canonical mutex ids from ANECI_REQUIRES(...).
  std::map<std::string, std::vector<std::string>> requires_held;
  /// Method name -> canonical mutex ids from ANECI_ACQUIRE(...).
  std::map<std::string, std::vector<std::string>> acquires_on_return;
  /// Method name -> canonical mutex ids from ANECI_RELEASE(...).
  std::map<std::string, std::vector<std::string>> releases;
  /// Method name -> canonical mutex ids from ANECI_EXCLUDES(...).
  std::map<std::string, std::vector<std::string>> excludes;
};

/// One input file. `tokens` must outlive the model.
struct SourceFile {
  std::string path;
  const TokenizedFile* tokens;
};

class ProjectModel {
 public:
  /// Builds the model and runs the per-function analysis. `files` is
  /// typically every file under src/ (policy: the concurrency suite only
  /// applies to library code; see lint.cc).
  explicit ProjectModel(const std::vector<SourceFile>& files);

  /// Each check appends its findings; all are deterministic in input order.
  void CheckGuardedMemberAccess(std::vector<Finding>* out) const;
  void CheckLockOrderCycle(std::vector<Finding>* out) const;
  void CheckDeterminismTaint(std::vector<Finding>* out) const;

  /// Introspection for tests.
  const std::map<std::string, ClassInfo>& classes() const { return classes_; }
  /// Qualified names ("Class::Name" / "Name") of every function definition
  /// the model found, in discovery order.
  std::vector<std::string> function_names() const;
  /// Canonical "from -> to" strings of every deduplicated lock-order edge.
  std::vector<std::string> lock_order_edges() const;

 private:
  struct Edge {
    std::string from, to;
    std::string file;
    int line;
  };
  struct CallSite {
    std::string name;         // bare callee name
    bool receiver_self;       // bare, this->, or OwnClass:: call
    bool receiver_object;     // x.name( / x->name( on a non-this object
    bool sync;                // false inside a non-predicate lambda body
    std::vector<std::string> held;  // canonical mutex ids held at the call
    int line;
  };
  struct BannedSite {
    std::string what;
    int line;
  };
  struct FunctionInfo {
    std::string name;        // bare name ("~Foo" for destructors)
    std::string class_name;  // "" for free functions
    std::string file;
    int line;
    bool ctor_dtor = false;
    /// Mutexes this function acquires synchronously (not inside a detached
    /// lambda), canonical ids.
    std::set<std::string> acquires;
    std::vector<Edge> edges;
    std::vector<CallSite> calls;
    std::vector<BannedSite> banned;
    bool det_root = false;
    std::string det_root_why;
  };

  std::string Qualified(const FunctionInfo& f) const;
  std::vector<int> ResolveCallees(const FunctionInfo& caller,
                                  const CallSite& call) const;

  void ParseClasses(const SourceFile& file);
  void ParseClassAnnotations(const SourceFile& file);
  void ParseFunctions(const SourceFile& file);
  void AnalyzeBody(const SourceFile& file, FunctionInfo* fn, size_t body_begin,
                   size_t body_end);
  void BuildLockGraph(std::vector<Edge>* out_edges) const;

  std::map<std::string, ClassInfo> classes_;
  std::vector<FunctionInfo> functions_;
  /// Bare name -> indices into functions_.
  std::map<std::string, std::vector<int>> by_name_;
  /// Per file parsed in ParseClasses: class body spans, used to attribute
  /// in-class method definitions to their class.
  std::map<std::string, std::vector<std::pair<std::string, std::pair<size_t, size_t>>>>
      class_spans_;
  /// Findings produced while walking bodies (guarded-member-access).
  std::vector<Finding> access_findings_;
};

}  // namespace aneci::lint

#endif  // ANECI_TOOLS_LINT_MODEL_H_

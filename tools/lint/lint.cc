#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>

#include "tools/lint/model.h"

namespace aneci::lint {
namespace {

// --- Path scoping -----------------------------------------------------------

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True when `path` lives under top-level directory `dir` ("src/x.cc" or
/// "repo/src/x.cc" both count as inside "src").
bool InDir(const std::string& path, const std::string& dir) {
  const std::string needle = dir + "/";
  return path.rfind(needle, 0) == 0 ||
         path.find("/" + needle) != std::string::npos;
}

/// The sanctioned timing layer: the clock wrapper itself plus the two
/// consumers that turn durations into registry data (trace spans, latency
/// histograms). Everything else in src/ must go through these.
bool IsTimingLayer(const std::string& path) {
  return EndsWith(path, "util/timer.h") || EndsWith(path, "util/trace.h") ||
         EndsWith(path, "util/trace.cc") || EndsWith(path, "util/metrics.h") ||
         EndsWith(path, "util/metrics.cc");
}

bool IsHeader(const std::string& path) {
  return EndsWith(path, ".h") || EndsWith(path, ".hpp");
}

// --- Suppressions -----------------------------------------------------------

/// NOLINT suppressions for one file: line -> set of suppressed check names.
using SuppressionMap = std::map<int, std::set<std::string>>;

std::string Trim(std::string s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// First physical line AFTER the logical line containing `line` — the line
/// a NOLINTNEXTLINE on `line` applies to. Phase-2 splices extend the
/// logical line, so a suppression comment ending in `\` skips past every
/// continuation line it swallowed.
int NextLogicalLine(const TokenizedFile& tf, int line) {
  int t = LogicalLineStart(tf, line) + 1;
  while (std::binary_search(tf.continuation_lines.begin(),
                            tf.continuation_lines.end(), t))
    ++t;
  return t;
}

/// Parses every NOLINT / NOLINTNEXTLINE marker in a comment. Markers naming
/// only foreign checks (clang-tidy's NOLINT(runtime/int) style) or bare
/// NOLINTs are ignored; markers naming one of our checks must carry a
/// ": reason" or they produce a nolint-reason finding themselves.
/// Suppressions are LOGICAL-line scoped: the map is keyed by the first
/// physical line of the logical line, and findings are canonicalized the
/// same way before lookup, so a marker trailing a spliced statement covers
/// the whole statement.
void CollectSuppressions(const std::string& file, const TokenizedFile& tf,
                         const Comment& comment, SuppressionMap* map,
                         std::vector<Finding>* findings) {
  const std::string& text = comment.text;
  for (size_t pos = text.find("NOLINT"); pos != std::string::npos;
       pos = text.find("NOLINT", pos + 1)) {
    int line = comment.line +
               static_cast<int>(std::count(text.begin(), text.begin() + pos,
                                           '\n'));
    size_t i = pos + 6;  // past "NOLINT"
    if (text.compare(i, 8, "NEXTLINE") == 0) {
      i += 8;
      line = NextLogicalLine(tf, line);
    } else {
      line = LogicalLineStart(tf, line);
    }
    if (i >= text.size() || text[i] != '(') continue;  // bare NOLINT: foreign
    const size_t close = text.find(')', i);
    if (close == std::string::npos) continue;

    std::vector<std::string> names;
    for (size_t start = i + 1; start < close;) {
      size_t comma = text.find(',', start);
      if (comma == std::string::npos || comma > close) comma = close;
      const std::string name = Trim(text.substr(start, comma - start));
      if (!name.empty()) names.push_back(name);
      start = comma + 1;
    }
    std::vector<std::string> ours;
    for (const std::string& name : names)
      if (IsRegisteredCheck(name)) ours.push_back(name);
    if (ours.empty()) continue;  // names only foreign checks

    // Required reason: "NOLINT(check): why this is safe".
    size_t r = close + 1;
    while (r < text.size() && (text[r] == ' ' || text[r] == '\t')) ++r;
    const size_t eol = text.find('\n', close);
    const bool has_reason =
        r < text.size() && text[r] == ':' &&
        !Trim(text.substr(r + 1, (eol == std::string::npos ? text.size() : eol) -
                                     (r + 1)))
             .empty();
    if (!has_reason) {
      findings->push_back(
          {file, line, "nolint-reason",
           "NOLINT(" + ours.front() +
               ") needs a reason: write `NOLINT(check): why this is safe`"});
      continue;  // a reasonless suppression does not suppress
    }
    for (const std::string& name : ours) (*map)[line].insert(name);
  }
}

// --- Token helpers ----------------------------------------------------------

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Index just past a balanced bracket run starting at `i` (tokens[i] must be
/// the opener). Returns tokens.size() when unbalanced.
size_t SkipBalanced(const std::vector<Token>& toks, size_t i,
                    const char* open, const char* close) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (IsPunct(toks[i], open)) ++depth;
    if (IsPunct(toks[i], close) && --depth == 0) return i + 1;
  }
  return toks.size();
}

// --- Pass 1: status-returning function names --------------------------------

/// Records names declared as `Status Name(...)` or `StatusOr<...> Name(...)`.
void CollectStatusFunctions(const TokenizedFile& file,
                            std::set<std::string>* out) {
  const std::vector<Token>& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const bool plain = IsIdent(toks[i], "Status");
    const bool wrapped = IsIdent(toks[i], "StatusOr");
    if (!plain && !wrapped) continue;
    size_t j = i + 1;
    if (wrapped) {
      if (j >= toks.size() || !IsPunct(toks[j], "<")) continue;
      j = SkipBalanced(toks, j, "<", ">");
    }
    if (j + 1 < toks.size() && toks[j].kind == TokenKind::kIdentifier &&
        IsPunct(toks[j + 1], "(")) {
      out->insert(toks[j].text);
    }
  }
}

/// Records names declared as `<type> Name(...)` for any non-Status type
/// (pattern: identifier identifier `(` where the first identifier is not a
/// statement keyword). Used to override bare-name collisions across files.
void CollectNonStatusFunctions(const TokenizedFile& file,
                               std::set<std::string>* out) {
  static const std::set<std::string> kNotATypePrefix = {
      "return",    "new",     "throw",    "delete", "case",   "goto",
      "co_return", "co_await", "co_yield", "else",   "do",     "sizeof",
      "alignof",   "decltype", "using",    "typedef", "operator",
      "Status",    "StatusOr"};
  const std::vector<Token>& toks = file.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        toks[i + 1].kind != TokenKind::kIdentifier)
      continue;
    if (kNotATypePrefix.count(toks[i].text)) continue;
    // `Type name(` — a free function or in-class declaration.
    if (IsPunct(toks[i + 2], "(")) {
      out->insert(toks[i + 1].text);
      continue;
    }
    // `Type Class::name(` — an out-of-class member definition; without this
    // form a void member sharing its name with some other file's
    // Status-returning function is falsely flagged.
    if (i + 4 < toks.size() && IsPunct(toks[i + 2], "::") &&
        toks[i + 3].kind == TokenKind::kIdentifier &&
        IsPunct(toks[i + 4], "(")) {
      out->insert(toks[i + 3].text);
    }
  }
}

// --- Checks -----------------------------------------------------------------

using Findings = std::vector<Finding>;

/// discarded-status: an expression statement that is exactly a call chain
/// ending in a function known to return Status/StatusOr. `(void)call();` and
/// values consumed by =, return, if(...) etc. never match, because the call
/// is then not the whole statement.
void CheckDiscardedStatus(const std::string& file, const TokenizedFile& tf,
                          const std::set<std::string>& status_fns,
                          const std::set<std::string>& local_status,
                          const std::set<std::string>& local_non_status,
                          Findings* out) {
  // Preprocessor directives are invisible to statement structure.
  std::vector<const Token*> toks;
  for (const Token& t : tf.tokens)
    if (t.kind != TokenKind::kPreprocessor) toks.push_back(&t);

  // open_of[k]: index of the '(' matching the ')' at k (-1 if unbalanced).
  std::vector<int> open_of(toks.size(), -1);
  {
    std::vector<int> stack;
    for (size_t k = 0; k < toks.size(); ++k) {
      if (IsPunct(*toks[k], "(")) stack.push_back(static_cast<int>(k));
      if (IsPunct(*toks[k], ")") && !stack.empty()) {
        open_of[k] = stack.back();
        stack.pop_back();
      }
    }
  }

  auto stmt_start = [&](size_t i) {
    if (i == 0) return true;
    const Token& p = *toks[i - 1];
    if (IsPunct(p, ";") || IsPunct(p, "{") || IsPunct(p, "}") ||
        IsIdent(p, "else") || IsIdent(p, "do"))
      return true;
    // After `if (...)` / `while (...)` / `for (...)` a braceless statement
    // begins; after any other `)` — e.g. the `(void)` discard cast or a
    // parenthesised subexpression — it does not.
    if (IsPunct(p, ")") && open_of[i - 1] > 0) {
      const Token& before = *toks[open_of[i - 1] - 1];
      return IsIdent(before, "if") || IsIdent(before, "while") ||
             IsIdent(before, "for") || IsIdent(before, "switch");
    }
    return false;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i]->kind != TokenKind::kIdentifier || !stmt_start(i)) continue;
    // Walk the call chain: name (:: name | . name | -> name)*
    size_t j = i;
    std::string callee = toks[j]->text;
    while (j + 2 < toks.size() &&
           (IsPunct(*toks[j + 1], "::") || IsPunct(*toks[j + 1], ".") ||
            IsPunct(*toks[j + 1], "->")) &&
           toks[j + 2]->kind == TokenKind::kIdentifier) {
      j += 2;
      callee = toks[j]->text;
    }
    if (j + 1 >= toks.size() || !IsPunct(*toks[j + 1], "(")) continue;
    if (!status_fns.count(callee)) continue;
    if (local_non_status.count(callee) && !local_status.count(callee))
      continue;  // this file's own `callee` demonstrably isn't Status
    // Balanced-paren skip over the argument list (argument lists contain
    // nested parens/lambdas; only the statement-final `;` matters).
    int depth = 0;
    size_t k = j + 1;
    for (; k < toks.size(); ++k) {
      if (toks[k]->kind != TokenKind::kPunct) continue;
      if (toks[k]->text == "(") ++depth;
      if (toks[k]->text == ")" && --depth == 0) break;
    }
    if (k + 1 < toks.size() && IsPunct(*toks[k + 1], ";")) {
      out->push_back(
          {file, toks[i]->line, "discarded-status",
           "result of '" + callee +
               "' (returns Status/StatusOr) is ignored; check it, wrap in "
               "ANECI_RETURN_IF_ERROR, or cast to (void) with a NOLINT "
               "reason"});
    }
  }
}

/// CPUID probes are machine-dependent: two hosts running the same binary can
/// take different code paths, which silently splits "deterministic" runs by
/// hardware. They are confined to the one audited selection point.
bool IsCpuidProbe(const std::string& text) {
  static const std::set<std::string> kCpuidCalls = {
      "__builtin_cpu_supports", "__builtin_cpu_is", "__builtin_cpu_init",
      "__get_cpuid",            "__get_cpuid_count", "__cpuid",
      "__cpuidex"};
  return kCpuidCalls.count(text) != 0;
}

void CheckBannedNondeterminism(const std::string& file,
                               const TokenizedFile& tf, bool allow_cpuid,
                               Findings* out) {
  const std::vector<Token>& toks = tf.tokens;
  auto flag = [&](const Token& t, const std::string& what) {
    out->push_back({file, t.line, "banned-nondeterminism",
                    what + " is nondeterministic and breaks the bit-identical "
                           "checkpoint/resume guarantee; use util/rng.h "
                           "(seeded) or util/timer.h"});
  };
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    const bool call_next = i + 1 < toks.size() && IsPunct(toks[i + 1], "(");
    if (t.text == "random_device") {
      flag(t, "std::random_device");
    } else if (call_next && !allow_cpuid && IsCpuidProbe(t.text)) {
      out->push_back(
          {file, t.line, "banned-nondeterminism",
           "CPUID probe '" + t.text +
               "()' makes behaviour machine-dependent; backend selection "
               "lives only in src/linalg/kernels/dispatch.cc (set "
               "ANECI_KERNEL_BACKEND to pin it)"});
    } else if (call_next &&
               (t.text == "rand" || t.text == "srand" || t.text == "rand_r" ||
                t.text == "drand48")) {
      flag(t, "'" + t.text + "()'");
    } else if (call_next && (t.text == "time" || t.text == "clock")) {
      flag(t, "'" + t.text + "()'");
    } else if (t.text.size() > 6 &&
               t.text.compare(t.text.size() - 6, 6, "_clock") == 0 &&
               i + 2 < toks.size() && IsPunct(toks[i + 1], "::") &&
               IsIdent(toks[i + 2], "now")) {
      flag(t, "std::chrono::" + t.text + "::now()");
    }
  }
}

/// Socket syscalls banned outside the serving layer's shim. Only free calls
/// count: `recv(` and `::recv(` are flagged, `decoder.recv(`, `Foo::recv(`
/// and `std::bind(` are someone else's identifiers.
bool IsRawSocketSyscall(const std::vector<Token>& toks, size_t i) {
  static const std::set<std::string> kSocketCalls = {
      "socket",  "accept",  "accept4",    "connect",    "bind",
      "listen",  "recv",    "recvfrom",   "recvmsg",    "send",
      "sendto",  "sendmsg", "setsockopt", "getsockopt", "getsockname",
      "shutdown",
      // Readiness/fd-control syscalls: deadlines are poll-based and belong
      // to the same audited shim as the socket calls they gate.
      "poll",    "ppoll",   "fcntl"};
  if (!kSocketCalls.count(toks[i].text)) return false;
  if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (IsPunct(prev, ".") || IsPunct(prev, "->")) return false;
  if (IsPunct(prev, "::")) {
    // `::recv(` is the global syscall; `ns::recv(` is not.
    return i < 2 || toks[i - 2].kind != TokenKind::kIdentifier;
  }
  return true;
}

void CheckBannedRawIo(const std::string& file, const TokenizedFile& tf,
                      bool allow_sockets, Findings* out) {
  const std::vector<Token>& toks = tf.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text == "fopen" || t.text == "freopen" || t.text == "tmpfile" ||
        t.text == "ofstream" || t.text == "fstream") {
      out->push_back({file, t.line, "banned-raw-io",
                      "'" + t.text +
                          "' bypasses Env's atomic temp+rename write path; "
                          "route file writes through util/env.h"});
    } else if (t.text == "ifstream") {
      // Reads route through Env too: Env::ReadFile is the fault-injection
      // point the robustness tests (checkpoint, event-log replay) rely on,
      // and a stray ifstream silently escapes that coverage.
      out->push_back({file, t.line, "banned-raw-io",
                      "'ifstream' bypasses Env's fault-injectable read path; "
                      "route file reads through Env::ReadFile (util/env.h)"});
    } else if (!allow_sockets && IsRawSocketSyscall(toks, i)) {
      out->push_back(
          {file, t.line, "banned-raw-io",
           "raw socket syscall '" + t.text +
               "' in library code; all socket IO goes through the "
               "src/serve/socket_io.cc shim so error handling (EINTR, "
               "SIGPIPE, partial writes) lives in one audited place"});
    }
  }
}

void CheckNoIostream(const std::string& file, const TokenizedFile& tf,
                     Findings* out) {
  for (const Token& t : tf.tokens) {
    if (t.kind == TokenKind::kPreprocessor &&
        t.text.find("<iostream>") != std::string::npos) {
      out->push_back({file, t.line, "no-iostream-in-library",
                      "library code must not include <iostream>; report "
                      "errors via Status and progress via callbacks"});
    }
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text == "cout" || t.text == "cerr" || t.text == "clog") {
      out->push_back({file, t.line, "no-iostream-in-library",
                      "'std::" + t.text +
                          "' in library code; report errors via Status and "
                          "progress via callbacks"});
    }
  }
}

/// banned-adhoc-timing: util/timer.h (the raw monotonic-clock wrapper) used
/// directly in library code. Timing belongs to the observability layer —
/// TraceSpan for phases, ScopedLatencyTimer + Histogram for latencies — so
/// that every duration lands in the registry instead of a printf or a local
/// variable. Only the layer itself (util/{timer,trace,metrics}) is exempt.
void CheckBannedAdhocTiming(const std::string& file, const TokenizedFile& tf,
                            Findings* out) {
  for (const Token& t : tf.tokens) {
    if (t.kind == TokenKind::kPreprocessor &&
        t.text.find("\"util/timer.h\"") != std::string::npos) {
      out->push_back({file, t.line, "banned-adhoc-timing",
                      "direct include of util/timer.h in library code; time "
                      "phases with TraceSpan (util/trace.h) or latencies with "
                      "ScopedLatencyTimer (util/metrics.h) so durations reach "
                      "the metrics registry"});
    }
    if (t.kind == TokenKind::kIdentifier && t.text == "Timer") {
      out->push_back({file, t.line, "banned-adhoc-timing",
                      "ad-hoc 'Timer' use in library code; wrap the timed "
                      "region in TraceSpan (util/trace.h) or "
                      "ScopedLatencyTimer (util/metrics.h) instead"});
    }
  }
}

void CheckHeaderHygiene(const std::string& file, const TokenizedFile& tf,
                        Findings* out) {
  const Token* first_pp = nullptr;
  for (const Token& t : tf.tokens) {
    if (t.kind == TokenKind::kPreprocessor) {
      first_pp = &t;
      break;
    }
  }
  const bool guarded =
      first_pp && (first_pp->text.rfind("#pragma once", 0) == 0 ||
                   first_pp->text.rfind("#ifndef", 0) == 0);
  if (!tf.tokens.empty() && !guarded) {
    out->push_back({file, 1, "header-hygiene",
                    "header must open with an include guard (#ifndef) or "
                    "#pragma once"});
  }
  for (size_t i = 0; i + 1 < tf.tokens.size(); ++i) {
    if (IsIdent(tf.tokens[i], "using") &&
        IsIdent(tf.tokens[i + 1], "namespace")) {
      out->push_back({file, tf.tokens[i].line, "header-hygiene",
                      "'using namespace' in a header leaks into every "
                      "includer; qualify names instead"});
    }
  }
}

}  // namespace

std::string Finding::ToString() const {
  return file + ":" + std::to_string(line) + ": " + check + ": " + message;
}

const std::vector<CheckInfo>& RegisteredChecks() {
  static const std::vector<CheckInfo> kChecks = {
      {"discarded-status",
       "a call returning Status/StatusOr used as a bare expression statement"},
      {"banned-nondeterminism",
       "rand/srand/std::random_device/time()/clock()/*_clock::now in src/ "
       "(allowlist: util/timer.h), plus CPUID probes "
       "(__builtin_cpu_supports/__get_cpuid/...) outside "
       "linalg/kernels/dispatch.cc"},
      {"banned-raw-io",
       "fopen/std::ofstream/std::fstream/std::ifstream in src/ outside "
       "util/env.cc (file IO must route through Env, reads included so "
       "fault injection covers them), and raw socket/poll/fcntl syscalls "
       "outside the serve/socket_io.cc shim"},
      {"no-iostream-in-library", "std::cout/cerr/clog or <iostream> in src/"},
      {"banned-adhoc-timing",
       "util/timer.h or a raw Timer in src/ outside util/{timer,trace,"
       "metrics}; use TraceSpan or ScopedLatencyTimer"},
      {"header-hygiene",
       "headers must open with a guard and must not 'using namespace'"},
      {"nolint-reason",
       "a NOLINT(<check>) suppression must carry ': reason'"},
      {"guarded-member-access",
       "an ANECI_GUARDED_BY member accessed without its mutex held, an "
       "ANECI_REQUIRES method called without the lock, or an ANECI_EXCLUDES "
       "method called with it (src/ only; see "
       "src/util/thread_annotations.h)"},
      {"lock-order-cycle",
       "a cycle in the cross-file mutex acquisition graph (nested lock "
       "scopes, ANECI_REQUIRES context, call-graph-propagated acquisitions); "
       "a self-loop is a recursive acquisition of a non-recursive mutex"},
      {"determinism-taint",
       "a function reachable from a deterministic entry point (registers "
       "MetricClass::kDeterministic telemetry or enters ParallelFor) "
       "transitively calls the banned-nondeterminism set"},
  };
  return kChecks;
}

bool IsRegisteredCheck(const std::string& name) {
  for (const CheckInfo& c : RegisteredChecks())
    if (c.name == name) return true;
  return false;
}

void Linter::AddFile(const std::string& path, std::string_view content) {
  FileEntry entry;
  entry.path = path;
  entry.tokens = Tokenize(content);
  CollectStatusFunctions(entry.tokens, &entry.local_status);
  CollectNonStatusFunctions(entry.tokens, &entry.local_non_status);
  status_functions_.insert(entry.local_status.begin(),
                           entry.local_status.end());
  files_.push_back(std::move(entry));
}

std::vector<Finding> Linter::Run(const LintOptions& options) const {
  // Per-root check policy (docs/static_analysis.md §2):
  //   src/                 every check, including the cross-TU concurrency
  //                        suite (the project model below is built from
  //                        src/ files only — library code is where locks
  //                        and the determinism contract live)
  //   tools/ bench/ tests/ discarded-status + header-hygiene +
  //                        nolint-reason (tooling and tests may use
  //                        iostream, wall clocks, raw IO — but must not
  //                        drop Status or leak 'using namespace' from
  //                        headers; tools/lint/ itself lints clean)
  // Suppressions are collected up front for every file because the
  // project-wide checks report findings in files other than the one being
  // iterated.
  std::vector<Finding> raw;
  std::map<std::string, SuppressionMap> suppressions_by_file;
  std::map<std::string, const TokenizedFile*> tokens_by_path;
  std::vector<SourceFile> model_files;
  for (const FileEntry& file : files_) {
    tokens_by_path[file.path] = &file.tokens;
    for (const Comment& c : file.tokens.comments)
      CollectSuppressions(file.path, file.tokens, c,
                          &suppressions_by_file[file.path], &raw);

    CheckDiscardedStatus(file.path, file.tokens, status_functions_,
                         file.local_status, file.local_non_status, &raw);
    if (InDir(file.path, "src")) {
      if (!EndsWith(file.path, "util/timer.h"))
        CheckBannedNondeterminism(
            file.path, file.tokens,
            EndsWith(file.path, "linalg/kernels/dispatch.cc"), &raw);
      if (!EndsWith(file.path, "util/env.cc"))
        CheckBannedRawIo(file.path, file.tokens,
                         EndsWith(file.path, "serve/socket_io.cc"), &raw);
      if (!IsTimingLayer(file.path))
        CheckBannedAdhocTiming(file.path, file.tokens, &raw);
      CheckNoIostream(file.path, file.tokens, &raw);
      model_files.push_back({file.path, &file.tokens});
    }
    if (IsHeader(file.path)) CheckHeaderHygiene(file.path, file.tokens, &raw);
  }

  if (!model_files.empty()) {
    ProjectModel model(model_files);
    model.CheckGuardedMemberAccess(&raw);
    model.CheckLockOrderCycle(&raw);
    model.CheckDeterminismTaint(&raw);
  }

  std::vector<Finding> all;
  for (Finding& f : raw) {
    auto sit = suppressions_by_file.find(f.file);
    if (sit != suppressions_by_file.end()) {
      // Suppressions are logical-line scoped: canonicalize the finding's
      // line to the start of its logical line before lookup, so a NOLINT
      // trailing a spliced statement covers every physical line of it.
      int line = f.line;
      auto tit = tokens_by_path.find(f.file);
      if (tit != tokens_by_path.end())
        line = LogicalLineStart(*tit->second, line);
      auto it = sit->second.find(line);
      if (it != sit->second.end() && it->second.count(f.check)) continue;
    }
    // nolint-reason findings always surface: a malformed suppression can
    // silently mask any other check.
    if (!options.only_check.empty() && f.check != options.only_check &&
        f.check != "nolint-reason")
      continue;
    all.push_back(std::move(f));
  }
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.check < b.check;
  });
  return all;
}

std::vector<Finding> LintContent(const std::string& path,
                                 std::string_view content,
                                 const LintOptions& options) {
  Linter linter;
  linter.AddFile(path, content);
  return linter.Run(options);
}

}  // namespace aneci::lint

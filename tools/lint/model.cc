#include "tools/lint/model.h"

#include <algorithm>
#include <deque>
#include <functional>

namespace aneci::lint {
namespace {

using Toks = std::vector<Token>;

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool IsIdentTok(const Token& t) { return t.kind == TokenKind::kIdentifier; }

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Index just past a balanced bracket run starting at `i` (tokens[i] must
/// be the opener). Returns toks.size() when unbalanced.
size_t SkipBalanced(const Toks& toks, size_t i, const char* open,
                    const char* close) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (IsPunct(toks[i], open)) ++depth;
    if (IsPunct(toks[i], close) && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Index of the '(' matching the ')' at `i`; toks.size() when unbalanced.
size_t OpenBackward(const Toks& toks, size_t i) {
  int depth = 0;
  for (size_t k = i + 1; k-- > 0;) {
    if (IsPunct(toks[k], ")")) ++depth;
    if (IsPunct(toks[k], "(") && --depth == 0) return k;
  }
  return toks.size();
}

/// Identifiers that can precede a '(' without being a callable or a
/// function definition name.
bool IsStatementKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "while",     "for",      "switch",   "return",
      "catch",    "sizeof",    "alignof",  "decltype", "new",
      "delete",   "throw",     "else",     "do",       "case",
      "goto",     "co_return", "co_await", "co_yield", "using",
      "typedef",  "operator",  "static_assert",        "static_cast",
      "dynamic_cast",          "const_cast",           "reinterpret_cast",
      "noexcept", "alignas",   "defined"};
  return kKeywords.count(s) > 0;
}

bool IsMutexType(const std::string& s) {
  return s == "mutex" || s == "recursive_mutex" || s == "shared_mutex" ||
         s == "timed_mutex" || s == "recursive_timed_mutex" ||
         s == "shared_timed_mutex";
}

bool IsLockClass(const std::string& s) {
  return s == "lock_guard" || s == "scoped_lock" || s == "unique_lock" ||
         s == "shared_lock";
}

bool IsAneciMacro(const std::string& s) {
  return s.rfind("ANECI_", 0) == 0;
}

std::string JoinTexts(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) out += p;
  return out;
}

/// Splits the argument tokens of a balanced paren group [open, close] into
/// top-level comma-separated expressions, each as a vector of token texts.
std::vector<std::vector<std::string>> SplitArgs(const Toks& toks, size_t open,
                                                size_t close) {
  std::vector<std::vector<std::string>> args;
  std::vector<std::string> cur;
  int depth = 0;
  for (size_t k = open; k <= close && k < toks.size(); ++k) {
    const Token& t = toks[k];
    const bool opener = IsPunct(t, "(") || IsPunct(t, "{") || IsPunct(t, "[");
    const bool closer = IsPunct(t, ")") || IsPunct(t, "}") || IsPunct(t, "]");
    if (opener) {
      if (depth > 0) cur.push_back(t.text);
      ++depth;
      continue;
    }
    if (closer) {
      --depth;
      if (depth > 0) cur.push_back(t.text);
      if (depth == 0) break;
      continue;
    }
    if (depth == 1 && IsPunct(t, ",")) {
      if (!cur.empty()) args.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    cur.push_back(t.text);
  }
  if (!cur.empty()) args.push_back(std::move(cur));
  return args;
}

/// True for std::defer_lock / adopt_lock / try_to_lock tag arguments.
bool IsLockTag(const std::vector<std::string>& expr, const char* tag) {
  return !expr.empty() && expr.back() == tag;
}

}  // namespace

// --- Canonical mutex identities ---------------------------------------------
//
// A mutex needs ONE name across every file that locks it, or the acquisition
// graph falls apart — most classes here call their mutex `mu_`, so the bare
// member name must not merge across classes. Rules:
//   * a bare member of the enclosing class (or `this->m`)  ->  "Class::m"
//   * `Class::m` spelled explicitly                        ->  "Class::m"
//   * a bare identifier outside any class                  ->  "file::m"
//     (file-scoped: a static global merges within its file only)
//   * anything else (`job->mu`, `*pm`)                     ->  a
//     function-local id; such locks still get scope/region tracking but
//     never merge across functions, which keeps over-approximation from
//     inventing cross-file deadlock edges.
namespace {

std::string CanonicalMutex(std::vector<std::string> expr,
                           const std::string& class_name,
                           const std::map<std::string, ClassInfo>& classes,
                           const std::string& file,
                           const std::string& local_scope) {
  // Strip `this->` and a leading `std::`-free `&` (lock-by-reference).
  while (!expr.empty() && (expr.front() == "&" || expr.front() == "*"))
    expr.erase(expr.begin());
  if (expr.size() >= 2 && expr[0] == "this" && expr[1] == "->")
    expr.erase(expr.begin(), expr.begin() + 2);
  if (expr.empty()) return file + "#" + local_scope + "#<empty>";
  if (expr.size() == 1) {
    const std::string& m = expr[0];
    if (!class_name.empty()) {
      auto it = classes.find(class_name);
      if (it != classes.end() && it->second.mutex_members.count(m))
        return class_name + "::" + m;
    }
    return file + "::" + m;
  }
  if (expr.size() == 3 && expr[1] == "::") return expr[0] + "::" + expr[2];
  return file + "#" + local_scope + "#" + JoinTexts(expr);
}

}  // namespace

// --- Class parsing ----------------------------------------------------------

void ProjectModel::ParseClasses(const SourceFile& file) {
  const Toks& toks = file.tokens->tokens;
  auto& spans = class_spans_[file.path];

  // Pass A: class body spans + mutex members (annotation canonicalization
  // in pass B needs the full mutex-member sets).
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "class") && !IsIdent(toks[i], "struct")) continue;
    if (i > 0 && IsIdent(toks[i - 1], "enum")) continue;
    if (!IsIdentTok(toks[i + 1])) continue;
    const std::string name = toks[i + 1].text;
    size_t k = i + 2;
    if (k < toks.size() && IsIdent(toks[k], "final")) ++k;
    if (k < toks.size() && IsPunct(toks[k], ":")) {
      while (k < toks.size() && !IsPunct(toks[k], "{") &&
             !IsPunct(toks[k], ";"))
        ++k;
    }
    // Forward declarations, `template <class T>`, `struct X x;` all lack a
    // body brace here and are skipped.
    if (k >= toks.size() || !IsPunct(toks[k], "{")) continue;
    const size_t end = SkipBalanced(toks, k, "{", "}");
    spans.push_back({name, {k, end}});

    ClassInfo& info = classes_[name];
    int depth = 0;
    for (size_t j = k; j < end; ++j) {
      if (IsPunct(toks[j], "{")) ++depth;
      if (IsPunct(toks[j], "}")) --depth;
      if (depth != 1) continue;
      if (toks[j].kind == TokenKind::kIdentifier &&
          IsMutexType(toks[j].text) && j + 2 < end &&
          IsIdentTok(toks[j + 1]) && IsPunct(toks[j + 2], ";")) {
        info.mutex_members.insert(toks[j + 1].text);
      }
    }
  }
}

void ProjectModel::ParseClassAnnotations(const SourceFile& file) {
  const Toks& toks = file.tokens->tokens;
  for (const auto& span : class_spans_[file.path]) {
    const std::string& cls = span.first;
    ClassInfo& info = classes_[cls];
    int depth = 0;
    for (size_t j = span.second.first; j < span.second.second; ++j) {
      if (IsPunct(toks[j], "{")) ++depth;
      if (IsPunct(toks[j], "}")) --depth;
      if (depth != 1) continue;
      if (toks[j].kind != TokenKind::kIdentifier) continue;
      const std::string& macro = toks[j].text;
      if (!IsAneciMacro(macro) || j + 1 >= toks.size() ||
          !IsPunct(toks[j + 1], "("))
        continue;
      const size_t past = SkipBalanced(toks, j + 1, "(", ")");
      if (past == toks.size()) continue;
      std::vector<std::string> ids;
      for (auto& arg : SplitArgs(toks, j + 1, past - 1))
        ids.push_back(CanonicalMutex(arg, cls, classes_, file.path, cls));

      if (macro == "ANECI_GUARDED_BY" || macro == "ANECI_PT_GUARDED_BY") {
        if (j > 0 && IsIdentTok(toks[j - 1]) && !ids.empty())
          info.guarded[toks[j - 1].text] = ids.front();
        continue;
      }
      const bool req = macro == "ANECI_REQUIRES";
      const bool acq = macro == "ANECI_ACQUIRE";
      const bool rel = macro == "ANECI_RELEASE";
      const bool exc = macro == "ANECI_EXCLUDES";
      if (!req && !acq && !rel && !exc) continue;

      // Walk back to the method name: over trailing specifiers and any
      // earlier annotation macros, then through the parameter list.
      size_t b = j;
      while (b > 0) {
        --b;
        const Token& t = toks[b];
        if (IsIdent(t, "const") || IsIdent(t, "override") ||
            IsIdent(t, "final") || IsIdent(t, "noexcept"))
          continue;
        if (!IsPunct(t, ")")) break;
        const size_t open = OpenBackward(toks, b);
        if (open == toks.size() || open == 0) break;
        const Token& before = toks[open - 1];
        if (IsIdent(before, "noexcept") || (IsIdentTok(before) &&
                                            IsAneciMacro(before.text))) {
          b = open - 1;  // skip `noexcept(...)` / a prior annotation
          continue;
        }
        // This ')' closes the parameter list; the name precedes its '('.
        if (IsIdentTok(before)) {
          std::string method = before.text;
          if (open >= 2 && IsPunct(toks[open - 2], "~")) method = "~" + method;
          auto& dest = req   ? info.requires_held
                       : acq ? info.acquires_on_return
                       : rel ? info.releases
                             : info.excludes;
          for (const std::string& id : ids) dest[method].push_back(id);
        }
        break;
      }
    }
  }
}

// --- Function discovery -----------------------------------------------------

void ProjectModel::ParseFunctions(const SourceFile& file) {
  const Toks& toks = file.tokens->tokens;
  const auto& spans = class_spans_[file.path];
  const size_t n = toks.size();

  for (size_t i = 0; i < n; ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    if (IsStatementKeyword(toks[i].text) || IsLockClass(toks[i].text) ||
        IsAneciMacro(toks[i].text))
      continue;
    if (i + 1 >= n || !IsPunct(toks[i + 1], "(")) continue;

    std::string name = toks[i].text;
    std::string qual_class;
    size_t start = i;
    if (i >= 1 && IsPunct(toks[i - 1], "~")) {
      name = "~" + name;
      start = i - 1;
    }
    if (start >= 2 && IsPunct(toks[start - 1], "::") &&
        IsIdentTok(toks[start - 2]))
      qual_class = toks[start - 2].text;

    size_t j = SkipBalanced(toks, i + 1, "(", ")");
    if (j >= n) continue;

    // Trailing specifiers and annotations between the parameter list and
    // the body (or the ctor initializer list).
    size_t k = j;
    while (k < n) {
      const Token& t = toks[k];
      if (IsIdent(t, "const") || IsIdent(t, "override") ||
          IsIdent(t, "final") || IsIdent(t, "mutable")) {
        ++k;
        continue;
      }
      if (IsIdent(t, "noexcept")) {
        ++k;
        if (k < n && IsPunct(toks[k], "(")) k = SkipBalanced(toks, k, "(", ")");
        continue;
      }
      if (IsIdentTok(t) && IsAneciMacro(t.text) && k + 1 < n &&
          IsPunct(toks[k + 1], "(")) {
        k = SkipBalanced(toks, k + 1, "(", ")");
        continue;
      }
      if (IsPunct(t, "->")) {  // trailing return type
        ++k;
        while (k < n && (IsIdentTok(toks[k]) || IsPunct(toks[k], "::") ||
                         IsPunct(toks[k], "&") || IsPunct(toks[k], "*")))
          ++k;
        if (k < n && IsPunct(toks[k], "<")) k = SkipBalanced(toks, k, "<", ">");
        continue;
      }
      break;
    }

    size_t body = n;
    if (k < n && IsPunct(toks[k], "{")) {
      body = k;
    } else if (k < n && IsPunct(toks[k], ":")) {
      // Constructor initializer list: `name(...), base{...}` entries until
      // the body brace.
      size_t m = k + 1;
      while (m < n) {
        size_t e = m;
        while (e < n && (IsIdentTok(toks[e]) || IsPunct(toks[e], "::"))) ++e;
        if (e < n && IsPunct(toks[e], "<")) e = SkipBalanced(toks, e, "<", ">");
        if (e >= n) break;
        if (IsPunct(toks[e], "("))
          e = SkipBalanced(toks, e, "(", ")");
        else if (IsPunct(toks[e], "{"))
          e = SkipBalanced(toks, e, "{", "}");
        else
          break;
        if (e < n && IsPunct(toks[e], ",")) {
          m = e + 1;
          continue;
        }
        if (e < n && IsPunct(toks[e], "{")) body = e;
        break;
      }
    }
    if (body >= n) continue;
    const size_t end = SkipBalanced(toks, body, "{", "}");

    std::string cls = qual_class;
    if (cls.empty()) {
      // Innermost class body lexically containing the definition.
      for (const auto& span : spans) {
        if (i > span.second.first && i < span.second.second) cls = span.first;
      }
    }

    FunctionInfo fn;
    fn.name = name;
    fn.class_name = cls;
    fn.file = file.path;
    fn.line = toks[i].line;
    fn.ctor_dtor = !cls.empty() && (name == cls || name == "~" + cls);
    AnalyzeBody(file, &fn, body, end);
    by_name_[fn.name].push_back(static_cast<int>(functions_.size()));
    functions_.push_back(std::move(fn));
    i = end - 1;  // a body is never itself a definition site
  }
}

// --- Per-function body analysis ---------------------------------------------

void ProjectModel::AnalyzeBody(const SourceFile& file, FunctionInfo* fn,
                               size_t body_begin, size_t body_end) {
  const Toks& toks = file.tokens->tokens;
  const std::string scope =
      fn->class_name.empty() ? fn->name : fn->class_name + "::" + fn->name;
  auto canon = [&](const std::vector<std::string>& expr) {
    return CanonicalMutex(expr, fn->class_name, classes_, fn->file, scope);
  };

  const ClassInfo* cls = nullptr;
  if (!fn->class_name.empty()) {
    auto it = classes_.find(fn->class_name);
    if (it != classes_.end()) cls = &it->second;
  }

  // Lambda-introducer scan: body braces of lambdas start with an empty
  // held-set (the body runs later, on some other thread or stack) unless
  // the lambda is a condition_variable wait predicate.
  std::set<size_t> lambda_braces;
  for (size_t i = body_begin; i < body_end; ++i) {
    if (!IsPunct(toks[i], "[")) continue;
    if (i > 0) {
      const Token& p = toks[i - 1];
      if (IsIdentTok(p) || p.kind == TokenKind::kNumber ||
          p.kind == TokenKind::kString || IsPunct(p, ")") || IsPunct(p, "]"))
        continue;  // subscript, not a lambda introducer
    }
    size_t j = SkipBalanced(toks, i, "[", "]");
    if (j < body_end && IsPunct(toks[j], "("))
      j = SkipBalanced(toks, j, "(", ")");
    while (j < body_end) {
      if (IsIdent(toks[j], "mutable") || IsIdent(toks[j], "constexpr")) {
        ++j;
        continue;
      }
      if (IsIdent(toks[j], "noexcept")) {
        ++j;
        if (j < body_end && IsPunct(toks[j], "("))
          j = SkipBalanced(toks, j, "(", ")");
        continue;
      }
      if (IsPunct(toks[j], "->")) {
        ++j;
        while (j < body_end &&
               (IsIdentTok(toks[j]) || IsPunct(toks[j], "::") ||
                IsPunct(toks[j], "&") || IsPunct(toks[j], "*")))
          ++j;
        if (j < body_end && IsPunct(toks[j], "<"))
          j = SkipBalanced(toks, j, "<", ">");
        continue;
      }
      break;
    }
    if (j < body_end && IsPunct(toks[j], "{")) lambda_braces.insert(j);
  }

  struct HeldLock {
    std::string id;
    int frame;
    std::string var;  // unique_lock variable, when there is one
  };
  struct Frame {
    bool lambda = false;
    bool inherited = false;  // cv-wait predicate: keeps the caller's locks
    std::vector<HeldLock> saved;
  };
  std::vector<HeldLock> held;
  std::vector<Frame> frames;
  std::vector<bool> paren_cv;          // open-paren stack: cv-wait call?
  std::map<std::string, std::string> lock_vars;  // unique_lock var -> mutex
  int detached_depth = 0;

  auto held_ids = [&] {
    std::vector<std::string> ids;
    for (const HeldLock& h : held)
      if (std::find(ids.begin(), ids.end(), h.id) == ids.end())
        ids.push_back(h.id);
    return ids;
  };
  auto holds = [&](const std::string& id) {
    for (const HeldLock& h : held)
      if (h.id == id) return true;
    return false;
  };
  auto acquire = [&](const std::string& id, int line, const std::string& var) {
    for (const std::string& h : held_ids())
      fn->edges.push_back({h, id, fn->file, line});
    held.push_back({id, static_cast<int>(frames.size()), var});
    if (detached_depth == 0) fn->acquires.insert(id);
    if (!var.empty()) lock_vars[var] = id;
  };
  auto release = [&](const std::string& id) {
    for (size_t h = held.size(); h-- > 0;) {
      if (held[h].id == id) {
        held.erase(held.begin() + static_cast<long>(h));
        return;
      }
    }
  };
  auto access_finding = [&](int line, const std::string& message) {
    access_findings_.push_back(
        {fn->file, line, "guarded-member-access", message});
  };

  // ANECI_REQUIRES / ANECI_RELEASE context: the caller holds these on
  // entry. Frame 0 entries survive until the walk ends.
  if (cls != nullptr) {
    for (const auto* map : {&cls->requires_held, &cls->releases}) {
      auto it = map->find(fn->name);
      if (it == map->end()) continue;
      for (const std::string& id : it->second)
        if (!holds(id)) held.push_back({id, 0, ""});
    }
  }

  for (size_t i = body_begin; i < body_end; ++i) {
    const Token& t = toks[i];

    if (IsPunct(t, "{")) {
      Frame f;
      if (lambda_braces.count(i)) {
        f.lambda = true;
        for (bool cv : paren_cv)
          if (cv) f.inherited = true;
        if (!f.inherited) {
          f.saved = held;
          held.clear();
          ++detached_depth;
        }
      }
      frames.push_back(std::move(f));
      continue;
    }
    if (IsPunct(t, "}")) {
      if (frames.empty()) continue;
      Frame f = std::move(frames.back());
      frames.pop_back();
      if (f.lambda && !f.inherited) {
        held = std::move(f.saved);
        --detached_depth;
      } else {
        const int depth = static_cast<int>(frames.size()) + 1;
        for (size_t h = held.size(); h-- > 0;)
          if (held[h].frame >= depth)
            held.erase(held.begin() + static_cast<long>(h));
      }
      continue;
    }
    if (IsPunct(t, "(")) {
      const bool cv_wait =
          i >= 2 && IsPunct(toks[i - 2], ".") &&
          (IsIdent(toks[i - 1], "wait") || IsIdent(toks[i - 1], "wait_for") ||
           IsIdent(toks[i - 1], "wait_until"));
      paren_cv.push_back(cv_wait);
      continue;
    }
    if (IsPunct(t, ")")) {
      if (!paren_cv.empty()) paren_cv.pop_back();
      continue;
    }
    if (t.kind != TokenKind::kIdentifier) continue;

    // RAII lock declarations: std::lock_guard<std::mutex> l(mu_);
    if (IsLockClass(t.text)) {
      size_t j = i + 1;
      if (j < body_end && IsPunct(toks[j], "<"))
        j = SkipBalanced(toks, j, "<", ">");
      if (j + 1 < body_end && IsIdentTok(toks[j]) &&
          (IsPunct(toks[j + 1], "(") || IsPunct(toks[j + 1], "{"))) {
        const std::string var = toks[j].text;
        const size_t past = IsPunct(toks[j + 1], "(")
                                ? SkipBalanced(toks, j + 1, "(", ")")
                                : SkipBalanced(toks, j + 1, "{", "}");
        if (past <= body_end) {
          auto args = SplitArgs(toks, j + 1, past - 1);
          bool defer = false, adopt = false;
          std::vector<std::vector<std::string>> mutexes;
          for (auto& a : args) {
            if (IsLockTag(a, "defer_lock"))
              defer = true;
            else if (IsLockTag(a, "adopt_lock"))
              adopt = true;
            else if (IsLockTag(a, "try_to_lock"))
              ;  // held on success; assume success (over-approximates)
            else
              mutexes.push_back(std::move(a));
          }
          const bool track_var =
              t.text == "unique_lock" || t.text == "shared_lock";
          for (auto& m : mutexes) {
            const std::string id = canon(m);
            if (defer) {
              if (track_var) lock_vars[var] = id;
            } else if (adopt && holds(id)) {
              if (track_var) lock_vars[var] = id;
            } else {
              acquire(id, t.line,
                      track_var && mutexes.size() == 1 ? var : std::string());
            }
          }
        }
      }
      continue;
    }

    // Explicit .lock()/.unlock() on a unique_lock variable or a mutex
    // member of the enclosing class.
    if ((t.text == "lock" || t.text == "unlock" || t.text == "try_lock") &&
        i >= 2 && IsPunct(toks[i - 1], ".") && IsIdentTok(toks[i - 2]) &&
        i + 1 < body_end && IsPunct(toks[i + 1], "(")) {
      const std::string recv = toks[i - 2].text;
      std::string id;
      if (lock_vars.count(recv)) {
        id = lock_vars[recv];
      } else if (cls != nullptr && cls->mutex_members.count(recv) &&
                 !(i >= 4 && (IsPunct(toks[i - 3], ".") ||
                              IsPunct(toks[i - 3], "->")) &&
                   !IsIdent(toks[i - 4], "this"))) {
        id = fn->class_name + "::" + recv;
      }
      if (!id.empty()) {
        if (t.text == "unlock")
          release(id);
        else if (!holds(id) || t.text == "lock")
          acquire(id, t.line, "");
      }
      continue;
    }

    // Banned-nondeterminism call sites (mirrors lint.cc's per-file check;
    // here they are taint SINKS, reported only when reachable from a
    // deterministic entry point).
    {
      const bool call_next =
          i + 1 < body_end && IsPunct(toks[i + 1], "(");
      auto file_ends_with = [&](const std::string& suffix) {
        return fn->file.size() >= suffix.size() &&
               fn->file.compare(fn->file.size() - suffix.size(),
                                suffix.size(), suffix) == 0;
      };
      const bool allow_file = file_ends_with("util/timer.h");
      // CPUID probes are machine-dependent rather than run-to-run
      // nondeterministic; they are a sink everywhere except the one audited
      // backend-selection point.
      const bool allow_cpuid = file_ends_with("linalg/kernels/dispatch.cc");
      if (!allow_file) {
        if (t.text == "random_device") {
          fn->banned.push_back({"std::random_device", t.line});
        } else if (call_next && !allow_cpuid &&
                   (t.text == "__builtin_cpu_supports" ||
                    t.text == "__builtin_cpu_is" ||
                    t.text == "__builtin_cpu_init" ||
                    t.text == "__get_cpuid" ||
                    t.text == "__get_cpuid_count" || t.text == "__cpuid" ||
                    t.text == "__cpuidex")) {
          fn->banned.push_back({"'" + t.text + "()'", t.line});
        } else if (call_next &&
                   (t.text == "rand" || t.text == "srand" ||
                    t.text == "rand_r" || t.text == "drand48" ||
                    t.text == "time" || t.text == "clock")) {
          fn->banned.push_back({"'" + t.text + "()'", t.line});
        } else if (t.text.size() > 6 &&
                   t.text.compare(t.text.size() - 6, 6, "_clock") == 0 &&
                   i + 2 < body_end && IsPunct(toks[i + 1], "::") &&
                   IsIdent(toks[i + 2], "now")) {
          fn->banned.push_back({"std::chrono::" + t.text + "::now()",
                                toks[i + 2].line});
        }
      }
    }

    // Determinism roots: registering det-class telemetry or entering the
    // parallel kernels.
    if (t.text == "kDeterministic" && !fn->det_root) {
      fn->det_root = true;
      fn->det_root_why = "registers MetricClass::kDeterministic telemetry";
    }

    // Guarded-member accesses (bare or this-> only, never via another
    // object; ctors/dtors exempt — the object is not shared yet).
    if (cls != nullptr && !fn->ctor_dtor && cls->guarded.count(t.text)) {
      bool self = true;
      if (i > 0) {
        const Token& p = toks[i - 1];
        if (IsPunct(p, "::") || IsPunct(p, "~")) self = false;
        if ((IsPunct(p, ".") || IsPunct(p, "->")) &&
            !(i >= 2 && IsIdent(toks[i - 2], "this")))
          self = false;
      }
      if (self) {
        const std::string& guard = cls->guarded.at(t.text);
        if (!holds(guard)) {
          access_finding(
              t.line, "member '" + t.text + "' of '" + fn->class_name +
                          "' is ANECI_GUARDED_BY '" + guard +
                          "' but is accessed without holding it in '" + scope +
                          "'; take a lock_guard on the mutex first");
        }
      }
    }

    // Call sites.
    if (i + 1 < body_end && IsPunct(toks[i + 1], "(") &&
        !IsStatementKeyword(t.text) && !IsAneciMacro(t.text)) {
      CallSite call;
      call.name = t.text;
      call.receiver_self = true;
      call.receiver_object = false;
      if (i > 0) {
        const Token& p = toks[i - 1];
        if (IsPunct(p, ".") || IsPunct(p, "->")) {
          call.receiver_self = i >= 2 && IsIdent(toks[i - 2], "this");
          call.receiver_object = !call.receiver_self;
        } else if (IsPunct(p, "::") && i >= 2 && IsIdentTok(toks[i - 2])) {
          call.receiver_self = toks[i - 2].text == fn->class_name;
          call.receiver_object = !call.receiver_self;
        }
      }
      call.sync = detached_depth == 0;
      call.held = held_ids();
      call.line = t.line;

      if (call.name == "ParallelFor" || call.name == "ParallelForChunks") {
        if (!fn->det_root) {
          fn->det_root = true;
          fn->det_root_why = "invokes the ParallelFor kernel entry point";
        }
      }

      // Annotated-call discipline against the enclosing class's methods.
      if (cls != nullptr && call.receiver_self && !fn->ctor_dtor) {
        auto req = cls->requires_held.find(call.name);
        if (req != cls->requires_held.end()) {
          for (const std::string& id : req->second) {
            if (!holds(id)) {
              access_finding(call.line,
                             "call to '" + fn->class_name + "::" + call.name +
                                 "' (ANECI_REQUIRES '" + id +
                                 "') without holding it in '" + scope + "'");
            }
          }
        }
        auto exc = cls->excludes.find(call.name);
        if (exc != cls->excludes.end()) {
          for (const std::string& id : exc->second) {
            if (holds(id)) {
              access_finding(call.line,
                             "call to '" + fn->class_name + "::" + call.name +
                                 "' (ANECI_EXCLUDES '" + id +
                                 "') while holding it in '" + scope +
                                 "'; a non-recursive mutex self-deadlocks");
            }
          }
        }
        auto acq = cls->acquires_on_return.find(call.name);
        if (acq != cls->acquires_on_return.end())
          for (const std::string& id : acq->second)
            if (!holds(id)) acquire(id, call.line, "");
        auto rel = cls->releases.find(call.name);
        if (rel != cls->releases.end())
          for (const std::string& id : rel->second) release(id);
      }

      fn->calls.push_back(std::move(call));
    }
  }

  // Kernel entry points are roots by definition, not only their callers.
  if ((fn->name == "ParallelFor" || fn->name == "ParallelForChunks") &&
      !fn->det_root) {
    fn->det_root = true;
    fn->det_root_why = "is the ParallelFor kernel entry point";
  }
}

// --- Construction & resolution ----------------------------------------------

ProjectModel::ProjectModel(const std::vector<SourceFile>& files) {
  for (const SourceFile& f : files) ParseClasses(f);
  for (const SourceFile& f : files) ParseClassAnnotations(f);
  for (const SourceFile& f : files) ParseFunctions(f);
  std::sort(access_findings_.begin(), access_findings_.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  access_findings_.erase(
      std::unique(access_findings_.begin(), access_findings_.end(),
                  [](const Finding& a, const Finding& b) {
                    return a.file == b.file && a.line == b.line &&
                           a.message == b.message;
                  }),
      access_findings_.end());
}

std::string ProjectModel::Qualified(const FunctionInfo& f) const {
  return f.class_name.empty() ? f.name : f.class_name + "::" + f.name;
}

/// Bare-name callee resolution, deliberately over-approximate (every
/// function with that name) but narrowed where the call shape allows:
/// self-calls prefer methods of the caller's own class; `x.name()` calls
/// never resolve to free functions.
std::vector<int> ProjectModel::ResolveCallees(const FunctionInfo& caller,
                                              const CallSite& call) const {
  auto it = by_name_.find(call.name);
  if (it == by_name_.end()) return {};
  const std::vector<int>& cand = it->second;
  if (call.receiver_self && !caller.class_name.empty()) {
    std::vector<int> same;
    for (int c : cand)
      if (functions_[static_cast<size_t>(c)].class_name == caller.class_name)
        same.push_back(c);
    if (!same.empty()) return same;
  }
  if (call.receiver_object) {
    std::vector<int> methods;
    for (int c : cand)
      if (!functions_[static_cast<size_t>(c)].class_name.empty())
        methods.push_back(c);
    return methods;
  }
  return cand;
}

std::vector<std::string> ProjectModel::function_names() const {
  std::vector<std::string> out;
  for (const FunctionInfo& f : functions_) out.push_back(Qualified(f));
  return out;
}

// --- Check: guarded-member-access -------------------------------------------

void ProjectModel::CheckGuardedMemberAccess(std::vector<Finding>* out) const {
  out->insert(out->end(), access_findings_.begin(), access_findings_.end());
}

// --- Check: lock-order-cycle ------------------------------------------------

/// The full deduplicated acquisition graph: direct nesting edges from every
/// body walk, plus call-site expansion through the "may acquire" closure —
/// holding H while calling something that (transitively, over synchronous
/// calls) acquires M is an H -> M edge even when the acquisition happens in
/// another file (the first witness per from/to pair is kept). A callee's
/// ANECI_REQUIRES context is NOT an acquisition, so `...Locked()` helpers
/// never produce edges.
void ProjectModel::BuildLockGraph(std::vector<Edge>* out_edges) const {
  std::map<std::pair<std::string, std::string>, Edge> edges;
  auto add_edge = [&](const Edge& e) { edges.emplace(std::make_pair(e.from, e.to), e); };
  for (const FunctionInfo& f : functions_)
    for (const Edge& e : f.edges) add_edge(e);

  std::vector<std::set<std::string>> trans(functions_.size());
  for (size_t i = 0; i < functions_.size(); ++i)
    trans[i] = functions_[i].acquires;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < functions_.size(); ++i) {
      for (const CallSite& c : functions_[i].calls) {
        if (!c.sync) continue;
        for (int callee : ResolveCallees(functions_[i], c))
          for (const std::string& m : trans[static_cast<size_t>(callee)])
            if (trans[i].insert(m).second) changed = true;
      }
    }
  }
  for (size_t i = 0; i < functions_.size(); ++i) {
    const FunctionInfo& f = functions_[i];
    for (const CallSite& c : f.calls) {
      if (c.held.empty()) continue;
      for (int callee : ResolveCallees(f, c))
        for (const std::string& m : trans[static_cast<size_t>(callee)])
          for (const std::string& h : c.held)
            add_edge({h, m, f.file, c.line});
    }
  }
  for (const auto& kv : edges) out_edges->push_back(kv.second);
}

void ProjectModel::CheckLockOrderCycle(std::vector<Finding>* out) const {
  std::vector<Edge> edge_list;
  BuildLockGraph(&edge_list);

  // Self-loops are recursive acquisitions; longer cycles are
  // lock-order inversions. Find one witness cycle per offending edge set
  // with a DFS over the deduplicated graph.
  std::map<std::string, std::vector<const Edge*>> adj;
  for (const Edge& e : edge_list) adj[e.from].push_back(&e);

  std::set<std::string> reported;
  for (const Edge& e : edge_list) {
    if (e.from == e.to) {
      if (reported.insert("self:" + e.from).second) {
        out->push_back(
            {e.file, e.line, "lock-order-cycle",
             "mutex '" + e.from +
                 "' is acquired while already held (recursive acquisition "
                 "of a non-recursive mutex self-deadlocks)"});
      }
    }
  }

  // DFS from each node; a back edge to a node on the current path is a
  // cycle. Each cycle is canonicalized (rotation starting at its smallest
  // node) so it is reported exactly once.
  std::vector<std::string> path;
  std::vector<const Edge*> path_edges;
  std::set<std::string> on_path;
  std::set<std::string> done;

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    on_path.insert(node);
    path.push_back(node);
    auto it = adj.find(node);
    if (it != adj.end()) {
      for (const Edge* e : it->second) {
        if (e->from == e->to) continue;  // self-loops reported above
        if (on_path.count(e->to)) {
          // Reconstruct the cycle from e->to forward.
          size_t start = 0;
          while (start < path.size() && path[start] != e->to) ++start;
          std::vector<std::string> cyc(path.begin() +
                                           static_cast<long>(start),
                                       path.end());
          std::vector<const Edge*> wits(
              path_edges.begin() + static_cast<long>(start),
              path_edges.end());
          wits.push_back(e);
          // Canonical rotation.
          size_t min_i = 0;
          for (size_t c = 1; c < cyc.size(); ++c)
            if (cyc[c] < cyc[min_i]) min_i = c;
          std::string key;
          for (size_t c = 0; c < cyc.size(); ++c)
            key += cyc[(min_i + c) % cyc.size()] + ";";
          if (reported.insert(key).second) {
            std::string msg = "potential deadlock: lock-order cycle ";
            for (size_t c = 0; c < cyc.size(); ++c) {
              msg += cyc[c] + " -> ";
              if (c + 1 < cyc.size())
                msg += "(" + wits[c]->file + ":" +
                       std::to_string(wits[c]->line) + ") ";
            }
            msg += cyc.front() + " (" + wits.back()->file + ":" +
                   std::to_string(wits.back()->line) +
                   "); acquire these mutexes in one global order";
            out->push_back({wits.front()->file, wits.front()->line,
                            "lock-order-cycle", msg});
          }
          continue;
        }
        if (done.count(e->to)) continue;
        path_edges.push_back(e);
        dfs(e->to);
        path_edges.pop_back();
      }
    }
    path.pop_back();
    on_path.erase(node);
    done.insert(node);
  };
  for (const auto& kv : adj)
    if (!done.count(kv.first)) dfs(kv.first);
}

std::vector<std::string> ProjectModel::lock_order_edges() const {
  std::vector<Edge> edge_list;
  BuildLockGraph(&edge_list);
  std::vector<std::string> out;
  for (const Edge& e : edge_list) out.push_back(e.from + " -> " + e.to);
  return out;
}

// --- Check: determinism-taint -----------------------------------------------

void ProjectModel::CheckDeterminismTaint(std::vector<Finding>* out) const {
  // Multi-source BFS from the deterministic entry points over the full
  // call graph (async edges included: work posted from a det path still
  // computes det-class results). Parent pointers give one witness chain.
  std::vector<int> parent(functions_.size(), -2);  // -2 unvisited, -1 root
  std::deque<int> queue;
  for (size_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i].det_root) {
      parent[i] = -1;
      queue.push_back(static_cast<int>(i));
    }
  }
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    const FunctionInfo& f = functions_[static_cast<size_t>(u)];
    for (const CallSite& c : f.calls) {
      for (int v : ResolveCallees(f, c)) {
        if (parent[static_cast<size_t>(v)] != -2) continue;
        parent[static_cast<size_t>(v)] = u;
        queue.push_back(v);
      }
    }
  }
  for (size_t i = 0; i < functions_.size(); ++i) {
    if (parent[i] == -2) continue;
    const FunctionInfo& f = functions_[i];
    if (f.banned.empty()) continue;
    // Reconstruct root -> ... -> f.
    std::vector<std::string> chain;
    int cur = static_cast<int>(i);
    std::string why;
    while (cur >= 0) {
      chain.push_back(Qualified(functions_[static_cast<size_t>(cur)]));
      if (parent[static_cast<size_t>(cur)] == -1)
        why = functions_[static_cast<size_t>(cur)].det_root_why;
      cur = parent[static_cast<size_t>(cur)];
    }
    std::reverse(chain.begin(), chain.end());
    std::string path;
    for (size_t c = 0; c < chain.size(); ++c) {
      if (c > 0) path += " -> ";
      path += chain[c];
    }
    for (const BannedSite& b : f.banned) {
      out->push_back(
          {f.file, b.line, "determinism-taint",
           b.what + " is reachable from deterministic entry point '" +
               chain.front() + "' (" + why + ") via " + path +
               "; determinism-contract code must use seeded RNG "
               "(util/rng.h) and the audited clock shims"});
    }
  }
}

}  // namespace aneci::lint

// aneci_lint core: a registry of named checks over tokenized C++ sources
// that enforce repo invariants the compiler cannot see (see
// docs/static_analysis.md for the rationale behind each check):
//
//   discarded-status          a call returning Status/StatusOr used as a bare
//                             expression statement
//   banned-nondeterminism     rand/srand/std::random_device/time()/
//                             std::chrono::*_clock::now in src/ outside the
//                             timer allowlist
//   banned-raw-io             fopen/std::ofstream/std::fstream/std::ifstream
//                             in src/ outside env.cc (file IO must route
//                             through Env — reads included, so the
//                             fault-injection Env covers every IO path);
//                             also raw socket syscalls (socket/accept/recv/
//                             send/...) outside the src/serve/socket_io.cc
//                             shim, free or ::-qualified calls only
//   no-iostream-in-library    std::cout/cerr/clog in src/
//   banned-adhoc-timing       util/timer.h or a raw Timer in src/ outside
//                             the observability layer (util/{timer,trace,
//                             metrics}); time with TraceSpan or
//                             ScopedLatencyTimer so durations are recorded
//   header-hygiene            headers must open with an include guard or
//                             #pragma once, and must not `using namespace`
//   nolint-reason             a NOLINT(<check>) suppression without a reason
//
// and the cross-TU concurrency-discipline suite (tools/lint/model.h),
// which consumes the ANECI_GUARDED_BY / ANECI_REQUIRES / ... annotations
// from src/util/thread_annotations.h:
//
//   guarded-member-access     an annotated member accessed without its
//                             mutex held; REQUIRES/EXCLUDES call discipline
//   lock-order-cycle          a cycle in the cross-file mutex acquisition
//                             graph (potential deadlock)
//   determinism-taint         the banned-nondeterminism set reachable from
//                             a deterministic entry point via the call
//                             graph
//
// Per-root policy: src/ gets every check; tools/, bench/ and tests/ get
// discarded-status + header-hygiene + nolint-reason only.
//
// Suppression: `// NOLINT(check-name): reason` on the offending line, or
// `// NOLINTNEXTLINE(check-name): reason` on the line above. The reason is
// mandatory; a bare NOLINT or one naming only foreign (clang-tidy style)
// checks is ignored by this tool. Suppressions are logical-line scoped:
// phase-2 line splices (trailing backslash) extend both the suppressed
// region and the line a NEXTLINE marker targets.
#ifndef ANECI_TOOLS_LINT_LINT_H_
#define ANECI_TOOLS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/tokenizer.h"

namespace aneci::lint {

struct Finding {
  std::string file;
  int line;
  std::string check;
  std::string message;

  /// The "file:line: check: message" form CI and terminals understand.
  std::string ToString() const;
};

struct CheckInfo {
  std::string name;
  std::string description;
};

/// All checks, in the order they are listed by `aneci_lint --list-checks`.
const std::vector<CheckInfo>& RegisteredChecks();

/// True if `name` names a registered check.
bool IsRegisteredCheck(const std::string& name);

struct LintOptions {
  /// When non-empty, only findings of this check are reported
  /// (nolint-reason findings are always kept: a malformed suppression can
  /// mask any check).
  std::string only_check;
};

/// Two-pass linter: AddFile() every source first (pass 1 collects the names
/// of functions declared to return Status/StatusOr across the whole tree),
/// then Run() reports findings (pass 2). Paths are repo-relative; checks
/// scope themselves by the top-level directory (src/, tools/, ...).
class Linter {
 public:
  void AddFile(const std::string& path, std::string_view content);
  std::vector<Finding> Run(const LintOptions& options = {}) const;

  /// Names collected by pass 1 (exposed for tests).
  const std::set<std::string>& status_functions() const {
    return status_functions_;
  }

 private:
  struct FileEntry {
    std::string path;
    TokenizedFile tokens;
    /// Names this file declares with a Status/StatusOr return type...
    std::set<std::string> local_status;
    /// ...and with any other return type. A cross-file match on a bare name
    /// is overridden when the calling file itself declares that name
    /// non-Status (e.g. two unrelated `Get` methods in different classes).
    std::set<std::string> local_non_status;
  };
  std::vector<FileEntry> files_;
  std::set<std::string> status_functions_;
};

/// One-shot convenience: lints a single file in isolation (the
/// status-function table is seeded from that file alone).
std::vector<Finding> LintContent(const std::string& path,
                                 std::string_view content,
                                 const LintOptions& options = {});

}  // namespace aneci::lint

#endif  // ANECI_TOOLS_LINT_LINT_H_

#!/usr/bin/env bash
# Regenerates the committed benchmark baselines in bench/baselines/.
#
#   tools/bench_snapshot.sh [build-dir]     (default: build)
#
# The baselines are pinned-seed runs of the two machine-profile benches:
#
#   BENCH_kernels.json         bench_kernels (google-benchmark over the
#                              dense/sparse kernels, the per-backend GEMM
#                              probe, and the metrics overhead probe) on the
#                              default (auto-selected) kernel backend
#   BENCH_kernels_scalar.json  the same sweep pinned to the portable scalar
#                              backend (ANECI_KERNEL_BACKEND=scalar), so the
#                              SIMD speedup is the ratio of the two files
#   BENCH_serve_load.json      bench_serve_load (loopback serving layer under
#                              mixed traffic with mid-run snapshot swaps)
#
# Workload shape (seeds, sizes, request mix) is pinned below so reruns
# measure the same work; the recorded times are of course machine- and
# load-dependent. The committed files are a reference profile for eyeballing
# regressions (`diff` the structure, compare the ratios), not a CI gate —
# timing assertions in CI would be flaky by construction, which is why the
# determinism contract gates on counters and goldens instead
# (docs/observability.md).
#
# Env knobs: ANECI_THREADS (default 4) pins the pool width so the thread
# dimension of the profile is stable across machines.
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
out="bench/baselines"

if [[ ! -d "${build}" ]]; then
  echo "bench_snapshot: build dir '${build}' not found;" \
    "run: cmake -B ${build} -S . && cmake --build ${build} -j" >&2
  exit 1
fi

cmake --build "${build}" -j "$(nproc)" --target bench_kernels bench_serve_load
mkdir -p "${out}"

# Pinned workload: fixed RNG seeds, fixed sizes, fixed thread width.
# --benchmark_min_time keeps the kernel sweep to a few seconds; the shape
# of the numbers (scaling ratios across sizes/threads) is what matters.
echo "== bench_kernels -> ${out}/BENCH_kernels.json =="
ANECI_THREADS="${ANECI_THREADS:-4}" "./${build}/bench/bench_kernels" \
  --outdir="${out}" --benchmark_min_time=0.05

echo "== bench_kernels (scalar) -> ${out}/BENCH_kernels_scalar.json =="
ANECI_KERNEL_BACKEND=scalar ANECI_THREADS="${ANECI_THREADS:-4}" \
  "./${build}/bench/bench_kernels" \
  --outdir="${out}" --outfile=BENCH_kernels_scalar.json \
  --benchmark_min_time=0.05

echo "== bench_serve_load -> ${out}/BENCH_serve_load.json =="
ANECI_THREADS="${ANECI_THREADS:-4}" "./${build}/bench/bench_serve_load" \
  --outdir="${out}" --seed=42 --clients=4 --requests=2000 --swaps=3 \
  --nodes=2000 --dim=32 --knn-every=16

echo "bench_snapshot: baselines written to ${out}/"

#include <gtest/gtest.h>

#include "analysis/defense_score.h"
#include "analysis/silhouette.h"
#include "analysis/tsne.h"
#include "attack/random_attack.h"
#include "util/rng.h"

namespace aneci {
namespace {

TEST(DefenseScoreTest, SeparatingEmbeddingScoresAboveOne) {
  // Two communities; real edges inside, fake edge across.
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  std::vector<Edge> fake = {{1, 2}};
  Graph attacked = g;
  attacked.AddEdge(1, 2);
  Matrix z = Matrix::FromRows({{1, 0}, {1, 0.05}, {0, 1}, {0.05, 1}});
  EXPECT_GT(DefenseScore(attacked, fake, z), 1.5);
}

TEST(DefenseScoreTest, OblividousEmbeddingScoresNearOne) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  std::vector<Edge> fake = {{1, 2}};
  Graph attacked = g;
  attacked.AddEdge(1, 2);
  // Embedding that treats all nodes the same.
  Rng rng(1);
  Matrix z(4, 3, 1.0);
  EXPECT_NEAR(DefenseScore(attacked, fake, z), 1.0, 0.1);
}

TEST(DefenseScoreTest, NoFakeEdgesGivesOne) {
  Graph g = Graph::FromEdges(3, {{0, 1}});
  Matrix z(3, 2, 1.0);
  EXPECT_DOUBLE_EQ(DefenseScore(g, {}, z), 1.0);
}

TEST(DefenseScoreTest, IntegratesWithRandomAttack) {
  // End-to-end: attack a graph, score with an embedding built from labels.
  std::vector<Edge> edges;
  for (int i = 0; i < 20; ++i)
    for (int j = i + 1; j < 20; ++j)
      if ((i < 10) == (j < 10)) edges.push_back({i, j});
  Graph g = Graph::FromEdges(20, edges);
  Rng rng(2);
  RandomAttackResult res = RandomAttack(g, 0.2, rng);
  Matrix z(20, 2);
  for (int i = 0; i < 20; ++i) z(i, i < 10 ? 0 : 1) = 1.0;
  // Fake edges mostly bridge the two blocks => high defense score.
  EXPECT_GT(DefenseScore(res.attacked, res.fake_edges, z), 1.0);
}

TEST(SilhouetteTest, WellSeparatedClustersNearOne) {
  Matrix pts = Matrix::FromRows(
      {{0, 0}, {0.1, 0}, {0, 0.1}, {10, 10}, {10.1, 10}, {10, 10.1}});
  std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  EXPECT_GT(MeanSilhouette(pts, labels), 0.9);
}

TEST(SilhouetteTest, RandomLabelsNearZeroOrNegative) {
  Rng rng(3);
  Matrix pts = Matrix::RandomNormal(40, 2, 1.0, rng);
  std::vector<int> labels(40);
  for (int i = 0; i < 40; ++i) labels[i] = static_cast<int>(rng.NextInt(2));
  EXPECT_LT(MeanSilhouette(pts, labels), 0.25);
}

TEST(SilhouetteTest, SwappedLabelsScoreNegative) {
  Matrix pts = Matrix::FromRows({{0, 0}, {0.1, 0}, {10, 10}, {10.1, 10}});
  std::vector<int> bad = {0, 1, 0, 1};  // Crosses the true clusters.
  EXPECT_LT(MeanSilhouette(pts, bad), 0.0);
}

TEST(TsneTest, OutputShapeAndFiniteness) {
  Rng rng(4);
  Matrix pts = Matrix::RandomNormal(60, 8, 1.0, rng);
  TsneOptions opt;
  opt.iterations = 60;
  Matrix y = Tsne(pts, opt, rng);
  EXPECT_EQ(y.rows(), 60);
  EXPECT_EQ(y.cols(), 2);
  for (int64_t i = 0; i < y.size(); ++i)
    ASSERT_TRUE(std::isfinite(y.data()[i]));
}

TEST(TsneTest, PreservesClusterSeparation) {
  // Two far-apart blobs in 10-D must stay separated in 2-D.
  Rng rng(5);
  const int per = 25;
  Matrix pts(2 * per, 10);
  std::vector<int> labels(2 * per);
  for (int i = 0; i < 2 * per; ++i) {
    const int c = i < per ? 0 : 1;
    labels[i] = c;
    for (int d = 0; d < 10; ++d)
      pts(i, d) = (c ? 20.0 : 0.0) + rng.NextGaussian();
  }
  TsneOptions opt;
  opt.iterations = 150;
  opt.perplexity = 10.0;
  Matrix y = Tsne(pts, opt, rng);
  EXPECT_GT(MeanSilhouette(y, labels), 0.5);
}

}  // namespace
}  // namespace aneci

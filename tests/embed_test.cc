#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/sbm.h"
#include "embed/embedder.h"
#include "embed/gat.h"
#include "embed/gcn_classifier.h"
#include "tasks/metrics.h"
#include "tasks/node_classification.h"
#include "util/rng.h"

namespace aneci {
namespace {

// One tiny dataset shared by all embedder smoke tests.
const Dataset& TestDataset() {
  static const Dataset* ds = [] {
    auto* d = new Dataset();
    SbmOptions opt;
    opt.num_nodes = 160;
    opt.num_classes = 3;
    opt.num_edges = 640;
    opt.intra_fraction = 0.9;
    opt.attribute_dim = 32;
    opt.words_per_node = 6;
    opt.topic_words_per_class = 10;
    Rng rng(99);
    d->name = "toy";
    d->graph = GenerateSbm(opt, rng);
    MakePlanetoidSplit(d->graph, 10, 40, 60, rng, d);
    return d;
  }();
  return *ds;
}

class EmbedderSmoke : public testing::TestWithParam<std::string> {};

TEST_P(EmbedderSmoke, ProducesUsefulEmbedding) {
  auto embedder = CreateEmbedder(GetParam());
  ASSERT_TRUE(embedder.ok()) << embedder.status().ToString();
  Rng rng(7);
  const Dataset& ds = TestDataset();
  EmbedOptions eo;
  eo.rng = &rng;
  eo.dim = 16;
  eo.epochs = 30;
  Matrix z = embedder.value()->Embed(ds.graph, eo);
  EXPECT_EQ(z.rows(), ds.graph.num_nodes());
  EXPECT_GE(z.cols(), 2);
  for (int64_t i = 0; i < z.size(); ++i)
    ASSERT_TRUE(std::isfinite(z.data()[i])) << GetParam();
  // Better than chance (1/3) on the planted classes.
  Rng eval_rng(8);
  ClassificationResult res = EvaluateEmbedding(z, ds, eval_rng);
  EXPECT_GT(res.accuracy, 0.40) << GetParam() << " acc=" << res.accuracy;
}

INSTANTIATE_TEST_SUITE_P(AllEmbedders, EmbedderSmoke,
                         testing::ValuesIn(EmbedderNames()));

TEST(EmbedderRegistry, RejectsUnknownName) {
  EXPECT_EQ(CreateEmbedder("word2vec").status().code(), StatusCode::kNotFound);
}

TEST(EmbedderRegistry, DimAtMostOneKeepsMethodDefault) {
  // dim <= 1 is "no override" under the EmbedOptions contract, so the method
  // falls back to its configured default width instead of rejecting.
  auto embedder = CreateEmbedder("GAE");
  ASSERT_TRUE(embedder.ok());
  Rng rng(3);
  EmbedOptions eo;
  eo.rng = &rng;
  eo.dim = 1;
  eo.epochs = 2;
  Matrix z = embedder.value()->Embed(TestDataset().graph, eo);
  EXPECT_GT(z.cols(), 1);
}

TEST(EmbedderRegistry, NamesRoundTrip) {
  for (const std::string& name : EmbedderNames()) {
    auto e = CreateEmbedder(name);
    ASSERT_TRUE(e.ok()) << name;
    EXPECT_EQ(e.value()->name(), name);
  }
}

TEST(AnomalyScorers, NativeScorersReturnPerNodeScores) {
  const Dataset& ds = TestDataset();
  for (const std::string& name : {"Dominant", "DONE", "ADONE", "AnomalyDAE"}) {
    auto embedder = CreateEmbedder(name);
    ASSERT_TRUE(embedder.ok());
    auto* scorer = dynamic_cast<AnomalyScorer*>(embedder.value().get());
    ASSERT_NE(scorer, nullptr) << name;
    Rng rng(9);
    EmbedOptions eo;
    eo.rng = &rng;
    eo.dim = 16;
    eo.epochs = 20;
    std::vector<double> scores = scorer->ScoreAnomalies(ds.graph, eo);
    EXPECT_EQ(scores.size(), static_cast<size_t>(ds.graph.num_nodes()));
    for (double s : scores) EXPECT_TRUE(std::isfinite(s));
  }
}

TEST(GatClassifierTest, BeatsChanceOnPlantedClasses) {
  const Dataset& ds = TestDataset();
  GatClassifier::Options opt;
  opt.epochs = 60;
  GatClassifier model(opt);
  Rng rng(13);
  model.Fit(ds, rng);
  EXPECT_GT(model.Accuracy(ds, ds.test_idx), 0.5);
}

TEST(GcnClassifier, BeatsChanceOnPlantedClasses) {
  const Dataset& ds = TestDataset();
  GcnClassifier::Options opt;
  opt.epochs = 80;
  GcnClassifier model(opt);
  Rng rng(11);
  model.Fit(ds, rng);
  EXPECT_GT(model.Accuracy(ds, ds.test_idx), 0.55);
}

TEST(GcnClassifier, RobustVariantTrains) {
  const Dataset& ds = TestDataset();
  GcnClassifier::Options opt;
  opt.epochs = 80;
  opt.robust = true;
  GcnClassifier model(opt);
  Rng rng(12);
  model.Fit(ds, rng);
  EXPECT_GT(model.Accuracy(ds, ds.test_idx), 0.45);
}

}  // namespace
}  // namespace aneci

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace aneci {
namespace {

Matrix Naive(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < b.cols(); ++j)
      for (int k = 0; k < a.cols(); ++k) c(i, j) += a(i, k) * b(k, j);
  return c;
}

void ExpectNear(const Matrix& a, const Matrix& b, double tol = 1e-10) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < a.cols(); ++j)
      EXPECT_NEAR(a(i, j), b(i, j), tol) << "at (" << i << "," << j << ")";
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(3, 4, 2.5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  EXPECT_DOUBLE_EQ(m(2, 3), 2.5);
  m(1, 2) = -7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), -7.0);
}

TEST(Matrix, FromRowsAndIdentity) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_DOUBLE_EQ(m(2, 1), 6);
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
}

TEST(Matrix, ArithmeticInPlace) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  a += b;
  EXPECT_DOUBLE_EQ(a(1, 1), 44);
  a -= b;
  EXPECT_DOUBLE_EQ(a(1, 1), 4);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 2);
  a.Axpy(0.5, b);
  EXPECT_DOUBLE_EQ(a(0, 1), 4 + 10);
}

TEST(Matrix, HadamardAndApply) {
  Matrix a = Matrix::FromRows({{1, -2}, {3, -4}});
  Matrix b = Matrix::FromRows({{2, 2}, {2, 2}});
  Matrix h = Hadamard(a, b);
  EXPECT_DOUBLE_EQ(h(0, 1), -4);
  a.Apply([](double v) { return std::abs(v); });
  EXPECT_DOUBLE_EQ(a(1, 1), 4);
}

class MatMulSizes : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulSizes, MatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  Matrix a = Matrix::RandomNormal(m, k, 1.0, rng);
  Matrix b = Matrix::RandomNormal(k, n, 1.0, rng);
  ExpectNear(MatMul(a, b), Naive(a, b));
  ExpectNear(MatMulTransA(Transpose(a), b), Naive(a, b));
  ExpectNear(MatMulTransB(a, Transpose(b)), Naive(a, b));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulSizes,
                         testing::Values(std::make_tuple(1, 1, 1),
                                         std::make_tuple(2, 3, 4),
                                         std::make_tuple(5, 1, 7),
                                         std::make_tuple(8, 8, 8),
                                         std::make_tuple(13, 7, 3),
                                         std::make_tuple(1, 16, 1)));

TEST(Matrix, TransposeInvolution) {
  Rng rng(3);
  Matrix a = Matrix::RandomNormal(4, 7, 1.0, rng);
  ExpectNear(Transpose(Transpose(a)), a);
}

TEST(Matrix, RowSoftmaxRowsSumToOne) {
  Rng rng(5);
  Matrix a = Matrix::RandomNormal(10, 6, 3.0, rng);
  Matrix s = RowSoftmax(a);
  for (int i = 0; i < s.rows(); ++i) {
    double sum = 0.0;
    for (int j = 0; j < s.cols(); ++j) {
      EXPECT_GT(s(i, j), 0.0);
      sum += s(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Matrix, RowSoftmaxStableWithLargeValues) {
  Matrix a = Matrix::FromRows({{1000.0, 1001.0}});
  Matrix s = RowSoftmax(a);
  EXPECT_NEAR(s(0, 0) + s(0, 1), 1.0, 1e-12);
  EXPECT_GT(s(0, 1), s(0, 0));
  EXPECT_FALSE(std::isnan(s(0, 0)));
}

TEST(Matrix, RowNormalizeL1) {
  Matrix a = Matrix::FromRows({{1, 3}, {0, 0}, {-2, 2}});
  Matrix n = RowNormalizeL1(a);
  EXPECT_DOUBLE_EQ(n(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(n(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(n(1, 0), 0.0);  // Zero row untouched.
  EXPECT_DOUBLE_EQ(std::abs(n(2, 0)) + std::abs(n(2, 1)), 1.0);
}

TEST(Matrix, RowNormalizeL2) {
  Matrix a = Matrix::FromRows({{3, 4}, {0, 0}});
  Matrix n = RowNormalizeL2(a);
  EXPECT_NEAR(n(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(n(0, 1), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(n(1, 0), 0.0);
}

TEST(Matrix, SelectRows) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Matrix s = a.SelectRows({2, 0});
  EXPECT_EQ(s.rows(), 2);
  EXPECT_DOUBLE_EQ(s(0, 0), 5);
  EXPECT_DOUBLE_EQ(s(1, 1), 2);
}

TEST(Matrix, Reductions) {
  Matrix a = Matrix::FromRows({{1, -2}, {3, 4}});
  EXPECT_DOUBLE_EQ(a.Sum(), 6);
  EXPECT_DOUBLE_EQ(a.Max(), 4);
  EXPECT_DOUBLE_EQ(a.Min(), -2);
  EXPECT_NEAR(a.FrobeniusNorm(), std::sqrt(1 + 4 + 9 + 16), 1e-12);
  auto rs = RowSums(a);
  EXPECT_DOUBLE_EQ(rs[0], -1);
  EXPECT_DOUBLE_EQ(rs[1], 7);
  auto cm = ColMeans(a);
  EXPECT_DOUBLE_EQ(cm[0], 2);
  EXPECT_DOUBLE_EQ(cm[1], 1);
}

TEST(Matrix, GlorotUniformWithinLimit) {
  Rng rng(21);
  Matrix w = Matrix::GlorotUniform(30, 50, rng);
  const double limit = std::sqrt(6.0 / 80.0);
  EXPECT_LE(w.Max(), limit);
  EXPECT_GE(w.Min(), -limit);
  // Not all-zero and roughly centred.
  EXPECT_GT(w.FrobeniusNorm(), 0.0);
  EXPECT_NEAR(w.Sum() / w.size(), 0.0, limit / 10.0);
}

TEST(Matrix, GlorotUniformOrientationAndLimitRegression) {
  // Regression pin: GlorotUniform(fan_in, fan_out) returns a
  // (fan_in rows x fan_out cols) matrix — the orientation every call site
  // assumes when computing X * W with X (n x fan_in) — with entries in
  // (-L, L), L = sqrt(6 / (fan_in + fan_out)).
  Rng rng(99);
  const int fan_in = 37, fan_out = 120;
  Matrix w = Matrix::GlorotUniform(fan_in, fan_out, rng);
  EXPECT_EQ(w.rows(), fan_in);
  EXPECT_EQ(w.cols(), fan_out);
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  EXPECT_LT(w.Max(), limit);
  EXPECT_GT(w.Min(), -limit);
  // With 4440 samples the extremes should approach the limit; this fails if
  // the limit formula drifts (e.g. sqrt(6/fan_in) or swapped arguments
  // changing the sample count).
  EXPECT_GT(w.Max(), 0.9 * limit);
  EXPECT_LT(w.Min(), -0.9 * limit);
  // Asymmetric fan-in/out: swapping the arguments must swap the shape.
  Matrix wt = Matrix::GlorotUniform(fan_out, fan_in, rng);
  EXPECT_EQ(wt.rows(), fan_out);
  EXPECT_EQ(wt.cols(), fan_in);
}

TEST(Matrix, CosineSimilarity) {
  std::vector<double> a = {1, 0}, b = {0, 1}, c = {2, 0};
  EXPECT_NEAR(CosineSimilarity(a.data(), b.data(), 2), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity(a.data(), c.data(), 2), 1.0, 1e-12);
  std::vector<double> zero = {0, 0};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a.data(), zero.data(), 2), 0.0);
}

TEST(Matrix, DotChecksSizes) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32);
}

}  // namespace
}  // namespace aneci

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/proximity.h"

namespace aneci {
namespace {

// Path graph 0-1-2-3.
Graph Path4() { return Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}); }

TEST(Proximity, OrderOneIsRowNormalizedSelfLoopedAdjacency) {
  Graph g = Path4();
  ProximityOptions opt;
  opt.order = 1;
  SparseMatrix prox = HighOrderProximity(g, opt);
  SparseMatrix expected = g.Adjacency(true).RowNormalizedL1();
  ASSERT_EQ(prox.nnz(), expected.nnz());
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_NEAR(prox.At(i, j), expected.At(i, j), 1e-12);
}

TEST(Proximity, RowsSumToOne) {
  Graph g = Path4();
  for (int order = 1; order <= 4; ++order) {
    ProximityOptions opt;
    opt.order = order;
    SparseMatrix prox = HighOrderProximity(g, opt);
    for (double s : prox.RowSumsVec()) EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(Proximity, SecondOrderReachesTwoHopNeighbours) {
  Graph g = Path4();
  ProximityOptions o1, o2;
  o1.order = 1;
  o2.order = 2;
  SparseMatrix p1 = HighOrderProximity(g, o1);
  SparseMatrix p2 = HighOrderProximity(g, o2);
  // Nodes 0 and 2 are two hops apart: invisible at order 1, visible at 2.
  EXPECT_DOUBLE_EQ(p1.At(0, 2), 0.0);
  EXPECT_GT(p2.At(0, 2), 0.0);
  // Order 2 still gives the direct neighbour more mass than the 2-hop one.
  EXPECT_GT(p2.At(0, 1), p2.At(0, 2));
}

TEST(Proximity, WeightsRescaleOrders) {
  Graph g = Path4();
  ProximityOptions heavy_first;
  heavy_first.order = 2;
  heavy_first.weights = {10.0, 0.1};
  ProximityOptions heavy_second;
  heavy_second.order = 2;
  heavy_second.weights = {0.1, 10.0};
  const double near_ratio_a =
      HighOrderProximity(g, heavy_first).At(0, 2) /
      HighOrderProximity(g, heavy_first).At(0, 1);
  const double near_ratio_b =
      HighOrderProximity(g, heavy_second).At(0, 2) /
      HighOrderProximity(g, heavy_second).At(0, 1);
  // Emphasising A^2 shifts relative mass toward the 2-hop neighbour.
  EXPECT_GT(near_ratio_b, near_ratio_a);
}

TEST(Proximity, WithoutSelfLoops) {
  Graph g = Path4();
  ProximityOptions opt;
  opt.order = 1;
  opt.add_self_loops = false;
  SparseMatrix prox = HighOrderProximity(g, opt);
  EXPECT_DOUBLE_EQ(prox.At(0, 0), 0.0);
  EXPECT_NEAR(prox.At(0, 1), 1.0, 1e-12);  // Only neighbour.
}

TEST(Proximity, FromExplicitAdjacencyMatchesGraphPath) {
  Graph g = Path4();
  ProximityOptions opt;
  opt.order = 3;
  SparseMatrix via_graph = HighOrderProximity(g, opt);
  SparseMatrix via_adj =
      HighOrderProximityFromAdjacency(g.Adjacency(true), opt);
  ASSERT_EQ(via_graph.nnz(), via_adj.nnz());
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_NEAR(via_graph.At(i, j), via_adj.At(i, j), 1e-12);
}

TEST(Proximity, IsolatedNodeKeepsSelfMassOnly) {
  Graph g = Graph::FromEdges(3, {{0, 1}});
  ProximityOptions opt;
  opt.order = 2;
  SparseMatrix prox = HighOrderProximity(g, opt);
  EXPECT_NEAR(prox.At(2, 2), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(prox.At(2, 0), 0.0);
}

TEST(Proximity, HigherOrderSpreadsMass) {
  // On a larger cycle, higher order increases the number of reachable
  // (nonzero) pairs monotonically.
  std::vector<Edge> edges;
  const int n = 20;
  for (int i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n});
  Graph g = Graph::FromEdges(n, edges);
  int64_t prev = 0;
  for (int order = 1; order <= 5; ++order) {
    ProximityOptions opt;
    opt.order = order;
    const int64_t nnz = HighOrderProximity(g, opt).nnz();
    EXPECT_GT(nnz, prev);
    prev = nnz;
  }
}

}  // namespace
}  // namespace aneci

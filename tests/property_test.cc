// Property-based sweeps over randomised inputs: invariants that must hold
// for any graph / matrix / membership produced by the library.
#include <gtest/gtest.h>

#include <cmath>

#include "core/losses.h"
#include "data/sbm.h"
#include "graph/modularity.h"
#include "graph/proximity.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "util/rng.h"

namespace aneci {
namespace {

Graph RandomGraph(int n, int m, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (int i = 0; i < m; ++i) {
    const int u = static_cast<int>(rng.NextInt(n));
    const int v = static_cast<int>(rng.NextInt(n));
    if (u != v) edges.push_back({u, v});
  }
  return Graph::FromEdges(n, edges);
}

class GraphSweep : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GraphSweep, AdjacencyIsSymmetricZeroDiagonal) {
  auto [n, m] = GetParam();
  Graph g = RandomGraph(n, m, n * 31 + m);
  SparseMatrix a = g.Adjacency(false);
  for (const Triplet& t : a.ToTriplets()) {
    EXPECT_NE(t.row, t.col);
    EXPECT_DOUBLE_EQ(a.At(t.col, t.row), t.value);
    EXPECT_DOUBLE_EQ(t.value, 1.0);
  }
}

TEST_P(GraphSweep, NormalizedAdjacencySpectralBound) {
  // Rows of D^{-1/2}(A+I)D^{-1/2} have values in (0, 1].
  auto [n, m] = GetParam();
  Graph g = RandomGraph(n, m, n * 37 + m);
  SparseMatrix s = g.NormalizedAdjacency();
  for (double v : s.values()) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST_P(GraphSweep, ProximityRowsAreDistributions) {
  auto [n, m] = GetParam();
  Graph g = RandomGraph(n, m, n * 41 + m);
  for (int order : {1, 2, 3}) {
    ProximityOptions opt;
    opt.order = order;
    SparseMatrix prox = HighOrderProximity(g, opt);
    for (double v : prox.values()) {
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
    for (double s : prox.RowSumsVec()) EXPECT_NEAR(s, 1.0, 1e-9);
  }
}

TEST_P(GraphSweep, ModularityBounded) {
  // Q in [-1, 1] for any labeling.
  auto [n, m] = GetParam();
  Graph g = RandomGraph(n, m, n * 43 + m);
  Rng rng(n + m);
  for (int k : {1, 2, 5}) {
    std::vector<int> labels(n);
    for (int i = 0; i < n; ++i) labels[i] = static_cast<int>(rng.NextInt(k));
    const double q = Modularity(g, labels);
    EXPECT_GE(q, -1.0);
    EXPECT_LE(q, 1.0);
  }
}

TEST_P(GraphSweep, GeneralizedModularityOfUniformMembershipIsZero) {
  auto [n, m] = GetParam();
  Graph g = RandomGraph(n, m, n * 47 + m);
  ProximityOptions opt;
  opt.order = 2;
  SparseMatrix prox = HighOrderProximity(g, opt);
  for (int k : {2, 4}) {
    Matrix p(n, k, 1.0 / k);
    EXPECT_NEAR(GeneralizedModularity(prox, p), 0.0, 1e-9);
  }
}

TEST_P(GraphSweep, RigidityWithinBounds) {
  auto [n, m] = GetParam();
  Rng rng(n * 53 + m);
  for (int k : {2, 3, 8}) {
    Matrix p = RowSoftmax(Matrix::RandomNormal(n, k, 1.0, rng));
    const double r = Rigidity(p);
    EXPECT_GE(r, 1.0 / k - 1e-9);
    EXPECT_LE(r, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GraphSweep,
                         testing::Values(std::make_tuple(10, 15),
                                         std::make_tuple(30, 60),
                                         std::make_tuple(50, 200),
                                         std::make_tuple(80, 80),
                                         std::make_tuple(120, 600)));

class SbmSweep : public testing::TestWithParam<double> {};

TEST_P(SbmSweep, HomophilyTracksTarget) {
  SbmOptions opt;
  opt.num_nodes = 500;
  opt.num_classes = 4;
  opt.num_edges = 2500;
  opt.intra_fraction = GetParam();
  Rng rng(static_cast<uint64_t>(GetParam() * 1000) + 3);
  Graph g = GenerateSbm(opt, rng);
  int intra = 0;
  for (const Edge& e : g.edges())
    if (g.labels()[e.u] == g.labels()[e.v]) ++intra;
  EXPECT_NEAR(static_cast<double>(intra) / g.num_edges(), GetParam(), 0.07);
}

INSTANTIATE_TEST_SUITE_P(Homophily, SbmSweep,
                         testing::Values(0.3, 0.5, 0.7, 0.9));

class SoftmaxSweep : public testing::TestWithParam<int> {};

TEST_P(SoftmaxSweep, SoftmaxIsShiftInvariant) {
  Rng rng(GetParam());
  Matrix a = Matrix::RandomNormal(6, GetParam(), 2.0, rng);
  Matrix shifted = a;
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) shifted(r, c) += 123.456;
  Matrix sa = RowSoftmax(a);
  Matrix sb = RowSoftmax(shifted);
  for (int64_t i = 0; i < sa.size(); ++i)
    EXPECT_NEAR(sa.data()[i], sb.data()[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Dims, SoftmaxSweep, testing::Values(2, 3, 7, 16));

TEST(SampledPairsProperty, TargetsMatchProximityEntries) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    Graph g = RandomGraph(40, 120, seed);
    ProximityOptions opt;
    opt.order = 2;
    SparseMatrix prox = HighOrderProximity(g, opt);
    Rng rng(seed);
    auto pairs = SampleReconstructionPairs(prox, 2, rng);
    for (const auto& pt : pairs)
      EXPECT_DOUBLE_EQ(pt.target, prox.At(pt.u, pt.v));
  }
}

TEST(SparseProperty, TransposeOfTransposeIsIdentity) {
  for (uint64_t seed : {11ull, 22ull, 33ull}) {
    Rng rng(seed);
    std::vector<Triplet> trips;
    for (int r = 0; r < 20; ++r)
      for (int c = 0; c < 25; ++c)
        if (rng.NextBool(0.2)) trips.push_back({r, c, rng.Uniform(-3, 3)});
    SparseMatrix a = SparseMatrix::FromTriplets(20, 25, trips);
    SparseMatrix b = a.Transposed().Transposed();
    ASSERT_EQ(a.nnz(), b.nnz());
    for (const Triplet& t : a.ToTriplets())
      EXPECT_DOUBLE_EQ(b.At(t.row, t.col), t.value);
  }
}

TEST(SparseProperty, SpGemmAssociativity) {
  Rng rng(7);
  auto random_sparse = [&](int r, int c) {
    std::vector<Triplet> trips;
    for (int i = 0; i < r; ++i)
      for (int j = 0; j < c; ++j)
        if (rng.NextBool(0.3)) trips.push_back({i, j, rng.Uniform(-1, 1)});
    return SparseMatrix::FromTriplets(r, c, trips);
  };
  SparseMatrix a = random_sparse(8, 10), b = random_sparse(10, 6),
               c = random_sparse(6, 9);
  Matrix left = a.MultiplySparse(b).MultiplySparse(c).ToDense();
  Matrix right = a.MultiplySparse(b.MultiplySparse(c)).ToDense();
  for (int64_t i = 0; i < left.size(); ++i)
    EXPECT_NEAR(left.data()[i], right.data()[i], 1e-9);
}

}  // namespace
}  // namespace aneci

// The checkpoint container format and its integrity guarantees: CRC-32
// vectors, byte-exact roundtrips, rejection of truncated / bit-flipped /
// mislabelled files, the .bin/.bak rotation fallback, and atomicity of
// writes under injected I/O faults.
#include "util/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "util/env.h"

namespace aneci {
namespace {

std::string TestDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  EXPECT_TRUE(Env::Default()->CreateDir(dir).ok());
  return dir;
}

TrainingCheckpoint MakeCheckpoint(int next_epoch) {
  TrainingCheckpoint c;
  c.config_fingerprint = 0xdeadbeefcafef00dULL;
  c.next_epoch = next_epoch;
  c.adam_step = next_epoch;
  c.lr = 0.01;
  c.best_mod_loss = -0.375;
  c.since_best = 2;
  c.watchdog_rollbacks = 1;
  c.watchdog_best_abs_loss = 17.25;
  for (int i = 0; i < 4; ++i) c.rng_state[i] = 0x1111111111111111ULL * (i + 1);
  c.rng_has_gauss = 1;
  c.rng_gauss = -0.5;
  TensorBlob w;
  w.rows = 2;
  w.cols = 3;
  w.data = {1.0, -2.0, 0.25, 1e-300, -0.0, 3.5};
  c.params = {w, w};
  c.opt_m = {w, w};
  c.opt_v = {w, w};
  c.pairs = {{0, 1, 0.75}, {3, 2, 0.0}};
  c.history = {{0, 1.5, -0.1, 0.9}, {1, 1.25, -0.05, 0.8}};
  for (int i = 0; i < 4; ++i)
    c.adv_rng_state[i] = 0x2222222222222222ULL * (i + 1);
  c.adv_rng_has_gauss = 1;
  c.adv_rng_gauss = 2.75;
  return c;
}

void ExpectCheckpointsEqual(const TrainingCheckpoint& a,
                            const TrainingCheckpoint& b) {
  EXPECT_EQ(a.config_fingerprint, b.config_fingerprint);
  EXPECT_EQ(a.next_epoch, b.next_epoch);
  EXPECT_EQ(a.adam_step, b.adam_step);
  EXPECT_EQ(a.since_best, b.since_best);
  EXPECT_EQ(a.watchdog_rollbacks, b.watchdog_rollbacks);
  EXPECT_EQ(a.rng_has_gauss, b.rng_has_gauss);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.rng_state[i], b.rng_state[i]);
  // Doubles must survive bit-exactly (including -0.0 and denormals).
  EXPECT_EQ(std::memcmp(&a.lr, &b.lr, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.best_mod_loss, &b.best_mod_loss, sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&a.rng_gauss, &b.rng_gauss, sizeof(double)), 0);
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t k = 0; k < a.params.size(); ++k) {
    EXPECT_EQ(a.params[k].rows, b.params[k].rows);
    EXPECT_EQ(a.params[k].cols, b.params[k].cols);
    ASSERT_EQ(a.params[k].data.size(), b.params[k].data.size());
    EXPECT_EQ(std::memcmp(a.params[k].data.data(), b.params[k].data.data(),
                          a.params[k].data.size() * sizeof(double)),
              0);
  }
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (size_t k = 0; k < a.pairs.size(); ++k) {
    EXPECT_EQ(a.pairs[k].u, b.pairs[k].u);
    EXPECT_EQ(a.pairs[k].v, b.pairs[k].v);
    EXPECT_EQ(a.pairs[k].target, b.pairs[k].target);
  }
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t k = 0; k < a.history.size(); ++k) {
    EXPECT_EQ(a.history[k].epoch, b.history[k].epoch);
    EXPECT_EQ(a.history[k].loss, b.history[k].loss);
  }
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(a.adv_rng_state[i], b.adv_rng_state[i]);
  EXPECT_EQ(a.adv_rng_has_gauss, b.adv_rng_has_gauss);
  EXPECT_EQ(std::memcmp(&a.adv_rng_gauss, &b.adv_rng_gauss, sizeof(double)),
            0);
}

/// Rewrites v2 bytes into the v1 format: strip the 41-byte adversarial-RNG
/// trailer, stamp version 1, fix the payload size and CRC. This is exactly
/// what a PR-2-era writer produced.
std::string DowngradeToV1(std::string bytes) {
  constexpr size_t kHeader = 4 + 4 + 8 + 4;
  constexpr size_t kAdvTrailer = 4 * 8 + 1 + 8;
  bytes.resize(bytes.size() - kAdvTrailer);
  const uint32_t version = 1;
  std::memcpy(&bytes[4], &version, sizeof(version));
  const uint64_t payload_size = bytes.size() - kHeader;
  std::memcpy(&bytes[8], &payload_size, sizeof(payload_size));
  const uint32_t crc = Crc32(bytes.data() + kHeader, payload_size);
  std::memcpy(&bytes[16], &crc, sizeof(crc));
  return bytes;
}

// --- CRC-32 -----------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  // IEEE 802.3 check value for the standard test string.
  EXPECT_EQ(Crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32, SensitiveToSingleBit) {
  std::string data(64, '\x5a');
  const uint32_t base = Crc32(data.data(), data.size());
  data[17] ^= 0x01;
  EXPECT_NE(Crc32(data.data(), data.size()), base);
}

// --- Roundtrip --------------------------------------------------------------

TEST(Checkpoint, SerializeParseRoundtrip) {
  const TrainingCheckpoint original = MakeCheckpoint(7);
  StatusOr<TrainingCheckpoint> loaded =
      ParseCheckpoint(SerializeCheckpoint(original), "mem");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectCheckpointsEqual(original, loaded.value());
}

TEST(Checkpoint, V1FilesParseWithZeroedAdvBlock) {
  // Backward compatibility with pre-adversarial checkpoints: a v1 file (no
  // trailer) must load, with the adversarial RNG block left at its zero
  // defaults.
  const TrainingCheckpoint original = MakeCheckpoint(3);
  StatusOr<TrainingCheckpoint> loaded =
      ParseCheckpoint(DowngradeToV1(SerializeCheckpoint(original)), "mem-v1");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().next_epoch, 3);
  EXPECT_EQ(loaded.value().rng_state[0], original.rng_state[0]);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(loaded.value().adv_rng_state[i], 0u);
  EXPECT_EQ(loaded.value().adv_rng_has_gauss, 0);
  EXPECT_EQ(loaded.value().adv_rng_gauss, 0.0);
}

TEST(Checkpoint, SaveLoadRoundtripOnDisk) {
  const std::string path = TestDir("ckpt_roundtrip") + "/checkpoint.bin";
  const TrainingCheckpoint original = MakeCheckpoint(42);
  ASSERT_TRUE(SaveCheckpoint(original, path).ok());
  StatusOr<TrainingCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectCheckpointsEqual(original, loaded.value());
}

TEST(Checkpoint, AtomicSaveLeavesNoTempFile) {
  const std::string dir = TestDir("ckpt_no_tmp");
  const std::string path = dir + "/checkpoint.bin";
  ASSERT_TRUE(SaveCheckpoint(MakeCheckpoint(1), path).ok());
  EXPECT_TRUE(Env::Default()->FileExists(path));
  EXPECT_FALSE(Env::Default()->FileExists(path + ".tmp"));
}

// --- Corruption detection ---------------------------------------------------

TEST(Checkpoint, MissingFileIsIoError) {
  StatusOr<TrainingCheckpoint> loaded =
      LoadCheckpoint(testing::TempDir() + "/does_not_exist.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(Checkpoint, BadMagicRejected) {
  std::string bytes = SerializeCheckpoint(MakeCheckpoint(3));
  bytes[0] = 'X';
  StatusOr<TrainingCheckpoint> loaded = ParseCheckpoint(bytes, "mem");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("bad magic"), std::string::npos);
}

TEST(Checkpoint, UnsupportedVersionRejected) {
  std::string bytes = SerializeCheckpoint(MakeCheckpoint(3));
  bytes[4] = 99;  // Version field.
  StatusOr<TrainingCheckpoint> loaded = ParseCheckpoint(bytes, "mem");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST(Checkpoint, TruncationRejected) {
  const std::string bytes = SerializeCheckpoint(MakeCheckpoint(3));
  // Every strict prefix must be rejected, never half-parsed.
  for (size_t keep : {size_t{0}, size_t{3}, size_t{19}, bytes.size() / 2,
                      bytes.size() - 1}) {
    StatusOr<TrainingCheckpoint> loaded =
        ParseCheckpoint(bytes.substr(0, keep), "mem");
    EXPECT_FALSE(loaded.ok()) << "prefix of " << keep << " bytes accepted";
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(Checkpoint, PayloadBitFlipRejectedByCrc) {
  const std::string bytes = SerializeCheckpoint(MakeCheckpoint(3));
  // Flip one bit in every payload byte position in turn; CRC must catch all.
  for (size_t pos = 20; pos < bytes.size(); pos += 7) {
    std::string corrupt = bytes;
    corrupt[pos] ^= 0x10;
    StatusOr<TrainingCheckpoint> loaded = ParseCheckpoint(corrupt, "mem");
    ASSERT_FALSE(loaded.ok()) << "bit flip at byte " << pos << " accepted";
    EXPECT_NE(loaded.status().message().find("CRC mismatch"),
              std::string::npos);
  }
}

TEST(Checkpoint, TrailingBytesRejected) {
  TrainingCheckpoint c = MakeCheckpoint(3);
  std::string bytes = SerializeCheckpoint(c);
  bytes += "extra";
  StatusOr<TrainingCheckpoint> loaded = ParseCheckpoint(bytes, "mem");
  ASSERT_FALSE(loaded.ok());
  // Appending bytes breaks the declared-size check before the CRC runs.
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
}

// --- Exact diagnostic wording (regression) ----------------------------------
// Operators grep logs for these messages; the wording is a contract. If the
// format version bumps, update the pinned range here deliberately.

TEST(Checkpoint, UnsupportedVersionMessageNamesReadableRange) {
  std::string bytes = SerializeCheckpoint(MakeCheckpoint(3));
  bytes[4] = 99;  // Version field.
  StatusOr<TrainingCheckpoint> loaded = ParseCheckpoint(bytes, "run7/ckpt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().message(),
            "unsupported checkpoint version 99 "
            "(this build reads versions 1..2): run7/ckpt");
}

TEST(Checkpoint, CrcMismatchMessageNamesBothChecksums) {
  // The message must carry the declared and the computed CRC so a corrupt
  // file can be triaged from the log line alone — via the real on-disk
  // LoadCheckpoint path, not just the in-memory parser.
  constexpr size_t kHeader = 4 + 4 + 8 + 4;
  const std::string dir = TestDir("ckpt_crc_message");
  const std::string path = dir + "/checkpoint.bin";
  ASSERT_TRUE(SaveCheckpoint(MakeCheckpoint(3), path).ok());
  StatusOr<std::string> bytes = Env::Default()->ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = std::move(bytes).value();
  corrupt[kHeader + 11] ^= 0x20;
  ASSERT_TRUE(Env::Default()->WriteFileAtomic(path, corrupt).ok());

  uint32_t declared = 0;
  std::memcpy(&declared, corrupt.data() + 16, sizeof(declared));
  const uint32_t actual =
      Crc32(corrupt.data() + kHeader, corrupt.size() - kHeader);
  ASSERT_NE(declared, actual);
  auto hex = [](uint32_t v) {
    char buf[11];
    std::snprintf(buf, sizeof(buf), "0x%08x", v);
    return std::string(buf);
  };
  StatusOr<TrainingCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().message(),
            "checkpoint CRC mismatch (corrupt): header declares " +
                hex(declared) + ", payload hashes to " + hex(actual) + ": " +
                path);
}

// --- Rotation and fallback --------------------------------------------------

TEST(Checkpoint, RotationKeepsPreviousSnapshot) {
  const std::string dir = TestDir("ckpt_rotation");
  ASSERT_TRUE(SaveRotatingCheckpoint(MakeCheckpoint(5), dir).ok());
  ASSERT_TRUE(SaveRotatingCheckpoint(MakeCheckpoint(10), dir).ok());
  std::string used;
  StatusOr<TrainingCheckpoint> latest = LoadLatestCheckpoint(dir, nullptr,
                                                             &used);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().next_epoch, 10);
  EXPECT_EQ(used, CheckpointBinPath(dir));
  StatusOr<TrainingCheckpoint> previous =
      LoadCheckpoint(CheckpointBakPath(dir));
  ASSERT_TRUE(previous.ok());
  EXPECT_EQ(previous.value().next_epoch, 5);
}

TEST(Checkpoint, CorruptNewestFallsBackToPrevious) {
  const std::string dir = TestDir("ckpt_fallback");
  ASSERT_TRUE(SaveRotatingCheckpoint(MakeCheckpoint(5), dir).ok());
  ASSERT_TRUE(SaveRotatingCheckpoint(MakeCheckpoint(10), dir).ok());
  // Flip a payload bit in the newest snapshot.
  {
    std::fstream f(CheckpointBinPath(dir),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(40);
    char byte = 0;
    f.read(&byte, 1);
    byte ^= 0x01;
    f.seekp(40);
    f.write(&byte, 1);
  }
  std::string used;
  StatusOr<TrainingCheckpoint> latest = LoadLatestCheckpoint(dir, nullptr,
                                                             &used);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.value().next_epoch, 5);
  EXPECT_EQ(used, CheckpointBakPath(dir));
}

TEST(Checkpoint, BothCorruptReportsPrimaryError) {
  const std::string dir = TestDir("ckpt_both_corrupt");
  ASSERT_TRUE(SaveRotatingCheckpoint(MakeCheckpoint(5), dir).ok());
  ASSERT_TRUE(SaveRotatingCheckpoint(MakeCheckpoint(10), dir).ok());
  for (const std::string& path :
       {CheckpointBinPath(dir), CheckpointBakPath(dir)}) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "garbage";
  }
  StatusOr<TrainingCheckpoint> latest = LoadLatestCheckpoint(dir);
  ASSERT_FALSE(latest.ok());
  EXPECT_EQ(latest.status().code(), StatusCode::kInvalidArgument);
}

TEST(Checkpoint, EmptyDirIsNotFound) {
  const std::string dir = TestDir("ckpt_empty");
  StatusOr<TrainingCheckpoint> latest = LoadLatestCheckpoint(dir);
  ASSERT_FALSE(latest.ok());
  EXPECT_EQ(latest.status().code(), StatusCode::kNotFound);
}

// --- Injected I/O faults ----------------------------------------------------

TEST(FaultInjection, FailedWriteSurfacesStatusAndPreservesOldSnapshot) {
  const std::string dir = TestDir("ckpt_fail_write");
  FaultInjectingEnv env;
  ASSERT_TRUE(SaveRotatingCheckpoint(MakeCheckpoint(5), dir, &env).ok());
  env.plan.fail_write = env.writes();  // Fail the next write.
  Status st = SaveRotatingCheckpoint(MakeCheckpoint(10), dir, &env);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  // The epoch-5 snapshot survives (rotated into the .bak slot).
  StatusOr<TrainingCheckpoint> latest = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.value().next_epoch, 5);
}

TEST(FaultInjection, TruncatedWriteDetectedOnLoad) {
  const std::string dir = TestDir("ckpt_trunc_write");
  FaultInjectingEnv env;
  ASSERT_TRUE(SaveRotatingCheckpoint(MakeCheckpoint(5), dir, &env).ok());
  env.plan.truncate_write = env.writes();
  env.plan.truncate_bytes = 64;
  ASSERT_TRUE(SaveRotatingCheckpoint(MakeCheckpoint(10), dir, &env).ok());
  // The torn epoch-10 snapshot is rejected; recovery lands on epoch 5.
  std::string used;
  StatusOr<TrainingCheckpoint> latest = LoadLatestCheckpoint(dir, &env, &used);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.value().next_epoch, 5);
  EXPECT_EQ(used, CheckpointBakPath(dir));
  StatusOr<TrainingCheckpoint> direct =
      LoadCheckpoint(CheckpointBinPath(dir), &env);
  ASSERT_FALSE(direct.ok());
  EXPECT_NE(direct.status().message().find("truncated"), std::string::npos);
}

TEST(FaultInjection, BitFlippedWriteDetectedOnLoad) {
  const std::string dir = TestDir("ckpt_flip_write");
  FaultInjectingEnv env;
  ASSERT_TRUE(SaveRotatingCheckpoint(MakeCheckpoint(5), dir, &env).ok());
  env.plan.bitflip_write = env.writes();
  env.plan.bitflip_byte = 100;  // Deep in the payload.
  env.plan.bitflip_bit = 3;
  ASSERT_TRUE(SaveRotatingCheckpoint(MakeCheckpoint(10), dir, &env).ok());
  StatusOr<TrainingCheckpoint> direct =
      LoadCheckpoint(CheckpointBinPath(dir), &env);
  ASSERT_FALSE(direct.ok());
  EXPECT_NE(direct.status().message().find("CRC mismatch"), std::string::npos);
  StatusOr<TrainingCheckpoint> latest = LoadLatestCheckpoint(dir, &env);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().next_epoch, 5);
}

}  // namespace
}  // namespace aneci

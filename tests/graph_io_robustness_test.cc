// Malformed-input corpus for the graph loaders: every corruption class must
// come back as a precise Status — never a crash, a thrown exception, or a
// silently truncated graph — and SaveGraph's atomic write path must never
// leave a torn file.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "graph/graph.h"
#include "graph/graph_io.h"
#include "util/env.h"

namespace aneci {
namespace {

std::string WriteFile(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  return path;
}

// Expects LoadGraph to fail with `code` and a message containing `fragment`.
void ExpectLoadError(const std::string& name, const std::string& content,
                     StatusCode code, const std::string& fragment) {
  const std::string path = WriteFile(name, content);
  StatusOr<Graph> g = LoadGraph(path);
  ASSERT_FALSE(g.ok()) << name << " was accepted";
  EXPECT_EQ(g.status().code(), code) << g.status().ToString();
  EXPECT_NE(g.status().message().find(fragment), std::string::npos)
      << "message '" << g.status().message() << "' lacks '" << fragment << "'";
}

const char kValidGraph[] =
    "# aneci-graph v1\n"
    "nodes 3\n"
    "edges 2\n"
    "0 1\n"
    "1 2\n"
    "labels\n"
    "0 1 1\n"
    "attributes 4\n"
    "2 0:1 3:0.5\n"
    "0\n"
    "1 2:-1.5\n";

// --- Well-formed baseline ---------------------------------------------------

TEST(GraphIoRobustness, ValidFileLoads) {
  const std::string path = WriteFile("valid.txt", kValidGraph);
  StatusOr<Graph> g = LoadGraph(path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value().num_nodes(), 3);
  EXPECT_EQ(g.value().num_edges(), 2);
  ASSERT_TRUE(g.value().has_attributes());
  EXPECT_EQ(g.value().attributes()(0, 3), 0.5);
  EXPECT_EQ(g.value().attributes()(2, 2), -1.5);
}

// --- Header and counts ------------------------------------------------------

TEST(GraphIoRobustness, MissingHeader) {
  ExpectLoadError("no_header.txt", "nodes 3\nedges 0\n",
                  StatusCode::kInvalidArgument, "header");
}

TEST(GraphIoRobustness, NegativeCounts) {
  ExpectLoadError("neg_nodes.txt", "# aneci-graph v1\nnodes -3\nedges 0\n",
                  StatusCode::kInvalidArgument, "negative counts");
  ExpectLoadError("neg_edges.txt", "# aneci-graph v1\nnodes 3\nedges -1\n",
                  StatusCode::kInvalidArgument, "negative counts");
}

TEST(GraphIoRobustness, NonNumericCounts) {
  ExpectLoadError("bad_n.txt", "# aneci-graph v1\nnodes x\nedges 0\n",
                  StatusCode::kInvalidArgument, "nodes");
}

// --- Edge list --------------------------------------------------------------

TEST(GraphIoRobustness, TruncatedEdgeList) {
  ExpectLoadError("trunc_edges.txt",
                  "# aneci-graph v1\nnodes 3\nedges 2\n0 1\n",
                  StatusCode::kInvalidArgument, "truncated edge list");
}

TEST(GraphIoRobustness, NegativeEdgeEndpoint) {
  ExpectLoadError("neg_endpoint.txt",
                  "# aneci-graph v1\nnodes 3\nedges 1\n-1 2\n",
                  StatusCode::kOutOfRange, "out of range");
}

TEST(GraphIoRobustness, EdgeEndpointBeyondN) {
  ExpectLoadError("oor_endpoint.txt",
                  "# aneci-graph v1\nnodes 3\nedges 1\n0 7\n",
                  StatusCode::kOutOfRange, "out of range");
}

TEST(GraphIoRobustness, ExtraEdgesBecomeTrailingGarbage) {
  // More edge lines than `edges` declares: the surplus is not silently
  // swallowed as a section keyword.
  ExpectLoadError("extra_edges.txt",
                  "# aneci-graph v1\nnodes 3\nedges 1\n0 1\n1 2\n",
                  StatusCode::kInvalidArgument, "unknown section");
}

// --- Labels -----------------------------------------------------------------

TEST(GraphIoRobustness, LabelCountMismatch) {
  ExpectLoadError("short_labels.txt",
                  "# aneci-graph v1\nnodes 3\nedges 0\nlabels\n0 1\n",
                  StatusCode::kInvalidArgument, "truncated labels");
}

TEST(GraphIoRobustness, NegativeLabel) {
  ExpectLoadError("neg_label.txt",
                  "# aneci-graph v1\nnodes 3\nedges 0\nlabels\n0 -2 1\n",
                  StatusCode::kOutOfRange, "negative label");
}

TEST(GraphIoRobustness, DuplicateLabelsSection) {
  ExpectLoadError(
      "dup_labels.txt",
      "# aneci-graph v1\nnodes 2\nedges 0\nlabels\n0 1\nlabels\n0 1\n",
      StatusCode::kInvalidArgument, "duplicate labels");
}

// --- Attributes -------------------------------------------------------------

TEST(GraphIoRobustness, BadAttributeDim) {
  ExpectLoadError("zero_dim.txt",
                  "# aneci-graph v1\nnodes 2\nedges 0\nattributes 0\n",
                  StatusCode::kInvalidArgument, "bad attribute dim");
  ExpectLoadError("neg_dim.txt",
                  "# aneci-graph v1\nnodes 2\nedges 0\nattributes -4\n",
                  StatusCode::kInvalidArgument, "bad attribute dim");
}

TEST(GraphIoRobustness, AttributeNnzOutOfRange) {
  ExpectLoadError("neg_nnz.txt",
                  "# aneci-graph v1\nnodes 2\nedges 0\nattributes 4\n-1\n0\n",
                  StatusCode::kOutOfRange, "nonzeros");
  ExpectLoadError(
      "huge_nnz.txt",
      "# aneci-graph v1\nnodes 2\nedges 0\nattributes 4\n9 0:1\n0\n",
      StatusCode::kOutOfRange, "nonzeros");
}

TEST(GraphIoRobustness, AttributeColumnOutOfRange) {
  ExpectLoadError(
      "col_oor.txt",
      "# aneci-graph v1\nnodes 2\nedges 0\nattributes 4\n1 4:1\n0\n",
      StatusCode::kOutOfRange, "column 4 out of range");
  ExpectLoadError(
      "col_neg.txt",
      "# aneci-graph v1\nnodes 2\nedges 0\nattributes 4\n1 -2:1\n0\n",
      StatusCode::kOutOfRange, "out of range");
}

TEST(GraphIoRobustness, MalformedAttributeCells) {
  // No separator.
  ExpectLoadError(
      "no_colon.txt",
      "# aneci-graph v1\nnodes 2\nedges 0\nattributes 4\n1 3\n0\n",
      StatusCode::kInvalidArgument, "no col:val separator");
  // Garbage column: stoi would have thrown here; must be a Status instead.
  ExpectLoadError(
      "garbage_col.txt",
      "# aneci-graph v1\nnodes 2\nedges 0\nattributes 4\n1 x:1\n0\n",
      StatusCode::kInvalidArgument, "bad attribute column");
  // Garbage value.
  ExpectLoadError(
      "garbage_val.txt",
      "# aneci-graph v1\nnodes 2\nedges 0\nattributes 4\n1 2:abc\n0\n",
      StatusCode::kInvalidArgument, "bad attribute value");
  // Partial parse ("12x" is not a column).
  ExpectLoadError(
      "partial_col.txt",
      "# aneci-graph v1\nnodes 2\nedges 0\nattributes 4\n1 1x:1\n0\n",
      StatusCode::kInvalidArgument, "bad attribute column");
}

TEST(GraphIoRobustness, TruncatedAttributeRows) {
  ExpectLoadError("trunc_attr.txt",
                  "# aneci-graph v1\nnodes 2\nedges 0\nattributes 4\n1 0:1\n",
                  StatusCode::kInvalidArgument, "truncated attributes");
  ExpectLoadError(
      "trunc_cells.txt",
      "# aneci-graph v1\nnodes 2\nedges 0\nattributes 4\n2 0:1\n",
      StatusCode::kInvalidArgument, "truncated attribute row");
}

TEST(GraphIoRobustness, DuplicateAttributesSection) {
  ExpectLoadError("dup_attrs.txt",
                  "# aneci-graph v1\nnodes 1\nedges 0\nattributes 2\n0\n"
                  "attributes 2\n0\n",
                  StatusCode::kInvalidArgument, "duplicate attributes");
}

TEST(GraphIoRobustness, TrailingGarbageAfterSections) {
  ExpectLoadError("trailing.txt",
                  "# aneci-graph v1\nnodes 2\nedges 1\n0 1\nlabels\n0 1\n"
                  "wat\n",
                  StatusCode::kInvalidArgument, "unknown section");
}

// --- LoadEdgeList -----------------------------------------------------------

TEST(GraphIoRobustness, EdgeListBadLine) {
  const std::string path = WriteFile("el_bad.txt", "0 1\nfoo bar\n");
  StatusOr<Graph> g = LoadEdgeList(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
}

TEST(GraphIoRobustness, EdgeListNegativeId) {
  const std::string path = WriteFile("el_neg.txt", "0 1\n2 -3\n");
  StatusOr<Graph> g = LoadEdgeList(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kOutOfRange);
}

TEST(GraphIoRobustness, EdgeListTrailingGarbage) {
  const std::string path = WriteFile("el_trail.txt", "0 1 junk\n");
  StatusOr<Graph> g = LoadEdgeList(path);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("trailing garbage"), std::string::npos);
}

TEST(GraphIoRobustness, EdgeListIdExceedsDeclaredN) {
  const std::string path = WriteFile("el_oor.txt", "0 1\n5 2\n");
  StatusOr<Graph> g = LoadEdgeList(path, /*num_nodes=*/4);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kOutOfRange);
}

TEST(GraphIoRobustness, EdgeListCommentsAndBlanksOk) {
  const std::string path =
      WriteFile("el_ok.txt", "# comment\n\n0 1\n1 2\n");
  StatusOr<Graph> g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value().num_nodes(), 3);
  EXPECT_EQ(g.value().num_edges(), 2);
}

// --- Atomic SaveGraph -------------------------------------------------------

Graph TinyGraph() {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  g.SetLabels({0, 1, 1});
  return g;
}

TEST(GraphIoRobustness, SaveGraphIsAtomicUnderWriteFailure) {
  const std::string path = testing::TempDir() + "/atomic_graph.txt";
  ASSERT_TRUE(SaveGraph(TinyGraph(), path).ok());
  StatusOr<Graph> before = LoadGraph(path);
  ASSERT_TRUE(before.ok());

  // A failed overwrite must leave the original file fully intact.
  FaultInjectingEnv env;
  env.plan.fail_write = 0;
  Graph bigger = Graph::FromEdges(5, {{0, 4}, {2, 3}, {1, 2}});
  Status st = SaveGraph(bigger, path, &env);
  ASSERT_FALSE(st.ok());
  StatusOr<Graph> after = LoadGraph(path);
  ASSERT_TRUE(after.ok()) << "original torn by failed overwrite";
  EXPECT_EQ(after.value().num_nodes(), 3);
  EXPECT_EQ(after.value().num_edges(), 2);
}

TEST(GraphIoRobustness, SaveGraphTruncatedWriteIsDetectedOnLoad) {
  const std::string path = testing::TempDir() + "/torn_graph.txt";
  FaultInjectingEnv env;
  env.plan.truncate_write = 0;
  env.plan.truncate_bytes = 30;  // Mid-edge-list.
  ASSERT_TRUE(SaveGraph(TinyGraph(), path, &env).ok());
  StatusOr<Graph> g = LoadGraph(path);
  ASSERT_FALSE(g.ok()) << "torn graph file was half-parsed";
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoRobustness, SaveGraphLeavesNoTempFile) {
  const std::string path = testing::TempDir() + "/clean_graph.txt";
  ASSERT_TRUE(SaveGraph(TinyGraph(), path).ok());
  EXPECT_FALSE(Env::Default()->FileExists(path + ".tmp"));
}

}  // namespace
}  // namespace aneci

#include <gtest/gtest.h>

#include "core/aneci.h"
#include "core/aneci_plus.h"
#include "data/sbm.h"
#include "graph/modularity.h"
#include "tasks/metrics.h"
#include "util/rng.h"

namespace aneci {
namespace {

Graph SmallSbm(uint64_t seed, int n = 200, int classes = 3) {
  SbmOptions opt;
  opt.num_nodes = n;
  opt.num_classes = classes;
  opt.num_edges = 3 * n;
  opt.intra_fraction = 0.9;
  opt.attribute_dim = 40;
  opt.words_per_node = 8;
  opt.topic_words_per_class = 12;
  Rng rng(seed);
  return GenerateSbm(opt, rng);
}

AneciConfig FastConfig() {
  AneciConfig cfg;
  cfg.hidden_dim = 32;
  cfg.embed_dim = 8;
  cfg.epochs = 60;
  cfg.proximity.order = 2;
  return cfg;
}

TEST(Aneci, OutputShapesAndMembershipRows) {
  Graph g = SmallSbm(1);
  Aneci model(FastConfig());
  AneciResult result = model.Train(g);
  EXPECT_EQ(result.z.rows(), g.num_nodes());
  EXPECT_EQ(result.z.cols(), 8);
  EXPECT_EQ(result.p.rows(), g.num_nodes());
  for (int i = 0; i < result.p.rows(); ++i) {
    double sum = 0.0;
    for (int c = 0; c < result.p.cols(); ++c) sum += result.p(i, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Aneci, ModularityImprovesDuringTraining) {
  Graph g = SmallSbm(2);
  Aneci model(FastConfig());
  AneciResult result = model.Train(g);
  ASSERT_GE(result.history.size(), 10u);
  const double early = result.history[1].modularity;
  const double late = result.history.back().modularity;
  EXPECT_GT(late, early);
  EXPECT_GT(late, 0.1);  // Communities actually found.
}

TEST(Aneci, MembershipRecoversPlantedCommunities) {
  Graph g = SmallSbm(3, 240, 3);
  AneciConfig cfg = FastConfig();
  cfg.embed_dim = 3;
  cfg.epochs = 120;
  Aneci model(cfg);
  AneciResult result = model.Train(g);
  const std::vector<int> detected = ArgmaxAssignment(result.p);
  const double nmi = NormalizedMutualInformation(detected, g.labels());
  EXPECT_GT(nmi, 0.4) << "NMI vs planted labels too low";
  EXPECT_GT(Modularity(g, detected), 0.3);
}

TEST(Aneci, DenseAndSampledModesBothTrain) {
  Graph g = SmallSbm(4);
  for (ReconstructionMode mode :
       {ReconstructionMode::kDense, ReconstructionMode::kSampled}) {
    AneciConfig cfg = FastConfig();
    cfg.epochs = 30;
    cfg.reconstruction = mode;
    Aneci model(cfg);
    AneciResult result = model.Train(g);
    EXPECT_GT(result.history.back().modularity,
              result.history.front().modularity);
  }
}

TEST(Aneci, EarlyStoppingShortensTraining) {
  // A tiny graph saturates its modularity quickly, so a patience-based stop
  // must fire long before the epoch budget.
  Graph g = SmallSbm(5, /*n=*/60, /*classes=*/2);
  AneciConfig cfg = FastConfig();
  cfg.embed_dim = 2;
  cfg.epochs = 1000;
  cfg.early_stop_patience = 10;
  Aneci model(cfg);
  AneciResult result = model.Train(g);
  EXPECT_LT(result.history.size(), 1000u);
}

TEST(Aneci, EpochCallbackFires) {
  Graph g = SmallSbm(6);
  AneciConfig cfg = FastConfig();
  cfg.epochs = 10;
  Aneci model(cfg);
  int calls = 0;
  model.Train(g, [&](const AneciEpochStats& stats, const Matrix& z,
                     const Matrix& p) {
    EXPECT_EQ(stats.epoch, calls);
    EXPECT_EQ(p.rows(), g.num_nodes());
    EXPECT_GE(stats.rigidity, 0.0);
    ++calls;
  });
  EXPECT_EQ(calls, 10);
}

TEST(Aneci, DeterministicGivenSeed) {
  Graph g = SmallSbm(7);
  AneciConfig cfg = FastConfig();
  cfg.epochs = 15;
  Aneci a(cfg), b(cfg);
  Matrix za = a.Train(g).z;
  Matrix zb = b.Train(g).z;
  for (int64_t i = 0; i < za.size(); ++i)
    EXPECT_DOUBLE_EQ(za.data()[i], zb.data()[i]);
}

TEST(Aneci, WorksWithoutAttributes) {
  SbmOptions opt;
  opt.num_nodes = 120;
  opt.num_classes = 2;
  opt.num_edges = 500;
  opt.attribute_dim = 0;
  Rng rng(8);
  Graph g = GenerateSbm(opt, rng);
  AneciConfig cfg = FastConfig();
  cfg.epochs = 40;
  Aneci model(cfg);
  AneciResult result = model.Train(g);
  EXPECT_EQ(result.z.rows(), 120);
  EXPECT_GT(result.history.back().modularity, 0.0);
}

TEST(Aneci, SampledNeighborEncoderTrains) {
  Graph g = SmallSbm(12);
  AneciConfig cfg = FastConfig();
  cfg.encoder = EncoderMode::kSampledNeighbors;
  cfg.sage.fanout = 5;
  cfg.epochs = 80;
  Aneci model(cfg);
  AneciResult result = model.Train(g);
  EXPECT_GT(result.history.back().modularity, 0.1);
  const std::vector<int> detected = ArgmaxAssignment(result.p);
  EXPECT_GT(NormalizedMutualInformation(detected, g.labels()), 0.3);
}

TEST(Aneci, MinimumModularityVariantTrains) {
  Graph g = SmallSbm(13);
  AneciConfig cfg = FastConfig();
  cfg.modularity_variant = ModularityVariant::kMinimum;
  cfg.epochs = 60;
  Aneci model(cfg);
  AneciResult result = model.Train(g);
  EXPECT_GT(result.history.back().modularity,
            result.history.front().modularity);
}

// --- Sampled propagation operator ------------------------------------------------

TEST(SageOperator, RowsAreStochastic) {
  Graph g = SmallSbm(14);
  Rng rng(1);
  SageSamplerOptions opt;
  opt.fanout = 4;
  SparseMatrix s = SampleSageOperator(g, opt, rng);
  for (double sum : s.RowSumsVec()) EXPECT_NEAR(sum, 1.0, 1e-12);
  for (int u = 0; u < g.num_nodes(); ++u)
    EXPECT_LE(s.RowNnz(u), opt.fanout + 1);
}

TEST(SageOperator, LowDegreeNodesKeepAllNeighbors) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {0, 2}});
  Rng rng(2);
  SageSamplerOptions opt;
  opt.fanout = 10;
  SparseMatrix s = SampleSageOperator(g, opt, rng);
  EXPECT_EQ(s.RowNnz(0), 3);  // Self + both neighbours.
  EXPECT_NEAR(s.At(0, 1), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(s.RowNnz(3), 1);  // Isolated node keeps only itself.
  EXPECT_NEAR(s.At(3, 3), 1.0, 1e-12);
}

TEST(SageOperator, ExpectationMatchesFullOperator) {
  // Averaging many sampled operators approaches row-normalised (A + I).
  Graph g = SmallSbm(15, 60, 2);
  Rng rng(3);
  SageSamplerOptions opt;
  opt.fanout = 3;
  Matrix mean(60, 60);
  const int draws = 400;
  for (int t = 0; t < draws; ++t)
    mean += SampleSageOperator(g, opt, rng).ToDense();
  mean *= 1.0 / draws;
  SparseMatrix expected = g.Adjacency(true).RowNormalizedL1();
  // Check a handful of high-degree rows.
  for (int u = 0; u < 10; ++u) {
    for (int v : g.Neighbors(u))
      EXPECT_NEAR(mean(u, v), expected.At(u, v), 0.05);
  }
}

// --- AnECI+ --------------------------------------------------------------------

TEST(AneciPlus, PsiScheduleIsIncreasingAndBounded) {
  AneciPlusConfig cfg;
  cfg.psi_alpha = 5.0;
  std::vector<double> low(10, 0.2), high(10, 1.6);
  const double rho_low = AdaptiveDropRatio(low, cfg);
  const double rho_high = AdaptiveDropRatio(high, cfg);
  EXPECT_LT(rho_low, rho_high);
  EXPECT_GE(rho_low, 0.0);
  EXPECT_LE(rho_high, cfg.psi_gamma);
}

TEST(AneciPlus, FixedDropRatioOverrides) {
  AneciPlusConfig cfg;
  cfg.fixed_drop_ratio = 0.33;
  EXPECT_DOUBLE_EQ(AdaptiveDropRatio({1.0, 1.0}, cfg), 0.33);
}

TEST(AneciPlus, EdgeScoresAlignWithEmbedding) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}, {0, 2}});
  Matrix z = Matrix::FromRows(
      {{1, 0}, {1, 0.01}, {0, 1}, {0.01, 1}});  // Two tight pairs.
  std::vector<double> scores = EdgeAnomalyScores(g, z);
  ASSERT_EQ(scores.size(), 3u);
  // The cross-pair edge (0,2) must be the most anomalous.
  EXPECT_GT(scores[1], scores[0]);  // edges() sorted: (0,1), (0,2), (2,3).
  EXPECT_GT(scores[1], scores[2]);
}

TEST(AneciPlus, RemovesPlantedNoiseEdgesFirst) {
  Graph g = SmallSbm(9, 160, 2);
  // Plant obvious cross-community noise.
  Rng rng(10);
  int planted = 0;
  for (int t = 0; t < 400 && planted < 30; ++t) {
    const int u = static_cast<int>(rng.NextInt(g.num_nodes()));
    const int v = static_cast<int>(rng.NextInt(g.num_nodes()));
    if (u != v && g.labels()[u] != g.labels()[v] && g.AddEdge(u, v)) ++planted;
  }
  AneciPlusConfig cfg;
  cfg.base = FastConfig();
  cfg.base.epochs = 60;
  cfg.fixed_drop_ratio = 0.1;
  AneciPlusResult result = TrainAneciPlus(g, cfg);
  EXPECT_GT(result.edges_removed, 0);
  EXPECT_EQ(result.denoised_graph.num_edges(),
            g.num_edges() - result.edges_removed);
  // Removed edges should be disproportionately cross-community.
  int cross_removed = 0;
  for (const Edge& e : g.edges()) {
    if (!result.denoised_graph.HasEdge(e.u, e.v) &&
        g.labels()[e.u] != g.labels()[e.v]) {
      ++cross_removed;
    }
  }
  EXPECT_GT(cross_removed, result.edges_removed / 2);
}

}  // namespace
}  // namespace aneci

// Hot-swap concurrency: N reader threads hammer a QueryEngine while a
// writer swaps snapshots under them. Every artifact field is derived from
// its snapshot's version number, so any torn read — a response mixing
// fields from two snapshots — trips an invariant check. Run under TSan in
// CI (tools/ci.sh stage 2) to also catch data races the invariants miss.
// Also covers the ANSV artifact format itself: roundtrips, corruption
// rejection, and snapshot lifetime across swaps.
#include "serve/model_snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/model_artifact.h"
#include "serve/query_engine.h"
#include "util/byteio.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace aneci::serve {
namespace {

constexpr int kNodes = 16;
constexpr int kDim = 8;

/// Every field is a function of `version`, so a response whose fields
/// disagree with its reported version proves a torn read.
ModelArtifact VersionedArtifact(uint64_t version) {
  const double v = static_cast<double>(version);
  ModelArtifact artifact;
  artifact.num_nodes = kNodes;
  artifact.embed_dim = kDim;
  artifact.num_classes = 0;
  artifact.z = Matrix(kNodes, kDim);
  artifact.p = Matrix(kNodes, kDim);
  for (int i = 0; i < kNodes; ++i) {
    for (int j = 0; j < kDim; ++j) {
      artifact.z(i, j) = v * 1000.0 + i * kDim + j;
      artifact.p(i, j) = 1.0 / kDim;
    }
  }
  artifact.community.assign(kNodes, static_cast<int32_t>(version % kDim));
  artifact.anomaly.assign(kNodes, v);
  return artifact;
}

std::shared_ptr<const ModelSnapshot> VersionedSnapshot(uint64_t version) {
  std::string source = "v";
  source += std::to_string(version);
  return std::make_shared<const ModelSnapshot>(VersionedArtifact(version),
                                               version, std::move(source));
}

/// Fails the test if `result`'s fields don't all match its version.
void CheckConsistent(const QueryResult& result) {
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  const QueryResponse& r = result.response;
  const double v = static_cast<double>(r.snapshot_version);
  switch (r.op) {
    case QueryOp::kLookup:
      ASSERT_EQ(r.embedding.size(), static_cast<size_t>(kDim));
      for (int j = 0; j < kDim; ++j)
        ASSERT_EQ(r.embedding[j], v * 1000.0 + r.id * kDim + j)
            << "torn read: version " << r.snapshot_version << " node " << r.id;
      break;
    case QueryOp::kAnomaly:
      ASSERT_EQ(r.anomaly_score, v) << "torn read at version "
                                    << r.snapshot_version;
      break;
    case QueryOp::kCommunity:
      ASSERT_EQ(r.community,
                static_cast<int>(r.snapshot_version % kDim))
          << "torn read at version " << r.snapshot_version;
      break;
    default:
      break;
  }
}

// --- Hot-swap hammer --------------------------------------------------------

TEST(HotSwap, ConcurrentReadersNeverSeeTornSnapshots) {
  QueryEngine engine(VersionedSnapshot(1));
  constexpr int kReaders = 6;
  constexpr int kSwaps = 400;
  constexpr int kReadsPerReader = 4000;

  // Pre-build the rotation so the writer loop is pure swap traffic.
  std::vector<std::shared_ptr<const ModelSnapshot>> rotation;
  for (uint64_t v = 2; v <= 9; ++v) rotation.push_back(VersionedSnapshot(v));

  std::atomic<uint64_t> observed_max_version{0};
  std::atomic<bool> writer_done{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&engine, &observed_max_version, &writer_done, t] {
      const QueryOp ops[] = {QueryOp::kLookup, QueryOp::kAnomaly,
                             QueryOp::kCommunity};
      const auto note_version = [&observed_max_version](uint64_t version) {
        uint64_t seen = observed_max_version.load(std::memory_order_relaxed);
        while (seen < version &&
               !observed_max_version.compare_exchange_weak(
                   seen, version, std::memory_order_relaxed)) {
        }
      };
      // Hammer for at least the fixed count, and keep going until the writer
      // has published its last swap: on a loaded (or single-core) machine a
      // fixed count alone can drain before the first swap even lands.
      for (int i = 0; i < kReadsPerReader ||
                      !writer_done.load(std::memory_order_acquire);
           ++i) {
        QueryRequest request;
        request.op = ops[(t + i) % 3];
        request.id = (t * 31 + i) % kNodes;
        const QueryResult result = engine.Execute(request);
        CheckConsistent(result);
        note_version(result.response.snapshot_version);
      }
      // The writer is done, so this read is ordered after its final publish
      // and must observe a swapped-in snapshot — every reader sees >= one
      // swap, deterministically.
      QueryRequest request;
      request.op = QueryOp::kAnomaly;
      request.id = t % kNodes;
      const QueryResult result = engine.Execute(request);
      CheckConsistent(result);
      note_version(result.response.snapshot_version);
    });
  }

  std::thread writer([&engine, &rotation, &writer_done] {
    for (int s = 0; s < kSwaps; ++s)
      engine.Swap(rotation[s % rotation.size()]);
    writer_done.store(true, std::memory_order_release);
  });

  for (std::thread& r : readers) r.join();
  writer.join();

  // Readers actually raced the writer (saw at least one swapped-in version).
  EXPECT_GE(observed_max_version.load(), 2u);
  // The engine settled on the writer's last snapshot.
  EXPECT_EQ(engine.snapshot()->version(),
            rotation[(kSwaps - 1) % rotation.size()]->version());
}

TEST(HotSwap, BatchesSpanningSwapsStayPerRequestConsistent) {
  QueryEngine engine(VersionedSnapshot(1));
  std::vector<std::shared_ptr<const ModelSnapshot>> rotation;
  for (uint64_t v = 2; v <= 5; ++v) rotation.push_back(VersionedSnapshot(v));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int s = 0;
    while (!stop.load(std::memory_order_relaxed))
      engine.Swap(rotation[s++ % rotation.size()]);
  });

  std::vector<QueryRequest> batch(64);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].op = QueryOp::kLookup;
    batch[i].id = static_cast<int>(i % kNodes);
  }
  for (int round = 0; round < 200; ++round) {
    const std::vector<QueryResult> results = engine.ExecuteBatch(batch);
    ASSERT_EQ(results.size(), batch.size());
    // Individual responses may come from different versions (a swap landed
    // mid-batch) but each one must be internally consistent.
    for (const QueryResult& result : results) CheckConsistent(result);
  }
  stop.store(true);
  writer.join();
}

TEST(HotSwap, DisplacedSnapshotOutlivesSwapWhilePinned) {
  QueryEngine engine(VersionedSnapshot(1));
  std::shared_ptr<const ModelSnapshot> pinned = engine.snapshot();
  std::shared_ptr<const ModelSnapshot> displaced =
      engine.Swap(VersionedSnapshot(2));
  EXPECT_EQ(displaced->version(), 1u);
  // The pinned reference still answers from the old model after the swap.
  EXPECT_EQ(pinned->version(), 1u);
  EXPECT_EQ(pinned->anomaly()[0], 1.0);
  EXPECT_EQ(engine.snapshot()->version(), 2u);
}

TEST(HotSwap, ResultsIdenticalAcrossThreadCounts) {
  // The knn scan parallelises; its response must not depend on the thread
  // count (chunked scores merged by a serial top-k).
  QueryRequest request;
  request.op = QueryOp::kKnn;
  request.id = 3;
  request.k = 7;
  std::vector<QueryResponse> responses;
  for (int threads : {1, 4}) {
    ScopedNumThreads scoped(threads);
    QueryEngine engine(VersionedSnapshot(1));
    QueryResult result = engine.Execute(request);
    ASSERT_TRUE(result.ok());
    responses.push_back(result.response);
  }
  ASSERT_EQ(responses[0].neighbors.size(), responses[1].neighbors.size());
  for (size_t i = 0; i < responses[0].neighbors.size(); ++i) {
    EXPECT_EQ(responses[0].neighbors[i].id, responses[1].neighbors[i].id);
    EXPECT_EQ(std::memcmp(&responses[0].neighbors[i].score,
                          &responses[1].neighbors[i].score, sizeof(double)),
              0);
  }
}

// --- ANSV artifact format ---------------------------------------------------

TEST(ModelArtifact, SerializeParseRoundtrip) {
  const ModelArtifact original = VersionedArtifact(3);
  StatusOr<ModelArtifact> loaded =
      ParseModelArtifact(SerializeModelArtifact(original), "mem");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ModelArtifact& artifact = loaded.value();
  EXPECT_EQ(artifact.num_nodes, kNodes);
  EXPECT_EQ(artifact.embed_dim, kDim);
  EXPECT_EQ(artifact.num_classes, 0);
  // Doubles roundtrip bit-exactly.
  EXPECT_EQ(std::memcmp(artifact.z.data(), original.z.data(),
                        sizeof(double) * kNodes * kDim),
            0);
  EXPECT_EQ(artifact.community, original.community);
  EXPECT_EQ(artifact.anomaly, original.anomaly);
}

TEST(ModelArtifact, SaveLoadRoundtripOnDisk) {
  const std::string dir = testing::TempDir() + "/ansv_roundtrip";
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string path = dir + "/model.ansv";
  ASSERT_TRUE(SaveModelArtifact(VersionedArtifact(5), path).ok());
  EXPECT_FALSE(Env::Default()->FileExists(path + ".tmp"));  // atomic write
  StatusOr<std::shared_ptr<const ModelSnapshot>> snapshot =
      ModelSnapshot::Load(path, 5);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot.value()->version(), 5u);
  EXPECT_EQ(snapshot.value()->source(), path);
  EXPECT_EQ(snapshot.value()->anomaly()[0], 5.0);
}

TEST(ModelArtifact, CorruptionIsRejected) {
  const std::string good = SerializeModelArtifact(VersionedArtifact(1));
  {  // bad magic
    std::string bytes = good;
    bytes[0] = 'X';
    EXPECT_FALSE(ParseModelArtifact(bytes, "mem").ok());
  }
  {  // unsupported version
    std::string bytes = good;
    bytes[4] = 9;
    auto parsed = ParseModelArtifact(bytes, "mem");
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find(
                  "unsupported model artifact version 9"),
              std::string::npos);
  }
  {  // payload bit flips -> CRC
    for (size_t pos = 20; pos < good.size(); pos += 97) {
      std::string bytes = good;
      bytes[pos] ^= 0x40;
      auto parsed = ParseModelArtifact(bytes, "mem");
      ASSERT_FALSE(parsed.ok()) << "bit flip at " << pos << " accepted";
      EXPECT_NE(parsed.status().message().find("CRC mismatch"),
                std::string::npos);
    }
  }
  {  // truncation at every boundary class
    for (size_t keep : {size_t{0}, size_t{10}, size_t{19}, good.size() / 2,
                        good.size() - 1}) {
      EXPECT_FALSE(ParseModelArtifact(good.substr(0, keep), "mem").ok())
          << "prefix of " << keep << " accepted";
    }
  }
  {  // trailing bytes
    EXPECT_FALSE(ParseModelArtifact(good + "tail", "mem").ok());
  }
}

TEST(ModelArtifact, HugeDeclaredCountsRejectedWithoutAllocating) {
  // A 32-byte forgery declaring 2^27 nodes must fail on the bounds/underflow
  // checks, not OOM. (CRC is forged to pass so the count checks are what's
  // being exercised — build the payload, then wrap it in a valid envelope.)
  std::string payload;
  PutScalarLe<uint32_t>(&payload, 1u << 27);  // num_nodes (within kMaxNodes)
  PutScalarLe<uint32_t>(&payload, 1u << 15);  // embed_dim (within kMaxDim)
  PutScalarLe<uint32_t>(&payload, 0);         // num_classes
  PutScalarLe<int32_t>(&payload, 1 << 27);    // z rows
  PutScalarLe<int32_t>(&payload, 1 << 15);    // z cols
  std::string file;
  file.append("ANSV");
  PutScalarLe<uint32_t>(&file, 1);
  PutScalarLe<uint64_t>(&file, payload.size());
  PutScalarLe<uint32_t>(&file, Crc32(payload.data(), payload.size()));
  file += payload;
  auto parsed = ParseModelArtifact(file, "forged");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("truncated"), std::string::npos);
}

TEST(ModelArtifact, OutOfRangeCommunityIdRejected) {
  ModelArtifact artifact = VersionedArtifact(1);
  artifact.community[3] = kDim;  // valid ids are [0, embed_dim)
  auto parsed =
      ParseModelArtifact(SerializeModelArtifact(artifact), "mem");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("community id"), std::string::npos);
}

TEST(ModelArtifact, BuildDerivesCommunitiesAndScores) {
  Graph graph = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  graph.SetLabels({0, 0, 1, 1});
  Matrix z(4, 2);
  z(0, 0) = 3.0; z(0, 1) = 0.0;   // argmax 0
  z(1, 0) = 0.0; z(1, 1) = 3.0;   // argmax 1
  z(2, 0) = 1.0; z(2, 1) = 1.0;   // tie -> lowest index 0
  z(3, 0) = 0.0; z(3, 1) = 5.0;   // argmax 1
  const ModelArtifact artifact =
      BuildModelArtifact(graph, z, RowSoftmax(z), 7);
  EXPECT_EQ(artifact.community, (std::vector<int32_t>{0, 1, 0, 1}));
  EXPECT_EQ(artifact.num_classes, 2);
  EXPECT_EQ(artifact.proba.rows(), 4);
  EXPECT_EQ(artifact.proba.cols(), 2);
  ASSERT_EQ(artifact.anomaly.size(), 4u);
  // The uniform (tied) row has maximal membership entropy.
  for (int i : {0, 1, 3})
    EXPECT_GT(artifact.anomaly[2], artifact.anomaly[i]);
}

}  // namespace
}  // namespace aneci::serve

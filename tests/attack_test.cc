#include <gtest/gtest.h>

#include <set>

#include "attack/dice.h"
#include "attack/fga.h"
#include "attack/nettack.h"
#include "attack/random_attack.h"
#include "attack/surrogate.h"
#include "data/sbm.h"
#include "util/rng.h"

namespace aneci {
namespace {

Dataset MakeToy(uint64_t seed) {
  Dataset d;
  SbmOptions opt;
  opt.num_nodes = 150;
  opt.num_classes = 3;
  opt.num_edges = 700;
  opt.intra_fraction = 0.9;
  opt.attribute_dim = 30;
  opt.words_per_node = 6;
  opt.topic_words_per_class = 10;
  Rng rng(seed);
  d.name = "toy";
  d.graph = GenerateSbm(opt, rng);
  MakePlanetoidSplit(d.graph, 10, 30, 60, rng, &d);
  return d;
}

TEST(RandomAttackTest, AddsRequestedEdgeCount) {
  Dataset d = MakeToy(1);
  Rng rng(2);
  RandomAttackResult res = RandomAttack(d.graph, 0.2, rng);
  const int expected = static_cast<int>(0.2 * d.graph.num_edges());
  EXPECT_EQ(static_cast<int>(res.fake_edges.size()), expected);
  EXPECT_EQ(res.attacked.num_edges(), d.graph.num_edges() + expected);
}

TEST(RandomAttackTest, FakeEdgesDisjointFromOriginal) {
  Dataset d = MakeToy(3);
  Rng rng(4);
  RandomAttackResult res = RandomAttack(d.graph, 0.3, rng);
  for (const Edge& e : res.fake_edges) {
    EXPECT_FALSE(d.graph.HasEdge(e.u, e.v));
    EXPECT_TRUE(res.attacked.HasEdge(e.u, e.v));
  }
}

TEST(RandomAttackTest, ZeroDeltaIsNoop) {
  Dataset d = MakeToy(5);
  Rng rng(6);
  RandomAttackResult res = RandomAttack(d.graph, 0.0, rng);
  EXPECT_TRUE(res.fake_edges.empty());
  EXPECT_EQ(res.attacked.num_edges(), d.graph.num_edges());
}

TEST(Dice, DeletesIntraAddsInterEdges) {
  Dataset d = MakeToy(30);
  Rng rng(31);
  DiceOptions opt;
  opt.budget = 0.2;
  DiceResult res = DiceAttack(d.graph, opt, rng);
  EXPECT_GT(res.edges_deleted, 0);
  EXPECT_GT(res.edges_added, 0);
  // Every deleted edge was intra-class; every added edge is inter-class.
  for (const Edge& e : d.graph.edges()) {
    if (!res.attacked.HasEdge(e.u, e.v))
      EXPECT_EQ(d.graph.labels()[e.u], d.graph.labels()[e.v]);
  }
  for (const Edge& e : res.attacked.edges()) {
    if (!d.graph.HasEdge(e.u, e.v))
      EXPECT_NE(d.graph.labels()[e.u], d.graph.labels()[e.v]);
  }
}

TEST(Dice, BudgetRespected) {
  Dataset d = MakeToy(32);
  Rng rng(33);
  DiceOptions opt;
  opt.budget = 0.1;
  DiceResult res = DiceAttack(d.graph, opt, rng);
  const int budget = static_cast<int>(0.1 * d.graph.num_edges());
  EXPECT_LE(res.edges_deleted + res.edges_added, budget + 1);
}

TEST(Dice, ReducesMeasuredHomophily) {
  Dataset d = MakeToy(34);
  Rng rng(35);
  auto homophily = [&](const Graph& g) {
    int intra = 0;
    for (const Edge& e : g.edges())
      if (d.graph.labels()[e.u] == d.graph.labels()[e.v]) ++intra;
    return static_cast<double>(intra) / g.num_edges();
  };
  DiceOptions opt;
  opt.budget = 0.3;
  DiceResult res = DiceAttack(d.graph, opt, rng);
  EXPECT_LT(homophily(res.attacked), homophily(d.graph));
}

TEST(Surrogate, FitsAndPredictsAboveChance) {
  Dataset d = MakeToy(7);
  Rng rng(8);
  SurrogateModel model;
  model.Fit(d.graph, d, rng);
  Matrix logits = model.Logits(d.graph);
  int correct = 0;
  for (int i : d.test_idx) {
    const double* row = logits.RowPtr(i);
    int best = 0;
    for (int c = 1; c < logits.cols(); ++c)
      if (row[c] > row[best]) best = c;
    correct += best == d.graph.labels()[i];
  }
  EXPECT_GT(static_cast<double>(correct) / d.test_idx.size(), 0.5);
}

TEST(Surrogate, LocalLogitsMatchFullLogits) {
  Dataset d = MakeToy(9);
  Rng rng(10);
  SurrogateModel model;
  model.Fit(d.graph, d, rng);
  Matrix full = model.Logits(d.graph);
  for (int node : {0, 5, 42, 149}) {
    const std::vector<double> local = model.LogitsForNode(d.graph, node);
    for (int c = 0; c < full.cols(); ++c)
      EXPECT_NEAR(local[c], full(node, c), 1e-9);
  }
}

TEST(Surrogate, TargetSelectionPrefersHighDegreeTestNodes) {
  Dataset d = MakeToy(11);
  Rng rng(12);
  std::vector<int> targets = SelectAttackTargets(d, 5, 10, rng);
  EXPECT_GE(targets.size(), 5u);
  EXPECT_LE(targets.size(), 10u);
  std::set<int> test_set(d.test_idx.begin(), d.test_idx.end());
  for (int t : targets) EXPECT_TRUE(test_set.count(t));
}

TEST(Fga, PerturbsEdgesAroundTargets) {
  Dataset d = MakeToy(13);
  Rng rng(14);
  std::vector<int> targets = SelectAttackTargets(d, 3, 5, rng);
  FgaOptions opt;
  opt.perturbations_per_target = 2;
  Graph attacked = FgaAttack(d, targets, opt, rng);
  // Edge set changed and every change touches a target.
  int changed = 0;
  std::set<Edge> before(d.graph.edges().begin(), d.graph.edges().end());
  std::set<Edge> after(attacked.edges().begin(), attacked.edges().end());
  std::set<int> target_set(targets.begin(), targets.end());
  for (const Edge& e : after) {
    if (!before.count(e)) {
      ++changed;
      EXPECT_TRUE(target_set.count(e.u) || target_set.count(e.v));
    }
  }
  for (const Edge& e : before) {
    if (!after.count(e)) {
      ++changed;
      EXPECT_TRUE(target_set.count(e.u) || target_set.count(e.v));
    }
  }
  EXPECT_GT(changed, 0);
}

TEST(Fga, DegradesSurrogateMarginOnTargets) {
  Dataset d = MakeToy(15);
  Rng rng(16);
  std::vector<int> targets = SelectAttackTargets(d, 5, 8, rng);
  SurrogateModel clean_model;
  clean_model.Fit(d.graph, d, rng);

  FgaOptions opt;
  opt.perturbations_per_target = 3;
  Graph attacked = FgaAttack(d, targets, opt, rng);

  // Margin under the *same* weights drops on attacked structure.
  double clean_margin = 0.0, attacked_margin = 0.0;
  for (int t : targets) {
    const int y = d.graph.labels()[t];
    auto margin = [&](const Graph& g) {
      const std::vector<double> z = clean_model.LogitsForNode(g, t);
      double other = -1e300;
      for (size_t c = 0; c < z.size(); ++c)
        if (static_cast<int>(c) != y) other = std::max(other, z[c]);
      return z[y] - other;
    };
    clean_margin += margin(d.graph);
    attacked_margin += margin(attacked);
  }
  EXPECT_LT(attacked_margin, clean_margin);
}

TEST(Nettack, DegradesSurrogateMarginMoreGreedily) {
  Dataset d = MakeToy(17);
  Rng rng(18);
  std::vector<int> targets = SelectAttackTargets(d, 4, 6, rng);

  NettackOptions opt;
  opt.perturbations_per_target = 3;
  opt.candidate_sample = 60;
  Graph attacked = NettackAttack(d, targets, opt, rng);
  EXPECT_NE(attacked.num_edges(), 0);

  SurrogateModel model;
  Rng rng2(19);
  model.Fit(d.graph, d, rng2);
  double clean_margin = 0.0, attacked_margin = 0.0;
  for (int t : targets) {
    const int y = d.graph.labels()[t];
    auto margin = [&](const Graph& g) {
      const std::vector<double> z = model.LogitsForNode(g, t);
      double other = -1e300;
      for (size_t c = 0; c < z.size(); ++c)
        if (static_cast<int>(c) != y) other = std::max(other, z[c]);
      return z[y] - other;
    };
    clean_margin += margin(d.graph);
    attacked_margin += margin(attacked);
  }
  EXPECT_LT(attacked_margin, clean_margin);
}

TEST(Nettack, RespectsPerturbationBudget) {
  Dataset d = MakeToy(20);
  Rng rng(21);
  std::vector<int> targets = SelectAttackTargets(d, 2, 3, rng);
  NettackOptions opt;
  opt.perturbations_per_target = 2;
  opt.candidate_sample = 40;
  Graph attacked = NettackAttack(d, targets, opt, rng);

  std::set<Edge> before(d.graph.edges().begin(), d.graph.edges().end());
  std::set<Edge> after(attacked.edges().begin(), attacked.edges().end());
  int flips = 0;
  for (const Edge& e : after)
    if (!before.count(e)) ++flips;
  for (const Edge& e : before)
    if (!after.count(e)) ++flips;
  EXPECT_LE(flips,
            opt.perturbations_per_target * static_cast<int>(targets.size()));
}

}  // namespace
}  // namespace aneci

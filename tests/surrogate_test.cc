// Coverage for src/attack/surrogate.cc: the frozen-normalisation edge
// gradient that FGA ranks candidate flips by (and NETTACK's surrogate shares
// weights with) is checked against central finite differences of the exact
// loss it linearises, and the whole surrogate is checked to be bitwise
// deterministic at any ANECI_THREADS value.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "attack/surrogate.h"
#include "data/sbm.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aneci {
namespace {

Dataset MakeToy(uint64_t seed) {
  Dataset d;
  SbmOptions opt;
  opt.num_nodes = 40;
  opt.num_classes = 3;
  opt.num_edges = 120;
  opt.intra_fraction = 0.9;
  opt.attribute_dim = 20;
  opt.words_per_node = 5;
  opt.topic_words_per_class = 7;
  Rng rng(seed);
  d.name = "toy";
  d.graph = GenerateSbm(opt, rng);
  MakePlanetoidSplit(d.graph, 5, 6, 12, rng, &d);
  return d;
}

/// Dense S~ = D^{-1/2} (A + I) D^{-1/2} of `graph`.
Matrix DenseNormalizedAdjacency(const Graph& graph) {
  const int n = graph.num_nodes();
  Matrix s(n, n);
  auto inv_sqrt = [&](int v) {
    return 1.0 / std::sqrt(static_cast<double>(graph.Degree(v)) + 1.0);
  };
  for (int i = 0; i < n; ++i) {
    s(i, i) = inv_sqrt(i) * inv_sqrt(i);
    for (int j : graph.Neighbors(i)) s(i, j) = inv_sqrt(i) * inv_sqrt(j);
  }
  return s;
}

/// Cross-entropy of the target's logit row under S(w) = S~ + w * delta_tv,
/// where delta_tv carries the frozen normalisation 1/sqrt((d_t+1)(d_v+1)) at
/// entries (t,v) and (v,t). This is exactly the function whose derivative at
/// w = 0 SurrogateEdgeGradient claims to be.
double FrozenLoss(const Matrix& s_norm, const Matrix& r, const Graph& graph,
                  int target, int v, int label, double w) {
  Matrix s = s_norm;
  const double delta =
      w / std::sqrt((graph.Degree(target) + 1.0) * (graph.Degree(v) + 1.0));
  s(target, v) += delta;
  s(v, target) += delta;
  const Matrix z = MatMul(s, MatMul(s, r));
  const int k = r.cols();
  double mx = z(target, 0);
  for (int c = 1; c < k; ++c) mx = std::max(mx, z(target, c));
  double sum = 0.0;
  for (int c = 0; c < k; ++c) sum += std::exp(z(target, c) - mx);
  return -(z(target, label) - mx - std::log(sum));
}

TEST(SurrogateEdgeGradientTest, MatchesFiniteDifferences) {
  Dataset d = MakeToy(7);
  Rng rng(11);
  SurrogateModel model;
  model.Fit(d.graph, d, rng);

  const int target = d.test_idx[0];
  const int label = d.graph.labels()[target];
  const std::vector<double> grad =
      SurrogateEdgeGradient(model, d.graph, target, label);
  ASSERT_EQ(static_cast<int>(grad.size()), d.graph.num_nodes());
  EXPECT_EQ(grad[target], 0.0);

  const Matrix s_norm = DenseNormalizedAdjacency(d.graph);
  const double h = 1e-5;
  int existing_checked = 0, absent_checked = 0;
  for (int v = 0; v < d.graph.num_nodes(); ++v) {
    if (v == target) continue;
    const double fd = (FrozenLoss(s_norm, model.projected(), d.graph, target,
                                  v, label, h) -
                       FrozenLoss(s_norm, model.projected(), d.graph, target,
                                  v, label, -h)) /
                      (2.0 * h);
    EXPECT_NEAR(grad[v], fd, 1e-6 + 1e-5 * std::fabs(fd)) << "v=" << v;
    (d.graph.HasEdge(target, v) ? existing_checked : absent_checked)++;
  }
  // The check must have exercised both flip directions.
  EXPECT_GT(existing_checked, 0);
  EXPECT_GT(absent_checked, 0);
}

TEST(SurrogateEdgeGradientTest, NonTrivialAndFlipDirectionsAvailable) {
  Dataset d = MakeToy(13);
  Rng rng(17);
  SurrogateModel model;
  model.Fit(d.graph, d, rng);
  const int target = d.test_idx[1];
  const std::vector<double> grad =
      SurrogateEdgeGradient(model, d.graph, target,
                            d.graph.labels()[target]);
  double mx = 0.0;
  for (double g : grad) mx = std::max(mx, std::fabs(g));
  EXPECT_GT(mx, 0.0);
}

TEST(SurrogateDeterminismTest, FitAndGradientBitwiseEqualAcrossThreadCounts) {
  Dataset d = MakeToy(23);

  auto run = [&](int threads) {
    ScopedNumThreads scoped(threads);
    Rng rng(29);
    SurrogateModel model;
    model.Fit(d.graph, d, rng);
    std::vector<double> out(model.weights().data(),
                            model.weights().data() +
                                static_cast<size_t>(model.weights().rows()) *
                                    model.weights().cols());
    for (int t : {d.test_idx[0], d.test_idx[1]}) {
      const std::vector<double> grad =
          SurrogateEdgeGradient(model, d.graph, t, d.graph.labels()[t]);
      out.insert(out.end(), grad.begin(), grad.end());
    }
    return out;
  };

  const std::vector<double> serial = run(1);
  const std::vector<double> four = run(4);
  const std::vector<double> three = run(3);
  ASSERT_EQ(serial.size(), four.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], four[i]) << "i=" << i;    // bitwise, not approx
    EXPECT_EQ(serial[i], three[i]) << "i=" << i;
  }
}

}  // namespace
}  // namespace aneci

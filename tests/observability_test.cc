// Tests for the observability layer (util/metrics.h, util/trace.h) and the
// instrumented Embedder entry point: sharded counters under real
// ParallelFor concurrency (run under TSan in CI), histogram bucket edges,
// the determinism contract across thread counts, ring eviction, span
// nesting, the golden stats report, and observer forwarding through
// Embedder::Embed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "data/sbm.h"
#include "embed/embedder.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace aneci {
namespace {

TEST(CounterTest, ShardedAddsSurviveConcurrency) {
  Counter* c = MetricsRegistry::Global().GetCounter("test/concurrent_adds");
  c->Reset();
  ScopedNumThreads guard(4);
  ParallelFor(0, 100000, 64, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) c->Increment();
  });
  EXPECT_EQ(c->Value(), 100000u);
}

TEST(CounterTest, ValueIsInvariantToThreadCount) {
  Counter* c = MetricsRegistry::Global().GetCounter("test/thread_invariance");
  for (int threads : {1, 4, 7}) {
    c->Reset();
    ScopedNumThreads guard(threads);
    ParallelFor(0, 9973, 8, [&](int64_t begin, int64_t end) {
      c->Add(static_cast<uint64_t>(end - begin));
    });
    EXPECT_EQ(c->Value(), 9973u) << threads << " threads";
  }
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test/bucket_edges", {1.0, 10.0});
  h->Reset();
  // value <= bound lands in that bucket; above the last bound overflows.
  h->Observe(0.5);
  h->Observe(1.0);   // exactly on the first edge -> first bucket
  h->Observe(5.0);
  h->Observe(10.0);  // exactly on the last edge -> second bucket
  h->Observe(100.0);
  EXPECT_EQ(h->Count(), 5u);
  EXPECT_EQ(h->BucketCounts(), (std::vector<uint64_t>{2, 2, 1}));
  EXPECT_DOUBLE_EQ(h->Min(), 0.5);
  EXPECT_DOUBLE_EQ(h->Max(), 100.0);
  EXPECT_DOUBLE_EQ(h->Sum(), 116.5);
}

TEST(HistogramTest, ConcurrentObservationsLoseNothing) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test/concurrent_observe", {100.0});
  h->Reset();
  ScopedNumThreads guard(4);
  ParallelFor(0, 10000, 16, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i)
      h->Observe(static_cast<double>(i % 7));
  });
  EXPECT_EQ(h->Count(), 10000u);
  EXPECT_EQ(h->BucketCounts()[0], 10000u);
}

TEST(HistogramQuantileTest, ExactAtExtremesInterpolatedBetween) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test/quantile_basic", {1.0, 10.0, 100.0});
  h->Reset();
  EXPECT_DOUBLE_EQ(HistogramQuantile(*h, 0.5), 0.0);  // empty -> 0
  for (int i = 1; i <= 100; ++i) h->Observe(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(HistogramQuantile(*h, 0.0), 1.0);    // exact Min
  EXPECT_DOUBLE_EQ(HistogramQuantile(*h, 1.0), 100.0);  // exact Max
  // p50: rank 50 of 100 lands in the (10, 100] bucket (counts 1, 9, 90);
  // linear interpolation inside it gives 10 + (40/90) * 90 = 50.
  EXPECT_NEAR(HistogramQuantile(*h, 0.5), 50.0, 1.0);
  // Quantiles are monotone in q.
  EXPECT_LE(HistogramQuantile(*h, 0.5), HistogramQuantile(*h, 0.9));
  EXPECT_LE(HistogramQuantile(*h, 0.9), HistogramQuantile(*h, 0.99));
}

TEST(HistogramQuantileTest, ClampedToObservedRange) {
  // Regression: every observation below the first bound once produced
  // p50 > Max (interpolating across the whole first bucket). The estimate
  // must stay inside [Min, Max].
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test/quantile_clamp", {0.01, 1.0});
  h->Reset();
  h->Observe(0.003);
  h->Observe(0.004);
  h->Observe(0.005);
  for (double q : {0.25, 0.5, 0.9, 0.99}) {
    const double estimate = HistogramQuantile(*h, q);
    EXPECT_GE(estimate, 0.003) << "q=" << q;
    EXPECT_LE(estimate, 0.005) << "q=" << q;
  }
}

TEST(HistogramQuantileTest, OverflowBucketUsesObservedMax) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test/quantile_overflow", {1.0});
  h->Reset();
  h->Observe(5.0);
  h->Observe(7.0);  // both in the overflow bucket
  const double p99 = HistogramQuantile(*h, 0.99);
  EXPECT_GE(p99, 1.0);
  EXPECT_LE(p99, 7.0);
}

TEST(TelemetryRingTest, EvictsOldestAndCountsDrops) {
  TelemetryRing ring(4);
  for (int i = 0; i < 6; ++i) ring.Append("{\"i\":" + std::to_string(i) + "}");
  const std::vector<std::string> lines = ring.Lines();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines.front(), "{\"i\":2}");
  EXPECT_EQ(lines.back(), "{\"i\":5}");
  EXPECT_EQ(ring.dropped(), 2u);
  ring.Reset();
  EXPECT_TRUE(ring.Lines().empty());
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(RegistryTest, ReRegistrationReturnsTheSameMetric) {
  Counter* a = MetricsRegistry::Global().GetCounter("test/reregister");
  Counter* b = MetricsRegistry::Global().GetCounter(
      "test/reregister", MetricClass::kScheduling);  // class of first reg wins
  EXPECT_EQ(a, b);
  Gauge* g1 = MetricsRegistry::Global().GetGauge("test/gauge");
  Gauge* g2 = MetricsRegistry::Global().GetGauge("test/gauge");
  EXPECT_EQ(g1, g2);
  TelemetryRing* r1 = MetricsRegistry::Global().GetRing("test/ring", 8);
  TelemetryRing* r2 = MetricsRegistry::Global().GetRing("test/ring", 9999);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1->capacity(), 8u);
}

TEST(RegistryTest, DisabledRegistryRecordsNothing) {
  Counter* c = MetricsRegistry::Global().GetCounter("test/disabled_counter");
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("test/disabled_hist", {1.0});
  TelemetryRing* ring = MetricsRegistry::Global().GetRing("test/disabled_ring");
  c->Reset();
  h->Reset();
  ring->Reset();
  MetricsRegistry::Global().set_enabled(false);
  c->Increment();
  h->Observe(0.5);
  ring->Append("{}");
  MetricsRegistry::Global().set_enabled(true);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_TRUE(ring->Lines().empty());
}

TEST(TraceTest, SpansNestIntoSlashPaths) {
  TraceRegistry::Global().ResetValues();
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
    }
    {
      TraceSpan inner("inner");
    }
  }
  bool saw_outer = false, saw_inner = false;
  for (const SpanStat& s : TraceRegistry::Global().Snapshot()) {
    if (s.path == "outer") {
      saw_outer = true;
      EXPECT_EQ(s.count, 1u);
    }
    if (s.path == "outer/inner") {
      saw_inner = true;
      EXPECT_EQ(s.count, 2u);
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

/// Runs the instrumented kernel mix once at the given thread count and
/// returns the deterministic-class snapshot lines.
std::vector<std::string> DetLinesForWorkload(int threads) {
  MetricsRegistry::Global().ResetValues();
  TraceRegistry::Global().ResetValues();
  ScopedNumThreads guard(threads);
  Rng rng(17);
  const Matrix a = Matrix::RandomNormal(48, 32, 1.0, rng);
  const Matrix b = Matrix::RandomNormal(32, 24, 1.0, rng);
  Matrix c = MatMul(a, b);
  std::vector<Triplet> trips;
  for (int i = 0; i < 40; ++i) trips.push_back({i, (i * 7) % 40, 1.0});
  const SparseMatrix s = SparseMatrix::FromTriplets(40, 40, trips);
  Matrix d = s.Multiply(Matrix::RandomNormal(40, 8, 1.0, rng));
  SparseMatrix p = s.MultiplySparse(s);
  (void)c;
  (void)d;
  (void)p;
  std::vector<std::string> det;
  for (const std::string& line :
       MetricsRegistry::Global().SnapshotJsonl()) {
    if (line.find("\"class\":\"det\"") != std::string::npos)
      det.push_back(line);
  }
  return det;
}

TEST(DeterminismTest, DetSnapshotLinesAreByteIdenticalAcrossThreadCounts) {
  const std::vector<std::string> at1 = DetLinesForWorkload(1);
  const std::vector<std::string> at4 = DetLinesForWorkload(4);
  const std::vector<std::string> at7 = DetLinesForWorkload(7);
  ASSERT_FALSE(at1.empty());
  EXPECT_EQ(at1, at4);
  EXPECT_EQ(at1, at7);
}

TEST(StatsReportTest, GoldenReportWithTimingsZeroed) {
  const std::string jsonl =
      "{\"type\":\"epoch\",\"class\":\"det\",\"epoch\":0,\"loss\":2.5}\n"
      "{\"type\":\"epoch\",\"class\":\"det\",\"epoch\":4,\"loss\":1.25}\n"
      "{\"type\":\"event\",\"class\":\"det\",\"name\":\"early_stop\","
      "\"epoch\":4}\n"
      "{\"type\":\"counter\",\"name\":\"train/epochs\",\"class\":\"det\","
      "\"value\":5}\n"
      "{\"type\":\"counter\",\"name\":\"threadpool/helper_tasks\","
      "\"class\":\"sched\",\"value\":3}\n"
      "{\"type\":\"gauge\",\"name\":\"train/last_loss\",\"class\":\"det\","
      "\"value\":1.25}\n"
      "{\"type\":\"histogram\",\"name\":\"checkpoint/save_ms\","
      "\"class\":\"sched\",\"count\":2,\"sum\":3.5,\"min\":1,\"max\":2.5,"
      "\"bounds\":[1,10],\"buckets\":[1,1,0]}\n"
      "{\"type\":\"span_count\",\"name\":\"train/aneci\",\"class\":\"det\","
      "\"value\":1}\n"
      "{\"type\":\"span_time\",\"name\":\"train/aneci\",\"class\":\"sched\","
      "\"total_ms\":12.5,\"min_ms\":12.5,\"max_ms\":12.5}\n";

  StatusOr<std::string> report = FormatStatsReport(jsonl, /*zero_timings=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  auto row = [](const std::string& name, const std::string& value,
                const std::string& suffix = "") {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %-44s %12s%s\n", name.c_str(),
                  value.c_str(), suffix.c_str());
    return std::string(buf);
  };
  std::string expected =
      "metrics report: 2 counters, 1 gauges, 1 histograms, 1 spans, "
      "2 epoch records\n";
  expected += "\ncounters\n";
  expected += row("train/epochs", "5");
  expected += row("threadpool/helper_tasks", "3", "  [sched]");
  expected += "\ngauges\n";
  expected += row("train/last_loss", "1.25");
  expected += "\nhistograms\n";
  {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %-44s count=%s sum=%s%s\n",
                  "checkpoint/save_ms", "2", "0", "  [sched]");
    expected += buf;
  }
  expected += "\nspans (count, total ms; timings zeroed)\n";
  {
    char buf[192];
    std::snprintf(buf, sizeof(buf), "  %-44s %10s %12.3f\n", "train/aneci",
                  "1", 0.0);
    expected += buf;
  }
  expected +=
      "\ntraining: 2 epoch records (epoch 0 loss 2.5 -> epoch 4 loss 1.25)\n";
  expected += "\nevents: 1\n";
  expected += row("early_stop", "epoch 4");

  EXPECT_EQ(report.value(), expected);
}

TEST(StatsReportTest, RejectsNonJsonlInput) {
  EXPECT_FALSE(FormatStatsReport("not json\n", false).ok());
  EXPECT_FALSE(FormatStatsReport("{\"no_type\":1}\n", false).ok());
}

// --- instrumented Embedder entry point ---------------------------------------

class CountingObserver : public TrainObserver {
 public:
  void OnEpoch(int epoch, double loss) override {
    ++epochs;
    last_epoch = epoch;
    last_loss = loss;
  }
  int epochs = 0;
  int last_epoch = -1;
  double last_loss = 0.0;
};

Graph TinyGraph() {
  SbmOptions opt;
  opt.num_nodes = 60;
  opt.num_classes = 2;
  opt.num_edges = 180;
  opt.intra_fraction = 0.9;
  opt.attribute_dim = 16;
  opt.words_per_node = 4;
  Rng rng(23);
  return GenerateSbm(opt, rng);
}

TEST(EmbedderInstrumentation, EmbedCountsCallsEpochsAndSpans) {
  Counter* calls = MetricsRegistry::Global().GetCounter("embed/calls");
  Counter* epochs = MetricsRegistry::Global().GetCounter("embed/epochs");
  const uint64_t calls_before = calls->Value();
  const uint64_t epochs_before = epochs->Value();
  TraceRegistry::Global().ResetValues();

  auto embedder = CreateEmbedder("GAE");
  ASSERT_TRUE(embedder.ok());
  Rng rng(5);
  CountingObserver observer;
  EmbedOptions eo;
  eo.rng = &rng;
  eo.epochs = 7;
  eo.observer = &observer;
  Matrix z = embedder.value()->Embed(TinyGraph(), eo);
  EXPECT_GT(z.cols(), 0);

  // The caller's observer saw every epoch, and the registry agrees.
  EXPECT_EQ(observer.epochs, 7);
  EXPECT_EQ(observer.last_epoch, 6);
  EXPECT_TRUE(std::isfinite(observer.last_loss));
  EXPECT_EQ(calls->Value(), calls_before + 1);
  EXPECT_EQ(epochs->Value(), epochs_before + 7);

  bool saw_span = false;
  for (const SpanStat& s : TraceRegistry::Global().Snapshot())
    if (s.path == "embed/GAE") saw_span = true;
  EXPECT_TRUE(saw_span);
}

TEST(EmbedderInstrumentation, EpochsOverrideReachesEveryGradientMethod) {
  // Every gradient-trained baseline must respect eo.epochs (a method whose
  // loop still reads its own config would call the observer a different
  // number of times — the regression this guards against). Sampling methods
  // (DeepWalk, LINE, ONE) rescale the budget and closed-form methods ignore
  // it, so only the per-epoch trainers are listed here.
  const Graph g = TinyGraph();
  for (const std::string name :
       {"GAE", "VGAE", "DGI", "DANE", "DONE", "ADONE", "AGE", "GraphSage",
        "Dominant", "AnomalyDAE", "SDNE", "GATE"}) {
    auto embedder = CreateEmbedder(name);
    ASSERT_TRUE(embedder.ok()) << name;
    Rng rng(11);
    CountingObserver observer;
    EmbedOptions eo;
    eo.rng = &rng;
    eo.epochs = 3;
    eo.observer = &observer;
    (void)embedder.value()->Embed(g, eo);
    EXPECT_EQ(observer.epochs, 3) << name;
  }
}

}  // namespace
}  // namespace aneci

// Serial-equivalence property tests for the parallelized kernels: for
// randomized shapes/sparsities, outputs at ANECI_THREADS in {2, 7} must be
// BIT-identical to the serial path (ANECI_THREADS=1). Exact == is valid —
// not approximate — because every kernel either writes disjoint output
// slices with unchanged per-element operation order, or merges per-chunk
// partials in a fixed chunk order independent of the thread count.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "analysis/tsne.h"
#include "graph/proximity.h"
#include "linalg/kmeans.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aneci {
namespace {

const int kThreadSettings[] = {2, 7};

void ExpectBitEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), sizeof(double) * a.size()), 0)
      << what << ": parallel result differs bitwise from serial";
}

void ExpectBitEqual(const SparseMatrix& a, const SparseMatrix& b,
                    const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  ASSERT_EQ(a.nnz(), b.nnz()) << what;
  EXPECT_EQ(a.row_ptr(), b.row_ptr()) << what;
  EXPECT_EQ(a.col_idx(), b.col_idx()) << what;
  EXPECT_EQ(std::memcmp(a.values().data(), b.values().data(),
                        sizeof(double) * a.nnz()),
            0)
      << what << ": parallel values differ bitwise from serial";
}

Matrix RandomMatrix(int rows, int cols, Rng& rng, double zero_fraction) {
  Matrix m = Matrix::RandomNormal(rows, cols, 1.0, rng);
  // Inject exact zeros to exercise the av == 0.0 skip branches.
  for (int64_t i = 0; i < m.size(); ++i)
    if (rng.NextBool(zero_fraction)) m.data()[i] = 0.0;
  return m;
}

SparseMatrix RandomSparse(int rows, int cols, double density, Rng& rng) {
  std::vector<Triplet> trips;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      if (rng.NextBool(density)) trips.push_back({r, c, rng.Uniform(-2, 2)});
  return SparseMatrix::FromTriplets(rows, cols, trips);
}

// Runs `compute` serially, then at each threaded setting, comparing each
// dense result bitwise against the serial one.
void CheckDense(const std::function<Matrix()>& compute, const char* what) {
  Matrix serial;
  {
    ScopedNumThreads guard(1);
    serial = compute();
  }
  for (int threads : kThreadSettings) {
    ScopedNumThreads guard(threads);
    ExpectBitEqual(compute(), serial, what);
  }
}

void CheckSparse(const std::function<SparseMatrix()>& compute,
                 const char* what) {
  SparseMatrix serial;
  {
    ScopedNumThreads guard(1);
    serial = compute();
  }
  for (int threads : kThreadSettings) {
    ScopedNumThreads guard(threads);
    ExpectBitEqual(compute(), serial, what);
  }
}

TEST(ParallelKernels, MatMulMatchesSerialBitwise) {
  Rng shapes(101);
  for (int trial = 0; trial < 8; ++trial) {
    const int m = 1 + static_cast<int>(shapes.NextInt(90));
    const int k = 1 + static_cast<int>(shapes.NextInt(70));
    const int n = 1 + static_cast<int>(shapes.NextInt(80));
    Rng rng(1000 + trial);
    const Matrix a = RandomMatrix(m, k, rng, 0.2);
    const Matrix b = RandomMatrix(k, n, rng, 0.1);
    CheckDense([&] { return MatMul(a, b); }, "MatMul");
  }
}

TEST(ParallelKernels, MatMulTransAMatchesSerialBitwise) {
  Rng shapes(102);
  for (int trial = 0; trial < 8; ++trial) {
    const int k = 1 + static_cast<int>(shapes.NextInt(90));
    const int m = 1 + static_cast<int>(shapes.NextInt(70));
    const int n = 1 + static_cast<int>(shapes.NextInt(60));
    Rng rng(2000 + trial);
    const Matrix a = RandomMatrix(k, m, rng, 0.25);
    const Matrix b = RandomMatrix(k, n, rng, 0.0);
    CheckDense([&] { return MatMulTransA(a, b); }, "MatMulTransA");
  }
}

TEST(ParallelKernels, MatMulTransBMatchesSerialBitwise) {
  Rng shapes(103);
  for (int trial = 0; trial < 8; ++trial) {
    const int m = 1 + static_cast<int>(shapes.NextInt(80));
    const int k = 1 + static_cast<int>(shapes.NextInt(50));
    const int n = 1 + static_cast<int>(shapes.NextInt(90));
    Rng rng(3000 + trial);
    const Matrix a = RandomMatrix(m, k, rng, 0.0);
    const Matrix b = RandomMatrix(n, k, rng, 0.15);
    CheckDense([&] { return MatMulTransB(a, b); }, "MatMulTransB");
  }
}

TEST(ParallelKernels, SpmmMatchesSerialBitwise) {
  Rng shapes(104);
  for (double density : {0.02, 0.15, 0.6}) {
    const int rows = 20 + static_cast<int>(shapes.NextInt(120));
    const int cols = 20 + static_cast<int>(shapes.NextInt(120));
    const int k = 1 + static_cast<int>(shapes.NextInt(40));
    Rng rng(4000 + static_cast<uint64_t>(density * 100));
    const SparseMatrix s = RandomSparse(rows, cols, density, rng);
    const Matrix x = RandomMatrix(cols, k, rng, 0.0);
    const Matrix xt = RandomMatrix(rows, k, rng, 0.0);
    CheckDense([&] { return s.Multiply(x); }, "SparseMatrix::Multiply");
    CheckDense([&] { return s.MultiplyTransposed(xt); },
               "SparseMatrix::MultiplyTransposed");
  }
}

TEST(ParallelKernels, SpGemmAndRowNormalizeMatchSerialBitwise) {
  Rng shapes(105);
  for (double density : {0.03, 0.2}) {
    const int n = 30 + static_cast<int>(shapes.NextInt(100));
    Rng rng(5000 + static_cast<uint64_t>(density * 100));
    const SparseMatrix a = RandomSparse(n, n, density, rng);
    const SparseMatrix b = RandomSparse(n, n, density, rng);
    CheckSparse([&] { return a.MultiplySparse(b); },
                "SparseMatrix::MultiplySparse");
    CheckSparse([&] { return a.MultiplySparse(b, /*drop_tol=*/1e-3); },
                "SparseMatrix::MultiplySparse(drop_tol)");
    CheckSparse([&] { return a.RowNormalizedL1(); },
                "SparseMatrix::RowNormalizedL1");
  }
}

TEST(ParallelKernels, HighOrderProximityMatchesSerialBitwise) {
  Rng rng(106);
  const int n = 80;
  std::vector<Triplet> trips;
  for (int r = 0; r < n; ++r) {
    for (int c = r + 1; c < n; ++c) {
      if (rng.NextBool(0.06)) {
        trips.push_back({r, c, 1.0});
        trips.push_back({c, r, 1.0});
      }
    }
  }
  const SparseMatrix adj = SparseMatrix::FromTriplets(n, n, trips);
  ProximityOptions options;
  options.order = 3;
  options.weights = {1.0, 0.5, 0.25};
  CheckSparse([&] { return HighOrderProximityFromAdjacency(adj, options); },
              "HighOrderProximity");
}

TEST(ParallelKernels, KMeansMatchesSerialBitwise) {
  // Same seed per thread setting: identical assignment, centroids, inertia
  // and rng consumption (empty-cluster reseeds happen in serial sections).
  Rng data_rng(107);
  const Matrix points = Matrix::RandomNormal(400, 12, 1.0, data_rng);
  KMeansOptions options;
  options.max_iterations = 25;
  options.restarts = 2;

  auto run = [&] {
    Rng rng(77);
    return KMeans(points, 5, rng, options);
  };
  KMeansResult serial;
  {
    ScopedNumThreads guard(1);
    serial = run();
  }
  for (int threads : kThreadSettings) {
    ScopedNumThreads guard(threads);
    const KMeansResult parallel = run();
    EXPECT_EQ(parallel.assignment, serial.assignment);
    EXPECT_EQ(parallel.iterations, serial.iterations);
    // Bitwise, not approximate: the chunk-ordered merge is deterministic.
    EXPECT_EQ(std::memcmp(&parallel.inertia, &serial.inertia,
                          sizeof(double)),
              0);
    ExpectBitEqual(parallel.centroids, serial.centroids, "KMeans centroids");
  }
}

TEST(ParallelKernels, TsneMatchesSerialBitwise) {
  Rng data_rng(108);
  const Matrix points = Matrix::RandomNormal(48, 8, 1.0, data_rng);
  TsneOptions options;
  options.iterations = 30;
  options.exaggeration_iters = 10;

  auto run = [&] {
    Rng rng(9);
    return Tsne(points, options, rng);
  };
  Matrix serial;
  {
    ScopedNumThreads guard(1);
    serial = run();
  }
  for (int threads : kThreadSettings) {
    ScopedNumThreads guard(threads);
    ExpectBitEqual(run(), serial, "Tsne");
  }
}

TEST(ParallelKernels, EnvThreadSettingOneForcesSerialPath) {
  // With the pool at size 1 no workers exist, so everything runs on the
  // calling thread; sanity-check a kernel still works there.
  ScopedNumThreads guard(1);
  Rng rng(109);
  const Matrix a = RandomMatrix(17, 9, rng, 0.1);
  const Matrix b = RandomMatrix(9, 13, rng, 0.1);
  const Matrix c = MatMul(a, b);
  for (int i = 0; i < 17; ++i)
    for (int j = 0; j < 13; ++j) {
      double s = 0.0;
      for (int k = 0; k < 9; ++k) s += a(i, k) * b(k, j);
      EXPECT_NEAR(c(i, j), s, 1e-12);
    }
}

}  // namespace
}  // namespace aneci

// Chaos battery for the serving layer's resilience machinery
// (docs/serving.md §6): deterministic socket-fault schedules driven through
// FaultInjectingSocketIo on both sides of the wire, client retry/backoff,
// per-connection and per-request deadlines, connection-cap and
// pending-budget shedding, and graceful drain. The standing invariant the
// sweep enforces: every Call ends in a definite outcome (a response body or
// a typed Status — never a hang), and after Stop() the server holds zero
// connections (active_connections() and the serve/active_connections gauge
// both read 0, i.e. no leaked thread or fd). Run under TSan in CI
// (tools/ci.sh) to also catch the races the invariants miss.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/model_artifact.h"
#include "serve/model_snapshot.h"
#include "serve/service.h"
#include "serve/socket_io.h"
#include "serve/wire.h"
#include "util/env.h"
#include "util/metrics.h"

namespace aneci::serve {
namespace {

constexpr int kNodes = 6;
constexpr int kDim = 4;

ModelArtifact MakeArtifact() {
  Graph graph = Graph::FromEdges(
      kNodes, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  graph.SetLabels({0, 0, 0, 1, 1, 1});
  Matrix z(kNodes, kDim);
  for (int i = 0; i < kNodes; ++i)
    for (int j = 0; j < kDim; ++j) z(i, j) = 0.25 * i - 0.125 * j + 0.0625;
  const Matrix p = RowSoftmax(z);
  return BuildModelArtifact(graph, z, p, /*head_seed=*/77);
}

std::shared_ptr<const ModelSnapshot> MakeSnapshot() {
  return std::make_shared<const ModelSnapshot>(MakeArtifact(), /*version=*/1,
                                               "chaos-artifact");
}

double ActiveConnectionsGaugeValue() {
  return MetricsRegistry::Global()
      .GetGauge("serve/active_connections", MetricClass::kScheduling)
      ->Value();
}

bool HasCode(const std::string& body, const std::string& code) {
  return body.find("\"code\":\"" + code + "\"") != std::string::npos;
}

// --- The chaos sweep --------------------------------------------------------

/// One seeded chaos round: a faulty server transport, a faulty client
/// transport, and a small client fleet hammering it with retries. Returns
/// how many calls ended in a successful response (the rest ended in typed
/// errors or exhausted retries — also definite outcomes).
int RunChaosRound(uint64_t seed) {
  SocketFaultSchedule server_faults;
  server_faults.seed = seed;
  server_faults.short_read = 0.25;     // exercise frame reassembly
  server_faults.delayed_read = 0.15;   // jitter, under the read deadline
  server_faults.delay_ms = 3;
  server_faults.reset_read = 0.05;     // drop connections mid-session
  server_faults.partial_write = 0.05;  // torn responses as seen by clients
  FaultInjectingSocketIo server_io(server_faults);

  SocketFaultSchedule client_faults;
  client_faults.seed = seed ^ 0x9e3779b97f4a7c15ull;
  client_faults.reset_write = 0.10;  // requests die before reaching the wire
  client_faults.short_read = 0.20;
  FaultInjectingSocketIo client_io(client_faults);

  EmbedService service(MakeSnapshot());
  ServerOptions options;
  options.max_connections = 16;
  options.read_deadline_ms = 2000;  // reap stuck peers, tolerate delay_ms
  options.write_deadline_ms = 2000;
  options.max_pending_requests = 32;
  options.drain_timeout_ms = 2000;
  EmbedServer server(&service, options, &server_io);
  EXPECT_TRUE(server.Start(0).ok());

  constexpr int kClients = 4;
  constexpr int kCallsPerClient = 10;
  std::atomic<int> definite{0};
  std::atomic<int> ok_replies{0};
  std::vector<std::thread> fleet;
  fleet.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    fleet.emplace_back([&, c] {
      RetryPolicy policy;
      policy.max_attempts = 5;
      policy.initial_backoff_ms = 1;
      policy.max_backoff_ms = 8;
      policy.jitter_seed = seed * 1000 + static_cast<uint64_t>(c);
      auto client = ServeClient::Connect(server.port(), &client_io);
      for (int i = 0; i < kCallsPerClient; ++i) {
        if (!client.ok()) {
          client = ServeClient::Connect(server.port(), &client_io);
          if (!client.ok()) {
            definite.fetch_add(1);  // typed connect failure is an outcome
            continue;
          }
        }
        const std::string body =
            "{\"op\":\"lookup\",\"id\":" + std::to_string(i % kNodes) + "}";
        StatusOr<std::string> reply =
            client.value().CallWithRetry(body, policy);
        definite.fetch_add(1);
        if (reply.ok() && reply.value().rfind("{\"ok\":true", 0) == 0)
          ok_replies.fetch_add(1);
      }
    });
  }
  for (std::thread& t : fleet) t.join();
  EXPECT_EQ(definite.load(), kClients * kCallsPerClient)
      << "a Call() hung or vanished under seed " << seed;

  server.Stop();
  EXPECT_EQ(server.active_connections(), 0)
      << "leaked connection thread under seed " << seed;
  EXPECT_EQ(ActiveConnectionsGaugeValue(), 0.0);
  EXPECT_GT(server_io.injected_faults() + client_io.injected_faults(), 0)
      << "schedule injected nothing; the round tested only the happy path";
  return ok_replies.load();
}

TEST(ServeChaos, SweepThreeSeedsEveryCallDefiniteNoLeaks) {
  // Three distinct schedules; with retries most calls should still land.
  int total_ok = 0;
  for (const uint64_t seed : {7ull, 1337ull, 0xC0FFEEull})
    total_ok += RunChaosRound(seed);
  EXPECT_GT(total_ok, 0) << "no call ever succeeded under any schedule";
}

// --- Connection-cap admission control (ServerOptions.max_connections) -------

TEST(ServeChaos, OverCapConnectGetsTypedRejectionNotAHang) {
  EmbedService service(MakeSnapshot());
  ServerOptions options;
  options.max_connections = 2;
  EmbedServer server(&service, options);
  ASSERT_TRUE(server.Start(0).ok());

  // Fill the cap. Each Call proves its connection thread is registered.
  auto first = ServeClient::Connect(server.port());
  auto second = ServeClient::Connect(server.port());
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_TRUE(first.value().Call("{\"op\":\"stats\"}").ok());
  ASSERT_TRUE(second.value().Call("{\"op\":\"stats\"}").ok());

  // The cap+1-th connect is answered immediately: one "overloaded" frame,
  // then EOF — a typed rejection, not a hang and not a silent reset.
  auto shed = ServeClient::Connect(server.port());
  ASSERT_TRUE(shed.ok()) << shed.status().message();
  StatusOr<std::string> frame = shed.value().ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  EXPECT_TRUE(HasCode(frame.value(), "overloaded")) << frame.value();
  StatusOr<std::string> after = shed.value().ReadFrame();
  EXPECT_FALSE(after.ok());  // orderly close behind the rejection

  // Capacity frees up once a capped connection finishes.
  ASSERT_TRUE(first.value().FinishRequests().ok());
  EXPECT_FALSE(first.value().ReadFrame().ok());  // server closed its side
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto retry = ServeClient::Connect(server.port());
    ASSERT_TRUE(retry.ok());
    if (retry.value().Call("{\"op\":\"stats\"}").ok()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "slot never freed after a capped connection closed";
}

// --- Read deadlines (slow-loris reaping) ------------------------------------

TEST(ServeChaos, SlowLorisReaderIsReapedWithTypedFrame) {
  EmbedService service(MakeSnapshot());
  ServerOptions options;
  options.read_deadline_ms = 50;
  EmbedServer server(&service, options);
  ASSERT_TRUE(server.Start(0).ok());

  // Dribble two bytes of a length prefix, then stall. The server must not
  // park a thread on us forever: it answers with "deadline_exceeded" and
  // drops the connection.
  auto client = ServeClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().SendRaw(std::string("\x08\x00", 2)).ok());
  StatusOr<std::string> frame = client.value().ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  EXPECT_TRUE(HasCode(frame.value(), "deadline_exceeded")) << frame.value();
  EXPECT_FALSE(client.value().ReadFrame().ok());  // connection is gone

  server.Stop();
  EXPECT_EQ(server.active_connections(), 0);
}

// --- Request deadlines (wire-carried deadline_ms) ---------------------------

TEST(ServeChaos, ExpiredRequestDeadlineAnswersTypedErrorInOrder) {
  EmbedService service(MakeSnapshot());
  // Fake clock: every observation advances 20 ms, so a request stamped on
  // arrival has "aged" 20+ ms by the time FlushBatch checks it.
  double now_ms = 0.0;
  SessionOptions session_options;
  session_options.now_ms = [&now_ms] { return now_ms += 20.0; };
  ServeSession session(&service, session_options);

  // Two pipelined queries: generous budget (survives), tight budget
  // (expires). Responses must come back in request order — the expired
  // request's error frame holds its slot.
  session.Consume(
      EncodeFrame("{\"op\":\"lookup\",\"id\":0,\"deadline_ms\":10000}") +
      EncodeFrame("{\"op\":\"lookup\",\"id\":1,\"deadline_ms\":10}"));
  FrameDecoder decoder;
  decoder.Feed(session.TakeOutput());
  std::vector<std::string> bodies;
  std::string body;
  while (decoder.Next(&body)) bodies.push_back(body);
  ASSERT_EQ(bodies.size(), 2u);
  EXPECT_EQ(bodies[0].rfind("{\"ok\":true", 0), 0u) << bodies[0];
  EXPECT_TRUE(HasCode(bodies[1], "deadline_exceeded")) << bodies[1];
  EXPECT_NE(bodies[1].find("expired before execution"), std::string::npos);
}

TEST(ServeChaos, UnexpiredDeadlineExecutesNormally) {
  EmbedService service(MakeSnapshot());
  ServeSession session(&service);  // real clock; 10 s will not expire
  session.Consume(
      EncodeFrame("{\"op\":\"lookup\",\"id\":2,\"deadline_ms\":10000}"));
  const std::string out = session.TakeOutput();
  EXPECT_NE(out.find("\"ok\":true"), std::string::npos) << out;
}

// --- Pending-request budget shedding ----------------------------------------

TEST(ServeChaos, BudgetExhaustionShedsTypedOverloadedInOrder) {
  EmbedService service(MakeSnapshot());
  AdmissionController admission(/*budget=*/1);
  SessionOptions session_options;
  session_options.admission = &admission;
  ServeSession session(&service, session_options);

  // Three pipelined queries against a budget of one. The first is admitted;
  // the second finds the budget full, forces the pending batch to flush
  // (restoring the budget), and sheds; the third is admitted again. Order
  // is preserved: ok, overloaded, ok.
  session.Consume(EncodeFrame("{\"op\":\"lookup\",\"id\":0}") +
                  EncodeFrame("{\"op\":\"lookup\",\"id\":1}") +
                  EncodeFrame("{\"op\":\"lookup\",\"id\":2}"));
  FrameDecoder decoder;
  decoder.Feed(session.TakeOutput());
  std::vector<std::string> bodies;
  std::string body;
  while (decoder.Next(&body)) bodies.push_back(body);
  ASSERT_EQ(bodies.size(), 3u);
  EXPECT_EQ(bodies[0].rfind("{\"ok\":true", 0), 0u) << bodies[0];
  EXPECT_TRUE(HasCode(bodies[1], "overloaded")) << bodies[1];
  EXPECT_NE(bodies[1].find("request shed"), std::string::npos);
  EXPECT_EQ(bodies[2].rfind("{\"ok\":true", 0), 0u) << bodies[2];
  EXPECT_EQ(admission.in_flight(), 0);
}

// --- Client retry/backoff ---------------------------------------------------

TEST(ServeChaos, RetryReconnectsAndRecoversFromInjectedReset) {
  EmbedService service(MakeSnapshot());
  EmbedServer server(&service);
  ASSERT_TRUE(server.Start(0).ok());

  // The client's very first write is reset; the retry loop must tear the
  // connection down, reconnect, and land the request on attempt two.
  SocketFaultSchedule faults;
  faults.reset_write_at = 0;
  FaultInjectingSocketIo client_io(faults);
  auto client = ServeClient::Connect(server.port(), &client_io);
  ASSERT_TRUE(client.ok());
  StatusOr<std::string> reply =
      client.value().CallWithRetry("{\"op\":\"lookup\",\"id\":3}");
  ASSERT_TRUE(reply.ok()) << reply.status().message();
  EXPECT_EQ(reply.value().rfind("{\"ok\":true", 0), 0u) << reply.value();
  EXPECT_EQ(client_io.injected_faults(), 1);
  EXPECT_GE(client_io.writes(), 2);  // the faulted write plus the retry
}

TEST(ServeChaos, TransportErrorOnSwapIsNotRetriedByDefault) {
  EmbedService service(MakeSnapshot());
  EmbedServer server(&service);
  ASSERT_TRUE(server.Start(0).ok());

  SocketFaultSchedule faults;
  faults.reset_write_at = 0;
  FaultInjectingSocketIo client_io(faults);
  auto client = ServeClient::Connect(server.port(), &client_io);
  ASSERT_TRUE(client.ok());
  // A swap that dies in flight may have executed server-side, so the
  // default policy gives it exactly one transport attempt.
  const std::string swap = "{\"op\":\"swap\",\"path\":\"/nonexistent.ansv\"}";
  StatusOr<std::string> reply = client.value().CallWithRetry(swap);
  ASSERT_FALSE(reply.ok());
  EXPECT_NE(reply.status().message().find("non-idempotent"),
            std::string::npos)
      << reply.status().message();
  EXPECT_EQ(client_io.writes(), 1);  // no second attempt went out

  // Opting in retries it; the server then answers (with a typed load error
  // for the bogus path — a definite reply, which is the point).
  RetryPolicy opt_in;
  opt_in.retry_non_idempotent = true;
  SocketFaultSchedule retry_faults;
  retry_faults.reset_write_at = 0;
  FaultInjectingSocketIo retry_io(retry_faults);
  auto second = ServeClient::Connect(server.port(), &retry_io);
  ASSERT_TRUE(second.ok());
  StatusOr<std::string> retried =
      second.value().CallWithRetry(swap, opt_in);
  ASSERT_TRUE(retried.ok()) << retried.status().message();
  EXPECT_NE(retried.value().find("\"ok\":false"), std::string::npos);
}

TEST(ServeChaos, RetriesExhaustIntoTypedStatusNotAHang) {
  EmbedService service(MakeSnapshot());
  EmbedServer server(&service);
  ASSERT_TRUE(server.Start(0).ok());

  // Every client write is reset, so every attempt fails. The loop must give
  // up after max_attempts and report the count plus the last transport
  // error — a definite outcome, promptly.
  SocketFaultSchedule faults;
  faults.reset_write = 1.0;
  FaultInjectingSocketIo client_io(faults);
  auto client = ServeClient::Connect(server.port(), &client_io);
  ASSERT_TRUE(client.ok());
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 4;
  StatusOr<std::string> reply =
      client.value().CallWithRetry("{\"op\":\"lookup\",\"id\":0}", policy);
  ASSERT_FALSE(reply.ok());
  EXPECT_NE(reply.status().message().find("exhausted 3 attempts"),
            std::string::npos)
      << reply.status().message();
  EXPECT_GE(client_io.injected_faults(), 3);
}

// --- Graceful drain and Stop() lifecycle ------------------------------------

TEST(ServeChaos, StopDrainsIdleConnectionsAndZeroesTheGauge) {
  EmbedService service(MakeSnapshot());
  ServerOptions options;
  options.drain_timeout_ms = 2000;
  auto server = std::make_unique<EmbedServer>(&service, options);
  ASSERT_TRUE(server->Start(0).ok());

  // Three live connections, all answered, then left idle (threads parked in
  // recv with no deadline). Stop() must drain them via read half-close —
  // not wait out the full drain window, not leak a thread.
  std::vector<ServeClient> clients;
  for (int i = 0; i < 3; ++i) {
    auto client = ServeClient::Connect(server->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.value().Call("{\"op\":\"stats\"}").ok());
    clients.push_back(std::move(client).value());
  }
  EXPECT_EQ(server->active_connections(), 3);
  const double before_ms = MonotonicMs();
  server->Stop();
  EXPECT_LT(MonotonicMs() - before_ms, options.drain_timeout_ms)
      << "drain waited out the full window on idle connections";
  EXPECT_EQ(server->active_connections(), 0);
  EXPECT_EQ(ActiveConnectionsGaugeValue(), 0.0);
  server.reset();  // destructor after Stop() must be a no-op
}

TEST(ServeChaos, StopIsIdempotentAndSafeBeforeStart) {
  EmbedService service(MakeSnapshot());
  {
    EmbedServer never_started(&service);
    never_started.Stop();  // Stop() before Start(): no hang, no crash
    never_started.Stop();  // and twice
  }                        // destructor after Stop(): no double unwind
  {
    EmbedServer server(&service);
    ASSERT_TRUE(server.Start(0).ok());
    server.Stop();
    server.Stop();  // second Stop() waits for / observes the first
    EXPECT_EQ(server.active_connections(), 0);
  }
}

TEST(ServeChaos, ConcurrentStopsAllComplete) {
  EmbedService service(MakeSnapshot());
  EmbedServer server(&service);
  ASSERT_TRUE(server.Start(0).ok());
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i)
    stoppers.emplace_back([&server] { server.Stop(); });
  for (std::thread& t : stoppers) t.join();
  EXPECT_EQ(server.active_connections(), 0);
}

// --- serve --probe exit discipline (satellite c) ----------------------------

#ifdef ANECI_CLI_PATH

/// Runs the CLI binary and returns its exit code (-1 on popen failure).
int RunCli(const std::string& args) {
  const std::string cmd =
      std::string(ANECI_CLI_PATH) + " " + args + " >/dev/null 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return -1;
  const int raw = pclose(pipe);
  return (raw >= 0 && WIFEXITED(raw)) ? WEXITSTATUS(raw) : -1;
}

TEST(ServeProbe, ExitsNonzeroOnMissingModel) {
  EXPECT_NE(RunCli("serve --model=/definitely/not/a/model.ansv --probe"), 0);
}

TEST(ServeProbe, ExitsNonzeroWhenPortIsTaken) {
  // Occupy a port, then ask the CLI to bind it: Start() must fail and the
  // probe must exit nonzero instead of wedging.
  int taken_port = 0;
  auto blocker = SocketIo::Default()->Listen(0, &taken_port);
  ASSERT_TRUE(blocker.ok());

  const std::string dir = testing::TempDir() + "/chaos_probe";
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string model_path = dir + "/m.ansv";
  ASSERT_TRUE(SaveModelArtifact(MakeArtifact(), model_path).ok());
  EXPECT_NE(RunCli("serve --model=" + model_path +
                   " --port=" + std::to_string(taken_port) + " --probe"),
            0);
  // Control: the same artifact on a free port probes clean.
  EXPECT_EQ(RunCli("serve --model=" + model_path + " --port=0 --probe"), 0);
}

#endif  // ANECI_CLI_PATH

}  // namespace
}  // namespace aneci::serve

// Statistical stress tests for the PRNG and the stochastic utilities that
// depend on tight distributional behaviour (negative sampling, k-means++
// seeding, SAGE operator sampling).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/sage_encoder.h"
#include "data/sbm.h"
#include "util/rng.h"

namespace aneci {
namespace {

TEST(RngStat, ChiSquareUniformity) {
  Rng rng(101);
  const int buckets = 16, samples = 160000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < samples; ++i) ++counts[rng.NextInt(buckets)];
  double chi2 = 0.0;
  const double expected = static_cast<double>(samples) / buckets;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  // 15 dof; the 99.9th percentile is ~37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(RngStat, LaggedAutocorrelationNearZero) {
  Rng rng(103);
  const int n = 100000;
  std::vector<double> x(n);
  for (int i = 0; i < n; ++i) x[i] = rng.NextDouble() - 0.5;
  for (int lag : {1, 2, 7}) {
    double acc = 0.0;
    for (int i = 0; i + lag < n; ++i) acc += x[i] * x[i + lag];
    acc /= (n - lag) * (1.0 / 12.0);  // Normalise by the variance of U-0.5.
    EXPECT_NEAR(acc, 0.0, 0.02) << "lag " << lag;
  }
}

TEST(RngStat, GaussianTailMass) {
  Rng rng(107);
  const int n = 200000;
  int beyond2 = 0;
  for (int i = 0; i < n; ++i)
    if (std::abs(rng.NextGaussian()) > 2.0) ++beyond2;
  // P(|Z| > 2) ~ 4.55%.
  EXPECT_NEAR(static_cast<double>(beyond2) / n, 0.0455, 0.004);
}

TEST(RngStat, PoissonVarianceMatchesMean) {
  Rng rng(109);
  const double lambda = 6.0;
  const int n = 60000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const int v = rng.NextPoisson(lambda);
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, lambda, 0.1);
  EXPECT_NEAR(var, lambda, 0.25);
}

TEST(RngStat, SageSamplerIsUniformOverNeighbors) {
  // Every neighbour of a high-degree node must be sampled equally often.
  Graph g(12);
  for (int v = 1; v < 12; ++v) g.AddEdge(0, v);  // Star, deg(0) = 11.
  SageSamplerOptions opt;
  opt.fanout = 3;
  Rng rng(111);
  std::map<int, int> counts;
  const int draws = 30000;
  for (int t = 0; t < draws; ++t) {
    SparseMatrix s = SampleSageOperator(g, opt, rng);
    for (int64_t e = s.row_ptr()[0]; e < s.row_ptr()[1]; ++e) {
      const int j = s.col_idx()[e];
      if (j != 0) ++counts[j];
    }
  }
  const double expected = draws * 3.0 / 11.0;
  for (int v = 1; v < 12; ++v) {
    EXPECT_NEAR(counts[v], expected, expected * 0.08) << "neighbor " << v;
  }
}

TEST(RngStat, SbmEdgeCountConcentration) {
  // Realised edge counts should hit the target across seeds.
  SbmOptions opt;
  opt.num_nodes = 300;
  opt.num_classes = 3;
  opt.num_edges = 1200;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    Graph g = GenerateSbm(opt, rng);
    EXPECT_NEAR(g.num_edges(), 1200, 24) << "seed " << seed;
  }
}

}  // namespace
}  // namespace aneci

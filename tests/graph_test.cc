#include <gtest/gtest.h>

#include "graph/components.h"
#include "graph/graph.h"
#include "graph/graph_io.h"
#include "util/rng.h"

namespace aneci {
namespace {

Graph Triangle() { return Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}}); }

TEST(Graph, FromEdgesNormalisesAndDedupes) {
  Graph g = Graph::FromEdges(4, {{1, 0}, {0, 1}, {2, 2}, {3, 2}});
  EXPECT_EQ(g.num_edges(), 2);  // (0,1) deduped, self-loop dropped.
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(2, 2));
  EXPECT_TRUE(g.HasEdge(2, 3));
}

TEST(Graph, AddRemoveEdge) {
  Graph g(3);
  EXPECT_TRUE(g.AddEdge(0, 2));
  EXPECT_FALSE(g.AddEdge(2, 0));  // Duplicate.
  EXPECT_FALSE(g.AddEdge(1, 1));  // Self-loop refused.
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.RemoveEdge(2, 0));
  EXPECT_FALSE(g.RemoveEdge(0, 2));
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Graph, NeighborsStaySortedAfterMutation) {
  Graph g(5);
  g.AddEdge(2, 4);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  const std::vector<int>& nbrs = g.Neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  g.RemoveEdge(2, 3);
  EXPECT_EQ(g.Neighbors(2).size(), 2u);
}

TEST(Graph, DegreeMatchesNeighbors) {
  Graph g = Triangle();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(g.Degree(i), 2);
}

TEST(Graph, AdjacencySymmetricWithOptionalSelfLoops) {
  Graph g = Triangle();
  SparseMatrix a = g.Adjacency(false);
  EXPECT_EQ(a.nnz(), 6);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 0.0);
  SparseMatrix asl = g.Adjacency(true);
  EXPECT_EQ(asl.nnz(), 9);
  EXPECT_DOUBLE_EQ(asl.At(1, 1), 1.0);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(asl.At(i, j), asl.At(j, i));
}

TEST(Graph, NormalizedAdjacencyRowsOfTriangle) {
  // Triangle + self-loops: all degrees 3 => every entry 1/3.
  SparseMatrix n = Triangle().NormalizedAdjacency();
  for (double v : n.values()) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(Graph, FeaturesOrIdentityFallsBack) {
  Graph g = Triangle();
  Matrix f = g.FeaturesOrIdentity();
  EXPECT_EQ(f.rows(), 3);
  EXPECT_EQ(f.cols(), 3);
  EXPECT_DOUBLE_EQ(f(1, 1), 1.0);

  Matrix attrs(3, 2, 0.5);
  g.SetAttributes(attrs);
  EXPECT_EQ(g.FeaturesOrIdentity().cols(), 2);
  EXPECT_TRUE(g.has_attributes());
}

TEST(Graph, LabelsAndClassCount) {
  Graph g = Triangle();
  EXPECT_FALSE(g.has_labels());
  g.SetLabels({0, 2, 1});
  EXPECT_EQ(g.num_classes(), 3);
}

// --- Components ----------------------------------------------------------------

TEST(Components, SingleComponent) {
  ComponentsResult cc = ConnectedComponents(Triangle());
  EXPECT_EQ(cc.num_components, 1);
}

TEST(Components, DisconnectedPieces) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {2, 3}});
  ComponentsResult cc = ConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 4);  // {0,1}, {2,3}, {4}, {5}.
  EXPECT_EQ(cc.component[0], cc.component[1]);
  EXPECT_NE(cc.component[0], cc.component[2]);
  EXPECT_EQ(LargestComponentSize(g), 2);
}

TEST(Components, DegreeStats) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}});
  DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.max, 3);
  EXPECT_EQ(stats.min, 1);
  EXPECT_NEAR(stats.mean, 1.5, 1e-12);
}

// --- IO --------------------------------------------------------------------------

TEST(GraphIo, RoundTripWithLabelsAndAttributes) {
  Graph g = Triangle();
  g.SetLabels({0, 1, 0});
  Matrix x(3, 4);
  x(0, 1) = 1.0;
  x(2, 3) = -2.5;
  g.SetAttributes(x);

  const std::string path = testing::TempDir() + "/graph_roundtrip.txt";
  ASSERT_TRUE(SaveGraph(g, path).ok());
  StatusOr<Graph> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Graph& h = loaded.value();
  EXPECT_EQ(h.num_nodes(), 3);
  EXPECT_EQ(h.num_edges(), 3);
  EXPECT_EQ(h.labels(), g.labels());
  EXPECT_DOUBLE_EQ(h.attributes()(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(h.attributes()(2, 3), -2.5);
  EXPECT_DOUBLE_EQ(h.attributes()(1, 2), 0.0);
}

TEST(GraphIo, LoadRejectsMissingFile) {
  EXPECT_EQ(LoadGraph("/no/such/file").status().code(), StatusCode::kIoError);
}

TEST(GraphIo, LoadRejectsBadHeader) {
  const std::string path = testing::TempDir() + "/bad_header.txt";
  FILE* f = fopen(path.c_str(), "w");
  fputs("not a graph\n", f);
  fclose(f);
  EXPECT_EQ(LoadGraph(path).status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIo, EdgeListLoader) {
  const std::string path = testing::TempDir() + "/edges.txt";
  FILE* f = fopen(path.c_str(), "w");
  fputs("# comment\n0 1\n1 2\n", f);
  fclose(f);
  StatusOr<Graph> g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 3);
  EXPECT_EQ(g.value().num_edges(), 2);

  StatusOr<Graph> g10 = LoadEdgeList(path, 10);
  ASSERT_TRUE(g10.ok());
  EXPECT_EQ(g10.value().num_nodes(), 10);
}

TEST(GraphIo, EdgeListRejectsOutOfRangeIds) {
  const std::string path = testing::TempDir() + "/edges_oor.txt";
  FILE* f = fopen(path.c_str(), "w");
  fputs("0 7\n", f);
  fclose(f);
  EXPECT_EQ(LoadEdgeList(path, 3).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace aneci

#include <gtest/gtest.h>

#include <cmath>

#include "tasks/metrics.h"

namespace aneci {
namespace {

TEST(Accuracy, Basics) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 0, 0}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({0}, {1}), 0.0);
}

TEST(Auc, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
}

TEST(Auc, PerfectInversion) {
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
}

TEST(Auc, HandComputedMixedCase) {
  // scores: pos {0.8, 0.3}, neg {0.5, 0.1}. Pairs: (0.8>0.5), (0.8>0.1),
  // (0.3<0.5), (0.3>0.1) => 3/4.
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.8, 0.3, 0.5, 0.1}, {1, 1, 0, 0}), 0.75);
}

TEST(Auc, TiesGetHalfCredit) {
  // One pos and one neg with identical score => AUC 0.5.
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.5, 0.5}, {1, 0}), 0.5);
}

TEST(Auc, DegenerateSingleClass) {
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.1, 0.9}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.1, 0.9}, {0, 0}), 0.5);
}

TEST(Nmi, IdenticalPartitionsGiveOne) {
  EXPECT_NEAR(NormalizedMutualInformation({0, 0, 1, 1}, {1, 1, 0, 0}), 1.0,
              1e-12);
}

TEST(Nmi, IndependentPartitionsNearZero) {
  // Perfectly crossed 2x2 design: MI = 0.
  EXPECT_NEAR(NormalizedMutualInformation({0, 0, 1, 1}, {0, 1, 0, 1}), 0.0,
              1e-12);
}

TEST(Nmi, PartialAgreementBetweenZeroAndOne) {
  const double nmi = NormalizedMutualInformation({0, 0, 1, 1, 2, 2},
                                                 {0, 0, 1, 1, 1, 2});
  EXPECT_GT(nmi, 0.4);
  EXPECT_LT(nmi, 1.0);
}

TEST(Nmi, SingleClusterBothSides) {
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation({0, 0}, {0, 0}), 1.0);
}

TEST(MacroF1, PerfectPrediction) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 2}, {0, 1, 2}), 1.0);
}

TEST(MacroF1, HandComputed) {
  // expected {0,0,1,1}; predicted {0,1,1,1}.
  // class 0: tp=1 fp=0 fn=1 -> p=1, r=.5, f1=2/3.
  // class 1: tp=2 fp=1 fn=0 -> p=2/3, r=1, f1=0.8.
  EXPECT_NEAR(MacroF1({0, 1, 1, 1}, {0, 0, 1, 1}), (2.0 / 3.0 + 0.8) / 2.0,
              1e-12);
}

TEST(MacroF1, ClassAbsentFromTruthIgnored) {
  // Predicted class 2 never appears in the ground truth; macro averages
  // over classes 0 and 1 only.
  const double f1 = MacroF1({0, 2}, {0, 1});
  EXPECT_NEAR(f1, (1.0 + 0.0) / 2.0, 1e-12);
}

TEST(MeanStdTest, KnownValues) {
  MeanStd ms = ComputeMeanStd({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_DOUBLE_EQ(ms.std, 2.0);
}

TEST(MeanStdTest, EmptyAndSingle) {
  MeanStd empty = ComputeMeanStd({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  MeanStd single = ComputeMeanStd({3.5});
  EXPECT_DOUBLE_EQ(single.mean, 3.5);
  EXPECT_DOUBLE_EQ(single.std, 0.0);
}

}  // namespace
}  // namespace aneci

#include <gtest/gtest.h>

#include "anomaly/anomaly_score.h"
#include "anomaly/isolation_forest.h"
#include "anomaly/outlier_injection.h"
#include "data/sbm.h"
#include "tasks/metrics.h"
#include "util/rng.h"

namespace aneci {
namespace {

Graph LabeledSbm(uint64_t seed) {
  SbmOptions opt;
  opt.num_nodes = 200;
  opt.num_classes = 4;
  opt.num_edges = 800;
  opt.intra_fraction = 0.9;
  opt.attribute_dim = 40;
  opt.words_per_node = 8;
  opt.topic_words_per_class = 10;
  Rng rng(seed);
  return GenerateSbm(opt, rng);
}

TEST(OutlierInjection, CountsMatchFraction) {
  Graph g = LabeledSbm(1);
  Rng rng(2);
  OutlierInjectionResult res =
      InjectOutliers(g, OutlierKind::kStructural, 0.05, rng);
  EXPECT_EQ(res.outlier_ids.size(), 10u);
  int flagged = 0;
  for (int f : res.is_outlier) flagged += f;
  EXPECT_EQ(flagged, 10);
}

TEST(OutlierInjection, StructuralOutliersConnectAcrossCommunities) {
  Graph g = LabeledSbm(3);
  Rng rng(4);
  OutlierInjectionResult res =
      InjectOutliers(g, OutlierKind::kStructural, 0.05, rng);
  for (int node : res.outlier_ids) {
    for (int nbr : res.graph.Neighbors(node)) {
      // A rewired neighbour is either itself an outlier (rewired later) or
      // belongs to a different community.
      if (!res.is_outlier[nbr])
        EXPECT_NE(res.graph.labels()[node], res.graph.labels()[nbr]);
    }
  }
}

TEST(OutlierInjection, StructuralPreservesDegreeApproximately) {
  Graph g = LabeledSbm(5);
  Rng rng(6);
  OutlierInjectionResult res =
      InjectOutliers(g, OutlierKind::kStructural, 0.05, rng);
  // Rewiring preserves each outlier's own degree; a later outlier can add a
  // couple of incident edges, so allow slack but no wholesale inflation.
  for (int node : res.outlier_ids)
    EXPECT_LE(res.graph.Degree(node), g.Degree(node) + 4);
}

TEST(OutlierInjection, AttributeOutliersKeepStructure) {
  Graph g = LabeledSbm(7);
  Rng rng(8);
  OutlierInjectionResult res =
      InjectOutliers(g, OutlierKind::kAttribute, 0.05, rng);
  EXPECT_EQ(res.graph.edges(), g.edges());
  // At least one outlier's attribute row actually changed.
  int changed = 0;
  for (int node : res.outlier_ids) {
    for (int c = 0; c < g.attribute_dim(); ++c) {
      if (res.graph.attributes()(node, c) != g.attributes()(node, c)) {
        ++changed;
        break;
      }
    }
  }
  EXPECT_GT(changed, 0);
}

TEST(OutlierInjection, CombinedChangesBoth) {
  Graph g = LabeledSbm(9);
  Rng rng(10);
  OutlierInjectionResult res =
      InjectOutliers(g, OutlierKind::kCombined, 0.05, rng);
  EXPECT_NE(res.graph.edges(), g.edges());
}

TEST(OutlierInjection, AttributeKindFallsBackWithoutAttributes) {
  SbmOptions opt;
  opt.num_nodes = 100;
  opt.num_classes = 2;
  opt.num_edges = 300;
  opt.attribute_dim = 0;
  Rng rng(11);
  Graph g = GenerateSbm(opt, rng);
  OutlierInjectionResult res =
      InjectOutliers(g, OutlierKind::kAttribute, 0.05, rng);
  // Falls back to structural rewiring: edges must change.
  EXPECT_NE(res.graph.edges(), g.edges());
}

TEST(OutlierInjection, KindNames) {
  EXPECT_STREQ(OutlierKindName(OutlierKind::kStructural), "S");
  EXPECT_STREQ(OutlierKindName(OutlierKind::kAttribute), "A");
  EXPECT_STREQ(OutlierKindName(OutlierKind::kCombined), "S&A");
  EXPECT_STREQ(OutlierKindName(OutlierKind::kMix), "Mix");
}

// --- Scores -------------------------------------------------------------------

TEST(MembershipEntropy, UniformRowsScoreHighest) {
  Matrix p = Matrix::FromRows({{1.0, 0.0}, {0.5, 0.5}, {0.9, 0.1}});
  std::vector<double> s = MembershipEntropyScores(p);
  EXPECT_NEAR(s[0], 0.0, 1e-9);
  EXPECT_NEAR(s[1], std::log(2.0), 1e-9);
  EXPECT_GT(s[1], s[2]);
  EXPECT_GT(s[2], s[0]);
}

TEST(MembershipEntropy, EmbeddingVariantSoftmaxesFirst) {
  Matrix z = Matrix::FromRows({{100.0, 0.0}, {0.0, 0.0}});
  std::vector<double> s = EmbeddingEntropyScores(z);
  EXPECT_LT(s[0], 1e-6);            // Near one-hot after softmax.
  EXPECT_NEAR(s[1], std::log(2.0), 1e-9);  // Uniform after softmax.
}

TEST(IsolationForestTest, DetectsPlantedOutliersInGaussianBlob) {
  Rng rng(12);
  const int n = 300, outliers = 15;
  Matrix pts(n, 4);
  std::vector<int> labels(n, 0);
  for (int i = 0; i < n; ++i) {
    const bool is_outlier = i < outliers;
    labels[i] = is_outlier;
    for (int c = 0; c < 4; ++c)
      pts(i, c) = is_outlier ? rng.Uniform(6.0, 10.0) : rng.NextGaussian();
  }
  IsolationForest forest;
  forest.Fit(pts, rng);
  std::vector<double> scores = forest.Score(pts);
  EXPECT_GT(AreaUnderRoc(scores, labels), 0.95);
}

TEST(IsolationForestTest, ScoresWithinUnitInterval) {
  Rng rng(13);
  Matrix pts = Matrix::RandomNormal(100, 3, 1.0, rng);
  IsolationForest forest;
  forest.Fit(pts, rng);
  for (double s : forest.Score(pts)) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(IsolationForestTest, ConstantDataDoesNotCrash) {
  Rng rng(14);
  Matrix pts(50, 2, 3.14);
  IsolationForest forest;
  forest.Fit(pts, rng);
  std::vector<double> scores = forest.Score(pts);
  EXPECT_EQ(scores.size(), 50u);
}

}  // namespace
}  // namespace aneci

#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph.h"
#include "graph/louvain.h"
#include "graph/modularity.h"
#include "util/rng.h"

namespace aneci {
namespace {

// Two 4-cliques joined by one bridge edge.
Graph TwoCliques() {
  std::vector<Edge> edges;
  for (int base : {0, 4})
    for (int i = 0; i < 4; ++i)
      for (int j = i + 1; j < 4; ++j) edges.push_back({base + i, base + j});
  edges.push_back({3, 4});
  return Graph::FromEdges(8, edges);
}

TEST(Modularity, BruteForceAgreement) {
  // Q = 1/(2m) sum_ij [A_ij - k_i k_j / 2m] delta(c_i, c_j), over ordered
  // pairs, A without self-loops.
  Graph g = TwoCliques();
  std::vector<int> assignment = {0, 0, 0, 0, 1, 1, 1, 1};
  const double m = g.num_edges();
  double q = 0.0;
  for (int i = 0; i < g.num_nodes(); ++i) {
    for (int j = 0; j < g.num_nodes(); ++j) {
      if (assignment[i] != assignment[j]) continue;
      const double a = g.HasEdge(i, j) ? 1.0 : 0.0;
      q += a - g.Degree(i) * g.Degree(j) / (2.0 * m);
    }
  }
  q /= 2.0 * m;
  EXPECT_NEAR(Modularity(g, assignment), q, 1e-12);
}

TEST(Modularity, GoodPartitionBeatsBadPartition) {
  Graph g = TwoCliques();
  std::vector<int> good = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<int> bad = {0, 1, 0, 1, 0, 1, 0, 1};
  std::vector<int> all_one(8, 0);
  EXPECT_GT(Modularity(g, good), 0.3);
  EXPECT_GT(Modularity(g, good), Modularity(g, bad));
  EXPECT_NEAR(Modularity(g, all_one), 0.0, 1e-12);
}

TEST(Modularity, EmptyGraphIsZero) {
  Graph g(5);
  EXPECT_DOUBLE_EQ(Modularity(g, std::vector<int>(5, 0)), 0.0);
}

TEST(GeneralizedModularity, MatchesClassicOnHardPartitionFirstOrder) {
  // With the raw (unnormalised, no self-loop) adjacency as proximity and a
  // hard one-hot P, Q~ must equal the classic Q.
  Graph g = TwoCliques();
  std::vector<int> assignment = {0, 0, 0, 0, 1, 1, 1, 1};
  Matrix p(8, 2);
  for (int i = 0; i < 8; ++i) p(i, assignment[i]) = 1.0;
  SparseMatrix a = g.Adjacency(false);
  EXPECT_NEAR(GeneralizedModularity(a, p), Modularity(g, assignment), 1e-12);
}

TEST(GeneralizedModularity, SoftPartitionInterpolates) {
  Graph g = TwoCliques();
  SparseMatrix a = g.Adjacency(false);
  Matrix hard(8, 2), soft(8, 2, 0.5);
  for (int i = 0; i < 8; ++i) hard(i, i < 4 ? 0 : 1) = 1.0;
  const double q_hard = GeneralizedModularity(a, hard);
  const double q_soft = GeneralizedModularity(a, soft);
  // The uniform membership carries no community information: Q~ = 0.
  EXPECT_NEAR(q_soft, 0.0, 1e-12);
  EXPECT_GT(q_hard, q_soft);
}

TEST(GeneralizedModularity, ZeroProximityGivesZero) {
  SparseMatrix empty(4, 4);
  Matrix p(4, 2, 0.5);
  EXPECT_DOUBLE_EQ(GeneralizedModularity(empty, p), 0.0);
}

TEST(Rigidity, BoundsAndExtremes) {
  Matrix hard(4, 2);
  for (int i = 0; i < 4; ++i) hard(i, i % 2) = 1.0;
  EXPECT_NEAR(Rigidity(hard), 1.0, 1e-12);  // Hard partition -> 1.

  Matrix uniform(4, 2, 0.5);
  EXPECT_NEAR(Rigidity(uniform), 0.5, 1e-12);  // 1/K for K = 2.
}

TEST(Rigidity, MonotoneInSharpness) {
  Matrix soft(2, 2);
  soft(0, 0) = soft(1, 1) = 0.7;
  soft(0, 1) = soft(1, 0) = 0.3;
  Matrix sharper(2, 2);
  sharper(0, 0) = sharper(1, 1) = 0.9;
  sharper(0, 1) = sharper(1, 0) = 0.1;
  EXPECT_GT(Rigidity(sharper), Rigidity(soft));
}

TEST(ArgmaxAssignment, PicksRowMaxima) {
  Matrix p = Matrix::FromRows({{0.2, 0.8}, {0.9, 0.1}, {0.5, 0.5}});
  std::vector<int> a = ArgmaxAssignment(p);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[1], 0);
  EXPECT_EQ(a[2], 0);  // Ties go to the first column.
}

// --- Louvain ---------------------------------------------------------------------

TEST(Louvain, RecoversTwoCliques) {
  Graph g = TwoCliques();
  Rng rng(1);
  LouvainResult result = Louvain(g, rng);
  EXPECT_EQ(result.num_communities, 2);
  // All clique members together.
  for (int i = 1; i < 4; ++i)
    EXPECT_EQ(result.assignment[i], result.assignment[0]);
  for (int i = 5; i < 8; ++i)
    EXPECT_EQ(result.assignment[i], result.assignment[4]);
  EXPECT_NE(result.assignment[0], result.assignment[4]);
  EXPECT_GT(result.modularity, 0.3);
}

TEST(Louvain, EmptyGraphTrivial) {
  Graph g(4);
  Rng rng(2);
  LouvainResult result = Louvain(g, rng);
  EXPECT_EQ(result.num_communities, 4);
  EXPECT_DOUBLE_EQ(result.modularity, 0.0);
}

TEST(Louvain, RingOfCliquesFindsManyCommunities) {
  // 6 triangles connected in a ring: the canonical Louvain test.
  std::vector<Edge> edges;
  const int k = 6;
  for (int c = 0; c < k; ++c) {
    const int b = 3 * c;
    edges.push_back({b, b + 1});
    edges.push_back({b + 1, b + 2});
    edges.push_back({b, b + 2});
    edges.push_back({b + 2, (b + 3) % (3 * k)});
  }
  Graph g = Graph::FromEdges(3 * k, edges);
  Rng rng(3);
  LouvainResult result = Louvain(g, rng);
  EXPECT_GE(result.num_communities, 3);
  EXPECT_LE(result.num_communities, k);
  EXPECT_GT(result.modularity, 0.5);
}

}  // namespace
}  // namespace aneci

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "util/rng.h"

namespace aneci {
namespace {

void ExpectNear(const Matrix& a, const Matrix& b, double tol = 1e-10) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < a.cols(); ++j) EXPECT_NEAR(a(i, j), b(i, j), tol);
}

SparseMatrix RandomSparse(int rows, int cols, double density, Rng& rng) {
  std::vector<Triplet> trips;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      if (rng.NextBool(density)) trips.push_back({r, c, rng.Uniform(-2, 2)});
  return SparseMatrix::FromTriplets(rows, cols, std::move(trips));
}

TEST(Sparse, EmptyMatrix) {
  SparseMatrix m(3, 4);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(m.SumAll(), 0.0);
}

TEST(Sparse, FromTripletsSumsDuplicates) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      2, 2, {{0, 1, 1.0}, {0, 1, 2.0}, {1, 0, -1.0}});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), -1.0);
}

TEST(Sparse, FromTripletsDropsExactZeroSums) {
  SparseMatrix m =
      SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {0, 0, -1.0}});
  EXPECT_EQ(m.nnz(), 0);
}

TEST(Sparse, ColumnsSortedWithinRows) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      1, 5, {{0, 4, 1.0}, {0, 1, 1.0}, {0, 3, 1.0}});
  ASSERT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.col_idx()[0], 1);
  EXPECT_EQ(m.col_idx()[1], 3);
  EXPECT_EQ(m.col_idx()[2], 4);
}

TEST(Sparse, IdentityAndDenseRoundTrip) {
  SparseMatrix id = SparseMatrix::Identity(4);
  EXPECT_EQ(id.nnz(), 4);
  Matrix d = id.ToDense();
  ExpectNear(d, Matrix::Identity(4));
  SparseMatrix back = SparseMatrix::FromDense(d);
  EXPECT_EQ(back.nnz(), 4);
}

TEST(Sparse, FromDenseDropTolerance) {
  Matrix d = Matrix::FromRows({{0.001, 1.0}, {0.0, -0.5}});
  SparseMatrix m = SparseMatrix::FromDense(d, 0.01);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

TEST(Sparse, MultiplyMatchesDense) {
  Rng rng(31);
  SparseMatrix s = RandomSparse(7, 9, 0.3, rng);
  Matrix x = Matrix::RandomNormal(9, 4, 1.0, rng);
  ExpectNear(s.Multiply(x), MatMul(s.ToDense(), x));
}

TEST(Sparse, MultiplyTransposedMatchesDense) {
  Rng rng(33);
  SparseMatrix s = RandomSparse(7, 9, 0.3, rng);
  Matrix x = Matrix::RandomNormal(7, 4, 1.0, rng);
  ExpectNear(s.MultiplyTransposed(x), MatMul(Transpose(s.ToDense()), x));
}

TEST(Sparse, SpGemmMatchesDense) {
  Rng rng(35);
  SparseMatrix a = RandomSparse(6, 8, 0.4, rng);
  SparseMatrix b = RandomSparse(8, 5, 0.4, rng);
  ExpectNear(a.MultiplySparse(b).ToDense(),
             MatMul(a.ToDense(), b.ToDense()));
}

TEST(Sparse, SpGemmDropTolPrunesSmallEntries) {
  SparseMatrix a =
      SparseMatrix::FromTriplets(1, 2, {{0, 0, 1e-4}, {0, 1, 1.0}});
  SparseMatrix b =
      SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
  SparseMatrix c = a.MultiplySparse(b, 1e-3);
  EXPECT_EQ(c.nnz(), 1);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 1.0);
}

TEST(Sparse, AddScaledMatchesDense) {
  Rng rng(37);
  SparseMatrix a = RandomSparse(6, 6, 0.3, rng);
  SparseMatrix b = RandomSparse(6, 6, 0.3, rng);
  Matrix expected = a.ToDense();
  expected.Axpy(2.5, b.ToDense());
  ExpectNear(a.AddScaled(b, 2.5).ToDense(), expected);
}

TEST(Sparse, TransposedMatchesDense) {
  Rng rng(39);
  SparseMatrix a = RandomSparse(5, 8, 0.35, rng);
  ExpectNear(a.Transposed().ToDense(), Transpose(a.ToDense()));
}

TEST(Sparse, RowNormalizedL1RowsSumToOne) {
  Rng rng(41);
  SparseMatrix a = RandomSparse(10, 10, 0.4, rng);
  // Make all values positive so row sums equal L1 norms.
  for (double& v : a.mutable_values()) v = std::abs(v) + 0.1;
  SparseMatrix n = a.RowNormalizedL1();
  const std::vector<double> sums = n.RowSumsVec();
  for (int r = 0; r < n.rows(); ++r) {
    if (a.RowNnz(r) == 0) {
      EXPECT_DOUBLE_EQ(sums[r], 0.0);
    } else {
      EXPECT_NEAR(sums[r], 1.0, 1e-12);
    }
  }
}

TEST(Sparse, SymmetricNormalizationOfRegularGraph) {
  // 3-cycle with self-loops: every degree is 3, so every stored entry
  // becomes 1/3.
  std::vector<Triplet> trips;
  for (int i = 0; i < 3; ++i) {
    trips.push_back({i, i, 1.0});
    trips.push_back({i, (i + 1) % 3, 1.0});
    trips.push_back({(i + 1) % 3, i, 1.0});
  }
  SparseMatrix a = SparseMatrix::FromTriplets(3, 3, trips);
  SparseMatrix n = a.SymmetricallyNormalized();
  for (double v : n.values()) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(Sparse, RowSumsAndTotal) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  const auto sums = m.RowSumsVec();
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 3.0);
  EXPECT_DOUBLE_EQ(m.SumAll(), 6.0);
}

TEST(Sparse, ToTripletsRoundTrip) {
  Rng rng(43);
  SparseMatrix a = RandomSparse(6, 7, 0.3, rng);
  SparseMatrix b = SparseMatrix::FromTriplets(6, 7, a.ToTriplets());
  ExpectNear(a.ToDense(), b.ToDense());
}

class SparseDensity : public testing::TestWithParam<double> {};

TEST_P(SparseDensity, MultiplyAgreesAcrossDensities) {
  Rng rng(static_cast<uint64_t>(GetParam() * 1000));
  SparseMatrix s = RandomSparse(12, 12, GetParam(), rng);
  Matrix x = Matrix::RandomNormal(12, 3, 1.0, rng);
  ExpectNear(s.Multiply(x), MatMul(s.ToDense(), x));
}

INSTANTIATE_TEST_SUITE_P(Densities, SparseDensity,
                         testing::Values(0.0, 0.05, 0.2, 0.5, 0.9, 1.0));

}  // namespace
}  // namespace aneci

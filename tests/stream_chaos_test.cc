// Streaming chaos test — the end-to-end acceptance scenario: a seeded event
// stream with (a) injected log corruption that must be detected at load,
// (b) a mid-stream DICE poisoning burst that must drive the monitor into
// SuspectedPoisoning and fire the defense exactly once, and (c) a forced
// refresh-veto whose rollback must restore the last healthy embedding
// snapshot byte-for-byte. The replay-identity leg asserts the per-batch
// JSONL is byte-identical at ANECI_THREADS=1 and 4. Runs under TSan in CI.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aneci.h"
#include "data/sbm.h"
#include "graph/graph.h"
#include "serve/model_artifact.h"
#include "serve/model_snapshot.h"
#include "serve/service.h"
#include "stream/event_log.h"
#include "stream/scenario.h"
#include "stream/stream_engine.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aneci::stream {
namespace {

constexpr uint64_t kVetoSequence = 2;    // Forced refresh-veto batch.
constexpr int kPoisonBatch = 5;          // DICE burst batch.

// The shared chaos world: a labelled SBM graph, a converged embedding, and
// the seeded event log with the poison burst. Built once (magic static) so
// each leg replays the identical inputs.
struct ChaosWorld {
  Graph graph{0};
  Matrix z;
  Matrix p;
  std::vector<EventBatch> log;
};

const ChaosWorld& World() {
  static const ChaosWorld* world = [] {
    auto* w = new ChaosWorld();
    // Strongly assortative SBM, trained to convergence: the monitor's
    // signals are only meaningful once P carries real community structure.
    SbmOptions opt;
    opt.num_nodes = 300;
    opt.num_edges = 900;
    opt.num_classes = 3;
    opt.attribute_dim = 16;
    opt.intra_fraction = 0.9;
    Rng rng(11);
    w->graph = GenerateSbm(opt, rng);

    AneciConfig config;
    config.hidden_dim = 32;
    config.embed_dim = 3;
    config.epochs = 150;
    config.seed = 5;
    AneciResult result = Aneci(config).Train(w->graph);
    w->z = std::move(result.z);
    w->p = std::move(result.p);

    StreamScenarioOptions scenario;
    scenario.batches = 9;
    scenario.events_per_batch = 4;
    scenario.seed = 77;
    scenario.poison_batch = kPoisonBatch;
    scenario.poison_rate = 0.35;
    auto log = MakeEventStream(w->graph, scenario);
    if (!log.ok()) std::abort();
    w->log = std::move(log.value());
    return w;
  }();
  return *world;
}

StreamEngineOptions ChaosOptions() {
  StreamEngineOptions options;
  // khops=1 keeps the refresh region a small fraction of the graph; a
  // region that swallows half the nodes degrades global Q~ enough to read
  // as drift on perfectly clean traffic.
  options.refresh.khops = 1;
  options.refresh.epochs = 40;
  options.refresh.hidden_dim = 24;
  options.refresh.watchdog.max_rollbacks = 1;  // Fast budget exhaustion.
  options.seed = 13;
  options.refresh_fault_hook = [](uint64_t sequence) {
    return sequence == kVetoSequence;
  };
  return options;
}

std::unique_ptr<StreamEngine> MakeEngine(StreamEngineOptions options) {
  const ChaosWorld& w = World();
  auto engine =
      StreamEngine::Create(w.graph, w.z, w.p, std::move(options));
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine.value());
}

bool SameMatrix(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int64_t i = 0; i < a.size(); ++i)
    if (a.data()[i] != b.data()[i]) return false;
  return true;
}

// --- (a) Log corruption is detected, never replayed -------------------------

TEST(StreamChaosTest, CorruptedLogIsRejectedCleanLogRoundTrips) {
  const std::string path = ::testing::TempDir() + "/chaos.anel";
  const ChaosWorld& w = World();

  FaultInjectingEnv torn;
  torn.plan.bitflip_write = 0;
  torn.plan.bitflip_byte = 40;  // Somewhere inside the payload.
  torn.plan.bitflip_bit = 3;
  ASSERT_TRUE(SaveEventLog(w.log, path, &torn).ok());
  auto corrupt = LoadEventLog(path, &torn);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kInvalidArgument);

  FaultInjectingEnv truncated;
  truncated.plan.truncate_write = 0;
  truncated.plan.truncate_bytes = 30;
  ASSERT_TRUE(SaveEventLog(w.log, path, &truncated).ok());
  EXPECT_FALSE(LoadEventLog(path, &truncated).ok());

  // A clean save round-trips to the byte-identical serialized form.
  ASSERT_TRUE(SaveEventLog(w.log, path).ok());
  auto clean = LoadEventLog(path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(SerializeEventLog(clean.value()), SerializeEventLog(w.log));
  std::remove(path.c_str());
}

// --- (b)+(c) Poison burst, forced veto, rollback, single defense ------------

TEST(StreamChaosTest, ChaosRunEscalatesOnceAndRollsBackVetoedRefresh) {
  const ChaosWorld& w = World();
  auto initial = std::make_shared<const serve::ModelSnapshot>(
      serve::BuildModelArtifact(w.graph, w.z, w.p), /*version=*/1, "seed");
  serve::EmbedService service(initial);
  StreamEngineOptions options = ChaosOptions();
  options.publish = &service;
  std::unique_ptr<StreamEngine> engine = MakeEngine(std::move(options));

  // Shadow the engine's healthy-snapshot contract: the rollback target is
  // the embedding after the last batch that ended Healthy un-vetoed (or the
  // initial state before any such batch).
  Matrix expected_rollback_z = engine->z();
  int defenses_seen = 0;
  for (const EventBatch& batch : w.log) {
    auto report = engine->ProcessBatch(batch);
    ASSERT_TRUE(report.ok()) << "batch " << batch.sequence << ": "
                             << report.status().ToString();
    const StreamBatchReport& r = report.value();

    if (batch.sequence == kVetoSequence) {
      // The forced fault exhausts the refresh watchdog's budget; the engine
      // must report the veto and restore the last healthy snapshot exactly.
      EXPECT_TRUE(r.refresh_vetoed);
      EXPECT_FALSE(r.refreshed);
      EXPECT_TRUE(SameMatrix(engine->z(), expected_rollback_z));
      EXPECT_EQ(r.published_version, 0u)
          << "a vetoed batch must not publish to serving";
    } else {
      EXPECT_FALSE(r.refresh_vetoed) << "unexpected veto at " << batch.sequence;
    }
    if (static_cast<int>(batch.sequence) < kPoisonBatch) {
      EXPECT_NE(r.state, StreamHealth::kSuspectedPoisoning)
          << "false alarm at clean batch " << batch.sequence;
      EXPECT_FALSE(r.defense_invoked);
    }
    defenses_seen += r.defense_invoked ? 1 : 0;
    if (r.state == StreamHealth::kHealthy && !r.refresh_vetoed)
      expected_rollback_z = engine->z();
  }

  EXPECT_EQ(engine->health(), StreamHealth::kSuspectedPoisoning);
  EXPECT_EQ(defenses_seen, 1) << "defense must fire exactly once";
  EXPECT_EQ(engine->defense_invocations(), 1);
  EXPECT_GE(engine->refresh_vetoes(), 1);

  // Publishing happened (refreshed batches hot-swap the serving snapshot)
  // and the live snapshot came from the stream path.
  auto snapshot = service.engine().snapshot();
  EXPECT_GT(snapshot->version(), 1u);
  EXPECT_NE(snapshot->source().find("stream:batch="), std::string::npos);
}

// --- Replay identity across thread counts -----------------------------------

TEST(StreamChaosTest, ReplayIsByteIdenticalAcrossThreadCounts) {
  const ChaosWorld& w = World();
  std::string jsonl_one, jsonl_four;
  {
    ScopedNumThreads guard(1);
    std::unique_ptr<StreamEngine> engine = MakeEngine(ChaosOptions());
    auto reports = engine->ProcessLog(w.log);
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    jsonl_one = engine->SummaryJsonl();
  }
  {
    ScopedNumThreads guard(4);
    std::unique_ptr<StreamEngine> engine = MakeEngine(ChaosOptions());
    auto reports = engine->ProcessLog(w.log);
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    jsonl_four = engine->SummaryJsonl();
  }
  ASSERT_FALSE(jsonl_one.empty());
  EXPECT_EQ(jsonl_one, jsonl_four);
  EXPECT_EQ(static_cast<size_t>(std::count(jsonl_one.begin(), jsonl_one.end(),
                                           '\n')),
            w.log.size());
}

}  // namespace
}  // namespace aneci::stream

// Unit tests for the deterministic ParallelFor thread pool: chunk
// decomposition, edge cases, exception propagation, nested-call serial
// fallback, and reuse across many dispatches.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace aneci {
namespace {

TEST(ThreadPool, EmptyRangeNeverInvokesBody) {
  std::atomic<int> calls{0};
  ParallelFor(0, 0, 4, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(10, 10, 4, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(5, 3, 4, [&](int64_t, int64_t) { ++calls; });  // inverted
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(NumChunks(0, 0, 4), 0);
  EXPECT_EQ(NumChunks(5, 3, 4), 0);
}

TEST(ThreadPool, RangeSmallerThanGrainIsOneExactChunk) {
  std::atomic<int> calls{0};
  int64_t got_lo = -1, got_hi = -1, got_ci = -1;
  ParallelForChunks(3, 8, 100, [&](int64_t lo, int64_t hi, int64_t ci) {
    ++calls;
    got_lo = lo;
    got_hi = hi;
    got_ci = ci;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(got_lo, 3);
  EXPECT_EQ(got_hi, 8);
  EXPECT_EQ(got_ci, 0);
  EXPECT_EQ(NumChunks(3, 8, 100), 1);
}

TEST(ThreadPool, ChunksTileTheRangeExactly) {
  for (int threads : {1, 2, 7}) {
    ScopedNumThreads guard(threads);
    for (int64_t grain : {1, 3, 16, 1000}) {
      const int64_t n = 101;
      std::vector<int> hits(n, 0);
      std::mutex mu;
      ParallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
        std::lock_guard<std::mutex> lock(mu);
        for (int64_t i = lo; i < hi; ++i) ++hits[i];
      });
      EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), n)
          << "threads=" << threads << " grain=" << grain;
      EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                              [](int h) { return h == 1; }));
    }
  }
}

TEST(ThreadPool, ChunkDecompositionIndependentOfThreadCount) {
  auto chunks_at = [](int threads) {
    ScopedNumThreads guard(threads);
    std::vector<std::pair<int64_t, int64_t>> chunks;
    std::mutex mu;
    ParallelForChunks(5, 77, 9, [&](int64_t lo, int64_t hi, int64_t ci) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(ci, lo * 1000 + hi);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto serial = chunks_at(1);
  EXPECT_EQ(serial.size(), static_cast<size_t>(NumChunks(5, 77, 9)));
  EXPECT_EQ(chunks_at(2), serial);
  EXPECT_EQ(chunks_at(7), serial);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  for (int threads : {1, 4}) {
    ScopedNumThreads guard(threads);
    EXPECT_THROW(
        ParallelFor(0, 100, 1,
                    [&](int64_t lo, int64_t) {
                      if (lo == 42) throw std::runtime_error("boom");
                    }),
        std::runtime_error);
    // The pool must remain fully usable after a throwing dispatch.
    std::atomic<int64_t> sum{0};
    ParallelFor(0, 100, 7, [&](int64_t lo, int64_t hi) {
      int64_t local = 0;
      for (int64_t i = lo; i < hi; ++i) local += i;
      sum += local;
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
  }
}

TEST(ThreadPool, NestedCallFallsBackToSerial) {
  ScopedNumThreads guard(4);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  std::atomic<int64_t> inner_total{0};
  std::atomic<bool> saw_region_flag{false};
  ParallelFor(0, 8, 1, [&](int64_t, int64_t) {
    if (ThreadPool::InParallelRegion()) saw_region_flag = true;
    // The nested dispatch must complete (serially) without deadlock.
    int64_t local = 0;
    ParallelFor(0, 10, 3, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) local += i;
    });
    inner_total += local;
  });
  EXPECT_TRUE(saw_region_flag.load());
  EXPECT_EQ(inner_total.load(), 8 * (9 * 10 / 2));
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPool, ReuseAcrossManyDispatches) {
  ScopedNumThreads guard(3);
  int64_t expected = 0;
  std::atomic<int64_t> got{0};
  for (int round = 1; round <= 500; ++round) {
    expected += round;
    ParallelFor(0, round, 4, [&](int64_t lo, int64_t hi) {
      got += hi - lo;
    });
  }
  EXPECT_EQ(got.load(), expected);
}

TEST(ThreadPool, ResizeAndScopedOverride) {
  const int before = NumThreads();
  {
    ScopedNumThreads guard(5);
    EXPECT_EQ(NumThreads(), 5);
    SetNumThreads(2);
    EXPECT_EQ(NumThreads(), 2);
    std::atomic<int> n{0};
    ParallelFor(0, 100, 1, [&](int64_t, int64_t) { ++n; });
    EXPECT_EQ(n.load(), 100);
  }
  EXPECT_EQ(NumThreads(), before);
  SetNumThreads(0);  // clamped to 1
  EXPECT_EQ(NumThreads(), 1);
  SetNumThreads(before);
}

TEST(ThreadPool, GrainBelowOneIsClamped) {
  std::vector<int> hits(10, 0);
  std::mutex mu;
  ParallelFor(0, 10, 0, [&](int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    for (int64_t i = lo; i < hi; ++i) ++hits[i];
  });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

}  // namespace
}  // namespace aneci

// Golden end-to-end serving test: train a tiny fixed-seed model, export it
// through the ANSV artifact, load it back as a snapshot, and serve queries
// through the exact production session code. Two guarantees are pinned:
//
//  1. Offline/online agreement — every served lookup / classify / community
//     response is byte-identical to rendering the answer straight off the
//     artifact struct (no drift between the export path and the query path).
//  2. Thread-count invariance — the ENTIRE pipeline (training included) run
//     at ANECI_THREADS=1 and =4 produces byte-identical served responses,
//     the determinism contract ROADMAP.md promises for the serving layer.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/aneci.h"
#include "graph/graph.h"
#include "serve/model_artifact.h"
#include "serve/model_snapshot.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace aneci::serve {
namespace {

/// Two 6-cliques joined by one bridge, labelled by clique — small enough to
/// train in milliseconds, structured enough that communities are non-trivial.
Graph TinyGraph() {
  std::vector<Edge> edges;
  for (int block = 0; block < 2; ++block) {
    const int base = block * 6;
    for (int i = 0; i < 6; ++i)
      for (int j = i + 1; j < 6; ++j)
        edges.push_back({base + i, base + j});
  }
  edges.push_back({5, 6});
  Graph graph = Graph::FromEdges(12, edges);
  graph.SetLabels({0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1});
  return graph;
}

/// The full offline pipeline at the current thread count: train -> artifact
/// -> save -> load -> snapshot. Returns the loaded snapshot plus the
/// artifact it was built from (the offline ground truth).
struct Pipeline {
  ModelArtifact artifact;
  std::shared_ptr<const ModelSnapshot> snapshot;
};

Pipeline RunPipeline(const std::string& tag) {
  AneciConfig cfg;
  cfg.hidden_dim = 8;
  cfg.embed_dim = 4;
  cfg.epochs = 20;
  cfg.seed = 7;
  const Graph graph = TinyGraph();
  const AneciResult trained = Aneci(cfg).Train(graph);

  Pipeline p;
  p.artifact = BuildModelArtifact(graph, trained.z, trained.p, /*head_seed=*/9);
  const std::string dir = testing::TempDir() + "/serve_golden_" + tag;
  ANECI_CHECK(Env::Default()->CreateDir(dir).ok());
  const std::string path = dir + "/model.ansv";
  ANECI_CHECK(SaveModelArtifact(p.artifact, path).ok());
  StatusOr<std::shared_ptr<const ModelSnapshot>> loaded =
      ModelSnapshot::Load(path, /*version=*/1);
  ANECI_CHECK(loaded.ok());
  p.snapshot = std::move(loaded).value();
  return p;
}

/// The fixed query script: every node through every point op, plus knn and
/// stats. Returned as raw request bytes (one pipelined chunk).
std::string QueryScript(int num_nodes) {
  std::string bytes;
  for (const std::string op : {"lookup", "classify", "community", "anomaly"})
    for (int id = 0; id < num_nodes; ++id)
      bytes += EncodeFrame("{\"op\":\"" + op +
                           "\",\"id\":" + std::to_string(id) + "}");
  bytes += EncodeFrame("{\"op\":\"knn\",\"id\":0,\"k\":3}");
  bytes += EncodeFrame("{\"op\":\"stats\"}");
  return bytes;
}

/// Serves the script through a ServeSession and returns the decoded
/// response bodies, in order.
std::vector<std::string> ServeScript(EmbedService* service,
                                     const std::string& script) {
  ServeSession session(service);
  session.Consume(script);
  EXPECT_FALSE(session.closed());
  FrameDecoder decoder;
  decoder.Feed(session.TakeOutput());
  std::vector<std::string> bodies;
  std::string body;
  while (decoder.Next(&body)) bodies.push_back(body);
  EXPECT_FALSE(decoder.framing_error());
  EXPECT_EQ(decoder.pending_bytes(), 0u);
  return bodies;
}

/// Renders the expected response for (op, id) straight off the artifact —
/// the offline ground truth the served bytes must match exactly.
std::string OfflineRender(const ModelArtifact& artifact, uint64_t version,
                          QueryOp op, int id) {
  QueryResponse expected;
  expected.snapshot_version = version;
  expected.op = op;
  expected.id = id;
  switch (op) {
    case QueryOp::kLookup: {
      const double* row = artifact.z.RowPtr(id);
      expected.embedding.assign(row, row + artifact.embed_dim);
      break;
    }
    case QueryOp::kClassify: {
      const double* row = artifact.proba.RowPtr(id);
      expected.proba.assign(row, row + artifact.num_classes);
      int best = 0;
      for (int c = 1; c < artifact.num_classes; ++c)
        if (expected.proba[c] > expected.proba[best]) best = c;
      expected.label = best;
      break;
    }
    case QueryOp::kCommunity: {
      expected.community = artifact.community[id];
      const double* row = artifact.p.RowPtr(id);
      expected.membership.assign(row, row + artifact.embed_dim);
      break;
    }
    case QueryOp::kAnomaly:
      expected.anomaly_score = artifact.anomaly[id];
      break;
    default:
      ANECI_CHECK(false);
  }
  return RenderResponse(expected);
}

TEST(ServeGolden, ServedBytesMatchOfflineRenderingExactly) {
  Pipeline p = RunPipeline("offline");
  EmbedService service(p.snapshot);
  const int n = p.artifact.num_nodes;
  const std::vector<std::string> bodies =
      ServeScript(&service, QueryScript(n));
  ASSERT_EQ(bodies.size(), static_cast<size_t>(4 * n + 2));

  const QueryOp ops[] = {QueryOp::kLookup, QueryOp::kClassify,
                         QueryOp::kCommunity, QueryOp::kAnomaly};
  size_t frame = 0;
  for (QueryOp op : ops)
    for (int id = 0; id < n; ++id, ++frame)
      EXPECT_EQ(bodies[frame], OfflineRender(p.artifact, 1, op, id))
          << "op " << QueryOpName(op) << " node " << id;
}

TEST(ServeGolden, TrainedLabelHeadRecoversPlantedLabels) {
  Pipeline p = RunPipeline("labels");
  EmbedService service(p.snapshot);
  // The two cliques are linearly separable in any reasonable embedding;
  // the frozen head must classify the clique interiors correctly. (Bridge
  // endpoints 5 and 6 are allowed to be ambiguous.)
  int correct = 0;
  for (int id : {0, 1, 2, 3, 4, 7, 8, 9, 10, 11}) {
    QueryRequest request;
    request.op = QueryOp::kClassify;
    request.id = id;
    const QueryResult result = service.engine().Execute(request);
    ASSERT_TRUE(result.ok()) << result.status.ToString();
    correct += result.response.label == (id < 6 ? 0 : 1);
  }
  EXPECT_GE(correct, 9);
}

TEST(ServeGolden, FullPipelineIsThreadCountInvariant) {
  // Train -> export -> load -> serve at 1 and 4 threads; every served byte
  // must agree. This covers determinism of training, of the logistic head
  // fit, of the parallel knn scan, and of batched session execution.
  std::vector<std::vector<std::string>> runs;
  for (int threads : {1, 4}) {
    ScopedNumThreads scoped(threads);
    // Same tag (= same artifact path) for both runs: the stats response
    // echoes the source path, which must not differ between them.
    Pipeline p = RunPipeline("invariance");
    EmbedService service(p.snapshot);
    runs.push_back(ServeScript(&service, QueryScript(p.artifact.num_nodes)));
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (size_t i = 0; i < runs[0].size(); ++i)
    EXPECT_EQ(runs[0][i], runs[1][i]) << "frame " << i;
}

TEST(ServeGolden, ServedBytesStableAcrossRepeatedSessions) {
  // The same snapshot served twice (fresh sessions) yields identical bytes —
  // no hidden per-session state leaks into responses.
  Pipeline p = RunPipeline("repeat");
  EmbedService service(p.snapshot);
  const std::string script = QueryScript(p.artifact.num_nodes);
  EXPECT_EQ(ServeScript(&service, script), ServeScript(&service, script));
}

}  // namespace
}  // namespace aneci::serve

// Streaming subsystem unit tests: the "ANEL" event-log format (round-trip,
// corruption and truncation detection, fault-injected writes), atomic batch
// application, the scenario generator, the drift monitor's hysteresis state
// machine, frontier BFS, incremental refresh, and engine determinism.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/sbm.h"
#include "graph/graph.h"
#include "serve/model_artifact.h"
#include "serve/model_snapshot.h"
#include "serve/service.h"
#include "stream/drift_monitor.h"
#include "stream/event_log.h"
#include "stream/incremental.h"
#include "stream/scenario.h"
#include "stream/stream_engine.h"
#include "util/env.h"
#include "util/rng.h"

namespace aneci::stream {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<EventBatch> SampleLog() {
  EventBatch b0;
  b0.sequence = 0;
  b0.events = {GraphEvent::AddEdge(0, 1), GraphEvent::RemoveEdge(2, 3),
               GraphEvent::SetAttribute(1, 4, -0.125)};
  EventBatch b1;
  b1.sequence = 7;
  b1.events = {GraphEvent::AddEdge(5, 6)};
  return {b0, b1};
}

Graph MakeTestGraph(int n = 12) {
  // Ring + one chord, with a small attribute matrix.
  std::vector<Edge> edges;
  for (int i = 0; i < n; ++i) edges.push_back({std::min(i, (i + 1) % n),
                                               std::max(i, (i + 1) % n)});
  Graph g = Graph::FromEdges(n, edges);
  Matrix attrs(n, 6);
  for (int i = 0; i < n; ++i) attrs(i, i % 6) = 1.0;
  g.SetAttributes(std::move(attrs));
  return g;
}

Graph MakeSbmGraph(int nodes, int edges, uint64_t seed) {
  SbmOptions opt;
  opt.num_nodes = nodes;
  opt.num_edges = edges;
  opt.num_classes = 3;
  opt.attribute_dim = 24;
  Rng rng(seed);
  return GenerateSbm(opt, rng);
}

// --- Event log format -------------------------------------------------------

TEST(EventLogTest, RoundTripPreservesEverything) {
  const std::vector<EventBatch> log = SampleLog();
  const std::string bytes = SerializeEventLog(log);
  auto parsed = ParseEventLog(bytes, "test");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].sequence, 0u);
  EXPECT_EQ(parsed.value()[1].sequence, 7u);
  ASSERT_EQ(parsed.value()[0].events.size(), 3u);
  const GraphEvent& e = parsed.value()[0].events[2];
  EXPECT_EQ(e.kind, EventKind::kSetAttribute);
  EXPECT_EQ(e.u, 1);
  EXPECT_EQ(e.v, 4);
  EXPECT_EQ(e.value, -0.125);  // Bit-exact double round-trip.
}

TEST(EventLogTest, EmptyLogRoundTrips) {
  auto parsed = ParseEventLog(SerializeEventLog({}), "test");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
}

TEST(EventLogTest, BadMagicRejected) {
  std::string bytes = SerializeEventLog(SampleLog());
  bytes[0] = 'X';
  auto parsed = ParseEventLog(bytes, "bad.anel");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("magic"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("bad.anel"), std::string::npos);
}

TEST(EventLogTest, TruncationRejectedAtEveryPrefix) {
  const std::string bytes = SerializeEventLog(SampleLog());
  for (size_t cut : {size_t{0}, size_t{3}, size_t{19}, bytes.size() - 1}) {
    auto parsed = ParseEventLog(bytes.substr(0, cut), "cut");
    EXPECT_FALSE(parsed.ok()) << "prefix of " << cut << " bytes parsed";
  }
}

TEST(EventLogTest, BitFlipCaughtByCrc) {
  std::string bytes = SerializeEventLog(SampleLog());
  bytes[bytes.size() - 3] ^= 0x10;  // Corrupt the payload, not the header.
  auto parsed = ParseEventLog(bytes, "flipped");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("CRC"), std::string::npos);
}

TEST(EventLogTest, TrailingGarbageRejected) {
  std::vector<EventBatch> log = SampleLog();
  std::string bytes = SerializeEventLog(log);
  // Re-declare fewer batches but keep the payload: decoder must notice the
  // leftover bytes. Simplest valid-CRC construction: serialize one batch and
  // append a second batch's payload is fiddly, so instead corrupt via the
  // header count — which breaks CRC — and separately check unknown kinds.
  bytes[20] = 3;  // num_batches LSB: declares 3 batches, payload has 2.
  auto parsed = ParseEventLog(bytes, "garbled");
  EXPECT_FALSE(parsed.ok());  // CRC catches the tamper.
}

TEST(EventLogTest, SaveLoadThroughEnv) {
  const std::string path = TempPath("roundtrip.anel");
  ASSERT_TRUE(SaveEventLog(SampleLog(), path).ok());
  auto loaded = LoadEventLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), 2u);
  std::remove(path.c_str());
}

TEST(EventLogTest, MissingFileIsTypedError) {
  auto loaded = LoadEventLog(TempPath("does-not-exist.anel"));
  EXPECT_FALSE(loaded.ok());
}

TEST(EventLogTest, FaultInjectedTruncatedWriteDetectedOnLoad) {
  const std::string path = TempPath("torn.anel");
  FaultInjectingEnv env;
  env.plan.truncate_write = 0;
  env.plan.truncate_bytes = 25;  // Header survives, payload is torn.
  ASSERT_TRUE(SaveEventLog(SampleLog(), path, &env).ok());
  auto loaded = LoadEventLog(path, &env);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
  std::remove(path.c_str());
}

TEST(EventLogTest, FaultInjectedBitFlipDetectedOnLoad) {
  const std::string path = TempPath("flipped.anel");
  FaultInjectingEnv env;
  env.plan.bitflip_write = 0;
  env.plan.bitflip_byte = 30;  // Inside the payload.
  env.plan.bitflip_bit = 2;
  ASSERT_TRUE(SaveEventLog(SampleLog(), path, &env).ok());
  auto loaded = LoadEventLog(path, &env);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos);
  std::remove(path.c_str());
}

TEST(EventLogTest, FailedWriteSurfacesIoError) {
  const std::string path = TempPath("failed.anel");
  FaultInjectingEnv env;
  env.plan.fail_write = 0;
  Status st = SaveEventLog(SampleLog(), path, &env);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

// --- Batch application ------------------------------------------------------

TEST(ApplyBatchTest, AppliesEdgesAndAttributes) {
  Graph g = MakeTestGraph();
  EventBatch batch;
  batch.sequence = 3;
  batch.events = {GraphEvent::AddEdge(0, 5), GraphEvent::RemoveEdge(0, 1),
                  GraphEvent::SetAttribute(2, 3, 9.5),
                  GraphEvent::AddEdge(0, 5)};  // Redundant re-add.
  auto report = ApplyEventBatch(&g, batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().edges_added, 1);
  EXPECT_EQ(report.value().edges_removed, 1);
  EXPECT_EQ(report.value().attributes_updated, 1);
  EXPECT_EQ(report.value().redundant, 1);
  EXPECT_TRUE(g.HasEdge(0, 5));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.attributes()(2, 3), 9.5);
}

TEST(ApplyBatchTest, InvalidEventRollsBackWholeBatch) {
  Graph g = MakeTestGraph();
  const std::vector<Edge> before = g.edges();
  const double attr_before = g.attributes()(2, 3);
  EventBatch batch;
  batch.sequence = 11;
  batch.events = {GraphEvent::AddEdge(0, 5),
                  GraphEvent::SetAttribute(2, 3, 42.0),
                  GraphEvent::AddEdge(4, 99)};  // Out of range: atomic abort.
  auto report = ApplyEventBatch(&g, batch);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("event 2"), std::string::npos);
  EXPECT_NE(report.status().message().find("batch 11"), std::string::npos);
  // Nothing — not even the earlier valid events — landed.
  EXPECT_EQ(g.edges(), before);
  EXPECT_EQ(g.attributes()(2, 3), attr_before);
}

TEST(ApplyBatchTest, SelfLoopRejected) {
  Graph g = MakeTestGraph();
  EventBatch batch;
  batch.events = {GraphEvent::AddEdge(4, 4)};
  auto report = ApplyEventBatch(&g, batch);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("self-loop"), std::string::npos);
}

TEST(ApplyBatchTest, AttributeEventOnAttributelessGraphRejected) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}});
  EventBatch batch;
  batch.events = {GraphEvent::SetAttribute(0, 0, 1.0)};
  auto report = ApplyEventBatch(&g, batch);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("without attributes"),
            std::string::npos);
}

TEST(ApplyBatchTest, AttributeColumnOutOfRangeRejected) {
  Graph g = MakeTestGraph();
  EventBatch batch;
  batch.events = {GraphEvent::SetAttribute(0, 6, 1.0)};
  auto report = ApplyEventBatch(&g, batch);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("column"), std::string::npos);
}

TEST(ApplyBatchTest, TouchedNodesSortedUnique) {
  EventBatch batch;
  batch.events = {GraphEvent::AddEdge(5, 2), GraphEvent::RemoveEdge(2, 9),
                  GraphEvent::SetAttribute(7, 3, 0.0)};
  EXPECT_EQ(TouchedNodes(batch), (std::vector<int>{2, 5, 7, 9}));
}

// --- Scenario generator -----------------------------------------------------

TEST(ScenarioTest, DeterministicForFixedSeed) {
  const Graph g = MakeSbmGraph(80, 240, 7);
  StreamScenarioOptions opt;
  opt.batches = 5;
  opt.events_per_batch = 6;
  opt.seed = 99;
  auto a = MakeEventStream(g, opt);
  auto b = MakeEventStream(g, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(SerializeEventLog(a.value()), SerializeEventLog(b.value()));
}

TEST(ScenarioTest, StreamReplaysCleanly) {
  Graph g = MakeSbmGraph(80, 240, 7);
  StreamScenarioOptions opt;
  opt.batches = 6;
  opt.events_per_batch = 8;
  opt.poison_batch = 3;
  opt.poison_rate = 0.2;
  auto log = MakeEventStream(g, opt);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  int applied_events = 0;
  for (const EventBatch& batch : log.value()) {
    auto report = ApplyEventBatch(&g, batch);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    applied_events += static_cast<int>(batch.events.size());
  }
  EXPECT_GT(applied_events, 0);
  // The poison batch is a DICE burst: non-trivially larger than churn.
  EXPECT_GT(log.value()[3].events.size(), log.value()[0].events.size());
}

TEST(ScenarioTest, PoisonNeedsLabels) {
  Graph g = MakeTestGraph();  // No labels.
  StreamScenarioOptions opt;
  opt.poison_batch = 1;
  opt.batches = 3;
  auto log = MakeEventStream(g, opt);
  ASSERT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ScenarioTest, OptionValidation) {
  EXPECT_FALSE(ValidateStreamScenarioOptions({.batches = 0}).ok());
  EXPECT_FALSE(ValidateStreamScenarioOptions({.events_per_batch = -1}).ok());
  EXPECT_FALSE(
      ValidateStreamScenarioOptions({.batches = 3, .poison_batch = 3}).ok());
  EXPECT_FALSE(ValidateStreamScenarioOptions({.poison_rate = 1.5}).ok());
  EXPECT_TRUE(ValidateStreamScenarioOptions({}).ok());
}

// --- Drift monitor ----------------------------------------------------------

DriftMonitorOptions FastMonitor() {
  DriftMonitorOptions opt;
  opt.escalate_after = 2;
  opt.recover_after = 2;
  return opt;
}

TEST(DriftMonitorTest, FirstObservationSeedsBaseline) {
  DriftMonitor monitor(FastMonitor());
  DriftDecision d = monitor.Observe({.modularity = 0.4});
  EXPECT_EQ(d.state, StreamHealth::kHealthy);
  EXPECT_EQ(d.breach_level, 0);
  EXPECT_EQ(monitor.baseline_modularity(), 0.4);
}

TEST(DriftMonitorTest, SingleBreachDoesNotEscalate) {
  DriftMonitor monitor(FastMonitor());
  (void)monitor.Observe({.modularity = 0.4});
  DriftDecision d = monitor.Observe({.modularity = 0.3});  // Drift-level drop.
  EXPECT_EQ(d.breach_level, 1);
  EXPECT_EQ(d.state, StreamHealth::kHealthy);  // Hysteresis holds.
  EXPECT_FALSE(d.escalated);
}

TEST(DriftMonitorTest, ConsecutiveDriftBreachesEscalateOneLevel) {
  DriftMonitor monitor(FastMonitor());
  (void)monitor.Observe({.modularity = 0.4});
  (void)monitor.Observe({.modularity = 0.3});
  DriftDecision d = monitor.Observe({.modularity = 0.3});
  EXPECT_EQ(d.state, StreamHealth::kDrifting);
  EXPECT_TRUE(d.escalated);
  EXPECT_FALSE(d.entered_poisoning);
}

TEST(DriftMonitorTest, PoisonBreachesJumpToSuspected) {
  DriftMonitor monitor(FastMonitor());
  (void)monitor.Observe({.modularity = 0.4});
  (void)monitor.Observe({.modularity = 0.1, .churn = 0.9});
  DriftDecision d = monitor.Observe({.modularity = 0.1, .churn = 0.9});
  EXPECT_EQ(d.state, StreamHealth::kSuspectedPoisoning);
  EXPECT_TRUE(d.entered_poisoning);
}

TEST(DriftMonitorTest, EnteredPoisoningFiresOnlyOnTransition) {
  DriftMonitorOptions opt = FastMonitor();
  opt.escalate_after = 1;
  DriftMonitor monitor(opt);
  (void)monitor.Observe({.modularity = 0.4});
  int entered = 0;
  for (int i = 0; i < 5; ++i)
    entered += monitor.Observe({.modularity = 0.1, .churn = 0.9})
                   .entered_poisoning;
  EXPECT_EQ(entered, 1);
}

TEST(DriftMonitorTest, RecoveryStepsDownWithHysteresis) {
  DriftMonitorOptions opt = FastMonitor();
  opt.escalate_after = 1;
  DriftMonitor monitor(opt);
  (void)monitor.Observe({.modularity = 0.4});
  (void)monitor.Observe({.modularity = 0.1, .churn = 0.9});
  ASSERT_EQ(monitor.state(), StreamHealth::kSuspectedPoisoning);
  (void)monitor.Observe({.modularity = 0.4});  // Clean, 1 of 2.
  EXPECT_EQ(monitor.state(), StreamHealth::kSuspectedPoisoning);
  (void)monitor.Observe({.modularity = 0.4});  // Clean, 2 of 2: step down.
  EXPECT_EQ(monitor.state(), StreamHealth::kDrifting);
  (void)monitor.Observe({.modularity = 0.4});
  (void)monitor.Observe({.modularity = 0.4});
  EXPECT_EQ(monitor.state(), StreamHealth::kHealthy);
}

TEST(DriftMonitorTest, BaselineUpdatesOnlyOnCleanObservations) {
  DriftMonitor monitor(FastMonitor());
  (void)monitor.Observe({.modularity = 0.4});
  (void)monitor.Observe({.modularity = 0.1});  // Breach: baseline frozen.
  EXPECT_EQ(monitor.baseline_modularity(), 0.4);
  (void)monitor.Observe({.modularity = 0.42});  // Clean: EWMA moves.
  EXPECT_NE(monitor.baseline_modularity(), 0.4);
}

TEST(DriftMonitorTest, HealthNamesCoverEveryState) {
  EXPECT_STREQ(StreamHealthName(StreamHealth::kHealthy), "healthy");
  EXPECT_STREQ(StreamHealthName(StreamHealth::kDrifting), "drifting");
  EXPECT_STREQ(StreamHealthName(StreamHealth::kSuspectedPoisoning),
               "suspected-poisoning");
}

TEST(DriftMonitorTest, OptionValidation) {
  DriftMonitorOptions bad;
  bad.ewma_alpha = 0.0;
  EXPECT_FALSE(ValidateDriftMonitorOptions(bad).ok());
  bad = {};
  bad.churn_poison = 0.01;  // Below churn_drift.
  EXPECT_FALSE(ValidateDriftMonitorOptions(bad).ok());
  bad = {};
  bad.escalate_after = 0;
  EXPECT_FALSE(ValidateDriftMonitorOptions(bad).ok());
  EXPECT_TRUE(ValidateDriftMonitorOptions({}).ok());
}

// --- Frontier & refresh -----------------------------------------------------

TEST(FrontierTest, ZeroHopsReturnsSeeds) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  EXPECT_EQ(FrontierRegion(g, {3, 1}, 0), (std::vector<int>{1, 3}));
}

TEST(FrontierTest, BfsExpandsByHops) {
  // Path 0-1-2-3-4-5.
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  EXPECT_EQ(FrontierRegion(g, {0}, 1), (std::vector<int>{0, 1}));
  EXPECT_EQ(FrontierRegion(g, {0}, 3), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(FrontierRegion(g, {2}, 2), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(FrontierTest, IgnoresOutOfRangeSeeds) {
  Graph g = Graph::FromEdges(3, {{0, 1}});
  EXPECT_EQ(FrontierRegion(g, {-1, 5, 1}, 0), (std::vector<int>{1}));
}

TEST(RefreshTest, SmallRegionSkips) {
  Graph g = MakeSbmGraph(60, 180, 3);
  Matrix z(60, 4, 0.1), p(60, 4, 0.25);
  RefreshOptions opt;
  opt.min_region = 50;
  auto outcome = RefreshRegion(g, {0, 1, 2}, opt, 1, &z, &p);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome.value().refreshed);
}

TEST(RefreshTest, RefreshTouchesOnlyRegionRows) {
  Graph g = MakeSbmGraph(60, 180, 3);
  Matrix z(60, 4, 0.1), p(60, 4, 0.25);
  RefreshOptions opt;
  opt.epochs = 5;
  opt.min_region = 4;
  const std::vector<int> region = FrontierRegion(g, {0, 1}, 1);
  ASSERT_GE(static_cast<int>(region.size()), 4);
  auto outcome = RefreshRegion(g, region, opt, 1, &z, &p);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome.value().refreshed);
  std::vector<char> in_region(60, 0);
  for (int u : region) in_region[u] = 1;
  for (int u = 0; u < 60; ++u) {
    if (in_region[u]) continue;
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(z(u, c), 0.1) << "non-region row " << u << " was touched";
      EXPECT_EQ(p(u, c), 0.25);
    }
  }
}

TEST(RefreshTest, VetoLeavesEmbeddingUntouched) {
  Graph g = MakeSbmGraph(60, 180, 3);
  Matrix z(60, 4, 0.1), p(60, 4, 0.25);
  RefreshOptions opt;
  opt.epochs = 5;
  opt.min_region = 4;
  opt.watchdog.max_rollbacks = 1;
  const std::vector<int> region = FrontierRegion(g, {0, 1}, 1);
  auto outcome = RefreshRegion(g, region, opt, 1, &z, &p,
                               [](int) { return true; });  // Permanent NaN.
  ASSERT_FALSE(outcome.ok());
  for (int u = 0; u < 60; ++u)
    for (int c = 0; c < 4; ++c) {
      ASSERT_EQ(z(u, c), 0.1);
      ASSERT_EQ(p(u, c), 0.25);
    }
}

TEST(RefreshTest, OptionValidation) {
  RefreshOptions bad_khops;
  bad_khops.khops = -1;
  EXPECT_FALSE(ValidateRefreshOptions(bad_khops).ok());
  RefreshOptions bad_epochs;
  bad_epochs.epochs = 0;
  EXPECT_FALSE(ValidateRefreshOptions(bad_epochs).ok());
  RefreshOptions bad_region;
  bad_region.min_region = 1;
  EXPECT_FALSE(ValidateRefreshOptions(bad_region).ok());
  EXPECT_TRUE(ValidateRefreshOptions({}).ok());
}

// --- Engine -----------------------------------------------------------------

struct EngineFixture {
  Graph graph;
  std::vector<EventBatch> log;
  Matrix z, p;

  static EngineFixture Make(int poison_batch = -1) {
    EngineFixture f;
    f.graph = MakeSbmGraph(70, 210, 5);
    StreamScenarioOptions scenario;
    scenario.batches = 4;
    scenario.events_per_batch = 4;
    scenario.poison_batch = poison_batch;
    scenario.seed = 17;
    auto log = MakeEventStream(f.graph, scenario);
    ANECI_CHECK(log.ok());
    f.log = log.value();
    // A deterministic, cheap stand-in for a trained embedding: block-ish
    // memberships from the planted labels.
    f.z = Matrix(70, 3, 0.0);
    for (int i = 0; i < 70; ++i) f.z(i, f.graph.labels()[i]) = 2.0;
    f.p = RowSoftmax(f.z);
    return f;
  }

  StreamEngineOptions FastOptions() const {
    StreamEngineOptions opt;
    opt.refresh.epochs = 4;
    opt.refresh.khops = 1;
    opt.refresh.min_region = 4;
    opt.refresh.hidden_dim = 8;
    opt.seed = 11;
    return opt;
  }
};

TEST(StreamEngineTest, CreateValidatesShapes) {
  EngineFixture f = EngineFixture::Make();
  Matrix wrong(10, 3, 0.0);
  auto engine =
      StreamEngine::Create(f.graph, wrong, wrong, f.FastOptions());
  EXPECT_FALSE(engine.ok());
}

TEST(StreamEngineTest, CreateValidatesDefenseSpec) {
  EngineFixture f = EngineFixture::Make();
  StreamEngineOptions opt = f.FastOptions();
  opt.defense_spec = "no-such-defense";
  auto engine = StreamEngine::Create(f.graph, f.z, f.p, std::move(opt));
  EXPECT_FALSE(engine.ok());
}

TEST(StreamEngineTest, ProcessLogIsDeterministic) {
  EngineFixture f = EngineFixture::Make();
  std::string first;
  for (int run = 0; run < 2; ++run) {
    auto engine = StreamEngine::Create(f.graph, f.z, f.p, f.FastOptions());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    auto reports = engine.value()->ProcessLog(f.log);
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    if (run == 0) {
      first = engine.value()->SummaryJsonl();
      EXPECT_FALSE(first.empty());
    } else {
      EXPECT_EQ(engine.value()->SummaryJsonl(), first);
    }
  }
}

TEST(StreamEngineTest, BadBatchLeavesGraphUntouched) {
  EngineFixture f = EngineFixture::Make();
  auto engine = StreamEngine::Create(f.graph, f.z, f.p, f.FastOptions());
  ASSERT_TRUE(engine.ok());
  const std::vector<Edge> before = engine.value()->graph().edges();
  EventBatch bad;
  bad.sequence = 0;
  bad.events = {GraphEvent::AddEdge(0, 999)};
  auto report = engine.value()->ProcessBatch(bad);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(engine.value()->graph().edges(), before);
  EXPECT_TRUE(engine.value()->SummaryJsonl().empty());
}

TEST(StreamEngineTest, PublishBumpsServingVersion) {
  EngineFixture f = EngineFixture::Make();
  // Initial snapshot at version 1.
  serve::ModelArtifact artifact = serve::BuildModelArtifact(f.graph, f.z, f.p);
  auto snapshot =
      std::make_shared<const serve::ModelSnapshot>(artifact, 1, "initial");
  serve::EmbedService service(snapshot);
  StreamEngineOptions opt = f.FastOptions();
  opt.publish = &service;
  auto engine = StreamEngine::Create(f.graph, f.z, f.p, std::move(opt));
  ASSERT_TRUE(engine.ok());
  auto reports = engine.value()->ProcessLog(f.log);
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  uint64_t last_published = 0;
  for (const StreamBatchReport& r : reports.value())
    if (r.published_version > 0) last_published = r.published_version;
  ASSERT_GT(last_published, 1u);
  EXPECT_EQ(service.engine().snapshot()->version(), last_published);
  EXPECT_NE(service.engine().snapshot()->source().find("stream:batch="),
            std::string::npos);
}

}  // namespace
}  // namespace aneci::stream

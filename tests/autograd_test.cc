// Gradient-checks every differentiable op against central finite
// differences, then sanity-checks the optimisers.
#include <gtest/gtest.h>

#include <cstring>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "linalg/sparse.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aneci::ag {
namespace {

VarPtr Param(int r, int c, uint64_t seed) {
  Rng rng(seed);
  return MakeParameter(Matrix::RandomNormal(r, c, 0.7, rng));
}

void ExpectGradOk(const VarPtr& p, const std::function<VarPtr()>& build,
                  double tol = 1e-4) {
  GradCheckResult res = CheckGradient(p, build, 1e-5, tol);
  EXPECT_TRUE(res.ok) << "max rel error " << res.max_rel_error
                      << " abs " << res.max_abs_error;
}

TEST(Autograd, BackwardRequiresScalarRoot) {
  auto p = Param(2, 2, 1);
  EXPECT_DEATH(Backward(p), "scalar");
}

TEST(Autograd, MatMulGradients) {
  auto a = Param(3, 4, 2);
  auto b = Param(4, 2, 3);
  ExpectGradOk(a, [&] { return SumAll(MatMul(a, b)); });
  ExpectGradOk(b, [&] { return SumAll(MatMul(a, b)); });
}

TEST(Autograd, MatMulTransBGradients) {
  auto a = Param(3, 4, 4);
  auto b = Param(5, 4, 5);
  ExpectGradOk(a, [&] { return SumSquares(MatMulTransB(a, b)); });
  ExpectGradOk(b, [&] { return SumSquares(MatMulTransB(a, b)); });
}

TEST(Autograd, SpMMGradient) {
  Rng rng(6);
  std::vector<Triplet> trips;
  for (int r = 0; r < 5; ++r)
    for (int c = 0; c < 5; ++c)
      if (rng.NextBool(0.4)) trips.push_back({r, c, rng.Uniform(-1, 1)});
  SparseMatrix s = SparseMatrix::FromTriplets(5, 5, trips);
  auto x = Param(5, 3, 7);
  ExpectGradOk(x, [&] { return SumSquares(SpMM(&s, x)); });
}

TEST(Autograd, AddSubGradients) {
  auto a = Param(3, 3, 8);
  auto b = Param(3, 3, 9);
  ExpectGradOk(a, [&] { return SumSquares(Add(a, b)); });
  ExpectGradOk(b, [&] { return SumSquares(Sub(a, b)); });
}

TEST(Autograd, HadamardScaleGradients) {
  auto a = Param(2, 5, 10);
  auto b = Param(2, 5, 11);
  ExpectGradOk(a, [&] { return SumAll(Hadamard(a, b)); });
  ExpectGradOk(a, [&] { return SumSquares(Scale(a, -2.5)); });
}

TEST(Autograd, AddRowBroadcastGradients) {
  auto x = Param(4, 3, 12);
  auto bias = Param(1, 3, 13);
  ExpectGradOk(x, [&] { return SumSquares(AddRowBroadcast(x, bias)); });
  ExpectGradOk(bias, [&] { return SumSquares(AddRowBroadcast(x, bias)); });
}

TEST(Autograd, ActivationGradients) {
  // Shift away from the ReLU kink so finite differences are clean.
  Rng rng(14);
  Matrix v = Matrix::RandomNormal(3, 4, 1.0, rng);
  v.Apply([](double x) { return std::abs(x) < 0.05 ? x + 0.2 : x; });
  auto x = MakeParameter(v);
  ExpectGradOk(x, [&] { return SumSquares(Relu(x)); });
  ExpectGradOk(x, [&] { return SumSquares(LeakyRelu(x, 0.01)); });
  ExpectGradOk(x, [&] { return SumSquares(Sigmoid(x)); });
  ExpectGradOk(x, [&] { return SumSquares(Tanh(x)); });
  ExpectGradOk(x, [&] { return SumAll(Exp(x)); });
}

TEST(Autograd, TransposeGradient) {
  auto x = Param(3, 5, 15);
  ExpectGradOk(x, [&] { return SumSquares(Transpose(x)); });
}

TEST(Autograd, RowSoftmaxGradient) {
  auto x = Param(4, 5, 16);
  Rng rng(17);
  auto w = MakeConstant(Matrix::RandomNormal(4, 5, 1.0, rng));
  ExpectGradOk(x, [&] { return SumAll(Hadamard(RowSoftmax(x), w)); });
}

TEST(Autograd, MeanRowsMeanAllGradients) {
  auto x = Param(6, 3, 18);
  ExpectGradOk(x, [&] { return SumSquares(MeanRows(x)); });
  ExpectGradOk(x, [&] { return MeanAll(x); });
}

TEST(Autograd, BceGradients) {
  Rng rng(19);
  Matrix targets(3, 3);
  for (int64_t i = 0; i < targets.size(); ++i)
    targets.data()[i] = rng.NextDouble();
  auto x = Param(3, 3, 20);
  ExpectGradOk(x, [&] {
    return BinaryCrossEntropySum(Sigmoid(x), targets);
  });
  ExpectGradOk(x, [&] {
    return WeightedBinaryCrossEntropySum(Sigmoid(x), targets, 3.0);
  });
}

TEST(Autograd, SoftmaxCrossEntropyGradient) {
  auto logits = Param(6, 4, 21);
  std::vector<int> rows = {0, 2, 5};
  std::vector<int> labels = {1, 3, 0};
  ExpectGradOk(logits, [&] {
    return SoftmaxCrossEntropy(logits, rows, labels);
  });
}

TEST(Autograd, SoftmaxCrossEntropyValueMatchesManual) {
  Matrix logits = Matrix::FromRows({{0.0, 0.0}});
  auto v = MakeParameter(logits);
  auto loss = SoftmaxCrossEntropy(v, {0}, {0});
  EXPECT_NEAR(loss->value()(0, 0), std::log(2.0), 1e-12);
}

TEST(Autograd, TraceQuadraticSparseGradient) {
  Rng rng(22);
  std::vector<Triplet> trips;
  for (int r = 0; r < 6; ++r)
    for (int c = 0; c < 6; ++c)
      if (rng.NextBool(0.4)) trips.push_back({r, c, rng.Uniform(0, 1)});
  SparseMatrix s = SparseMatrix::FromTriplets(6, 6, trips);
  auto p = Param(6, 3, 23);
  ExpectGradOk(p, [&] { return TraceQuadraticSparse(&s, p); });
}

TEST(Autograd, TraceQuadraticSparseValue) {
  // sum(P (.) SP) must equal tr(P^T S P).
  Rng rng(24);
  SparseMatrix s = SparseMatrix::FromTriplets(
      3, 3, {{0, 1, 1.0}, {1, 0, 1.0}, {2, 2, 2.0}});
  Matrix pm = Matrix::RandomNormal(3, 2, 1.0, rng);
  auto p = MakeParameter(pm);
  Matrix sp = s.Multiply(pm);
  double expected = 0.0;
  for (int64_t i = 0; i < sp.size(); ++i)
    expected += sp.data()[i] * pm.data()[i];
  EXPECT_NEAR(TraceQuadraticSparse(&s, p)->value()(0, 0), expected, 1e-12);
}

TEST(Autograd, RowWeightedColSumSquaresGradient) {
  std::vector<double> k = {0.5, 1.5, 2.0, 1.0};
  auto p = Param(4, 3, 25);
  ExpectGradOk(p, [&] { return RowWeightedColSumSquares(p, k); });
}

TEST(Autograd, SelectRowsGradient) {
  auto x = Param(6, 3, 26);
  std::vector<int> rows = {1, 1, 4};  // Duplicates must accumulate.
  ExpectGradOk(x, [&] { return SumSquares(SelectRows(x, rows)); });
}

TEST(Autograd, InnerProductPairBceGradient) {
  auto p = Param(5, 3, 27);
  std::vector<PairTarget> pairs = {
      {0, 1, 1.0}, {2, 3, 0.0}, {1, 4, 0.7}, {0, 0, 1.0}};
  ExpectGradOk(p, [&] { return InnerProductPairBce(p, pairs); });
}

TEST(Autograd, InnerProductPairBceMatchesDenseFormula) {
  Rng rng(28);
  Matrix pm = Matrix::RandomNormal(4, 2, 0.8, rng);
  auto p = MakeParameter(pm);
  std::vector<PairTarget> pairs = {{0, 1, 1.0}, {2, 3, 0.25}};
  double expected = 0.0;
  for (const auto& pt : pairs) {
    double d = 0.0;
    for (int c = 0; c < 2; ++c) d += pm(pt.u, c) * pm(pt.v, c);
    const double s = 1.0 / (1.0 + std::exp(-d));
    expected -= pt.target * std::log(s) + (1 - pt.target) * std::log(1 - s);
  }
  EXPECT_NEAR(InnerProductPairBce(p, pairs)->value()(0, 0), expected, 1e-9);
}

TEST(Autograd, GraphAttentionGradients) {
  // Small graph with self-loops; check all three inputs' gradients.
  std::vector<Triplet> trips;
  const int n = 5;
  for (int i = 0; i < n; ++i) trips.push_back({i, i, 1.0});
  trips.push_back({0, 1, 1.0});
  trips.push_back({1, 0, 1.0});
  trips.push_back({1, 2, 1.0});
  trips.push_back({2, 1, 1.0});
  trips.push_back({3, 4, 1.0});
  trips.push_back({4, 3, 1.0});
  SparseMatrix adj = SparseMatrix::FromTriplets(n, n, trips);

  auto h = Param(n, 3, 40);
  auto a_src = Param(1, 3, 41);
  auto a_dst = Param(1, 3, 42);
  auto build = [&] {
    return SumSquares(GraphAttention(&adj, h, a_src, a_dst, 0.2));
  };
  ExpectGradOk(h, build, 5e-4);
  ExpectGradOk(a_src, build, 5e-4);
  ExpectGradOk(a_dst, build, 5e-4);
}

TEST(Autograd, GraphAttentionRowsAreConvexCombinations) {
  // With alpha a softmax, each output row lies in the convex hull of its
  // neighbours' rows; with identical neighbour rows, output equals them.
  std::vector<Triplet> trips = {{0, 0, 1.0}, {0, 1, 1.0}, {1, 1, 1.0}};
  SparseMatrix adj = SparseMatrix::FromTriplets(2, 2, trips);
  Matrix hm(2, 2);
  hm(0, 0) = hm(1, 0) = 3.0;
  hm(0, 1) = hm(1, 1) = -1.0;
  auto h = MakeParameter(hm);
  auto a_src = MakeParameter(Matrix(1, 2, 0.3));
  auto a_dst = MakeParameter(Matrix(1, 2, -0.2));
  auto out = GraphAttention(&adj, h, a_src, a_dst);
  EXPECT_NEAR(out->value()(0, 0), 3.0, 1e-9);
  EXPECT_NEAR(out->value()(0, 1), -1.0, 1e-9);
}

TEST(Autograd, GcnForwardGradCheckUnderThreading) {
  // A two-layer GCN forward (SpMM -> ReLU -> SpMM -> MatMul) gradient-checked
  // with the thread pool active: the parallel MatMul/SpMM kernels run in both
  // the forward and backward passes, so a nondeterministic reduction anywhere
  // would break the finite-difference comparison.
  ScopedNumThreads guard(4);
  Rng rng(50);
  const int n = 8;
  std::vector<Triplet> trips;
  for (int i = 0; i < n; ++i) trips.push_back({i, i, 1.0});
  for (int i = 0; i + 1 < n; ++i) {
    trips.push_back({i, i + 1, 1.0});
    trips.push_back({i + 1, i, 1.0});
  }
  SparseMatrix adj =
      SparseMatrix::FromTriplets(n, n, trips).SymmetricallyNormalized();

  auto x = MakeConstant(Matrix::RandomNormal(n, 5, 0.8, rng));
  auto w1 = Param(5, 4, 51);
  auto w2 = Param(4, 3, 52);
  auto build = [&] {
    auto h = Relu(SpMM(&adj, MatMul(x, w1)));
    return SumSquares(SpMM(&adj, MatMul(h, w2)));
  };
  ExpectGradOk(w1, build, 5e-4);
  ExpectGradOk(w2, build, 5e-4);
}

TEST(Autograd, GradientsBitIdenticalAcrossThreadCounts) {
  // The same backward pass at 1 vs 7 threads must produce bitwise-equal
  // gradients (deterministic parallel kernels, no atomics on doubles).
  auto run = [](int threads) {
    ScopedNumThreads guard(threads);
    auto a = Param(13, 9, 53);
    auto b = Param(9, 11, 54);
    Backward(SumSquares(MatMul(a, b)));
    return std::make_pair(a->grad(), b->grad());
  };
  const auto serial = run(1);
  const auto threaded = run(7);
  EXPECT_EQ(std::memcmp(serial.first.data(), threaded.first.data(),
                        sizeof(double) * serial.first.size()),
            0);
  EXPECT_EQ(std::memcmp(serial.second.data(), threaded.second.data(),
                        sizeof(double) * serial.second.size()),
            0);
}

TEST(Autograd, GradAccumulatesOverSharedSubexpressions) {
  auto x = Param(2, 2, 29);
  // f = sum(x) + sum(x) => df/dx = 2.
  auto loss = Add(SumAll(x), SumAll(x));
  Backward(loss);
  for (int64_t i = 0; i < x->grad().size(); ++i)
    EXPECT_NEAR(x->grad().data()[i], 2.0, 1e-12);
}

TEST(Autograd, ConstantsGetNoGradients) {
  auto c = MakeConstant(Matrix(3, 3, 1.0));
  auto p = Param(3, 3, 30);
  auto loss = SumAll(Hadamard(c, p));
  Backward(loss);
  EXPECT_TRUE(c->grad().empty());
  EXPECT_FALSE(p->grad().empty());
}

TEST(Autograd, ZeroGradClears) {
  auto p = Param(2, 2, 31);
  Backward(SumAll(p));
  EXPECT_NEAR(p->grad()(0, 0), 1.0, 1e-12);
  p->ZeroGrad();
  EXPECT_NEAR(p->grad()(0, 0), 0.0, 1e-12);
}

// --- Optimisers ---------------------------------------------------------------

TEST(Optimizer, SgdConvergesOnQuadratic) {
  auto w = MakeParameter(Matrix(1, 1, 5.0));
  Sgd opt({w}, 0.1);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    Backward(SumSquares(w));  // f = w^2, min at 0.
    opt.Step();
  }
  EXPECT_NEAR(w->value()(0, 0), 0.0, 1e-6);
}

TEST(Optimizer, AdamConvergesOnShiftedQuadratic) {
  auto w = MakeParameter(Matrix(2, 2, 3.0));
  Matrix target(2, 2, -1.0);
  Adam::Options opt;
  opt.lr = 0.1;
  Adam adam({w}, opt);
  for (int i = 0; i < 500; ++i) {
    adam.ZeroGrad();
    Backward(SumSquares(Sub(w, MakeConstant(target))));
    adam.Step();
  }
  for (int64_t i = 0; i < w->value().size(); ++i)
    EXPECT_NEAR(w->value().data()[i], -1.0, 1e-3);
}

TEST(Optimizer, AdamClipNormBoundsUpdate) {
  auto w = MakeParameter(Matrix(1, 1, 0.0));
  Adam::Options opt;
  opt.lr = 1.0;
  opt.clip_norm = 1e-3;
  Adam adam({w}, opt);
  adam.ZeroGrad();
  // Gradient = 2e6 * w - huge? Use a linear loss with big slope instead.
  auto loss = Scale(SumAll(w), 1e6);
  Backward(loss);
  adam.Step();
  // With clipping the step magnitude stays ~lr regardless of slope.
  EXPECT_LT(std::abs(w->value()(0, 0)), 2.0);
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  auto w = MakeParameter(Matrix(1, 1, 1.0));
  Sgd opt({w}, 0.1, /*weight_decay=*/0.5);
  // Loss gradient is zero; only decay acts.
  opt.ZeroGrad();
  Backward(Scale(SumAll(w), 0.0));
  opt.Step();
  EXPECT_NEAR(w->value()(0, 0), 1.0 - 0.1 * 0.5, 1e-12);
}

}  // namespace
}  // namespace aneci::ag

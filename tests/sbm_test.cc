#include <gtest/gtest.h>

#include <set>

#include "data/datasets.h"
#include "data/sbm.h"
#include "graph/components.h"
#include "util/rng.h"

namespace aneci {
namespace {

SbmOptions SmallOptions() {
  SbmOptions opt;
  opt.num_nodes = 400;
  opt.num_classes = 4;
  opt.num_edges = 1600;
  opt.intra_fraction = 0.85;
  opt.attribute_dim = 100;
  opt.words_per_node = 10;
  opt.topic_words_per_class = 20;
  return opt;
}

double MeasuredHomophily(const Graph& g) {
  int intra = 0;
  for (const Edge& e : g.edges())
    if (g.labels()[e.u] == g.labels()[e.v]) ++intra;
  return static_cast<double>(intra) / g.num_edges();
}

TEST(Sbm, BasicCounts) {
  Rng rng(1);
  Graph g = GenerateSbm(SmallOptions(), rng);
  EXPECT_EQ(g.num_nodes(), 400);
  EXPECT_NEAR(g.num_edges(), 1600, 32);  // Allows slight saturation.
  EXPECT_TRUE(g.has_labels());
  EXPECT_EQ(g.num_classes(), 4);
  EXPECT_TRUE(g.has_attributes());
  EXPECT_EQ(g.attribute_dim(), 100);
}

TEST(Sbm, HomophilyNearTarget) {
  Rng rng(2);
  Graph g = GenerateSbm(SmallOptions(), rng);
  EXPECT_NEAR(MeasuredHomophily(g), 0.85, 0.05);
}

TEST(Sbm, LowHomophilyOption) {
  SbmOptions opt = SmallOptions();
  opt.intra_fraction = 0.3;
  Rng rng(3);
  Graph g = GenerateSbm(opt, rng);
  EXPECT_NEAR(MeasuredHomophily(g), 0.3, 0.08);
}

TEST(Sbm, ClassProportionsRespected) {
  SbmOptions opt = SmallOptions();
  opt.class_proportions = {0.5, 0.3, 0.1, 0.1};
  Rng rng(4);
  Graph g = GenerateSbm(opt, rng);
  std::vector<int> counts(4, 0);
  for (int y : g.labels()) ++counts[y];
  EXPECT_NEAR(counts[0] / 400.0, 0.5, 0.02);
  EXPECT_NEAR(counts[1] / 400.0, 0.3, 0.02);
}

TEST(Sbm, DegreeHeterogeneityWithPareto) {
  SbmOptions heavy = SmallOptions();
  heavy.degree_alpha = 1.5;  // Heavy tail.
  SbmOptions flat = SmallOptions();
  flat.degree_alpha = 0.0;  // Homogeneous.
  Rng r1(5), r2(5);
  const DegreeStats h = ComputeDegreeStats(GenerateSbm(heavy, r1));
  const DegreeStats f = ComputeDegreeStats(GenerateSbm(flat, r2));
  EXPECT_GT(h.max, f.max);  // The hub is bigger under the heavy tail.
}

TEST(Sbm, AttributesAreClassCorrelated) {
  Rng rng(6);
  Graph g = GenerateSbm(SmallOptions(), rng);
  // Mean cosine similarity within class should exceed across classes.
  const Matrix& x = g.attributes();
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  Rng pick(7);
  for (int t = 0; t < 4000; ++t) {
    const int i = static_cast<int>(pick.NextInt(g.num_nodes()));
    const int j = static_cast<int>(pick.NextInt(g.num_nodes()));
    if (i == j) continue;
    const double sim = CosineSimilarity(x.RowPtr(i), x.RowPtr(j), x.cols());
    if (g.labels()[i] == g.labels()[j]) {
      intra += sim;
      ++n_intra;
    } else {
      inter += sim;
      ++n_inter;
    }
  }
  EXPECT_GT(intra / n_intra, inter / n_inter + 0.05);
}

TEST(Sbm, NoAttributesWhenDimZero) {
  SbmOptions opt = SmallOptions();
  opt.attribute_dim = 0;
  Rng rng(8);
  EXPECT_FALSE(GenerateSbm(opt, rng).has_attributes());
}

TEST(Sbm, DeterministicGivenSeed) {
  Rng r1(9), r2(9);
  Graph a = GenerateSbm(SmallOptions(), r1);
  Graph b = GenerateSbm(SmallOptions(), r2);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_EQ(a.labels(), b.labels());
}

// --- Dataset registry -------------------------------------------------------------

class DatasetNamesTest : public testing::TestWithParam<std::string> {};

TEST_P(DatasetNamesTest, ScaledGenerationAndSplits) {
  StatusOr<Dataset> ds = MakeDataset(GetParam(), 42, 0.12);
  ASSERT_TRUE(ds.ok());
  const Dataset& d = ds.value();
  EXPECT_EQ(d.name, GetParam());
  EXPECT_GT(d.graph.num_nodes(), 0);
  EXPECT_GT(d.graph.num_edges(), 0);
  EXPECT_TRUE(d.graph.has_labels());
  // Train covers every class with 20 nodes (or class size).
  EXPECT_FALSE(d.train_idx.empty());
  EXPECT_FALSE(d.val_idx.empty());
  EXPECT_FALSE(d.test_idx.empty());
  // Splits are pairwise disjoint.
  std::set<int> seen;
  for (const auto* split : {&d.train_idx, &d.val_idx, &d.test_idx}) {
    for (int i : *split) {
      EXPECT_TRUE(seen.insert(i).second) << "node " << i << " reused";
      EXPECT_GE(i, 0);
      EXPECT_LT(i, d.graph.num_nodes());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetNamesTest,
                         testing::ValuesIn(DatasetNames()));

TEST(Datasets, FullScaleCoraMatchesTable2) {
  Dataset cora = MakeCora(1);
  EXPECT_EQ(cora.graph.num_nodes(), 2708);
  EXPECT_NEAR(cora.graph.num_edges(), 5429, 110);
  EXPECT_EQ(cora.graph.num_classes(), 7);
  EXPECT_EQ(cora.graph.attribute_dim(), 1433);
  EXPECT_EQ(cora.train_idx.size(), 140u);  // 20 per class.
  EXPECT_EQ(cora.val_idx.size(), 500u);
  EXPECT_EQ(cora.test_idx.size(), 1000u);
}

TEST(Datasets, PolblogsHasNoAttributes) {
  Dataset pb = MakePolblogs(1, 0.3);
  EXPECT_FALSE(pb.graph.has_attributes());
  EXPECT_EQ(pb.graph.num_classes(), 2);
}

TEST(Datasets, UnknownNameRejected) {
  EXPECT_EQ(MakeDataset("reddit", 1).status().code(), StatusCode::kNotFound);
}

TEST(Datasets, BadScaleRejected) {
  EXPECT_FALSE(MakeDataset("cora", 1, 0.0).ok());
  EXPECT_FALSE(MakeDataset("cora", 1, 1.5).ok());
}

}  // namespace
}  // namespace aneci

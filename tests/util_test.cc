#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "util/rng.h"
#include "util/status.h"
#include "util/table.h"

namespace aneci {
namespace {

// --- Status -----------------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(Status, AllFactoryCodesDistinct) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::IoError("").code(),         Status::FailedPrecondition("").code(),
      Status::OutOfRange("").code(),      Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 6u);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.NextU64() == b.NextU64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextIntUniformCoverage) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.NextInt(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonMeanLargeLambdaUsesNormalApprox) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(50.0);
  EXPECT_NEAR(sum / n, 50.0, 0.5);
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

// --- Table -------------------------------------------------------------------

TEST(Table, RowsAndCsv) {
  Table t({"method", "acc"});
  t.AddRow().Add("AnECI").AddF(0.8123, 3);
  t.AddRow().Add("GAE").AddMeanStd(0.75, 0.01, 1);
  EXPECT_EQ(t.num_rows(), 2);

  const std::string path = testing::TempDir() + "/table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path));
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  EXPECT_STREQ(buf, "method,acc\n");
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  EXPECT_STREQ(buf, "AnECI,0.812\n");
  std::fclose(f);
}

TEST(Table, CsvFailsOnBadPath) {
  Table t({"a"});
  t.AddRow().Add("x");
  EXPECT_FALSE(t.WriteCsv("/nonexistent_dir_zzz/t.csv"));
}

}  // namespace
}  // namespace aneci

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"
#include "util/table.h"

namespace aneci {
namespace {

// --- Status -----------------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(Status, AllFactoryCodesDistinct) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::IoError("").code(),         Status::FailedPrecondition("").code(),
      Status::OutOfRange("").code(),      Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 6u);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

// A type that can be moved but not copied; StatusOr must support it, since
// StatusOr<Graph>-style payloads are moved out of loaders.
struct MoveOnly {
  explicit MoveOnly(int v) : value(v) {}
  MoveOnly(MoveOnly&&) = default;
  MoveOnly& operator=(MoveOnly&&) = default;
  MoveOnly(const MoveOnly&) = delete;
  MoveOnly& operator=(const MoveOnly&) = delete;
  int value;
};

TEST(StatusOr, MoveOnlyPayload) {
  StatusOr<MoveOnly> v(MoveOnly(7));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().value, 7);
  MoveOnly out = std::move(v).value();
  EXPECT_EQ(out.value, 7);

  StatusOr<MoveOnly> err(Status::Internal("boom"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(StatusOr, MutableValueReference) {
  StatusOr<std::vector<int>> v(std::vector<int>{1, 2});
  v.value().push_back(3);
  EXPECT_EQ(v.value().size(), 3u);
}

namespace statusor_chain {

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative: " + std::to_string(x));
  return Status::OK();
}

// Mirrors the loader idiom: validate with ANECI_RETURN_IF_ERROR, then return
// a value that converts implicitly into StatusOr.
StatusOr<int> DoubleIfValid(int x) {
  ANECI_RETURN_IF_ERROR(FailIfNegative(x));
  return 2 * x;
}

StatusOr<std::string> Describe(int x) {
  StatusOr<int> doubled = DoubleIfValid(x);
  if (!doubled.ok()) return doubled.status();  // Error propagates across T.
  return std::string("value=") + std::to_string(doubled.value());
}

}  // namespace statusor_chain

TEST(StatusOr, ReturnIfErrorPropagates) {
  StatusOr<int> good = statusor_chain::DoubleIfValid(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  StatusOr<int> bad = statusor_chain::DoubleIfValid(-5);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(bad.status().message().find("-5"), std::string::npos);
}

TEST(StatusOr, ErrorPropagatesAcrossPayloadTypes) {
  StatusOr<std::string> good = statusor_chain::Describe(3);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), "value=6");

  // The original code and message survive two layers of propagation.
  StatusOr<std::string> bad = statusor_chain::Describe(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(bad.status().message().find("negative"), std::string::npos);
}

TEST(Status, ToStringFormatsCodeAndMessage) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  const std::string s = Status::IoError("disk gone").ToString();
  EXPECT_NE(s.find("disk gone"), std::string::npos);
  EXPECT_NE(s.find("IoError"), std::string::npos);
}

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.NextU64() == b.NextU64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextIntUniformCoverage) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.NextInt(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonMeanLargeLambdaUsesNormalApprox) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(50.0);
  EXPECT_NEAR(sum / n, 50.0, 0.5);
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

// --- Table -------------------------------------------------------------------

TEST(Table, RowsAndCsv) {
  Table t({"method", "acc"});
  t.AddRow().Add("AnECI").AddF(0.8123, 3);
  t.AddRow().Add("GAE").AddMeanStd(0.75, 0.01, 1);
  EXPECT_EQ(t.num_rows(), 2);

  const std::string path = testing::TempDir() + "/table_test.csv";
  const Status st = t.WriteCsv(path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  EXPECT_STREQ(buf, "method,acc\n");
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  EXPECT_STREQ(buf, "AnECI,0.812\n");
  std::fclose(f);
}

TEST(Table, CsvFailsOnBadPath) {
  Table t({"a"});
  t.AddRow().Add("x");
  const Status st = t.WriteCsv("/nonexistent_dir_zzz/t.csv");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace aneci

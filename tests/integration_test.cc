// End-to-end pipelines across modules: generate -> (attack | inject) ->
// embed -> evaluate, including IO round trips. These mirror what the bench
// harness and CLI do, at test-sized scales.
#include <gtest/gtest.h>

#include "analysis/defense_score.h"
#include "anomaly/outlier_injection.h"
#include "attack/fga.h"
#include "attack/random_attack.h"
#include "attack/surrogate.h"
#include "core/aneci_plus.h"
#include "data/datasets.h"
#include "embed/aneci_embedder.h"
#include "embed/gae.h"
#include "embed/gcn_classifier.h"
#include "graph/graph_io.h"
#include "tasks/community.h"
#include "tasks/metrics.h"
#include "tasks/node_classification.h"

namespace aneci {
namespace {

Dataset SmallCora(uint64_t seed) {
  StatusOr<Dataset> ds = MakeDataset("cora", seed, 0.08);
  ANECI_CHECK(ds.ok());
  return std::move(ds).value();
}

AneciConfig FastAneci() {
  AneciConfig cfg;
  cfg.hidden_dim = 32;
  cfg.embed_dim = 8;
  cfg.epochs = 60;
  return cfg;
}

TEST(Integration, RobustnessPipelineAneciBeatsGaeDefenseScore) {
  Dataset ds = SmallCora(1);
  Rng rng(2);
  RandomAttackResult attack = RandomAttack(ds.graph, 0.3, rng);
  attack.attacked.SetLabels(ds.graph.labels());

  Aneci aneci_model(FastAneci());
  Matrix z_aneci = aneci_model.Train(attack.attacked).z;

  Gae::Options gopt;
  gopt.epochs = 60;
  Gae gae(gopt);
  EmbedOptions eo;
  eo.rng = &rng;
  Matrix z_gae = gae.Embed(attack.attacked, eo);

  const double ds_aneci =
      DefenseScore(attack.attacked, attack.fake_edges, z_aneci);
  const double ds_gae = DefenseScore(attack.attacked, attack.fake_edges, z_gae);
  // The paper's Fig. 2 claim, end to end.
  EXPECT_GT(ds_aneci, ds_gae);
  EXPECT_GT(ds_aneci, 1.2);
}

TEST(Integration, AneciPlusDenoisingKeepsAccuracyUnderNoise) {
  Dataset ds = SmallCora(3);
  Rng rng(4);
  RandomAttackResult attack = RandomAttack(ds.graph, 0.4, rng);
  Dataset poisoned = ds;
  poisoned.graph = attack.attacked;
  poisoned.graph.SetLabels(ds.graph.labels());

  AneciPlusConfig cfg;
  cfg.base = FastAneci();
  AneciPlusResult plus = TrainAneciPlus(poisoned.graph, cfg);
  EXPECT_GT(plus.edges_removed, 0);

  // Denoising must catch a healthy share of the fakes.
  int caught = 0;
  for (const Edge& e : attack.fake_edges)
    if (!plus.denoised_graph.HasEdge(e.u, e.v)) ++caught;
  EXPECT_GT(static_cast<double>(caught) / attack.fake_edges.size(), 0.3);

  // And the resulting embedding still classifies clearly above chance.
  Rng eval_rng(5);
  const double acc =
      EvaluateEmbedding(plus.stage2.z, poisoned, eval_rng).accuracy;
  EXPECT_GT(acc, 1.5 / ds.graph.num_classes());
}

TEST(Integration, AnomalyPipelineEntropyDetectsStructuralOutliers) {
  Dataset ds = SmallCora(6);
  Rng rng(7);
  OutlierInjectionResult injected =
      InjectOutliers(ds.graph, OutlierKind::kStructural, 0.05, rng);
  AneciConfig cfg = FastAneci();
  cfg.early_stop_patience = 20;
  AneciEmbedder model(cfg);
  EmbedOptions eo;
  eo.rng = &rng;
  std::vector<double> scores = model.ScoreAnomalies(injected.graph, eo);
  EXPECT_GT(AreaUnderRoc(scores, injected.is_outlier), 0.55);
}

TEST(Integration, FgaEndToEndReducesGcnTargetAccuracy) {
  Dataset ds = SmallCora(8);
  Rng rng(9);
  std::vector<int> targets = SelectAttackTargets(ds, 5, 8, rng);

  GcnClassifier::Options gopt;
  gopt.epochs = 80;
  GcnClassifier clean_model(gopt);
  Rng fit_rng(10);
  clean_model.Fit(ds, fit_rng);
  const double clean_acc = clean_model.Accuracy(ds, targets);

  FgaOptions fga;
  fga.perturbations_per_target = 4;
  Graph attacked = FgaAttack(ds, targets, fga, rng);
  Dataset poisoned = ds;
  poisoned.graph = attacked;
  poisoned.graph.SetLabels(ds.graph.labels());
  GcnClassifier attacked_model(gopt);
  Rng fit_rng2(10);
  attacked_model.Fit(poisoned, fit_rng2);
  const double attacked_acc = attacked_model.Accuracy(poisoned, targets);

  EXPECT_LE(attacked_acc, clean_acc + 1e-9);
}

TEST(Integration, IoRoundTripPreservesTrainingResult) {
  Dataset ds = SmallCora(11);
  const std::string path = testing::TempDir() + "/integration_graph.txt";
  ASSERT_TRUE(SaveGraph(ds.graph, path).ok());
  StatusOr<Graph> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());

  AneciConfig cfg = FastAneci();
  cfg.epochs = 20;
  Aneci model(cfg);
  Matrix z_mem = model.Train(ds.graph).z;
  Matrix z_disk = model.Train(loaded.value()).z;
  ASSERT_EQ(z_mem.rows(), z_disk.rows());
  for (int64_t i = 0; i < z_mem.size(); ++i)
    EXPECT_NEAR(z_mem.data()[i], z_disk.data()[i], 1e-9);
}

TEST(Integration, CommunityPipelineOnPolarizedGraph) {
  StatusOr<Dataset> ds = MakeDataset("polblogs", 12, 0.15);
  ASSERT_TRUE(ds.ok());
  Rng rng(13);
  AneciConfig cfg = FastAneci();
  cfg.embed_dim = 2;
  cfg.epochs = 150;
  AneciEmbedder model(cfg);
  EmbedOptions eo;
  eo.rng = &rng;
  model.Embed(ds.value().graph, eo);
  CommunityResult comm =
      DetectCommunitiesArgmax(ds.value().graph, model.last_membership());
  EXPECT_GT(comm.nmi_vs_labels, 0.7);
  EXPECT_GT(comm.modularity, 0.3);
}

TEST(Integration, GmmCommunitiesMatchKMeansQuality) {
  Dataset ds = SmallCora(14);
  Rng rng(15);
  Aneci model(FastAneci());
  Matrix z = model.Train(ds.graph).z;
  const int k = ds.graph.num_classes();
  CommunityResult km = DetectCommunitiesKMeans(ds.graph, z, k, rng);
  CommunityResult gmm = DetectCommunitiesGmm(ds.graph, z, k, rng);
  // Soft-Gaussian communities should land in the same quality band.
  EXPECT_GT(gmm.modularity, km.modularity - 0.15);
  EXPECT_EQ(static_cast<int>(gmm.assignment.size()), ds.graph.num_nodes());
}

TEST(Integration, SampledEncoderMatchesFullEncoderQuality) {
  Dataset ds = SmallCora(16);
  Rng rng(17);
  AneciConfig full_cfg = FastAneci();
  AneciConfig sage_cfg = FastAneci();
  sage_cfg.encoder = EncoderMode::kSampledNeighbors;
  sage_cfg.sage.fanout = 5;

  Aneci full_model(full_cfg), sage_model(sage_cfg);
  Matrix z_full = full_model.Train(ds.graph).z;
  Matrix z_sage = sage_model.Train(ds.graph).z;
  Rng e1(18), e2(18);
  const double acc_full = EvaluateEmbedding(z_full, ds, e1).accuracy;
  const double acc_sage = EvaluateEmbedding(z_sage, ds, e2).accuracy;
  EXPECT_GT(acc_sage, acc_full - 0.2);  // Sampling costs little quality.
}

}  // namespace
}  // namespace aneci

// Regression tests for the autograd memory planner
// (src/autograd/memory_planner.h):
//
//   * arena unit behaviour — pow2 bucketing, LIFO reuse, fresh/reused byte
//     accounting, planner scoping/nesting;
//   * the end-to-end guarantee — training a small GCN with buffer recycling
//     on vs off yields BYTE-identical final parameters, while the
//     `autograd/peak_bytes` gauge is strictly lower with recycling on.
#include "autograd/memory_planner.h"

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "autograd/variable.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace aneci::ag {
namespace {

TEST(BufferArena, ReusesReleasedBuffersLifoByBucket) {
  BufferArena arena;
  bool fresh = false;
  // A dry bucket misses: empty vector, fresh set.
  std::vector<double> a = arena.Acquire(100, &fresh);
  EXPECT_TRUE(fresh);
  EXPECT_TRUE(a.empty());
  a.resize(100);
  const double* ptr = a.data();
  arena.Release(std::move(a));
  // 100 and 80 share the 128-bucket, so the released storage comes back
  // (same allocation: 80 fits within the released capacity).
  std::vector<double> b = arena.Acquire(80, &fresh);
  EXPECT_FALSE(fresh);
  EXPECT_EQ(b.size(), 80u);
  EXPECT_EQ(b.data(), ptr);
  // A different bucket misses even while the 128-bucket was populated.
  std::vector<double> c = arena.Acquire(1000, &fresh);
  EXPECT_TRUE(fresh);
  EXPECT_TRUE(c.empty());
}

TEST(MemoryPlanner, ScopingAndAccounting) {
  EXPECT_EQ(MemoryPlanner::Current(), nullptr);
  {
    MemoryPlanner outer(/*recycle=*/true);
    EXPECT_EQ(MemoryPlanner::Current(), &outer);
    Matrix m = outer.AcquireUninit(4, 8);
    EXPECT_EQ(outer.fresh_bytes(), 4u * 8u * sizeof(double));
    outer.Release(std::move(m));
    Matrix r = outer.AcquireUninit(4, 8);
    EXPECT_EQ(outer.reused_bytes(), 4u * 8u * sizeof(double));
    EXPECT_EQ(outer.fresh_bytes(), 4u * 8u * sizeof(double));
    {
      MemoryPlanner inner(/*recycle=*/false);
      EXPECT_EQ(MemoryPlanner::Current(), &inner);
      // Recycle off: every acquisition is fresh, releases drop the buffer.
      Matrix a = inner.AcquireUninit(2, 2);
      inner.Release(std::move(a));
      Matrix b = inner.AcquireUninit(2, 2);
      EXPECT_EQ(inner.fresh_bytes(), 2u * 2u * 2u * sizeof(double));
      EXPECT_EQ(inner.reused_bytes(), 0u);
    }
    EXPECT_EQ(MemoryPlanner::Current(), &outer);
  }
  EXPECT_EQ(MemoryPlanner::Current(), nullptr);
}

TEST(MemoryPlanner, AcquireZeroedMatchesFreshMatrix) {
  MemoryPlanner planner(/*recycle=*/true);
  // Dirty a buffer, release it, and re-acquire zeroed: contents must be
  // bit-identical to a fresh Matrix.
  Matrix dirty = planner.AcquireUninit(3, 5);
  dirty.Fill(7.5);
  planner.Release(std::move(dirty));
  Matrix z = planner.AcquireZeroed(3, 5);
  const Matrix fresh(3, 5);
  EXPECT_EQ(std::memcmp(z.data(), fresh.data(), sizeof(double) * z.size()),
            0);
}

TEST(MemoryPlanner, HelpersDegradeGracefullyWithoutPlanner) {
  ASSERT_EQ(MemoryPlanner::Current(), nullptr);
  Matrix z = AcquireGradZeroed(2, 3);
  EXPECT_EQ(z.rows(), 2);
  for (int64_t i = 0; i < z.size(); ++i) EXPECT_EQ(z.data()[i], 0.0);
  Matrix src(2, 3);
  src.Fill(1.25);
  Matrix copy = AcquireGradCopy(src);
  EXPECT_EQ(
      std::memcmp(copy.data(), src.data(), sizeof(double) * src.size()), 0);
  ReleaseGrad(std::move(copy));  // No planner: plain destruction, no crash.
  EXPECT_TRUE(copy.empty());
}

// --- end-to-end: GCN training, planner on vs off -----------------------------

struct TrainResult {
  Matrix w1, w2;
  double peak_bytes;
};

// A 2-layer GCN on a tiny ring graph, trained for a few steps. All
// randomness is seeded, so two runs differ only in BackwardOptions.
TrainResult TrainSmallGcn(bool recycle) {
  const int n = 24, in_dim = 12, hidden = 16, classes = 3;
  std::vector<Triplet> trips;
  for (int i = 0; i < n; ++i) {
    trips.push_back({i, (i + 1) % n, 1.0});
    trips.push_back({(i + 1) % n, i, 1.0});
    trips.push_back({i, i, 1.0});
  }
  const SparseMatrix a_norm =
      SparseMatrix::FromTriplets(n, n, trips).RowNormalizedL1();

  Rng rng(123);
  const Matrix x = Matrix::RandomNormal(n, in_dim, 1.0, rng);
  VarPtr w1 = MakeParameter(Matrix::GlorotUniform(in_dim, hidden, rng));
  VarPtr w2 = MakeParameter(Matrix::GlorotUniform(hidden, classes, rng));
  std::vector<int> rows, labels;
  for (int i = 0; i < n; i += 2) {
    rows.push_back(i);
    labels.push_back(i % classes);
  }

  Sgd opt({w1, w2}, /*lr=*/0.05);
  VarPtr xc = MakeConstant(x);
  BackwardOptions opts;
  opts.recycle_buffers = recycle;
  for (int step = 0; step < 5; ++step) {
    VarPtr h = Relu(SpMM(&a_norm, MatMul(xc, w1)));
    VarPtr logits = SpMM(&a_norm, MatMul(h, w2));
    VarPtr loss = SoftmaxCrossEntropy(logits, rows, labels);
    opt.ZeroGrad();
    Backward(loss, opts);
    opt.Step();
  }

  Gauge* peak = MetricsRegistry::Global().GetGauge(
      "autograd/peak_bytes", MetricClass::kDeterministic);
  return {w1->value(), w2->value(), peak->Value()};
}

TEST(MemoryPlannerRegression, PlannerOnIsByteIdenticalAndStrictlySmaller) {
  const TrainResult off = TrainSmallGcn(/*recycle=*/false);
  const TrainResult on = TrainSmallGcn(/*recycle=*/true);

  ASSERT_EQ(on.w1.rows(), off.w1.rows());
  ASSERT_EQ(on.w2.rows(), off.w2.rows());
  EXPECT_EQ(std::memcmp(on.w1.data(), off.w1.data(),
                        sizeof(double) * on.w1.size()),
            0)
      << "W1 diverged: recycling changed numerics";
  EXPECT_EQ(std::memcmp(on.w2.data(), off.w2.data(),
                        sizeof(double) * on.w2.size()),
            0)
      << "W2 diverged: recycling changed numerics";

  // The gauge holds the last sweep's fresh-byte footprint. With recycling
  // every acquisition after warm-up hits the arena, so the footprint must be
  // strictly below the allocate-per-op baseline.
  EXPECT_GT(off.peak_bytes, 0.0);
  EXPECT_LT(on.peak_bytes, off.peak_bytes)
      << "planner on did not reduce the gradient footprint";
}

}  // namespace
}  // namespace aneci::ag

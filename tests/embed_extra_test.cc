// Deeper behavioural tests for the matrix-factorisation and attention
// embedders beyond the registry smoke suite.
#include <gtest/gtest.h>

#include <cmath>

#include "data/sbm.h"
#include "embed/embedder.h"
#include "embed/gat.h"
#include "embed/hope.h"
#include "embed/one.h"
#include "embed/sdne.h"
#include "embed/spectral.h"
#include "tasks/metrics.h"
#include "util/rng.h"

namespace aneci {
namespace {

Graph TwoBlocks(uint64_t seed, int n = 150) {
  SbmOptions opt;
  opt.num_nodes = n;
  opt.num_classes = 2;
  opt.num_edges = 4 * n;
  opt.intra_fraction = 0.93;
  opt.attribute_dim = 30;
  opt.words_per_node = 6;
  Rng rng(seed);
  return GenerateSbm(opt, rng);
}

EmbedOptions WithRng(Rng& rng) {
  EmbedOptions eo;
  eo.rng = &rng;
  return eo;
}

double IntraInterGap(const Graph& g, const Matrix& z) {
  // Mean cosine similarity within class minus across classes.
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (int i = 0; i < g.num_nodes(); i += 2) {
    for (int j = i + 1; j < g.num_nodes(); j += 3) {
      const double sim = CosineSimilarity(z.RowPtr(i), z.RowPtr(j), z.cols());
      if (g.labels()[i] == g.labels()[j]) {
        intra += sim;
        ++n_intra;
      } else {
        inter += sim;
        ++n_inter;
      }
    }
  }
  return intra / n_intra - inter / n_inter;
}

TEST(HopeTest, KatzFactorizationSeparatesBlocks) {
  Graph g = TwoBlocks(1);
  Hope::Options opt;
  opt.dim = 4;
  Hope model(opt);
  Rng rng(2);
  Matrix z = model.Embed(g, WithRng(rng));
  EXPECT_EQ(z.rows(), g.num_nodes());
  EXPECT_GT(IntraInterGap(g, z), 0.05);
}

TEST(HopeTest, EmbeddingApproximatesKatzInnerProducts) {
  // On a tiny graph, z_i . z_j should correlate with the Katz proximity:
  // connected pairs score higher than random non-adjacent pairs.
  Graph g = TwoBlocks(3, 60);
  Hope::Options opt;
  opt.dim = 8;
  Hope model(opt);
  Rng rng(4);
  Matrix z = model.Embed(g, WithRng(rng));
  double edge_dot = 0.0;
  for (const Edge& e : g.edges()) {
    for (int c = 0; c < z.cols(); ++c) edge_dot += z(e.u, c) * z(e.v, c);
  }
  edge_dot /= g.num_edges();
  double random_dot = 0.0;
  int count = 0;
  Rng pick(5);
  while (count < 200) {
    const int i = static_cast<int>(pick.NextInt(g.num_nodes()));
    const int j = static_cast<int>(pick.NextInt(g.num_nodes()));
    if (i == j || g.HasEdge(i, j)) continue;
    for (int c = 0; c < z.cols(); ++c) random_dot += z(i, c) * z(j, c);
    ++count;
  }
  random_dot /= count;
  EXPECT_GT(edge_dot, random_dot);
}

TEST(SdneTest, FirstOrderTermPullsNeighborsTogether) {
  Graph g = TwoBlocks(6);
  Rng r1(7), r2(7);
  Sdne::Options weak;
  weak.epochs = 60;
  weak.alpha = 0.0;  // No Laplacian term.
  Sdne::Options strong = weak;
  strong.alpha = 2.0;
  Sdne m_weak(weak), m_strong(strong);
  Matrix z_weak = m_weak.Embed(g, WithRng(r1));
  Matrix z_strong = m_strong.Embed(g, WithRng(r2));

  auto mean_edge_distance = [&](const Matrix& z) {
    double total = 0.0;
    for (const Edge& e : g.edges()) {
      double d = 0.0;
      for (int c = 0; c < z.cols(); ++c) {
        const double diff = z(e.u, c) - z(e.v, c);
        d += diff * diff;
      }
      total += std::sqrt(d);
    }
    return total / g.num_edges();
  };
  // Normalise by embedding scale so the comparison is fair.
  const double scale_weak = z_weak.FrobeniusNorm();
  const double scale_strong = z_strong.FrobeniusNorm();
  EXPECT_LT(mean_edge_distance(z_strong) / scale_strong,
            mean_edge_distance(z_weak) / scale_weak);
}

TEST(OneTest, SharedFactorSeparatesBlocks) {
  Graph g = TwoBlocks(8, 200);
  One::Options opt;
  opt.rounds = 20;
  One model(opt);
  Rng rng(9);
  Matrix u = model.Embed(g, WithRng(rng));
  EXPECT_EQ(u.rows(), 200);
  EXPECT_GT(IntraInterGap(g, u), 0.05);
}

TEST(OneTest, OutlierWeightsDownweightNoisyNodes) {
  // The alternating scheme must at least keep training stable when a few
  // nodes are rewired across blocks (the weights absorb their residuals).
  Graph g = TwoBlocks(9, 150);
  Rng rng(10);
  for (int t = 0; t < 8; ++t) {
    const int node = static_cast<int>(rng.NextInt(g.num_nodes()));
    const std::vector<int> nbrs = g.Neighbors(node);
    for (int v : nbrs) g.RemoveEdge(node, v);
    int added = 0;
    while (added < static_cast<int>(nbrs.size())) {
      const int v = static_cast<int>(rng.NextInt(g.num_nodes()));
      if (v != node && g.AddEdge(node, v)) ++added;
    }
  }
  One::Options opt;
  opt.rounds = 15;
  One model(opt);
  Matrix u = model.Embed(g, WithRng(rng));
  for (int64_t i = 0; i < u.size(); ++i)
    ASSERT_TRUE(std::isfinite(u.data()[i]));
  EXPECT_GT(IntraInterGap(g, u), 0.0);
}

TEST(GateTest, EmbeddingSeparatesBlocks) {
  Graph g = TwoBlocks(10);
  Gate::Options opt;
  opt.epochs = 40;
  opt.dim = 8;
  Gate model(opt);
  Rng rng(11);
  Matrix z = model.Embed(g, WithRng(rng));
  EXPECT_GT(IntraInterGap(g, z), 0.05);
}

TEST(GatClassifierExtra, AttentionHandlesIsolatedNodes) {
  // Isolated nodes only attend to themselves; training must not blow up.
  Graph g = TwoBlocks(12, 80);
  Graph with_isolates(g.num_nodes() + 3);
  for (const Edge& e : g.edges()) with_isolates.AddEdge(e.u, e.v);
  std::vector<int> labels = g.labels();
  labels.push_back(0);
  labels.push_back(1);
  labels.push_back(0);
  with_isolates.SetLabels(labels);

  Dataset ds;
  ds.graph = with_isolates;
  Rng rng(13);
  MakePlanetoidSplit(with_isolates, 10, 20, 30, rng, &ds);
  GatClassifier::Options opt;
  opt.epochs = 30;
  GatClassifier model(opt);
  model.Fit(ds, rng);
  EXPECT_EQ(model.predictions().size(),
            static_cast<size_t>(with_isolates.num_nodes()));
}

}  // namespace
}  // namespace aneci

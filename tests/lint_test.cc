// Tests for aneci_lint itself: tokenizer correctness on the lexical edge
// cases that would otherwise cause false findings (raw strings, line
// continuations, block comments), one positive and one negative fixture per
// check — including seeded-violation fixtures for the cross-TU concurrency
// suite — and the NOLINT suppression contract (reason required, suppression
// scoped to its logical line).
#include "tools/lint/lint.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lint/model.h"
#include "tools/lint/tokenizer.h"

namespace aneci::lint {
namespace {

std::vector<std::string> CheckNames(const std::vector<Finding>& findings) {
  std::vector<std::string> names;
  for (const Finding& f : findings) names.push_back(f.check);
  return names;
}

int CountCheck(const std::vector<Finding>& findings, const std::string& name) {
  int n = 0;
  for (const Finding& f : findings) n += f.check == name;
  return n;
}

// --- Tokenizer ---------------------------------------------------------------

TEST(Tokenizer, StripsLineAndBlockComments) {
  const TokenizedFile tf = Tokenize(
      "int a; // trailing comment with rand() inside\n"
      "/* block with std::ofstream\n   spanning lines */ int b;\n");
  for (const Token& t : tf.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "ofstream");
  }
  ASSERT_EQ(tf.comments.size(), 2u);
  EXPECT_FALSE(tf.comments[0].block);
  EXPECT_TRUE(tf.comments[1].block);
  EXPECT_EQ(tf.comments[1].line, 2);
  // `int b;` sits on the physical line where the block comment closes.
  EXPECT_EQ(tf.tokens.back().line, 3);
}

TEST(Tokenizer, StringAndCharLiteralsAreOpaque) {
  const TokenizedFile tf = Tokenize(
      "const char* s = \"call rand() and std::cout here\";\n"
      "char c = 'r'; const char* esc = \"quote \\\" rand() after escape\";\n");
  for (const Token& t : tf.tokens) {
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "cout");
    }
  }
}

TEST(Tokenizer, RawStringsSwallowEverythingUpToDelimiter) {
  const TokenizedFile tf = Tokenize(
      "auto s = R\"(contains \" quote, rand(), and // not-a-comment)\";\n"
      "auto d = R\"xy(nested )\" not the end, std::ofstream)xy\"; int tail;\n");
  EXPECT_TRUE(tf.comments.empty());
  int strings = 0;
  for (const Token& t : tf.tokens) {
    strings += t.kind == TokenKind::kString;
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "ofstream");
    }
  }
  EXPECT_EQ(strings, 2);
  ASSERT_GE(tf.tokens.size(), 2u);
  EXPECT_EQ(tf.tokens[tf.tokens.size() - 2].text, "tail");
}

TEST(Tokenizer, LineContinuationsSpliceButKeepLineNumbers) {
  const TokenizedFile tf = Tokenize(
      "#define MAC(x) \\\n  do_thing(x)\n"
      "int af\\\nter;\n");
  ASSERT_FALSE(tf.tokens.empty());
  // The directive is one logical token covering two physical lines.
  EXPECT_EQ(tf.tokens[0].kind, TokenKind::kPreprocessor);
  EXPECT_NE(tf.tokens[0].text.find("do_thing"), std::string::npos);
  // `af\<newline>ter` splices into one identifier...
  bool found = false;
  for (const Token& t : tf.tokens) found |= t.text == "after";
  EXPECT_TRUE(found);
  // ...and the token after it is on physical line 4.
  EXPECT_EQ(tf.tokens.back().text, ";");
  EXPECT_EQ(tf.tokens.back().line, 4);
}

TEST(Tokenizer, BackslashContinuedLineCommentSwallowsNextLine) {
  const TokenizedFile tf = Tokenize(
      "// comment that continues \\\nrand(); onto this line\nint x;\n");
  for (const Token& t : tf.tokens) EXPECT_NE(t.text, "rand");
  ASSERT_EQ(tf.comments.size(), 1u);
}

TEST(Tokenizer, FusesQualifierAndArrowPunctuation) {
  const TokenizedFile tf = Tokenize("a::b; c->d; eerase;");
  ASSERT_GE(tf.tokens.size(), 4u);
  EXPECT_EQ(tf.tokens[1].text, "::");
  EXPECT_EQ(tf.tokens[5].text, "->");
}

TEST(Tokenizer, RawStringDelimiterIgnoresQuoteParenFakes) {
  // `)"` and `)x"` inside the body must not terminate a `)del"`-delimited
  // raw string.
  const TokenizedFile tf = Tokenize(
      "auto s = R\"del(body with )\" and )x\" fakes, rand())del\"; int t;\n");
  int strings = 0;
  for (const Token& t : tf.tokens) {
    strings += t.kind == TokenKind::kString;
    EXPECT_NE(t.text, "rand");
  }
  EXPECT_EQ(strings, 1);
  ASSERT_GE(tf.tokens.size(), 2u);
  EXPECT_EQ(tf.tokens[tf.tokens.size() - 2].text, "t");
}

TEST(Tokenizer, EncodingPrefixedStringsAreOpaque) {
  const TokenizedFile tf = Tokenize(
      "auto a = u8\"rand()\"; auto b = L\"time(nullptr)\";\n"
      "auto c = u8R\"(std::random_device)\"; auto d = uR\"q(srand(1))q\";\n");
  for (const Token& t : tf.tokens) {
    if (t.kind != TokenKind::kIdentifier) continue;
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "time");
    EXPECT_NE(t.text, "srand");
    EXPECT_NE(t.text, "random_device");
  }
}

TEST(Tokenizer, IdentifierEndingInPrefixLettersIsNotAPrefix) {
  // A macro name that happens to end in u8/L/R is an identifier followed by
  // an ordinary string, not an encoding prefix.
  const TokenizedFile tf = Tokenize("FROB_u8\"text\"; int after;\n");
  ASSERT_GE(tf.tokens.size(), 2u);
  EXPECT_EQ(tf.tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tf.tokens[0].text, "FROB_u8");
  EXPECT_EQ(tf.tokens[1].kind, TokenKind::kString);
}

TEST(Tokenizer, RecordsContinuationLinesForLogicalLineScoping) {
  const TokenizedFile tf = Tokenize(
      "int a = 1;\n"
      "int b = 2 + \\\n"
      "        3 + \\\n"
      "        4;\n"
      "int c;\n");
  EXPECT_EQ(tf.continuation_lines, (std::vector<int>{3, 4}));
  EXPECT_EQ(LogicalLineStart(tf, 4), 2);
  EXPECT_EQ(LogicalLineStart(tf, 3), 2);
  EXPECT_EQ(LogicalLineStart(tf, 2), 2);
  EXPECT_EQ(LogicalLineStart(tf, 5), 5);

  // A multi-line raw string is NOT a phase-2 splice: its physical lines
  // stay separate logical lines.
  const TokenizedFile raw =
      Tokenize("auto s = R\"(line one\nline two)\";\nint x;\n");
  EXPECT_TRUE(raw.continuation_lines.empty());
  EXPECT_EQ(LogicalLineStart(raw, 2), 2);
}

// --- discarded-status --------------------------------------------------------

constexpr const char* kStatusDecls =
    "Status Save(int x);\n"
    "StatusOr<int> Load(int x);\n";

TEST(DiscardedStatus, FlagsBareCallStatement) {
  const auto findings = LintContent(
      "src/x.cc", std::string(kStatusDecls) + "void f() { Save(1); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "discarded-status");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[0].ToString().rfind("src/x.cc:3: discarded-status:", 0),
            0u);
}

TEST(DiscardedStatus, FlagsStatusOrAndMemberCalls) {
  const auto findings = LintContent(
      "src/x.cc", std::string(kStatusDecls) +
                      "struct E { Status Write(int); };\n"
                      "void f(E* e) { Load(1); e->Write(2); }\n");
  EXPECT_EQ(CountCheck(findings, "discarded-status"), 2);
}

TEST(DiscardedStatus, IgnoresConsumedResults) {
  const auto findings = LintContent(
      "src/x.cc",
      std::string(kStatusDecls) +
          "Status g() {\n"
          "  Status st = Save(1);\n"
          "  if (!Save(2).ok()) return Save(3);\n"
          "  (void)Save(4);\n"
          "  ANECI_RETURN_IF_ERROR(Save(5));\n"
          "  return Save(6);\n"
          "}\n");
  EXPECT_EQ(CountCheck(findings, "discarded-status"), 0);
}

TEST(DiscardedStatus, CrossFileSymbolTableAndLocalOverride) {
  Linter linter;
  linter.AddFile("src/io.h",
                 "#ifndef IO_H_\n#define IO_H_\n"
                 "Status Persist(int x);\n#endif\n");
  linter.AddFile("src/user.cc", "void f() { Persist(7); }\n");
  // This file's Get returns char, even though another file's Get returns
  // Status — the local declaration wins, no finding.
  linter.AddFile("src/reader.h",
                 "#ifndef READER_H_\n#define READER_H_\n"
                 "struct R { Status Get(int*); };\n#endif\n");
  linter.AddFile("src/cursor.cc",
                 "struct C { char Get(); };\n"
                 "void g(C* c) { c->Get(); }\n");
  const auto findings = linter.Run();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/user.cc");
  EXPECT_EQ(findings[0].check, "discarded-status");
}

TEST(DiscardedStatus, QualifiedMemberDefinitionCountsAsLocalOverride) {
  // pool.cc's `void Pool::Start(...)` must register Start as locally
  // non-Status even though the definition is name-qualified; otherwise the
  // Status-returning Start from server.h poisons every other Start.
  Linter linter;
  linter.AddFile("src/server.h",
                 "#ifndef SERVER_H_\n#define SERVER_H_\n"
                 "struct Server { Status Start(int port); };\n#endif\n");
  // Deliberately no in-class declaration here: like a real .cc whose class
  // lives in the header, the only evidence Start is void is the qualified
  // definition.
  linter.AddFile("src/pool.cc",
                 "void Pool::Start(int n) {}\n"
                 "Pool::Pool(int n) { Start(n); }\n");
  EXPECT_TRUE(linter.Run().empty());
}

// --- banned-nondeterminism ---------------------------------------------------

TEST(BannedNondeterminism, FlagsEachSourceInSrc) {
  const auto findings = LintContent(
      "src/core/x.cc",
      "void f() {\n"
      "  srand(42);\n"
      "  int r = rand();\n"
      "  long t = time(nullptr);\n"
      "  std::random_device rd;\n"
      "  auto n = std::chrono::steady_clock::now();\n"
      "}\n");
  EXPECT_EQ(CountCheck(findings, "banned-nondeterminism"), 5);
}

TEST(BannedNondeterminism, AllowsTimerHeaderAndNonSrcTrees) {
  EXPECT_TRUE(LintContent("src/util/timer.h",
                          "#ifndef T\n#define T\nauto t = "
                          "std::chrono::steady_clock::now();\n#endif\n")
                  .empty());
  EXPECT_TRUE(
      LintContent("bench/b.cc", "auto t = std::chrono::steady_clock::now();\n")
          .empty());
  // Identifiers that merely *contain* banned names are fine.
  EXPECT_TRUE(LintContent("src/x.cc", "int timeout = randomize_seed;\n")
                  .empty());
}

TEST(BannedNondeterminism, CpuidProbesConfinedToKernelDispatch) {
  const auto findings = LintContent(
      "src/linalg/matrix.cc",
      "bool f() { return __builtin_cpu_supports(\"avx2\"); }\n"
      "bool g() { unsigned a, b, c, d; return __get_cpuid(1, &a, &b, &c, &d); "
      "}\n");
  EXPECT_EQ(CountCheck(findings, "banned-nondeterminism"), 2);
  // The one audited selection point is exempt.
  EXPECT_TRUE(LintContent("src/linalg/kernels/dispatch.cc",
                          "bool f() { return __builtin_cpu_supports(\"avx2\") "
                          "&& __builtin_cpu_supports(\"fma\"); }\n")
                  .empty());
  // Non-call uses (e.g. mentioning the name in a string already opaque, or an
  // identifier without a call) are not flagged.
  EXPECT_TRUE(
      LintContent("src/x.cc", "int __builtin_cpu_supports_count = 0;\n")
          .empty());
}

// --- banned-raw-io -----------------------------------------------------------

TEST(BannedRawIo, FlagsWritePathsInSrcOnly) {
  const auto in_src = LintContent(
      "src/data/x.cc",
      "void f() { std::ofstream o(\"p\"); FILE* g = fopen(\"p\", \"w\"); }\n");
  EXPECT_EQ(CountCheck(in_src, "banned-raw-io"), 2);
  EXPECT_TRUE(LintContent("tools/t.cc", "std::ofstream o(\"p\");\n").empty());
  // env.cc is the designated raw-IO site.
  EXPECT_TRUE(
      LintContent("src/util/env.cc", "std::ofstream o(\"p\");\n").empty());
}

TEST(BannedRawIo, FlagsReadPathsInSrcOutsideEnv) {
  // Reads route through Env::ReadFile too — the fault-injection Env must
  // cover every IO path the robustness tests replay through.
  const auto in_src =
      LintContent("src/graph/g.cc", "std::ifstream in(\"p\");\n");
  EXPECT_EQ(CountCheck(in_src, "banned-raw-io"), 1);
  // env.cc implements ReadFile; tools/tests are outside the library rule.
  EXPECT_TRUE(
      LintContent("src/util/env.cc", "std::ifstream in(\"p\");\n").empty());
  EXPECT_TRUE(
      LintContent("tools/t.cc", "std::ifstream in(\"p\");\n").empty());
}

TEST(BannedRawIo, FlagsRawSocketSyscallsOutsideTheShim) {
  // Bare and globally qualified syscalls are both the real thing.
  const auto bare = LintContent(
      "src/core/x.cc",
      "void f(int fd) { send(fd, \"x\", 1, 0); recv(fd, b, 1, 0); }\n");
  EXPECT_EQ(CountCheck(bare, "banned-raw-io"), 2);
  const auto qualified = LintContent(
      "src/serve/server.cc", "int s = ::socket(AF_INET, SOCK_STREAM, 0);\n");
  EXPECT_EQ(CountCheck(qualified, "banned-raw-io"), 1);
  // accept/bind/listen/shutdown/connect round out the surface.
  const auto listener = LintContent(
      "src/core/y.cc",
      "void g(int fd) { bind(fd, a, l); listen(fd, 8); accept(fd, 0, 0); "
      "connect(fd, a, l); shutdown(fd, 2); }\n");
  EXPECT_EQ(CountCheck(listener, "banned-raw-io"), 5);
}

TEST(BannedRawIo, FlagsPollAndFcntlOutsideTheShim) {
  // Deadline plumbing (poll/ppoll) and fd-mode twiddling (fcntl) are part of
  // the same audited surface as the socket calls they gate.
  const auto bare = LintContent(
      "src/serve/server.cc",
      "void f(pollfd* p, int fd) { poll(p, 1, 50); fcntl(fd, F_GETFL); }\n");
  EXPECT_EQ(CountCheck(bare, "banned-raw-io"), 2);
  const auto qualified =
      LintContent("src/core/x.cc", "int r = ::ppoll(p, 1, &ts, nullptr);\n");
  EXPECT_EQ(CountCheck(qualified, "banned-raw-io"), 1);
  const auto sockopt = LintContent(
      "src/serve/client.cc", "setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, t, l);\n");
  EXPECT_EQ(CountCheck(sockopt, "banned-raw-io"), 1);
  // The shim itself is exempt, and member calls named poll are not syscalls.
  EXPECT_TRUE(LintContent("src/serve/socket_io.cc",
                          "int r = ::poll(fds, 1, timeout_ms);\n")
                  .empty());
  EXPECT_TRUE(
      LintContent("src/serve/x.cc", "executor.poll(); queue->poll();\n")
          .empty());
}

TEST(BannedRawIo, SocketShimAndLookalikesAreExempt) {
  // The designated shim is the one src/ file allowed to make syscalls.
  EXPECT_TRUE(LintContent("src/serve/socket_io.cc",
                          "int s = ::socket(AF_INET, SOCK_STREAM, 0);\n"
                          "void f(int fd) { ::shutdown(fd, SHUT_RDWR); }\n")
                  .empty());
  // Member calls, namespace-qualified names, and non-call uses are other
  // people's identifiers, not syscalls.
  EXPECT_TRUE(LintContent("src/serve/x.cc",
                          "void f() { queue.send(m); Transport::connect(h); "
                          "mailbox->accept(v); int send = 3; }\n")
                  .empty());
  // Outside src/ the check does not apply (tests drive sockets directly).
  EXPECT_TRUE(
      LintContent("tests/t.cc", "recv(fd, buf, n, 0);\n").empty());
  // std::bind (the functional one) must not trip the `bind` syscall name.
  EXPECT_TRUE(
      LintContent("src/core/z.cc", "auto g = std::bind(f, 1);\n").empty());
}

// --- no-iostream-in-library --------------------------------------------------

TEST(NoIostream, FlagsCoutCerrAndIncludeInSrcOnly) {
  const auto findings = LintContent(
      "src/core/x.cc",
      "#include <iostream>\nvoid f() { std::cout << 1; std::cerr << 2; }\n");
  EXPECT_EQ(CountCheck(findings, "no-iostream-in-library"), 3);
  EXPECT_TRUE(
      LintContent("tests/t.cc", "void f() { std::cerr << 1; }\n").empty());
}

// --- banned-adhoc-timing -----------------------------------------------------

TEST(BannedAdhocTiming, FlagsTimerIncludeAndRawTimerInSrc) {
  const auto findings = LintContent(
      "src/embed/x.cc",
      "#include \"util/timer.h\"\nvoid f() { Timer t; double m = t.Millis(); "
      "}\n");
  EXPECT_EQ(CountCheck(findings, "banned-adhoc-timing"), 2);
}

TEST(BannedAdhocTiming, TimingLayerAndNonSrcTreesAreExempt) {
  LintOptions opts;
  opts.only_check = "banned-adhoc-timing";
  // The observability layer itself may (must) use the raw clock.
  for (const char* path :
       {"src/util/timer.h", "src/util/trace.h", "src/util/trace.cc",
        "src/util/metrics.h", "src/util/metrics.cc"}) {
    EXPECT_TRUE(
        LintContent(path, "#include \"util/timer.h\"\nTimer t;\n", opts)
            .empty())
        << path;
  }
  // Bench and tool code times however it likes.
  EXPECT_TRUE(
      LintContent("bench/b.cc", "#include \"util/timer.h\"\nTimer t;\n", opts)
          .empty());
}

TEST(BannedAdhocTiming, SanctionedWrappersDoNotMatch) {
  // ScopedLatencyTimer / TraceSpan are distinct identifiers, not `Timer`.
  EXPECT_TRUE(LintContent("src/util/checkpoint.cc",
                          "#include \"util/metrics.h\"\nvoid f(Histogram* h) "
                          "{ ScopedLatencyTimer t(h); TraceSpan s(\"x\"); }\n")
                  .empty());
}

// --- header-hygiene ----------------------------------------------------------

TEST(HeaderHygiene, RequiresGuardAndBansUsingNamespace) {
  const auto unguarded =
      LintContent("src/x.h", "#include <string>\nint f();\n");
  EXPECT_EQ(CountCheck(unguarded, "header-hygiene"), 1);

  const auto leaky = LintContent(
      "src/y.h", "#ifndef Y_H_\n#define Y_H_\nusing namespace std;\n#endif\n");
  ASSERT_EQ(CountCheck(leaky, "header-hygiene"), 1);
  EXPECT_EQ(leaky[0].line, 3);

  EXPECT_TRUE(LintContent("src/ok.h",
                          "// comment first is fine\n#ifndef OK_H_\n#define "
                          "OK_H_\nint f();\n#endif\n")
                  .empty());
  EXPECT_TRUE(
      LintContent("src/pragma.h", "#pragma once\nint f();\n").empty());
  // .cc files are exempt.
  EXPECT_TRUE(LintContent("src/x.cc", "#include <string>\nint f();\n")
                  .empty());
}

// --- NOLINT suppression ------------------------------------------------------

TEST(Nolint, SuppressionWithReasonIsHonoredOnItsLineOnly) {
  const auto findings = LintContent(
      "src/x.cc",
      std::string(kStatusDecls) +
          "void f() {\n"
          "  Save(1);  // NOLINT(discarded-status): fire-and-forget probe\n"
          "  Save(2);\n"
          "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 5);
}

TEST(Nolint, ReasonIsRequired) {
  const auto findings = LintContent(
      "src/x.cc", std::string(kStatusDecls) +
                      "void f() {\n"
                      "  Save(1);  // NOLINT(discarded-status)\n"
                      "}\n");
  // The reasonless NOLINT does not suppress, and is itself a finding.
  EXPECT_EQ(CountCheck(findings, "discarded-status"), 1);
  EXPECT_EQ(CountCheck(findings, "nolint-reason"), 1);
}

TEST(Nolint, NextlineAndForeignChecksAndMultipleNames) {
  const auto next = LintContent(
      "src/x.cc", std::string(kStatusDecls) +
                      "void f() {\n"
                      "  // NOLINTNEXTLINE(discarded-status): warm-up call\n"
                      "  Save(1);\n"
                      "}\n");
  EXPECT_TRUE(next.empty());

  // clang-tidy style NOLINTs naming foreign checks are none of our business.
  const auto foreign = LintContent(
      "src/x.cc", "int x = 0;  // NOLINT(runtime/int)\nint y = 0;  // NOLINT\n");
  EXPECT_TRUE(foreign.empty());

  const auto multi = LintContent(
      "src/x.cc",
      "#include <ctime>\n"
      "Status Save(int);\n"
      "void f() {\n"
      "  Status s = Save(time(nullptr));  "
      "// NOLINT(banned-nondeterminism): wall-clock label, not RNG\n"
      "}\n");
  EXPECT_TRUE(multi.empty());
}

TEST(Nolint, NextlineCoversEverySplicedPhysicalLine) {
  // The violating token sits on a continuation line; NEXTLINE above the
  // statement must still cover it (suppressions are logical-line scoped).
  const auto findings = LintContent(
      "src/x.cc",
      "#include <ctime>\n"
      "// NOLINTNEXTLINE(banned-nondeterminism): spliced wall-clock label\n"
      "long stamp = 1 + \\\n"
      "    time(nullptr);\n");
  EXPECT_TRUE(findings.empty());
}

TEST(Nolint, TrailingSuppressionCoversTheWholeSplicedStatement) {
  // The NOLINT comment sits on the last physical line of a spliced
  // statement; the violation is on the first.
  const auto findings = LintContent(
      "src/x.cc",
      "#include <ctime>\n"
      "long stamp = time(\\\n"
      "    nullptr);  // NOLINT(banned-nondeterminism): spliced label\n");
  EXPECT_TRUE(findings.empty());
}

// --- cross-TU concurrency suite ----------------------------------------------

constexpr const char* kGuardedBoxHeader =
    "#ifndef BOX_H_\n#define BOX_H_\n"
    "#include <mutex>\n"
    "#include \"util/thread_annotations.h\"\n"
    "class Box {\n"
    " public:\n"
    "  void Good();\n"
    "  void Bad();\n"
    " private:\n"
    "  std::mutex mu_;\n"
    "  int value_ ANECI_GUARDED_BY(mu_) = 0;\n"
    "};\n"
    "#endif\n";

TEST(GuardedMemberAccess, FlagsUnlockedAccessAndHonorsLockGuard) {
  Linter linter;
  linter.AddFile("src/box.h", kGuardedBoxHeader);
  linter.AddFile("src/box.cc",
                 "void Box::Good() {\n"
                 "  std::lock_guard<std::mutex> lock(mu_);\n"
                 "  value_ = 1;\n"
                 "}\n"
                 "void Box::Bad() { value_ = 2; }\n");
  const auto findings = linter.Run();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "guarded-member-access");
  EXPECT_EQ(findings[0].file, "src/box.cc");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(GuardedMemberAccess, RequiresSeedsTheCalleeAndBindsTheCaller) {
  Linter linter;
  linter.AddFile("src/reg.h",
                 "#ifndef REG_H_\n#define REG_H_\n"
                 "#include <mutex>\n"
                 "#include \"util/thread_annotations.h\"\n"
                 "class Reg {\n"
                 " public:\n"
                 "  void Tick();\n"
                 " private:\n"
                 "  void TickLocked() ANECI_REQUIRES(mu_);\n"
                 "  std::mutex mu_;\n"
                 "  int n_ ANECI_GUARDED_BY(mu_) = 0;\n"
                 "};\n"
                 "#endif\n");
  // TickLocked's own body is clean (REQUIRES seeds the held set); the
  // finding is the unlocked call in Tick.
  linter.AddFile("src/reg.cc",
                 "void Reg::TickLocked() { n_ += 1; }\n"
                 "void Reg::Tick() { TickLocked(); }\n");
  const auto findings = linter.Run();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "guarded-member-access");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("ANECI_REQUIRES"), std::string::npos);
}

TEST(Nolint, TrailingSuppressionOnAMultiTokenLockStatement) {
  // defer_lock means the RAII decl does NOT hold the mutex, so the access
  // on the same (multi-token) line fires — and the trailing NOLINT, after
  // all those tokens, still suppresses it.
  Linter linter;
  linter.AddFile("src/box.h", kGuardedBoxHeader);
  linter.AddFile(
      "src/box.cc",
      "void Box::Bad() {\n"
      "  std::unique_lock<std::mutex> pending(mu_, std::defer_lock); value_ "
      "= 2;  // NOLINT(guarded-member-access): published before workers\n"
      "}\n");
  EXPECT_TRUE(linter.Run().empty());
}

TEST(LockOrderCycle, DetectsCrossFileInversion) {
  Linter linter;
  linter.AddFile("src/ab.h",
                 "#ifndef AB_H_\n#define AB_H_\n"
                 "#include <mutex>\n"
                 "class B;\n"
                 "class A {\n"
                 " public:\n"
                 "  void Foo(B* b);\n"
                 "  void Ping();\n"
                 " private:\n"
                 "  std::mutex mu_;\n"
                 "};\n"
                 "class B {\n"
                 " public:\n"
                 "  void Bar(A* a);\n"
                 "  void Poke();\n"
                 " private:\n"
                 "  std::mutex mu_;\n"
                 "};\n"
                 "#endif\n");
  // a.cc nests A::mu_ -> B::mu_ (through the call to Poke); b.cc nests
  // B::mu_ -> A::mu_ the same way. Each file is locally consistent — only
  // the cross-file view exposes the inversion.
  linter.AddFile("src/a.cc",
                 "void A::Ping() { std::lock_guard<std::mutex> lock(mu_); }\n"
                 "void A::Foo(B* b) {\n"
                 "  std::lock_guard<std::mutex> lock(mu_);\n"
                 "  b->Poke();\n"
                 "}\n");
  linter.AddFile("src/b.cc",
                 "void B::Poke() { std::lock_guard<std::mutex> lock(mu_); }\n"
                 "void B::Bar(A* a) {\n"
                 "  std::lock_guard<std::mutex> lock(mu_);\n"
                 "  a->Ping();\n"
                 "}\n");
  const auto findings = linter.Run();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "lock-order-cycle");
  EXPECT_NE(findings[0].message.find("A::mu_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("B::mu_"), std::string::npos);
}

TEST(LockOrderCycle, FlagsRecursiveAcquisition) {
  Linter linter;
  linter.AddFile("src/rec.h",
                 "#ifndef REC_H_\n#define REC_H_\n"
                 "#include <mutex>\n"
                 "class R {\n"
                 " public:\n"
                 "  void Outer();\n"
                 "  void Inner();\n"
                 " private:\n"
                 "  std::mutex mu_;\n"
                 "};\n"
                 "#endif\n");
  linter.AddFile("src/rec.cc",
                 "void R::Inner() { std::lock_guard<std::mutex> lock(mu_); }\n"
                 "void R::Outer() {\n"
                 "  std::lock_guard<std::mutex> lock(mu_);\n"
                 "  Inner();\n"
                 "}\n");
  const auto findings = linter.Run();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "lock-order-cycle");
  EXPECT_NE(findings[0].message.find("recursive acquisition"),
            std::string::npos);
}

TEST(DeterminismTaint, FlagsTwoHopChainFromDeterministicRoot) {
  LintOptions opts;
  opts.only_check = "determinism-taint";
  Linter linter;
  // Train registers a kDeterministic metric (a determinism root) and the
  // banned call is two hops away in another file.
  linter.AddFile("src/leaf.cc", "int Leaf() { return rand(); }\n");
  linter.AddFile("src/mid.cc", "int Mid() { return Leaf(); }\n");
  linter.AddFile("src/train.cc",
                 "void Train() {\n"
                 "  Register(MetricClass::kDeterministic);\n"
                 "  Mid();\n"
                 "}\n");
  const auto findings = linter.Run(opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "determinism-taint");
  EXPECT_EQ(findings[0].file, "src/leaf.cc");
  EXPECT_NE(findings[0].message.find("Train"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Mid"), std::string::npos);
}

TEST(DeterminismTaint, UntaintedCodeMayUseBannedCallsUnderNolint) {
  LintOptions opts;
  opts.only_check = "determinism-taint";
  Linter linter;
  // No deterministic root reaches Jitter, so the taint check stays quiet
  // (banned-nondeterminism still fires, which is what the NOLINT is for).
  linter.AddFile(
      "src/jitter.cc",
      "int Jitter() {\n"
      "  return rand();  // NOLINT(banned-nondeterminism): test-only noise\n"
      "}\n");
  EXPECT_TRUE(linter.Run(opts).empty());
}

// --- per-root policy ---------------------------------------------------------

TEST(Policy, NonSrcRootsGetOnlyHygieneAndStatusChecks) {
  Linter linter;
  // rand() in tools/ is fine; the discarded Status is not.
  linter.AddFile("tools/gen.cc",
                 "Status Run();\n"
                 "void f() { Run(); int x = rand(); }\n");
  const auto findings = linter.Run();
  EXPECT_EQ(CheckNames(findings),
            std::vector<std::string>{"discarded-status"});
}

TEST(Policy, ConcurrencyModelIsBuiltFromSrcOnly) {
  Linter linter;
  // The same seeded violation that fires under src/ is out of scope for a
  // tools/ fixture generator.
  linter.AddFile("tools/box.h", kGuardedBoxHeader);
  linter.AddFile("tools/box.cc", "void Box::Bad() { value_ = 2; }\n");
  EXPECT_TRUE(linter.Run().empty());
}

// --- ProjectModel introspection ----------------------------------------------

TEST(Model, ReportsNestedAcquisitionEdges) {
  const TokenizedFile tf = Tokenize(
      "#include <mutex>\n"
      "class P {\n"
      " public:\n"
      "  void Both();\n"
      " private:\n"
      "  std::mutex a_;\n"
      "  std::mutex b_;\n"
      "};\n"
      "void P::Both() {\n"
      "  std::lock_guard<std::mutex> la(a_);\n"
      "  std::lock_guard<std::mutex> lb(b_);\n"
      "}\n");
  const ProjectModel model({{"src/p.cc", &tf}});
  EXPECT_EQ(model.lock_order_edges(),
            (std::vector<std::string>{"P::a_ -> P::b_"}));
}

// --- check filtering ---------------------------------------------------------

TEST(Options, OnlyCheckFiltersFindings) {
  LintOptions opts;
  opts.only_check = "banned-raw-io";
  const auto findings = LintContent(
      "src/x.cc",
      std::string(kStatusDecls) +
          "void f() { Save(1); std::ofstream o(\"p\"); }\n",
      opts);
  EXPECT_EQ(CheckNames(findings),
            std::vector<std::string>{"banned-raw-io"});
}

TEST(Registry, ListsAllTenChecks) {
  EXPECT_EQ(RegisteredChecks().size(), 10u);
  EXPECT_TRUE(IsRegisteredCheck("discarded-status"));
  EXPECT_TRUE(IsRegisteredCheck("banned-adhoc-timing"));
  EXPECT_TRUE(IsRegisteredCheck("header-hygiene"));
  EXPECT_TRUE(IsRegisteredCheck("guarded-member-access"));
  EXPECT_TRUE(IsRegisteredCheck("lock-order-cycle"));
  EXPECT_TRUE(IsRegisteredCheck("determinism-taint"));
  EXPECT_FALSE(IsRegisteredCheck("made-up-check"));
}

}  // namespace
}  // namespace aneci::lint

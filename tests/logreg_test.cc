#include <gtest/gtest.h>

#include "tasks/logistic_regression.h"
#include "tasks/metrics.h"
#include "util/rng.h"

namespace aneci {
namespace {

// Linearly separable three-class data on a 2-D simplex.
void MakeData(int per_class, Rng& rng, Matrix* x, std::vector<int>* y) {
  const double centers[3][2] = {{0, 0}, {6, 0}, {0, 6}};
  *x = Matrix(3 * per_class, 2);
  y->resize(3 * per_class);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_class; ++i) {
      const int row = c * per_class + i;
      (*x)(row, 0) = centers[c][0] + rng.NextGaussian();
      (*x)(row, 1) = centers[c][1] + rng.NextGaussian();
      (*y)[row] = c;
    }
  }
}

TEST(LogisticRegression, LearnsSeparableClasses) {
  Rng rng(1);
  Matrix x;
  std::vector<int> y;
  MakeData(40, rng, &x, &y);
  LogisticRegression model;
  model.Fit(x, y, 3, rng);
  EXPECT_GT(Accuracy(model.Predict(x), y), 0.95);
}

TEST(LogisticRegression, GeneralisesToHeldOut) {
  Rng rng(2);
  Matrix xtrain, xtest;
  std::vector<int> ytrain, ytest;
  MakeData(30, rng, &xtrain, &ytrain);
  MakeData(30, rng, &xtest, &ytest);
  LogisticRegression model;
  model.Fit(xtrain, ytrain, 3, rng);
  EXPECT_GT(Accuracy(model.Predict(xtest), ytest), 0.9);
}

TEST(LogisticRegression, ProbabilitiesAreDistributions) {
  Rng rng(3);
  Matrix x;
  std::vector<int> y;
  MakeData(20, rng, &x, &y);
  LogisticRegression model;
  model.Fit(x, y, 3, rng);
  Matrix proba = model.PredictProba(x);
  for (int i = 0; i < proba.rows(); ++i) {
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) {
      EXPECT_GE(proba(i, c), 0.0);
      sum += proba(i, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(LogisticRegression, StandardizationHandlesScaleSkew) {
  // One feature is 1000x the other; standardisation keeps it learnable.
  Rng rng(4);
  Matrix x(60, 2);
  std::vector<int> y(60);
  for (int i = 0; i < 60; ++i) {
    const int c = i % 2;
    x(i, 0) = (c ? 3000.0 : 1000.0) + 100.0 * rng.NextGaussian();
    x(i, 1) = rng.NextGaussian();
    y[i] = c;
  }
  LogisticRegression model;
  model.Fit(x, y, 2, rng);
  EXPECT_GT(Accuracy(model.Predict(x), y), 0.95);
}

TEST(LogisticRegression, ConstantFeatureDoesNotBlowUp) {
  Rng rng(5);
  Matrix x(20, 2);
  std::vector<int> y(20);
  for (int i = 0; i < 20; ++i) {
    x(i, 0) = 1.0;  // Zero variance.
    x(i, 1) = i < 10 ? -2.0 : 2.0;
    y[i] = i < 10 ? 0 : 1;
  }
  LogisticRegression model;
  model.Fit(x, y, 2, rng);
  EXPECT_GT(Accuracy(model.Predict(x), y), 0.95);
}

}  // namespace
}  // namespace aneci

#include <gtest/gtest.h>

#include "linalg/kmeans.h"
#include "util/rng.h"

namespace aneci {
namespace {

// Three well-separated Gaussian blobs in 2-D.
Matrix Blobs(int per_cluster, Rng& rng, std::vector<int>* truth) {
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  Matrix pts(3 * per_cluster, 2);
  truth->resize(3 * per_cluster);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_cluster; ++i) {
      const int row = c * per_cluster + i;
      pts(row, 0) = centers[c][0] + 0.5 * rng.NextGaussian();
      pts(row, 1) = centers[c][1] + 0.5 * rng.NextGaussian();
      (*truth)[row] = c;
    }
  }
  return pts;
}

TEST(KMeans, RecoversSeparatedBlobs) {
  Rng rng(1);
  std::vector<int> truth;
  Matrix pts = Blobs(50, rng, &truth);
  KMeansResult result = KMeans(pts, 3, rng);
  // Each true cluster maps to exactly one k-means cluster.
  for (int c = 0; c < 3; ++c) {
    const int rep = result.assignment[c * 50];
    for (int i = 0; i < 50; ++i)
      EXPECT_EQ(result.assignment[c * 50 + i], rep);
  }
  EXPECT_NE(result.assignment[0], result.assignment[50]);
  EXPECT_NE(result.assignment[50], result.assignment[100]);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(2);
  std::vector<int> truth;
  Matrix pts = Blobs(40, rng, &truth);
  KMeansOptions opt;
  opt.restarts = 3;
  const double inertia1 = KMeans(pts, 1, rng, opt).inertia;
  const double inertia3 = KMeans(pts, 3, rng, opt).inertia;
  const double inertia6 = KMeans(pts, 6, rng, opt).inertia;
  EXPECT_GT(inertia1, inertia3);
  EXPECT_GE(inertia3, inertia6);
}

TEST(KMeans, KEqualsNIsPerfect) {
  Rng rng(3);
  Matrix pts = Matrix::FromRows({{0, 0}, {5, 5}, {9, 1}});
  KMeansResult result = KMeans(pts, 3, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(KMeans, SingleCluster) {
  Rng rng(4);
  Matrix pts = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  KMeansResult result = KMeans(pts, 1, rng);
  EXPECT_EQ(result.centroids.rows(), 1);
  EXPECT_NEAR(result.centroids(0, 0), 2.0, 1e-9);
  for (int a : result.assignment) EXPECT_EQ(a, 0);
}

TEST(KMeans, DuplicatePointsDoNotCrash) {
  Rng rng(5);
  Matrix pts(10, 2, 1.0);  // All identical.
  KMeansResult result = KMeans(pts, 3, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(KMeans, RestartsNeverWorse) {
  Rng rng1(6), rng2(6);
  std::vector<int> truth;
  Matrix pts = Blobs(30, rng1, &truth);
  KMeansOptions one, many;
  one.restarts = 1;
  many.restarts = 5;
  Rng ra(7), rb(7);
  const double single = KMeans(pts, 3, ra, one).inertia;
  const double multi = KMeans(pts, 3, rb, many).inertia;
  EXPECT_LE(multi, single + 1e-9);
}

}  // namespace
}  // namespace aneci

// Tests for the bench-harness utilities that live in bench/common.h (flag
// parser and environment resolution) and the CLI argument validation in
// tools/cli_args.h — both gate reproducibility, so they get unit coverage.
#include <gtest/gtest.h>

#include "bench/common.h"
#include "tools/cli_args.h"

namespace aneci::bench {
namespace {

Flags MakeFlags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> argv;
  argv.clear();
  argv.push_back(const_cast<char*>("bench"));
  for (std::string& a : storage) argv.push_back(a.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParsesTypedValues) {
  Flags flags = MakeFlags({"--scale=0.5", "--rounds=3", "--dataset=pubmed"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.5);
  EXPECT_EQ(flags.GetInt("rounds", 1), 3);
  EXPECT_EQ(flags.GetString("dataset", "cora"), "pubmed");
}

TEST(Flags, FallbacksWhenAbsent) {
  Flags flags = MakeFlags({});
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 0.25), 0.25);
  EXPECT_EQ(flags.GetInt("rounds", 7), 7);
  EXPECT_EQ(flags.GetString("dataset", "cora"), "cora");
  EXPECT_FALSE(flags.Has("full"));
}

TEST(Flags, BooleanPresence) {
  Flags flags = MakeFlags({"--full"});
  EXPECT_TRUE(flags.Has("full"));
}

TEST(BenchEnvTest, DefaultsAreCpuBudgeted) {
  Flags flags = MakeFlags({});
  BenchEnv env = BenchEnv::FromFlags(flags);
  EXPECT_FALSE(env.full);
  EXPECT_DOUBLE_EQ(env.scale, 0.15);
  EXPECT_EQ(env.rounds, 1);
  EXPECT_EQ(env.epochs, 60);
}

TEST(BenchEnvTest, FullRestoresPaperProtocol) {
  Flags flags = MakeFlags({"--full"});
  BenchEnv env = BenchEnv::FromFlags(flags);
  EXPECT_TRUE(env.full);
  EXPECT_DOUBLE_EQ(env.scale, 1.0);
  EXPECT_EQ(env.rounds, 10);   // Paper: average of 10 runs.
  EXPECT_EQ(env.epochs, 150);  // Paper: 150 epochs for classification.
}

TEST(BenchEnvTest, ExplicitFlagsOverrideFull) {
  Flags flags = MakeFlags({"--full", "--scale=0.3", "--rounds=2"});
  BenchEnv env = BenchEnv::FromFlags(flags);
  EXPECT_DOUBLE_EQ(env.scale, 0.3);
  EXPECT_EQ(env.rounds, 2);
}

TEST(BenchEnvTest, MakeScaledProducesConsistentDataset) {
  Flags flags = MakeFlags({"--scale=0.1"});
  BenchEnv env = BenchEnv::FromFlags(flags);
  Dataset a = MakeScaled("cora", env, 0);
  Dataset b = MakeScaled("cora", env, 0);
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
  EXPECT_EQ(a.train_idx, b.train_idx);
  // Different rounds differ.
  Dataset c = MakeScaled("cora", env, 1);
  EXPECT_NE(a.graph.edges(), c.graph.edges());
}

TEST(BenchEnvTest, ValidatedTrainingReturnsUsableEmbedding) {
  Flags flags = MakeFlags({"--scale=0.08"});
  BenchEnv env = BenchEnv::FromFlags(flags);
  Dataset ds = MakeScaled("cora", env, 0);
  Rng rng(1);
  AneciConfig cfg = DefaultAneciConfig(env);
  cfg.epochs = 30;
  Matrix z = TrainAneciValidated(ds, cfg, rng);
  EXPECT_EQ(z.rows(), ds.graph.num_nodes());
  EXPECT_EQ(z.cols(), cfg.embed_dim);
}

// CLI args: argv[0] is the binary and argv[1] the subcommand, so flags
// start at index 2 — unlike the bench Flags above.
cli::Args MakeCliArgs(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> argv;
  argv.clear();
  argv.push_back(const_cast<char*>("aneci_cli"));
  argv.push_back(const_cast<char*>("train"));
  for (std::string& a : storage) argv.push_back(a.data());
  return cli::Args(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, ParsesTypedValuesAndPresence) {
  cli::Args args =
      MakeCliArgs({"--graph=g.txt", "--epochs=25", "--adv-budget=0.1",
                   "--resume"});
  EXPECT_EQ(args.Get("graph", ""), "g.txt");
  EXPECT_EQ(args.GetInt("epochs", 1), 25);
  EXPECT_DOUBLE_EQ(args.GetDouble("adv-budget", 0.0), 0.1);
  EXPECT_TRUE(args.Has("resume"));
  EXPECT_FALSE(args.Has("plus"));
  EXPECT_EQ(args.GetInt("dim", 16), 16);
}

TEST(CliArgs, UnknownFlagsAcceptsAllowedForms) {
  cli::Args args = MakeCliArgs({"--graph=g.txt", "--resume", "--epochs=5"});
  EXPECT_TRUE(args.UnknownFlags({"graph", "resume", "epochs"}).empty());
}

TEST(CliArgs, UnknownFlagsCatchesTyposAndPositionals) {
  cli::Args args =
      MakeCliArgs({"--graph=g.txt", "--epocs=5", "stray", "--unknown"});
  const std::vector<std::string> unknown =
      args.UnknownFlags({"graph", "epochs"});
  ASSERT_EQ(unknown.size(), 3u);
  EXPECT_EQ(unknown[0], "--epocs=5");
  EXPECT_EQ(unknown[1], "stray");
  EXPECT_EQ(unknown[2], "--unknown");
}

TEST(CliArgs, UnknownFlagsRejectsPrefixConfusion) {
  // "--dim" must not legitimise "--dimension=8".
  cli::Args args = MakeCliArgs({"--dimension=8"});
  EXPECT_EQ(args.UnknownFlags({"dim"}).size(), 1u);
}

/// Drains everything written to a tmpfile sink.
std::string SinkContents(std::FILE* sink) {
  std::rewind(sink);
  std::string contents;
  char buf[512];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), sink)) > 0)
    contents.append(buf, n);
  return contents;
}

TEST(ResolveOutPath, LegacyOutEmitsDeprecationWarning) {
  // Regression: the --out deprecation warning was once silently dropped.
  // Assert the warning is actually written, byte for byte.
  cli::Args args = MakeCliArgs({"--out=legacy.csv"});
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(cli::ResolveOutPath(args, "embedding.csv", sink), "legacy.csv");
  const std::string warning = SinkContents(sink);
  std::fclose(sink);
  EXPECT_EQ(warning, cli::OutFlagDeprecationWarning("embedding.csv"));
}

TEST(ResolveOutPath, DeprecationWarningTextIsPinned) {
  // The user-visible wording is part of the deprecation contract.
  EXPECT_EQ(cli::OutFlagDeprecationWarning("communities.txt"),
            "warning: --out=<file> is deprecated; use --outdir=<dir> "
            "(writes <dir>/communities.txt)\n");
}

TEST(ResolveOutPath, OutdirPathIsSilent) {
  const std::string dir = testing::TempDir() + "/resolve_outdir";
  cli::Args args = MakeCliArgs({"--outdir=" + dir});
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(cli::ResolveOutPath(args, "embedding.csv", sink),
            dir + "/embedding.csv");
  EXPECT_TRUE(SinkContents(sink).empty());
  std::fclose(sink);
}

TEST(ResolveOutPath, NeitherFlagReturnsEmpty) {
  cli::Args args = MakeCliArgs({});
  EXPECT_TRUE(cli::ResolveOutPath(args, "embedding.csv").empty());
}

}  // namespace
}  // namespace aneci::bench

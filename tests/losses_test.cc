#include <gtest/gtest.h>

#include <cmath>

#include "autograd/grad_check.h"
#include "autograd/optimizer.h"
#include "core/losses.h"
#include "graph/graph.h"
#include "graph/modularity.h"
#include "graph/proximity.h"
#include "util/rng.h"

namespace aneci {
namespace {

Graph TwoCliques() {
  std::vector<Edge> edges;
  for (int base : {0, 4})
    for (int i = 0; i < 4; ++i)
      for (int j = i + 1; j < 4; ++j) edges.push_back({base + i, base + j});
  edges.push_back({3, 4});
  return Graph::FromEdges(8, edges);
}

TEST(ModularityLoss, ValueMatchesNonDifferentiableImplementation) {
  Graph g = TwoCliques();
  ProximityOptions opt;
  opt.order = 2;
  SparseMatrix prox = HighOrderProximity(g, opt);
  Rng rng(1);
  Matrix pm = RowSoftmax(Matrix::RandomNormal(8, 3, 1.0, rng));
  auto p = ag::MakeParameter(pm);
  const double via_loss =
      GeneralizedModularityLoss(&prox, p)->value()(0, 0);
  EXPECT_NEAR(via_loss, GeneralizedModularity(prox, pm), 1e-10);
}

TEST(ModularityLoss, GradientCheck) {
  Graph g = TwoCliques();
  ProximityOptions opt;
  opt.order = 2;
  SparseMatrix prox = HighOrderProximity(g, opt);
  Rng rng(2);
  auto p = ag::MakeParameter(Matrix::RandomNormal(8, 3, 0.5, rng));
  auto res = ag::CheckGradient(
      p, [&] { return GeneralizedModularityLoss(&prox, p); });
  EXPECT_TRUE(res.ok) << res.max_rel_error;
}

TEST(ModularityLoss, CommunityAlignedMembershipScoresHigher) {
  Graph g = TwoCliques();
  ProximityOptions opt;
  opt.order = 2;
  SparseMatrix prox = HighOrderProximity(g, opt);
  Matrix aligned(8, 2), anti(8, 2);
  for (int i = 0; i < 8; ++i) {
    aligned(i, i < 4 ? 0 : 1) = 1.0;
    anti(i, i % 2) = 1.0;
  }
  auto pa = ag::MakeParameter(aligned);
  auto pb = ag::MakeParameter(anti);
  EXPECT_GT(GeneralizedModularityLoss(&prox, pa)->value()(0, 0),
            GeneralizedModularityLoss(&prox, pb)->value()(0, 0));
}

TEST(DenseRecon, ValueMatchesManualDoubleSum) {
  Graph g = TwoCliques();
  ProximityOptions opt;
  opt.order = 1;
  SparseMatrix prox = HighOrderProximity(g, opt);
  Rng rng(3);
  Matrix pm = Matrix::RandomNormal(8, 3, 0.6, rng);
  auto p = ag::MakeParameter(pm);

  double expected = 0.0;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      double d = 0.0;
      for (int c = 0; c < 3; ++c) d += pm(i, c) * pm(j, c);
      const double s = 1.0 / (1.0 + std::exp(-d));
      const double t = prox.At(i, j);
      expected -= t * std::log(s) + (1.0 - t) * std::log(1.0 - s);
    }
  }
  EXPECT_NEAR(DenseReconstructionLoss(&prox, p)->value()(0, 0), expected,
              1e-8);
}

TEST(DenseRecon, GradientCheck) {
  Graph g = TwoCliques();
  ProximityOptions opt;
  opt.order = 2;
  SparseMatrix prox = HighOrderProximity(g, opt);
  Rng rng(4);
  auto p = ag::MakeParameter(Matrix::RandomNormal(8, 2, 0.5, rng));
  auto res = ag::CheckGradient(
      p, [&] { return DenseReconstructionLoss(&prox, p); }, 1e-5, 2e-4);
  EXPECT_TRUE(res.ok) << res.max_rel_error;
}

TEST(MinModularityLoss, GradientCheck) {
  Graph g = TwoCliques();
  ProximityOptions opt;
  opt.order = 2;
  SparseMatrix prox = HighOrderProximity(g, opt);
  Rng rng(7);
  // Spread values so min() argmins are stable under the finite-difference h.
  auto p = ag::MakeParameter(Matrix::RandomNormal(8, 3, 1.0, rng));
  auto res = ag::CheckGradient(
      p, [&] { return GeneralizedModularityMinLoss(&prox, p); }, 1e-6, 5e-3);
  EXPECT_TRUE(res.ok) << res.max_rel_error;
}

TEST(MinModularityLoss, AgreesWithProductOnHardPartition) {
  // For one-hot memberships min(a, b) == a * b, so the two variants match
  // (Property 1 of the paper holds for both definitions).
  Graph g = TwoCliques();
  ProximityOptions opt;
  opt.order = 2;
  SparseMatrix prox = HighOrderProximity(g, opt);
  Matrix hard(8, 2);
  for (int i = 0; i < 8; ++i) hard(i, i < 4 ? 0 : 1) = 1.0;
  auto p = ag::MakeParameter(hard);
  EXPECT_NEAR(GeneralizedModularityMinLoss(&prox, p)->value()(0, 0),
              GeneralizedModularityLoss(&prox, p)->value()(0, 0), 1e-9);
}

TEST(MinModularityLoss, NullModelBruteForceAgreement) {
  Graph g = TwoCliques();
  ProximityOptions opt;
  opt.order = 1;
  SparseMatrix prox = HighOrderProximity(g, opt);
  Rng rng(8);
  Matrix pm = RowSoftmax(Matrix::RandomNormal(8, 3, 1.0, rng));
  auto p = ag::MakeParameter(pm);

  const double two_m = prox.SumAll();
  const std::vector<double> deg = prox.RowSumsVec();
  double observed = 0.0, null_model = 0.0;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      double m = 0.0;
      for (int c = 0; c < 3; ++c) m += std::min(pm(i, c), pm(j, c));
      observed += prox.At(i, j) * m;
      null_model += deg[i] * deg[j] * m;
    }
  }
  const double expected = (observed - null_model / two_m) / two_m;
  EXPECT_NEAR(GeneralizedModularityMinLoss(&prox, p)->value()(0, 0), expected,
              1e-9);
}

TEST(SampledRecon, PairsCoverAllStoredEntries) {
  Graph g = TwoCliques();
  ProximityOptions opt;
  opt.order = 2;
  SparseMatrix prox = HighOrderProximity(g, opt);
  Rng rng(5);
  auto pairs = SampleReconstructionPairs(prox, 2, rng);
  int64_t positives = 0;
  for (const auto& pt : pairs)
    if (pt.target > 0.0) ++positives;
  EXPECT_EQ(positives, prox.nnz());
  // Negatives have target exactly zero and are unstored entries.
  for (const auto& pt : pairs) {
    if (pt.target == 0.0) EXPECT_DOUBLE_EQ(prox.At(pt.u, pt.v), 0.0);
  }
}

TEST(SampledRecon, LossDecreasesUnderOptimization) {
  Graph g = TwoCliques();
  ProximityOptions opt;
  opt.order = 2;
  SparseMatrix prox = HighOrderProximity(g, opt);
  Rng rng(6);
  auto p = ag::MakeParameter(Matrix::RandomNormal(8, 3, 0.1, rng));
  auto pairs = SampleReconstructionPairs(prox, 3, rng);

  ag::Adam::Options aopt;
  aopt.lr = 0.05;
  ag::Adam adam({p}, aopt);
  const double initial = SampledReconstructionLoss(p, pairs)->value()(0, 0);
  for (int i = 0; i < 100; ++i) {
    adam.ZeroGrad();
    ag::Backward(SampledReconstructionLoss(p, pairs));
    adam.Step();
  }
  const double final_loss = SampledReconstructionLoss(p, pairs)->value()(0, 0);
  // Fractional (0,1) targets put an entropy floor under the BCE, so assert a
  // solid absolute improvement rather than a ratio.
  EXPECT_LT(final_loss, initial - 0.5);
}

}  // namespace
}  // namespace aneci

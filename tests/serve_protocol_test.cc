// Fuzz-style battery for the serving wire protocol (docs/serving.md §2):
// truncated frames, oversized and zero length prefixes, malformed JSON,
// out-of-range node ids, mid-frame disconnects, pipelining, and swap
// ordering. Every malformed input must produce a clean error frame or an
// orderly close — never a crash, hang, or torn response. Most tests drive
// ServeSession directly (the exact state machine the server runs per
// connection); the socket tests at the bottom cover the transport shell.
#include "serve/service.h"

#include <gtest/gtest.h>

#include <string>
#include <type_traits>
#include <vector>

#include "serve/client.h"
#include "serve/model_artifact.h"
#include "serve/model_snapshot.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "util/byteio.h"
#include "util/env.h"
#include "util/rng.h"

namespace aneci::serve {
namespace {

constexpr int kNodes = 6;
constexpr int kDim = 4;

/// A small labelled graph + deterministic embeddings, run through the real
/// artifact builder (label head, entropy scores, argmax communities).
ModelArtifact MakeArtifact(double scale = 1.0) {
  Graph graph = Graph::FromEdges(
      kNodes, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  graph.SetLabels({0, 0, 0, 1, 1, 1});
  Matrix z(kNodes, kDim);
  for (int i = 0; i < kNodes; ++i)
    for (int j = 0; j < kDim; ++j)
      z(i, j) = scale * (0.25 * i - 0.125 * j + 0.0625);
  const Matrix p = RowSoftmax(z);
  return BuildModelArtifact(graph, z, p, /*head_seed=*/77);
}

std::shared_ptr<const ModelSnapshot> MakeSnapshot(uint64_t version = 1,
                                                  double scale = 1.0) {
  return std::make_shared<const ModelSnapshot>(MakeArtifact(scale), version,
                                               "test-artifact");
}

/// Feeds one request body through a fresh session and returns the decoded
/// response bodies.
std::vector<std::string> Roundtrip(EmbedService* service,
                                   const std::string& raw_bytes) {
  ServeSession session(service);
  session.Consume(raw_bytes);
  FrameDecoder decoder;
  decoder.Feed(session.TakeOutput());
  std::vector<std::string> bodies;
  std::string body;
  while (decoder.Next(&body)) bodies.push_back(body);
  EXPECT_FALSE(decoder.framing_error());
  EXPECT_EQ(decoder.pending_bytes(), 0u);
  return bodies;
}

std::vector<std::string> RoundtripJson(EmbedService* service,
                                       const std::string& request_body) {
  return Roundtrip(service, EncodeFrame(request_body));
}

class ServeProtocolTest : public ::testing::Test {
 protected:
  ServeProtocolTest() : service_(MakeSnapshot()) {}
  EmbedService service_;
};

// --- Frame codec ------------------------------------------------------------

TEST(FrameCodec, EncodeDecodeRoundtrip) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame("{\"op\":\"stats\"}") + EncodeFrame("x"));
  std::string body;
  ASSERT_TRUE(decoder.Next(&body));
  EXPECT_EQ(body, "{\"op\":\"stats\"}");
  ASSERT_TRUE(decoder.Next(&body));
  EXPECT_EQ(body, "x");
  EXPECT_FALSE(decoder.Next(&body));
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameCodec, ByteAtATimeDelivery) {
  const std::string frame = EncodeFrame("{\"op\":\"stats\"}");
  FrameDecoder decoder;
  std::string body;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    decoder.Feed(std::string_view(&frame[i], 1));
    EXPECT_FALSE(decoder.Next(&body)) << "frame completed early at byte " << i;
  }
  decoder.Feed(std::string_view(&frame[frame.size() - 1], 1));
  ASSERT_TRUE(decoder.Next(&body));
  EXPECT_EQ(body, "{\"op\":\"stats\"}");
}

TEST(FrameCodec, ZeroLengthPrefixIsFramingError) {
  FrameDecoder decoder;
  decoder.Feed(std::string(4, '\0'));
  std::string body;
  EXPECT_FALSE(decoder.Next(&body));
  EXPECT_TRUE(decoder.framing_error());
  EXPECT_NE(decoder.framing_error_message().find("frame length 0"),
            std::string::npos);
}

TEST(FrameCodec, OversizedLengthPrefixIsFramingError) {
  std::string prefix;
  PutScalarLe<uint32_t>(&prefix, kMaxFrameBytes + 1);
  FrameDecoder decoder;
  decoder.Feed(prefix);
  std::string body;
  EXPECT_FALSE(decoder.Next(&body));
  EXPECT_TRUE(decoder.framing_error());
  // Crucially the decoder never tried to buffer 4 GiB.
  EXPECT_NE(decoder.framing_error_message().find("frame length"),
            std::string::npos);
}

TEST(FrameCodec, MaxSizeFrameIsAccepted) {
  const std::string body_in(kMaxFrameBytes, 'a');
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(body_in));
  std::string body;
  ASSERT_TRUE(decoder.Next(&body));
  EXPECT_EQ(body.size(), body_in.size());
}

// --- Flat JSON parser -------------------------------------------------------

TEST(FlatJson, ParsesScalars) {
  auto parsed = ParseFlatJson(
      "{\"s\":\"hi\\n\",\"n\":-2.5e2,\"b\":true,\"z\":null}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().at("s").string_value, "hi\n");
  EXPECT_DOUBLE_EQ(parsed.value().at("n").number_value, -250.0);
  EXPECT_TRUE(parsed.value().at("b").bool_value);
  EXPECT_EQ(parsed.value().at("z").kind, JsonValue::Kind::kNull);
}

TEST(FlatJson, RejectsMalformedInputs) {
  const char* bad[] = {
      "",                      // empty
      "{",                     // unterminated object
      "{}}",                   // trailing garbage
      "{\"a\":1,}",            // trailing comma
      "{\"a\" 1}",             // missing colon
      "{\"a\":{}}",            // nested object
      "{\"a\":[1]}",           // nested array
      "{\"a\":1,\"a\":2}",     // duplicate key
      "{\"a\":tru}",           // bad literal
      "{\"a\":1e}",            // bad number
      "{\"a\":--5}",           // bad number
      "{\"a\":\"x}",           // unterminated string
      "{\"a\":\"\\q\"}",       // invalid escape
      "{\"a\":\"\\u12G4\"}",   // invalid \u digit
      "{\"a\":\"\x01\"}",      // raw control character
      "not json at all",       // no object
  };
  for (const char* body : bad) {
    auto parsed = ParseFlatJson(body);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << body;
    EXPECT_NE(parsed.status().message().find("malformed JSON"),
              std::string::npos);
  }
}

// --- Request validation -----------------------------------------------------

TEST_F(ServeProtocolTest, LookupAnswersEmbeddingRow) {
  const auto bodies = RoundtripJson(&service_, "{\"op\":\"lookup\",\"id\":2}");
  ASSERT_EQ(bodies.size(), 1u);
  EXPECT_NE(bodies[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(bodies[0].find("\"version\":1"), std::string::npos);
  EXPECT_NE(bodies[0].find("\"embedding\":["), std::string::npos);
}

TEST_F(ServeProtocolTest, PerRequestErrorsKeepSessionOpen) {
  const char* bad_requests[] = {
      "{\"op\":\"nope\"}",                      // unknown op
      "{\"id\":3}",                             // missing op
      "{\"op\":\"lookup\"}",                    // missing id
      "{\"op\":\"lookup\",\"id\":\"three\"}",   // id wrong type
      "{\"op\":\"lookup\",\"id\":1.5}",         // non-integral id
      "{\"op\":\"lookup\",\"id\":99}",          // out-of-range id
      "{\"op\":\"lookup\",\"id\":-1}",          // negative id
      "{\"op\":\"lookup\",\"id\":4e9}",         // overflows int32
      "{\"op\":\"knn\",\"id\":0,\"k\":0}",      // non-positive k
      "{\"op\":\"knn\",\"id\":0,\"k\":-3}",     // negative k
      "{\"op\":\"swap\"}",                      // swap without path
      "{\"op\":\"swap\",\"path\":\"\"}",        // swap with empty path
      "{bad json",                              // malformed body
  };
  ServeSession session(&service_);
  for (const char* request : bad_requests) {
    session.Consume(EncodeFrame(request));
    FrameDecoder decoder;
    decoder.Feed(session.TakeOutput());
    std::string body;
    ASSERT_TRUE(decoder.Next(&body)) << "no response for: " << request;
    EXPECT_NE(body.find("\"ok\":false"), std::string::npos)
        << request << " -> " << body;
    EXPECT_FALSE(session.closed()) << request;
  }
  // The session still answers a valid request afterwards.
  session.Consume(EncodeFrame("{\"op\":\"stats\"}"));
  EXPECT_NE(session.TakeOutput().find("\"ok\":true"), std::string::npos);
}

TEST_F(ServeProtocolTest, OutOfRangeIdNamesTheBound) {
  const auto bodies =
      RoundtripJson(&service_, "{\"op\":\"anomaly\",\"id\":17}");
  ASSERT_EQ(bodies.size(), 1u);
  EXPECT_NE(bodies[0].find("outside [0, 6)"), std::string::npos);
}

TEST_F(ServeProtocolTest, ClassifyWithoutLabelHeadFailsCleanly) {
  ModelArtifact artifact = MakeArtifact();
  artifact.num_classes = 0;
  artifact.proba = Matrix();
  EmbedService unlabelled(std::make_shared<const ModelSnapshot>(
      std::move(artifact), 1, "unlabelled"));
  const auto bodies =
      RoundtripJson(&unlabelled, "{\"op\":\"classify\",\"id\":0}");
  ASSERT_EQ(bodies.size(), 1u);
  EXPECT_NE(bodies[0].find("no label head"), std::string::npos);
}

TEST_F(ServeProtocolTest, KnnClampsKAndOrdersTies) {
  const auto bodies =
      RoundtripJson(&service_, "{\"op\":\"knn\",\"id\":0,\"k\":100}");
  ASSERT_EQ(bodies.size(), 1u);
  // k is clamped to n - 1 = 5 neighbors; self is excluded.
  int neighbor_count = 0;
  for (size_t pos = 0; (pos = bodies[0].find("{\"id\":", pos)) !=
                       std::string::npos;
       ++pos)
    ++neighbor_count;
  EXPECT_EQ(neighbor_count, kNodes - 1);
  EXPECT_EQ(bodies[0].find("\"id\":0,\"score\":", 10), std::string::npos)
      << "self in neighbor list: " << bodies[0];
}

// --- Framing violations through the session ---------------------------------

TEST_F(ServeProtocolTest, ZeroLengthPrefixClosesWithErrorFrame) {
  ServeSession session(&service_);
  session.Consume(std::string(4, '\0'));
  EXPECT_TRUE(session.closed());
  FrameDecoder decoder;
  decoder.Feed(session.TakeOutput());
  std::string body;
  ASSERT_TRUE(decoder.Next(&body));
  EXPECT_NE(body.find("\"ok\":false"), std::string::npos);
  // Latched: further bytes are ignored, no more output.
  session.Consume(EncodeFrame("{\"op\":\"stats\"}"));
  EXPECT_TRUE(session.TakeOutput().empty());
}

TEST_F(ServeProtocolTest, ValidFramesBeforeViolationAreAnswered) {
  ServeSession session(&service_);
  std::string prefix;
  PutScalarLe<uint32_t>(&prefix, kMaxFrameBytes + 7);
  session.Consume(EncodeFrame("{\"op\":\"stats\"}") + prefix);
  EXPECT_TRUE(session.closed());
  FrameDecoder decoder;
  decoder.Feed(session.TakeOutput());
  std::string body;
  ASSERT_TRUE(decoder.Next(&body));
  EXPECT_NE(body.find("\"ok\":true"), std::string::npos);
  ASSERT_TRUE(decoder.Next(&body));
  EXPECT_NE(body.find("\"ok\":false"), std::string::npos);
}

TEST_F(ServeProtocolTest, TruncatedFrameProducesNoResponse) {
  ServeSession session(&service_);
  const std::string frame = EncodeFrame("{\"op\":\"stats\"}");
  session.Consume(frame.substr(0, frame.size() - 3));
  EXPECT_TRUE(session.TakeOutput().empty());
  EXPECT_FALSE(session.closed());
  EXPECT_TRUE(session.mid_frame());  // what a disconnect here would count
  // Delivering the rest completes the request.
  session.Consume(frame.substr(frame.size() - 3));
  EXPECT_NE(session.TakeOutput().find("\"ok\":true"), std::string::npos);
  EXPECT_FALSE(session.mid_frame());
}

// --- Pipelining and swap ordering -------------------------------------------

TEST_F(ServeProtocolTest, PipelinedFramesAnswerInOrder) {
  std::string wire;
  for (int id = 0; id < kNodes; ++id)
    wire += EncodeFrame("{\"op\":\"anomaly\",\"id\":" + std::to_string(id) +
                        "}");
  const auto bodies = Roundtrip(&service_, wire);
  ASSERT_EQ(bodies.size(), static_cast<size_t>(kNodes));
  for (int id = 0; id < kNodes; ++id)
    EXPECT_NE(bodies[id].find("\"id\":" + std::to_string(id) + ","),
              std::string::npos)
        << "response " << id << " out of order: " << bodies[id];
}

TEST_F(ServeProtocolTest, SwapIsAnOrderingBarrier) {
  const std::string dir = testing::TempDir() + "/serve_swap_barrier";
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string path = dir + "/next.ansv";
  ASSERT_TRUE(SaveModelArtifact(MakeArtifact(/*scale=*/2.0), path).ok());

  const auto bodies = Roundtrip(
      &service_, EncodeFrame("{\"op\":\"lookup\",\"id\":0}") +
                     EncodeFrame("{\"op\":\"swap\",\"path\":\"" + path +
                                 "\"}") +
                     EncodeFrame("{\"op\":\"lookup\",\"id\":0}"));
  ASSERT_EQ(bodies.size(), 3u);
  EXPECT_NE(bodies[0].find("\"version\":1"), std::string::npos) << bodies[0];
  EXPECT_NE(bodies[1].find("\"op\":\"swap\""), std::string::npos);
  EXPECT_NE(bodies[1].find("\"version\":2"), std::string::npos) << bodies[1];
  EXPECT_NE(bodies[2].find("\"version\":2"), std::string::npos) << bodies[2];
  EXPECT_NE(bodies[0].substr(bodies[0].find("embedding")),
            bodies[2].substr(bodies[2].find("embedding")))
      << "post-swap lookup served the old embeddings";
}

TEST_F(ServeProtocolTest, FailedSwapKeepsServingOldSnapshot) {
  const auto bodies = Roundtrip(
      &service_,
      EncodeFrame("{\"op\":\"swap\",\"path\":\"/nonexistent/model.ansv\"}") +
          EncodeFrame("{\"op\":\"stats\"}"));
  ASSERT_EQ(bodies.size(), 2u);
  EXPECT_NE(bodies[0].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(bodies[1].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(bodies[1].find("\"version\":1"), std::string::npos);
}

TEST_F(ServeProtocolTest, CorruptSwapArtifactIsRejected) {
  const std::string dir = testing::TempDir() + "/serve_swap_corrupt";
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string path = dir + "/bad.ansv";
  std::string bytes = SerializeModelArtifact(MakeArtifact());
  bytes[bytes.size() / 2] ^= 0x20;  // payload bit flip
  ASSERT_TRUE(Env::Default()->WriteFileAtomic(path, bytes).ok());
  const auto bodies = Roundtrip(
      &service_, EncodeFrame("{\"op\":\"swap\",\"path\":\"" + path + "\"}") +
                     EncodeFrame("{\"op\":\"stats\"}"));
  ASSERT_EQ(bodies.size(), 2u);
  EXPECT_NE(bodies[0].find("CRC mismatch"), std::string::npos) << bodies[0];
  EXPECT_NE(bodies[1].find("\"version\":1"), std::string::npos);
}

// --- Fuzzing ----------------------------------------------------------------

TEST_F(ServeProtocolTest, RandomBytesNeverCrashOrHang) {
  Rng rng(0xfeedbeef);
  for (int trial = 0; trial < 200; ++trial) {
    const int len = 1 + static_cast<int>(rng.NextU64() % 256);
    std::string bytes(len, '\0');
    for (char& c : bytes) c = static_cast<char>(rng.NextU64() & 0xff);
    ServeSession session(&service_);
    session.Consume(bytes);
    // Whatever came out must itself be well-framed.
    FrameDecoder decoder;
    decoder.Feed(session.TakeOutput());
    std::string body;
    while (decoder.Next(&body)) {
    }
    EXPECT_FALSE(decoder.framing_error());
  }
}

TEST_F(ServeProtocolTest, RandomBodiesAlwaysGetOneResponsePerFrame) {
  Rng rng(0xdecaf);
  const char alphabet[] = "{}[]\":,.0123456789eE+-truefalsnopkidswx \\\n";
  for (int trial = 0; trial < 200; ++trial) {
    const int len = 1 + static_cast<int>(rng.NextU64() % 64);
    std::string body(len, ' ');
    for (char& c : body)
      c = alphabet[rng.NextU64() % (sizeof(alphabet) - 1)];
    ServeSession session(&service_);
    session.Consume(EncodeFrame(body));
    FrameDecoder decoder;
    decoder.Feed(session.TakeOutput());
    std::string response;
    ASSERT_TRUE(decoder.Next(&response)) << "no response for body: " << body;
    EXPECT_FALSE(decoder.Next(&response)) << "extra response for: " << body;
    EXPECT_FALSE(session.closed());
  }
}

// --- Over a real socket -----------------------------------------------------

TEST_F(ServeProtocolTest, SocketRoundtripAndFramingViolationClose) {
  EmbedServer server(&service_);
  ASSERT_TRUE(server.Start(0).ok());
  {
    auto client = ServeClient::Connect(server.port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto reply = client.value().Call("{\"op\":\"stats\"}");
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_NE(reply.value().find("\"nodes\":6"), std::string::npos);
    // Now violate framing: the server answers with an error frame and
    // closes; the next read sees EOF.
    std::string prefix;
    PutScalarLe<uint32_t>(&prefix, 0);
    ASSERT_TRUE(client.value().SendRaw(prefix).ok());
    auto error_frame = client.value().ReadFrame();
    ASSERT_TRUE(error_frame.ok()) << error_frame.status().ToString();
    EXPECT_NE(error_frame.value().find("\"ok\":false"), std::string::npos);
    auto after_close = client.value().ReadFrame();
    EXPECT_FALSE(after_close.ok());
  }
  server.Stop();
}

// --- Resource-handle semantics (docs/serving.md §6) -------------------------

TEST(SocketFdSemantics, DoubleCloseIsIdempotent) {
  int port = 0;
  auto listener = SocketIo::Default()->Listen(0, &port);
  ASSERT_TRUE(listener.ok()) << listener.status().message();
  SocketFd fd = std::move(listener).value();
  ASSERT_TRUE(fd.valid());
  fd.Close();
  EXPECT_FALSE(fd.valid());
  // Second Close must be a no-op, not a double close of a recycled fd.
  fd.Close();
  EXPECT_FALSE(fd.valid());
}

TEST(SocketFdSemantics, SelfMoveAssignmentKeepsFdOpen) {
  int port = 0;
  auto listener = SocketIo::Default()->Listen(0, &port);
  ASSERT_TRUE(listener.ok()) << listener.status().message();
  SocketFd fd = std::move(listener).value();
  const int raw = fd.fd();
  SocketFd& alias = fd;
  fd = std::move(alias);  // self-move must not close the descriptor
  EXPECT_TRUE(fd.valid());
  EXPECT_EQ(fd.fd(), raw);
}

TEST(SocketFdSemantics, MoveTransfersOwnershipExactlyOnce) {
  int port = 0;
  auto listener = SocketIo::Default()->Listen(0, &port);
  ASSERT_TRUE(listener.ok()) << listener.status().message();
  SocketFd a = std::move(listener).value();
  const int raw = a.fd();
  SocketFd b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b.fd(), raw);
  a = std::move(b);
  EXPECT_FALSE(b.valid());
  EXPECT_EQ(a.fd(), raw);
}

// Two clients sharing one fd would interleave frames; the copy ops are
// deleted explicitly and these asserts pin that contract at compile time.
static_assert(!std::is_copy_constructible_v<ServeClient>,
              "ServeClient must not be copyable");
static_assert(!std::is_copy_assignable_v<ServeClient>,
              "ServeClient must not be copy-assignable");
static_assert(std::is_move_constructible_v<ServeClient>,
              "ServeClient must stay movable");
static_assert(!std::is_copy_constructible_v<SocketFd>,
              "SocketFd must not be copyable");

// --- Typed error codes and request deadlines (docs/serving.md §6) -----------

TEST(WireErrors, EveryStatusCodeMapsToAMachineCode) {
  EXPECT_STREQ(WireErrorCode(StatusCode::kUnavailable), "overloaded");
  EXPECT_STREQ(WireErrorCode(StatusCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(WireErrorCode(StatusCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(WireErrorCode(StatusCode::kNotFound), "not_found");
}

TEST_F(ServeProtocolTest, ErrorFramesCarryMachineReadableCode) {
  const auto bodies =
      RoundtripJson(&service_, R"({"op":"lookup","id":999})");
  ASSERT_EQ(bodies.size(), 1u);
  EXPECT_NE(bodies[0].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(bodies[0].find("\"code\":\"invalid_argument\""),
            std::string::npos);
}

TEST(WireDeadline, ParsesPositiveDeadlineMs) {
  auto parsed = ParseWireRequest(
      R"({"op":"lookup","id":1,"deadline_ms":250})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().query.deadline_ms, 250);
}

TEST(WireDeadline, DefaultsToZeroWhenAbsent) {
  auto parsed = ParseWireRequest(R"({"op":"lookup","id":1})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().query.deadline_ms, 0);
}

TEST(WireDeadline, RejectsNonPositiveDeadlineMs) {
  auto zero = ParseWireRequest(
      R"({"op":"lookup","id":1,"deadline_ms":0})");
  EXPECT_FALSE(zero.ok());
  auto negative = ParseWireRequest(
      R"({"op":"lookup","id":1,"deadline_ms":-5})");
  EXPECT_FALSE(negative.ok());
}

TEST_F(ServeProtocolTest, MidFrameDisconnectLeavesServerHealthy) {
  EmbedServer server(&service_);
  ASSERT_TRUE(server.Start(0).ok());
  {
    // Send a length prefix promising 100 bytes, deliver 3, and hang up.
    auto dirty = ServeClient::Connect(server.port());
    ASSERT_TRUE(dirty.ok());
    std::string partial;
    PutScalarLe<uint32_t>(&partial, 100);
    partial += "{\"o";
    ASSERT_TRUE(dirty.value().SendRaw(partial).ok());
  }  // client destroyed: connection drops mid-frame
  // The server keeps serving new connections.
  auto client = ServeClient::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto reply = client.value().Call("{\"op\":\"lookup\",\"id\":1}");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_NE(reply.value().find("\"ok\":true"), std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace aneci::serve

// Watchdog edge cases: snapshot cadence of one epoch, divergence at the very
// first epoch (before any periodic snapshot boundary has passed), verdict
// names for every enum value, and option validation.
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/variable.h"
#include "core/aneci.h"
#include "core/watchdog.h"
#include "data/sbm.h"
#include "util/rng.h"

namespace aneci {
namespace {

Graph SmallGraph() {
  SbmOptions opt;
  opt.num_nodes = 40;
  opt.num_edges = 120;
  opt.num_classes = 2;
  opt.attribute_dim = 8;
  Rng rng(7);
  return GenerateSbm(opt, rng);
}

AneciConfig SmallConfig() {
  AneciConfig config;
  config.hidden_dim = 16;
  config.embed_dim = 4;
  config.epochs = 12;
  config.seed = 3;
  return config;
}

// --- Verdict machinery ------------------------------------------------------

TEST(WatchdogVerdictTest, NameCoversEveryValue) {
  // Exhaustive: a new enum value must get a name before this list grows.
  const std::vector<WatchdogVerdict> all = {
      WatchdogVerdict::kHealthy, WatchdogVerdict::kNonFiniteLoss,
      WatchdogVerdict::kNonFiniteGradient, WatchdogVerdict::kLossExplosion};
  for (WatchdogVerdict v : all) {
    const std::string name = WatchdogVerdictName(v);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?") << "unnamed verdict " << static_cast<int>(v);
  }
  EXPECT_STREQ(WatchdogVerdictName(WatchdogVerdict::kHealthy), "healthy");
  EXPECT_STREQ(WatchdogVerdictName(WatchdogVerdict::kNonFiniteLoss),
               "non-finite loss");
  EXPECT_STREQ(WatchdogVerdictName(WatchdogVerdict::kNonFiniteGradient),
               "non-finite gradient");
  EXPECT_STREQ(WatchdogVerdictName(WatchdogVerdict::kLossExplosion),
               "loss explosion");
}

TEST(WatchdogVerdictTest, InspectFlagsEachFailureMode) {
  TrainingWatchdog dog(WatchdogOptions{});
  EXPECT_EQ(dog.Inspect(1.0, {}), WatchdogVerdict::kHealthy);
  EXPECT_EQ(dog.Inspect(std::nan(""), {}), WatchdogVerdict::kNonFiniteLoss);
  EXPECT_EQ(dog.Inspect(std::numeric_limits<double>::infinity(), {}),
            WatchdogVerdict::kNonFiniteLoss);

  ag::VarPtr param = ag::MakeParameter(Matrix(2, 2));
  Matrix bad(2, 2);
  bad(1, 1) = std::nan("");
  param->AccumulateGrad(bad);
  EXPECT_EQ(dog.Inspect(1.0, {param}), WatchdogVerdict::kNonFiniteGradient);

  // Explosion relative to the best |loss| seen (1.0 from the first epoch).
  EXPECT_EQ(dog.Inspect(1e9, {}), WatchdogVerdict::kLossExplosion);
}

TEST(WatchdogVerdictTest, DisabledWatchdogNeverVetoes) {
  WatchdogOptions options;
  options.enabled = false;
  TrainingWatchdog dog(options);
  EXPECT_EQ(dog.Inspect(std::nan(""), {}), WatchdogVerdict::kHealthy);
}

TEST(WatchdogVerdictTest, RollbackBudgetIsExact) {
  WatchdogOptions options;
  options.max_rollbacks = 2;
  TrainingWatchdog dog(options);
  EXPECT_TRUE(dog.RecordRollback());
  EXPECT_TRUE(dog.RecordRollback());
  EXPECT_FALSE(dog.RecordRollback());
  EXPECT_EQ(dog.rollbacks(), 2);
}

// --- Option validation ------------------------------------------------------

TEST(WatchdogOptionsTest, DefaultsValidate) {
  EXPECT_TRUE(ValidateWatchdogOptions(WatchdogOptions{}).ok());
}

TEST(WatchdogOptionsTest, RejectsEachBadKnob) {
  WatchdogOptions options;
  options.explosion_factor = 0.0;
  EXPECT_FALSE(ValidateWatchdogOptions(options).ok());

  options = WatchdogOptions{};
  options.max_rollbacks = -1;
  EXPECT_FALSE(ValidateWatchdogOptions(options).ok());

  options = WatchdogOptions{};
  options.lr_backoff = 0.0;
  EXPECT_FALSE(ValidateWatchdogOptions(options).ok());
  options.lr_backoff = 1.5;
  EXPECT_FALSE(ValidateWatchdogOptions(options).ok());

  options = WatchdogOptions{};
  options.snapshot_every = 0;
  EXPECT_FALSE(ValidateWatchdogOptions(options).ok());
}

TEST(WatchdogOptionsTest, MessagesNameTheKnob) {
  WatchdogOptions options;
  options.snapshot_every = -3;
  Status st = ValidateWatchdogOptions(options);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("snapshot-every"), std::string::npos);
}

// --- Training-loop edge cases ----------------------------------------------

TEST(WatchdogTrainingTest, SnapshotEveryEpochRecoversFromSingleFault) {
  const Graph g = SmallGraph();
  AneciConfig config = SmallConfig();
  config.watchdog.snapshot_every = 1;  // Tightest possible granularity.
  config.watchdog.max_rollbacks = 3;
  // One-shot: the rolled-back retry of the epoch must come up clean.
  bool fired = false;
  config.divergence_fault_hook = [&fired](int epoch) {
    if (epoch == 5 && !fired) {
      fired = true;
      return true;
    }
    return false;
  };
  auto result = Aneci(config).TrainWithResilience(g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result.value().watchdog_rollbacks, 1);
  EXPECT_LT(result.value().final_lr, config.lr);  // Backoff was applied.
}

TEST(WatchdogTrainingTest, RollbackAtEpochZeroBeforeAnyPeriodicSnapshot) {
  // A fault at epoch 0 hits before any snapshot_every boundary has passed.
  // The trainer must still recover: it snapshots the initial state at the
  // epoch-0 boundary, so the rollback target always exists.
  const Graph g = SmallGraph();
  AneciConfig config = SmallConfig();
  config.watchdog.snapshot_every = 100;  // No periodic snapshot inside run.
  config.watchdog.max_rollbacks = 2;
  bool fired = false;
  config.divergence_fault_hook = [&fired](int epoch) {
    if (epoch == 0 && !fired) {
      fired = true;
      return true;
    }
    return false;
  };
  auto result = Aneci(config).TrainWithResilience(g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result.value().watchdog_rollbacks, 1);
  for (int64_t i = 0; i < result.value().z.size(); ++i)
    EXPECT_TRUE(std::isfinite(result.value().z.data()[i]));
}

TEST(WatchdogTrainingTest, PermanentFaultExhaustsBudgetWithStatus) {
  const Graph g = SmallGraph();
  AneciConfig config = SmallConfig();
  config.watchdog.max_rollbacks = 1;
  config.divergence_fault_hook = [](int) { return true; };  // Never heals.
  auto result = Aneci(config).TrainWithResilience(g);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(WatchdogTrainingTest, HealthyRunBitIdenticalWithAndWithoutWatchdog) {
  const Graph g = SmallGraph();
  AneciConfig config = SmallConfig();
  config.watchdog.enabled = true;
  config.watchdog.snapshot_every = 1;
  auto with = Aneci(config).TrainWithResilience(g);
  config.watchdog.enabled = false;
  auto without = Aneci(config).TrainWithResilience(g);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  ASSERT_EQ(with.value().z.size(), without.value().z.size());
  for (int64_t i = 0; i < with.value().z.size(); ++i)
    EXPECT_EQ(with.value().z.data()[i], without.value().z.data()[i]);
  EXPECT_EQ(with.value().watchdog_rollbacks, 0);
}

}  // namespace
}  // namespace aneci

#include <gtest/gtest.h>

#include <cmath>

#include "data/sbm.h"
#include "embed/spectral.h"
#include "linalg/eigen.h"
#include "linalg/gmm.h"
#include "tasks/metrics.h"
#include "util/rng.h"

namespace aneci {
namespace {

TEST(JacobiEigen, DiagonalMatrix) {
  Matrix a = Matrix::FromRows({{3, 0, 0}, {0, 1, 0}, {0, 0, 2}});
  EigenResult eig = JacobiEigen(a);
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-10);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-10);
}

TEST(JacobiEigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  EigenResult eig = JacobiEigen(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
  // Eigenvector of lambda=1 is (1,-1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eig.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(JacobiEigen, ReconstructsMatrix) {
  // A = V diag(L) V^T must reproduce the input.
  Rng rng(1);
  Matrix b = Matrix::RandomNormal(6, 6, 1.0, rng);
  Matrix a = Add(b, Transpose(b));  // Symmetric.
  EigenResult eig = JacobiEigen(a);
  Matrix scaled = eig.vectors;  // V diag(L).
  for (int c = 0; c < 6; ++c)
    for (int r = 0; r < 6; ++r) scaled(r, c) *= eig.values[c];
  Matrix rebuilt = MatMulTransB(scaled, eig.vectors);
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j) EXPECT_NEAR(rebuilt(i, j), a(i, j), 1e-8);
}

TEST(JacobiEigen, VectorsAreOrthonormal) {
  Rng rng(2);
  Matrix b = Matrix::RandomNormal(8, 8, 1.0, rng);
  Matrix a = Add(b, Transpose(b));
  EigenResult eig = JacobiEigen(a);
  Matrix gram = MatMulTransA(eig.vectors, eig.vectors);
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-8);
}

TEST(Lanczos, MatchesJacobiOnSmallMatrix) {
  Rng rng(3);
  Matrix b = Matrix::RandomNormal(12, 12, 1.0, rng);
  Matrix dense = Add(b, Transpose(b));
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  EigenResult exact = JacobiEigen(dense);
  EigenResult lanczos = LanczosSmallest(sparse, 3, rng, 12);
  for (int i = 0; i < 3; ++i)
    EXPECT_NEAR(lanczos.values[i], exact.values[i], 1e-6);
}

TEST(Lanczos, EigenpairsSatisfyDefinition) {
  Rng rng(4);
  // Laplacian-like sparse SPD matrix.
  std::vector<Triplet> trips;
  const int n = 60;
  for (int i = 0; i < n; ++i) trips.push_back({i, i, 4.0});
  for (int i = 0; i + 1 < n; ++i) {
    trips.push_back({i, i + 1, -1.0});
    trips.push_back({i + 1, i, -1.0});
  }
  SparseMatrix a = SparseMatrix::FromTriplets(n, n, trips);
  EigenResult eig = LanczosSmallest(a, 4, rng, /*steps=*/60);
  for (int c = 0; c < 4; ++c) {
    Matrix v(n, 1);
    for (int i = 0; i < n; ++i) v(i, 0) = eig.vectors(i, c);
    Matrix av = a.Multiply(v);
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(av(i, 0), eig.values[c] * v(i, 0), 1e-6);
  }
}

TEST(SpectralClusteringTest, RecoversPlantedBlocks) {
  SbmOptions opt;
  opt.num_nodes = 200;
  opt.num_classes = 2;
  opt.num_edges = 1000;
  opt.intra_fraction = 0.95;
  Rng rng(5);
  Graph g = GenerateSbm(opt, rng);
  std::vector<int> clusters = SpectralClustering(g, 2, rng);
  EXPECT_GT(NormalizedMutualInformation(clusters, g.labels()), 0.6);
}

TEST(LaplacianEigenmapsTest, EmbeddingSeparatesBlocks) {
  SbmOptions opt;
  opt.num_nodes = 150;
  opt.num_classes = 3;
  opt.num_edges = 900;
  opt.intra_fraction = 0.95;
  Rng rng(6);
  Graph g = GenerateSbm(opt, rng);
  LaplacianEigenmaps::Options eopt;
  eopt.dim = 4;
  LaplacianEigenmaps model(eopt);
  EmbedOptions eo;
  eo.rng = &rng;
  Matrix z = model.Embed(g, eo);
  EXPECT_EQ(z.rows(), 150);
  EXPECT_EQ(z.cols(), 4);
  // Same-class pairs should be closer on average than cross-class pairs.
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (int i = 0; i < 150; i += 3) {
    for (int j = i + 1; j < 150; j += 3) {
      double d = 0.0;
      for (int c = 0; c < 4; ++c) {
        const double diff = z(i, c) - z(j, c);
        d += diff * diff;
      }
      if (g.labels()[i] == g.labels()[j]) {
        intra += d;
        ++n_intra;
      } else {
        inter += d;
        ++n_inter;
      }
    }
  }
  EXPECT_LT(intra / n_intra, inter / n_inter);
}

// --- GMM -------------------------------------------------------------------------

TEST(Gmm, RecoversSeparatedComponents) {
  Rng rng(7);
  const int per = 60;
  Matrix pts(3 * per, 2);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per; ++i) {
      pts(c * per + i, 0) = 8.0 * c + 0.5 * rng.NextGaussian();
      pts(c * per + i, 1) = 0.5 * rng.NextGaussian();
    }
  }
  GmmResult gmm = FitGmm(pts, 3, rng);
  // Components pure: every block shares one assignment.
  for (int c = 0; c < 3; ++c) {
    const int rep = gmm.assignment[c * per];
    for (int i = 1; i < per; ++i) EXPECT_EQ(gmm.assignment[c * per + i], rep);
  }
  // Weights near 1/3 each.
  for (double w : gmm.weights) EXPECT_NEAR(w, 1.0 / 3.0, 0.05);
}

TEST(Gmm, ResponsibilitiesAreDistributions) {
  Rng rng(8);
  Matrix pts = Matrix::RandomNormal(80, 3, 1.0, rng);
  GmmResult gmm = FitGmm(pts, 4, rng);
  for (int i = 0; i < 80; ++i) {
    double sum = 0.0;
    for (int c = 0; c < 4; ++c) {
      EXPECT_GE(gmm.responsibilities(i, c), 0.0);
      sum += gmm.responsibilities(i, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Gmm, LogLikelihoodImprovesOverIterations) {
  Rng rng(9);
  Matrix pts(100, 2);
  for (int i = 0; i < 100; ++i) {
    pts(i, 0) = (i < 50 ? -3.0 : 3.0) + rng.NextGaussian();
    pts(i, 1) = rng.NextGaussian();
  }
  GmmOptions one_it;
  one_it.max_iterations = 1;
  Rng r1(10), r2(10);
  const double ll1 = FitGmm(pts, 2, r1, one_it).log_likelihood;
  const double ll20 = FitGmm(pts, 2, r2).log_likelihood;
  EXPECT_GE(ll20, ll1 - 1e-6);
}

TEST(Gmm, VarianceFloorHolds) {
  Rng rng(11);
  Matrix pts(30, 2, 5.0);  // Degenerate: all identical points.
  GmmOptions opt;
  opt.min_variance = 1e-3;
  GmmResult gmm = FitGmm(pts, 2, rng, opt);
  for (int c = 0; c < 2; ++c)
    for (int d = 0; d < 2; ++d) EXPECT_GE(gmm.variances(c, d), 1e-3);
}

}  // namespace
}  // namespace aneci

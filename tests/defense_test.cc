// The defense subsystem: purification stages (Jaccard prune, low-rank
// reconstruction, attribute clip), the pipeline factory and its spec
// parser, smoothed inference / empirical certification, and adversarial
// training (trajectory effect, thread-count invariance, kill-and-resume
// bit-identity, fingerprint guards).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "attack/random_attack.h"
#include "core/aneci.h"
#include "data/sbm.h"
#include "defense/attribute_clip.h"
#include "defense/defense.h"
#include "defense/jaccard_prune.h"
#include "defense/lowrank.h"
#include "defense/smoothing.h"
#include "util/checkpoint.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace aneci {
namespace {

Graph SmallSbm(uint64_t seed, int n = 80) {
  SbmOptions opt;
  opt.num_nodes = n;
  opt.num_classes = 3;
  opt.num_edges = 3 * n;
  opt.intra_fraction = 0.9;
  opt.attribute_dim = 20;
  opt.words_per_node = 6;
  opt.topic_words_per_class = 8;
  Rng rng(seed);
  return GenerateSbm(opt, rng);
}

/// 4 nodes: 0-1 share attribute support, 2-3 are disjoint, plus a 1-2
/// bridge. Attributes: node 0,1 -> {0,1}; node 2 -> {2}; node 3 -> {3}.
Graph MakeHandGraph() {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  Matrix x(4, 4);
  x(0, 0) = x(0, 1) = 1.0;
  x(1, 0) = x(1, 1) = 1.0;
  x(2, 2) = 1.0;
  x(3, 3) = 1.0;
  g.SetAttributes(std::move(x));
  return g;
}

bool BytesEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(double)) == 0;
}

// --- Jaccard prune ----------------------------------------------------------

TEST(AttributeJaccardTest, RawSupportIndex) {
  Graph g = MakeHandGraph();
  EXPECT_DOUBLE_EQ(AttributeJaccard(g, 0, 1), 1.0);  // identical supports
  EXPECT_DOUBLE_EQ(AttributeJaccard(g, 2, 3), 0.0);  // disjoint
  EXPECT_DOUBLE_EQ(AttributeJaccard(g, 0, 2), 0.0);
}

TEST(JaccardPruneTest, RawModeDropsDisjointEdgesOnly) {
  Graph g = MakeHandGraph();
  JaccardPruneOptions opt;
  opt.threshold = 1e-9;  // drop exactly zero-overlap edges
  opt.hops = 0;
  opt.min_residual_degree = 0;
  opt.protect_common_neighbors = false;
  Rng rng(1);
  DefenseReport report = JaccardPrune(opt).Apply(&g, rng);
  EXPECT_EQ(report.defense, "jaccard");
  EXPECT_EQ(report.edges_before, 3);
  EXPECT_EQ(report.edges_dropped, 2);  // 1-2 and 2-3 have J = 0
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(2, 3));
}

TEST(JaccardPruneTest, NoAttributesIsNoopWithNote) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  Rng rng(1);
  DefenseReport report = JaccardPrune().Apply(&g, rng);
  EXPECT_EQ(report.edges_dropped, 0);
  EXPECT_FALSE(report.note.empty());
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(JaccardPruneTest, DegreeGuardPreservesMinimumDegree) {
  Graph g = SmallSbm(5);
  std::vector<int> before(g.num_nodes());
  for (int i = 0; i < g.num_nodes(); ++i) before[i] = g.Degree(i);
  JaccardPruneOptions opt;
  opt.threshold = 0.99;  // maximally aggressive: would drop almost all edges
  opt.min_residual_degree = 2;
  opt.protect_common_neighbors = false;
  Rng rng(1);
  JaccardPrune(opt).Apply(&g, rng);
  for (int i = 0; i < g.num_nodes(); ++i) {
    EXPECT_GE(g.Degree(i), std::min(before[i], 2)) << "node " << i;
  }
}

TEST(JaccardPruneTest, CommonNeighborProtectionKeepsTriangles) {
  // A triangle of attribute-disjoint nodes: every edge has Jaccard 0, but
  // each pair shares the third node as a common neighbour.
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  Matrix x(3, 3);
  x(0, 0) = x(1, 1) = x(2, 2) = 1.0;
  g.SetAttributes(std::move(x));
  JaccardPruneOptions opt;
  opt.threshold = 0.5;
  opt.hops = 0;
  opt.min_residual_degree = 0;
  opt.protect_common_neighbors = true;
  Rng rng(1);
  DefenseReport report = JaccardPrune(opt).Apply(&g, rng);
  EXPECT_EQ(report.edges_dropped, 0);
  EXPECT_EQ(g.num_edges(), 3);

  opt.protect_common_neighbors = false;
  DefenseReport unprotected = JaccardPrune(opt).Apply(&g, rng);
  EXPECT_GT(unprotected.edges_dropped, 0);
}

TEST(JaccardPruneTest, AggregatedModeSeesNeighborhoodTopics) {
  // Star around node 0 (words {0,1}) with leaves 1..3 sharing word 0, plus
  // an adversarial leaf 4 with a disjoint word AND disjoint neighbourhood.
  // Raw Jaccard cannot tell leaf 3 ({1}) from leaf 4 ({3}) against leaf
  // 1..2, but 1-hop aggregation pools the star's support {0,1,...} so only
  // the edge to the alien leaf stays dissimilar.
  Graph g = Graph::FromEdges(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {4, 5}});
  Matrix x(6, 5);
  x(0, 0) = x(0, 1) = 1.0;
  x(1, 0) = 1.0;
  x(2, 0) = 1.0;
  x(3, 1) = 1.0;
  x(4, 3) = 1.0;
  x(5, 3) = 1.0;
  g.SetAttributes(std::move(x));
  JaccardPruneOptions opt;
  opt.threshold = 0.2;
  opt.hops = 1;
  opt.min_residual_degree = 0;
  opt.protect_common_neighbors = false;
  Rng rng(1);
  JaccardPrune(opt).Apply(&g, rng);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 3));  // saved by aggregation
  EXPECT_FALSE(g.HasEdge(0, 4));  // the alien edge goes
  EXPECT_TRUE(g.HasEdge(4, 5));   // its own community is coherent
}

TEST(JaccardPruneTest, DeterministicAcrossThreadCounts) {
  Graph base = SmallSbm(7);
  auto run = [&](int threads) {
    ScopedNumThreads scoped(threads);
    Graph g = base;
    Rng rng(3);
    JaccardPrune().Apply(&g, rng);
    return g.edges();
  };
  EXPECT_EQ(run(1), run(4));
}

// --- Low-rank reconstruction ------------------------------------------------

TEST(LowRankTest, DropsRequestedFractionDeterministically) {
  Graph base = SmallSbm(11);
  LowRankOptions opt;
  opt.rank = 8;
  opt.drop_fraction = 0.1;
  auto run = [&]() {
    Graph g = base;
    Rng rng(5);
    DefenseReport report = LowRankReconstruction(opt).Apply(&g, rng);
    EXPECT_EQ(report.edges_before, base.num_edges());
    EXPECT_EQ(report.edges_dropped,
              static_cast<int>(0.1 * base.num_edges()));
    EXPECT_GT(report.rank_used, 0);
    return g.edges();
  };
  const std::vector<Edge> a = run();
  const std::vector<Edge> b = run();
  EXPECT_EQ(a, b);
}

TEST(LowRankTest, PrefersDroppingRandomInsertions) {
  // Low-rank scores should rank random cross-community insertions below
  // typical clean edges: the dropped set must be enriched in fake edges
  // relative to their share of the graph.
  Graph clean = SmallSbm(13, 120);
  Rng rng(7);
  RandomAttackResult attack = RandomAttack(clean, 0.2, rng);
  LowRankOptions opt;
  opt.rank = 6;
  opt.drop_fraction = 0.15;
  Graph purified = attack.attacked;
  Rng defense_rng(9);
  LowRankReconstruction(opt).Apply(&purified, defense_rng);
  int fake_dropped = 0;
  for (const Edge& e : attack.fake_edges)
    if (!purified.HasEdge(e.u, e.v)) ++fake_dropped;
  const double fake_share = static_cast<double>(attack.fake_edges.size()) /
                            attack.attacked.num_edges();
  const int total_dropped = attack.attacked.num_edges() -
                            purified.num_edges();
  EXPECT_GT(static_cast<double>(fake_dropped) / total_dropped, fake_share);
}

// --- Attribute clip ---------------------------------------------------------

TEST(AttributeClipTest, RewritesPollutedRowTowardNeighbors) {
  Graph g = SmallSbm(17);
  // Pollute one well-connected node with a wildly out-of-distribution row.
  int victim = 0;
  for (int i = 0; i < g.num_nodes(); ++i)
    if (g.Degree(i) > g.Degree(victim)) victim = i;
  Matrix x = g.attributes();
  for (int c = 0; c < x.cols(); ++c) x(victim, c) = 40.0;
  g.SetAttributes(std::move(x));

  AttributeClipOptions opt;
  opt.fraction = 1.0 / g.num_nodes();  // clip exactly the worst node
  Rng rng(19);
  DefenseReport report = AttributeClip(opt).Apply(&g, rng);
  EXPECT_EQ(report.nodes_clipped, 1);
  // The polluted row is gone: binary bag-of-words neighbours average < 40.
  double mx = 0.0;
  for (int c = 0; c < g.attribute_dim(); ++c)
    mx = std::max(mx, g.attributes()(victim, c));
  EXPECT_LT(mx, 2.0);
}

// --- Factory / pipeline -----------------------------------------------------

TEST(DefenseFactoryTest, ParsesSpecsWithOptions) {
  EXPECT_TRUE(CreateDefense("jaccard").ok());
  EXPECT_TRUE(CreateDefense("jaccard:tau=0.1:hops=0:guard=1:cn=0").ok());
  EXPECT_TRUE(CreateDefense("lowrank:rank=8:drop=0.2").ok());
  EXPECT_TRUE(CreateDefense("clip:fraction=0.1:trees=20").ok());
  EXPECT_FALSE(CreateDefense("bogus").ok());
  EXPECT_FALSE(CreateDefense("jaccard:unknown=1").ok());
  EXPECT_FALSE(CreateDefense("lowrank:rank=0").ok());
  EXPECT_FALSE(CreateDefense("").ok());
}

TEST(DefenseFactoryTest, PipelineParsesAndRunsInOrder) {
  StatusOr<DefensePipeline> pipeline =
      ParseDefensePipeline("jaccard,lowrank:rank=8,clip");
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ASSERT_EQ(pipeline.value().size(), 3u);
  EXPECT_STREQ(pipeline.value()[0]->name(), "jaccard");
  EXPECT_STREQ(pipeline.value()[1]->name(), "lowrank");
  EXPECT_STREQ(pipeline.value()[2]->name(), "clip");

  Graph g = SmallSbm(23);
  const int edges_before = g.num_edges();
  Rng rng(29);
  PurifiedGraph purified = RunDefensePipeline(g, pipeline.value(), rng);
  // Input untouched, stages reported in order.
  EXPECT_EQ(g.num_edges(), edges_before);
  ASSERT_EQ(purified.reports.size(), 3u);
  EXPECT_EQ(purified.reports[0].defense, "jaccard");
  EXPECT_EQ(purified.reports[1].defense, "lowrank");
  EXPECT_EQ(purified.reports[2].defense, "clip");
  EXPECT_EQ(purified.graph.num_edges(),
            edges_before - purified.total_edges_dropped());
}

// --- Smoothed inference -----------------------------------------------------

TEST(SmoothingTest, VotesAreSaneAndDeterministic) {
  Dataset ds;
  ds.name = "toy";
  ds.graph = SmallSbm(31);
  Rng split_rng(37);
  MakePlanetoidSplit(ds.graph, 6, 10, 20, split_rng, &ds);

  AneciConfig cfg;
  cfg.hidden_dim = 8;
  cfg.embed_dim = 4;
  cfg.epochs = 8;
  SmoothingOptions opt;
  opt.num_samples = 3;
  opt.radius = 0.05;

  SmoothedClassification a = SmoothedClassify(ds, cfg, opt);
  EXPECT_EQ(a.predicted.size(), ds.test_idx.size());
  EXPECT_EQ(a.num_samples, 3);
  EXPECT_GE(a.smoothed_accuracy, 0.0);
  EXPECT_LE(a.smoothed_accuracy, 1.0);
  // A certified node is in particular correctly classified.
  EXPECT_LE(a.certified_accuracy, a.smoothed_accuracy);
  for (double share : a.vote_share) {
    EXPECT_GE(share, 1.0 / 3);
    EXPECT_LE(share, 1.0);
  }

  SmoothedClassification b = SmoothedClassify(ds, cfg, opt);
  EXPECT_EQ(a.predicted, b.predicted);
  EXPECT_EQ(a.smoothed_accuracy, b.smoothed_accuracy);
  EXPECT_EQ(a.certified_accuracy, b.certified_accuracy);
}

// --- Adversarial training ---------------------------------------------------

AneciConfig AdvConfig(int epochs = 12) {
  AneciConfig cfg;
  cfg.hidden_dim = 16;
  cfg.embed_dim = 4;
  cfg.epochs = epochs;
  cfg.proximity.order = 2;
  cfg.adversarial.enabled = true;
  cfg.adversarial.budget = 0.10;
  return cfg;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  Env* env = Env::Default();
  EXPECT_TRUE(env->CreateDir(dir).ok());
  if (env->FileExists(CheckpointBinPath(dir)))
    EXPECT_TRUE(env->RemoveFile(CheckpointBinPath(dir)).ok());
  if (env->FileExists(CheckpointBakPath(dir)))
    EXPECT_TRUE(env->RemoveFile(CheckpointBakPath(dir)).ok());
  return dir;
}

TEST(AdversarialTrainingTest, PerturbsTheTrajectory) {
  Graph g = SmallSbm(41);
  AneciConfig clean = AdvConfig();
  clean.adversarial.enabled = false;
  StatusOr<AneciResult> base = Aneci(clean).TrainWithResilience(g);
  StatusOr<AneciResult> adv = Aneci(AdvConfig()).TrainWithResilience(g);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(adv.ok());
  EXPECT_FALSE(BytesEqual(base.value().z, adv.value().z));
}

TEST(AdversarialTrainingTest, BitIdenticalAcrossThreadCounts) {
  Graph g = SmallSbm(43);
  auto run = [&](int threads) {
    ScopedNumThreads scoped(threads);
    return Aneci(AdvConfig()).TrainWithResilience(g);
  };
  StatusOr<AneciResult> serial = run(1);
  StatusOr<AneciResult> four = run(4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(four.ok());
  EXPECT_TRUE(BytesEqual(serial.value().z, four.value().z));
  EXPECT_TRUE(BytesEqual(serial.value().p, four.value().p));
}

TEST(AdversarialTrainingTest, KillAndResumeBitIdentical) {
  // The adversarial RNG rides in the v2 checkpoint: interrupting mid-run
  // must not change the perturbation schedule.
  Graph g = SmallSbm(47);
  const std::string dir = FreshDir("adv_resume");

  AneciConfig full_cfg = AdvConfig(14);
  StatusOr<AneciResult> full = Aneci(full_cfg).TrainWithResilience(g);
  ASSERT_TRUE(full.ok());

  AneciConfig phase1 = AdvConfig(7);
  phase1.checkpoint_dir = dir;
  phase1.checkpoint_every = 7;
  ASSERT_TRUE(Aneci(phase1).TrainWithResilience(g).ok());

  AneciConfig phase2 = AdvConfig(14);
  phase2.checkpoint_dir = dir;
  phase2.checkpoint_every = 7;
  phase2.resume_from = dir;
  StatusOr<AneciResult> resumed = Aneci(phase2).TrainWithResilience(g);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.value().resumed_from_epoch, 7);
  EXPECT_TRUE(BytesEqual(full.value().z, resumed.value().z));
}

TEST(AdversarialTrainingTest, FingerprintSeparatesAdvFromClean) {
  // A checkpoint written without adversarial training must not resume into
  // an adversarial run (the perturbation schedule would silently start
  // mid-stream), and vice versa.
  Graph g = SmallSbm(53);
  const std::string dir = FreshDir("adv_fingerprint");
  AneciConfig clean = AdvConfig(6);
  clean.adversarial.enabled = false;
  clean.checkpoint_dir = dir;
  ASSERT_TRUE(Aneci(clean).TrainWithResilience(g).ok());

  AneciConfig adv = AdvConfig(6);
  adv.resume_from = dir;
  StatusOr<AneciResult> resumed = Aneci(adv).TrainWithResilience(g);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AdversarialTrainingTest, BudgetJoinsTheFingerprint) {
  Graph g = SmallSbm(59);
  const std::string dir = FreshDir("adv_budget_fp");
  AneciConfig a = AdvConfig(6);
  a.checkpoint_dir = dir;
  ASSERT_TRUE(Aneci(a).TrainWithResilience(g).ok());

  AneciConfig b = AdvConfig(6);
  b.adversarial.budget = 0.2;
  b.resume_from = dir;
  StatusOr<AneciResult> resumed = Aneci(b).TrainWithResilience(g);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace aneci

// End-to-end training resilience: kill-and-resume bit-identity (the
// acceptance criterion — a run interrupted at epoch k and resumed from its
// checkpoint must produce byte-identical final embeddings to an
// uninterrupted run, at any thread count), watchdog rollback + LR backoff on
// injected NaN losses, bounded retry budgets, and recovery from corrupted
// checkpoint directories.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>

#include "core/aneci.h"
#include "data/sbm.h"
#include "util/checkpoint.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace aneci {
namespace {

Graph SmallSbm(uint64_t seed, int n = 80, int classes = 3) {
  SbmOptions opt;
  opt.num_nodes = n;
  opt.num_classes = classes;
  opt.num_edges = 3 * n;
  opt.intra_fraction = 0.9;
  opt.attribute_dim = 20;
  opt.words_per_node = 6;
  opt.topic_words_per_class = 8;
  Rng rng(seed);
  return GenerateSbm(opt, rng);
}

AneciConfig TinyConfig(int epochs = 12) {
  AneciConfig cfg;
  cfg.hidden_dim = 16;
  cfg.embed_dim = 4;
  cfg.epochs = epochs;
  cfg.proximity.order = 2;
  return cfg;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  Env* env = Env::Default();
  EXPECT_TRUE(env->CreateDir(dir).ok());
  // Clear leftovers from previous runs of the same test.
  if (env->FileExists(CheckpointBinPath(dir)))
    EXPECT_TRUE(env->RemoveFile(CheckpointBinPath(dir)).ok());
  if (env->FileExists(CheckpointBakPath(dir)))
    EXPECT_TRUE(env->RemoveFile(CheckpointBakPath(dir)).ok());
  return dir;
}

bool BytesEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(double)) == 0;
}

// Trains to `interrupt_epoch`, "crashes", then resumes to `total_epochs`;
// the result must be byte-identical to an uninterrupted `total_epochs` run.
void CheckKillAndResume(const AneciConfig& base, const Graph& graph,
                        int interrupt_epoch, int total_epochs,
                        const std::string& dir_name) {
  const std::string dir = FreshDir(dir_name);

  AneciConfig uninterrupted = base;
  uninterrupted.epochs = total_epochs;
  StatusOr<AneciResult> full = Aneci(uninterrupted).TrainWithResilience(graph);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  // Phase 1: train with checkpointing, "killed" at interrupt_epoch (the
  // final snapshot a real crash would leave behind is the one written when
  // the epoch budget ran out).
  AneciConfig phase1 = base;
  phase1.epochs = interrupt_epoch;
  phase1.checkpoint_dir = dir;
  phase1.checkpoint_every = 5;
  StatusOr<AneciResult> partial = Aneci(phase1).TrainWithResilience(graph);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();

  // Phase 2: a fresh process resumes from disk and finishes the budget.
  AneciConfig phase2 = base;
  phase2.epochs = total_epochs;
  phase2.checkpoint_dir = dir;
  phase2.checkpoint_every = 5;
  phase2.resume_from = dir;
  StatusOr<AneciResult> resumed = Aneci(phase2).TrainWithResilience(graph);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value().resumed_from_epoch, interrupt_epoch);

  EXPECT_TRUE(BytesEqual(full.value().z, resumed.value().z))
      << "resumed embeddings diverge from the uninterrupted run";
  EXPECT_TRUE(BytesEqual(full.value().p, resumed.value().p));
  // The stitched history matches epoch-for-epoch, bitwise.
  ASSERT_EQ(full.value().history.size(), resumed.value().history.size());
  for (size_t e = 0; e < full.value().history.size(); ++e) {
    EXPECT_EQ(full.value().history[e].epoch, resumed.value().history[e].epoch);
    EXPECT_EQ(full.value().history[e].loss, resumed.value().history[e].loss);
  }
}

// --- Kill-and-resume --------------------------------------------------------

TEST(Resilience, KillAndResumeBitIdenticalSerial) {
  ScopedNumThreads threads(1);
  Graph g = SmallSbm(11);
  CheckKillAndResume(TinyConfig(), g, /*interrupt_epoch=*/7,
                     /*total_epochs=*/14, "resume_serial");
}

TEST(Resilience, KillAndResumeBitIdenticalFourThreads) {
  ScopedNumThreads threads(4);
  Graph g = SmallSbm(11);
  CheckKillAndResume(TinyConfig(), g, /*interrupt_epoch=*/7,
                     /*total_epochs=*/14, "resume_threads4");
}

TEST(Resilience, KillAndResumeSampledReconstructionAndEncoder) {
  // Sampled losses draw from the RNG every epoch (pair resampling and the
  // SAGE operator), so this exercises RNG-state and pair serialisation. The
  // interrupt epoch (7) deliberately straddles a resample boundary (8).
  ScopedNumThreads threads(2);
  Graph g = SmallSbm(13);
  AneciConfig cfg = TinyConfig();
  cfg.reconstruction = ReconstructionMode::kSampled;
  cfg.negatives_per_node = 3;
  cfg.resample_every = 4;
  cfg.encoder = EncoderMode::kSampledNeighbors;
  CheckKillAndResume(cfg, g, /*interrupt_epoch=*/7, /*total_epochs=*/14,
                     "resume_sampled");
}

TEST(Resilience, ResumeWithSameBudgetReproducesCheckpointedRun) {
  // Resuming a finished run trains zero extra epochs; the final forward pass
  // over restored weights must reproduce the original embeddings exactly —
  // the "rollback restores bit-identical parameters" guarantee, observed
  // through the embedding.
  const std::string dir = FreshDir("resume_noop");
  Graph g = SmallSbm(17);
  AneciConfig cfg = TinyConfig(10);
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every = 10;
  StatusOr<AneciResult> first = Aneci(cfg).TrainWithResilience(g);
  ASSERT_TRUE(first.ok());
  AneciConfig again = cfg;
  again.resume_from = dir;
  StatusOr<AneciResult> second = Aneci(again).TrainWithResilience(g);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().resumed_from_epoch, 10);
  EXPECT_TRUE(BytesEqual(first.value().z, second.value().z));
}

TEST(Resilience, ResumeRejectsFingerprintMismatch) {
  const std::string dir = FreshDir("resume_mismatch");
  Graph g = SmallSbm(19);
  AneciConfig cfg = TinyConfig(6);
  cfg.checkpoint_dir = dir;
  ASSERT_TRUE(Aneci(cfg).TrainWithResilience(g).ok());
  AneciConfig other = cfg;
  other.hidden_dim = 24;  // Structurally different model.
  other.resume_from = dir;
  StatusOr<AneciResult> resumed = Aneci(other).TrainWithResilience(g);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(resumed.status().message().find("fingerprint"), std::string::npos);
}

TEST(Resilience, ResumeFromCorruptDirFallsBackToPreviousSnapshot) {
  const std::string dir = FreshDir("resume_corrupt");
  Graph g = SmallSbm(23);
  AneciConfig cfg = TinyConfig(10);
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every = 5;  // Writes snapshots at epochs 5 and 10.
  ASSERT_TRUE(Aneci(cfg).TrainWithResilience(g).ok());
  // Corrupt the newest snapshot; resume must fall back to epoch 5, not load
  // garbage and not retrain from scratch.
  {
    std::fstream f(CheckpointBinPath(dir),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    const char junk = '\x7f';
    f.write(&junk, 1);
  }
  AneciConfig resume = cfg;
  resume.resume_from = dir;
  StatusOr<AneciResult> resumed = Aneci(resume).TrainWithResilience(g);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value().resumed_from_epoch, 5);
}

TEST(Resilience, MissingCheckpointStartsFresh) {
  const std::string dir = FreshDir("resume_missing");
  Graph g = SmallSbm(29);
  AneciConfig cfg = TinyConfig(6);
  cfg.resume_from = dir;  // Empty directory.
  StatusOr<AneciResult> result = Aneci(cfg).TrainWithResilience(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().resumed_from_epoch, -1);
  EXPECT_EQ(result.value().history.size(), 6u);
}

// --- Watchdog ---------------------------------------------------------------

TEST(Resilience, WatchdogEnabledIsBitIdenticalOnHealthyRun) {
  Graph g = SmallSbm(31);
  AneciConfig with = TinyConfig();
  with.watchdog.enabled = true;
  AneciConfig without = TinyConfig();
  without.watchdog.enabled = false;
  StatusOr<AneciResult> a = Aneci(with).TrainWithResilience(g);
  StatusOr<AneciResult> b = Aneci(without).TrainWithResilience(g);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(BytesEqual(a.value().z, b.value().z));
  EXPECT_EQ(a.value().watchdog_rollbacks, 0);
}

TEST(Resilience, InjectedNanTriggersRollbackAndLrBackoff) {
  Graph g = SmallSbm(37);
  AneciConfig cfg = TinyConfig(12);
  cfg.watchdog.snapshot_every = 4;
  bool fired = false;
  cfg.divergence_fault_hook = [&fired](int epoch) {
    if (epoch == 9 && !fired) {
      fired = true;
      return true;
    }
    return false;
  };
  StatusOr<AneciResult> result = Aneci(cfg).TrainWithResilience(g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(fired);
  EXPECT_EQ(result.value().watchdog_rollbacks, 1);
  // One rollback halves the learning rate.
  EXPECT_DOUBLE_EQ(result.value().final_lr, cfg.lr * cfg.watchdog.lr_backoff);
  // The poisoned epoch never reaches the history or the embeddings.
  for (const AneciEpochStats& s : result.value().history)
    EXPECT_TRUE(std::isfinite(s.loss)) << "epoch " << s.epoch;
  for (int64_t i = 0; i < result.value().z.size(); ++i)
    ASSERT_TRUE(std::isfinite(result.value().z.data()[i]));
  // All epochs were eventually trained despite the mid-run rollback.
  EXPECT_EQ(result.value().history.size(), 12u);
}

TEST(Resilience, PersistentDivergenceExhaustsBudgetAndSurfacesStatus) {
  Graph g = SmallSbm(41);
  AneciConfig cfg = TinyConfig(12);
  cfg.watchdog.max_rollbacks = 2;
  cfg.watchdog.snapshot_every = 4;
  // Every attempt at epoch >= 6 diverges, whatever the learning rate.
  cfg.divergence_fault_hook = [](int epoch) { return epoch >= 6; };
  StatusOr<AneciResult> result = Aneci(cfg).TrainWithResilience(g);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("diverged"), std::string::npos);
  EXPECT_NE(result.status().message().find("non-finite loss"),
            std::string::npos);
}

TEST(Resilience, WatchdogStateSurvivesCheckpointRoundtrip) {
  // A run that rolls back, then checkpoints, then resumes must carry the
  // decayed learning rate through the checkpoint.
  const std::string dir = FreshDir("watchdog_resume");
  Graph g = SmallSbm(43);
  AneciConfig cfg = TinyConfig(10);
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every = 5;
  cfg.watchdog.snapshot_every = 2;
  bool fired = false;
  cfg.divergence_fault_hook = [&fired](int epoch) {
    if (epoch == 3 && !fired) {
      fired = true;
      return true;
    }
    return false;
  };
  StatusOr<AneciResult> first = Aneci(cfg).TrainWithResilience(g);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().watchdog_rollbacks, 1);

  AneciConfig resume = TinyConfig(14);
  resume.checkpoint_dir = dir;
  resume.checkpoint_every = 5;
  resume.resume_from = dir;
  StatusOr<AneciResult> second = Aneci(resume).TrainWithResilience(g);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().resumed_from_epoch, 10);
  EXPECT_DOUBLE_EQ(second.value().final_lr,
                   cfg.lr * cfg.watchdog.lr_backoff);
}

}  // namespace
}  // namespace aneci

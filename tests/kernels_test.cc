// Contract tests for the kernel backend API (src/linalg/kernels/kernels.h):
//
//   * every available backend computes Gemm/Spmm/SpmmT correctly on odd
//     shapes (tails smaller than the register tile, sizes straddling the
//     micro- and cache-tile boundaries, unaligned odd column counts);
//   * beta == 0 is an assignment — NaN pre-filled into C never leaks;
//   * within one backend, results are BIT-identical at every thread count;
//   * across backends, Gemm agrees elementwise within the documented bound
//     kKernelUlpSlack * eps * (|alpha| (|A| |B|))_ij.
#include "linalg/kernels/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aneci {
namespace {

using kernels::Backend;

const int kThreadSettings[] = {2, 7};

Matrix RandomMatrix(int rows, int cols, Rng& rng) {
  return Matrix::RandomNormal(rows, cols, 1.0, rng);
}

SparseMatrix RandomSparse(int rows, int cols, double density, Rng& rng) {
  std::vector<Triplet> trips;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      if (rng.NextBool(density)) trips.push_back({r, c, rng.Uniform(-2, 2)});
  return SparseMatrix::FromTriplets(rows, cols, trips);
}

double OpAt(const Matrix& m, bool trans, int r, int c) {
  return trans ? m(c, r) : m(r, c);
}

// Reference C = alpha op(A) op(B) + beta C0 plus the elementwise magnitude
// sum |alpha| (|A| |B|)_ij + |beta C0_ij| that scales the error bound.
void ReferenceGemm(bool trans_a, bool trans_b, double alpha, const Matrix& a,
                   const Matrix& b, double beta, const Matrix& c0, Matrix* ref,
                   Matrix* mag) {
  const int m = trans_a ? a.cols() : a.rows();
  const int k = trans_a ? a.rows() : a.cols();
  const int n = trans_b ? b.rows() : b.cols();
  *ref = Matrix(m, n);
  *mag = Matrix(m, n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0, abs_s = 0.0;
      for (int p = 0; p < k; ++p) {
        const double x = OpAt(a, trans_a, i, p) * OpAt(b, trans_b, p, j);
        s += x;
        abs_s += std::fabs(x);
      }
      const double base = beta == 0.0 ? 0.0 : beta * c0(i, j);
      (*ref)(i, j) = alpha * s + base;
      (*mag)(i, j) = std::fabs(alpha) * abs_s + std::fabs(base);
    }
  }
}

void ExpectGemmClose(const Matrix& got, const Matrix& ref, const Matrix& mag,
                     const std::string& what) {
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  ASSERT_EQ(got.rows(), ref.rows()) << what;
  ASSERT_EQ(got.cols(), ref.cols()) << what;
  for (int i = 0; i < ref.rows(); ++i)
    for (int j = 0; j < ref.cols(); ++j) {
      const double bound =
          kernels::kKernelUlpSlack * kEps * (mag(i, j) + 1.0);
      ASSERT_NEAR(got(i, j), ref(i, j), bound)
          << what << " at (" << i << ", " << j << ")";
    }
}

std::vector<const Backend*> AllBackends() {
  std::vector<const Backend*> out;
  for (const std::string& name : kernels::AvailableBackends())
    out.push_back(kernels::BackendByName(name));
  return out;
}

// --- registry ----------------------------------------------------------------

TEST(KernelRegistry, ScalarAlwaysAvailableAndListedFirst) {
  const std::vector<std::string> names = kernels::AvailableBackends();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names[0], "scalar");
  for (const std::string& name : names) {
    const Backend* be = kernels::BackendByName(name);
    ASSERT_NE(be, nullptr) << name;
    EXPECT_EQ(be->name(), name);
  }
  EXPECT_EQ(kernels::BackendByName("no-such-backend"), nullptr);
}

TEST(KernelRegistry, ActiveIsOneOfTheAvailableBackends) {
  const std::string active = kernels::ActiveName();
  EXPECT_EQ(active, kernels::Active().name());
  bool found = false;
  for (const std::string& name : kernels::AvailableBackends())
    found = found || name == active;
  EXPECT_TRUE(found) << active;
}

// --- Gemm correctness on tail/tile-boundary shapes ---------------------------

struct Shape {
  int m, n, k;
};

// Tails below the 6x8 register tile, the tile edges themselves, the 96-row
// cache block boundary, and the 256 k-block boundary.
const Shape kOddShapes[] = {
    {1, 1, 1},  {1, 3, 7},   {3, 1, 5},   {7, 7, 3},    {5, 7, 2},
    {6, 8, 4},  {7, 9, 11},  {12, 16, 8}, {13, 17, 19}, {95, 9, 5},
    {96, 8, 6}, {97, 10, 7}, {11, 5, 255}, {6, 9, 256},  {10, 7, 257}};

TEST(KernelGemm, OddShapesAllTransCombosAllBackends) {
  Rng rng(7);
  for (const Backend* be : AllBackends()) {
    for (const Shape& s : kOddShapes) {
      for (int ta = 0; ta < 2; ++ta) {
        for (int tb = 0; tb < 2; ++tb) {
          const bool trans_a = ta != 0, trans_b = tb != 0;
          const Matrix a = trans_a ? RandomMatrix(s.k, s.m, rng)
                                   : RandomMatrix(s.m, s.k, rng);
          const Matrix b = trans_b ? RandomMatrix(s.n, s.k, rng)
                                   : RandomMatrix(s.k, s.n, rng);
          const Matrix c0 = RandomMatrix(s.m, s.n, rng);
          Matrix ref, mag;
          ReferenceGemm(trans_a, trans_b, 1.0, a, b, 0.0, c0, &ref, &mag);
          Matrix c = c0;
          be->Gemm(trans_a, trans_b, 1.0, a, b, 0.0, &c);
          ExpectGemmClose(c, ref, mag,
                          std::string(be->name()) + " " +
                              std::to_string(s.m) + "x" + std::to_string(s.n) +
                              "x" + std::to_string(s.k) + " trans=" +
                              std::to_string(ta) + std::to_string(tb));
        }
      }
    }
  }
}

TEST(KernelGemm, AlphaBetaVariants) {
  Rng rng(11);
  const Shape shapes[] = {{7, 9, 13}, {97, 17, 33}};
  const double alphas[] = {1.0, -0.5, 2.25};
  const double betas[] = {0.0, 1.0, -1.5};
  for (const Backend* be : AllBackends()) {
    for (const Shape& s : shapes) {
      const Matrix a = RandomMatrix(s.m, s.k, rng);
      const Matrix b = RandomMatrix(s.k, s.n, rng);
      const Matrix c0 = RandomMatrix(s.m, s.n, rng);
      for (double alpha : alphas) {
        for (double beta : betas) {
          Matrix ref, mag;
          ReferenceGemm(false, false, alpha, a, b, beta, c0, &ref, &mag);
          Matrix c = c0;
          be->Gemm(false, false, alpha, a, b, beta, &c);
          ExpectGemmClose(c, ref, mag,
                          std::string(be->name()) + " alpha=" +
                              std::to_string(alpha) + " beta=" +
                              std::to_string(beta));
        }
      }
    }
  }
}

TEST(KernelGemm, BetaZeroNeverReadsC) {
  Rng rng(13);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const Backend* be : AllBackends()) {
    for (const Shape& s : {Shape{7, 9, 5}, Shape{97, 11, 257}}) {
      const Matrix a = RandomMatrix(s.m, s.k, rng);
      const Matrix b = RandomMatrix(s.k, s.n, rng);
      Matrix c(s.m, s.n);
      c.Fill(nan);
      be->Gemm(false, false, 1.0, a, b, 0.0, &c);
      Matrix ref, mag;
      ReferenceGemm(false, false, 1.0, a, b, 0.0, c, &ref, &mag);
      for (int64_t i = 0; i < c.size(); ++i)
        ASSERT_FALSE(std::isnan(c.data()[i]))
            << be->name() << ": NaN leaked from beta==0 C at " << i;
      ExpectGemmClose(c, ref, mag, std::string(be->name()) + " beta0-nan");
    }
  }
}

TEST(KernelGemm, DegenerateDimensions) {
  Rng rng(17);
  for (const Backend* be : AllBackends()) {
    // k == 0: C = beta * C with nothing accumulated.
    const Matrix a0(5, 0), b0(0, 4);
    Matrix c = RandomMatrix(5, 4, rng);
    const Matrix c_before = c;
    be->Gemm(false, false, 1.0, a0, b0, 2.0, &c);
    for (int i = 0; i < 5; ++i)
      for (int j = 0; j < 4; ++j)
        ASSERT_EQ(c(i, j), 2.0 * c_before(i, j)) << be->name();
    // m == 0 / n == 0: legal no-ops.
    Matrix empty_rows(0, 4);
    be->Gemm(false, false, 1.0, Matrix(0, 3), Matrix(3, 4), 0.0, &empty_rows);
    Matrix empty_cols(5, 0);
    be->Gemm(false, false, 1.0, Matrix(5, 3), Matrix(3, 0), 0.0, &empty_cols);
  }
}

// --- cross-backend equivalence ----------------------------------------------

TEST(KernelGemm, BackendsAgreeWithinUlpBound) {
  const Backend* scalar = kernels::BackendByName("scalar");
  const Backend* avx2 = kernels::BackendByName("avx2");
  ASSERT_NE(scalar, nullptr);
  if (avx2 == nullptr) GTEST_SKIP() << "avx2 backend unavailable";
  Rng rng(19);
  for (const Shape& s : kOddShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, rng);
    const Matrix b = RandomMatrix(s.k, s.n, rng);
    Matrix ref, mag;
    ReferenceGemm(false, false, 1.0, a, b, 0.0, Matrix(s.m, s.n), &ref, &mag);
    Matrix cs(s.m, s.n), cv(s.m, s.n);
    scalar->Gemm(false, false, 1.0, a, b, 0.0, &cs);
    avx2->Gemm(false, false, 1.0, a, b, 0.0, &cv);
    constexpr double kEps = std::numeric_limits<double>::epsilon();
    for (int i = 0; i < s.m; ++i)
      for (int j = 0; j < s.n; ++j)
        ASSERT_LE(std::fabs(cs(i, j) - cv(i, j)),
                  kernels::kKernelUlpSlack * kEps * (mag(i, j) + 1.0))
            << "scalar/avx2 divergence at (" << i << ", " << j << ") of "
            << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(KernelSpmm, BackendsAgreeWithinUlpBound) {
  const Backend* scalar = kernels::BackendByName("scalar");
  const Backend* avx2 = kernels::BackendByName("avx2");
  ASSERT_NE(scalar, nullptr);
  if (avx2 == nullptr) GTEST_SKIP() << "avx2 backend unavailable";
  Rng rng(23);
  const SparseMatrix s = RandomSparse(61, 47, 0.15, rng);
  const Matrix x = RandomMatrix(47, 9, rng);
  const Matrix xt = RandomMatrix(61, 9, rng);
  Matrix ys(61, 9), yv(61, 9), zs(47, 9), zv(47, 9);
  scalar->Spmm(s, x, &ys);
  avx2->Spmm(s, x, &yv);
  scalar->SpmmT(s, xt, &zs);
  avx2->SpmmT(s, xt, &zv);
  for (int64_t i = 0; i < ys.size(); ++i)
    ASSERT_NEAR(ys.data()[i], yv.data()[i], 1e-12) << "Spmm element " << i;
  for (int64_t i = 0; i < zs.size(); ++i)
    ASSERT_NEAR(zs.data()[i], zv.data()[i], 1e-12) << "SpmmT element " << i;
}

// --- Spmm correctness --------------------------------------------------------

TEST(KernelSpmm, MatchesDenseReference) {
  Rng rng(29);
  for (const Backend* be : AllBackends()) {
    const SparseMatrix s = RandomSparse(33, 27, 0.2, rng);
    const Matrix sd = s.ToDense();
    const Matrix x = RandomMatrix(27, 7, rng);
    const Matrix xt = RandomMatrix(33, 7, rng);
    Matrix ref, mag;

    Matrix y(33, 7);
    be->Spmm(s, x, &y);
    ReferenceGemm(false, false, 1.0, sd, x, 0.0, Matrix(33, 7), &ref, &mag);
    ExpectGemmClose(y, ref, mag, std::string(be->name()) + " Spmm");

    Matrix z(27, 7);
    be->SpmmT(s, xt, &z);
    ReferenceGemm(true, false, 1.0, sd, xt, 0.0, Matrix(27, 7), &ref, &mag);
    ExpectGemmClose(z, ref, mag, std::string(be->name()) + " SpmmT");
  }
}

// --- thread-count determinism per backend ------------------------------------

TEST(KernelDeterminism, SerialVsThreadedBitwisePerBackend) {
  Rng rng(31);
  const Shape shapes[] = {{97, 33, 129}, {192, 48, 64}, {7, 9, 11}};
  for (const Backend* be : AllBackends()) {
    for (const Shape& s : shapes) {
      for (int ta = 0; ta < 2; ++ta) {
        for (int tb = 0; tb < 2; ++tb) {
          const bool trans_a = ta != 0, trans_b = tb != 0;
          const Matrix a = trans_a ? RandomMatrix(s.k, s.m, rng)
                                   : RandomMatrix(s.m, s.k, rng);
          const Matrix b = trans_b ? RandomMatrix(s.n, s.k, rng)
                                   : RandomMatrix(s.k, s.n, rng);
          Matrix serial(s.m, s.n);
          {
            ScopedNumThreads guard(1);
            be->Gemm(trans_a, trans_b, 1.0, a, b, 0.0, &serial);
          }
          for (int threads : kThreadSettings) {
            ScopedNumThreads guard(threads);
            Matrix c(s.m, s.n);
            be->Gemm(trans_a, trans_b, 1.0, a, b, 0.0, &c);
            ASSERT_EQ(std::memcmp(c.data(), serial.data(),
                                  sizeof(double) * c.size()),
                      0)
                << be->name() << " Gemm trans=" << ta << tb << " " << s.m
                << "x" << s.n << "x" << s.k << " differs at " << threads
                << " threads";
          }
        }
      }
    }
  }
}

TEST(KernelDeterminism, SpmmSerialVsThreadedBitwisePerBackend) {
  Rng rng(37);
  const SparseMatrix s = RandomSparse(201, 143, 0.07, rng);
  const Matrix x = RandomMatrix(143, 13, rng);
  const Matrix xt = RandomMatrix(201, 13, rng);
  for (const Backend* be : AllBackends()) {
    Matrix y1(201, 13), z1(143, 13);
    {
      ScopedNumThreads guard(1);
      be->Spmm(s, x, &y1);
      be->SpmmT(s, xt, &z1);
    }
    for (int threads : kThreadSettings) {
      ScopedNumThreads guard(threads);
      Matrix y(201, 13), z(143, 13);
      be->Spmm(s, x, &y);
      be->SpmmT(s, xt, &z);
      ASSERT_EQ(
          std::memcmp(y.data(), y1.data(), sizeof(double) * y.size()), 0)
          << be->name() << " Spmm differs at " << threads << " threads";
      ASSERT_EQ(
          std::memcmp(z.data(), z1.data(), sizeof(double) * z.size()), 0)
          << be->name() << " SpmmT differs at " << threads << " threads";
    }
  }
}

// --- shim routing ------------------------------------------------------------

TEST(KernelShims, FreeFunctionsMatchActiveBackend) {
  Rng rng(41);
  const Matrix a = RandomMatrix(13, 17, rng);
  const Matrix b = RandomMatrix(17, 9, rng);
  const Backend& be = kernels::Active();

  Matrix expect(13, 9);
  be.Gemm(false, false, 1.0, a, b, 0.0, &expect);
  const Matrix got = MatMul(a, b);
  EXPECT_EQ(std::memcmp(got.data(), expect.data(),
                        sizeof(double) * got.size()),
            0);

  Matrix expect_ta(17, 17);
  be.Gemm(true, false, 1.0, a, a, 0.0, &expect_ta);
  const Matrix got_ta = MatMulTransA(a, a);
  EXPECT_EQ(std::memcmp(got_ta.data(), expect_ta.data(),
                        sizeof(double) * got_ta.size()),
            0);

  const SparseMatrix s = RandomSparse(13, 17, 0.3, rng);
  Matrix expect_s(13, 9);
  be.Spmm(s, b, &expect_s);
  const Matrix got_s = s.Multiply(b);
  EXPECT_EQ(std::memcmp(got_s.data(), expect_s.data(),
                        sizeof(double) * got_s.size()),
            0);
}

}  // namespace
}  // namespace aneci

// The paper's headline scenario: a poisoned social graph. Random fake edges
// are injected, then GAE (pairwise objective) and AnECI (community
// objective) are compared on the attacked graph, and AnECI+ denoises it.
//
//   ./robust_embedding [noise_ratio]
#include <cstdio>
#include <cstdlib>

#include "analysis/defense_score.h"
#include "attack/random_attack.h"
#include "core/aneci_plus.h"
#include "data/datasets.h"
#include "embed/gae.h"
#include "tasks/node_classification.h"

using namespace aneci;

int main(int argc, char** argv) {
  const double noise = argc > 1 ? std::atof(argv[1]) : 0.3;

  Dataset ds = MakeCora(/*seed=*/7, /*scale=*/0.2);
  Rng rng(7);
  std::printf("cora-like graph: %d nodes, %d edges; injecting %.0f%% noise\n",
              ds.graph.num_nodes(), ds.graph.num_edges(), noise * 100);

  RandomAttackResult attack = RandomAttack(ds.graph, noise, rng);
  Dataset poisoned = ds;
  poisoned.graph = attack.attacked;

  // Pairwise baseline: GAE.
  Gae::Options gae_opt;
  gae_opt.epochs = 80;
  Gae gae(gae_opt);
  EmbedOptions eo;
  eo.rng = &rng;
  Matrix z_gae = gae.Embed(poisoned.graph, eo);

  // Community-preserving: AnECI.
  AneciConfig cfg;
  cfg.epochs = 80;
  Aneci aneci_model(cfg);
  Matrix z_aneci = aneci_model.Train(poisoned.graph).z;

  auto report = [&](const char* name, const Matrix& z) {
    const double acc = EvaluateEmbedding(z, poisoned, rng).accuracy;
    const double ds_score =
        DefenseScore(attack.attacked, attack.fake_edges, z);
    std::printf("%-8s accuracy on poisoned graph: %.3f   defense score: %.2f\n",
                name, acc, ds_score);
  };
  report("GAE", z_gae);
  report("AnECI", z_aneci);

  // AnECI+: detect & drop the suspicious edges, then re-embed.
  AneciPlusConfig plus_cfg;
  plus_cfg.base = cfg;
  AneciPlusResult plus = TrainAneciPlus(poisoned.graph, plus_cfg);
  std::printf("AnECI+ removed %d edges (adaptive drop ratio %.2f)\n",
              plus.edges_removed, plus.drop_ratio);

  // How many of the dropped edges were actually fake?
  int fake_removed = 0;
  for (const Edge& e : attack.fake_edges)
    if (!plus.denoised_graph.HasEdge(e.u, e.v)) ++fake_removed;
  std::printf("  %d/%zu injected fake edges were caught\n", fake_removed,
              attack.fake_edges.size());

  Dataset denoised = poisoned;
  denoised.graph = plus.denoised_graph;
  std::printf("AnECI+  accuracy after denoising: %.3f\n",
              EvaluateEmbedding(plus.stage2.z, denoised, rng).accuracy);
  return 0;
}

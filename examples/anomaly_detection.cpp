// Anomaly detection on an attributed network with implanted community
// outliers, comparing AnECI's membership-entropy score against Dominant and
// an IsolationForest over GAE embeddings.
//
//   ./anomaly_detection [outlier_fraction]
#include <cstdio>
#include <cstdlib>

#include "anomaly/isolation_forest.h"
#include "anomaly/outlier_injection.h"
#include "data/datasets.h"
#include "embed/aneci_embedder.h"
#include "embed/dominant.h"
#include "embed/gae.h"
#include "tasks/metrics.h"

using namespace aneci;

int main(int argc, char** argv) {
  const double fraction = argc > 1 ? std::atof(argv[1]) : 0.05;

  Dataset ds = MakeCiteseer(/*seed=*/11, /*scale=*/0.15);
  Rng rng(11);
  EmbedOptions eo;
  eo.rng = &rng;
  std::printf("citeseer-like graph: %d nodes; implanting %.0f%% outliers\n",
              ds.graph.num_nodes(), fraction * 100);

  for (OutlierKind kind :
       {OutlierKind::kStructural, OutlierKind::kAttribute,
        OutlierKind::kCombined, OutlierKind::kMix}) {
    OutlierInjectionResult injected =
        InjectOutliers(ds.graph, kind, fraction, rng);

    // AnECI: the entropy of softmax(Z) flags community-ambiguous nodes.
    AneciConfig cfg;
    cfg.epochs = 60;
    cfg.early_stop_patience = 20;  // Paper's protocol for this task.
    AneciEmbedder aneci_model(cfg);
    const double auc_aneci = AreaUnderRoc(
        aneci_model.ScoreAnomalies(injected.graph, eo), injected.is_outlier);

    // Dominant: native reconstruction-error scoring.
    Dominant::Options dopt;
    dopt.epochs = 60;
    Dominant dominant(dopt);
    const double auc_dominant = AreaUnderRoc(
        dominant.ScoreAnomalies(injected.graph, eo), injected.is_outlier);

    // GAE + IsolationForest: the generic-embedding fallback.
    Gae::Options gopt;
    gopt.epochs = 60;
    Gae gae(gopt);
    Matrix z = gae.Embed(injected.graph, eo);
    IsolationForest forest;
    forest.Fit(z, rng);
    const double auc_gae =
        AreaUnderRoc(forest.Score(z), injected.is_outlier);

    std::printf("%-4s outliers | AnECI %.3f  Dominant %.3f  GAE+iForest %.3f\n",
                OutlierKindName(kind), auc_aneci, auc_dominant, auc_gae);
  }
  return 0;
}

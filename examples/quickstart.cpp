// Quickstart: generate an attributed network with planted communities,
// train AnECI, and use the embedding for the three downstream tasks.
//
//   ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "core/aneci.h"
#include "data/sbm.h"
#include "graph/modularity.h"
#include "tasks/community.h"
#include "tasks/metrics.h"
#include "tasks/node_classification.h"

using namespace aneci;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. An attributed network: 600 nodes, 4 communities, 50-d sparse
  //    binary attributes correlated with the communities.
  SbmOptions sbm;
  sbm.num_nodes = 600;
  sbm.num_classes = 4;
  sbm.num_edges = 2400;
  sbm.intra_fraction = 0.85;
  sbm.attribute_dim = 50;
  Rng rng(seed);
  Graph graph = GenerateSbm(sbm, rng);
  std::printf("graph: %d nodes, %d edges, %d classes, %d attributes\n",
              graph.num_nodes(), graph.num_edges(), graph.num_classes(),
              graph.attribute_dim());

  // 2. Train AnECI. embed_dim doubles as the number of latent communities.
  AneciConfig config;
  config.embed_dim = 4;
  config.epochs = 120;
  config.proximity.order = 2;  // High-order (2-hop) modularity.
  config.seed = seed;
  Aneci model(config);
  AneciResult result = model.Train(graph);
  std::printf("trained %zu epochs, final Q~ = %.3f, rigidity = %.3f\n",
              result.history.size(), result.history.back().modularity,
              result.history.back().rigidity);

  // 3a. Node classification with a logistic-regression probe.
  Dataset dataset;
  dataset.graph = graph;
  MakePlanetoidSplit(graph, /*per_class_train=*/20, /*val=*/100, /*test=*/300,
                     rng, &dataset);
  ClassificationResult cls = EvaluateEmbedding(result.z, dataset, rng);
  std::printf("node classification: accuracy %.3f, macro-F1 %.3f\n",
              cls.accuracy, cls.macro_f1);

  // 3b. Community detection straight from the membership matrix P.
  CommunityResult comm = DetectCommunitiesArgmax(graph, result.p);
  std::printf("community detection: modularity %.3f, NMI vs planted %.3f\n",
              comm.modularity, comm.nmi_vs_labels);

  // 3c. The membership entropy is the anomaly signal (low-confidence
  //     community membership = suspicious node).
  double max_entropy = 0.0;
  int most_anomalous = 0;
  for (int i = 0; i < result.p.rows(); ++i) {
    double h = 0.0;
    for (int c = 0; c < result.p.cols(); ++c) {
      const double v = result.p(i, c);
      if (v > 1e-12) h -= v * std::log(v);
    }
    if (h > max_entropy) {
      max_entropy = h;
      most_anomalous = i;
    }
  }
  std::printf("most community-ambiguous node: %d (entropy %.3f)\n",
              most_anomalous, max_entropy);
  return 0;
}

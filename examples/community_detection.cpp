// Community detection three ways: Louvain on the raw structure, k-means
// over GAE embeddings, and AnECI reading communities directly from its
// softmax membership matrix (h = |C|).
//
//   ./community_detection [num_communities]
#include <cstdio>
#include <cstdlib>

#include "data/datasets.h"
#include "embed/aneci_embedder.h"
#include "embed/gae.h"
#include "graph/louvain.h"
#include "tasks/community.h"

using namespace aneci;

int main(int argc, char** argv) {
  Dataset ds = MakePolblogs(/*seed=*/5, /*scale=*/0.4);
  const int k =
      argc > 1 ? std::atoi(argv[1]) : ds.graph.num_classes();
  Rng rng(5);
  std::printf("polblogs-like graph: %d nodes, %d edges, detecting %d "
              "communities\n",
              ds.graph.num_nodes(), ds.graph.num_edges(), k);

  // Louvain: greedy modularity maximisation, no embedding involved.
  LouvainResult louvain = Louvain(ds.graph, rng);
  std::printf("Louvain       : Q=%.3f (%d communities found)\n",
              louvain.modularity, louvain.num_communities);

  // GAE + k-means: the generic embed-then-cluster recipe.
  Gae::Options gopt;
  gopt.epochs = 80;
  Gae gae(gopt);
  EmbedOptions eo;
  eo.rng = &rng;
  Matrix z = gae.Embed(ds.graph, eo);
  CommunityResult km = DetectCommunitiesKMeans(ds.graph, z, k, rng);
  std::printf("GAE + k-means : Q=%.3f  NMI=%.3f\n", km.modularity,
              km.nmi_vs_labels);

  // AnECI: argmax over the learned soft memberships.
  AneciConfig cfg;
  cfg.embed_dim = k;
  cfg.epochs = 150;
  AneciEmbedder aneci_model(cfg);
  aneci_model.Embed(ds.graph, eo);
  CommunityResult aneci_comm =
      DetectCommunitiesArgmax(ds.graph, aneci_model.last_membership());
  std::printf("AnECI (argmax): Q=%.3f  NMI=%.3f\n", aneci_comm.modularity,
              aneci_comm.nmi_vs_labels);
  return 0;
}

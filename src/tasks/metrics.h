// Evaluation metrics used across the paper's three downstream tasks:
// accuracy (node classification), AUC (anomaly detection), modularity is in
// graph/modularity.h, plus NMI and macro-F1 for extended analysis.
#ifndef ANECI_TASKS_METRICS_H_
#define ANECI_TASKS_METRICS_H_

#include <vector>

namespace aneci {

/// Fraction of positions where predicted == expected.
double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& expected);

/// Area under the ROC curve from scores and binary labels (1 = positive).
/// Ties get the average rank (Mann-Whitney formulation).
double AreaUnderRoc(const std::vector<double>& scores,
                    const std::vector<int>& labels);

/// Normalised mutual information between two labelings (sqrt normalisation).
double NormalizedMutualInformation(const std::vector<int>& a,
                                   const std::vector<int>& b);

/// Macro-averaged F1 over the classes present in `expected`.
double MacroF1(const std::vector<int>& predicted,
               const std::vector<int>& expected);

struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};

/// Sample mean and population standard deviation.
MeanStd ComputeMeanStd(const std::vector<double>& values);

}  // namespace aneci

#endif  // ANECI_TASKS_METRICS_H_

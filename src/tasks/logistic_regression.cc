#include "tasks/logistic_regression.h"

#include <cmath>

#include "util/check.h"

namespace aneci {

void LogisticRegression::Fit(const Matrix& features,
                             const std::vector<int>& labels, int num_classes,
                             Rng& rng) {
  ANECI_CHECK_EQ(features.rows(), static_cast<int>(labels.size()));
  ANECI_CHECK_GT(num_classes, 1);
  const int n = features.rows(), d = features.cols();
  num_classes_ = num_classes;

  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  if (options_.standardize) {
    for (int i = 0; i < n; ++i) {
      const double* row = features.RowPtr(i);
      for (int j = 0; j < d; ++j) mean_[j] += row[j];
    }
    for (double& m : mean_) m /= n;
    std::vector<double> var(d, 0.0);
    for (int i = 0; i < n; ++i) {
      const double* row = features.RowPtr(i);
      for (int j = 0; j < d; ++j) {
        const double c = row[j] - mean_[j];
        var[j] += c * c;
      }
    }
    for (int j = 0; j < d; ++j)
      inv_std_[j] = var[j] > 1e-12 ? 1.0 / std::sqrt(var[j] / n) : 1.0;
  }
  const Matrix x = ApplyStandardization(features);

  weights_ = Matrix::RandomNormal(d, num_classes, 0.01, rng);
  bias_.assign(num_classes, 0.0);

  // Adam-free full-batch GD with a mild 1/sqrt(t) decay: robust and cheap
  // for the small training sets in the planetoid splits.
  Matrix grad_w(d, num_classes);
  std::vector<double> grad_b(num_classes);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    grad_w.SetZero();
    std::fill(grad_b.begin(), grad_b.end(), 0.0);
    for (int i = 0; i < n; ++i) {
      const double* row = x.RowPtr(i);
      // logits = x_i W + b, then softmax.
      std::vector<double> logits(num_classes);
      for (int c = 0; c < num_classes; ++c) logits[c] = bias_[c];
      for (int j = 0; j < d; ++j) {
        const double v = row[j];
        if (v == 0.0) continue;
        const double* wrow = weights_.RowPtr(j);
        for (int c = 0; c < num_classes; ++c) logits[c] += v * wrow[c];
      }
      double mx = logits[0];
      for (int c = 1; c < num_classes; ++c) mx = std::max(mx, logits[c]);
      double sum = 0.0;
      for (int c = 0; c < num_classes; ++c) {
        logits[c] = std::exp(logits[c] - mx);
        sum += logits[c];
      }
      for (int c = 0; c < num_classes; ++c) {
        const double p = logits[c] / sum;
        const double delta = p - (labels[i] == c ? 1.0 : 0.0);
        grad_b[c] += delta;
        for (int j = 0; j < d; ++j)
          grad_w(j, c) += delta * row[j];
      }
    }
    const double lr = options_.lr / std::sqrt(1.0 + epoch * 0.1);
    for (int j = 0; j < d; ++j) {
      double* wrow = weights_.RowPtr(j);
      const double* grow = grad_w.RowPtr(j);
      for (int c = 0; c < num_classes; ++c)
        wrow[c] -= lr * (grow[c] / n + options_.l2 * wrow[c]);
    }
    for (int c = 0; c < num_classes; ++c) bias_[c] -= lr * grad_b[c] / n;
  }
}

std::vector<int> LogisticRegression::Predict(const Matrix& features) const {
  Matrix proba = PredictProba(features);
  std::vector<int> out(proba.rows());
  for (int i = 0; i < proba.rows(); ++i) {
    const double* row = proba.RowPtr(i);
    int best = 0;
    for (int c = 1; c < proba.cols(); ++c)
      if (row[c] > row[best]) best = c;
    out[i] = best;
  }
  return out;
}

Matrix LogisticRegression::PredictProba(const Matrix& features) const {
  ANECI_CHECK_EQ(features.cols(), weights_.rows());
  const Matrix x = ApplyStandardization(features);
  Matrix logits = MatMul(x, weights_);
  for (int i = 0; i < logits.rows(); ++i) {
    double* row = logits.RowPtr(i);
    for (int c = 0; c < num_classes_; ++c) row[c] += bias_[c];
  }
  return RowSoftmax(logits);
}

Matrix LogisticRegression::ApplyStandardization(const Matrix& features) const {
  if (!options_.standardize) return features;
  Matrix x = features;
  for (int i = 0; i < x.rows(); ++i) {
    double* row = x.RowPtr(i);
    for (int j = 0; j < x.cols(); ++j)
      row[j] = (row[j] - mean_[j]) * inv_std_[j];
  }
  return x;
}

}  // namespace aneci

// The paper's node-classification protocol: freeze an embedding matrix,
// train a logistic-regression probe on the train split, report test-set
// accuracy (Table III, Figs. 3-5).
#ifndef ANECI_TASKS_NODE_CLASSIFICATION_H_
#define ANECI_TASKS_NODE_CLASSIFICATION_H_

#include <vector>

#include "data/datasets.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace aneci {

struct ClassificationResult {
  double accuracy = 0.0;
  double macro_f1 = 0.0;
};

/// Trains the probe on dataset.train_idx and evaluates on `eval_idx`
/// (defaults to dataset.test_idx when empty).
ClassificationResult EvaluateEmbedding(const Matrix& embedding,
                                       const Dataset& dataset, Rng& rng,
                                       const std::vector<int>& eval_idx = {});

/// Evaluation restricted to targeted nodes (the attack experiments measure
/// accuracy on the attacked targets only).
ClassificationResult EvaluateEmbeddingOnNodes(const Matrix& embedding,
                                              const Dataset& dataset,
                                              const std::vector<int>& targets,
                                              Rng& rng);

}  // namespace aneci

#endif  // ANECI_TASKS_NODE_CLASSIFICATION_H_

// Multinomial logistic regression, the downstream probe the paper trains on
// frozen embeddings for node classification ("we train a logistic regression
// classifier with node embeddings as input features").
#ifndef ANECI_TASKS_LOGISTIC_REGRESSION_H_
#define ANECI_TASKS_LOGISTIC_REGRESSION_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace aneci {

class LogisticRegression {
 public:
  struct Options {
    int epochs = 300;
    double lr = 0.1;
    double l2 = 1e-4;
    bool standardize = true;  ///< Z-score features from training statistics.
  };

  LogisticRegression() : options_() {}
  explicit LogisticRegression(const Options& options) : options_(options) {}

  /// Full-batch gradient descent on softmax cross-entropy.
  /// `features` holds one row per training sample; labels in [0, k).
  void Fit(const Matrix& features, const std::vector<int>& labels,
           int num_classes, Rng& rng);

  /// Argmax class per row.
  std::vector<int> Predict(const Matrix& features) const;

  /// Row-softmax probabilities (n x k).
  Matrix PredictProba(const Matrix& features) const;

 private:
  Matrix ApplyStandardization(const Matrix& features) const;

  Options options_;
  Matrix weights_;  // (d x k).
  std::vector<double> bias_;
  std::vector<double> mean_;
  std::vector<double> inv_std_;
  int num_classes_ = 0;
};

}  // namespace aneci

#endif  // ANECI_TASKS_LOGISTIC_REGRESSION_H_

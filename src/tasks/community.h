// Community-detection evaluation (Section VI-D): cluster embeddings with
// k-means++ (or take argmax community membership for AnECI) and score the
// partition with classic modularity.
#ifndef ANECI_TASKS_COMMUNITY_H_
#define ANECI_TASKS_COMMUNITY_H_

#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace aneci {

struct CommunityResult {
  std::vector<int> assignment;
  double modularity = 0.0;
  double nmi_vs_labels = 0.0;  ///< 0 when the graph has no labels.
  int num_communities = 0;
};

/// Clusters the rows of `embedding` into k communities with k-means++ and
/// evaluates modularity on `graph` (the paper's protocol for baselines).
CommunityResult DetectCommunitiesKMeans(const Graph& graph,
                                        const Matrix& embedding, int k,
                                        Rng& rng);

/// Evaluates an explicit soft-membership matrix by argmax assignment (the
/// paper's protocol for AnECI).
CommunityResult DetectCommunitiesArgmax(const Graph& graph,
                                        const Matrix& membership);

/// ComE-style detection: fits a k-component Gaussian mixture in the
/// embedding space and assigns each node to its most responsible component
/// (soft communities as Gaussians, hardened for evaluation).
CommunityResult DetectCommunitiesGmm(const Graph& graph,
                                     const Matrix& embedding, int k, Rng& rng);

}  // namespace aneci

#endif  // ANECI_TASKS_COMMUNITY_H_

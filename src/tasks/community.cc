#include "tasks/community.h"

#include <algorithm>

#include "graph/modularity.h"
#include "linalg/gmm.h"
#include "linalg/kmeans.h"
#include "tasks/metrics.h"
#include "util/check.h"

namespace aneci {
namespace {

CommunityResult Finish(const Graph& graph, std::vector<int> assignment) {
  CommunityResult result;
  result.modularity = Modularity(graph, assignment);
  if (graph.has_labels())
    result.nmi_vs_labels =
        NormalizedMutualInformation(assignment, graph.labels());
  int k = 0;
  for (int c : assignment) k = std::max(k, c + 1);
  result.num_communities = k;
  result.assignment = std::move(assignment);
  return result;
}

}  // namespace

CommunityResult DetectCommunitiesKMeans(const Graph& graph,
                                        const Matrix& embedding, int k,
                                        Rng& rng) {
  ANECI_CHECK_EQ(embedding.rows(), graph.num_nodes());
  KMeansOptions options;
  options.restarts = 3;
  KMeansResult km = KMeans(embedding, k, rng, options);
  return Finish(graph, std::move(km.assignment));
}

CommunityResult DetectCommunitiesArgmax(const Graph& graph,
                                        const Matrix& membership) {
  ANECI_CHECK_EQ(membership.rows(), graph.num_nodes());
  return Finish(graph, ArgmaxAssignment(membership));
}

CommunityResult DetectCommunitiesGmm(const Graph& graph,
                                     const Matrix& embedding, int k,
                                     Rng& rng) {
  ANECI_CHECK_EQ(embedding.rows(), graph.num_nodes());
  GmmResult gmm = FitGmm(embedding, k, rng);
  return Finish(graph, std::move(gmm.assignment));
}

}  // namespace aneci

#include "tasks/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace aneci {

double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& expected) {
  ANECI_CHECK_EQ(predicted.size(), expected.size());
  ANECI_CHECK(!predicted.empty());
  int correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i)
    if (predicted[i] == expected[i]) ++correct;
  return static_cast<double>(correct) / predicted.size();
}

double AreaUnderRoc(const std::vector<double>& scores,
                    const std::vector<int>& labels) {
  ANECI_CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  int64_t num_pos = 0;
  for (int y : labels) {
    ANECI_CHECK(y == 0 || y == 1);
    num_pos += y;
  }
  const int64_t num_neg = static_cast<int64_t>(n) - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Average ranks over tie groups, then Mann-Whitney U.
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (size_t t = i; t <= j; ++t)
      if (labels[order[t]] == 1) rank_sum_pos += avg_rank;
    i = j + 1;
  }
  const double u =
      rank_sum_pos - static_cast<double>(num_pos) * (num_pos + 1) / 2.0;
  return u / (static_cast<double>(num_pos) * num_neg);
}

double NormalizedMutualInformation(const std::vector<int>& a,
                                   const std::vector<int>& b) {
  ANECI_CHECK_EQ(a.size(), b.size());
  ANECI_CHECK(!a.empty());
  const int n = static_cast<int>(a.size());
  int ka = 0, kb = 0;
  for (int v : a) ka = std::max(ka, v + 1);
  for (int v : b) kb = std::max(kb, v + 1);

  std::vector<std::vector<int>> joint(ka, std::vector<int>(kb, 0));
  std::vector<int> ca(ka, 0), cb(kb, 0);
  for (int i = 0; i < n; ++i) {
    ++joint[a[i]][b[i]];
    ++ca[a[i]];
    ++cb[b[i]];
  }

  double mi = 0.0;
  for (int i = 0; i < ka; ++i) {
    for (int j = 0; j < kb; ++j) {
      if (joint[i][j] == 0) continue;
      const double pij = static_cast<double>(joint[i][j]) / n;
      const double pi = static_cast<double>(ca[i]) / n;
      const double pj = static_cast<double>(cb[j]) / n;
      mi += pij * std::log(pij / (pi * pj));
    }
  }
  double ha = 0.0, hb = 0.0;
  for (int i = 0; i < ka; ++i)
    if (ca[i] > 0) {
      const double p = static_cast<double>(ca[i]) / n;
      ha -= p * std::log(p);
    }
  for (int j = 0; j < kb; ++j)
    if (cb[j] > 0) {
      const double p = static_cast<double>(cb[j]) / n;
      hb -= p * std::log(p);
    }
  const double denom = std::sqrt(ha * hb);
  if (denom <= 0.0) return (ha == 0.0 && hb == 0.0) ? 1.0 : 0.0;
  return mi / denom;
}

double MacroF1(const std::vector<int>& predicted,
               const std::vector<int>& expected) {
  ANECI_CHECK_EQ(predicted.size(), expected.size());
  int k = 0;
  for (int v : expected) k = std::max(k, v + 1);
  for (int v : predicted) k = std::max(k, v + 1);

  double f1_sum = 0.0;
  int classes_present = 0;
  for (int c = 0; c < k; ++c) {
    int tp = 0, fp = 0, fn = 0;
    for (size_t i = 0; i < predicted.size(); ++i) {
      const bool p = predicted[i] == c, e = expected[i] == c;
      tp += p && e;
      fp += p && !e;
      fn += !p && e;
    }
    if (tp + fn == 0) continue;  // Class absent from ground truth.
    ++classes_present;
    const double precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
    const double recall = static_cast<double>(tp) / (tp + fn);
    if (precision + recall > 0.0)
      f1_sum += 2.0 * precision * recall / (precision + recall);
  }
  return classes_present > 0 ? f1_sum / classes_present : 0.0;
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  for (double v : values) out.mean += v;
  out.mean /= values.size();
  for (double v : values) out.std += (v - out.mean) * (v - out.mean);
  out.std = std::sqrt(out.std / values.size());
  return out;
}

}  // namespace aneci

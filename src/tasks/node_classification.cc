#include "tasks/node_classification.h"

#include "tasks/logistic_regression.h"
#include "tasks/metrics.h"
#include "util/check.h"

namespace aneci {
namespace {

std::vector<int> LabelsAt(const Dataset& dataset,
                          const std::vector<int>& idx) {
  std::vector<int> out;
  out.reserve(idx.size());
  for (int i : idx) out.push_back(dataset.graph.labels()[i]);
  return out;
}

}  // namespace

ClassificationResult EvaluateEmbedding(const Matrix& embedding,
                                       const Dataset& dataset, Rng& rng,
                                       const std::vector<int>& eval_idx) {
  const std::vector<int>& test =
      eval_idx.empty() ? dataset.test_idx : eval_idx;
  return EvaluateEmbeddingOnNodes(embedding, dataset, test, rng);
}

ClassificationResult EvaluateEmbeddingOnNodes(const Matrix& embedding,
                                              const Dataset& dataset,
                                              const std::vector<int>& targets,
                                              Rng& rng) {
  ANECI_CHECK_EQ(embedding.rows(), dataset.graph.num_nodes());
  ANECI_CHECK(!targets.empty());
  ANECI_CHECK(!dataset.train_idx.empty());

  LogisticRegression probe;
  probe.Fit(embedding.SelectRows(dataset.train_idx),
            LabelsAt(dataset, dataset.train_idx),
            dataset.graph.num_classes(), rng);

  const std::vector<int> predicted =
      probe.Predict(embedding.SelectRows(targets));
  const std::vector<int> expected = LabelsAt(dataset, targets);

  ClassificationResult result;
  result.accuracy = Accuracy(predicted, expected);
  result.macro_f1 = MacroF1(predicted, expected);
  return result;
}

}  // namespace aneci

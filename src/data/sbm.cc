#include "data/sbm.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.h"

namespace aneci {
namespace {

// Draws an index from the discrete distribution given by cumulative weights.
int SampleCumulative(const std::vector<double>& cum, Rng& rng) {
  const double target = rng.NextDouble() * cum.back();
  const auto it = std::lower_bound(cum.begin(), cum.end(), target);
  return static_cast<int>(std::min<size_t>(it - cum.begin(), cum.size() - 1));
}

}  // namespace

Graph GenerateSbm(const SbmOptions& options, Rng& rng) {
  const int n = options.num_nodes;
  const int k = options.num_classes;
  ANECI_CHECK(n > 0 && k > 0 && k <= n);
  ANECI_CHECK(options.intra_fraction >= 0.0 && options.intra_fraction <= 1.0);

  // --- Class assignment ------------------------------------------------------
  std::vector<double> proportions = options.class_proportions;
  if (proportions.empty()) proportions.assign(k, 1.0);
  ANECI_CHECK_EQ(static_cast<int>(proportions.size()), k);
  double total_prop = 0.0;
  for (double p : proportions) total_prop += p;

  std::vector<int> labels(n);
  std::vector<std::vector<int>> members(k);
  {
    // Deterministic proportional allocation, then shuffle node ids so class
    // blocks are not contiguous.
    std::vector<int> ids(n);
    for (int i = 0; i < n; ++i) ids[i] = i;
    for (int i = n - 1; i > 0; --i) std::swap(ids[i], ids[rng.NextInt(i + 1)]);
    int pos = 0;
    for (int c = 0; c < k; ++c) {
      int count = static_cast<int>(std::lround(n * proportions[c] / total_prop));
      if (c == k - 1) count = n - pos;
      count = std::min(count, n - pos);
      for (int j = 0; j < count; ++j) {
        labels[ids[pos]] = c;
        members[c].push_back(ids[pos]);
        ++pos;
      }
    }
    // Any rounding remainder goes to the last class.
    for (; pos < n; ++pos) {
      labels[ids[pos]] = k - 1;
      members[k - 1].push_back(ids[pos]);
    }
  }
  for (int c = 0; c < k; ++c) ANECI_CHECK(!members[c].empty());

  // --- Degree propensities ----------------------------------------------------
  std::vector<double> theta(n, 1.0);
  if (options.degree_alpha > 0.0) {
    for (int i = 0; i < n; ++i) {
      // Pareto(alpha) with minimum 1: heavy-tailed like citation in-degrees.
      const double u = std::max(rng.NextDouble(), 1e-12);
      theta[i] = std::pow(u, -1.0 / options.degree_alpha);
    }
  }

  // Cumulative propensity per class and globally, for weighted sampling.
  std::vector<std::vector<double>> class_cum(k);
  for (int c = 0; c < k; ++c) {
    class_cum[c].reserve(members[c].size());
    double acc = 0.0;
    for (int node : members[c]) {
      acc += theta[node];
      class_cum[c].push_back(acc);
    }
  }
  std::vector<double> global_cum(n);
  {
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
      acc += theta[i];
      global_cum[i] = acc;
    }
  }

  // --- Edge placement ----------------------------------------------------------
  std::set<std::pair<int, int>> edge_set;
  const int target_edges = options.num_edges;
  const int64_t max_attempts = static_cast<int64_t>(target_edges) * 50 + 1000;
  int64_t attempts = 0;
  // Intra-class pair mass ~ (sum_c theta_c_total^2): classes with more mass
  // host more intra edges.
  std::vector<double> class_mass_cum(k);
  {
    double acc = 0.0;
    for (int c = 0; c < k; ++c) {
      const double mass = class_cum[c].back();
      acc += mass * mass;
      class_mass_cum[c] = acc;
    }
  }

  while (static_cast<int>(edge_set.size()) < target_edges &&
         attempts < max_attempts) {
    ++attempts;
    int u, v;
    if (rng.NextBool(options.intra_fraction)) {
      const int c = SampleCumulative(class_mass_cum, rng);
      u = members[c][SampleCumulative(class_cum[c], rng)];
      v = members[c][SampleCumulative(class_cum[c], rng)];
    } else {
      u = SampleCumulative(global_cum, rng);
      v = SampleCumulative(global_cum, rng);
      if (labels[u] == labels[v]) continue;  // Enforce inter-class.
    }
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    edge_set.insert({u, v});
  }

  std::vector<Edge> edges;
  edges.reserve(edge_set.size());
  for (const auto& [u, v] : edge_set) edges.push_back({u, v});
  Graph graph = Graph::FromEdges(n, edges);
  graph.SetLabels(std::move(labels));

  // --- Attributes ---------------------------------------------------------------
  if (options.attribute_dim > 0) {
    const int d = options.attribute_dim;
    const int topic_size = std::min(options.topic_words_per_class, d);
    // Each class gets a random topic vocabulary (subsets may overlap, as real
    // research areas share terminology).
    std::vector<std::vector<int>> topics(k);
    for (int c = 0; c < k; ++c) {
      std::set<int> words;
      while (static_cast<int>(words.size()) < topic_size)
        words.insert(static_cast<int>(rng.NextInt(d)));
      topics[c].assign(words.begin(), words.end());
    }
    Matrix x(n, d);
    for (int i = 0; i < n; ++i) {
      const int c = graph.labels()[i];
      const int words = std::max(1, rng.NextPoisson(options.words_per_node));
      for (int w = 0; w < words; ++w) {
        int word;
        if (rng.NextBool(options.attribute_homophily)) {
          word = topics[c][rng.NextInt(static_cast<int64_t>(topics[c].size()))];
        } else {
          word = static_cast<int>(rng.NextInt(d));
        }
        x(i, word) = 1.0;
      }
    }
    graph.SetAttributes(std::move(x));
  }
  return graph;
}

}  // namespace aneci

// Degree-corrected stochastic block model with planted classes and
// class-conditional sparse binary attributes. This is the synthetic stand-in
// for the paper's benchmark datasets (see DESIGN.md, Substitutions).
#ifndef ANECI_DATA_SBM_H_
#define ANECI_DATA_SBM_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace aneci {

struct SbmOptions {
  int num_nodes = 1000;
  int num_classes = 4;
  /// Target number of undirected edges.
  int num_edges = 2000;
  /// Probability an edge is intra-community (homophily strength). Real
  /// citation networks sit around 0.75-0.85.
  double intra_fraction = 0.8;
  /// Degree heterogeneity: node propensities theta ~ Pareto(alpha). Larger
  /// alpha = more homogeneous; 0 disables degree correction.
  double degree_alpha = 2.5;
  /// Relative class sizes; empty = uniform.
  std::vector<double> class_proportions;

  // --- Attributes ---
  /// Attribute dimensionality d; 0 disables attributes (Polblogs-style).
  int attribute_dim = 0;
  /// Mean number of active attributes (words) per node.
  double words_per_node = 18.0;
  /// Number of "topic words" characteristic of each class.
  int topic_words_per_class = 60;
  /// Probability each sampled word comes from the node's class topic (the
  /// rest are uniform background noise).
  double attribute_homophily = 0.8;
};

/// Generates graph + labels (+ attributes when attribute_dim > 0).
/// Guarantees no self-loops or duplicate edges; the realised edge count can
/// fall slightly below num_edges if the graph saturates.
Graph GenerateSbm(const SbmOptions& options, Rng& rng);

}  // namespace aneci

#endif  // ANECI_DATA_SBM_H_

// Benchmark dataset registry. Generates synthetic analogues of the paper's
// four datasets (Table II) with matching statistics and the paper's
// train/val/test protocol, via the DC-SBM generator. A `scale` < 1 shrinks
// node/edge counts proportionally (splits shrink too) for CPU-budgeted runs.
#ifndef ANECI_DATA_DATASETS_H_
#define ANECI_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace aneci {

struct Dataset {
  std::string name;
  Graph graph;
  std::vector<int> train_idx;
  std::vector<int> val_idx;
  std::vector<int> test_idx;
};

/// Paper-style split: `per_class_train` nodes per class for training, then
/// `val` and `test` nodes sampled from the rest.
void MakePlanetoidSplit(const Graph& graph, int per_class_train, int val,
                        int test, Rng& rng, Dataset* dataset);

/// Cora analogue: N=2708, M~5429, 7 classes, d=1433, split 140/500/1000.
Dataset MakeCora(uint64_t seed, double scale = 1.0);

/// Citeseer analogue: N=3327, M~4732, 6 classes, d=3703, split 120/500/1000.
Dataset MakeCiteseer(uint64_t seed, double scale = 1.0);

/// Polblogs analogue: N=1490, M~16715, 2 classes, no attributes,
/// split 40/500/950.
Dataset MakePolblogs(uint64_t seed, double scale = 1.0);

/// Pubmed analogue: N=19717, M~44338, 3 classes, d=500, split 60/500/1000.
Dataset MakePubmed(uint64_t seed, double scale = 1.0);

/// Lookup by lowercase name ("cora", "citeseer", "polblogs", "pubmed").
StatusOr<Dataset> MakeDataset(const std::string& name, uint64_t seed,
                              double scale = 1.0);

/// All four dataset names in paper order.
const std::vector<std::string>& DatasetNames();

}  // namespace aneci

#endif  // ANECI_DATA_DATASETS_H_

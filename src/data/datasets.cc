#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "data/sbm.h"
#include "util/check.h"

namespace aneci {
namespace {

int Scaled(int value, double scale, int minimum = 1) {
  return std::max(minimum, static_cast<int>(std::lround(value * scale)));
}

Dataset Build(const std::string& name, const SbmOptions& options,
              int per_class_train, int val, int test, uint64_t seed,
              double scale) {
  SbmOptions scaled = options;
  scaled.num_nodes = Scaled(options.num_nodes, scale, options.num_classes * 4);
  scaled.num_edges = Scaled(options.num_edges, scale, scaled.num_nodes / 2);
  if (scale < 1.0 && options.attribute_dim > 0) {
    // Attribute dimensionality shrinks with the graph so that scaled runs
    // keep the same compute profile; word counts per node stay put, so the
    // attribute density (and homophily signal) rises slightly at low scale.
    scaled.attribute_dim = Scaled(options.attribute_dim, scale, 64);
    scaled.topic_words_per_class =
        std::min(scaled.attribute_dim,
                 Scaled(options.topic_words_per_class, scale, 12));
  }

  Rng rng(seed);
  Dataset dataset;
  dataset.name = name;
  dataset.graph = GenerateSbm(scaled, rng);

  const int scaled_val = Scaled(val, scale, options.num_classes);
  const int scaled_test = Scaled(test, scale, options.num_classes);
  MakePlanetoidSplit(dataset.graph, per_class_train, scaled_val, scaled_test,
                     rng, &dataset);
  return dataset;
}

}  // namespace

void MakePlanetoidSplit(const Graph& graph, int per_class_train, int val,
                        int test, Rng& rng, Dataset* dataset) {
  ANECI_CHECK(graph.has_labels());
  const int n = graph.num_nodes();
  const int k = graph.num_classes();

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  for (int i = n - 1; i > 0; --i) std::swap(order[i], order[rng.NextInt(i + 1)]);

  dataset->train_idx.clear();
  dataset->val_idx.clear();
  dataset->test_idx.clear();

  std::vector<int> taken_per_class(k, 0);
  std::vector<char> used(n, 0);
  for (int node : order) {
    const int c = graph.labels()[node];
    if (taken_per_class[c] < per_class_train) {
      dataset->train_idx.push_back(node);
      ++taken_per_class[c];
      used[node] = 1;
    }
  }
  for (int node : order) {
    if (used[node]) continue;
    if (static_cast<int>(dataset->val_idx.size()) < val) {
      dataset->val_idx.push_back(node);
      used[node] = 1;
    } else if (static_cast<int>(dataset->test_idx.size()) < test) {
      dataset->test_idx.push_back(node);
      used[node] = 1;
    }
  }
}

Dataset MakeCora(uint64_t seed, double scale) {
  SbmOptions opt;
  opt.num_nodes = 2708;
  opt.num_edges = 5429;
  opt.num_classes = 7;
  opt.attribute_dim = 1433;
  opt.words_per_node = 8.0;
  opt.topic_words_per_class = 80;
  // Calibrated so a logistic probe on raw attributes lands near the paper's
  // Table IV 'Raw feature' accuracy (~56%) instead of saturating.
  opt.attribute_homophily = 0.3;
  opt.intra_fraction = 0.81;  // Cora's measured edge homophily.
  opt.class_proportions = {0.30, 0.16, 0.15, 0.13, 0.11, 0.08, 0.07};
  return Build("cora", opt, 20, 500, 1000, seed, scale);
}

Dataset MakeCiteseer(uint64_t seed, double scale) {
  SbmOptions opt;
  opt.num_nodes = 3327;
  opt.num_edges = 4732;
  opt.num_classes = 6;
  opt.attribute_dim = 3703;
  opt.words_per_node = 10.0;
  opt.topic_words_per_class = 120;
  opt.attribute_homophily = 0.35;
  opt.intra_fraction = 0.74;
  opt.class_proportions = {0.21, 0.20, 0.20, 0.18, 0.15, 0.06};
  return Build("citeseer", opt, 20, 500, 1000, seed, scale);
}

Dataset MakePolblogs(uint64_t seed, double scale) {
  SbmOptions opt;
  opt.num_nodes = 1490;
  opt.num_edges = 16715;
  opt.num_classes = 2;
  opt.attribute_dim = 0;  // The paper substitutes the unit matrix.
  opt.intra_fraction = 0.91;  // Polblogs is strongly polarised.
  opt.degree_alpha = 1.8;     // Blog links are very heavy-tailed.
  return Build("polblogs", opt, 20, 500, 950, seed, scale);
}

Dataset MakePubmed(uint64_t seed, double scale) {
  SbmOptions opt;
  opt.num_nodes = 19717;
  opt.num_edges = 44338;
  opt.num_classes = 3;
  opt.attribute_dim = 500;
  opt.words_per_node = 14.0;
  opt.topic_words_per_class = 100;
  opt.attribute_homophily = 0.4;
  opt.intra_fraction = 0.80;
  opt.class_proportions = {0.40, 0.39, 0.21};
  return Build("pubmed", opt, 20, 500, 1000, seed, scale);
}

StatusOr<Dataset> MakeDataset(const std::string& name, uint64_t seed,
                              double scale) {
  if (scale <= 0.0 || scale > 1.0)
    return Status::InvalidArgument("scale must be in (0, 1]");
  if (name == "cora") return MakeCora(seed, scale);
  if (name == "citeseer") return MakeCiteseer(seed, scale);
  if (name == "polblogs") return MakePolblogs(seed, scale);
  if (name == "pubmed") return MakePubmed(seed, scale);
  return Status::NotFound("unknown dataset: " + name);
}

const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{"cora", "citeseer", "polblogs", "pubmed"};
  return *names;
}

}  // namespace aneci

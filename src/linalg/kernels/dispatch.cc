// Backend selection. This is the ONLY translation unit allowed to query CPU
// capabilities (__builtin_cpu_supports): the aneci_lint
// banned-nondeterminism check whitelists exactly this file, so machine-
// dependent control flow cannot leak into kernels or library code — a
// process picks one backend here, once, and everything downstream is
// deterministic given that choice.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "linalg/kernels/kernels.h"
#include "util/check.h"

namespace aneci::kernels {

namespace internal {
#ifdef ANECI_KERNELS_HAVE_AVX2
const Backend* Avx2InstanceRaw();  // defined in avx2.cc
#endif

const Backend* Avx2Instance() {
#ifdef ANECI_KERNELS_HAVE_AVX2
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return Avx2InstanceRaw();
#endif
  return nullptr;
}
}  // namespace internal

namespace {

const Backend* Select() {
  const char* env = std::getenv("ANECI_KERNEL_BACKEND");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) return internal::ScalarInstance();
    if (std::strcmp(env, "avx2") == 0) {
      const Backend* avx2 = internal::Avx2Instance();
      if (avx2 != nullptr) return avx2;
      // Documented fallback: requested ISA not compiled in / not on this
      // CPU. Warn rather than abort so one exported env var works across a
      // heterogeneous fleet.
      std::fprintf(stderr,
                   "aneci: ANECI_KERNEL_BACKEND=avx2 requested but AVX2+FMA "
                   "is unavailable; falling back to scalar\n");
      return internal::ScalarInstance();
    }
    std::fprintf(stderr, "aneci: unknown ANECI_KERNEL_BACKEND='%s' "
                 "(expected 'scalar' or 'avx2')\n", env);
    ANECI_CHECK(false);
  }
  const Backend* avx2 = internal::Avx2Instance();
  return avx2 != nullptr ? avx2 : internal::ScalarInstance();
}

}  // namespace

const Backend& Active() {
  static const Backend* selected = Select();
  return *selected;
}

const char* ActiveName() { return Active().name(); }

const Backend* BackendByName(const std::string& name) {
  if (name == "scalar") return internal::ScalarInstance();
  if (name == "avx2") return internal::Avx2Instance();
  return nullptr;
}

std::vector<std::string> AvailableBackends() {
  std::vector<std::string> names = {"scalar"};
  if (internal::Avx2Instance() != nullptr) names.push_back("avx2");
  return names;
}

}  // namespace aneci::kernels

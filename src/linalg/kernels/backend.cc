// Backend-independent half of the kernel API: shape/aliasing validation and
// the linalg/* metrics live here so every backend reports identically.
#include "linalg/kernels/kernels.h"

#include "linalg/sparse.h"
#include "util/check.h"
#include "util/metrics.h"

namespace aneci::kernels {

void Backend::Gemm(bool trans_a, bool trans_b, double alpha, const Matrix& a,
                   const Matrix& b, double beta, Matrix* c) const {
  ANECI_CHECK(c != nullptr);
  const int m = trans_a ? a.cols() : a.rows();
  const int k = trans_a ? a.rows() : a.cols();
  const int n = trans_b ? b.rows() : b.cols();
  ANECI_CHECK_EQ(k, trans_b ? b.cols() : b.rows());
  ANECI_CHECK_EQ(c->rows(), m);
  ANECI_CHECK_EQ(c->cols(), n);
  if (!c->empty()) {
    ANECI_CHECK(c->data() != a.data() && c->data() != b.data());
  }
  static Counter* calls = MetricsRegistry::Global().GetCounter(
      "linalg/matmul/calls", MetricClass::kDeterministic);
  static Counter* flops = MetricsRegistry::Global().GetCounter(
      "linalg/matmul/flops", MetricClass::kDeterministic);
  calls->Increment();
  flops->Add(2ULL * m * k * n);
  GemmImpl(trans_a, trans_b, alpha, a, b, beta, c);
}

void Backend::Spmm(const SparseMatrix& s, const Matrix& x, Matrix* y) const {
  ANECI_CHECK(y != nullptr);
  ANECI_CHECK_EQ(s.cols(), x.rows());
  ANECI_CHECK_EQ(y->rows(), s.rows());
  ANECI_CHECK_EQ(y->cols(), x.cols());
  if (!y->empty()) ANECI_CHECK(y->data() != x.data());
  static Counter* calls = MetricsRegistry::Global().GetCounter(
      "linalg/spmm/calls", MetricClass::kDeterministic);
  static Counter* flops = MetricsRegistry::Global().GetCounter(
      "linalg/spmm/flops", MetricClass::kDeterministic);
  calls->Increment();
  flops->Add(2ULL * static_cast<uint64_t>(s.nnz()) * x.cols());
  SpmmImpl(s, x, y);
}

void Backend::SpmmT(const SparseMatrix& s, const Matrix& x, Matrix* y) const {
  ANECI_CHECK(y != nullptr);
  ANECI_CHECK_EQ(s.rows(), x.rows());
  ANECI_CHECK_EQ(y->rows(), s.cols());
  ANECI_CHECK_EQ(y->cols(), x.cols());
  if (!y->empty()) ANECI_CHECK(y->data() != x.data());
  static Counter* calls = MetricsRegistry::Global().GetCounter(
      "linalg/spmm/calls", MetricClass::kDeterministic);
  static Counter* flops = MetricsRegistry::Global().GetCounter(
      "linalg/spmm/flops", MetricClass::kDeterministic);
  calls->Increment();
  flops->Add(2ULL * static_cast<uint64_t>(s.nnz()) * x.cols());
  SpmmTImpl(s, x, y);
}

}  // namespace aneci::kernels

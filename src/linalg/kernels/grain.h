// Chunk-grain heuristics shared by the kernel backends. A chunk should
// amortise the ParallelFor dispatch (~64k flops), so small problems collapse
// to a single chunk and take the serial path. Grain never affects results —
// every backend computes each output element in a chunk-independent order.
#ifndef ANECI_LINALG_KERNELS_GRAIN_H_
#define ANECI_LINALG_KERNELS_GRAIN_H_

#include <algorithm>
#include <cstdint>

namespace aneci::kernels {

inline int64_t GemmRowGrain(int64_t flops_per_row) {
  constexpr int64_t kMinFlopsPerChunk = 1 << 16;
  if (flops_per_row <= 0) return kMinFlopsPerChunk;
  return std::max<int64_t>(1, kMinFlopsPerChunk / flops_per_row);
}

inline int64_t SpmmRowGrain(int64_t rows, int64_t nnz, int64_t dense_cols) {
  constexpr int64_t kMinFlopsPerChunk = 1 << 16;
  const int64_t flops_per_row =
      2 * std::max<int64_t>(1, nnz / std::max<int64_t>(1, rows)) *
      std::max<int64_t>(1, dense_cols);
  return std::max<int64_t>(1, kMinFlopsPerChunk / flops_per_row);
}

}  // namespace aneci::kernels

#endif  // ANECI_LINALG_KERNELS_GRAIN_H_

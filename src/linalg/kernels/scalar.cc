// Portable scalar backend. The loop structures are the original PR-1
// kernels verbatim (ikj for N/N, k-outermost for T/N, per-element dots for
// N/T), generalised to alpha/beta, so results at alpha=1, beta=0 are
// bit-identical to the pre-backend free functions — goldens and the
// serial-vs-threaded equivalence tests carry over unchanged.
#include "linalg/kernels/grain.h"
#include "linalg/kernels/kernels.h"
#include "linalg/sparse.h"
#include "util/thread_pool.h"

namespace aneci::kernels {
namespace {

// C = beta * C over the rows [lo, hi); beta == 0 assigns zero so prior
// (possibly uninitialised) contents never propagate.
void ScaleRows(Matrix* c, double beta, int64_t lo, int64_t hi) {
  if (beta == 1.0) return;
  for (int64_t i = lo; i < hi; ++i) {
    double* row = c->RowPtr(static_cast<int>(i));
    if (beta == 0.0) {
      for (int j = 0; j < c->cols(); ++j) row[j] = 0.0;
    } else {
      for (int j = 0; j < c->cols(); ++j) row[j] *= beta;
    }
  }
}

class ScalarBackend final : public Backend {
 public:
  const char* name() const override { return "scalar"; }

 protected:
  void GemmImpl(bool trans_a, bool trans_b, double alpha, const Matrix& a,
                const Matrix& b, double beta, Matrix* c) const override {
    const int m = c->rows(), n = c->cols();
    const int k = trans_a ? a.rows() : a.cols();
    const int64_t grain = GemmRowGrain(2LL * k * n);
    if (!trans_a && !trans_b) {
      // ikj loop order: streams through b and c rows. Row-blocked across
      // the pool; every thread owns a disjoint slice of c's rows.
      ParallelFor(0, m, grain, [&](int64_t lo, int64_t hi) {
        ScaleRows(c, beta, lo, hi);
        for (int i = static_cast<int>(lo); i < hi; ++i) {
          const double* arow = a.RowPtr(i);
          double* crow = c->RowPtr(i);
          for (int kk = 0; kk < k; ++kk) {
            const double raw = arow[kk];
            if (raw == 0.0) continue;
            const double av = alpha * raw;
            const double* brow = b.RowPtr(kk);
            for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      });
    } else if (trans_a && !trans_b) {
      // Blocked over c's rows (a's columns): each thread keeps the serial
      // kk loop outermost, so every c(i, j) accumulates its k terms in the
      // same (increasing kk) order as the serial path.
      ParallelFor(0, m, grain, [&](int64_t lo, int64_t hi) {
        ScaleRows(c, beta, lo, hi);
        for (int kk = 0; kk < k; ++kk) {
          const double* arow = a.RowPtr(kk);
          const double* brow = b.RowPtr(kk);
          for (int i = static_cast<int>(lo); i < hi; ++i) {
            const double raw = arow[i];
            if (raw == 0.0) continue;
            const double av = alpha * raw;
            double* crow = c->RowPtr(i);
            for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      });
    } else if (!trans_a && trans_b) {
      ParallelFor(0, m, grain, [&](int64_t lo, int64_t hi) {
        for (int i = static_cast<int>(lo); i < hi; ++i) {
          const double* arow = a.RowPtr(i);
          double* crow = c->RowPtr(i);
          for (int j = 0; j < n; ++j) {
            const double* brow = b.RowPtr(j);
            double s = 0.0;
            for (int kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
            crow[j] = beta == 0.0 ? alpha * s : beta * crow[j] + alpha * s;
          }
        }
      });
    } else {
      // A^T B^T: per-element dots over strided operands; a cold path kept
      // for API completeness (no current call site).
      ParallelFor(0, m, grain, [&](int64_t lo, int64_t hi) {
        for (int i = static_cast<int>(lo); i < hi; ++i) {
          double* crow = c->RowPtr(i);
          for (int j = 0; j < n; ++j) {
            const double* brow = b.RowPtr(j);
            double s = 0.0;
            for (int kk = 0; kk < k; ++kk) s += a(kk, i) * brow[kk];
            crow[j] = beta == 0.0 ? alpha * s : beta * crow[j] + alpha * s;
          }
        }
      });
    }
  }

  void SpmmImpl(const SparseMatrix& s, const Matrix& x,
                Matrix* y) const override {
    const int k = x.cols();
    const std::vector<int64_t>& row_ptr = s.row_ptr();
    const std::vector<int>& col_idx = s.col_idx();
    const std::vector<double>& values = s.values();
    // Row-parallel: each output row is a disjoint slice computed with the
    // serial per-row loop, so the result is bit-identical at any thread
    // count.
    ParallelFor(0, s.rows(), SpmmRowGrain(s.rows(), s.nnz(), k),
                [&](int64_t lo, int64_t hi) {
      for (int r = static_cast<int>(lo); r < hi; ++r) {
        double* yrow = y->RowPtr(r);
        for (int c = 0; c < k; ++c) yrow[c] = 0.0;
        for (int64_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
          const double v = values[i];
          const double* xrow = x.RowPtr(col_idx[i]);
          for (int c = 0; c < k; ++c) yrow[c] += v * xrow[c];
        }
      }
    });
  }

  void SpmmTImpl(const SparseMatrix& s, const Matrix& x,
                 Matrix* y) const override {
    const int k = x.cols();
    const std::vector<int64_t>& row_ptr = s.row_ptr();
    const std::vector<int>& col_idx = s.col_idx();
    const std::vector<double>& values = s.values();
    // Scattering into y rows indexed by col_idx races under a row partition
    // of s, so partition y's rows instead: each thread scans every CSR row
    // but touches only the (sorted, hence contiguous) column range it owns.
    // Per output row the contributions still arrive in increasing r —
    // exactly the serial accumulation order, so output is bit-identical.
    const int64_t col_grain = std::max<int64_t>(
        1, (s.cols() + 2LL * NumThreads() - 1) / (2LL * NumThreads()));
    ParallelFor(0, s.cols(), col_grain, [&](int64_t lo, int64_t hi) {
      const int col_lo = static_cast<int>(lo), col_hi = static_cast<int>(hi);
      for (int r = col_lo; r < col_hi; ++r) {
        double* yrow = y->RowPtr(r);
        for (int c = 0; c < k; ++c) yrow[c] = 0.0;
      }
      for (int r = 0; r < s.rows(); ++r) {
        const int* row_begin = col_idx.data() + row_ptr[r];
        const int* row_end = col_idx.data() + row_ptr[r + 1];
        const int* lo_it = std::lower_bound(row_begin, row_end, col_lo);
        const int* hi_it = std::lower_bound(lo_it, row_end, col_hi);
        if (lo_it == hi_it) continue;
        const double* xrow = x.RowPtr(r);
        for (const int* p = lo_it; p < hi_it; ++p) {
          const double v = values[p - col_idx.data()];
          double* yrow = y->RowPtr(*p);
          for (int c = 0; c < k; ++c) yrow[c] += v * xrow[c];
        }
      }
    });
  }
};

}  // namespace

namespace internal {

const Backend* ScalarInstance() {
  static const ScalarBackend backend;
  return &backend;
}

}  // namespace internal
}  // namespace aneci::kernels

// The unified kernel backend API: every dense GEMM and sparse SpMM in the
// library executes through exactly one `kernels::Backend`, selected once at
// process startup (see `Active()` below). The legacy free functions
// (`MatMul`, `MatMulTransA`, `MatMulTransB`) and the `SparseMatrix`
// multiply methods are thin forwarding shims over this interface, so
// call sites never name a backend.
//
// ## Operations
//
//   Gemm(transA, transB, alpha, A, B, beta, C):
//       C = alpha * op(A) * op(B) + beta * C
//     op(A) is (m x k), op(B) is (k x n); C must be preallocated (m x n).
//     beta == 0 is an assignment: C's prior contents are never read (NaN or
//     uninitialized garbage in C must not leak into the result).
//   Spmm(S, X, Y):   Y = S * X      (S: m x n CSR, X: n x k, Y: m x k)
//   SpmmT(S, X, Y):  Y = S^T * X    (S: m x n CSR, X: m x k, Y: n x k)
//     Both fully overwrite Y (they behave as beta == 0).
//
// ## Backend selection
//
//   * `Active()` picks once, on first use, for the whole process:
//     the `ANECI_KERNEL_BACKEND` environment variable ("scalar" or "avx2")
//     wins when set; otherwise CPUID (AVX2 + FMA) selects "avx2" when the
//     hardware has it, else "scalar". Requesting "avx2" on hardware (or a
//     build) without it falls back to "scalar"; any other name aborts.
//     CPUID probing itself is confined to kernels/dispatch.cc — the lint
//     banned-nondeterminism check enforces that no other file forks
//     behavior on machine capabilities.
//   * `BackendByName()` exposes each backend directly for tests and
//     benchmarks; it never changes the process-wide selection.
//
// ## Determinism contract (per backend)
//
//   * Within one backend, results are BIT-IDENTICAL at every thread count:
//     each output element is accumulated in a fixed per-element order that
//     depends only on the operand shapes (the scalar backend keeps the
//     PR-1 loop orders; the AVX2 backend fixes the cache-block reduction
//     order — k blocks accumulate serially into C in increasing order, and
//     SIMD lanes never sum across an output element's k terms in a
//     thread-dependent way).
//   * ACROSS backends, results are only ULP-close, not bitwise equal: the
//     AVX2 path uses FMA (fused rounding) and a blocked summation order.
//     The equivalence tests bound the difference elementwise by
//     |scalar - avx2| <= kKernelUlpSlack * eps * (|A| |B|)_ij — i.e. a
//     small multiple of the classic summation error bound — rather than
//     asserting bitwise equality (tests/kernels_test.cc).
//   * Selection is per-process-stable: on one machine with one
//     ANECI_KERNEL_BACKEND setting, reruns and checkpoint resumes are
//     byte-identical. Artifacts produced on machines with different
//     backends differ within the same ULP envelope.
//
// ## Alignment and aliasing rules
//
//   * No alignment requirements: operands are row-major with stride ==
//     cols, rows may start at any 8-byte boundary (odd column counts make
//     every other row 32-byte-unaligned; the AVX2 path uses unaligned
//     loads/stores throughout).
//   * C/Y must not alias A, B, X, or the CSR arrays (checked for the dense
//     base pointers). A and B may alias each other (e.g. Gram matrices
//     A^T A).
#ifndef ANECI_LINALG_KERNELS_KERNELS_H_
#define ANECI_LINALG_KERNELS_KERNELS_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace aneci {

class SparseMatrix;

namespace kernels {

/// Elementwise slack factor for cross-backend GEMM comparisons, in units of
/// eps * (|A| |B|)_ij. Shared by tests and documented here as part of the
/// accuracy contract: both paths are within a tiny multiple of the standard
/// recursive-summation error bound of the exact product.
inline constexpr double kKernelUlpSlack = 8.0;

class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable lower-case identifier: "scalar" or "avx2".
  virtual const char* name() const = 0;

  /// C = alpha * op(A) * op(B) + beta * C. Validates shapes/aliasing and
  /// records the linalg/matmul metrics, then runs the backend kernel.
  void Gemm(bool trans_a, bool trans_b, double alpha, const Matrix& a,
            const Matrix& b, double beta, Matrix* c) const;

  /// Y = S * X, overwriting Y entirely.
  void Spmm(const SparseMatrix& s, const Matrix& x, Matrix* y) const;

  /// Y = S^T * X, overwriting Y entirely.
  void SpmmT(const SparseMatrix& s, const Matrix& x, Matrix* y) const;

 protected:
  virtual void GemmImpl(bool trans_a, bool trans_b, double alpha,
                        const Matrix& a, const Matrix& b, double beta,
                        Matrix* c) const = 0;
  virtual void SpmmImpl(const SparseMatrix& s, const Matrix& x,
                        Matrix* y) const = 0;
  virtual void SpmmTImpl(const SparseMatrix& s, const Matrix& x,
                         Matrix* y) const = 0;
};

/// The process-wide backend, selected once on first use (thread-safe).
const Backend& Active();

/// Name of the process-wide backend ("scalar" / "avx2").
const char* ActiveName();

/// A specific backend, or nullptr when it is unavailable (not compiled in,
/// or the CPU lacks the ISA). "scalar" is always available. Does not affect
/// Active(); intended for tests and benchmarks that compare backends.
const Backend* BackendByName(const std::string& name);

/// Names of every backend available in this process, scalar first.
std::vector<std::string> AvailableBackends();

namespace internal {
/// Singletons defined by the backend translation units. Avx2Instance() is
/// only referenced when the build compiled kernels/avx2.cc.
const Backend* ScalarInstance();
const Backend* Avx2Instance();
}  // namespace internal

}  // namespace kernels
}  // namespace aneci

#endif  // ANECI_LINALG_KERNELS_KERNELS_H_

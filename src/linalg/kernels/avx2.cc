// AVX2+FMA backend: a BLIS-style cache-blocked GEMM (packed A/B panels, a
// 6x8 register tile = 12 ymm accumulators) and FMA-vectorised SpMM loops.
//
// Blocking scheme and determinism:
//
//   for jc over n in NC columns:            (serial)
//     for pc over k in KC depth blocks:     (serial — fixes the per-element
//                                            reduction order over k blocks)
//       pack B(pc:pc+kc, jc:jc+nc)          (serial, shared read-only panel)
//       ParallelFor over MC row blocks:     (each owns disjoint C rows)
//         pack A(ic:ic+mc, pc:pc+kc) into thread-local storage
//         for jr over nc in NR: for ir over mc in MR: microkernel
//
// Every C element accumulates its k terms in increasing-pc-block order, and
// within a block each element is a single ymm lane across the whole kc loop
// (no cross-lane shuffles), so the summation order is a function of the
// shapes alone — bit-identical at every thread count. Tails are handled by
// zero-padding the packed panels to MR/NR multiples; padded rows/columns
// live in their own lanes and never touch valid elements.
//
// This file is compiled with -mavx2 -mfma only when the toolchain supports
// it (ANECI_KERNELS_HAVE_AVX2); the CPUID gate that decides whether to run
// it lives in dispatch.cc.
#ifdef ANECI_KERNELS_HAVE_AVX2

#include <immintrin.h>

#include <vector>

#include "linalg/kernels/grain.h"
#include "linalg/kernels/kernels.h"
#include "linalg/sparse.h"
#include "util/thread_pool.h"

namespace aneci::kernels {
namespace {

constexpr int kMr = 6;     // rows per register tile
constexpr int kNr = 8;     // cols per register tile (two ymm vectors)
constexpr int kKc = 256;   // depth block (A panel column count)
constexpr int kMc = 96;    // row block, multiple of kMr
constexpr int kNc = 2048;  // column block, multiple of kNr

inline double At(const Matrix& m, bool trans, int r, int c) {
  return trans ? m(c, r) : m(r, c);
}

// Packs op(A)(ic:ic+mc, pc:pc+kc) as consecutive kMr-row micro-panels, each
// panel laid out p-major (kMr values per depth step). Rows in
// [mc, mc_padded) are zero fill so tail tiles read only packed data.
void PackA(const Matrix& a, bool trans, int ic, int pc, int mc, int mc_padded,
           int kc, double* buf) {
  for (int ir = 0; ir < mc_padded; ir += kMr) {
    const int mr = std::max(0, std::min(kMr, mc - ir));
    for (int p = 0; p < kc; ++p) {
      for (int i = 0; i < mr; ++i)
        buf[i] = At(a, trans, ic + ir + i, pc + p);
      for (int i = mr; i < kMr; ++i) buf[i] = 0.0;
      buf += kMr;
    }
  }
}

// Packs op(B)(pc:pc+kc, jc:jc+nc) as consecutive kNr-column micro-panels,
// each panel p-major (kNr values per depth step), zero-padded to kNr.
void PackB(const Matrix& b, bool trans, int pc, int jc, int kc, int nc,
           double* buf) {
  for (int jr = 0; jr < nc; jr += kNr) {
    const int nr = std::min(kNr, nc - jr);
    for (int p = 0; p < kc; ++p) {
      for (int j = 0; j < nr; ++j)
        buf[j] = At(b, trans, pc + p, jc + jr + j);
      for (int j = nr; j < kNr; ++j) buf[j] = 0.0;
      buf += kNr;
    }
  }
}

// ab[kMr][kNr] = sum_p a_panel[p] (x) b_panel[p]. 12 ymm accumulators plus
// two B vectors and one A broadcast = 15 live registers.
void MicroKernel(int kc, const double* a, const double* b, double* ab) {
  __m256d acc[kMr][2];
  for (int i = 0; i < kMr; ++i) {
    acc[i][0] = _mm256_setzero_pd();
    acc[i][1] = _mm256_setzero_pd();
  }
  for (int p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_loadu_pd(b);
    const __m256d b1 = _mm256_loadu_pd(b + 4);
    for (int i = 0; i < kMr; ++i) {
      const __m256d ai = _mm256_broadcast_sd(a + i);
      acc[i][0] = _mm256_fmadd_pd(ai, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_pd(ai, b1, acc[i][1]);
    }
    a += kMr;
    b += kNr;
  }
  for (int i = 0; i < kMr; ++i) {
    _mm256_storeu_pd(ab + i * kNr, acc[i][0]);
    _mm256_storeu_pd(ab + i * kNr + 4, acc[i][1]);
  }
}

class Avx2Backend final : public Backend {
 public:
  const char* name() const override { return "avx2"; }

 protected:
  void GemmImpl(bool trans_a, bool trans_b, double alpha, const Matrix& a,
                const Matrix& b, double beta, Matrix* c) const override {
    const int m = c->rows(), n = c->cols();
    const int k = trans_a ? a.rows() : a.cols();
    if (m == 0 || n == 0) return;
    if (k == 0) {
      // Empty sum: C = beta * C, with beta == 0 as pure assignment.
      for (int i = 0; i < m; ++i) {
        double* row = c->RowPtr(i);
        for (int j = 0; j < n; ++j) row[j] = beta == 0.0 ? 0.0 : beta * row[j];
      }
      return;
    }
    std::vector<double> packed_b;
    for (int jc = 0; jc < n; jc += kNc) {
      const int nc = std::min(kNc, n - jc);
      const int nc_padded = (nc + kNr - 1) / kNr * kNr;
      for (int pc = 0; pc < k; pc += kKc) {
        const int kc = std::min(kKc, k - pc);
        packed_b.resize(static_cast<size_t>(nc_padded) * kc);
        PackB(b, trans_b, pc, jc, kc, nc, packed_b.data());
        // first decides how the microtile lands in C: the pc == 0 block
        // applies beta (assignment when beta == 0), later blocks accumulate.
        const bool first = pc == 0;
        const int num_row_blocks = (m + kMc - 1) / kMc;
        ParallelFor(0, num_row_blocks, 1, [&](int64_t blo, int64_t bhi) {
          thread_local std::vector<double> packed_a;
          packed_a.resize(static_cast<size_t>(kMc) * kKc);
          double ab[kMr * kNr];
          for (int64_t bi = blo; bi < bhi; ++bi) {
            const int ic = static_cast<int>(bi) * kMc;
            const int mc = std::min(kMc, m - ic);
            const int mc_padded = (mc + kMr - 1) / kMr * kMr;
            PackA(a, trans_a, ic, pc, mc, mc_padded, kc, packed_a.data());
            for (int jr = 0; jr < nc; jr += kNr) {
              const int nr = std::min(kNr, nc - jr);
              const double* b_panel =
                  packed_b.data() + static_cast<size_t>(jr) * kc;
              for (int ir = 0; ir < mc; ir += kMr) {
                const int mr = std::min(kMr, mc - ir);
                const double* a_panel =
                    packed_a.data() + static_cast<size_t>(ir) * kc;
                MicroKernel(kc, a_panel, b_panel, ab);
                for (int i = 0; i < mr; ++i) {
                  double* crow = c->RowPtr(ic + ir + i) + jc + jr;
                  const double* abrow = ab + i * kNr;
                  if (first) {
                    if (beta == 0.0) {
                      for (int j = 0; j < nr; ++j) crow[j] = alpha * abrow[j];
                    } else {
                      for (int j = 0; j < nr; ++j)
                        crow[j] = beta * crow[j] + alpha * abrow[j];
                    }
                  } else {
                    for (int j = 0; j < nr; ++j) crow[j] += alpha * abrow[j];
                  }
                }
              }
            }
          }
        });
      }
    }
  }

  void SpmmImpl(const SparseMatrix& s, const Matrix& x,
                Matrix* y) const override {
    const int k = x.cols();
    const std::vector<int64_t>& row_ptr = s.row_ptr();
    const std::vector<int>& col_idx = s.col_idx();
    const std::vector<double>& values = s.values();
    // Same row partition as the scalar backend; the inner column loop runs
    // 4 lanes at a time with FMA. Each y element still sums its CSR terms
    // in increasing-i order, so output is bit-identical across thread
    // counts (and ULP-close, not bitwise equal, to scalar: FMA fuses the
    // multiply-add rounding).
    ParallelFor(0, s.rows(), SpmmRowGrain(s.rows(), s.nnz(), k),
                [&](int64_t lo, int64_t hi) {
      for (int r = static_cast<int>(lo); r < hi; ++r) {
        double* yrow = y->RowPtr(r);
        for (int c = 0; c < k; ++c) yrow[c] = 0.0;
        for (int64_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
          const double v = values[i];
          const double* xrow = x.RowPtr(col_idx[i]);
          AxpyRow(v, xrow, yrow, k);
        }
      }
    });
  }

  void SpmmTImpl(const SparseMatrix& s, const Matrix& x,
                 Matrix* y) const override {
    const int k = x.cols();
    const std::vector<int64_t>& row_ptr = s.row_ptr();
    const std::vector<int>& col_idx = s.col_idx();
    const std::vector<double>& values = s.values();
    // Output-column partition, identical to the scalar backend (see there
    // for why this is race-free and order-preserving).
    const int64_t col_grain = std::max<int64_t>(
        1, (s.cols() + 2LL * NumThreads() - 1) / (2LL * NumThreads()));
    ParallelFor(0, s.cols(), col_grain, [&](int64_t lo, int64_t hi) {
      const int col_lo = static_cast<int>(lo), col_hi = static_cast<int>(hi);
      for (int r = col_lo; r < col_hi; ++r) {
        double* yrow = y->RowPtr(r);
        for (int c = 0; c < k; ++c) yrow[c] = 0.0;
      }
      for (int r = 0; r < s.rows(); ++r) {
        const int* row_begin = col_idx.data() + row_ptr[r];
        const int* row_end = col_idx.data() + row_ptr[r + 1];
        const int* lo_it = std::lower_bound(row_begin, row_end, col_lo);
        const int* hi_it = std::lower_bound(lo_it, row_end, col_hi);
        if (lo_it == hi_it) continue;
        const double* xrow = x.RowPtr(r);
        for (const int* p = lo_it; p < hi_it; ++p) {
          const double v = values[p - col_idx.data()];
          AxpyRow(v, xrow, y->RowPtr(*p), k);
        }
      }
    });
  }

 private:
  // y[0:k) += v * x[0:k), 4 lanes at a time, FMA scalar tail.
  static void AxpyRow(double v, const double* x, double* y, int k) {
    const __m256d vv = _mm256_set1_pd(v);
    int c = 0;
    for (; c + 4 <= k; c += 4) {
      const __m256d yc = _mm256_loadu_pd(y + c);
      _mm256_storeu_pd(y + c, _mm256_fmadd_pd(vv, _mm256_loadu_pd(x + c), yc));
    }
    for (; c < k; ++c) y[c] = __builtin_fma(v, x[c], y[c]);
  }
};

}  // namespace

namespace internal {

// Raw (un-gated) instance; dispatch.cc wraps it behind the CPUID probe.
const Backend* Avx2InstanceRaw() {
  static const Avx2Backend backend;
  return &backend;
}

}  // namespace internal
}  // namespace aneci::kernels

#endif  // ANECI_KERNELS_HAVE_AVX2

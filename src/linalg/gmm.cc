#include "linalg/gmm.h"

#include <cmath>
#include <limits>

#include "linalg/kmeans.h"
#include "util/check.h"

namespace aneci {

GmmResult FitGmm(const Matrix& points, int k, Rng& rng,
                 const GmmOptions& options) {
  const int n = points.rows(), d = points.cols();
  ANECI_CHECK(k > 0 && n >= k);

  GmmResult result;
  // Initialise from k-means.
  KMeansResult km = KMeans(points, k, rng);
  result.means = km.centroids;
  result.variances = Matrix(k, d, 1.0);
  result.weights.assign(k, 1.0 / k);
  {
    // Per-cluster variances from the k-means assignment.
    std::vector<int> counts(k, 0);
    Matrix sq(k, d);
    for (int i = 0; i < n; ++i) {
      const int c = km.assignment[i];
      ++counts[c];
      for (int j = 0; j < d; ++j) {
        const double diff = points(i, j) - result.means(c, j);
        sq(c, j) += diff * diff;
      }
    }
    for (int c = 0; c < k; ++c) {
      result.weights[c] = std::max(1, counts[c]) / static_cast<double>(n);
      for (int j = 0; j < d; ++j) {
        result.variances(c, j) =
            std::max(options.min_variance,
                     counts[c] > 1 ? sq(c, j) / counts[c] : 1.0);
      }
    }
  }

  result.responsibilities = Matrix(n, k);
  double prev_ll = -std::numeric_limits<double>::max();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // E step: responsibilities via log-sum-exp.
    double ll = 0.0;
    for (int i = 0; i < n; ++i) {
      double mx = -std::numeric_limits<double>::max();
      std::vector<double> logp(k);
      for (int c = 0; c < k; ++c) {
        double lp = std::log(std::max(result.weights[c], 1e-12));
        for (int j = 0; j < d; ++j) {
          const double var = result.variances(c, j);
          const double diff = points(i, j) - result.means(c, j);
          lp += -0.5 * (std::log(2.0 * M_PI * var) + diff * diff / var);
        }
        logp[c] = lp;
        mx = std::max(mx, lp);
      }
      double sum = 0.0;
      for (int c = 0; c < k; ++c) sum += std::exp(logp[c] - mx);
      ll += mx + std::log(sum);
      for (int c = 0; c < k; ++c)
        result.responsibilities(i, c) = std::exp(logp[c] - mx) / sum;
    }
    result.log_likelihood = ll;
    result.iterations = iter + 1;
    if (ll - prev_ll < options.tolerance * std::abs(ll)) break;
    prev_ll = ll;

    // M step.
    for (int c = 0; c < k; ++c) {
      double nk = 0.0;
      for (int i = 0; i < n; ++i) nk += result.responsibilities(i, c);
      nk = std::max(nk, 1e-10);
      result.weights[c] = nk / n;
      for (int j = 0; j < d; ++j) {
        double mean = 0.0;
        for (int i = 0; i < n; ++i)
          mean += result.responsibilities(i, c) * points(i, j);
        mean /= nk;
        double var = 0.0;
        for (int i = 0; i < n; ++i) {
          const double diff = points(i, j) - mean;
          var += result.responsibilities(i, c) * diff * diff;
        }
        result.means(c, j) = mean;
        result.variances(c, j) = std::max(options.min_variance, var / nk);
      }
    }
  }

  result.assignment.assign(n, 0);
  for (int i = 0; i < n; ++i) {
    int best = 0;
    for (int c = 1; c < k; ++c)
      if (result.responsibilities(i, c) > result.responsibilities(i, best))
        best = c;
    result.assignment[i] = best;
  }
  return result;
}

}  // namespace aneci

// Dense row-major matrix of doubles plus the kernels used throughout the
// library (GEMM, transpose, row softmax/normalisation, elementwise maps).
// Sized for the graph-embedding workloads in this repo: matrices are tall
// (N x h with h <= few hundred), so kernels are simple cache-friendly loops.
#ifndef ANECI_LINALG_MATRIX_H_
#define ANECI_LINALG_MATRIX_H_

#include <functional>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace aneci {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    ANECI_CHECK(rows >= 0 && cols >= 0);
  }

  /// Adopts `storage` as the backing buffer without touching its contents
  /// (the caller must overwrite every entry before reading — used by the
  /// autograd memory planner to recycle buffers across the backward sweep).
  /// `storage` is resized to exactly rows * cols; a capacity-preserving
  /// shrink/grow, so recycled buffers keep their allocation.
  Matrix(int rows, int cols, std::vector<double>&& storage)
      : rows_(rows), cols_(cols), data_(std::move(storage)) {
    ANECI_CHECK(rows >= 0 && cols >= 0);
    data_.resize(static_cast<size_t>(rows) * cols);
  }

  /// Builds from nested initializer-style data; all rows must be equal length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  static Matrix Identity(int n);

  /// Entries iid Uniform(-scale, scale).
  static Matrix RandomUniform(int rows, int cols, double scale, Rng& rng);

  /// Entries iid Normal(0, std^2).
  static Matrix RandomNormal(int rows, int cols, double std, Rng& rng);

  /// Glorot/Xavier uniform initialisation for a weight applied as X * W:
  /// returns a (fan_in rows x fan_out cols) matrix with entries iid
  /// Uniform(-L, L), L = sqrt(6 / (fan_in + fan_out)). Orientation is
  /// (rows, cols) = (fan_in, fan_out); all call sites pass
  /// (input_dim, output_dim).
  static Matrix GlorotUniform(int fan_in, int fan_out, Rng& rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }
  bool empty() const { return size() == 0; }

  double& operator()(int r, int c) {
    ANECI_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    ANECI_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  double* RowPtr(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const double* RowPtr(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void Fill(double v) { std::fill(data_.begin(), data_.end(), v); }
  void SetZero() { Fill(0.0); }

  /// Steals the backing buffer, leaving this matrix empty (0 x 0). The
  /// planner's arena uses this to recycle storage after a gradient dies.
  std::vector<double> TakeStorage() {
    rows_ = 0;
    cols_ = 0;
    return std::move(data_);
  }

  // In-place arithmetic. Shapes must match exactly.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  /// this += alpha * other.
  void Axpy(double alpha, const Matrix& other);

  /// Elementwise product, in place.
  void HadamardInPlace(const Matrix& other);

  /// Applies f to every entry, in place.
  void Apply(const std::function<double(double)>& f);

  /// Row `r` as a copy.
  std::vector<double> Row(int r) const;

  /// Extracts the sub-matrix of the given rows (in order).
  Matrix SelectRows(const std::vector<int>& indices) const;

  double FrobeniusNorm() const;
  double Sum() const;
  double Max() const;
  double Min() const;

  std::string DebugString(int max_rows = 6, int max_cols = 8) const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

// --- Free-function kernels -------------------------------------------------

/// C = A * B. Shapes: (m x k) * (k x n) -> (m x n).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A^T * B. Shapes: (k x m)^T * (k x n) -> (m x n).
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// C = A * B^T. Shapes: (m x k) * (n x k)^T -> (m x n).
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

Matrix Transpose(const Matrix& a);

Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix Hadamard(const Matrix& a, const Matrix& b);
Matrix Scale(const Matrix& a, double s);

/// Row-wise softmax; numerically stabilised by the row max.
Matrix RowSoftmax(const Matrix& a);

/// Rows scaled to unit L1 norm (rows with zero norm are left as zero).
Matrix RowNormalizeL1(const Matrix& a);

/// Rows scaled to unit L2 norm (zero rows left as zero).
Matrix RowNormalizeL2(const Matrix& a);

/// Per-row sums, as an (n x 1) column.
std::vector<double> RowSums(const Matrix& a);

/// Per-column means.
std::vector<double> ColMeans(const Matrix& a);

double Dot(const std::vector<double>& a, const std::vector<double>& b);
double CosineSimilarity(const double* a, const double* b, int n);

}  // namespace aneci

#endif  // ANECI_LINALG_MATRIX_H_

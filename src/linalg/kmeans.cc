#include "linalg/kmeans.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/thread_pool.h"

namespace aneci {
namespace {

// Chunk grain for the reductions below. The chunk count is capped at 64 and
// depends only on n — never on the thread count — so the chunk-ordered
// merges of the per-chunk partials give bit-identical results for every
// ANECI_THREADS setting (including the serial path, which runs the same
// chunks in order).
int64_t ReductionGrain(int64_t n) {
  return std::max<int64_t>(1, (n + 63) / 64);
}

double SquaredDistance(const double* a, const double* b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

// k-means++ seeding: each next centroid sampled proportionally to squared
// distance from the nearest chosen centroid.
Matrix PlusPlusInit(const Matrix& points, int k, Rng& rng) {
  const int n = points.rows(), dim = points.cols();
  Matrix centroids(k, dim);
  std::vector<double> min_d2(n, std::numeric_limits<double>::max());

  int first = static_cast<int>(rng.NextInt(n));
  std::copy(points.RowPtr(first), points.RowPtr(first) + dim,
            centroids.RowPtr(0));
  for (int c = 1; c < k; ++c) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      const double d2 =
          SquaredDistance(points.RowPtr(i), centroids.RowPtr(c - 1), dim);
      if (d2 < min_d2[i]) min_d2[i] = d2;
      total += min_d2[i];
    }
    int chosen = n - 1;
    if (total > 0.0) {
      double target = rng.NextDouble() * total;
      double acc = 0.0;
      for (int i = 0; i < n; ++i) {
        acc += min_d2[i];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<int>(rng.NextInt(n));
    }
    std::copy(points.RowPtr(chosen), points.RowPtr(chosen) + dim,
              centroids.RowPtr(c));
  }
  return centroids;
}

KMeansResult RunOnce(const Matrix& points, int k, Rng& rng,
                     const KMeansOptions& options) {
  const int n = points.rows(), dim = points.cols();
  KMeansResult result;
  result.centroids = PlusPlusInit(points, k, rng);
  result.assignment.assign(n, 0);
  double prev_inertia = std::numeric_limits<double>::max();

  const int64_t grain = ReductionGrain(n);
  const int64_t num_chunks = NumChunks(0, n, grain);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment step: points are independent; each chunk owns a disjoint
    // assignment slice plus its own inertia partial, merged in chunk order.
    std::vector<double> inertia_part(num_chunks, 0.0);
    ParallelForChunks(0, n, grain, [&](int64_t lo, int64_t hi, int64_t ci) {
      double local = 0.0;
      for (int i = static_cast<int>(lo); i < hi; ++i) {
        double best = std::numeric_limits<double>::max();
        int best_c = 0;
        for (int c = 0; c < k; ++c) {
          const double d2 = SquaredDistance(points.RowPtr(i),
                                            result.centroids.RowPtr(c), dim);
          if (d2 < best) {
            best = d2;
            best_c = c;
          }
        }
        result.assignment[i] = best_c;
        local += best;
      }
      inertia_part[ci] = local;
    });
    double inertia = 0.0;
    for (double v : inertia_part) inertia += v;
    result.inertia = inertia;
    result.iterations = iter + 1;
    if (prev_inertia - inertia < options.tolerance) break;
    prev_inertia = inertia;

    // Update step: per-chunk partial sums/counts, merged in fixed chunk
    // order so centroids stay bit-identical run-to-run and across thread
    // counts. Empty clusters get re-seeded from a random point.
    std::vector<Matrix> sums_part(num_chunks, Matrix(k, dim));
    std::vector<std::vector<int>> counts_part(num_chunks,
                                              std::vector<int>(k, 0));
    ParallelForChunks(0, n, grain, [&](int64_t lo, int64_t hi, int64_t ci) {
      Matrix& local_sums = sums_part[ci];
      std::vector<int>& local_counts = counts_part[ci];
      for (int i = static_cast<int>(lo); i < hi; ++i) {
        const int c = result.assignment[i];
        ++local_counts[c];
        double* srow = local_sums.RowPtr(c);
        const double* prow = points.RowPtr(i);
        for (int d = 0; d < dim; ++d) srow[d] += prow[d];
      }
    });
    Matrix sums(k, dim);
    std::vector<int> counts(k, 0);
    for (int64_t ci = 0; ci < num_chunks; ++ci) {
      sums += sums_part[ci];
      for (int c = 0; c < k; ++c) counts[c] += counts_part[ci][c];
    }
    for (int c = 0; c < k; ++c) {
      double* crow = result.centroids.RowPtr(c);
      if (counts[c] == 0) {
        const int r = static_cast<int>(rng.NextInt(n));
        std::copy(points.RowPtr(r), points.RowPtr(r) + dim, crow);
      } else {
        const double* srow = sums.RowPtr(c);
        for (int d = 0; d < dim; ++d) crow[d] = srow[d] / counts[c];
      }
    }
  }
  return result;
}

}  // namespace

KMeansResult KMeans(const Matrix& points, int k, Rng& rng,
                    const KMeansOptions& options) {
  ANECI_CHECK(k > 0 && points.rows() >= k);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  for (int r = 0; r < std::max(1, options.restarts); ++r) {
    KMeansResult run = RunOnce(points, k, rng, options);
    if (run.inertia < best.inertia) best = std::move(run);
  }
  return best;
}

}  // namespace aneci

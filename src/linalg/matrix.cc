#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "linalg/kernels/kernels.h"

namespace aneci {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  const int r = static_cast<int>(rows.size());
  const int c = static_cast<int>(rows[0].size());
  Matrix m(r, c);
  for (int i = 0; i < r; ++i) {
    ANECI_CHECK_EQ(static_cast<int>(rows[i].size()), c);
    std::copy(rows[i].begin(), rows[i].end(), m.RowPtr(i));
  }
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::RandomUniform(int rows, int cols, double scale, Rng& rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Uniform(-scale, scale);
  return m;
}

Matrix Matrix::RandomNormal(int rows, int cols, double std, Rng& rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = std * rng.NextGaussian();
  return m;
}

Matrix Matrix::GlorotUniform(int fan_in, int fan_out, Rng& rng) {
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  return RandomUniform(fan_in, fan_out, limit, rng);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  ANECI_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  ANECI_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

void Matrix::Axpy(double alpha, const Matrix& other) {
  ANECI_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::HadamardInPlace(const Matrix& other) {
  ANECI_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::Apply(const std::function<double(double)>& f) {
  for (double& v : data_) v = f(v);
}

std::vector<double> Matrix::Row(int r) const {
  return std::vector<double>(RowPtr(r), RowPtr(r) + cols_);
}

Matrix Matrix::SelectRows(const std::vector<int>& indices) const {
  Matrix out(static_cast<int>(indices.size()), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    ANECI_CHECK(indices[i] >= 0 && indices[i] < rows_);
    std::copy(RowPtr(indices[i]), RowPtr(indices[i]) + cols_,
              out.RowPtr(static_cast<int>(i)));
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::Max() const {
  ANECI_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

double Matrix::Min() const {
  ANECI_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

std::string Matrix::DebugString(int max_rows, int max_cols) const {
  std::string out = "Matrix " + std::to_string(rows_) + "x" +
                    std::to_string(cols_) + "\n";
  char buf[32];
  for (int r = 0; r < std::min(rows_, max_rows); ++r) {
    for (int c = 0; c < std::min(cols_, max_cols); ++c) {
      std::snprintf(buf, sizeof(buf), "%9.4f ", (*this)(r, c));
      out += buf;
    }
    if (cols_ > max_cols) out += "...";
    out += "\n";
  }
  if (rows_ > max_rows) out += "...\n";
  return out;
}

// The GEMM free functions are forwarding shims over the process-wide kernel
// backend (linalg/kernels/kernels.h); validation and metrics live there.

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  kernels::Active().Gemm(false, false, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  kernels::Active().Gemm(true, false, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  kernels::Active().Gemm(false, true, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) t(c, r) = a(r, c);
  return t;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c += b;
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c -= b;
  return c;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.HadamardInPlace(b);
  return c;
}

Matrix Scale(const Matrix& a, double s) {
  Matrix c = a;
  c *= s;
  return c;
}

Matrix RowSoftmax(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r) {
    const double* in = a.RowPtr(r);
    double* o = out.RowPtr(r);
    double mx = in[0];
    for (int c = 1; c < a.cols(); ++c) mx = std::max(mx, in[c]);
    double sum = 0.0;
    for (int c = 0; c < a.cols(); ++c) {
      o[c] = std::exp(in[c] - mx);
      sum += o[c];
    }
    for (int c = 0; c < a.cols(); ++c) o[c] /= sum;
  }
  return out;
}

Matrix RowNormalizeL1(const Matrix& a) {
  Matrix out = a;
  for (int r = 0; r < a.rows(); ++r) {
    double* row = out.RowPtr(r);
    double s = 0.0;
    for (int c = 0; c < a.cols(); ++c) s += std::abs(row[c]);
    if (s > 0.0)
      for (int c = 0; c < a.cols(); ++c) row[c] /= s;
  }
  return out;
}

Matrix RowNormalizeL2(const Matrix& a) {
  Matrix out = a;
  for (int r = 0; r < a.rows(); ++r) {
    double* row = out.RowPtr(r);
    double s = 0.0;
    for (int c = 0; c < a.cols(); ++c) s += row[c] * row[c];
    s = std::sqrt(s);
    if (s > 0.0)
      for (int c = 0; c < a.cols(); ++c) row[c] /= s;
  }
  return out;
}

std::vector<double> RowSums(const Matrix& a) {
  std::vector<double> s(a.rows(), 0.0);
  for (int r = 0; r < a.rows(); ++r) {
    const double* row = a.RowPtr(r);
    for (int c = 0; c < a.cols(); ++c) s[r] += row[c];
  }
  return s;
}

std::vector<double> ColMeans(const Matrix& a) {
  std::vector<double> m(a.cols(), 0.0);
  if (a.rows() == 0) return m;
  for (int r = 0; r < a.rows(); ++r) {
    const double* row = a.RowPtr(r);
    for (int c = 0; c < a.cols(); ++c) m[c] += row[c];
  }
  for (double& v : m) v /= a.rows();
  return m;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  ANECI_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double CosineSimilarity(const double* a, const double* b, int n) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom == 0.0) return 0.0;
  return dot / denom;
}

}  // namespace aneci

// Symmetric eigensolvers: cyclic Jacobi for small dense matrices and a
// Lanczos iteration with full reorthogonalisation for the extreme eigenpairs
// of large sparse symmetric matrices. These power the spectral baselines
// (Laplacian Eigenmaps, spectral clustering) that the paper's related-work
// section traces modern embeddings back to.
#ifndef ANECI_LINALG_EIGEN_H_
#define ANECI_LINALG_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "util/rng.h"

namespace aneci {

struct EigenResult {
  /// Eigenvalues in ascending order.
  std::vector<double> values;
  /// Eigenvectors as columns, aligned with `values`.
  Matrix vectors;
};

/// Cyclic Jacobi rotation method for a dense symmetric matrix. O(n^3) per
/// sweep; intended for n up to a few hundred. `a` must be symmetric.
EigenResult JacobiEigen(const Matrix& a, int max_sweeps = 50,
                        double tolerance = 1e-12);

/// Lanczos with full reorthogonalisation: the `k` *smallest* eigenpairs of a
/// sparse symmetric matrix. `steps` controls the Krylov dimension
/// (default max(3k, 30), capped at n).
EigenResult LanczosSmallest(const SparseMatrix& a, int k, Rng& rng,
                            int steps = 0);

}  // namespace aneci

#endif  // ANECI_LINALG_EIGEN_H_

// Diagonal-covariance Gaussian mixture model fit by EM, used by the
// ComE-style community baseline (communities as Gaussian components in the
// embedding space) and available as a soft alternative to k-means.
#ifndef ANECI_LINALG_GMM_H_
#define ANECI_LINALG_GMM_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace aneci {

struct GmmOptions {
  int max_iterations = 100;
  double tolerance = 1e-5;      ///< Stop when log-likelihood gain drops below.
  double min_variance = 1e-4;   ///< Variance floor per dimension.
};

struct GmmResult {
  Matrix means;                  ///< (k x dim).
  Matrix variances;              ///< (k x dim), diagonal covariances.
  std::vector<double> weights;   ///< Mixture weights, sum to 1.
  Matrix responsibilities;       ///< (n x k) posterior memberships.
  std::vector<int> assignment;   ///< Argmax responsibility per point.
  double log_likelihood = 0.0;
  int iterations = 0;
};

/// Fits a k-component diagonal GMM to the rows of `points` with k-means++
/// initialised means.
GmmResult FitGmm(const Matrix& points, int k, Rng& rng,
                 const GmmOptions& options = {});

}  // namespace aneci

#endif  // ANECI_LINALG_GMM_H_

// K-means with k-means++ seeding, used to cluster baseline embeddings for
// the community-detection evaluation (Section VI-D of the paper).
#ifndef ANECI_LINALG_KMEANS_H_
#define ANECI_LINALG_KMEANS_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace aneci {

struct KMeansResult {
  std::vector<int> assignment;  ///< Cluster index per row of the input.
  Matrix centroids;             ///< (k x dim).
  double inertia = 0.0;         ///< Sum of squared distances to centroids.
  int iterations = 0;
};

struct KMeansOptions {
  int max_iterations = 100;
  double tolerance = 1e-6;  ///< Stop when inertia improvement drops below.
  int restarts = 1;         ///< Best of N runs (by inertia).
};

/// Lloyd's algorithm with k-means++ initialisation on the rows of `points`.
KMeansResult KMeans(const Matrix& points, int k, Rng& rng,
                    const KMeansOptions& options = {});

}  // namespace aneci

#endif  // ANECI_LINALG_KMEANS_H_

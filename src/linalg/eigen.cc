#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace aneci {
namespace {

// Sorts (values, columns-of-vectors) ascending by value.
EigenResult SortedResult(std::vector<double> values, Matrix vectors) {
  const int n = static_cast<int>(values.size());
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return values[a] < values[b]; });
  EigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(vectors.rows(), n);
  for (int c = 0; c < n; ++c) {
    result.values[c] = values[order[c]];
    for (int r = 0; r < vectors.rows(); ++r)
      result.vectors(r, c) = vectors(r, order[c]);
  }
  return result;
}

}  // namespace

EigenResult JacobiEigen(const Matrix& a, int max_sweeps, double tolerance) {
  ANECI_CHECK_EQ(a.rows(), a.cols());
  const int n = a.rows();
  Matrix m = a;
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p)
      for (int q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    if (off < tolerance) break;

    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) < 1e-300) continue;
        // Rotation angle zeroing m(p, q).
        const double theta = (m(q, q) - m(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (int i = 0; i < n; ++i) {
          const double mip = m(i, p), miq = m(i, q);
          m(i, p) = c * mip - s * miq;
          m(i, q) = s * mip + c * miq;
        }
        for (int i = 0; i < n; ++i) {
          const double mpi = m(p, i), mqi = m(q, i);
          m(p, i) = c * mpi - s * mqi;
          m(q, i) = s * mpi + c * mqi;
        }
        for (int i = 0; i < n; ++i) {
          const double vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  std::vector<double> values(n);
  for (int i = 0; i < n; ++i) values[i] = m(i, i);
  return SortedResult(std::move(values), std::move(v));
}

EigenResult LanczosSmallest(const SparseMatrix& a, int k, Rng& rng,
                            int steps) {
  ANECI_CHECK_EQ(a.rows(), a.cols());
  const int n = a.rows();
  ANECI_CHECK(k > 0 && k <= n);
  int m = steps > 0 ? steps : std::max(4 * k, 60);
  m = std::min(m, n);

  // Krylov basis as columns of q (n x m).
  Matrix q(n, m);
  std::vector<double> alpha(m, 0.0), beta(m, 0.0);

  // Random normalised start vector.
  {
    double norm = 0.0;
    for (int i = 0; i < n; ++i) {
      q(i, 0) = rng.NextGaussian();
      norm += q(i, 0) * q(i, 0);
    }
    norm = std::sqrt(norm);
    for (int i = 0; i < n; ++i) q(i, 0) /= norm;
  }

  Matrix col(n, 1);
  int built = 0;
  for (int j = 0; j < m; ++j) {
    built = j + 1;
    for (int i = 0; i < n; ++i) col(i, 0) = q(i, j);
    Matrix w = a.Multiply(col);  // w = A q_j.
    double aj = 0.0;
    for (int i = 0; i < n; ++i) aj += w(i, 0) * q(i, j);
    alpha[j] = aj;
    if (j + 1 == m) break;
    for (int i = 0; i < n; ++i) {
      w(i, 0) -= aj * q(i, j);
      if (j > 0) w(i, 0) -= beta[j - 1] * q(i, j - 1);
    }
    // Full reorthogonalisation for numerical stability.
    for (int c = 0; c <= j; ++c) {
      double dot = 0.0;
      for (int i = 0; i < n; ++i) dot += w(i, 0) * q(i, c);
      for (int i = 0; i < n; ++i) w(i, 0) -= dot * q(i, c);
    }
    double norm = 0.0;
    for (int i = 0; i < n; ++i) norm += w(i, 0) * w(i, 0);
    norm = std::sqrt(norm);
    if (norm < 1e-12) break;  // Invariant subspace found.
    beta[j] = norm;
    for (int i = 0; i < n; ++i) q(i, j + 1) = w(i, 0) / norm;
  }

  // Diagonalise the tridiagonal T (built x built) with Jacobi (small).
  Matrix t(built, built);
  for (int i = 0; i < built; ++i) {
    t(i, i) = alpha[i];
    if (i + 1 < built) {
      t(i, i + 1) = beta[i];
      t(i + 1, i) = beta[i];
    }
  }
  EigenResult tri = JacobiEigen(t);

  const int take = std::min(k, built);
  EigenResult result;
  result.values.assign(tri.values.begin(), tri.values.begin() + take);
  result.vectors = Matrix(n, take);
  // Ritz vectors: y = Q * s.
  for (int c = 0; c < take; ++c) {
    for (int i = 0; i < n; ++i) {
      double sum = 0.0;
      for (int j = 0; j < built; ++j) sum += q(i, j) * tri.vectors(j, c);
      result.vectors(i, c) = sum;
    }
  }
  return result;
}

}  // namespace aneci

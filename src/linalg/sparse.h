// Compressed-sparse-row matrix used for adjacency and high-order proximity
// matrices, with the SpMM / SpGEMM kernels the GCN propagation and proximity
// computation need.
#ifndef ANECI_LINALG_SPARSE_H_
#define ANECI_LINALG_SPARSE_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/check.h"

namespace aneci {

/// A coordinate-format entry used when assembling sparse matrices.
struct Triplet {
  int row;
  int col;
  double value;
};

/// Immutable CSR matrix of doubles. Column indices within a row are sorted
/// and unique after construction.
class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0) { row_ptr_.push_back(0); }
  SparseMatrix(int rows, int cols)
      : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

  /// Builds from triplets; duplicate (row, col) entries are summed.
  static SparseMatrix FromTriplets(int rows, int cols,
                                   std::vector<Triplet> triplets);

  static SparseMatrix Identity(int n);

  /// Dense -> sparse, dropping entries with |v| <= tol.
  static SparseMatrix FromDense(const Matrix& dense, double tol = 0.0);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  /// Number of stored entries in row r.
  int RowNnz(int r) const {
    return static_cast<int>(row_ptr_[r + 1] - row_ptr_[r]);
  }

  /// Value at (r, c); O(log nnz(r)). Returns 0 for unstored entries.
  double At(int r, int c) const;

  /// Dense equivalent; only for small matrices / tests.
  Matrix ToDense() const;

  /// y = this * x for a dense matrix x: (m x n) * (n x k) -> (m x k).
  Matrix Multiply(const Matrix& x) const;

  /// y = this^T * x: (m x n)^T * (m x k) -> (n x k).
  Matrix MultiplyTransposed(const Matrix& x) const;

  /// Sparse-sparse product (SpGEMM). Entries with |v| <= drop_tol are
  /// discarded from the result.
  SparseMatrix MultiplySparse(const SparseMatrix& other,
                              double drop_tol = 0.0) const;

  /// this + alpha * other (same shape).
  SparseMatrix AddScaled(const SparseMatrix& other, double alpha) const;

  SparseMatrix Transposed() const;

  /// Rows scaled to unit L1 norm (zero rows untouched).
  SparseMatrix RowNormalizedL1() const;

  /// D^{-1/2} * this * D^{-1/2} where D = diag(row sums). Zero-degree rows
  /// are left untouched. This is the symmetric GCN normalisation.
  SparseMatrix SymmetricallyNormalized() const;

  /// Per-row sums (the generalised degrees k~ of Definition 3).
  std::vector<double> RowSumsVec() const;

  double SumAll() const;

  /// All stored entries as triplets.
  std::vector<Triplet> ToTriplets() const;

 private:
  int rows_;
  int cols_;
  std::vector<int64_t> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<double> values_;
};

}  // namespace aneci

#endif  // ANECI_LINALG_SPARSE_H_

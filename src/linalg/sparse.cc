#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels/kernels.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace aneci {
namespace {

// Row grain sized so one chunk covers ~64k multiply-adds of SpMM work;
// tiny matrices collapse to one chunk and run serially.
int64_t SpmmRowGrain(int64_t rows, int64_t nnz, int64_t dense_cols) {
  constexpr int64_t kMinFlopsPerChunk = 1 << 16;
  const int64_t flops_per_row =
      2 * std::max<int64_t>(1, nnz / std::max<int64_t>(1, rows)) *
      std::max<int64_t>(1, dense_cols);
  return std::max<int64_t>(1, kMinFlopsPerChunk / flops_per_row);
}

}  // namespace

SparseMatrix SparseMatrix::FromTriplets(int rows, int cols,
                                        std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    ANECI_CHECK(t.row >= 0 && t.row < rows);
    ANECI_CHECK(t.col >= 0 && t.col < cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  SparseMatrix m(rows, cols);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  size_t i = 0;
  for (int r = 0; r < rows; ++r) {
    while (i < triplets.size() && triplets[i].row == r) {
      double v = triplets[i].value;
      const int c = triplets[i].col;
      ++i;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      if (v != 0.0) {
        m.col_idx_.push_back(c);
        m.values_.push_back(v);
      }
    }
    m.row_ptr_[r + 1] = static_cast<int64_t>(m.col_idx_.size());
  }
  return m;
}

SparseMatrix SparseMatrix::Identity(int n) {
  SparseMatrix m(n, n);
  m.col_idx_.resize(n);
  m.values_.assign(n, 1.0);
  for (int i = 0; i < n; ++i) {
    m.col_idx_[i] = i;
    m.row_ptr_[i + 1] = i + 1;
  }
  return m;
}

SparseMatrix SparseMatrix::FromDense(const Matrix& dense, double tol) {
  std::vector<Triplet> trips;
  for (int r = 0; r < dense.rows(); ++r)
    for (int c = 0; c < dense.cols(); ++c)
      if (std::abs(dense(r, c)) > tol) trips.push_back({r, c, dense(r, c)});
  return FromTriplets(dense.rows(), dense.cols(), std::move(trips));
}

double SparseMatrix::At(int r, int c) const {
  ANECI_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  const int* begin = col_idx_.data() + row_ptr_[r];
  const int* end = col_idx_.data() + row_ptr_[r + 1];
  const int* it = std::lower_bound(begin, end, c);
  if (it != end && *it == c) return values_[it - col_idx_.data()];
  return 0.0;
}

Matrix SparseMatrix::ToDense() const {
  Matrix d(rows_, cols_);
  for (int r = 0; r < rows_; ++r)
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
      d(r, col_idx_[i]) = values_[i];
  return d;
}

// Both SpMM entry points are forwarding shims over the process-wide kernel
// backend (linalg/kernels/kernels.h); validation and metrics live there.

Matrix SparseMatrix::Multiply(const Matrix& x) const {
  Matrix y(rows_, x.cols());
  kernels::Active().Spmm(*this, x, &y);
  return y;
}

Matrix SparseMatrix::MultiplyTransposed(const Matrix& x) const {
  Matrix y(cols_, x.cols());
  kernels::Active().SpmmT(*this, x, &y);
  return y;
}

SparseMatrix SparseMatrix::MultiplySparse(const SparseMatrix& other,
                                          double drop_tol) const {
  ANECI_CHECK_EQ(cols_, other.rows_);
  SparseMatrix out(rows_, other.cols_);
  static Counter* calls = MetricsRegistry::Global().GetCounter(
      "linalg/spgemm/calls", MetricClass::kDeterministic);
  static Counter* out_nnz = MetricsRegistry::Global().GetCounter(
      "linalg/spgemm/output_nnz", MetricClass::kDeterministic);
  calls->Increment();
  // Gustavson's row-by-row SpGEMM with a dense accumulator per chunk.
  // Phase 1 computes each row chunk into its own buffer (per-row values are
  // produced by the identical serial loop, so chunking never changes them);
  // phase 2 stitches the buffers back in chunk order == row order.
  const int64_t grain = std::max<int64_t>(
      16, (rows_ + 4LL * NumThreads() - 1) / (4LL * NumThreads()));
  const int64_t num_chunks = NumChunks(0, rows_, grain);
  struct ChunkBuf {
    std::vector<int> cols;
    std::vector<double> vals;
  };
  std::vector<ChunkBuf> parts(num_chunks);
  ParallelForChunks(0, rows_, grain, [&](int64_t lo, int64_t hi, int64_t ci) {
    std::vector<double> accum(other.cols_, 0.0);
    std::vector<int> touched;
    touched.reserve(256);
    ChunkBuf& part = parts[ci];
    for (int r = static_cast<int>(lo); r < hi; ++r) {
      touched.clear();
      for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
        const double av = values_[i];
        const int mid = col_idx_[i];
        for (int64_t j = other.row_ptr_[mid]; j < other.row_ptr_[mid + 1];
             ++j) {
          const int c = other.col_idx_[j];
          if (accum[c] == 0.0) touched.push_back(c);
          accum[c] += av * other.values_[j];
        }
      }
      std::sort(touched.begin(), touched.end());
      const size_t row_start = part.cols.size();
      for (int c : touched) {
        if (std::abs(accum[c]) > drop_tol) {
          part.cols.push_back(c);
          part.vals.push_back(accum[c]);
        }
        accum[c] = 0.0;
      }
      // Per-row count; turned into offsets by the prefix sum below.
      out.row_ptr_[r + 1] =
          static_cast<int64_t>(part.cols.size() - row_start);
    }
  });
  for (int r = 0; r < rows_; ++r) out.row_ptr_[r + 1] += out.row_ptr_[r];
  out.col_idx_.reserve(out.row_ptr_[rows_]);
  out.values_.reserve(out.row_ptr_[rows_]);
  for (const ChunkBuf& part : parts) {
    out.col_idx_.insert(out.col_idx_.end(), part.cols.begin(),
                        part.cols.end());
    out.values_.insert(out.values_.end(), part.vals.begin(),
                       part.vals.end());
  }
  out_nnz->Add(static_cast<uint64_t>(out.row_ptr_[rows_]));
  return out;
}

SparseMatrix SparseMatrix::AddScaled(const SparseMatrix& other,
                                     double alpha) const {
  ANECI_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  SparseMatrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    int64_t i = row_ptr_[r], j = other.row_ptr_[r];
    const int64_t iend = row_ptr_[r + 1], jend = other.row_ptr_[r + 1];
    while (i < iend || j < jend) {
      int c;
      double v;
      if (j >= jend || (i < iend && col_idx_[i] < other.col_idx_[j])) {
        c = col_idx_[i];
        v = values_[i];
        ++i;
      } else if (i >= iend || other.col_idx_[j] < col_idx_[i]) {
        c = other.col_idx_[j];
        v = alpha * other.values_[j];
        ++j;
      } else {
        c = col_idx_[i];
        v = values_[i] + alpha * other.values_[j];
        ++i;
        ++j;
      }
      if (v != 0.0) {
        out.col_idx_.push_back(c);
        out.values_.push_back(v);
      }
    }
    out.row_ptr_[r + 1] = static_cast<int64_t>(out.col_idx_.size());
  }
  return out;
}

SparseMatrix SparseMatrix::Transposed() const {
  SparseMatrix out(cols_, rows_);
  std::vector<int64_t> counts(cols_ + 1, 0);
  for (int c : col_idx_) ++counts[c + 1];
  for (int c = 0; c < cols_; ++c) counts[c + 1] += counts[c];
  out.row_ptr_ = counts;
  out.col_idx_.resize(values_.size());
  out.values_.resize(values_.size());
  std::vector<int64_t> next = counts;
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const int c = col_idx_[i];
      const int64_t pos = next[c]++;
      out.col_idx_[pos] = r;
      out.values_[pos] = values_[i];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::RowNormalizedL1() const {
  SparseMatrix out = *this;
  // Row-parallel: each row rescales its own disjoint value slice.
  ParallelFor(0, rows_, SpmmRowGrain(rows_, nnz(), 1),
              [&](int64_t lo, int64_t hi) {
    for (int r = static_cast<int>(lo); r < hi; ++r) {
      double s = 0.0;
      for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
        s += std::abs(values_[i]);
      if (s > 0.0)
        for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
          out.values_[i] /= s;
    }
  });
  return out;
}

SparseMatrix SparseMatrix::SymmetricallyNormalized() const {
  ANECI_CHECK_EQ(rows_, cols_);
  std::vector<double> dinv_sqrt(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) s += values_[i];
    dinv_sqrt[r] = s > 0.0 ? 1.0 / std::sqrt(s) : 0.0;
  }
  SparseMatrix out = *this;
  for (int r = 0; r < rows_; ++r)
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
      out.values_[i] *= dinv_sqrt[r] * dinv_sqrt[col_idx_[i]];
  return out;
}

std::vector<double> SparseMatrix::RowSumsVec() const {
  std::vector<double> s(rows_, 0.0);
  for (int r = 0; r < rows_; ++r)
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) s[r] += values_[i];
  return s;
}

double SparseMatrix::SumAll() const {
  double s = 0.0;
  for (double v : values_) s += v;
  return s;
}

std::vector<Triplet> SparseMatrix::ToTriplets() const {
  std::vector<Triplet> trips;
  trips.reserve(values_.size());
  for (int r = 0; r < rows_; ++r)
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
      trips.push_back({r, col_idx_[i], values_[i]});
  return trips;
}

}  // namespace aneci

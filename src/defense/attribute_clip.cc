#include "defense/attribute_clip.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "anomaly/isolation_forest.h"

namespace aneci {

DefenseReport AttributeClip::Apply(Graph* graph, Rng& rng) const {
  DefenseReport report;
  report.defense = name();
  report.edges_before = graph->num_edges();
  if (!graph->has_attributes()) {
    report.note = "no attributes, skipped";
    return report;
  }
  const int n = graph->num_nodes();
  const int to_clip =
      std::min(n, static_cast<int>(std::llround(options_.fraction * n)));
  if (to_clip <= 0) return report;

  IsolationForest::Options forest_opt;
  forest_opt.num_trees = options_.num_trees;
  IsolationForest forest(forest_opt);
  forest.Fit(graph->attributes(), rng);
  const std::vector<double> scores = forest.Score(graph->attributes());

  // Flag the top-scored nodes; ties break by node id for determinism.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return scores[a] > scores[b]; });
  std::vector<char> flagged(n, 0);
  for (int i = 0; i < to_clip; ++i) flagged[order[i]] = 1;

  // Replace each flagged row with the mean of its unflagged neighbours'
  // rows, computed against the ORIGINAL attributes so the result does not
  // depend on the clip order. Flagged nodes without an unflagged neighbour
  // keep their row (no trustworthy local evidence to clip toward).
  const Matrix original = graph->attributes();
  Matrix& x = graph->mutable_attributes();
  const int d = original.cols();
  int clipped = 0;
  for (int i = 0; i < n; ++i) {
    if (!flagged[i]) continue;
    int support = 0;
    std::vector<double> mean(d, 0.0);
    for (int j : graph->Neighbors(i)) {
      if (flagged[j]) continue;
      const double* row = original.RowPtr(j);
      for (int c = 0; c < d; ++c) mean[c] += row[c];
      ++support;
    }
    if (support == 0) continue;
    double* out = x.RowPtr(i);
    for (int c = 0; c < d; ++c) out[c] = mean[c] / support;
    ++clipped;
  }
  report.nodes_clipped = clipped;
  return report;
}

}  // namespace aneci

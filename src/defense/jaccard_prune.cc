#include "defense/jaccard_prune.h"

#include <algorithm>
#include <vector>

namespace aneci {
namespace {

/// Nonzero attribute support of `node` as a sorted column list.
std::vector<int> RowSupport(const Graph& graph, int node) {
  const double* row = graph.attributes().RowPtr(node);
  std::vector<int> support;
  for (int c = 0; c < graph.attribute_dim(); ++c)
    if (row[c] != 0.0) support.push_back(c);
  return support;
}

/// Support of `node` pooled with its neighbours, excluding `skip` (the other
/// endpoint of the edge under test, so an inserted edge cannot vouch for
/// itself). Sorted.
std::vector<int> PooledSupport(const Graph& graph, int node, int skip) {
  std::vector<int> support = RowSupport(graph, node);
  for (int w : graph.Neighbors(node)) {
    if (w == skip) continue;
    const std::vector<int> other = RowSupport(graph, w);
    support.insert(support.end(), other.begin(), other.end());
  }
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());
  return support;
}

double JaccardOfSorted(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t i = 0, j = 0, both = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++both;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t either = a.size() + b.size() - both;
  return static_cast<double>(both) / either;
}

bool HaveCommonNeighbor(const Graph& graph, int u, int v) {
  // Neighbor lists are small; quadratic scan beats building a set.
  for (int a : graph.Neighbors(u))
    for (int b : graph.Neighbors(v))
      if (a == b) return true;
  return false;
}

}  // namespace

double AttributeJaccard(const Graph& graph, int u, int v) {
  return JaccardOfSorted(RowSupport(graph, u), RowSupport(graph, v));
}

DefenseReport JaccardPrune::Apply(Graph* graph, Rng& rng) const {
  (void)rng;  // Deterministic: no randomness needed.
  DefenseReport report;
  report.defense = name();
  report.edges_before = graph->num_edges();
  if (!graph->has_attributes()) {
    report.note = "no attributes, skipped";
    return report;
  }

  struct Candidate {
    double similarity;
    int u, v;
  };
  std::vector<Candidate> candidates;
  for (const Edge& e : graph->edges()) {
    const double similarity =
        options_.hops > 0
            ? JaccardOfSorted(PooledSupport(*graph, e.u, e.v),
                              PooledSupport(*graph, e.v, e.u))
            : AttributeJaccard(*graph, e.u, e.v);
    if (similarity >= options_.threshold) continue;
    if (options_.protect_common_neighbors &&
        HaveCommonNeighbor(*graph, e.u, e.v))
      continue;
    candidates.push_back({similarity, e.u, e.v});
  }
  // Most dissimilar first; stable so ties keep edge order and the prune is
  // deterministic at any thread count.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.similarity < b.similarity;
                   });

  std::vector<int> degree(graph->num_nodes());
  for (int i = 0; i < graph->num_nodes(); ++i) degree[i] = graph->Degree(i);
  int dropped = 0;
  for (const Candidate& c : candidates) {
    if (degree[c.u] - 1 < options_.min_residual_degree ||
        degree[c.v] - 1 < options_.min_residual_degree)
      continue;
    graph->RemoveEdge(c.u, c.v);
    --degree[c.u];
    --degree[c.v];
    ++dropped;
  }
  report.edges_dropped = dropped;
  return report;
}

}  // namespace aneci

// Jaccard-similarity edge pruning (Wu et al., IJCAI'19): adversarial edge
// insertions overwhelmingly connect attribute-dissimilar endpoints, so
// dropping the edges whose endpoints share (almost) no attribute support
// removes most injected edges at little cost to the clean structure.
//
// Two refinements over the original recipe, both aimed at sparse
// bag-of-words attributes where single rows carry only a handful of words:
//   - 1-hop support aggregation (hops = 1): an endpoint's support is pooled
//     over itself and its neighbours (excluding the other endpoint), so the
//     similarity compares community topics rather than two nearly-empty
//     rows;
//   - conservatism guards: edges whose endpoints share a neighbour are kept
//     (triangles are almost never adversarial), and no endpoint is pruned
//     below a minimum residual degree (peripheral nodes depend on their few
//     edges for classification, and attackers target well-connected nodes).
#ifndef ANECI_DEFENSE_JACCARD_PRUNE_H_
#define ANECI_DEFENSE_JACCARD_PRUNE_H_

#include "defense/defense.h"

namespace aneci {

struct JaccardPruneOptions {
  /// Edges with similarity < threshold are candidates for dropping.
  double threshold = 0.05;
  /// 0 = raw endpoint supports (the original Wu et al. rule, use with a
  /// tiny threshold); 1 = pool each endpoint's support with its neighbours'.
  int hops = 1;
  /// Candidates are dropped lowest-similarity first, skipping any drop that
  /// would leave an endpoint with fewer than this many edges.
  int min_residual_degree = 2;
  /// Keep edges whose endpoints share at least one neighbour.
  bool protect_common_neighbors = true;
};

/// Jaccard index of the nonzero attribute supports of nodes u and v.
/// Returns 1.0 when both supports are empty (nothing to distinguish them).
double AttributeJaccard(const Graph& graph, int u, int v);

class JaccardPrune final : public GraphDefense {
 public:
  explicit JaccardPrune(const JaccardPruneOptions& options = {})
      : options_(options) {}

  const char* name() const override { return "jaccard"; }

  /// No-op (with an explanatory report) on graphs without attributes.
  DefenseReport Apply(Graph* graph, Rng& rng) const override;

 private:
  JaccardPruneOptions options_;
};

}  // namespace aneci

#endif  // ANECI_DEFENSE_JACCARD_PRUNE_H_

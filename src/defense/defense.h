// Graph purification defenses: composable preprocessors that take a
// (possibly poisoned) attributed network and return a cleaned copy plus a
// report of what was changed. The three concrete defenses mirror the
// literature's standard purification family:
//   - JaccardPrune      edge pruning by endpoint attribute similarity
//                       (Wu et al., IJCAI'19 "deep insights");
//   - LowRankReconstruction  spectral low-rank filtering of the adjacency
//                       (Entezari et al., WSDM'20 "all you need is low rank");
//   - AttributeClip     attribute-outlier clipping driven by the
//                       src/anomaly IsolationForest scores.
// Defenses compose left-to-right into a pipeline ("jaccard,lowrank"), and
// every stage is deterministic for a fixed Rng seed and ANECI_THREADS value.
#ifndef ANECI_DEFENSE_DEFENSE_H_
#define ANECI_DEFENSE_DEFENSE_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace aneci {

/// What a purification stage did to the graph it was handed.
struct DefenseReport {
  std::string defense;    ///< Stage name ("jaccard", "lowrank", "clip").
  int edges_before = 0;
  int edges_dropped = 0;
  int nodes_clipped = 0;  ///< Attribute rows rewritten (AttributeClip only).
  int rank_used = 0;      ///< Spectral rank (LowRankReconstruction only).
  std::string note;       ///< Free-form detail, e.g. "no attributes, skipped".

  std::string ToString() const;
};

/// A purification preprocessor. Apply() mutates `graph` in place and
/// describes the mutation; stages must be deterministic given (graph, rng).
class GraphDefense {
 public:
  virtual ~GraphDefense() = default;
  virtual const char* name() const = 0;
  virtual DefenseReport Apply(Graph* graph, Rng& rng) const = 0;
};

/// Output of a pipeline run: the purified graph plus one report per stage,
/// in application order.
struct PurifiedGraph {
  Graph graph;
  std::vector<DefenseReport> reports;

  int total_edges_dropped() const;
  int total_nodes_clipped() const;
};

using DefensePipeline = std::vector<std::unique_ptr<GraphDefense>>;

/// Builds one defense from a spec string: a name optionally followed by
/// colon-separated key=value options, e.g.
///   "jaccard"            "jaccard:tau=0.02"
///   "lowrank:rank=32:drop=0.1"
///   "clip:fraction=0.08"
/// Unknown names or options are an InvalidArgument.
StatusOr<std::unique_ptr<GraphDefense>> CreateDefense(const std::string& spec);

/// Comma-separated list of specs, applied left to right.
StatusOr<DefensePipeline> ParseDefensePipeline(const std::string& specs);

/// Runs every stage in order on a copy of `graph`.
PurifiedGraph RunDefensePipeline(const Graph& graph,
                                 const DefensePipeline& pipeline, Rng& rng);

/// Region-scoped pipeline run for the streaming monitor: purifies a copy of
/// `graph`, then confines the mutation to `region` — edge drops are kept
/// only when an endpoint is in the region, and attribute rewrites are kept
/// only for region rows; everything else is restored from the input. The
/// result carries a single synthesized report (defense "scoped-pipeline")
/// whose counts are the *net* region-confined mutation. Determinism matches
/// RunDefensePipeline.
PurifiedGraph RunDefensePipelineScoped(const Graph& graph,
                                       const DefensePipeline& pipeline,
                                       Rng& rng,
                                       const std::vector<int>& region);

}  // namespace aneci

#endif  // ANECI_DEFENSE_DEFENSE_H_

// Smoothed inference and empirical robustness certification. The smoothed
// classifier g(G) = majority vote of the base AnECI + probe classifier over
// K graphs drawn from a radius-r edge-flip neighbourhood of G. A node's
// prediction is *empirically certified at radius r* when the winning class
// holds a strict majority of the K votes — an attacker moving the graph
// within the sampled perturbation family must flip more than half the votes
// to change the smoothed prediction. This is the perturbation-averaged
// evaluation protocol of Wei & Moriano / Goel et al. (PAPERS.md), reported
// as certified-at-r accuracy with multi-seed mean±std at the bench level.
#ifndef ANECI_DEFENSE_SMOOTHING_H_
#define ANECI_DEFENSE_SMOOTHING_H_

#include <vector>

#include "core/aneci.h"
#include "data/datasets.h"

namespace aneci {

struct SmoothingOptions {
  /// Number K of perturbed graphs sampled (odd avoids vote ties).
  int num_samples = 7;
  /// Perturbation radius r: fraction of |E| flipped per sample.
  double radius = 0.05;
  /// Seed of the perturbation/training stream (independent of the base
  /// model's config.seed so certification never perturbs the RNG schedule
  /// of an unsmoothed run).
  uint64_t seed = 9001;
};

struct SmoothedClassification {
  /// Majority-vote class per eval node, aligned with `eval_idx`.
  std::vector<int> predicted;
  /// Vote share of the winning class per eval node, in [0, 1].
  std::vector<double> vote_share;
  /// Fraction of eval nodes whose majority vote matches the label.
  double smoothed_accuracy = 0.0;
  /// Fraction of eval nodes that are correct AND hold a strict majority
  /// (> K/2 votes) — the empirical certificate at the sampled radius.
  double certified_accuracy = 0.0;
  int num_samples = 0;
  double radius = 0.0;
};

/// Trains the base model on K edge-flip perturbations of dataset.graph and
/// majority-votes the probe predictions on `eval_idx` (defaults to
/// dataset.test_idx when empty). Requires labels.
SmoothedClassification SmoothedClassify(const Dataset& dataset,
                                        const AneciConfig& config,
                                        const SmoothingOptions& options,
                                        const std::vector<int>& eval_idx = {});

}  // namespace aneci

#endif  // ANECI_DEFENSE_SMOOTHING_H_

#include "defense/smoothing.h"

#include <cmath>

#include "attack/random_attack.h"
#include "tasks/logistic_regression.h"
#include "util/check.h"

namespace aneci {
namespace {

Matrix RowsOf(const Matrix& z, const std::vector<int>& idx) {
  Matrix out(static_cast<int>(idx.size()), z.cols());
  for (size_t r = 0; r < idx.size(); ++r)
    for (int c = 0; c < z.cols(); ++c)
      out(static_cast<int>(r), c) = z(idx[r], c);
  return out;
}

}  // namespace

SmoothedClassification SmoothedClassify(const Dataset& dataset,
                                        const AneciConfig& config,
                                        const SmoothingOptions& options,
                                        const std::vector<int>& eval_idx) {
  ANECI_CHECK_MSG(dataset.graph.has_labels(),
                  "SmoothedClassify needs labels for the probe");
  ANECI_CHECK_GT(options.num_samples, 0);
  const std::vector<int>& eval =
      eval_idx.empty() ? dataset.test_idx : eval_idx;
  ANECI_CHECK_MSG(!eval.empty(), "SmoothedClassify: empty evaluation set");
  ANECI_CHECK_MSG(!dataset.train_idx.empty(),
                  "SmoothedClassify: empty train split");

  const int k = dataset.graph.num_classes();
  const int flips = static_cast<int>(
      std::llround(options.radius * dataset.graph.num_edges()));
  std::vector<int> train_labels;
  for (int i : dataset.train_idx)
    train_labels.push_back(dataset.graph.labels()[i]);

  // votes[e][c] = number of sampled models predicting class c for eval[e].
  std::vector<std::vector<int>> votes(eval.size(), std::vector<int>(k, 0));

  for (int sample = 0; sample < options.num_samples; ++sample) {
    // Each sample has its own perturbation + training streams so the vote
    // set is an iid draw from the smoothing distribution.
    Rng perturb_rng(options.seed + 7919ULL * sample);
    const Graph perturbed =
        BudgetedEdgeFlips(dataset.graph, flips, perturb_rng);

    AneciConfig cfg = config;
    cfg.seed = options.seed + 104729ULL * sample + 1;
    // Smoothed inference never checkpoints its inner runs.
    cfg.checkpoint_dir.clear();
    cfg.resume_from.clear();
    Aneci model(cfg);
    const AneciResult trained = model.Train(perturbed);

    Rng probe_rng(options.seed + 1299709ULL * sample + 2);
    LogisticRegression probe;
    probe.Fit(RowsOf(trained.z, dataset.train_idx), train_labels, k,
              probe_rng);
    const std::vector<int> predicted = probe.Predict(RowsOf(trained.z, eval));
    for (size_t e = 0; e < eval.size(); ++e) ++votes[e][predicted[e]];
  }

  SmoothedClassification result;
  result.num_samples = options.num_samples;
  result.radius = options.radius;
  result.predicted.resize(eval.size());
  result.vote_share.resize(eval.size());
  int smooth_correct = 0, certified_correct = 0;
  for (size_t e = 0; e < eval.size(); ++e) {
    int best = 0;
    for (int c = 1; c < k; ++c)
      if (votes[e][c] > votes[e][best]) best = c;
    result.predicted[e] = best;
    result.vote_share[e] =
        static_cast<double>(votes[e][best]) / options.num_samples;
    const bool correct = best == dataset.graph.labels()[eval[e]];
    smooth_correct += correct;
    certified_correct += correct && 2 * votes[e][best] > options.num_samples;
  }
  result.smoothed_accuracy =
      static_cast<double>(smooth_correct) / static_cast<double>(eval.size());
  result.certified_accuracy = static_cast<double>(certified_correct) /
                              static_cast<double>(eval.size());
  return result;
}

}  // namespace aneci

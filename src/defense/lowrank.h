// Low-rank spectral purification (Entezari et al., WSDM'20): adversarial
// edge flips are a high-frequency perturbation, so the rank-r spectral
// reconstruction of the adjacency suppresses them. This variant is
// drop-only — every existing edge is scored by its weight in the rank-r
// reconstruction A_r = V_r diag(lambda_r) V_r^T (top-r eigenpairs via the
// existing Lanczos solver) and the least-supported fraction is removed —
// so the defense never fabricates edges and never densifies A.
#ifndef ANECI_DEFENSE_LOWRANK_H_
#define ANECI_DEFENSE_LOWRANK_H_

#include "defense/defense.h"

namespace aneci {

struct LowRankOptions {
  /// Spectral rank r; clamped to [1, N - 1].
  int rank = 16;
  /// Fraction of edges (the lowest-scored under A_r) to drop.
  double drop_fraction = 0.1;
  /// Lanczos Krylov steps (0 = solver default).
  int lanczos_steps = 0;
};

/// Reconstruction score of every edge of `graph` (aligned with
/// graph.edges()): score(u,v) = sum_k lambda_k V[u,k] V[v,k] over the top
/// `rank` (largest-eigenvalue) eigenpairs of the adjacency.
std::vector<double> LowRankEdgeScores(const Graph& graph, int rank,
                                      int lanczos_steps, Rng& rng,
                                      int* rank_used = nullptr);

class LowRankReconstruction final : public GraphDefense {
 public:
  explicit LowRankReconstruction(const LowRankOptions& options = {})
      : options_(options) {}

  const char* name() const override { return "lowrank"; }

  DefenseReport Apply(Graph* graph, Rng& rng) const override;

 private:
  LowRankOptions options_;
};

}  // namespace aneci

#endif  // ANECI_DEFENSE_LOWRANK_H_

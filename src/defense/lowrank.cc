#include "defense/lowrank.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"

namespace aneci {

std::vector<double> LowRankEdgeScores(const Graph& graph, int rank,
                                      int lanczos_steps, Rng& rng,
                                      int* rank_used) {
  const int n = graph.num_nodes();
  const int r = std::max(1, std::min(rank, n - 1));
  if (rank_used) *rank_used = r;

  // LanczosSmallest(-A) yields the r algebraically largest eigenpairs of A
  // (the smallest of -A), which carry the community structure of an
  // adjacency-like matrix.
  SparseMatrix neg = graph.Adjacency();
  for (double& v : neg.mutable_values()) v = -v;
  const EigenResult eig = LanczosSmallest(neg, r, rng, lanczos_steps);

  std::vector<double> scores;
  scores.reserve(graph.edges().size());
  const int found = static_cast<int>(eig.values.size());
  for (const Edge& e : graph.edges()) {
    double s = 0.0;
    for (int k = 0; k < found; ++k)
      s += -eig.values[k] * eig.vectors(e.u, k) * eig.vectors(e.v, k);
    scores.push_back(s);
  }
  return scores;
}

DefenseReport LowRankReconstruction::Apply(Graph* graph, Rng& rng) const {
  DefenseReport report;
  report.defense = name();
  report.edges_before = graph->num_edges();
  const int m = graph->num_edges();
  if (m == 0 || graph->num_nodes() < 3) {
    report.note = "graph too small, skipped";
    return report;
  }

  int rank_used = 0;
  const std::vector<double> scores = LowRankEdgeScores(
      *graph, options_.rank, options_.lanczos_steps, rng, &rank_used);
  report.rank_used = rank_used;

  const int to_drop = std::min(
      m, static_cast<int>(std::llround(options_.drop_fraction * m)));
  if (to_drop <= 0) return report;

  // Drop the `to_drop` edges least supported by the rank-r reconstruction.
  // Ties break by edge order (sorted, unique), keeping the stage
  // deterministic at every thread count.
  std::vector<int> order(m);
  for (int i = 0; i < m; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return scores[a] < scores[b]; });
  std::vector<Edge> doomed;
  doomed.reserve(to_drop);
  for (int i = 0; i < to_drop; ++i) doomed.push_back(graph->edges()[order[i]]);
  for (const Edge& e : doomed) graph->RemoveEdge(e.u, e.v);
  report.edges_dropped = to_drop;
  return report;
}

}  // namespace aneci

#include "defense/defense.h"

#include <cstdio>
#include <cstdlib>

#include "defense/attribute_clip.h"
#include "defense/jaccard_prune.h"
#include "defense/lowrank.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace aneci {
namespace {

/// Splits "name:key=v:key=v" into the name and key/value pairs.
struct ParsedSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> options;
};

StatusOr<ParsedSpec> SplitSpec(const std::string& spec) {
  ParsedSpec parsed;
  size_t pos = spec.find(':');
  parsed.name = spec.substr(0, pos);
  if (parsed.name.empty())
    return Status::InvalidArgument("empty defense name in spec '" + spec + "'");
  while (pos != std::string::npos) {
    const size_t next = spec.find(':', pos + 1);
    const std::string item = spec.substr(
        pos + 1, next == std::string::npos ? std::string::npos : next - pos - 1);
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size())
      return Status::InvalidArgument("defense option '" + item + "' in '" +
                                     spec + "' is not key=value");
    parsed.options.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    pos = next;
  }
  return parsed;
}

Status UnknownOption(const ParsedSpec& spec,
                     const std::pair<std::string, std::string>& kv) {
  return Status::InvalidArgument("defense '" + spec.name +
                                 "' does not take option '" + kv.first + "'");
}

}  // namespace

std::string DefenseReport::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "[%s] edges %d -> %d (dropped %d)%s%s%s", defense.c_str(),
                edges_before, edges_before - edges_dropped, edges_dropped,
                rank_used > 0 ? (", rank " + std::to_string(rank_used)).c_str()
                              : "",
                nodes_clipped > 0
                    ? (", clipped " + std::to_string(nodes_clipped) + " nodes")
                          .c_str()
                    : "",
                note.empty() ? "" : (" — " + note).c_str());
  return buf;
}

int PurifiedGraph::total_edges_dropped() const {
  int total = 0;
  for (const DefenseReport& r : reports) total += r.edges_dropped;
  return total;
}

int PurifiedGraph::total_nodes_clipped() const {
  int total = 0;
  for (const DefenseReport& r : reports) total += r.nodes_clipped;
  return total;
}

StatusOr<std::unique_ptr<GraphDefense>> CreateDefense(const std::string& spec) {
  ANECI_ASSIGN_OR_RETURN(const ParsedSpec p, SplitSpec(spec));

  if (p.name == "jaccard") {
    JaccardPruneOptions opt;
    for (const auto& kv : p.options) {
      if (kv.first == "tau") {
        opt.threshold = std::atof(kv.second.c_str());
      } else if (kv.first == "hops") {
        opt.hops = std::atoi(kv.second.c_str());
      } else if (kv.first == "guard") {
        opt.min_residual_degree = std::atoi(kv.second.c_str());
      } else if (kv.first == "cn") {
        opt.protect_common_neighbors = std::atoi(kv.second.c_str()) != 0;
      } else {
        return UnknownOption(p, kv);
      }
    }
    if (opt.hops < 0 || opt.hops > 1)
      return Status::InvalidArgument("jaccard hops must be 0 or 1");
    if (opt.min_residual_degree < 0)
      return Status::InvalidArgument("jaccard guard must be >= 0");
    return std::unique_ptr<GraphDefense>(new JaccardPrune(opt));
  }
  if (p.name == "lowrank") {
    LowRankOptions opt;
    for (const auto& kv : p.options) {
      if (kv.first == "rank") {
        opt.rank = std::atoi(kv.second.c_str());
      } else if (kv.first == "drop") {
        opt.drop_fraction = std::atof(kv.second.c_str());
      } else if (kv.first == "steps") {
        opt.lanczos_steps = std::atoi(kv.second.c_str());
      } else {
        return UnknownOption(p, kv);
      }
    }
    if (opt.rank < 1)
      return Status::InvalidArgument("lowrank rank must be >= 1");
    if (opt.drop_fraction < 0.0 || opt.drop_fraction >= 1.0)
      return Status::InvalidArgument("lowrank drop must be in [0, 1)");
    return std::unique_ptr<GraphDefense>(new LowRankReconstruction(opt));
  }
  if (p.name == "clip") {
    AttributeClipOptions opt;
    for (const auto& kv : p.options) {
      if (kv.first == "fraction") {
        opt.fraction = std::atof(kv.second.c_str());
      } else if (kv.first == "trees") {
        opt.num_trees = std::atoi(kv.second.c_str());
      } else {
        return UnknownOption(p, kv);
      }
    }
    if (opt.fraction < 0.0 || opt.fraction >= 1.0)
      return Status::InvalidArgument("clip fraction must be in [0, 1)");
    return std::unique_ptr<GraphDefense>(new AttributeClip(opt));
  }
  return Status::InvalidArgument(
      "unknown defense '" + p.name + "' (expected jaccard, lowrank or clip)");
}

StatusOr<DefensePipeline> ParseDefensePipeline(const std::string& specs) {
  DefensePipeline pipeline;
  size_t start = 0;
  while (start <= specs.size()) {
    const size_t comma = specs.find(',', start);
    const std::string item = specs.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) {
      ANECI_ASSIGN_OR_RETURN(std::unique_ptr<GraphDefense> defense,
                             CreateDefense(item));
      pipeline.push_back(std::move(defense));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (pipeline.empty())
    return Status::InvalidArgument("empty defense pipeline spec '" + specs +
                                   "'");
  return pipeline;
}

PurifiedGraph RunDefensePipeline(const Graph& graph,
                                 const DefensePipeline& pipeline, Rng& rng) {
  TraceSpan span("defense/pipeline");
  static Counter* runs = MetricsRegistry::Global().GetCounter(
      "defense/pipeline_runs", MetricClass::kDeterministic);
  static Counter* stages = MetricsRegistry::Global().GetCounter(
      "defense/stages_applied", MetricClass::kDeterministic);
  static Counter* edges_dropped = MetricsRegistry::Global().GetCounter(
      "defense/edges_dropped", MetricClass::kDeterministic);
  static Counter* nodes_clipped = MetricsRegistry::Global().GetCounter(
      "defense/nodes_clipped", MetricClass::kDeterministic);
  runs->Increment();
  PurifiedGraph result;
  result.graph = graph;
  result.reports.reserve(pipeline.size());
  for (const std::unique_ptr<GraphDefense>& stage : pipeline) {
    TraceSpan stage_span(stage->name());  // Path: defense/pipeline/<stage>.
    result.reports.push_back(stage->Apply(&result.graph, rng));
    stages->Increment();
  }
  edges_dropped->Add(static_cast<uint64_t>(result.total_edges_dropped()));
  nodes_clipped->Add(static_cast<uint64_t>(result.total_nodes_clipped()));
  return result;
}

PurifiedGraph RunDefensePipelineScoped(const Graph& graph,
                                       const DefensePipeline& pipeline,
                                       Rng& rng,
                                       const std::vector<int>& region) {
  PurifiedGraph full = RunDefensePipeline(graph, pipeline, rng);
  std::vector<char> in_region(graph.num_nodes(), 0);
  for (int u : region)
    if (u >= 0 && u < graph.num_nodes()) in_region[u] = 1;

  // Defenses only remove edges, so the diff against the input is exactly the
  // dropped set; drops with no endpoint in the region are undone.
  int scoped_drops = 0;
  int restored_edges = 0;
  for (const Edge& e : graph.edges()) {
    if (full.graph.HasEdge(e.u, e.v)) continue;
    if (in_region[e.u] || in_region[e.v]) {
      ++scoped_drops;
    } else {
      full.graph.AddEdge(e.u, e.v);
      ++restored_edges;
    }
  }

  int scoped_clips = 0;
  int restored_rows = 0;
  if (graph.has_attributes() && full.graph.has_attributes() &&
      full.graph.attributes().rows() == graph.attributes().rows()) {
    const Matrix& before = graph.attributes();
    Matrix& after = full.graph.mutable_attributes();
    for (int u = 0; u < graph.num_nodes(); ++u) {
      bool changed = false;
      for (int c = 0; c < before.cols() && !changed; ++c)
        changed = before(u, c) != after(u, c);
      if (!changed) continue;
      if (in_region[u]) {
        ++scoped_clips;
      } else {
        for (int c = 0; c < before.cols(); ++c) after(u, c) = before(u, c);
        ++restored_rows;
      }
    }
  }

  DefenseReport report;
  report.defense = "scoped-pipeline";
  report.edges_before = graph.num_edges();
  report.edges_dropped = scoped_drops;
  report.nodes_clipped = scoped_clips;
  report.note = "region of " + std::to_string(region.size()) +
                " nodes; restored " + std::to_string(restored_edges) +
                " edges and " + std::to_string(restored_rows) +
                " attribute rows outside it";
  full.reports.clear();
  full.reports.push_back(std::move(report));
  return full;
}

}  // namespace aneci

// Attribute-outlier clipping: node pollution (the paper's outlier-injection
// protocol) plants nodes whose attribute rows disagree with their
// neighbourhood. An IsolationForest over the attribute rows (reusing
// src/anomaly) flags the most anomalous fraction; each flagged node's
// attributes are clipped to the mean of its unflagged neighbours, pulling
// polluted rows back toward their community's attribute profile.
#ifndef ANECI_DEFENSE_ATTRIBUTE_CLIP_H_
#define ANECI_DEFENSE_ATTRIBUTE_CLIP_H_

#include "defense/defense.h"

namespace aneci {

struct AttributeClipOptions {
  /// Fraction of nodes (highest IsolationForest score) to clip.
  double fraction = 0.05;
  /// Forest size; smaller than the anomaly-detection default because the
  /// defense only needs a coarse ranking.
  int num_trees = 50;
};

class AttributeClip final : public GraphDefense {
 public:
  explicit AttributeClip(const AttributeClipOptions& options = {})
      : options_(options) {}

  const char* name() const override { return "clip"; }

  /// No-op (with an explanatory report) on graphs without attributes.
  DefenseReport Apply(Graph* graph, Rng& rng) const override;

 private:
  AttributeClipOptions options_;
};

}  // namespace aneci

#endif  // ANECI_DEFENSE_ATTRIBUTE_CLIP_H_

// Online drift & poisoning monitor (docs/robustness.md §12). Per batch it
// compares three structural signals against an EWMA baseline learned from
// healthy traffic:
//   - generalized-modularity drop (Eq. 13 Q~ falling below baseline),
//   - community-membership churn (fraction of nodes whose argmax community
//     changed since the previous batch),
//   - degree-distribution shift (total-variation distance between the
//     current and baseline degree histograms).
// Each signal has a "drift" and a "poison" threshold; the worst breach level
// across signals drives a three-state machine with hysteresis:
//   Healthy -> Drifting -> SuspectedPoisoning
// escalating only after `escalate_after` consecutive breaching batches and
// de-escalating only after `recover_after` consecutive clean batches, so one
// noisy batch neither trips the alarm nor clears it. The EWMA baseline
// updates only on clean observations — a sustained attack cannot teach the
// monitor that poisoned structure is normal.
#ifndef ANECI_STREAM_DRIFT_MONITOR_H_
#define ANECI_STREAM_DRIFT_MONITOR_H_

#include <string>

#include "util/status.h"

namespace aneci::stream {

enum class StreamHealth {
  kHealthy = 0,
  kDrifting = 1,
  kSuspectedPoisoning = 2,
};

/// "healthy", "drifting", "suspected-poisoning".
const char* StreamHealthName(StreamHealth health);

struct DriftMonitorOptions {
  /// EWMA weight of the newest clean observation.
  double ewma_alpha = 0.3;
  /// Modularity drop (baseline - current) thresholds.
  double modularity_drop_drift = 0.08;
  double modularity_drop_poison = 0.15;
  /// Membership churn (fraction of nodes reassigned) thresholds. Sized above
  /// the churn a clean incremental refresh induces (~0.2-0.3 on small
  /// graphs) so background traffic drifts at worst; a poisoning burst
  /// reassigns over half the graph.
  double churn_drift = 0.25;
  double churn_poison = 0.45;
  /// Degree-histogram total-variation distance thresholds.
  double degree_shift_drift = 0.05;
  double degree_shift_poison = 0.15;
  /// Consecutive breaching batches before the state escalates one level.
  int escalate_after = 2;
  /// Consecutive clean batches before the state recovers one level.
  int recover_after = 3;
};

Status ValidateDriftMonitorOptions(const DriftMonitorOptions& options);

/// One batch's structural signals, computed by the stream engine.
struct BatchObservation {
  double modularity = 0.0;    ///< Generalized modularity Q~ after the batch.
  double churn = 0.0;         ///< Fraction of nodes whose community changed.
  double degree_shift = 0.0;  ///< TV distance of degree histograms.
};

/// The monitor's verdict on one batch.
struct DriftDecision {
  StreamHealth state = StreamHealth::kHealthy;
  /// Breach severity of this observation: 0 clean, 1 drift, 2 poison.
  int breach_level = 0;
  /// True when this batch moved the state up a level.
  bool escalated = false;
  /// True when this batch entered kSuspectedPoisoning specifically — the
  /// stream engine's trigger for the defense pipeline.
  bool entered_poisoning = false;
  double baseline_modularity = 0.0;
  double modularity_drop = 0.0;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(const DriftMonitorOptions& options)
      : options_(options) {}

  /// Folds one batch's signals into the state machine. Deterministic: the
  /// decision depends only on the observation sequence.
  DriftDecision Observe(const BatchObservation& observation);

  StreamHealth state() const { return state_; }
  /// Baseline Q~ the next observation is compared against (the first
  /// observation seeds it and is never judged).
  double baseline_modularity() const { return baseline_modularity_; }

 private:
  DriftMonitorOptions options_;
  StreamHealth state_ = StreamHealth::kHealthy;
  bool have_baseline_ = false;
  double baseline_modularity_ = 0.0;
  int consecutive_breaches_ = 0;
  int consecutive_clean_ = 0;
};

}  // namespace aneci::stream

#endif  // ANECI_STREAM_DRIFT_MONITOR_H_

#include "stream/drift_monitor.h"

#include <algorithm>

namespace aneci::stream {
namespace {

Status CheckThresholdPair(const char* what, double drift, double poison) {
  if (drift < 0.0 || poison < 0.0)
    return Status::InvalidArgument(std::string(what) +
                                   " thresholds must be >= 0");
  if (poison < drift)
    return Status::InvalidArgument(
        std::string(what) + " poison threshold (" + std::to_string(poison) +
        ") must be >= drift threshold (" + std::to_string(drift) + ")");
  return Status::OK();
}

}  // namespace

const char* StreamHealthName(StreamHealth health) {
  switch (health) {
    case StreamHealth::kHealthy:
      return "healthy";
    case StreamHealth::kDrifting:
      return "drifting";
    case StreamHealth::kSuspectedPoisoning:
      return "suspected-poisoning";
  }
  return "?";
}

Status ValidateDriftMonitorOptions(const DriftMonitorOptions& options) {
  if (options.ewma_alpha <= 0.0 || options.ewma_alpha > 1.0)
    return Status::InvalidArgument("ewma alpha must be in (0, 1], got " +
                                   std::to_string(options.ewma_alpha));
  ANECI_RETURN_IF_ERROR(CheckThresholdPair("modularity-drop",
                                           options.modularity_drop_drift,
                                           options.modularity_drop_poison));
  ANECI_RETURN_IF_ERROR(
      CheckThresholdPair("churn", options.churn_drift, options.churn_poison));
  ANECI_RETURN_IF_ERROR(CheckThresholdPair("degree-shift",
                                           options.degree_shift_drift,
                                           options.degree_shift_poison));
  if (options.escalate_after <= 0)
    return Status::InvalidArgument("escalate-after must be > 0, got " +
                                   std::to_string(options.escalate_after));
  if (options.recover_after <= 0)
    return Status::InvalidArgument("recover-after must be > 0, got " +
                                   std::to_string(options.recover_after));
  return Status::OK();
}

DriftDecision DriftMonitor::Observe(const BatchObservation& observation) {
  DriftDecision decision;
  if (!have_baseline_) {
    // First observation seeds the baseline; nothing to compare yet.
    baseline_modularity_ = observation.modularity;
    have_baseline_ = true;
    decision.state = state_;
    decision.baseline_modularity = baseline_modularity_;
    return decision;
  }

  const double drop = baseline_modularity_ - observation.modularity;
  auto level = [](double value, double drift, double poison) {
    if (value >= poison) return 2;
    if (value >= drift) return 1;
    return 0;
  };
  int breach = level(drop, options_.modularity_drop_drift,
                     options_.modularity_drop_poison);
  breach = std::max(breach, level(observation.churn, options_.churn_drift,
                                  options_.churn_poison));
  breach =
      std::max(breach, level(observation.degree_shift,
                             options_.degree_shift_drift,
                             options_.degree_shift_poison));

  const StreamHealth before = state_;
  if (breach > 0) {
    consecutive_clean_ = 0;
    ++consecutive_breaches_;
    if (consecutive_breaches_ >= options_.escalate_after &&
        state_ != StreamHealth::kSuspectedPoisoning) {
      // A poison-level breach may jump straight past Drifting; a drift-level
      // breach climbs one level at a time.
      state_ = (breach >= 2) ? StreamHealth::kSuspectedPoisoning
                             : StreamHealth::kDrifting;
      if (state_ <= before) {
        state_ = static_cast<StreamHealth>(static_cast<int>(before) + 1);
      }
      consecutive_breaches_ = 0;
    }
  } else {
    consecutive_breaches_ = 0;
    // Clean observations refresh the baseline — only healthy structure is
    // allowed to teach the monitor what "normal" looks like.
    baseline_modularity_ =
        (1.0 - options_.ewma_alpha) * baseline_modularity_ +
        options_.ewma_alpha * observation.modularity;
    if (state_ != StreamHealth::kHealthy) {
      ++consecutive_clean_;
      if (consecutive_clean_ >= options_.recover_after) {
        state_ = static_cast<StreamHealth>(static_cast<int>(state_) - 1);
        consecutive_clean_ = 0;
      }
    }
  }

  decision.state = state_;
  decision.breach_level = breach;
  decision.escalated = state_ > before;
  decision.entered_poisoning = decision.escalated &&
                               state_ == StreamHealth::kSuspectedPoisoning;
  decision.baseline_modularity = baseline_modularity_;
  decision.modularity_drop = drop;
  return decision;
}

}  // namespace aneci::stream

// Incremental embedding refresh: instead of retraining the full model after
// every event batch, re-train only the induced subgraph of nodes within k
// hops of the event frontier (the nodes a batch touched) and write the
// refreshed rows back into the global embedding. The refresher runs the real
// Aneci trainer — watchdog included — on the subgraph, so numerical
// divergence during a refresh surfaces as a Status (a "refresh veto") that
// the stream engine answers by rolling back to its last healthy snapshot.
#ifndef ANECI_STREAM_INCREMENTAL_H_
#define ANECI_STREAM_INCREMENTAL_H_

#include <functional>
#include <vector>

#include "core/watchdog.h"
#include "graph/graph.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace aneci::stream {

/// All nodes within `khops` hops of any node in `seeds` (BFS over the
/// current graph), sorted ascending. khops = 0 returns the seeds themselves.
std::vector<int> FrontierRegion(const Graph& graph,
                                const std::vector<int>& seeds, int khops);

struct RefreshOptions {
  /// Hops the refresh region extends past the event frontier.
  int khops = 2;
  /// Training epochs for the region re-train (short: warm refresh, not a
  /// from-scratch fit).
  int epochs = 30;
  /// Regions smaller than this skip the refresh — too little structure to
  /// train on, and the global embedding barely moved.
  int min_region = 8;
  /// Hidden width of the refresh encoder.
  int hidden_dim = 32;
  /// Watchdog policy for the refresh trainer; its rollback budget is the
  /// veto mechanism.
  WatchdogOptions watchdog;
};

Status ValidateRefreshOptions(const RefreshOptions& options);

struct RefreshOutcome {
  bool refreshed = false;  ///< False when the region was too small/edgeless.
  int region_nodes = 0;
  int region_edges = 0;
  int epochs_run = 0;
  int watchdog_rollbacks = 0;
};

/// Re-trains the induced subgraph of `region` and overwrites the matching
/// rows of `z` / `p` on success. On any trainer failure (watchdog budget
/// exhausted — the veto) `z` and `p` are left untouched and the Status is
/// returned. `seed` feeds the refresh trainer; `fault_hook` (optional)
/// is forwarded as the trainer's divergence_fault_hook so tests can force a
/// veto deterministically. Deterministic at every ANECI_THREADS value.
StatusOr<RefreshOutcome> RefreshRegion(
    const Graph& graph, const std::vector<int>& region,
    const RefreshOptions& options, uint64_t seed, Matrix* z, Matrix* p,
    const std::function<bool(int)>& fault_hook = nullptr);

}  // namespace aneci::stream

#endif  // ANECI_STREAM_INCREMENTAL_H_

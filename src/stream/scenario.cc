#include "stream/scenario.h"

#include <algorithm>
#include <string>
#include <utility>

#include "attack/dice.h"

namespace aneci::stream {
namespace {

// Diff of two sorted unique edge sets as remove-then-add events, so replaying
// the batch transforms `before` into `after` exactly.
std::vector<GraphEvent> DiffEdges(const std::vector<Edge>& before,
                                  const std::vector<Edge>& after) {
  std::vector<GraphEvent> events;
  std::vector<Edge> removed;
  std::vector<Edge> added;
  std::set_difference(before.begin(), before.end(), after.begin(), after.end(),
                      std::back_inserter(removed));
  std::set_difference(after.begin(), after.end(), before.begin(), before.end(),
                      std::back_inserter(added));
  events.reserve(removed.size() + added.size());
  for (const Edge& e : removed) events.push_back(GraphEvent::RemoveEdge(e.u, e.v));
  for (const Edge& e : added) events.push_back(GraphEvent::AddEdge(e.u, e.v));
  return events;
}

}  // namespace

Status ValidateStreamScenarioOptions(const StreamScenarioOptions& options) {
  if (options.batches <= 0)
    return Status::InvalidArgument("scenario batches must be > 0, got " +
                                   std::to_string(options.batches));
  if (options.events_per_batch <= 0)
    return Status::InvalidArgument(
        "scenario events-per-batch must be > 0, got " +
        std::to_string(options.events_per_batch));
  if (options.poison_batch >= options.batches)
    return Status::InvalidArgument(
        "poison batch " + std::to_string(options.poison_batch) +
        " out of range: stream has " + std::to_string(options.batches) +
        " batches");
  if (options.poison_rate <= 0.0 || options.poison_rate > 1.0)
    return Status::InvalidArgument(
        "poison rate must be in (0, 1], got " +
        std::to_string(options.poison_rate));
  return Status::OK();
}

StatusOr<std::vector<EventBatch>> MakeEventStream(
    const Graph& graph, const StreamScenarioOptions& options) {
  ANECI_RETURN_IF_ERROR(ValidateStreamScenarioOptions(options));
  if (graph.num_nodes() < 3)
    return Status::InvalidArgument(
        "scenario needs at least 3 nodes, graph has " +
        std::to_string(graph.num_nodes()));
  if (options.poison_batch >= 0 && !graph.has_labels())
    return Status::FailedPrecondition(
        "DICE poison burst requires node labels on the seed graph");

  Rng rng(options.seed);
  Graph current = graph;  // Simulated stream state; caller's graph untouched.
  const int n = current.num_nodes();
  std::vector<EventBatch> batches;
  batches.reserve(options.batches);
  for (int b = 0; b < options.batches; ++b) {
    EventBatch batch;
    batch.sequence = static_cast<uint64_t>(b);
    if (b == options.poison_batch) {
      DiceOptions dice;
      dice.budget = options.poison_rate;
      DiceResult result = DiceAttack(current, dice, rng);
      batch.events = DiffEdges(current.edges(), result.attacked.edges());
      current = std::move(result.attacked);
    } else {
      // Background churn: alternate removing a uniformly chosen existing edge
      // and adding a uniformly sampled absent pair. Drift stays modest so a
      // clean stream never looks like an attack.
      for (int e = 0; e < options.events_per_batch; ++e) {
        const bool remove = (e % 2 == 1) && current.num_edges() > n;
        if (remove) {
          const Edge victim =
              current.edges()[rng.NextInt(current.num_edges())];
          batch.events.push_back(GraphEvent::RemoveEdge(victim.u, victim.v));
          current.RemoveEdge(victim.u, victim.v);
        } else {
          // Bounded rejection sampling; fall back to a no-op re-add if the
          // graph is near-complete (redundant adds are legal).
          int u = static_cast<int>(rng.NextInt(n));
          int v = static_cast<int>(rng.NextInt(n));
          for (int tries = 0; tries < 32; ++tries) {
            if (u != v && !current.HasEdge(u, v)) break;
            u = static_cast<int>(rng.NextInt(n));
            v = static_cast<int>(rng.NextInt(n));
          }
          if (u == v) v = (u + 1) % n;
          batch.events.push_back(GraphEvent::AddEdge(u, v));
          current.AddEdge(u, v);
        }
      }
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace aneci::stream

// Dynamic-graph event stream: ordered insert/delete/update events for edges
// and node attributes, grouped into batches that are consumed atomically.
//
// The on-disk event log ("ANEL") wears the same integrity envelope as the
// training checkpoint and the serving artifact (docs/robustness.md §12):
//   bytes 0..3   magic "ANEL"
//   bytes 4..7   u32 format version (currently 1)
//   bytes 8..15  u64 payload size in bytes
//   bytes 16..19 u32 CRC-32 (IEEE 802.3) of the payload
//   bytes 20..   payload, fixed little-endian field order:
//     u32 num_batches
//     per batch: u64 sequence, u32 num_events,
//                per event: u8 kind, i32 u, i32 v, f64 value
// Loading verifies magic, version, declared size and CRC before a single
// field is interpreted, so a truncated or bit-flipped log is rejected with a
// precise Status instead of half-replaying. All file access goes through
// `Env`, so the fault-injection suite covers the log the same way it covers
// checkpoints.
//
// ApplyEventBatch is transactional: a batch either applies completely or the
// graph is left untouched (the invalid event's index and batch sequence are
// named in the Status). Replaying the same log over the same seed graph is
// deterministic at every ANECI_THREADS value.
#ifndef ANECI_STREAM_EVENT_LOG_H_
#define ANECI_STREAM_EVENT_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "util/env.h"
#include "util/status.h"

namespace aneci::stream {

enum class EventKind : uint8_t {
  kAddEdge = 0,       ///< Insert undirected edge (u, v).
  kRemoveEdge = 1,    ///< Delete undirected edge (u, v).
  kSetAttribute = 2,  ///< Set attribute column v of node u to `value`.
};

/// "add-edge", "remove-edge", "set-attribute".
const char* EventKindName(EventKind kind);

struct GraphEvent {
  EventKind kind = EventKind::kAddEdge;
  int32_t u = 0;  ///< Node id (edge endpoint / attribute row).
  int32_t v = 0;  ///< Edge endpoint / attribute column.
  double value = 0.0;  ///< kSetAttribute payload; ignored for edges.

  static GraphEvent AddEdge(int u, int v);
  static GraphEvent RemoveEdge(int u, int v);
  static GraphEvent SetAttribute(int node, int column, double value);
};

/// One deterministic consumption unit: the monitor, refresher and defense
/// all operate at batch granularity.
struct EventBatch {
  uint64_t sequence = 0;
  std::vector<GraphEvent> events;
};

/// Serialises to the full file byte string (header + CRC + payload).
std::string SerializeEventLog(const std::vector<EventBatch>& batches);

/// Validates and decodes file bytes. `origin` names the source in errors.
StatusOr<std::vector<EventBatch>> ParseEventLog(std::string_view bytes,
                                                const std::string& origin);

/// Atomic write through `env` (nullptr = Env::Default()).
Status SaveEventLog(const std::vector<EventBatch>& batches,
                    const std::string& path, Env* env = nullptr);

StatusOr<std::vector<EventBatch>> LoadEventLog(const std::string& path,
                                               Env* env = nullptr);

/// What applying one batch did. Redundant events (adding a present edge,
/// removing an absent one) are legal no-ops — replays and at-least-once
/// delivery must not poison the stream — and are tallied separately.
struct BatchApplyReport {
  int edges_added = 0;
  int edges_removed = 0;
  int attributes_updated = 0;
  int redundant = 0;
};

/// Applies every event of `batch` to `graph`, atomically: on any invalid
/// event (endpoint out of range, self-loop, attribute event on a graph
/// without attributes or with an out-of-range column) the graph is left
/// exactly as it was and the Status names the batch sequence and event
/// index. Node count is immutable under streaming.
StatusOr<BatchApplyReport> ApplyEventBatch(Graph* graph,
                                           const EventBatch& batch);

/// Sorted unique node ids named by the batch (edge endpoints and attribute
/// rows) — the seed set of the refresh frontier.
std::vector<int> TouchedNodes(const EventBatch& batch);

}  // namespace aneci::stream

#endif  // ANECI_STREAM_EVENT_LOG_H_

// StreamEngine: the orchestrator tying the streaming layers together. Per
// event batch it (1) applies the batch atomically, (2) incrementally
// refreshes the embedding on the k-hop frontier region, rolling back to the
// last healthy snapshot when the refresh trainer's watchdog vetoes it,
// (3) feeds structural signals to the DriftMonitor, (4) on escalation to
// SuspectedPoisoning runs the defense pipeline scoped to the suspect region
// (every node touched since the last healthy batch) and re-refreshes, and
// (5) optionally publishes the refreshed embedding to the serving layer
// through EmbedService's hot-swap. Every step is deterministic for a fixed
// (seed graph, event log, options) at any ANECI_THREADS value — the chaos
// test asserts byte-identical per-batch JSON reports across thread counts.
#ifndef ANECI_STREAM_STREAM_ENGINE_H_
#define ANECI_STREAM_STREAM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "defense/defense.h"
#include "graph/graph.h"
#include "linalg/matrix.h"
#include "serve/service.h"
#include "stream/drift_monitor.h"
#include "stream/event_log.h"
#include "stream/incremental.h"
#include "util/status.h"

namespace aneci::stream {

struct StreamEngineOptions {
  DriftMonitorOptions monitor;
  RefreshOptions refresh;
  /// Defense pipeline spec (defense/defense.h) run scoped to the suspect
  /// region when the monitor escalates to SuspectedPoisoning.
  std::string defense_spec = "jaccard:tau=0.05";
  uint64_t seed = 42;
  /// Optional serving sink: refreshed embeddings are published through the
  /// hot-swap after every non-vetoed batch that changed them.
  serve::EmbedService* publish = nullptr;
  /// Test hook: batches for which this returns true have their refresh
  /// trainer's loss forced non-finite, deterministically exhausting the
  /// watchdog budget — the forced refresh-veto of the chaos test.
  std::function<bool(uint64_t)> refresh_fault_hook;
};

/// Everything one ProcessBatch did, in deterministic-JSON form for the
/// telemetry ring and the replay-identity assertions.
struct StreamBatchReport {
  uint64_t sequence = 0;
  int edges_added = 0;
  int edges_removed = 0;
  int attributes_updated = 0;
  int region_nodes = 0;
  bool refreshed = false;
  bool refresh_vetoed = false;
  bool defense_invoked = false;
  int defense_edges_dropped = 0;
  StreamHealth state = StreamHealth::kHealthy;
  int breach_level = 0;
  double modularity = 0.0;
  double churn = 0.0;
  double degree_shift = 0.0;
  double baseline_modularity = 0.0;
  /// Snapshot version published this batch, 0 when nothing was published.
  uint64_t published_version = 0;

  /// One deterministic JSON object (keys in fixed order, %.17g doubles).
  std::string ToJson() const;
};

class StreamEngine {
 public:
  /// Validates options and takes ownership of the initial state. `z` / `p`
  /// are the embeddings of a converged training run on `graph` (the first
  /// healthy snapshot).
  static StatusOr<std::unique_ptr<StreamEngine>> Create(
      Graph graph, Matrix z, Matrix p, StreamEngineOptions options);

  /// Consumes one batch end-to-end. A Status (invalid event, failed apply)
  /// leaves graph and embeddings exactly as they were.
  StatusOr<StreamBatchReport> ProcessBatch(const EventBatch& batch);

  /// Replays a whole log in order; stops at the first failing batch.
  StatusOr<std::vector<StreamBatchReport>> ProcessLog(
      const std::vector<EventBatch>& batches);

  const Graph& graph() const { return graph_; }
  const Matrix& z() const { return z_; }
  const Matrix& p() const { return p_; }
  StreamHealth health() const { return monitor_.state(); }
  int defense_invocations() const { return defense_invocations_; }
  int refresh_vetoes() const { return refresh_vetoes_; }

  /// JSONL of every batch report so far — byte-identical across
  /// ANECI_THREADS values for the same inputs (the replay contract).
  const std::string& SummaryJsonl() const { return summary_; }

 private:
  StreamEngine(Graph graph, Matrix z, Matrix p, DefensePipeline pipeline,
               StreamEngineOptions options);

  void CaptureHealthySnapshot();
  std::vector<int> DegreeHistogram() const;
  static double TotalVariation(const std::vector<int>& a,
                               const std::vector<int>& b);

  StreamEngineOptions options_;
  Graph graph_;
  Matrix z_;
  Matrix p_;
  DefensePipeline pipeline_;
  DriftMonitor monitor_;
  Rng defense_rng_;

  // Last healthy embedding snapshot (the rollback target) and its degree
  // histogram (the degree-shift baseline).
  Matrix healthy_z_;
  Matrix healthy_p_;
  std::vector<int> healthy_degrees_;

  std::vector<int> prev_assignment_;
  /// Union of frontier regions since the last healthy snapshot — where the
  /// defense concentrates when the monitor escalates.
  std::vector<int> suspect_region_;

  int defense_invocations_ = 0;
  int refresh_vetoes_ = 0;
  std::string summary_;
};

}  // namespace aneci::stream

#endif  // ANECI_STREAM_STREAM_ENGINE_H_

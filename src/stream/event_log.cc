#include "stream/event_log.h"

#include <algorithm>
#include <utility>

#include "util/byteio.h"
#include "util/checkpoint.h"

namespace aneci::stream {
namespace {

constexpr char kMagic[4] = {'A', 'N', 'E', 'L'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4;  // magic, version, size, crc.
constexpr size_t kEventBytes = 1 + 4 + 4 + 8;   // kind, u, v, value.

std::string EventContext(const EventBatch& batch, size_t index) {
  return "event " + std::to_string(index) + " of batch " +
         std::to_string(batch.sequence);
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kAddEdge:
      return "add-edge";
    case EventKind::kRemoveEdge:
      return "remove-edge";
    case EventKind::kSetAttribute:
      return "set-attribute";
  }
  return "?";
}

GraphEvent GraphEvent::AddEdge(int u, int v) {
  return {EventKind::kAddEdge, u, v, 0.0};
}

GraphEvent GraphEvent::RemoveEdge(int u, int v) {
  return {EventKind::kRemoveEdge, u, v, 0.0};
}

GraphEvent GraphEvent::SetAttribute(int node, int column, double value) {
  return {EventKind::kSetAttribute, node, column, value};
}

std::string SerializeEventLog(const std::vector<EventBatch>& batches) {
  std::string payload;
  PutScalarLe<uint32_t>(&payload, static_cast<uint32_t>(batches.size()));
  for (const EventBatch& batch : batches) {
    PutScalarLe<uint64_t>(&payload, batch.sequence);
    PutScalarLe<uint32_t>(&payload,
                          static_cast<uint32_t>(batch.events.size()));
    for (const GraphEvent& event : batch.events) {
      PutScalarLe<uint8_t>(&payload, static_cast<uint8_t>(event.kind));
      PutScalarLe<uint32_t>(&payload, static_cast<uint32_t>(event.u));
      PutScalarLe<uint32_t>(&payload, static_cast<uint32_t>(event.v));
      PutDoubleLe(&payload, event.value);
    }
  }
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutScalarLe<uint32_t>(&out, kFormatVersion);
  PutScalarLe<uint64_t>(&out, payload.size());
  PutScalarLe<uint32_t>(&out, Crc32(payload.data(), payload.size()));
  out += payload;
  return out;
}

StatusOr<std::vector<EventBatch>> ParseEventLog(std::string_view bytes,
                                                const std::string& origin) {
  if (bytes.size() < kHeaderBytes)
    return Status::InvalidArgument("event log header truncated: " + origin);
  if (std::string_view(bytes.data(), 4) != std::string_view(kMagic, 4))
    return Status::InvalidArgument("bad event log magic (want \"ANEL\"): " +
                                   origin);
  ByteReader header(bytes.substr(4, kHeaderBytes - 4), "event log header",
                    origin);
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint32_t crc = 0;
  ANECI_RETURN_IF_ERROR(header.Get(&version));
  ANECI_RETURN_IF_ERROR(header.Get(&payload_size));
  ANECI_RETURN_IF_ERROR(header.Get(&crc));
  if (version != kFormatVersion)
    return Status::InvalidArgument(
        "unsupported event log version " + std::to_string(version) +
        " (want " + std::to_string(kFormatVersion) + "): " + origin);
  std::string_view payload = bytes.substr(kHeaderBytes);
  if (payload.size() != payload_size)
    return Status::InvalidArgument(
        "event log truncated: payload has " + std::to_string(payload.size()) +
        " bytes, header declares " + std::to_string(payload_size) + ": " +
        origin);
  if (Crc32(payload.data(), payload.size()) != crc)
    return Status::InvalidArgument(
        "event log CRC mismatch (corrupt payload): " + origin);

  ByteReader reader(payload, "event log payload", origin);
  uint32_t num_batches = 0;
  ANECI_RETURN_IF_ERROR(reader.Get(&num_batches));
  std::vector<EventBatch> batches;
  batches.reserve(std::min<size_t>(num_batches, reader.remaining()));
  for (uint32_t b = 0; b < num_batches; ++b) {
    EventBatch batch;
    uint32_t num_events = 0;
    ANECI_RETURN_IF_ERROR(reader.Get(&batch.sequence));
    ANECI_RETURN_IF_ERROR(reader.Get(&num_events));
    if (static_cast<uint64_t>(num_events) * kEventBytes > reader.remaining())
      return Status::InvalidArgument(
          "event log truncated: batch " + std::to_string(batch.sequence) +
          " declares " + std::to_string(num_events) + " events but only " +
          std::to_string(reader.remaining()) + " payload bytes remain: " +
          origin);
    batch.events.reserve(num_events);
    for (uint32_t e = 0; e < num_events; ++e) {
      GraphEvent event;
      uint8_t kind = 0;
      uint32_t u = 0;
      uint32_t v = 0;
      ANECI_RETURN_IF_ERROR(reader.Get(&kind));
      ANECI_RETURN_IF_ERROR(reader.Get(&u));
      ANECI_RETURN_IF_ERROR(reader.Get(&v));
      ANECI_RETURN_IF_ERROR(reader.GetDouble(&event.value));
      if (kind > static_cast<uint8_t>(EventKind::kSetAttribute))
        return Status::InvalidArgument(
            "unknown event kind " + std::to_string(kind) + " in batch " +
            std::to_string(batch.sequence) + ": " + origin);
      event.kind = static_cast<EventKind>(kind);
      event.u = static_cast<int32_t>(u);
      event.v = static_cast<int32_t>(v);
      batch.events.push_back(event);
    }
    batches.push_back(std::move(batch));
  }
  if (!reader.exhausted())
    return Status::InvalidArgument(
        "event log has " + std::to_string(reader.remaining()) +
        " trailing payload bytes after " + std::to_string(num_batches) +
        " batches: " + origin);
  return batches;
}

Status SaveEventLog(const std::vector<EventBatch>& batches,
                    const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  return env->WriteFileAtomic(path, SerializeEventLog(batches));
}

StatusOr<std::vector<EventBatch>> LoadEventLog(const std::string& path,
                                               Env* env) {
  if (env == nullptr) env = Env::Default();
  ANECI_ASSIGN_OR_RETURN(std::string bytes, env->ReadFile(path));
  return ParseEventLog(bytes, path);
}

StatusOr<BatchApplyReport> ApplyEventBatch(Graph* graph,
                                           const EventBatch& batch) {
  // Validate and apply against a scratch copy, then commit wholesale: a bad
  // event midway through the batch must not leave earlier events applied.
  Graph scratch = *graph;
  const int n = scratch.num_nodes();
  BatchApplyReport report;
  for (size_t i = 0; i < batch.events.size(); ++i) {
    const GraphEvent& event = batch.events[i];
    if (event.u < 0 || event.u >= n)
      return Status::InvalidArgument(
          "node " + std::to_string(event.u) + " out of range [0, " +
          std::to_string(n) + ") in " + EventContext(batch, i));
    switch (event.kind) {
      case EventKind::kAddEdge:
      case EventKind::kRemoveEdge: {
        if (event.v < 0 || event.v >= n)
          return Status::InvalidArgument(
              "node " + std::to_string(event.v) + " out of range [0, " +
              std::to_string(n) + ") in " + EventContext(batch, i));
        if (event.u == event.v)
          return Status::InvalidArgument(
              "self-loop on node " + std::to_string(event.u) + " in " +
              EventContext(batch, i));
        if (event.kind == EventKind::kAddEdge) {
          if (scratch.AddEdge(event.u, event.v))
            ++report.edges_added;
          else
            ++report.redundant;
        } else {
          if (scratch.RemoveEdge(event.u, event.v))
            ++report.edges_removed;
          else
            ++report.redundant;
        }
        break;
      }
      case EventKind::kSetAttribute: {
        if (!scratch.has_attributes())
          return Status::InvalidArgument(
              "set-attribute on a graph without attributes in " +
              EventContext(batch, i));
        if (event.v < 0 || event.v >= scratch.attribute_dim())
          return Status::InvalidArgument(
              "attribute column " + std::to_string(event.v) +
              " out of range [0, " + std::to_string(scratch.attribute_dim()) +
              ") in " + EventContext(batch, i));
        scratch.mutable_attributes()(event.u, event.v) = event.value;
        ++report.attributes_updated;
        break;
      }
    }
  }
  *graph = std::move(scratch);
  return report;
}

std::vector<int> TouchedNodes(const EventBatch& batch) {
  std::vector<int> nodes;
  nodes.reserve(batch.events.size() * 2);
  for (const GraphEvent& event : batch.events) {
    nodes.push_back(event.u);
    if (event.kind != EventKind::kSetAttribute) nodes.push_back(event.v);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace aneci::stream

#include "stream/stream_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/modularity.h"
#include "serve/model_artifact.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace aneci::stream {
namespace {

constexpr int kDegreeBuckets = 64;  // Last bucket absorbs the tail.

void AppendJsonBool(std::string* out, const char* key, bool value) {
  *out += "\"";
  *out += key;
  *out += value ? "\":true" : "\":false";
}

}  // namespace

std::string StreamBatchReport::ToJson() const {
  std::string json = "{\"sequence\":" + std::to_string(sequence);
  json += ",\"edges_added\":" + std::to_string(edges_added);
  json += ",\"edges_removed\":" + std::to_string(edges_removed);
  json += ",\"attributes_updated\":" + std::to_string(attributes_updated);
  json += ",\"region_nodes\":" + std::to_string(region_nodes);
  json += ",";
  AppendJsonBool(&json, "refreshed", refreshed);
  json += ",";
  AppendJsonBool(&json, "refresh_vetoed", refresh_vetoed);
  json += ",";
  AppendJsonBool(&json, "defense_invoked", defense_invoked);
  json += ",\"defense_edges_dropped\":" + std::to_string(defense_edges_dropped);
  json += ",\"state\":\"" + std::string(StreamHealthName(state)) + "\"";
  json += ",\"breach_level\":" + std::to_string(breach_level);
  json += ",\"modularity\":" + JsonDouble(modularity);
  json += ",\"churn\":" + JsonDouble(churn);
  json += ",\"degree_shift\":" + JsonDouble(degree_shift);
  json += ",\"baseline_modularity\":" + JsonDouble(baseline_modularity);
  json += ",\"published_version\":" + std::to_string(published_version);
  json += "}";
  return json;
}

StreamEngine::StreamEngine(Graph graph, Matrix z, Matrix p,
                           DefensePipeline pipeline,
                           StreamEngineOptions options)
    : options_(std::move(options)),
      graph_(std::move(graph)),
      z_(std::move(z)),
      p_(std::move(p)),
      pipeline_(std::move(pipeline)),
      monitor_(options_.monitor),
      defense_rng_(options_.seed ^ 0xdefe45eULL) {
  prev_assignment_ = ArgmaxAssignment(p_);
  CaptureHealthySnapshot();
}

StatusOr<std::unique_ptr<StreamEngine>> StreamEngine::Create(
    Graph graph, Matrix z, Matrix p, StreamEngineOptions options) {
  ANECI_RETURN_IF_ERROR(ValidateDriftMonitorOptions(options.monitor));
  ANECI_RETURN_IF_ERROR(ValidateRefreshOptions(options.refresh));
  if (graph.num_nodes() == 0)
    return Status::InvalidArgument("stream engine needs a non-empty graph");
  if (z.rows() != graph.num_nodes() || p.rows() != graph.num_nodes() ||
      z.cols() != p.cols() || z.cols() == 0)
    return Status::InvalidArgument(
        "embedding shape (" + std::to_string(z.rows()) + "x" +
        std::to_string(z.cols()) + ") does not match graph with " +
        std::to_string(graph.num_nodes()) + " nodes");
  ANECI_ASSIGN_OR_RETURN(DefensePipeline pipeline,
                         ParseDefensePipeline(options.defense_spec));
  return std::unique_ptr<StreamEngine>(
      new StreamEngine(std::move(graph), std::move(z), std::move(p),
                       std::move(pipeline), std::move(options)));
}

void StreamEngine::CaptureHealthySnapshot() {
  healthy_z_ = z_;
  healthy_p_ = p_;
  healthy_degrees_ = DegreeHistogram();
  suspect_region_.clear();
}

std::vector<int> StreamEngine::DegreeHistogram() const {
  std::vector<int> hist(kDegreeBuckets, 0);
  for (int u = 0; u < graph_.num_nodes(); ++u)
    ++hist[std::min(graph_.Degree(u), kDegreeBuckets - 1)];
  return hist;
}

double StreamEngine::TotalVariation(const std::vector<int>& a,
                                    const std::vector<int>& b) {
  double total_a = 0.0, total_b = 0.0;
  for (int x : a) total_a += x;
  for (int x : b) total_b += x;
  if (total_a == 0.0 || total_b == 0.0) return 0.0;
  double tv = 0.0;
  for (size_t i = 0; i < a.size(); ++i)
    tv += std::abs(a[i] / total_a - b[i] / total_b);
  return 0.5 * tv;
}

StatusOr<StreamBatchReport> StreamEngine::ProcessBatch(
    const EventBatch& batch) {
  TraceSpan span("stream/batch");
  static Counter* batches = MetricsRegistry::Global().GetCounter(
      "stream/batches", MetricClass::kDeterministic);
  static Counter* events = MetricsRegistry::Global().GetCounter(
      "stream/events_applied", MetricClass::kDeterministic);
  static Counter* refreshes = MetricsRegistry::Global().GetCounter(
      "stream/refreshes", MetricClass::kDeterministic);
  static Counter* vetoes = MetricsRegistry::Global().GetCounter(
      "stream/refresh_vetoes", MetricClass::kDeterministic);
  static Counter* defenses = MetricsRegistry::Global().GetCounter(
      "stream/defense_invocations", MetricClass::kDeterministic);
  static Counter* escalations = MetricsRegistry::Global().GetCounter(
      "stream/escalations", MetricClass::kDeterministic);
  static Gauge* health_gauge = MetricsRegistry::Global().GetGauge(
      "stream/health", MetricClass::kDeterministic);
  static Gauge* modularity_gauge = MetricsRegistry::Global().GetGauge(
      "stream/modularity", MetricClass::kDeterministic);
  static TelemetryRing* ring = MetricsRegistry::Global().GetRing("stream");

  StreamBatchReport report;
  report.sequence = batch.sequence;

  // (1) Apply atomically: a bad event leaves everything untouched.
  ANECI_ASSIGN_OR_RETURN(BatchApplyReport applied,
                         ApplyEventBatch(&graph_, batch));
  batches->Increment();
  events->Add(batch.events.size());
  report.edges_added = applied.edges_added;
  report.edges_removed = applied.edges_removed;
  report.attributes_updated = applied.attributes_updated;

  // (2) Incremental refresh on the k-hop frontier. A watchdog veto rolls the
  // embeddings back to the last healthy snapshot; the graph keeps the events
  // (they are the ground-truth stream, not model state).
  const std::vector<int> region =
      FrontierRegion(graph_, TouchedNodes(batch), options_.refresh.khops);
  report.region_nodes = static_cast<int>(region.size());
  suspect_region_.insert(suspect_region_.end(), region.begin(), region.end());
  std::sort(suspect_region_.begin(), suspect_region_.end());
  suspect_region_.erase(
      std::unique(suspect_region_.begin(), suspect_region_.end()),
      suspect_region_.end());

  std::function<bool(int)> fault_hook;
  if (options_.refresh_fault_hook && options_.refresh_fault_hook(batch.sequence))
    fault_hook = [](int) { return true; };
  auto refreshed = RefreshRegion(graph_, region, options_.refresh,
                                 options_.seed + batch.sequence, &z_, &p_,
                                 fault_hook);
  if (refreshed.ok()) {
    report.refreshed = refreshed.value().refreshed;
    if (report.refreshed) refreshes->Increment();
  } else {
    report.refresh_vetoed = true;
    ++refresh_vetoes_;
    vetoes->Increment();
    z_ = healthy_z_;
    p_ = healthy_p_;
  }

  // (3) Structural signals vs the healthy baseline -> monitor decision.
  BatchObservation observation;
  observation.modularity = GeneralizedModularity(graph_.Adjacency(), p_);
  const std::vector<int> assignment = ArgmaxAssignment(p_);
  int changed = 0;
  for (size_t i = 0; i < assignment.size(); ++i)
    if (assignment[i] != prev_assignment_[i]) ++changed;
  observation.churn =
      assignment.empty()
          ? 0.0
          : static_cast<double>(changed) / static_cast<double>(assignment.size());
  observation.degree_shift = TotalVariation(DegreeHistogram(), healthy_degrees_);
  prev_assignment_ = assignment;

  const DriftDecision decision = monitor_.Observe(observation);
  report.state = decision.state;
  report.breach_level = decision.breach_level;
  report.modularity = observation.modularity;
  report.churn = observation.churn;
  report.degree_shift = observation.degree_shift;
  report.baseline_modularity = decision.baseline_modularity;
  if (decision.escalated) escalations->Increment();

  // (4) Escalation into SuspectedPoisoning fires the defense, scoped to the
  // suspect region, then re-refreshes that region on the purified graph.
  if (decision.entered_poisoning) {
    TraceSpan defense_span("stream/defense");
    PurifiedGraph purified = RunDefensePipelineScoped(
        graph_, pipeline_, defense_rng_, suspect_region_);
    graph_ = std::move(purified.graph);
    report.defense_invoked = true;
    report.defense_edges_dropped = purified.reports.empty()
                                       ? 0
                                       : purified.reports[0].edges_dropped;
    ++defense_invocations_;
    defenses->Increment();
    auto recovered =
        RefreshRegion(graph_, suspect_region_, options_.refresh,
                      options_.seed + batch.sequence + 0x5c0bedULL, &z_, &p_,
                      nullptr);
    if (!recovered.ok()) {
      z_ = healthy_z_;
      p_ = healthy_p_;
    }
  }

  // (5) Healthy and un-vetoed: this becomes the new rollback target.
  if (monitor_.state() == StreamHealth::kHealthy && !report.refresh_vetoed)
    CaptureHealthySnapshot();

  // (6) Publish through the serving hot-swap unless the batch was vetoed
  // (the serving layer keeps answering from the last healthy snapshot).
  if (options_.publish != nullptr && !report.refresh_vetoed &&
      (report.refreshed || report.defense_invoked)) {
    serve::ModelArtifact artifact = serve::BuildModelArtifact(graph_, z_, p_);
    auto snapshot = options_.publish->SwapFromArtifact(
        std::move(artifact), "stream:batch=" + std::to_string(batch.sequence));
    report.published_version = snapshot->version();
  }

  health_gauge->Set(static_cast<double>(static_cast<int>(monitor_.state())));
  modularity_gauge->Set(observation.modularity);
  const std::string json = report.ToJson();
  ring->Append(json);
  summary_ += json;
  summary_ += "\n";
  return report;
}

StatusOr<std::vector<StreamBatchReport>> StreamEngine::ProcessLog(
    const std::vector<EventBatch>& batches) {
  std::vector<StreamBatchReport> reports;
  reports.reserve(batches.size());
  for (const EventBatch& batch : batches) {
    ANECI_ASSIGN_OR_RETURN(StreamBatchReport report, ProcessBatch(batch));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace aneci::stream

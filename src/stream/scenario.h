// Deterministic streaming scenario generator: background edge churn with an
// optional mid-stream DICE-style poisoning burst, emitted as an event-batch
// sequence. This is the test/bench driver for the streaming monitor — it
// reproduces the perturbation-sweep methodology of the robustness studies
// (arXiv:2405.00636, arXiv:2509.24662) as a stream instead of a static sweep.
#ifndef ANECI_STREAM_SCENARIO_H_
#define ANECI_STREAM_SCENARIO_H_

#include <vector>

#include "graph/graph.h"
#include "stream/event_log.h"
#include "util/rng.h"
#include "util/status.h"

namespace aneci::stream {

struct StreamScenarioOptions {
  int batches = 10;
  /// Background churn events per batch (half add, half remove, best-effort).
  int events_per_batch = 8;
  uint64_t seed = 42;
  /// Batch index (0-based) at which a DICE poisoning burst lands, or -1 for
  /// a clean stream. Requires the seed graph to carry labels.
  int poison_batch = -1;
  /// DICE budget as a fraction of the current edge count.
  double poison_rate = 0.2;
};

Status ValidateStreamScenarioOptions(const StreamScenarioOptions& options);

/// Simulates the stream against a scratch copy of `graph` (the input is not
/// mutated) so every batch is consistent with the state left by its
/// predecessors. Batch sequences are 0..batches-1. The poison batch replaces
/// the churn batch at that index with the edge diff of a DiceAttack on the
/// current simulated graph.
StatusOr<std::vector<EventBatch>> MakeEventStream(
    const Graph& graph, const StreamScenarioOptions& options);

}  // namespace aneci::stream

#endif  // ANECI_STREAM_SCENARIO_H_

#include "stream/incremental.h"

#include <algorithm>
#include <deque>
#include <string>

#include "core/aneci.h"

namespace aneci::stream {

std::vector<int> FrontierRegion(const Graph& graph,
                                const std::vector<int>& seeds, int khops) {
  const int n = graph.num_nodes();
  std::vector<int> depth(n, -1);
  std::deque<int> queue;
  for (int s : seeds) {
    if (s < 0 || s >= n || depth[s] == 0) continue;
    depth[s] = 0;
    queue.push_back(s);
  }
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    if (depth[u] >= khops) continue;
    for (int v : graph.Neighbors(u)) {
      if (depth[v] >= 0) continue;
      depth[v] = depth[u] + 1;
      queue.push_back(v);
    }
  }
  std::vector<int> region;
  for (int u = 0; u < n; ++u)
    if (depth[u] >= 0) region.push_back(u);
  return region;
}

Status ValidateRefreshOptions(const RefreshOptions& options) {
  if (options.khops < 0)
    return Status::InvalidArgument("refresh khops must be >= 0, got " +
                                   std::to_string(options.khops));
  if (options.epochs <= 0)
    return Status::InvalidArgument("refresh epochs must be > 0, got " +
                                   std::to_string(options.epochs));
  if (options.min_region < 2)
    return Status::InvalidArgument("refresh min-region must be >= 2, got " +
                                   std::to_string(options.min_region));
  if (options.hidden_dim <= 0)
    return Status::InvalidArgument("refresh hidden-dim must be > 0, got " +
                                   std::to_string(options.hidden_dim));
  return Status::OK();
}

StatusOr<RefreshOutcome> RefreshRegion(
    const Graph& graph, const std::vector<int>& region,
    const RefreshOptions& options, uint64_t seed, Matrix* z, Matrix* p,
    const std::function<bool(int)>& fault_hook) {
  ANECI_RETURN_IF_ERROR(ValidateRefreshOptions(options));
  if (z->rows() != graph.num_nodes() || p->rows() != graph.num_nodes())
    return Status::InvalidArgument(
        "embedding has " + std::to_string(z->rows()) + " rows but graph has " +
        std::to_string(graph.num_nodes()) + " nodes");

  RefreshOutcome outcome;
  outcome.region_nodes = static_cast<int>(region.size());
  if (static_cast<int>(region.size()) < options.min_region) return outcome;

  // Induced subgraph with a dense local index (region is sorted, so the
  // mapping — and therefore the refresh — is deterministic).
  const int m = static_cast<int>(region.size());
  std::vector<int> local(graph.num_nodes(), -1);
  for (int i = 0; i < m; ++i) local[region[i]] = i;
  std::vector<Edge> edges;
  for (const Edge& e : graph.edges()) {
    if (local[e.u] >= 0 && local[e.v] >= 0)
      edges.push_back({local[e.u], local[e.v]});
  }
  Graph sub = Graph::FromEdges(m, edges);
  outcome.region_edges = sub.num_edges();
  if (sub.num_edges() == 0) return outcome;
  if (graph.has_attributes()) {
    const Matrix& attrs = graph.attributes();
    Matrix sub_attrs(m, attrs.cols());
    for (int i = 0; i < m; ++i)
      for (int c = 0; c < attrs.cols(); ++c)
        sub_attrs(i, c) = attrs(region[i], c);
    sub.SetAttributes(std::move(sub_attrs));
  }

  // The subgraph trainer starts from fresh weights, so its communities come
  // out in an arbitrary column order — a permutation of the global one.
  // Record the region's current assignments so the refreshed columns can be
  // aligned back before write-back; without this, every clean refresh looks
  // like mass membership churn to the drift monitor.
  const int k = z->cols();
  std::vector<int> old_assignment(m, 0);
  for (int i = 0; i < m; ++i) {
    int best = 0;
    for (int c = 1; c < k; ++c)
      if ((*p)(region[i], c) > (*p)(region[i], best)) best = c;
    old_assignment[i] = best;
  }

  AneciConfig config;
  config.hidden_dim = options.hidden_dim;
  config.embed_dim = z->cols();
  config.epochs = options.epochs;
  config.seed = seed;
  config.watchdog = options.watchdog;
  config.divergence_fault_hook = fault_hook;
  Aneci trainer(config);
  ANECI_ASSIGN_OR_RETURN(AneciResult result, trainer.TrainWithResilience(sub));

  // Greedy column alignment: map each refreshed community to the previous
  // community it overlaps most, largest overlaps first. Q~ and P P^T are
  // invariant under a consistent column permutation of (z, p), so this only
  // relabels, never changes the solution.
  std::vector<int> new_assignment(m, 0);
  for (int i = 0; i < m; ++i) {
    int best = 0;
    for (int c = 1; c < k; ++c)
      if (result.p(i, c) > result.p(i, best)) best = c;
    new_assignment[i] = best;
  }
  Matrix overlap(k, k);
  for (int i = 0; i < m; ++i)
    overlap(new_assignment[i], old_assignment[i]) += 1.0;
  std::vector<int> perm(k, -1);
  std::vector<char> old_taken(k, 0);
  for (int round = 0; round < k; ++round) {
    int best_new = -1, best_old = -1;
    double best_count = -1.0;
    for (int nc = 0; nc < k; ++nc) {
      if (perm[nc] >= 0) continue;
      for (int oc = 0; oc < k; ++oc) {
        if (old_taken[oc]) continue;
        if (overlap(nc, oc) > best_count) {
          best_count = overlap(nc, oc);
          best_new = nc;
          best_old = oc;
        }
      }
    }
    perm[best_new] = best_old;
    old_taken[best_old] = 1;
  }

  // Commit only after the trainer succeeded: a vetoed refresh must leave the
  // global embedding untouched.
  for (int i = 0; i < m; ++i) {
    for (int c = 0; c < k; ++c) {
      (*z)(region[i], perm[c]) = result.z(i, c);
      (*p)(region[i], perm[c]) = result.p(i, c);
    }
  }
  outcome.refreshed = true;
  outcome.epochs_run = options.epochs;
  outcome.watchdog_rollbacks = result.watchdog_rollbacks;
  return outcome;
}

}  // namespace aneci::stream

// NETTACK (Zuegner et al., KDD'18), direct structure poisoning variant:
// greedily flips edges incident to the target node, choosing at each step
// the flip that minimises the surrogate's classification margin
// (logit of the true class minus the best wrong class) via exact local
// recomputation of the target's logits.
#ifndef ANECI_ATTACK_NETTACK_H_
#define ANECI_ATTACK_NETTACK_H_

#include <vector>

#include "attack/surrogate.h"
#include "data/datasets.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace aneci {

struct NettackOptions {
  int perturbations_per_target = 3;
  /// Candidate flip endpoints examined per perturbation; 0 = all nodes.
  int candidate_sample = 0;
  SurrogateModel::Options surrogate;
};

Graph NettackAttack(const Dataset& dataset, const std::vector<int>& targets,
                    const NettackOptions& options, Rng& rng);

}  // namespace aneci

#endif  // ANECI_ATTACK_NETTACK_H_

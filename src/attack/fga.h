// FGA — Fast Gradient Attack (Chen et al. 2018): flips the edge incident to
// the target node whose adjacency-gradient most increases the target's
// classification loss under the linear GCN surrogate. Direct targeted
// poisoning, as evaluated in Fig. 4.
#ifndef ANECI_ATTACK_FGA_H_
#define ANECI_ATTACK_FGA_H_

#include <vector>

#include "attack/surrogate.h"
#include "data/datasets.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace aneci {

struct FgaOptions {
  int perturbations_per_target = 3;
  SurrogateModel::Options surrogate;
};

/// Perturbs `dataset.graph` around each target node. The surrogate is
/// trained once on the clean graph; gradients are recomputed after each
/// flip (poisoning setting).
Graph FgaAttack(const Dataset& dataset, const std::vector<int>& targets,
                const FgaOptions& options, Rng& rng);

}  // namespace aneci

#endif  // ANECI_ATTACK_FGA_H_

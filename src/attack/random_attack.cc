#include "attack/random_attack.h"

#include <cmath>

#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace aneci {

RandomAttackResult RandomAttack(const Graph& graph, double delta, Rng& rng) {
  TraceSpan span("attack/random");
  static Counter* calls = MetricsRegistry::Global().GetCounter(
      "attack/random/calls", MetricClass::kDeterministic);
  calls->Increment();
  ANECI_CHECK(delta >= 0.0);
  RandomAttackResult result;
  result.attacked = graph;
  const int n = graph.num_nodes();
  const int to_add = static_cast<int>(std::lround(delta * graph.num_edges()));

  int added = 0;
  int64_t attempts = 0;
  const int64_t max_attempts = static_cast<int64_t>(to_add) * 100 + 1000;
  while (added < to_add && attempts++ < max_attempts) {
    const int u = static_cast<int>(rng.NextInt(n));
    const int v = static_cast<int>(rng.NextInt(n));
    if (u == v || result.attacked.HasEdge(u, v)) continue;
    result.attacked.AddEdge(u, v);
    result.fake_edges.push_back({std::min(u, v), std::max(u, v)});
    ++added;
  }
  return result;
}

Graph BudgetedEdgeFlips(const Graph& graph, int flips, Rng& rng) {
  Graph flipped = graph;
  const int n = graph.num_nodes();
  if (n < 2) return flipped;
  for (int f = 0; f < flips; ++f) {
    const bool remove = rng.NextBool(0.5) && flipped.num_edges() > 0;
    if (remove) {
      const Edge e = flipped.edges()[rng.NextInt(flipped.num_edges())];
      flipped.RemoveEdge(e.u, e.v);
    } else {
      // Rejection-sample an absent pair; bounded attempts keep the flip
      // count deterministic even on near-complete graphs.
      for (int attempt = 0; attempt < 100; ++attempt) {
        const int u = static_cast<int>(rng.NextInt(n));
        const int v = static_cast<int>(rng.NextInt(n));
        if (u == v || flipped.HasEdge(u, v)) continue;
        flipped.AddEdge(u, v);
        break;
      }
    }
  }
  return flipped;
}

}  // namespace aneci

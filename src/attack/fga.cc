#include "attack/fga.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace aneci {

Graph FgaAttack(const Dataset& dataset, const std::vector<int>& targets,
                const FgaOptions& options, Rng& rng) {
  TraceSpan span("attack/fga");
  static Counter* calls = MetricsRegistry::Global().GetCounter(
      "attack/fga/calls", MetricClass::kDeterministic);
  calls->Increment();
  Graph attacked = dataset.graph;
  SurrogateModel surrogate(options.surrogate);
  surrogate.Fit(dataset.graph, dataset, rng);
  const int n = attacked.num_nodes();

  for (int target : targets) {
    const int y = dataset.graph.labels()[target];
    for (int step = 0; step < options.perturbations_per_target; ++step) {
      const std::vector<double> grad =
          SurrogateEdgeGradient(surrogate, attacked, target, y);
      double best_score = 0.0;
      int best_v = -1;
      for (int v = 0; v < n; ++v) {
        if (v == target) continue;
        // Increasing the loss means raising A_tv when grad > 0 (add edge) or
        // lowering it when grad < 0 (remove edge).
        const double score =
            attacked.HasEdge(target, v) ? -grad[v] : grad[v];
        if (score > best_score) {
          best_score = score;
          best_v = v;
        }
      }
      if (best_v < 0) break;  // No loss-increasing flip available.
      if (attacked.HasEdge(target, best_v)) {
        attacked.RemoveEdge(target, best_v);
      } else {
        attacked.AddEdge(target, best_v);
      }
    }
  }
  return attacked;
}

}  // namespace aneci

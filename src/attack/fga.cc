#include "attack/fga.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace aneci {

Graph FgaAttack(const Dataset& dataset, const std::vector<int>& targets,
                const FgaOptions& options, Rng& rng) {
  Graph attacked = dataset.graph;
  SurrogateModel surrogate(options.surrogate);
  surrogate.Fit(dataset.graph, dataset, rng);
  const Matrix& r = surrogate.projected();  // R = X W (N x k).
  const int n = attacked.num_nodes();
  const int k = r.cols();

  for (int target : targets) {
    const int y = dataset.graph.labels()[target];
    for (int step = 0; step < options.perturbations_per_target; ++step) {
      const SparseMatrix s_norm = attacked.NormalizedAdjacency();

      // Target logits and loss gradient g = softmax(z_t) - onehot(y).
      Matrix u = s_norm.Multiply(r);
      std::vector<double> z(k, 0.0);
      for (int64_t e = s_norm.row_ptr()[target];
           e < s_norm.row_ptr()[target + 1]; ++e) {
        const double w = s_norm.values()[e];
        const double* urow = u.RowPtr(s_norm.col_idx()[e]);
        for (int c = 0; c < k; ++c) z[c] += w * urow[c];
      }
      double mx = z[0];
      for (int c = 1; c < k; ++c) mx = std::max(mx, z[c]);
      double sum = 0.0;
      std::vector<double> g(k);
      for (int c = 0; c < k; ++c) {
        g[c] = std::exp(z[c] - mx);
        sum += g[c];
      }
      for (int c = 0; c < k; ++c) g[c] = g[c] / sum - (c == y ? 1.0 : 0.0);

      // Gvec_j = g . R_j; sg = S~ Gvec. Gradient of the target CE loss wrt
      // A_tv (normalisation constants frozen):
      //   dL/dA_tv ~ [ (S~ Gvec)_v + s_tt Gvec_v + s_tv Gvec_t ]
      //              / sqrt((d_t+1)(d_v+1)).
      std::vector<double> gvec(n, 0.0);
      for (int j = 0; j < n; ++j) {
        const double* rrow = r.RowPtr(j);
        for (int c = 0; c < k; ++c) gvec[j] += g[c] * rrow[c];
      }
      std::vector<double> sg(n, 0.0);
      for (int a = 0; a < n; ++a) {
        for (int64_t e = s_norm.row_ptr()[a]; e < s_norm.row_ptr()[a + 1];
             ++e) {
          sg[a] += s_norm.values()[e] * gvec[s_norm.col_idx()[e]];
        }
      }

      const double dt = attacked.Degree(target) + 1.0;
      const double s_tt = 1.0 / dt;
      double best_score = 0.0;
      int best_v = -1;
      for (int v = 0; v < n; ++v) {
        if (v == target) continue;
        const double dv = attacked.Degree(v) + 1.0;
        const bool has = attacked.HasEdge(target, v);
        const double s_tv = has ? 1.0 / std::sqrt(dt * dv) : 0.0;
        const double grad =
            (sg[v] + s_tt * gvec[v] + s_tv * gvec[target]) / std::sqrt(dt * dv);
        // Increasing the loss means raising A_tv when grad > 0 (add edge) or
        // lowering it when grad < 0 (remove edge).
        const double score = has ? -grad : grad;
        if (score > best_score) {
          best_score = score;
          best_v = v;
        }
      }
      if (best_v < 0) break;  // No loss-increasing flip available.
      if (attacked.HasEdge(target, best_v)) {
        attacked.RemoveEdge(target, best_v);
      } else {
        attacked.AddEdge(target, best_v);
      }
    }
  }
  return attacked;
}

}  // namespace aneci

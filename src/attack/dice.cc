#include "attack/dice.h"

#include <cmath>

#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace aneci {

DiceResult DiceAttack(const Graph& graph, const DiceOptions& options,
                      Rng& rng) {
  TraceSpan span("attack/dice");
  static Counter* calls = MetricsRegistry::Global().GetCounter(
      "attack/dice/calls", MetricClass::kDeterministic);
  calls->Increment();
  ANECI_CHECK(graph.has_labels());
  ANECI_CHECK(options.budget >= 0.0);
  DiceResult result;
  result.attacked = graph;
  const int n = graph.num_nodes();
  const int budget =
      static_cast<int>(std::lround(options.budget * graph.num_edges()));
  const int delete_budget = budget / 2;
  const int add_budget = budget - delete_budget;

  // Delete internally: remove random intra-class edges.
  std::vector<Edge> intra;
  for (const Edge& e : graph.edges())
    if (graph.labels()[e.u] == graph.labels()[e.v]) intra.push_back(e);
  for (int i = static_cast<int>(intra.size()) - 1; i > 0; --i)
    std::swap(intra[i], intra[rng.NextInt(i + 1)]);
  for (int i = 0; i < delete_budget && i < static_cast<int>(intra.size());
       ++i) {
    if (result.attacked.RemoveEdge(intra[i].u, intra[i].v))
      ++result.edges_deleted;
  }

  // Connect externally: add random inter-class edges.
  int64_t attempts = 0;
  const int64_t max_attempts = static_cast<int64_t>(add_budget) * 100 + 1000;
  while (result.edges_added < add_budget && attempts++ < max_attempts) {
    const int u = static_cast<int>(rng.NextInt(n));
    const int v = static_cast<int>(rng.NextInt(n));
    if (u == v || graph.labels()[u] == graph.labels()[v]) continue;
    if (result.attacked.AddEdge(u, v)) ++result.edges_added;
  }
  return result;
}

}  // namespace aneci

#include "attack/nettack.h"

#include <algorithm>
#include <limits>

#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace aneci {
namespace {

// Margin of the surrogate at `node`: logit(true class) - best other logit.
// Negative margin = misclassified.
double Margin(const SurrogateModel& surrogate, const Graph& graph, int node,
              int true_label) {
  const std::vector<double> z = surrogate.LogitsForNode(graph, node);
  double best_other = -std::numeric_limits<double>::max();
  for (size_t c = 0; c < z.size(); ++c)
    if (static_cast<int>(c) != true_label)
      best_other = std::max(best_other, z[c]);
  return z[true_label] - best_other;
}

}  // namespace

Graph NettackAttack(const Dataset& dataset, const std::vector<int>& targets,
                    const NettackOptions& options, Rng& rng) {
  TraceSpan span("attack/nettack");
  static Counter* calls = MetricsRegistry::Global().GetCounter(
      "attack/nettack/calls", MetricClass::kDeterministic);
  calls->Increment();
  Graph attacked = dataset.graph;
  SurrogateModel surrogate(options.surrogate);
  surrogate.Fit(dataset.graph, dataset, rng);
  const int n = attacked.num_nodes();

  for (int target : targets) {
    const int y = dataset.graph.labels()[target];
    for (int step = 0; step < options.perturbations_per_target; ++step) {
      // Candidate endpoints: every other node, or a random subsample.
      std::vector<int> candidates;
      if (options.candidate_sample > 0 && options.candidate_sample < n - 1) {
        candidates.reserve(options.candidate_sample);
        for (int c = 0; c < options.candidate_sample; ++c) {
          const int v = static_cast<int>(rng.NextInt(n));
          if (v != target) candidates.push_back(v);
        }
        // Always consider disconnecting existing neighbours.
        for (int v : attacked.Neighbors(target)) candidates.push_back(v);
      } else {
        candidates.reserve(n - 1);
        for (int v = 0; v < n; ++v)
          if (v != target) candidates.push_back(v);
      }

      double best_margin = Margin(surrogate, attacked, target, y);
      int best_v = -1;
      bool best_was_edge = false;
      for (int v : candidates) {
        const bool has = attacked.HasEdge(target, v);
        // Tentatively flip, score, revert. Graph edits are O(log M).
        if (has) {
          attacked.RemoveEdge(target, v);
        } else {
          attacked.AddEdge(target, v);
        }
        const double margin = Margin(surrogate, attacked, target, y);
        if (has) {
          attacked.AddEdge(target, v);
        } else {
          attacked.RemoveEdge(target, v);
        }
        if (margin < best_margin) {
          best_margin = margin;
          best_v = v;
          best_was_edge = has;
        }
      }
      if (best_v < 0) break;  // No margin-reducing flip found.
      if (best_was_edge) {
        attacked.RemoveEdge(target, best_v);
      } else {
        attacked.AddEdge(target, best_v);
      }
    }
  }
  return attacked;
}

}  // namespace aneci

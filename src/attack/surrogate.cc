#include "attack/surrogate.h"

#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "util/check.h"

namespace aneci {

void SurrogateModel::Fit(const Graph& graph, const Dataset& dataset,
                         Rng& rng) {
  const Matrix features = graph.FeaturesOrIdentity();
  const int k = dataset.graph.num_classes();
  ANECI_CHECK_GT(k, 1);

  // Propagated features F = S~^2 X, fixed during W's training.
  const SparseMatrix s_norm = graph.NormalizedAdjacency();
  Matrix f = s_norm.Multiply(s_norm.Multiply(features));

  std::vector<int> train_labels;
  for (int i : dataset.train_idx)
    train_labels.push_back(dataset.graph.labels()[i]);

  auto w = ag::MakeParameter(Matrix::GlorotUniform(features.cols(), k, rng));
  ag::Adam::Options adam;
  adam.lr = options_.lr;
  adam.weight_decay = options_.weight_decay;
  ag::Adam optimizer({w}, adam);

  auto f_const = ag::MakeConstant(std::move(f));
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    optimizer.ZeroGrad();
    ag::VarPtr logits = ag::MatMul(f_const, w);
    ag::VarPtr loss =
        ag::SoftmaxCrossEntropy(logits, dataset.train_idx, train_labels);
    ag::Backward(loss);
    optimizer.Step();
  }
  weights_ = w->value();
  projected_ = MatMul(features, weights_);
}

Matrix SurrogateModel::Logits(const Graph& graph) const {
  ANECI_CHECK(!projected_.empty());
  const SparseMatrix s_norm = graph.NormalizedAdjacency();
  return s_norm.Multiply(s_norm.Multiply(projected_));
}

std::vector<double> SurrogateModel::LogitsForNode(const Graph& graph,
                                                  int node) const {
  ANECI_CHECK(!projected_.empty());
  const int k = projected_.cols();
  // z_t = sum_{j in N(t) + t} s_tj * u_j, u_j = sum_{m in N(j) + j} s_jm R_m,
  // with s_ab = 1 / sqrt((d_a + 1)(d_b + 1)) including self-loops.
  auto inv_sqrt_deg = [&](int v) {
    return 1.0 / std::sqrt(static_cast<double>(graph.Degree(v)) + 1.0);
  };
  auto u_row = [&](int j, double* out) {
    std::fill(out, out + k, 0.0);
    const double sj = inv_sqrt_deg(j);
    auto add = [&](int m) {
      const double w = sj * inv_sqrt_deg(m);
      const double* r = projected_.RowPtr(m);
      for (int c = 0; c < k; ++c) out[c] += w * r[c];
    };
    add(j);
    for (int m : graph.Neighbors(j)) add(m);
  };

  std::vector<double> z(k, 0.0), u(k);
  const double st = inv_sqrt_deg(node);
  auto accumulate = [&](int j) {
    u_row(j, u.data());
    const double w = st * inv_sqrt_deg(j);
    for (int c = 0; c < k; ++c) z[c] += w * u[c];
  };
  accumulate(node);
  for (int j : graph.Neighbors(node)) accumulate(j);
  return z;
}

std::vector<double> SurrogateEdgeGradient(const SurrogateModel& model,
                                          const Graph& graph, int target,
                                          int label) {
  const Matrix& r = model.projected();
  ANECI_CHECK(!r.empty());
  const int n = graph.num_nodes();
  const int k = r.cols();
  const SparseMatrix s_norm = graph.NormalizedAdjacency();

  // Target logits and loss gradient g = softmax(z_t) - onehot(label).
  Matrix u = s_norm.Multiply(r);
  std::vector<double> z(k, 0.0);
  for (int64_t e = s_norm.row_ptr()[target]; e < s_norm.row_ptr()[target + 1];
       ++e) {
    const double w = s_norm.values()[e];
    const double* urow = u.RowPtr(s_norm.col_idx()[e]);
    for (int c = 0; c < k; ++c) z[c] += w * urow[c];
  }
  double mx = z[0];
  for (int c = 1; c < k; ++c) mx = std::max(mx, z[c]);
  double sum = 0.0;
  std::vector<double> g(k);
  for (int c = 0; c < k; ++c) {
    g[c] = std::exp(z[c] - mx);
    sum += g[c];
  }
  for (int c = 0; c < k; ++c) g[c] = g[c] / sum - (c == label ? 1.0 : 0.0);

  // Gvec_j = g . R_j; sg = S~ Gvec.
  std::vector<double> gvec(n, 0.0);
  for (int j = 0; j < n; ++j) {
    const double* rrow = r.RowPtr(j);
    for (int c = 0; c < k; ++c) gvec[j] += g[c] * rrow[c];
  }
  std::vector<double> sg(n, 0.0);
  for (int a = 0; a < n; ++a) {
    for (int64_t e = s_norm.row_ptr()[a]; e < s_norm.row_ptr()[a + 1]; ++e) {
      sg[a] += s_norm.values()[e] * gvec[s_norm.col_idx()[e]];
    }
  }

  const double dt = graph.Degree(target) + 1.0;
  const double s_tt = 1.0 / dt;
  std::vector<double> grad(n, 0.0);
  for (int v = 0; v < n; ++v) {
    if (v == target) continue;
    const double dv = graph.Degree(v) + 1.0;
    const double s_tv =
        graph.HasEdge(target, v) ? 1.0 / std::sqrt(dt * dv) : 0.0;
    grad[v] =
        (sg[v] + s_tt * gvec[v] + s_tv * gvec[target]) / std::sqrt(dt * dv);
  }
  return grad;
}

std::vector<int> SelectAttackTargets(const Dataset& dataset, int min_targets,
                                     int max_targets, Rng& rng) {
  const Graph& graph = dataset.graph;
  std::vector<int> qualified;
  for (int i : dataset.test_idx)
    if (graph.Degree(i) > 10) qualified.push_back(i);

  if (static_cast<int>(qualified.size()) < min_targets) {
    // Fall back to the highest-degree test nodes.
    std::vector<int> pool = dataset.test_idx;
    std::sort(pool.begin(), pool.end(), [&](int a, int b) {
      return graph.Degree(a) > graph.Degree(b);
    });
    qualified.assign(pool.begin(),
                     pool.begin() + std::min<size_t>(pool.size(), min_targets));
  }
  // Shuffle and cap.
  for (int i = static_cast<int>(qualified.size()) - 1; i > 0; --i)
    std::swap(qualified[i], qualified[rng.NextInt(i + 1)]);
  if (static_cast<int>(qualified.size()) > max_targets)
    qualified.resize(max_targets);
  return qualified;
}

}  // namespace aneci

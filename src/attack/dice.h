// DICE ("delete internally, connect externally") — the classic label-aware
// heuristic poisoning baseline: remove edges inside the target's community
// and add edges to nodes of other classes. Stronger than random attack but
// requires labels; a useful middle rung between random and NETTACK for the
// robustness comparisons.
#ifndef ANECI_ATTACK_DICE_H_
#define ANECI_ATTACK_DICE_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace aneci {

struct DiceOptions {
  /// Fraction of |E| perturbations to perform (half deletions, half
  /// insertions where feasible).
  double budget = 0.2;
};

struct DiceResult {
  Graph attacked;
  int edges_deleted = 0;
  int edges_added = 0;
};

/// Requires graph.has_labels(). Non-targeted poisoning over the whole graph.
DiceResult DiceAttack(const Graph& graph, const DiceOptions& options,
                      Rng& rng);

}  // namespace aneci

#endif  // ANECI_ATTACK_DICE_H_

// Linearised two-layer GCN surrogate shared by FGA and NETTACK:
//   Z = softmax(S~^2 X W),  S~ = D^{-1/2} (A + I) D^{-1/2}.
// Both attacks train it on the clean graph's train split, then manipulate
// edges to change targeted predictions.
#ifndef ANECI_ATTACK_SURROGATE_H_
#define ANECI_ATTACK_SURROGATE_H_

#include <vector>

#include "data/datasets.h"
#include "graph/graph.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "util/rng.h"

namespace aneci {

class SurrogateModel {
 public:
  struct Options {
    int epochs = 100;
    double lr = 0.05;
    double weight_decay = 5e-4;
  };

  explicit SurrogateModel(const Options& options) : options_(options) {}
  SurrogateModel() : options_() {}

  /// Trains W on dataset.train_idx of the given graph (which may differ from
  /// dataset.graph if already perturbed).
  void Fit(const Graph& graph, const Dataset& dataset, Rng& rng);

  /// (d x k) trained weights.
  const Matrix& weights() const { return weights_; }

  /// R = X W, the class-space projection of the raw features (N x k); the
  /// attacks' incremental updates are linear in R.
  const Matrix& projected() const { return projected_; }

  /// Full logits S~^2 R for an arbitrary (possibly perturbed) graph.
  Matrix Logits(const Graph& graph) const;

  /// Logits row of a single node under `graph`, recomputed locally in
  /// O(deg(t) * avg_deg * k) — used by NETTACK's candidate scoring.
  std::vector<double> LogitsForNode(const Graph& graph, int node) const;

 private:
  Options options_;
  Matrix weights_;
  Matrix projected_;
};

/// The paper's target-selection rule: test nodes with degree > 10; when
/// fewer than `min_targets` qualify, the highest-degree test nodes fill in.
std::vector<int> SelectAttackTargets(const Dataset& dataset, int min_targets,
                                     int max_targets, Rng& rng);

/// Gradient of the target's surrogate cross-entropy loss wrt each potential
/// edge A_{target,v}, with the degree normalisation frozen at `graph`:
///   dL/dA_tv = [ (S~ Gvec)_v + s_tt Gvec_v + s_tv Gvec_t ]
///              / sqrt((d_t+1)(d_v+1)),
/// where Gvec = R (softmax(z_t) - onehot(label)) and s_tv is the current
/// normalised weight (0 when the edge is absent). Entry `target` is 0. This
/// is the saliency FGA ranks candidate flips by; exposed so tests can check
/// it against finite differences of the frozen-normalisation loss.
std::vector<double> SurrogateEdgeGradient(const SurrogateModel& model,
                                          const Graph& graph, int target,
                                          int label);

}  // namespace aneci

#endif  // ANECI_ATTACK_SURROGATE_H_

// Random attack (non-targeted poisoning): injects |E*| = delta * |E| fake
// edges chosen uniformly among absent pairs. Used by Fig. 2's defense-score
// analysis and Fig. 5's non-targeted defense evaluation.
#ifndef ANECI_ATTACK_RANDOM_ATTACK_H_
#define ANECI_ATTACK_RANDOM_ATTACK_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace aneci {

struct RandomAttackResult {
  Graph attacked;
  std::vector<Edge> fake_edges;  ///< E*, disjoint from the original E.
};

/// Perturbation rate delta in [0, 1): adds round(delta * M) fake edges.
RandomAttackResult RandomAttack(const Graph& graph, double delta, Rng& rng);

/// Symmetric perturbation used by adversarial training and randomised
/// smoothing: performs `flips` edge flips, each removing a uniformly chosen
/// existing edge or adding a uniformly chosen absent pair with equal
/// probability. The graph stays simple (no self-loops, no duplicates).
Graph BudgetedEdgeFlips(const Graph& graph, int flips, Rng& rng);

}  // namespace aneci

#endif  // ANECI_ATTACK_RANDOM_ATTACK_H_

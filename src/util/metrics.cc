#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "util/env.h"
#include "util/trace.h"

namespace aneci {

namespace metrics_internal {

std::atomic<bool> g_enabled{true};

int AcquireShardIndex() {
  static std::atomic<int> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
}

}  // namespace metrics_internal

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }
double BitsDouble(uint64_t b) { return std::bit_cast<double>(b); }

void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t old = bits->load(kRelaxed);
  while (!bits->compare_exchange_weak(old, DoubleBits(BitsDouble(old) + delta),
                                      kRelaxed)) {
  }
}

void AtomicMinDouble(std::atomic<uint64_t>* bits, double v) {
  uint64_t old = bits->load(kRelaxed);
  while (BitsDouble(old) > v &&
         !bits->compare_exchange_weak(old, DoubleBits(v), kRelaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<uint64_t>* bits, double v) {
  uint64_t old = bits->load(kRelaxed);
  while (BitsDouble(old) < v &&
         !bits->compare_exchange_weak(old, DoubleBits(v), kRelaxed)) {
  }
}

}  // namespace

const char* MetricClassName(MetricClass cls) {
  return cls == MetricClass::kDeterministic ? "det" : "sched";
}

uint64_t Counter::Value() const {
  uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard.value.load(kRelaxed);
  return sum;
}

void Counter::Reset() {
  for (auto& shard : shards_) shard.value.store(0, kRelaxed);
}

void Gauge::Set(double value) {
  if (!MetricsEnabled()) return;
  bits_.store(DoubleBits(value), kRelaxed);
}

double Gauge::Value() const { return BitsDouble(bits_.load(kRelaxed)); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      sum_bits_(DoubleBits(0.0)),
      min_bits_(DoubleBits(std::numeric_limits<double>::infinity())),
      max_bits_(DoubleBits(-std::numeric_limits<double>::infinity())) {}

void Histogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  size_t b = 0;
  while (b < bounds_.size() && value > bounds_[b]) ++b;
  buckets_[b].fetch_add(1, kRelaxed);
  count_.fetch_add(1, kRelaxed);
  AtomicAddDouble(&sum_bits_, value);
  AtomicMinDouble(&min_bits_, value);
  AtomicMaxDouble(&max_bits_, value);
}

uint64_t Histogram::Count() const { return count_.load(kRelaxed); }
double Histogram::Sum() const { return BitsDouble(sum_bits_.load(kRelaxed)); }
double Histogram::Min() const { return BitsDouble(min_bits_.load(kRelaxed)); }
double Histogram::Max() const { return BitsDouble(max_bits_.load(kRelaxed)); }

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(kRelaxed);
  return out;
}

double HistogramQuantile(const Histogram& histogram, double q) {
  const uint64_t count = histogram.Count();
  if (count == 0) return 0.0;
  if (q <= 0.0) return histogram.Min();
  if (q >= 1.0) return histogram.Max();
  const std::vector<uint64_t> buckets = histogram.BucketCounts();
  const std::vector<double>& bounds = histogram.bounds();
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // Interpolate inside bucket i: lower edge is the previous bound (or the
    // observed min for the first bucket), upper edge the bucket's bound (or
    // the observed max for the overflow bucket).
    const double lo = i == 0 ? std::min(histogram.Min(), bounds.front())
                             : bounds[i - 1];
    const double hi = i < bounds.size() ? bounds[i] : histogram.Max();
    if (buckets[i] == 0 || hi <= lo) return hi;
    const double within =
        (rank - static_cast<double>(cumulative - buckets[i])) /
        static_cast<double>(buckets[i]);
    // Clamp to the observed range: interpolation inside a coarse bucket must
    // never report a quantile outside [Min, Max] (e.g. p50 > max when every
    // observation sits below the first bound).
    return std::clamp(lo + within * (hi - lo), histogram.Min(),
                      histogram.Max());
  }
  return histogram.Max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, kRelaxed);
  count_.store(0, kRelaxed);
  sum_bits_.store(DoubleBits(0.0), kRelaxed);
  min_bits_.store(DoubleBits(std::numeric_limits<double>::infinity()),
                  kRelaxed);
  max_bits_.store(DoubleBits(-std::numeric_limits<double>::infinity()),
                  kRelaxed);
}

void TelemetryRing::Append(std::string json_line) {
  if (!MetricsEnabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (lines_.size() == capacity_ && capacity_ > 0) {
    lines_.pop_front();
    ++dropped_;
  }
  if (capacity_ > 0) lines_.push_back(std::move(json_line));
}

std::vector<std::string> TelemetryRing::Lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {lines_.begin(), lines_.end()};
}

uint64_t TelemetryRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TelemetryRing::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.clear();
  dropped_ = 0;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     MetricClass cls) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) return it->second.counter;
  counters_.emplace_back();
  Entry entry;
  entry.kind = "counter";
  entry.cls = cls;
  entry.counter = &counters_.back();
  entries_.emplace(name, entry);
  return entry.counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, MetricClass cls) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) return it->second.gauge;
  gauges_.emplace_back();
  Entry entry;
  entry.kind = "gauge";
  entry.cls = cls;
  entry.gauge = &gauges_.back();
  entries_.emplace(name, entry);
  return entry.gauge;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         MetricClass cls) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) return it->second.histogram;
  histograms_.emplace_back(std::move(bounds));
  Entry entry;
  entry.kind = "histogram";
  entry.cls = cls;
  entry.histogram = &histograms_.back();
  entries_.emplace(name, entry);
  return entry.histogram;
}

TelemetryRing* MetricsRegistry::GetRing(const std::string& name,
                                        size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rings_.find(name);
  if (it != rings_.end()) return it->second;
  ring_storage_.emplace_back(capacity);
  rings_.emplace(name, &ring_storage_.back());
  return &ring_storage_.back();
}

void MetricsRegistry::set_enabled(bool enabled) {
  metrics_internal::g_enabled.store(enabled, kRelaxed);
}

std::vector<MetricRecord> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricRecord> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricRecord rec;
    rec.name = name;
    rec.kind = entry.kind;
    rec.cls = entry.cls;
    if (entry.counter != nullptr) {
      rec.count = entry.counter->Value();
    } else if (entry.gauge != nullptr) {
      rec.value = entry.gauge->Value();
    } else {
      rec.count = entry.histogram->Count();
      rec.value = entry.histogram->Sum();
      rec.min = entry.histogram->Min();
      rec.max = entry.histogram->Max();
      rec.bounds = entry.histogram->bounds();
      rec.buckets = entry.histogram->BucketCounts();
    }
    out.push_back(std::move(rec));
  }
  return out;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    (void)name;
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.gauge != nullptr) entry.gauge->Reset();
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
  for (auto& [name, ring] : rings_) {
    (void)name;
    ring->Reset();
  }
}

std::string JsonDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string U64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string DoubleArrayJson(const std::vector<double>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonDouble(values[i]);
  }
  return out + "]";
}

std::string U64ArrayJson(const std::vector<uint64_t>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += U64(values[i]);
  }
  return out + "]";
}

std::string MetricLineJson(const MetricRecord& rec) {
  std::string line = "{\"type\":\"" + rec.kind + "\",\"name\":\"" +
                     JsonEscape(rec.name) + "\",\"class\":\"" +
                     MetricClassName(rec.cls) + "\"";
  if (rec.kind == "counter") {
    line += ",\"value\":" + U64(rec.count);
  } else if (rec.kind == "gauge") {
    line += ",\"value\":" + JsonDouble(rec.value);
  } else {
    line += ",\"count\":" + U64(rec.count) + ",\"sum\":" + JsonDouble(rec.value);
    if (rec.count > 0) {
      line += ",\"min\":" + JsonDouble(rec.min) +
              ",\"max\":" + JsonDouble(rec.max);
    }
    line += ",\"bounds\":" + DoubleArrayJson(rec.bounds) +
            ",\"buckets\":" + U64ArrayJson(rec.buckets);
  }
  return line + "}";
}

}  // namespace

std::vector<std::string> MetricsRegistry::SnapshotJsonl() const {
  std::vector<std::string> lines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, ring] : rings_) {
      (void)name;
      for (std::string& line : ring->Lines()) lines.push_back(std::move(line));
    }
  }
  for (const MetricRecord& rec : Snapshot()) {
    lines.push_back(MetricLineJson(rec));
  }
  return lines;
}

std::string MetricsRegistry::SnapshotJson() const {
  std::string counters, gauges, histograms;
  for (const MetricRecord& rec : Snapshot()) {
    std::string* section = rec.kind == "counter"  ? &counters
                           : rec.kind == "gauge" ? &gauges
                                                 : &histograms;
    if (!section->empty()) *section += ",";
    *section += "\"" + JsonEscape(rec.name) + "\":";
    if (rec.kind == "counter") {
      *section += U64(rec.count);
    } else if (rec.kind == "gauge") {
      *section += JsonDouble(rec.value);
    } else {
      *section += "{\"count\":" + U64(rec.count) +
                  ",\"sum\":" + JsonDouble(rec.value) +
                  ",\"bounds\":" + DoubleArrayJson(rec.bounds) +
                  ",\"buckets\":" + U64ArrayJson(rec.buckets) + "}";
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

Status WriteMetricsJsonl(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  std::string out;
  for (const std::string& line : MetricsRegistry::Global().SnapshotJsonl()) {
    out += line;
    out += '\n';
  }
  for (const SpanStat& span : TraceRegistry::Global().Snapshot()) {
    out += "{\"type\":\"span_count\",\"name\":\"" + JsonEscape(span.path) +
           "\",\"class\":\"det\",\"value\":" + U64(span.count) + "}\n";
  }
  for (const SpanStat& span : TraceRegistry::Global().Snapshot()) {
    out += "{\"type\":\"span_time\",\"name\":\"" + JsonEscape(span.path) +
           "\",\"class\":\"sched\",\"total_ms\":" + JsonDouble(span.total_ms) +
           ",\"min_ms\":" + JsonDouble(span.min_ms) +
           ",\"max_ms\":" + JsonDouble(span.max_ms) + "}\n";
  }
  return env->WriteFileAtomic(path, out);
}

// ---------------------------------------------------------------------------
// stats pretty-printer
// ---------------------------------------------------------------------------

namespace {

/// Finds `"key":` in a single JSONL object and returns the character index
/// just past the colon, or npos.
size_t FindValue(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return std::string::npos;
  return pos + needle.size();
}

bool ExtractString(const std::string& line, const std::string& key,
                   std::string* out) {
  size_t pos = FindValue(line, key);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '"')
    return false;
  const size_t end = line.find('"', pos + 1);
  if (end == std::string::npos) return false;
  *out = line.substr(pos + 1, end - pos - 1);
  return true;
}

bool ExtractDouble(const std::string& line, const std::string& key,
                   double* out) {
  const size_t pos = FindValue(line, key);
  if (pos == std::string::npos) return false;
  char* end = nullptr;
  *out = std::strtod(line.c_str() + pos, &end);
  return end != line.c_str() + pos;
}

std::string FormatCount(uint64_t v) { return U64(v); }

/// Compact human form: integers render bare, other doubles with %.6g.
std::string FormatValue(double v) {
  char buf[64];
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

struct StatsLine {
  std::string type;
  std::string name;
  std::string cls;
  std::string raw;
};

void AppendRow(std::string* out, const std::string& name,
               const std::string& value, const std::string& suffix) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-44s %12s%s\n", name.c_str(),
                value.c_str(), suffix.c_str());
  *out += buf;
}

}  // namespace

StatusOr<std::string> FormatStatsReport(const std::string& jsonl,
                                        bool zero_timings) {
  std::vector<StatsLine> counters, gauges, histograms, span_counts, span_times,
      epochs, events, others;
  int line_no = 0;
  size_t start = 0;
  while (start <= jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    StatsLine parsed;
    parsed.raw = line;
    if (line.front() != '{' || !ExtractString(line, "type", &parsed.type)) {
      return Status::InvalidArgument("stats: line " + std::to_string(line_no) +
                                     " is not a metrics JSONL record");
    }
    (void)ExtractString(line, "name", &parsed.name);
    (void)ExtractString(line, "class", &parsed.cls);
    if (parsed.type == "counter") {
      counters.push_back(std::move(parsed));
    } else if (parsed.type == "gauge") {
      gauges.push_back(std::move(parsed));
    } else if (parsed.type == "histogram") {
      histograms.push_back(std::move(parsed));
    } else if (parsed.type == "span_count") {
      span_counts.push_back(std::move(parsed));
    } else if (parsed.type == "span_time") {
      span_times.push_back(std::move(parsed));
    } else if (parsed.type == "epoch") {
      epochs.push_back(std::move(parsed));
    } else if (parsed.type == "event") {
      events.push_back(std::move(parsed));
    } else {
      others.push_back(std::move(parsed));
    }
  }

  // span_time totals keyed by path, for the span table.
  std::map<std::string, double> span_ms;
  for (const StatsLine& s : span_times) {
    double total = 0.0;
    (void)ExtractDouble(s.raw, "total_ms", &total);
    span_ms[s.name] = zero_timings ? 0.0 : total;
  }

  char head[160];
  std::snprintf(head, sizeof(head),
                "metrics report: %zu counters, %zu gauges, %zu histograms, "
                "%zu spans, %zu epoch records\n",
                counters.size(), gauges.size(), histograms.size(),
                span_counts.size(), epochs.size());
  std::string out = head;

  if (!counters.empty()) {
    out += "\ncounters\n";
    for (const StatsLine& c : counters) {
      double value = 0.0;
      (void)ExtractDouble(c.raw, "value", &value);
      AppendRow(&out, c.name, FormatValue(value),
                c.cls == "sched" ? "  [sched]" : "");
    }
  }
  if (!gauges.empty()) {
    out += "\ngauges\n";
    for (const StatsLine& g : gauges) {
      double value = 0.0;
      (void)ExtractDouble(g.raw, "value", &value);
      if (zero_timings && g.cls == "sched") value = 0.0;
      AppendRow(&out, g.name, FormatValue(value),
                g.cls == "sched" ? "  [sched]" : "");
    }
  }
  if (!histograms.empty()) {
    out += "\nhistograms\n";
    for (const StatsLine& h : histograms) {
      double count = 0.0, sum = 0.0;
      (void)ExtractDouble(h.raw, "count", &count);
      (void)ExtractDouble(h.raw, "sum", &sum);
      if (zero_timings && h.cls != "det") sum = 0.0;
      char buf[160];
      std::snprintf(buf, sizeof(buf), "  %-44s count=%s sum=%s%s\n",
                    h.name.c_str(),
                    FormatCount(static_cast<uint64_t>(count)).c_str(),
                    FormatValue(sum).c_str(),
                    h.cls == "sched" ? "  [sched]" : "");
      out += buf;
    }
  }
  if (!span_counts.empty()) {
    out += zero_timings ? "\nspans (count, total ms; timings zeroed)\n"
                        : "\nspans (count, total ms)\n";
    for (const StatsLine& s : span_counts) {
      double count = 0.0;
      (void)ExtractDouble(s.raw, "value", &count);
      const auto it = span_ms.find(s.name);
      const double ms = it == span_ms.end() ? 0.0 : it->second;
      char buf[192];
      std::snprintf(buf, sizeof(buf), "  %-44s %10s %12.3f\n", s.name.c_str(),
                    FormatCount(static_cast<uint64_t>(count)).c_str(), ms);
      out += buf;
    }
  }
  if (!epochs.empty()) {
    double first_loss = 0.0, last_loss = 0.0, first_epoch = 0.0,
           last_epoch = 0.0;
    (void)ExtractDouble(epochs.front().raw, "loss", &first_loss);
    (void)ExtractDouble(epochs.front().raw, "epoch", &first_epoch);
    (void)ExtractDouble(epochs.back().raw, "loss", &last_loss);
    (void)ExtractDouble(epochs.back().raw, "epoch", &last_epoch);
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "\ntraining: %zu epoch records (epoch %s loss %s -> epoch "
                  "%s loss %s)\n",
                  epochs.size(), FormatValue(first_epoch).c_str(),
                  FormatValue(first_loss).c_str(),
                  FormatValue(last_epoch).c_str(),
                  FormatValue(last_loss).c_str());
    out += buf;
  }
  if (!events.empty()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\nevents: %zu\n", events.size());
    out += buf;
    for (const StatsLine& e : events) {
      double epoch = -1.0;
      const bool has_epoch = ExtractDouble(e.raw, "epoch", &epoch);
      AppendRow(&out, e.name,
                has_epoch ? "epoch " + FormatValue(epoch) : std::string("-"),
                "");
    }
  }
  if (!others.empty()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\nunrecognized records: %zu\n",
                  others.size());
    out += buf;
  }
  return out;
}

}  // namespace aneci

#include "util/env.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace aneci {

StatusOr<std::string> Env::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return buffer.str();
}

Status Env::WriteFileAtomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for write: " + tmp);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

bool Env::FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return static_cast<bool>(in);
}

Status Env::RenameFile(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0)
    return Status::IoError("rename failed: " + from + " -> " + to);
  return Status::OK();
}

Status Env::RemoveFile(const std::string& path) {
  if (std::remove(path.c_str()) != 0)
    return Status::IoError("remove failed: " + path);
  return Status::OK();
}

Status Env::CreateDir(const std::string& path) {
  if (mkdir(path.c_str(), 0755) != 0 && errno != EEXIST)
    return Status::IoError("mkdir failed: " + path);
  return Status::OK();
}

Env* Env::Default() {
  static Env* env = new Env();
  return env;
}

StatusOr<std::string> FaultInjectingEnv::ReadFile(const std::string& path) {
  return base_->ReadFile(path);
}

Status FaultInjectingEnv::WriteFileAtomic(const std::string& path,
                                          std::string_view data) {
  const int index = writes_++;
  if (index == plan.fail_write)
    return Status::IoError("injected write failure: " + path);
  std::string mutated(data);
  if (index == plan.truncate_write && plan.truncate_bytes < mutated.size())
    mutated.resize(plan.truncate_bytes);
  if (index == plan.bitflip_write && plan.bitflip_byte < mutated.size())
    mutated[plan.bitflip_byte] ^=
        static_cast<char>(1u << (plan.bitflip_bit & 7));
  return base_->WriteFileAtomic(path, mutated);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

Status FaultInjectingEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

}  // namespace aneci

#include "util/table.h"

#include <cstdio>

#include "util/check.h"

namespace aneci {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::AddRow() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Add(std::string cell) {
  ANECI_CHECK_MSG(!rows_.empty(), "call AddRow() before Add()");
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::AddF(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return Add(buf);
}

Table& Table::AddMeanStd(double mean, double std, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f±%.*f", precision, mean, precision, std);
  return Add(buf);
}

void Table::Print(const std::string& title) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  std::printf("\n== %s ==\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(width[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

std::string Table::ToCsv() const {
  std::string out;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return out;
}

Status Table::WriteCsv(const std::string& path, Env* env) const {
  if (!env) env = Env::Default();
  return env->WriteFileAtomic(path, ToCsv());
}

}  // namespace aneci

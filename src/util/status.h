// Lightweight Status / StatusOr for fallible operations (IO, parsing, config
// validation). Internal invariants use ANECI_CHECK instead. Modeled on the
// Arrow/Abseil convention: functions that can fail return Status or
// StatusOr<T>; Status::OK() is success.
#ifndef ANECI_UTIL_STATUS_H_
#define ANECI_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace aneci {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,
};

/// Result of a fallible operation: a code plus a human-readable message.
/// [[nodiscard]] on the class makes silently dropping any returned Status a
/// compile-time diagnostic (-Werror=unused-result); aneci_lint's
/// discarded-status check enforces the same invariant pre-build.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// A time budget (socket read/write deadline, per-request deadline) ran
  /// out before the operation completed.
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// The service is shedding load (connection cap, pending-request budget);
  /// the request was rejected without being executed and is safe to retry.
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of T or an error Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work,
  // mirroring absl::StatusOr.
  StatusOr(T value) : payload_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : payload_(std::move(status)) {  // NOLINT
    ANECI_CHECK_MSG(!std::get<Status>(payload_).ok(),
                    "StatusOr constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  /// Precondition: ok().
  const T& value() const& {
    ANECI_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(payload_);
  }
  T& value() & {
    ANECI_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(payload_);
  }
  T&& value() && {
    ANECI_CHECK_MSG(ok(), status().ToString().c_str());
    return std::move(std::get<T>(payload_));
  }

 private:
  std::variant<T, Status> payload_;
};

#define ANECI_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::aneci::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

// Unwraps a StatusOr<T> into `lhs` (which may be a declaration) or
// early-returns its error, replacing the hand-rolled
//   auto v = Fallible(); if (!v.ok()) return v.status();
// ladder:
//   ANECI_ASSIGN_OR_RETURN(const std::string bytes, env->ReadFile(path));
// Works in functions returning Status or StatusOr<U> (Status converts).
#define ANECI_ASSIGN_OR_RETURN(lhs, expr)                                   \
  ANECI_ASSIGN_OR_RETURN_IMPL_(ANECI_STATUS_CONCAT_(_status_or_, __LINE__), \
                               lhs, expr)
#define ANECI_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()
#define ANECI_STATUS_CONCAT_(a, b) ANECI_STATUS_CONCAT_IMPL_(a, b)
#define ANECI_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace aneci

#endif  // ANECI_UTIL_STATUS_H_

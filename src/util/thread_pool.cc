#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "util/metrics.h"

namespace aneci {
namespace {

// Set while a thread (worker or caller) is inside a chunk body; nested
// ParallelFor calls see it and fall back to the serial path.
thread_local bool tl_in_parallel_region = false;

int ThreadsFromEnv() {
  const char* env = std::getenv("ANECI_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024)
      return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// State shared between the caller and the helper tasks of one ParallelFor.
// Held by shared_ptr so a helper that wakes up after the caller has already
// returned (all chunks claimed) still touches valid memory.
struct ForJob {
  int64_t begin = 0;
  int64_t grain = 1;
  int64_t end = 0;
  int64_t num_chunks = 0;
  const std::function<void(int64_t, int64_t, int64_t)>* fn = nullptr;

  std::atomic<int64_t> next_chunk{0};
  std::atomic<bool> cancelled{false};

  std::mutex mu;
  std::condition_variable done_cv;
  // pending_helpers is written once before the helpers are published and
  // then only under mu (always via the shared_ptr, so it stays unannotated:
  // pointer accesses are outside the lexical checker's scope).
  int pending_helpers = 0;
  std::exception_ptr error ANECI_GUARDED_BY(mu);

  // Claims chunks off the shared counter until none remain (or a chunk
  // threw). Dynamic claiming only decides WHICH thread runs a chunk; the
  // chunk boundaries themselves are fixed, so outputs stay deterministic.
  void RunChunks() {
    const bool saved = tl_in_parallel_region;
    tl_in_parallel_region = true;
    while (!cancelled.load(std::memory_order_relaxed)) {
      const int64_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      const int64_t lo = begin + c * grain;
      const int64_t hi = std::min(end, lo + grain);
      try {
        (*fn)(lo, hi, c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        cancelled.store(true, std::memory_order_relaxed);
      }
    }
    tl_in_parallel_region = saved;
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) { Start(num_threads); }

ThreadPool::~ThreadPool() { Stop(); }

void ThreadPool::Start(int num_threads) {
  num_threads_ = std::max(1, num_threads);
  {
    // No workers exist yet, but shutdown_ is guarded: a Resize() racing a
    // stale reader would otherwise publish the store without an edge.
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = false;
  }
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

void ThreadPool::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // Orphaned tasks (enqueued but never claimed) are dropped; ParallelFor
  // never depends on helpers actually running. The workers are joined, but
  // the queue is still guarded state — clear it under its lock.
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.clear();
  }
}

void ThreadPool::Resize(int num_threads) {
  Stop();
  Start(num_threads);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

bool ThreadPool::InParallelRegion() { return tl_in_parallel_region; }

void ThreadPool::ParallelForChunks(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const int64_t num_chunks = NumChunks(begin, end, grain);

  // The number of ParallelFor invocations is a property of the program, so
  // calls is a deterministic counter. Chunk counts are NOT: some callers
  // (SpGEMM, transposed SpMM) size their grain from NumThreads(), so chunks
  // — like the serial-path and helper-task tallies — is scheduling-class.
  static Counter* calls = MetricsRegistry::Global().GetCounter(
      "threadpool/parallel_for/calls", MetricClass::kDeterministic);
  static Counter* chunks = MetricsRegistry::Global().GetCounter(
      "threadpool/parallel_for/chunks", MetricClass::kScheduling);
  static Counter* serial_fallbacks = MetricsRegistry::Global().GetCounter(
      "threadpool/serial_fallbacks", MetricClass::kScheduling);
  static Counter* helper_tasks = MetricsRegistry::Global().GetCounter(
      "threadpool/helper_tasks", MetricClass::kScheduling);
  calls->Increment();
  chunks->Add(static_cast<uint64_t>(num_chunks));

  // Serial path: pool of one, a single chunk, or a nested call from inside
  // another chunk body. Executes the same chunks in the same order, so the
  // result is identical to the threaded path by construction.
  if (num_threads_ <= 1 || num_chunks == 1 || InParallelRegion()) {
    serial_fallbacks->Increment();
    const bool saved = tl_in_parallel_region;
    tl_in_parallel_region = true;
    for (int64_t c = 0; c < num_chunks; ++c) {
      const int64_t lo = begin + c * grain;
      const int64_t hi = std::min(end, lo + grain);
      try {
        fn(lo, hi, c);
      } catch (...) {
        tl_in_parallel_region = saved;
        throw;
      }
    }
    tl_in_parallel_region = saved;
    return;
  }

  auto job = std::make_shared<ForJob>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->fn = &fn;

  const int helpers = static_cast<int>(
      std::min<int64_t>(num_threads_ - 1, num_chunks - 1));
  helper_tasks->Add(static_cast<uint64_t>(helpers));
  job->pending_helpers = helpers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < helpers; ++i) {
      tasks_.emplace_back([job] {
        job->RunChunks();
        {
          std::lock_guard<std::mutex> jlock(job->mu);
          --job->pending_helpers;
        }
        job->done_cv.notify_one();
      });
    }
  }
  cv_.notify_all();

  // The caller works too; with one core this is where all chunks run.
  job->RunChunks();

  std::unique_lock<std::mutex> jlock(job->mu);
  job->done_cv.wait(jlock, [&job] { return job->pending_helpers == 0; });
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  ParallelForChunks(begin, end, grain,
                    [&fn](int64_t lo, int64_t hi, int64_t) { fn(lo, hi); });
}

ThreadPool& ThreadPool::Global() {
  // Leaked intentionally: workers must not be joined during static
  // destruction (kernels may run from other static destructors).
  static ThreadPool* pool = new ThreadPool(ThreadsFromEnv());
  return *pool;
}

int NumThreads() { return ThreadPool::Global().num_threads(); }

void SetNumThreads(int num_threads) {
  ThreadPool::Global().Resize(std::max(1, num_threads));
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

void ParallelForChunks(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  ThreadPool::Global().ParallelForChunks(begin, end, grain, fn);
}

}  // namespace aneci

// Process-global observability registry: named counters, gauges, and
// fixed-bucket histograms, plus a bounded telemetry ring of pre-rendered
// JSONL records (per-epoch training stats). Dependency-free and thread-safe.
//
// Determinism contract (see docs/observability.md):
//
//  * Counters are sharded per thread: Add() bumps one relaxed atomic slot,
//    Value() sums the slots. Integer addition is commutative, so merged
//    counter values depend only on *what work ran*, never on which thread
//    ran it — a counter of work items reports the same value at
//    ANECI_THREADS=1, 4 or 7.
//  * Every metric carries a MetricClass. kDeterministic metrics (work-item
//    counts, epoch losses) must be byte-identical across thread counts and
//    are compared by the determinism checks. kScheduling metrics (wall
//    time, helper-thread chunk claims, serial fallbacks) legitimately vary
//    and are excluded, the same way timings are.
//  * Snapshots iterate metrics in name order and render doubles with
//    %.17g, so two snapshots of identical state are byte-identical.
//
// Instrumentation can be turned off at runtime (MetricsRegistry::
// set_enabled(false)); a disabled Add()/Observe() is a single relaxed
// atomic load, which is how bench_kernels measures instrumentation
// overhead against a no-op registry.
#ifndef ANECI_UTIL_METRICS_H_
#define ANECI_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace aneci {

class Env;

/// Classifies a metric for the determinism contract: kDeterministic values
/// must be identical for every ANECI_THREADS setting; kScheduling values
/// (timings, steal counts, serial fallbacks) may vary run to run.
enum class MetricClass { kDeterministic, kScheduling };

/// "det" or "sched" — the `class` field of every JSONL metric record.
const char* MetricClassName(MetricClass cls);

namespace metrics_internal {

/// Shard count for per-thread striping. A power of two; threads beyond
/// kShards wrap around and share slots (still correct, just contended).
inline constexpr int kShards = 64;

struct alignas(64) ShardSlot {
  std::atomic<uint64_t> value{0};
};

extern std::atomic<bool> g_enabled;

int AcquireShardIndex();

inline int ShardIndex() {
  thread_local const int index = AcquireShardIndex();
  return index;
}

}  // namespace metrics_internal

/// True when instrumentation is recording. Hot paths gate on this before
/// doing any work so a disabled registry costs one relaxed load.
inline bool MetricsEnabled() {
  return metrics_internal::g_enabled.load(std::memory_order_relaxed);
}

/// Monotonic event counter, sharded per thread. Value() merges shards by
/// integer summation, so it is invariant to how work was scheduled.
class Counter {
 public:
  void Add(uint64_t delta) {
    if (!MetricsEnabled()) return;
    shards_[metrics_internal::ShardIndex()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all shards.
  uint64_t Value() const;

  /// Zeroes every shard (used by snapshot-reset cycles in benches/tests).
  void Reset();

 private:
  metrics_internal::ShardSlot shards_[metrics_internal::kShards];
};

/// Last-writer-wins double value (learning rate, residual, config knobs).
class Gauge {
 public:
  void Set(double value);
  double Value() const;
  void Reset() { Set(0.0); }

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations with
/// value <= bounds[i] (first match wins); values above the last bound land
/// in the overflow bucket. Bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t Count() const;
  double Sum() const;
  double Min() const;  ///< +inf when empty.
  double Max() const;  ///< -inf when empty.
  /// Per-bucket counts; size() == bounds().size() + 1 (overflow last).
  std::vector<uint64_t> BucketCounts() const;
  const std::vector<double>& bounds() const { return bounds_; }

  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_;
  std::atomic<uint64_t> min_bits_;
  std::atomic<uint64_t> max_bits_;
};

/// Estimated q-quantile (q in [0, 1]) of a fixed-bucket histogram, by
/// linear interpolation within the bucket containing the rank. Exact at the
/// recorded Min()/Max() for q=0/1; bucket-resolution accurate in between
/// (always clamped to the observed [Min, Max]) — good enough for p50/p99
/// latency reporting, not for golden comparisons.
double HistogramQuantile(const Histogram& histogram, double q);

/// RAII latency probe: observes the elapsed milliseconds of its scope into a
/// histogram on destruction. This is the sanctioned way for instrumented code
/// to time itself — direct util/timer.h use outside util/{timer,trace,
/// metrics} is flagged by the banned-adhoc-timing lint check, which keeps all
/// wall-clock reads inside the observability layer (and hence out of the
/// deterministic metric class).
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram) : histogram_(histogram) {
    if (MetricsEnabled()) timer_.Reset();
  }
  ~ScopedLatencyTimer() {
    if (MetricsEnabled() && histogram_ != nullptr)
      histogram_->Observe(timer_.Millis());
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* histogram_;
  Timer timer_;
};

/// Bounded FIFO of pre-rendered JSONL records. Producers append complete
/// JSON objects (one per line, no trailing newline); when capacity is
/// exceeded the oldest record is dropped and `dropped()` counts it. Used
/// for the per-epoch training telemetry that `--metrics-out` persists.
class TelemetryRing {
 public:
  explicit TelemetryRing(size_t capacity) : capacity_(capacity) {}

  void Append(std::string json_line);

  std::vector<std::string> Lines() const;
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }

  void Reset();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<std::string> lines_ ANECI_GUARDED_BY(mu_);
  uint64_t dropped_ ANECI_GUARDED_BY(mu_) = 0;
};

/// One registered metric, as reported by Snapshot(). `kind` is one of
/// "counter", "gauge", "histogram".
struct MetricRecord {
  std::string name;
  std::string kind;
  MetricClass cls = MetricClass::kDeterministic;
  uint64_t count = 0;        ///< counter value / histogram observation count
  double value = 0.0;        ///< gauge value / histogram sum
  double min = 0.0;          ///< histogram only
  double max = 0.0;          ///< histogram only
  std::vector<double> bounds;        ///< histogram only
  std::vector<uint64_t> buckets;     ///< histogram only
};

/// Process-global registry. Metrics are registered on first use and live
/// for the process lifetime, so hot paths cache the returned pointer in a
/// function-local static:
///
///   static Counter* flops = MetricsRegistry::Global().GetCounter(
///       "linalg/matmul/flops", MetricClass::kDeterministic);
///   flops->Add(2 * m * n * k);
///
/// Re-registering a name returns the existing metric; the class and (for
/// histograms) bounds of the first registration win.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name,
                      MetricClass cls = MetricClass::kDeterministic);
  Gauge* GetGauge(const std::string& name,
                  MetricClass cls = MetricClass::kDeterministic);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          MetricClass cls = MetricClass::kScheduling);
  TelemetryRing* GetRing(const std::string& name, size_t capacity = 4096);

  /// Runtime kill switch; disabled metrics cost one relaxed load per call.
  void set_enabled(bool enabled);
  bool enabled() const { return MetricsEnabled(); }

  /// All metrics, sorted by name (deterministic order).
  std::vector<MetricRecord> Snapshot() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string SnapshotJson() const;

  /// JSONL lines: first every ring record (rings in name order, records in
  /// insertion order), then one line per metric in name order. Each line
  /// carries "class":"det"|"sched"; timing-valued span lines are appended
  /// by WriteMetricsJsonl (see trace.h).
  std::vector<std::string> SnapshotJsonl() const;

  /// Zeroes every metric value and empties every ring, keeping all
  /// registrations (cached pointers stay valid).
  void ResetValues();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  struct Entry {
    std::string kind;
    MetricClass cls;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };
  std::map<std::string, Entry> entries_ ANECI_GUARDED_BY(mu_);
  std::map<std::string, TelemetryRing*> rings_ ANECI_GUARDED_BY(mu_);
  // Node-stable storage: pointers handed out live as long as the process.
  // The containers (registration) are guarded; the *elements* behind the
  // handed-out pointers are internally synchronized (atomics / their own
  // mu_) and accessed lock-free on hot paths.
  std::deque<Counter> counters_ ANECI_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ ANECI_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ ANECI_GUARDED_BY(mu_);
  std::deque<TelemetryRing> ring_storage_ ANECI_GUARDED_BY(mu_);
};

/// Renders `value` with %.17g — enough digits to round-trip a double, and
/// byte-stable for identical bits. All JSON emitted by this layer uses it.
std::string JsonDouble(double value);

/// Minimal JSON string escaping for metric names / messages.
std::string JsonEscape(const std::string& s);

/// Serializes the global registry (rings, metrics) plus the global trace
/// tree (span_count lines are deterministic, span_time lines are not) and
/// writes the JSONL atomically through `env`. This is the implementation
/// behind `aneci_cli --metrics-out=<path>`.
Status WriteMetricsJsonl(const std::string& path, Env* env);

/// Pretty-prints a metrics JSONL file (the `aneci_cli stats` subcommand).
/// With `zero_timings`, every wall-time field renders as 0 so output is
/// byte-stable for golden tests.
StatusOr<std::string> FormatStatsReport(const std::string& jsonl,
                                        bool zero_timings);

}  // namespace aneci

#endif  // ANECI_UTIL_METRICS_H_

#include "util/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <type_traits>

#include "util/byteio.h"
#include "util/metrics.h"

namespace aneci {
namespace {

constexpr char kMagic[4] = {'A', 'N', 'C', 'K'};
// v2 appends the adversarial-training RNG block after the epoch history;
// v1 files (no adversarial training existed then) still parse, with the
// block left zeroed.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinVersion = 1;
constexpr size_t kHeaderSize = 4 + 4 + 8 + 4;

// Scalar encoding lives in util/byteio.h (shared with the serving-artifact
// format); this file keeps only the checkpoint-specific aggregates.
using Reader = ByteReader;

template <typename T>
void PutScalar(std::string* out, T value) {
  PutScalarLe<T>(out, value);
}

void PutDouble(std::string* out, double value) { PutDoubleLe(out, value); }

/// "0xdeadbeef" — CRC values quoted in corruption errors.
std::string HexU32(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

void PutTensors(std::string* out, const std::vector<TensorBlob>& tensors) {
  PutScalar<uint32_t>(out, static_cast<uint32_t>(tensors.size()));
  for (const TensorBlob& t : tensors) {
    PutScalar<int32_t>(out, t.rows);
    PutScalar<int32_t>(out, t.cols);
    for (double v : t.data) PutDouble(out, v);
  }
}

Status GetTensors(Reader* reader, const std::string& origin,
                  std::vector<TensorBlob>* tensors) {
  uint32_t count = 0;
  ANECI_RETURN_IF_ERROR(reader->Get(&count));
  tensors->resize(count);
  for (TensorBlob& t : *tensors) {
    ANECI_RETURN_IF_ERROR(reader->Get(&t.rows));
    ANECI_RETURN_IF_ERROR(reader->Get(&t.cols));
    if (t.rows < 0 || t.cols < 0)
      return Status::InvalidArgument("checkpoint tensor has negative shape: " +
                                     origin);
    t.data.resize(static_cast<size_t>(t.rows) * t.cols);
    for (double& v : t.data) ANECI_RETURN_IF_ERROR(reader->GetDouble(&v));
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  // Reflected CRC-32 with the IEEE 802.3 polynomial; table built on first use.
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i)
    crc = table[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

std::string SerializeCheckpoint(const TrainingCheckpoint& c) {
  std::string payload;
  PutScalar<uint64_t>(&payload, c.config_fingerprint);
  PutScalar<int32_t>(&payload, c.next_epoch);
  PutScalar<int32_t>(&payload, c.adam_step);
  PutDouble(&payload, c.lr);
  PutDouble(&payload, c.best_mod_loss);
  PutScalar<int32_t>(&payload, c.since_best);
  PutScalar<int32_t>(&payload, c.watchdog_rollbacks);
  PutDouble(&payload, c.watchdog_best_abs_loss);
  for (uint64_t s : c.rng_state) PutScalar<uint64_t>(&payload, s);
  PutScalar<uint8_t>(&payload, c.rng_has_gauss);
  PutDouble(&payload, c.rng_gauss);
  PutTensors(&payload, c.params);
  PutTensors(&payload, c.opt_m);
  PutTensors(&payload, c.opt_v);
  PutScalar<uint32_t>(&payload, static_cast<uint32_t>(c.pairs.size()));
  for (const PairBlob& p : c.pairs) {
    PutScalar<int32_t>(&payload, p.u);
    PutScalar<int32_t>(&payload, p.v);
    PutDouble(&payload, p.target);
  }
  PutScalar<uint32_t>(&payload, static_cast<uint32_t>(c.history.size()));
  for (const EpochStatBlob& h : c.history) {
    PutScalar<int32_t>(&payload, h.epoch);
    PutDouble(&payload, h.loss);
    PutDouble(&payload, h.modularity);
    PutDouble(&payload, h.rigidity);
  }
  // v2 trailer: adversarial-training perturbation stream.
  for (uint64_t s : c.adv_rng_state) PutScalar<uint64_t>(&payload, s);
  PutScalar<uint8_t>(&payload, c.adv_rng_has_gauss);
  PutDouble(&payload, c.adv_rng_gauss);

  std::string file;
  file.reserve(kHeaderSize + payload.size());
  file.append(kMagic, sizeof(kMagic));
  PutScalar<uint32_t>(&file, kVersion);
  PutScalar<uint64_t>(&file, static_cast<uint64_t>(payload.size()));
  PutScalar<uint32_t>(&file, Crc32(payload.data(), payload.size()));
  file += payload;
  return file;
}

StatusOr<TrainingCheckpoint> ParseCheckpoint(std::string_view bytes,
                                             const std::string& origin) {
  if (bytes.size() < kHeaderSize)
    return Status::InvalidArgument("checkpoint too short for header: " +
                                   origin);
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return Status::InvalidArgument("not a checkpoint (bad magic): " + origin);

  Reader header(bytes.substr(4, kHeaderSize - 4), "checkpoint header", origin);
  uint32_t version = 0, crc = 0;
  uint64_t payload_size = 0;
  ANECI_RETURN_IF_ERROR(header.Get(&version));
  ANECI_RETURN_IF_ERROR(header.Get(&payload_size));
  ANECI_RETURN_IF_ERROR(header.Get(&crc));
  if (version < kMinVersion || version > kVersion)
    return Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version) +
        " (this build reads versions " + std::to_string(kMinVersion) +
        ".." + std::to_string(kVersion) + "): " + origin);
  if (bytes.size() - kHeaderSize != payload_size)
    return Status::InvalidArgument(
        "checkpoint truncated: header declares " +
        std::to_string(payload_size) + " payload bytes, file has " +
        std::to_string(bytes.size() - kHeaderSize) + ": " + origin);

  const std::string_view payload = bytes.substr(kHeaderSize);
  const uint32_t actual_crc = Crc32(payload.data(), payload.size());
  if (actual_crc != crc)
    return Status::InvalidArgument(
        "checkpoint CRC mismatch (corrupt): header declares " + HexU32(crc) +
        ", payload hashes to " + HexU32(actual_crc) + ": " + origin);

  TrainingCheckpoint c;
  Reader reader(payload, "checkpoint payload", origin);
  ANECI_RETURN_IF_ERROR(reader.Get(&c.config_fingerprint));
  ANECI_RETURN_IF_ERROR(reader.Get(&c.next_epoch));
  ANECI_RETURN_IF_ERROR(reader.Get(&c.adam_step));
  ANECI_RETURN_IF_ERROR(reader.GetDouble(&c.lr));
  ANECI_RETURN_IF_ERROR(reader.GetDouble(&c.best_mod_loss));
  ANECI_RETURN_IF_ERROR(reader.Get(&c.since_best));
  ANECI_RETURN_IF_ERROR(reader.Get(&c.watchdog_rollbacks));
  ANECI_RETURN_IF_ERROR(reader.GetDouble(&c.watchdog_best_abs_loss));
  for (uint64_t& s : c.rng_state) ANECI_RETURN_IF_ERROR(reader.Get(&s));
  ANECI_RETURN_IF_ERROR(reader.Get(&c.rng_has_gauss));
  ANECI_RETURN_IF_ERROR(reader.GetDouble(&c.rng_gauss));
  ANECI_RETURN_IF_ERROR(GetTensors(&reader, origin, &c.params));
  ANECI_RETURN_IF_ERROR(GetTensors(&reader, origin, &c.opt_m));
  ANECI_RETURN_IF_ERROR(GetTensors(&reader, origin, &c.opt_v));
  uint32_t count = 0;
  ANECI_RETURN_IF_ERROR(reader.Get(&count));
  c.pairs.resize(count);
  for (PairBlob& p : c.pairs) {
    ANECI_RETURN_IF_ERROR(reader.Get(&p.u));
    ANECI_RETURN_IF_ERROR(reader.Get(&p.v));
    ANECI_RETURN_IF_ERROR(reader.GetDouble(&p.target));
  }
  ANECI_RETURN_IF_ERROR(reader.Get(&count));
  c.history.resize(count);
  for (EpochStatBlob& h : c.history) {
    ANECI_RETURN_IF_ERROR(reader.Get(&h.epoch));
    ANECI_RETURN_IF_ERROR(reader.GetDouble(&h.loss));
    ANECI_RETURN_IF_ERROR(reader.GetDouble(&h.modularity));
    ANECI_RETURN_IF_ERROR(reader.GetDouble(&h.rigidity));
  }
  if (version >= 2) {
    for (uint64_t& s : c.adv_rng_state) ANECI_RETURN_IF_ERROR(reader.Get(&s));
    ANECI_RETURN_IF_ERROR(reader.Get(&c.adv_rng_has_gauss));
    ANECI_RETURN_IF_ERROR(reader.GetDouble(&c.adv_rng_gauss));
  }
  if (!reader.exhausted())
    return Status::InvalidArgument("checkpoint has trailing bytes: " + origin);
  return c;
}

namespace {

const std::vector<double>& LatencyBoundsMs() {
  static const std::vector<double>* bounds = new std::vector<double>(
      {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0});
  return *bounds;
}

}  // namespace

Status SaveCheckpoint(const TrainingCheckpoint& checkpoint,
                      const std::string& path, Env* env) {
  if (!env) env = Env::Default();
  static Counter* saves = MetricsRegistry::Global().GetCounter(
      "checkpoint/saves", MetricClass::kDeterministic);
  static Histogram* save_ms = MetricsRegistry::Global().GetHistogram(
      "checkpoint/save_ms", LatencyBoundsMs());
  saves->Increment();
  ScopedLatencyTimer latency(save_ms);
  return env->WriteFileAtomic(path, SerializeCheckpoint(checkpoint));
}

StatusOr<TrainingCheckpoint> LoadCheckpoint(const std::string& path,
                                            Env* env) {
  if (!env) env = Env::Default();
  static Counter* loads = MetricsRegistry::Global().GetCounter(
      "checkpoint/loads", MetricClass::kDeterministic);
  static Histogram* load_ms = MetricsRegistry::Global().GetHistogram(
      "checkpoint/load_ms", LatencyBoundsMs());
  loads->Increment();
  ScopedLatencyTimer latency(load_ms);
  ANECI_ASSIGN_OR_RETURN(const std::string bytes, env->ReadFile(path));
  return ParseCheckpoint(bytes, path);
}

std::string CheckpointBinPath(const std::string& dir) {
  return dir + "/checkpoint.bin";
}

std::string CheckpointBakPath(const std::string& dir) {
  return dir + "/checkpoint.bak";
}

Status SaveRotatingCheckpoint(const TrainingCheckpoint& checkpoint,
                              const std::string& dir, Env* env) {
  if (!env) env = Env::Default();
  ANECI_RETURN_IF_ERROR(env->CreateDir(dir));
  const std::string bin = CheckpointBinPath(dir);
  if (env->FileExists(bin))
    ANECI_RETURN_IF_ERROR(env->RenameFile(bin, CheckpointBakPath(dir)));
  return SaveCheckpoint(checkpoint, bin, env);
}

StatusOr<TrainingCheckpoint> LoadLatestCheckpoint(const std::string& dir,
                                                  Env* env,
                                                  std::string* loaded_path) {
  if (!env) env = Env::Default();
  const std::string bin = CheckpointBinPath(dir);
  const std::string bak = CheckpointBakPath(dir);
  const bool have_bin = env->FileExists(bin);
  const bool have_bak = env->FileExists(bak);
  if (!have_bin && !have_bak)
    return Status::NotFound("no checkpoint in " + dir);
  Status primary_error = Status::OK();
  if (have_bin) {
    StatusOr<TrainingCheckpoint> c = LoadCheckpoint(bin, env);
    if (c.ok()) {
      if (loaded_path) *loaded_path = bin;
      return c;
    }
    primary_error = c.status();
  }
  if (have_bak) {
    StatusOr<TrainingCheckpoint> c = LoadCheckpoint(bak, env);
    if (c.ok()) {
      static Counter* bak_fallbacks = MetricsRegistry::Global().GetCounter(
          "checkpoint/bak_fallbacks", MetricClass::kDeterministic);
      if (have_bin) bak_fallbacks->Increment();
      if (loaded_path) *loaded_path = bak;
      return c;
    }
    if (primary_error.ok()) primary_error = c.status();
  }
  return primary_error;
}

}  // namespace aneci

// Binary training-snapshot format with end-to-end integrity checking
// (docs/robustness.md has the byte-level spec). A checkpoint captures
// everything the training loop needs to continue bit-identically after a
// crash: model parameters, Adam moments and step, the RNG state, sampled
// reconstruction pairs, early-stopping counters, watchdog state, and the
// epoch history.
//
// File layout:
//   bytes 0..3   magic "ANCK"
//   bytes 4..7   u32 format version (currently 2; v1 still loads — it lacks
//                only the trailing adversarial-RNG block, which is zeroed)
//   bytes 8..15  u64 payload size in bytes
//   bytes 16..19 u32 CRC-32 (IEEE 802.3) of the payload
//   bytes 20..   payload (fixed little-endian field order, IEEE-754 doubles)
//
// Loading verifies magic, version, declared size and CRC before any field is
// interpreted, so truncation and bit-flips are rejected with a precise
// Status instead of being half-parsed. Writes go through
// Env::WriteFileAtomic, so a crash mid-save never clobbers the previous
// snapshot.
//
// This header lives in util (below linalg), so tensors are carried as plain
// {rows, cols, data} blobs; trainers convert to/from their matrix type.
#ifndef ANECI_UTIL_CHECKPOINT_H_
#define ANECI_UTIL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/env.h"
#include "util/status.h"

namespace aneci {

/// CRC-32 (reflected, polynomial 0xEDB88320) of `size` bytes.
uint32_t Crc32(const void* data, size_t size);

/// A dense row-major tensor without the linalg dependency.
struct TensorBlob {
  int32_t rows = 0;
  int32_t cols = 0;
  std::vector<double> data;  ///< rows * cols entries.
};

/// A sampled reconstruction pair (mirrors ag::PairTarget).
struct PairBlob {
  int32_t u = 0;
  int32_t v = 0;
  double target = 0.0;
};

/// One epoch of telemetry (core/aneci.h aliases this as AneciEpochStats).
struct EpochStatBlob {
  int32_t epoch = 0;
  double loss = 0.0;
  double modularity = 0.0;
  double rigidity = 0.0;
};

struct TrainingCheckpoint {
  /// Hash of the structural config + graph shape; a resume against a
  /// different configuration is rejected instead of silently diverging.
  uint64_t config_fingerprint = 0;

  int32_t next_epoch = 0;  ///< First epoch the resumed loop will run.
  int32_t adam_step = 0;   ///< Adam's bias-correction step counter t.
  double lr = 0.0;         ///< Current learning rate (watchdog may decay it).

  // Early-stopping state.
  double best_mod_loss = 0.0;
  int32_t since_best = 0;

  // Watchdog state.
  int32_t watchdog_rollbacks = 0;
  double watchdog_best_abs_loss = 0.0;

  // xoshiro256** state plus the cached-Gaussian pair.
  uint64_t rng_state[4] = {0, 0, 0, 0};
  uint8_t rng_has_gauss = 0;
  double rng_gauss = 0.0;

  // Adversarial-training perturbation stream (format v2; zeroed when loading
  // a v1 file, which can only have been written by a non-adversarial run).
  uint64_t adv_rng_state[4] = {0, 0, 0, 0};
  uint8_t adv_rng_has_gauss = 0;
  double adv_rng_gauss = 0.0;

  std::vector<TensorBlob> params;
  std::vector<TensorBlob> opt_m;
  std::vector<TensorBlob> opt_v;
  std::vector<PairBlob> pairs;
  std::vector<EpochStatBlob> history;
};

/// Serialises to the full file byte string (header + CRC + payload).
std::string SerializeCheckpoint(const TrainingCheckpoint& checkpoint);

/// Validates and decodes file bytes. `origin` names the source in errors.
StatusOr<TrainingCheckpoint> ParseCheckpoint(std::string_view bytes,
                                             const std::string& origin);

Status SaveCheckpoint(const TrainingCheckpoint& checkpoint,
                      const std::string& path, Env* env = nullptr);

StatusOr<TrainingCheckpoint> LoadCheckpoint(const std::string& path,
                                            Env* env = nullptr);

/// Two-deep rotation inside `dir`: the previous `checkpoint.bin` is renamed
/// to `checkpoint.bak` before the new snapshot is atomically written, so one
/// valid snapshot survives any single corruption or mid-save crash.
Status SaveRotatingCheckpoint(const TrainingCheckpoint& checkpoint,
                              const std::string& dir, Env* env = nullptr);

/// Loads `dir`/checkpoint.bin, falling back to `dir`/checkpoint.bak when the
/// newest snapshot is missing or corrupt. NotFound when neither exists; the
/// primary's corruption error when both are unreadable. `loaded_path`
/// (optional) receives the file actually used.
StatusOr<TrainingCheckpoint> LoadLatestCheckpoint(
    const std::string& dir, Env* env = nullptr,
    std::string* loaded_path = nullptr);

/// File names used by the rotation scheme.
std::string CheckpointBinPath(const std::string& dir);
std::string CheckpointBakPath(const std::string& dir);

}  // namespace aneci

#endif  // ANECI_UTIL_CHECKPOINT_H_

// RAII trace spans building a hierarchical wall-time tree. A span pushes
// its name onto a thread-local path ("train" -> "train/epoch" ->
// "train/epoch/forward") and on destruction records elapsed milliseconds
// into the process-global TraceRegistry, aggregated per path.
//
// Span *counts* are deterministic (they count code-path entries); span
// *times* are wall clock and therefore scheduling-class. The JSONL export
// splits them into a "span_count" line (class det) and a "span_time" line
// (class sched) so determinism checks can keep the former and drop the
// latter — see docs/observability.md.
//
// Wall time comes from util/timer.h, the single allowlisted clock source
// (`banned-nondeterminism`); every other file in src/ must time code via
// spans, which `banned-adhoc-timing` enforces.
#ifndef ANECI_UTIL_TRACE_H_
#define ANECI_UTIL_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace aneci {

/// Aggregated statistics for one span path.
struct SpanStat {
  std::string path;
  uint64_t count = 0;
  double total_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
};

class TraceRegistry {
 public:
  static TraceRegistry& Global();

  /// Merges one completed span occurrence into the per-path aggregate.
  void Record(const std::string& path, double ms);

  /// All paths in lexicographic order (parents sort before children).
  std::vector<SpanStat> Snapshot() const;

  /// Clears all aggregates (registrations are per-path and implicit).
  void ResetValues();

 private:
  TraceRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, SpanStat> stats_ ANECI_GUARDED_BY(mu_);
};

/// RAII scope: constructing pushes `name` onto the calling thread's span
/// path, destructing records the elapsed wall time. Nest freely; spans on
/// worker threads start their own root (the parent path is thread-local).
/// When the metrics registry is disabled the span is a no-op.
class TraceSpan {
 public:
  explicit TraceSpan(const std::string& name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool enabled_;
  size_t saved_path_size_ = 0;
  Timer timer_;
};

}  // namespace aneci

#endif  // ANECI_UTIL_TRACE_H_

// Deterministic, fast pseudo-random number generation (xoshiro256** seeded by
// SplitMix64). Every stochastic component in the library takes an explicit
// Rng& so experiments are reproducible from a single seed.
#ifndef ANECI_UTIL_RNG_H_
#define ANECI_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

#include "util/check.h"

namespace aneci {

/// xoshiro256** PRNG. Not cryptographically secure; excellent statistical
/// quality and speed for simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
    has_gauss_ = false;
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (NextU64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  int64_t NextInt(int64_t n) {
    ANECI_DCHECK(n > 0);
    // Rejection-free for our scale: modulo bias is negligible for n << 2^64,
    // but use Lemire's method for exactness.
    __uint128_t m = static_cast<__uint128_t>(NextU64()) *
                    static_cast<__uint128_t>(n);
    return static_cast<int64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double NextGaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return gauss_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    gauss_ = v * f;
    has_gauss_ = true;
    return u * f;
  }

  /// Bernoulli(p).
  bool NextBool(double p) { return NextDouble() < p; }

  /// Complete generator state: the xoshiro256** words plus the cached
  /// Gaussian pair. Restoring it makes the stream continue exactly where the
  /// capture left off — the basis of bit-identical checkpoint resume.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_gauss = false;
    double gauss = 0.0;
  };

  State state() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.has_gauss = has_gauss_;
    st.gauss = gauss_;
    return st;
  }

  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    has_gauss_ = st.has_gauss;
    gauss_ = st.gauss;
  }

  /// Poisson(lambda) via Knuth for small lambda, normal approx for large.
  int NextPoisson(double lambda) {
    ANECI_DCHECK(lambda >= 0.0);
    if (lambda > 30.0) {
      const int k =
          static_cast<int>(std::lround(lambda + std::sqrt(lambda) * NextGaussian()));
      return k < 0 ? 0 : k;
    }
    const double limit = std::exp(-lambda);
    double prod = NextDouble();
    int n = 0;
    while (prod > limit) {
      prod *= NextDouble();
      ++n;
    }
    return n;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace aneci

#endif  // ANECI_UTIL_RNG_H_

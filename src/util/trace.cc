#include "util/trace.h"

#include <limits>

namespace aneci {

namespace {

/// Thread-local current span path ("train/epoch/forward"). Spans append a
/// segment on entry and truncate back on exit, so building a child path is
/// O(segment length) with no joins.
std::string& ThreadPath() {
  thread_local std::string path;
  return path;
}

}  // namespace

TraceRegistry& TraceRegistry::Global() {
  static TraceRegistry* registry = new TraceRegistry();  // leaked
  return *registry;
}

void TraceRegistry::Record(const std::string& path, double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanStat& stat = stats_[path];
  if (stat.count == 0) {
    stat.path = path;
    stat.min_ms = std::numeric_limits<double>::infinity();
    stat.max_ms = -std::numeric_limits<double>::infinity();
  }
  ++stat.count;
  stat.total_ms += ms;
  if (ms < stat.min_ms) stat.min_ms = ms;
  if (ms > stat.max_ms) stat.max_ms = ms;
}

std::vector<SpanStat> TraceRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanStat> out;
  out.reserve(stats_.size());
  for (const auto& [path, stat] : stats_) {
    (void)path;
    out.push_back(stat);
  }
  return out;
}

void TraceRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
}

TraceSpan::TraceSpan(const std::string& name) : enabled_(MetricsEnabled()) {
  if (!enabled_) return;
  std::string& path = ThreadPath();
  saved_path_size_ = path.size();
  if (!path.empty()) path += '/';
  path += name;
  timer_.Reset();
}

TraceSpan::~TraceSpan() {
  if (!enabled_) return;
  const double ms = timer_.Millis();
  std::string& path = ThreadPath();
  TraceRegistry::Global().Record(path, ms);
  path.resize(saved_path_size_);
}

}  // namespace aneci

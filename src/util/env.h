// Filesystem access behind a virtual interface so durability-critical writes
// (checkpoints, graph files) can be tested against injected faults. The
// production Env writes atomically: data goes to `<path>.tmp` first and is
// renamed over the destination only after a successful close, so readers
// never observe a torn file — they see either the old content or the new.
//
// FaultInjectingEnv wraps any Env and corrupts a chosen write (fail it
// outright, truncate it, or flip one bit) so tests can prove that corrupted
// or half-written files are *detected* downstream instead of half-parsed.
#ifndef ANECI_UTIL_ENV_H_
#define ANECI_UTIL_ENV_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace aneci {

class Env {
 public:
  virtual ~Env() = default;

  /// Reads the whole file into a string (binary-exact).
  virtual StatusOr<std::string> ReadFile(const std::string& path);

  /// Writes `data` to `<path>.tmp`, then renames it over `path`. On any
  /// error the destination keeps its previous content and the temp file is
  /// removed.
  virtual Status WriteFileAtomic(const std::string& path,
                                 std::string_view data);

  virtual bool FileExists(const std::string& path);

  virtual Status RenameFile(const std::string& from, const std::string& to);

  virtual Status RemoveFile(const std::string& path);

  /// Creates a directory (one level); success if it already exists.
  virtual Status CreateDir(const std::string& path);

  /// Process-wide default environment (plain POSIX filesystem).
  static Env* Default();
};

/// One planned fault against the Nth WriteFileAtomic call (0-based). A plan
/// member left at its sentinel (-1) is inactive; multiple members may target
/// the same write. Reads are never faulted — corruption is injected at write
/// time and must be *caught* at read time.
struct FaultPlan {
  /// Fail this write with an IoError before any byte reaches disk.
  int fail_write = -1;
  /// Persist only the first `truncate_bytes` bytes of this write. The
  /// truncated data still goes through the atomic rename, simulating a torn
  /// write that an application-level integrity check must catch.
  int truncate_write = -1;
  size_t truncate_bytes = 0;
  /// Flip `bitflip_bit` (0-7) of byte `bitflip_byte` of this write.
  int bitflip_write = -1;
  size_t bitflip_byte = 0;
  int bitflip_bit = 0;
};

class FaultInjectingEnv final : public Env {
 public:
  explicit FaultInjectingEnv(Env* base = Env::Default()) : base_(base) {}

  FaultPlan plan;

  StatusOr<std::string> ReadFile(const std::string& path) override;
  Status WriteFileAtomic(const std::string& path,
                         std::string_view data) override;
  bool FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;

  /// Number of WriteFileAtomic calls observed so far.
  int writes() const { return writes_; }

 private:
  Env* base_;
  int writes_ = 0;
};

}  // namespace aneci

#endif  // ANECI_UTIL_ENV_H_

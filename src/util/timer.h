// Wall-clock stopwatch for the runtime comparisons (Table V) and training
// progress reporting.
#ifndef ANECI_UTIL_TIMER_H_
#define ANECI_UTIL_TIMER_H_

#include <chrono>

namespace aneci {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace aneci

#endif  // ANECI_UTIL_TIMER_H_

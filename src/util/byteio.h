// Little-endian scalar encoding shared by the binary on-disk formats (the
// "ANCK" training checkpoint and the "ANSV" serving artifact). Serialisation
// is byte-order-explicit so files are portable across hosts; doubles are
// carried via their IEEE-754 bit pattern, so values round-trip bit-exactly
// (including -0.0 and denormals).
#ifndef ANECI_UTIL_BYTEIO_H_
#define ANECI_UTIL_BYTEIO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>

#include "util/status.h"

namespace aneci {

template <typename T>
inline void PutScalarLe(std::string* out, T value) {
  static_assert(std::is_integral_v<T>);
  for (size_t i = 0; i < sizeof(T); ++i)
    out->push_back(
        static_cast<char>((static_cast<uint64_t>(value) >> (8 * i)) & 0xff));
}

inline void PutDoubleLe(std::string* out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  PutScalarLe<uint64_t>(out, bits);
}

/// Sequential little-endian reader over a byte string. Every Get checks the
/// remaining length first, so a truncated payload surfaces as a precise
/// Status ("<what> truncated: <origin>") instead of reading past the end.
class ByteReader {
 public:
  /// `what` names the payload kind in errors ("checkpoint payload", "model
  /// artifact payload"); `origin` names the file or buffer being decoded.
  ByteReader(std::string_view bytes, std::string what, std::string origin)
      : bytes_(bytes), what_(std::move(what)), origin_(std::move(origin)) {}

  template <typename T>
  Status Get(T* value) {
    static_assert(std::is_integral_v<T>);
    if (bytes_.size() - pos_ < sizeof(T))
      return Status::InvalidArgument(what_ + " truncated: " + origin_);
    uint64_t v = 0;
    for (size_t i = 0; i < sizeof(T); ++i)
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    pos_ += sizeof(T);
    *value = static_cast<T>(v);
    return Status::OK();
  }

  Status GetDouble(double* value) {
    uint64_t bits = 0;
    ANECI_RETURN_IF_ERROR(Get(&bits));
    std::memcpy(value, &bits, sizeof(bits));
    return Status::OK();
  }

  bool exhausted() const { return pos_ == bytes_.size(); }
  /// Bytes left to read — callers check this before sizing an allocation
  /// from a decoded count, so corrupt counts fail fast instead of OOMing.
  size_t remaining() const { return bytes_.size() - pos_; }
  const std::string& origin() const { return origin_; }

 private:
  std::string_view bytes_;
  std::string what_;
  std::string origin_;
  size_t pos_ = 0;
};

}  // namespace aneci

#endif  // ANECI_UTIL_BYTEIO_H_

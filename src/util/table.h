// Console table printer used by the benchmark harnesses to emit paper-style
// tables (aligned columns, optional CSV dump).
#ifndef ANECI_UTIL_TABLE_H_
#define ANECI_UTIL_TABLE_H_

#include <string>
#include <vector>

#include "util/env.h"

namespace aneci {

/// Collects rows of string cells and renders them with aligned columns.
/// Numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row. Subsequent Add* calls append cells to it.
  Table& AddRow();
  Table& Add(std::string cell);
  Table& AddF(double value, int precision = 3);
  /// "mean±std" cell, the paper's accuracy format.
  Table& AddMeanStd(double mean, double std, int precision = 1);

  /// Renders to stdout with a title line.
  void Print(const std::string& title) const;

  /// Renders as CSV (header + rows) and writes it atomically through `env`
  /// (temp file + rename; nullptr means Env::Default()), so a killed bench
  /// run never leaves a truncated CSV behind — readers see the previous
  /// complete file or the new one.
  Status WriteCsv(const std::string& path, Env* env = nullptr) const;

  /// The CSV bytes WriteCsv would persist.
  std::string ToCsv() const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aneci

#endif  // ANECI_UTIL_TABLE_H_

// Lock-discipline annotation macros, consumed by TWO independent checkers:
//
//  1. `aneci_lint` (tools/lint/model.cc) parses them lexically in every
//     build — the `guarded-member-access`, `lock-order-cycle` and
//     `determinism-taint` checks run as a stage-0 hard-fail CI gate on any
//     toolchain (docs/static_analysis.md §7).
//  2. Under clang they lower to the native thread-safety attributes, so
//     `-Wthread-safety -Werror` cross-checks the same declarations with a
//     real flow-sensitive analysis (tools/ci.sh, clang leg).
//
// Under gcc (the default toolchain) they expand to nothing and cost
// nothing. Usage:
//
//   class Registry {
//    public:
//     void Add(int v) ANECI_EXCLUDES(mu_);          // must NOT hold mu_
//    private:
//     void AddLocked(int v) ANECI_REQUIRES(mu_);    // caller holds mu_
//     mutable std::mutex mu_;
//     std::map<std::string, int> entries_ ANECI_GUARDED_BY(mu_);
//   };
//
// Conventions: annotate the DECLARATION (in-class); out-of-class
// definitions inherit. Every non-atomic member written by more than one
// thread gets ANECI_GUARDED_BY; private `...Locked()` helpers get
// ANECI_REQUIRES; public entry points that take the lock themselves get
// ANECI_EXCLUDES. Members synchronized by std::atomic or by construction
// (immutable after publish) are deliberately left bare.
#ifndef ANECI_UTIL_THREAD_ANNOTATIONS_H_
#define ANECI_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define ANECI_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ANECI_THREAD_ANNOTATION_(x)
#endif

/// Member may only be read or written while holding `m`.
#define ANECI_GUARDED_BY(m) ANECI_THREAD_ANNOTATION_(guarded_by(m))

/// Pointer member: the *pointee* is protected by `m` (the pointer itself
/// is not).
#define ANECI_PT_GUARDED_BY(m) ANECI_THREAD_ANNOTATION_(pt_guarded_by(m))

/// Function requires the caller to already hold every listed mutex.
#define ANECI_REQUIRES(...) \
  ANECI_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed mutexes and returns holding them.
#define ANECI_ACQUIRE(...) \
  ANECI_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed mutexes (caller must hold them on entry).
#define ANECI_RELEASE(...) \
  ANECI_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function must be called WITHOUT the listed mutexes held (it takes them
/// itself; calling with one held would self-deadlock a std::mutex).
#define ANECI_EXCLUDES(...) ANECI_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Escape hatch for code whose locking is correct for reasons the static
/// analyses cannot see (e.g. data handed off before a thread starts).
/// Pair it with a comment saying why, the same way NOLINT needs a reason.
#define ANECI_NO_THREAD_SAFETY_ANALYSIS \
  ANECI_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // ANECI_UTIL_THREAD_ANNOTATIONS_H_

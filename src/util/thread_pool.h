// Fixed-size std::thread pool with a deterministic ParallelFor used by the
// hot dense/sparse kernels. Design contract (see docs/parallelism.md):
//
//  * [begin, end) is split into ceil((end - begin) / grain) contiguous
//    chunks of `grain` indices (the last chunk may be short). The chunk
//    decomposition depends ONLY on the range and the grain — never on the
//    thread count — so per-chunk partial results merged in chunk-index
//    order are bit-identical for every ANECI_THREADS value.
//  * Each chunk body must write to a disjoint output slice or to its own
//    per-chunk accumulator; reductions are merged serially in chunk order
//    after ParallelFor returns. No atomics on doubles anywhere.
//  * A ParallelFor issued from inside a chunk body (nested parallelism)
//    runs serially on the calling thread — documented fallback, not an
//    error — so kernels may freely compose.
//  * The first exception thrown by a chunk cancels the remaining chunks
//    and is rethrown on the calling thread.
//
// The process-wide pool is sized by the ANECI_THREADS environment variable
// (default std::thread::hardware_concurrency(); 1 forces the serial path,
// which executes the same chunks in the same order on the calling thread).
#ifndef ANECI_UTIL_THREAD_POOL_H_
#define ANECI_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace aneci {

/// Number of chunks ParallelFor will create for the given range and grain.
/// Depends only on (begin, end, grain) so callers can pre-size per-chunk
/// accumulator arrays.
inline int64_t NumChunks(int64_t begin, int64_t end, int64_t grain) {
  if (end <= begin) return 0;
  if (grain < 1) grain = 1;
  return (end - begin + grain - 1) / grain;
}

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` worker threads (the caller participates in
  /// every ParallelFor, so n threads of compute need n - 1 workers).
  /// `num_threads < 1` is clamped to 1; 1 means no workers at all.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Joins all workers and restarts with a new size. Must not be called
  /// concurrently with ParallelFor on the same pool.
  void Resize(int num_threads);

  /// Runs fn(chunk_begin, chunk_end) over every chunk of [begin, end).
  /// Blocks until all chunks are done (or one throws).
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// Like ParallelFor but also hands fn the chunk index, for kernels that
  /// accumulate into per-chunk slots merged in index order afterwards.
  void ParallelForChunks(
      int64_t begin, int64_t end, int64_t grain,
      const std::function<void(int64_t, int64_t, int64_t)>& fn);

  /// True while the calling thread is executing a chunk body (worker or
  /// caller). Nested ParallelFor calls detect this and run serially.
  static bool InParallelRegion();

  /// Process-wide pool, created on first use and sized by ANECI_THREADS.
  static ThreadPool& Global();

 private:
  void Start(int num_threads);
  void Stop();
  void WorkerLoop();

  // num_threads_ and workers_ are only touched by the owning thread
  // (construction, Resize, destruction — Resize is documented as not
  // concurrency-safe), so they carry no guard; tasks_ and shutdown_ are
  // shared with the workers and always travel under mu_.
  int num_threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_ ANECI_GUARDED_BY(mu_);
  bool shutdown_ ANECI_GUARDED_BY(mu_) = false;
};

/// Current size of the global pool.
int NumThreads();

/// Resizes the global pool (clamped to >= 1). Intended for tests, benches
/// and CLIs; not safe concurrently with in-flight ParallelFor calls.
void SetNumThreads(int num_threads);

/// RAII thread-count override: sets on construction, restores on scope exit.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int num_threads) : saved_(NumThreads()) {
    SetNumThreads(num_threads);
  }
  ~ScopedNumThreads() { SetNumThreads(saved_); }
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int saved_;
};

/// Convenience wrappers over ThreadPool::Global().
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);
void ParallelForChunks(int64_t begin, int64_t end, int64_t grain,
                       const std::function<void(int64_t, int64_t, int64_t)>& fn);

}  // namespace aneci

#endif  // ANECI_UTIL_THREAD_POOL_H_

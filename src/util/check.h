// Invariant-checking macros. ANECI_CHECK* abort with a message on violation;
// ANECI_DCHECK* compile away in release builds (NDEBUG).
#ifndef ANECI_UTIL_CHECK_H_
#define ANECI_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define ANECI_CHECK(cond)                                                      \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__,  \
                   #cond);                                                     \
      std::abort();                                                            \
    }                                                                          \
  } while (0)

#define ANECI_CHECK_MSG(cond, msg)                                             \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,       \
                   __LINE__, #cond, msg);                                      \
      std::abort();                                                            \
    }                                                                          \
  } while (0)

#define ANECI_CHECK_EQ(a, b) ANECI_CHECK((a) == (b))
#define ANECI_CHECK_NE(a, b) ANECI_CHECK((a) != (b))
#define ANECI_CHECK_LT(a, b) ANECI_CHECK((a) < (b))
#define ANECI_CHECK_LE(a, b) ANECI_CHECK((a) <= (b))
#define ANECI_CHECK_GT(a, b) ANECI_CHECK((a) > (b))
#define ANECI_CHECK_GE(a, b) ANECI_CHECK((a) >= (b))

#ifdef NDEBUG
#define ANECI_DCHECK(cond) ((void)0)
#define ANECI_DCHECK_EQ(a, b) ((void)0)
#define ANECI_DCHECK_LT(a, b) ((void)0)
#else
#define ANECI_DCHECK(cond) ANECI_CHECK(cond)
#define ANECI_DCHECK_EQ(a, b) ANECI_CHECK_EQ(a, b)
#define ANECI_DCHECK_LT(a, b) ANECI_CHECK_LT(a, b)
#endif

#endif  // ANECI_UTIL_CHECK_H_

// The on-disk serving artifact ("ANSV"): everything the online query path
// needs, precomputed at export time so a serving process never touches the
// training stack. Where the "ANCK" training checkpoint captures *how to
// continue training*, the serving artifact captures *what the model
// answers*: node embeddings Z, soft community memberships P, the hard
// community assignment, per-node anomaly scores, and (for labelled graphs) a
// frozen label head's per-node class probabilities.
//
// File layout (same envelope as util/checkpoint.h, docs/serving.md §2):
//   bytes 0..3   magic "ANSV"
//   bytes 4..7   u32 format version (currently 1)
//   bytes 8..15  u64 payload size in bytes
//   bytes 16..19 u32 CRC-32 (IEEE 802.3) of the payload
//   bytes 20..   payload, fixed little-endian field order:
//     u32 num_nodes, u32 embed_dim, u32 num_classes
//     tensor z        (num_nodes x embed_dim doubles)
//     tensor p        (num_nodes x embed_dim doubles)
//     tensor proba    (num_nodes x num_classes doubles; absent rows/cols = 0)
//     i32  community[num_nodes]
//     f64  anomaly[num_nodes]
//
// Loading verifies magic, version, declared size and CRC before any field is
// interpreted, then cross-checks every shape against the header counts, so a
// torn or tampered artifact is rejected with a precise Status instead of
// being served. Writes go through Env::WriteFileAtomic: a crash mid-export
// never clobbers the artifact a live server may re-load.
#ifndef ANECI_SERVE_MODEL_ARTIFACT_H_
#define ANECI_SERVE_MODEL_ARTIFACT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"
#include "util/checkpoint.h"
#include "util/env.h"
#include "util/status.h"

namespace aneci::serve {

struct ModelArtifact {
  int32_t num_nodes = 0;
  int32_t embed_dim = 0;
  /// 0 when the source graph had no labels; then `proba` is empty and
  /// classify queries are rejected by the query engine.
  int32_t num_classes = 0;

  Matrix z;      ///< Node embeddings (num_nodes x embed_dim).
  Matrix p;      ///< Soft community memberships softmax(Z), same shape.
  Matrix proba;  ///< Label-head class probabilities (num_nodes x num_classes).

  std::vector<int32_t> community;  ///< argmax_k P(i, k); ties -> lowest k.
  std::vector<double> anomaly;     ///< Membership entropy (Section VI-C).
};

/// Builds the artifact from a trained model's outputs. `z` and `p` are the
/// embeddings and memberships of a training run (AneciResult::z / ::p); the
/// community assignment and anomaly scores are derived from `p` exactly as
/// the offline evaluation does (argmax rows, membership entropy). When the
/// graph carries labels, a multinomial logistic-regression head is fitted on
/// (z, labels) with `head_seed` and its probabilities for every node are
/// frozen into the artifact — deterministic for a fixed seed at any
/// ANECI_THREADS value.
ModelArtifact BuildModelArtifact(const Graph& graph, const Matrix& z,
                                 const Matrix& p, uint64_t head_seed = 1234);

/// Serialises to the full file byte string (header + CRC + payload).
std::string SerializeModelArtifact(const ModelArtifact& artifact);

/// Validates and decodes file bytes. `origin` names the source in errors.
StatusOr<ModelArtifact> ParseModelArtifact(std::string_view bytes,
                                           const std::string& origin);

Status SaveModelArtifact(const ModelArtifact& artifact,
                         const std::string& path, Env* env = nullptr);

StatusOr<ModelArtifact> LoadModelArtifact(const std::string& path,
                                          Env* env = nullptr);

}  // namespace aneci::serve

#endif  // ANECI_SERVE_MODEL_ARTIFACT_H_

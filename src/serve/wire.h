// Wire protocol for the embedding server (docs/serving.md §2).
//
// A connection is a sequence of frames in each direction. Every frame is
//
//   [u32 length, little-endian][length bytes of UTF-8 JSON]
//
// where the body is a single flat JSON object (no nesting in requests;
// responses may carry one level of arrays). The length counts the body
// only, and must be in [1, kMaxFrameBytes]; anything else is a framing
// violation and the server closes the connection. Malformed JSON or a bad
// request inside a well-framed body is a *per-request* error — the server
// answers {"ok":false,"error":"..."} and keeps the connection open.
//
// Requests:  {"op":"lookup","id":3}            {"op":"knn","id":3,"k":5}
//            {"op":"classify","id":3}          {"op":"anomaly","id":3}
//            {"op":"community","id":3}         {"op":"stats"}
//            {"op":"swap","path":"model.ansv"}
// Every query op accepts an optional "deadline_ms" (positive integer): the
// per-request execution-admission budget (docs/serving.md §6).
// Responses: {"ok":true,"op":...,"version":N, ...op-specific fields...}
// Errors:    {"ok":false,"code":"<machine-readable>","error":"<message>"}
// where code is one of invalid_argument, not_found, io_error,
// failed_precondition, out_of_range, internal, deadline_exceeded,
// overloaded — clients branch on "code" (retry on "overloaded", give up on
// "deadline_exceeded"), humans read "error".
#ifndef ANECI_SERVE_WIRE_H_
#define ANECI_SERVE_WIRE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "serve/query_engine.h"
#include "util/status.h"

namespace aneci::serve {

/// Hard cap on a frame body; length prefixes above this are a framing
/// violation (protects the server from a 4 GiB allocation per connection).
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// Prepends the u32 LE length prefix to `body`.
std::string EncodeFrame(std::string_view body);

/// Incremental frame decoder. Feed() arbitrary byte chunks as they arrive;
/// Next() yields complete frame bodies in order. A length prefix of 0 or
/// > kMaxFrameBytes poisons the decoder (framing_error()); the connection
/// must be closed — no resynchronisation is attempted.
class FrameDecoder {
 public:
  void Feed(std::string_view bytes);

  /// True if a complete frame is available; moves its body into `*body`.
  bool Next(std::string* body);

  bool framing_error() const { return framing_error_; }
  const std::string& framing_error_message() const { return error_message_; }

  /// Bytes buffered but not yet consumed (a nonzero value at disconnect
  /// means the peer hung up mid-frame).
  size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
  bool framing_error_ = false;
  std::string error_message_;
};

/// One decoded JSON scalar. The wire format is flat, so this is the full
/// value domain for request fields.
struct JsonValue {
  enum class Kind { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string string_value;
  double number_value = 0.0;
  bool bool_value = false;
};

/// Parses a single flat JSON object ({"key": scalar, ...}) into a key→value
/// map. Rejects nesting, duplicate keys, trailing garbage, and invalid
/// escapes with a precise message; never throws.
StatusOr<std::map<std::string, JsonValue>> ParseFlatJson(
    std::string_view body);

/// Parsed client command: either a query for the engine or a control verb.
struct WireRequest {
  enum class Kind { kQuery, kSwap };
  Kind kind = Kind::kQuery;
  QueryRequest query;
  std::string swap_path;  // kSwap only
};

/// Parses a request frame body. Errors name the offending field so clients
/// can fix the request ("knn k must be a positive integer", ...).
StatusOr<WireRequest> ParseWireRequest(std::string_view body);

/// Renders a successful query response. Doubles use %.17g (JsonDouble), so
/// the rendering of a given snapshot is byte-stable — the golden e2e test
/// compares served bytes against offline rendering.
std::string RenderResponse(const QueryResponse& response);

/// The machine-readable wire code for a Status ("deadline_exceeded",
/// "overloaded", "invalid_argument", ...). Never called with OK.
const char* WireErrorCode(StatusCode code);

/// Renders {"ok":false,"code":...,"error":...} for a per-request failure.
std::string RenderError(const Status& status);

/// Renders the acknowledgement for a completed swap.
std::string RenderSwapAck(uint64_t version, const std::string& source);

}  // namespace aneci::serve

#endif  // ANECI_SERVE_WIRE_H_

// Minimal blocking client for the embed-server wire protocol, used by the
// e2e tests, the load bench, and the CLI's `serve --probe` self-check. One
// Call() is one request frame followed by one response frame.
#ifndef ANECI_SERVE_CLIENT_H_
#define ANECI_SERVE_CLIENT_H_

#include <string>
#include <string_view>

#include "serve/socket_io.h"
#include "serve/wire.h"
#include "util/status.h"

namespace aneci::serve {

class ServeClient {
 public:
  /// Connects to 127.0.0.1:`port`.
  static StatusOr<ServeClient> Connect(int port);

  ServeClient(ServeClient&&) = default;
  ServeClient& operator=(ServeClient&&) = default;

  /// Sends one JSON request body and returns the raw JSON response body.
  /// An {"ok":false,...} body is still a successful Call(); only transport
  /// failures (connection reset, truncated response) are errors.
  StatusOr<std::string> Call(std::string_view request_body);

  /// Sends raw bytes verbatim — no framing. The protocol fuzz tests use
  /// this to deliver malformed frames.
  Status SendRaw(std::string_view bytes);

  /// Reads one complete response frame (after SendRaw pipelining).
  StatusOr<std::string> ReadFrame();

  /// Half-closes the write side, signalling end of requests.
  Status FinishRequests();

 private:
  explicit ServeClient(SocketFd socket) : socket_(std::move(socket)) {}

  SocketFd socket_;
  FrameDecoder decoder_;
};

}  // namespace aneci::serve

#endif  // ANECI_SERVE_CLIENT_H_

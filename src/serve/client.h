// Minimal blocking client for the embed-server wire protocol, used by the
// e2e tests, the load bench, and the CLI's `serve --probe` self-check. One
// Call() is one request frame followed by one response frame.
//
// CallWithRetry() adds the resilience loop (docs/serving.md §6): capped
// exponential backoff with deterministic xoshiro-seeded jitter, reconnect
// after transport errors, retry of "overloaded" shed responses (they were
// rejected before execution, so retrying is always safe), and an
// idempotent-ops-only default — a swap that died in flight may have
// executed, so it is not re-sent unless the policy opts in.
#ifndef ANECI_SERVE_CLIENT_H_
#define ANECI_SERVE_CLIENT_H_

#include <string>
#include <string_view>

#include "serve/socket_io.h"
#include "serve/wire.h"
#include "util/status.h"

namespace aneci::serve {

/// Retry knobs for ServeClient::CallWithRetry. Attempt n (1-based) sleeps
/// min(max_backoff_ms, initial_backoff_ms << (n-1)) ms before running, with
/// the upper half of the sleep jittered by a deterministic xoshiro stream
/// seeded from `jitter_seed` — reproducible schedules, but a client fleet
/// with distinct seeds still decorrelates its retry storms.
struct RetryPolicy {
  int max_attempts = 4;
  int initial_backoff_ms = 5;
  int max_backoff_ms = 100;
  uint64_t jitter_seed = 0x5eed;
  /// Retry swap (non-idempotent) after a transport error. Off by default: a
  /// request that died mid-flight may have executed server-side.
  bool retry_non_idempotent = false;
};

class ServeClient {
 public:
  /// Connects to 127.0.0.1:`port` over `io` (nullptr = SocketIo::Default();
  /// inject a FaultInjectingSocketIo to chaos-test the client's transport).
  /// The io must outlive the client.
  static StatusOr<ServeClient> Connect(int port, SocketIo* io = nullptr);

  ServeClient(ServeClient&&) = default;
  ServeClient& operator=(ServeClient&&) = default;
  // Explicitly non-copyable (not just implicitly via SocketFd): two clients
  // sharing one fd would interleave frames and corrupt both sessions.
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Sends one JSON request body and returns the raw JSON response body.
  /// An {"ok":false,...} body is still a successful Call(); only transport
  /// failures (connection reset, truncated response) are errors.
  StatusOr<std::string> Call(std::string_view request_body);

  /// Call() wrapped in the retry loop. Every outcome is definite: a
  /// response body (possibly a typed {"ok":false} error), or a Status once
  /// the attempts are exhausted (annotated with the attempt count). After a
  /// transport error the connection is torn down and the next attempt
  /// reconnects from scratch.
  StatusOr<std::string> CallWithRetry(std::string_view request_body,
                                      const RetryPolicy& policy = {});

  /// Sends raw bytes verbatim — no framing. The protocol fuzz tests use
  /// this to deliver malformed frames.
  Status SendRaw(std::string_view bytes);

  /// Reads one complete response frame (after SendRaw pipelining).
  StatusOr<std::string> ReadFrame();

  /// Half-closes the write side, signalling end of requests.
  Status FinishRequests();

 private:
  ServeClient(int port, SocketIo* io, SocketFd socket)
      : port_(port), io_(io), socket_(std::move(socket)) {}

  int port_ = 0;
  SocketIo* io_ = nullptr;
  SocketFd socket_;
  FrameDecoder decoder_;
};

}  // namespace aneci::serve

#endif  // ANECI_SERVE_CLIENT_H_

// Socket-free serving core: EmbedService owns the QueryEngine and the swap
// path; ServeSession is one connection's protocol state machine. Both are
// byte-in / byte-out, so the protocol fuzz tests and the golden e2e test
// exercise the exact production code paths without opening a socket — the
// EmbedServer socket pump is a thin shell around them.
#ifndef ANECI_SERVE_SERVICE_H_
#define ANECI_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/query_engine.h"
#include "serve/wire.h"
#include "util/env.h"
#include "util/status.h"

namespace aneci::serve {

/// Bounded pending-request budget shared by every session of one server.
/// When the budget is exhausted, new requests are shed with a typed
/// "overloaded" error instead of queueing unboundedly — an overloaded
/// server degrades by answering fast-and-negative, never by stalling
/// everyone. budget <= 0 means unbounded (admit everything).
class AdmissionController {
 public:
  explicit AdmissionController(int budget) : budget_(budget) {}

  /// Claims `n` slots; false (and no slots) if that would exceed the budget.
  bool TryAcquire(int n = 1) {
    if (budget_ <= 0) return true;
    int current = in_flight_.load(std::memory_order_relaxed);
    while (true) {
      if (current + n > budget_) return false;
      if (in_flight_.compare_exchange_weak(current, current + n,
                                           std::memory_order_acq_rel))
        return true;
    }
  }

  void Release(int n = 1) {
    if (budget_ > 0) in_flight_.fetch_sub(n, std::memory_order_acq_rel);
  }

  int in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  int budget() const { return budget_; }

 private:
  const int budget_;
  std::atomic<int> in_flight_{0};
};

/// Per-session knobs, all optional. The defaults reproduce the pre-existing
/// behaviour exactly (admit everything, enforce no deadlines).
struct SessionOptions {
  /// Shared pending-request budget; nullptr admits everything.
  AdmissionController* admission = nullptr;
  /// Monotonic-ms time source used to stamp request arrival and check
  /// "deadline_ms" budgets. Empty uses the real clock
  /// (serve::MonotonicMs); tests inject fakes to step time deterministically.
  std::function<double()> now_ms;
};

/// The shared serving state: one QueryEngine plus the artifact-loading swap
/// path. Thread-safe; one instance is shared by every connection.
class EmbedService {
 public:
  /// Starts serving `initial` as snapshot version `initial->version()`.
  explicit EmbedService(std::shared_ptr<const ModelSnapshot> initial,
                        Env* env = nullptr);

  /// Loads the artifact at `path`, stamps it with the next version number,
  /// and atomically publishes it. In-flight queries keep the old snapshot.
  StatusOr<std::shared_ptr<const ModelSnapshot>> SwapFromFile(
      const std::string& path);

  /// Publishes an in-memory artifact (the streaming refresh path) with the
  /// next version number. `source` is a label echoed by stats/swap, e.g.
  /// "stream:batch=7". Same swap semantics as SwapFromFile, no disk I/O.
  std::shared_ptr<const ModelSnapshot> SwapFromArtifact(ModelArtifact artifact,
                                                        std::string source);

  QueryEngine& engine() { return engine_; }
  const QueryEngine& engine() const { return engine_; }

  /// The version the next successful swap will publish.
  uint64_t next_version() const;

 private:
  QueryEngine engine_;
  Env* const env_;
  std::atomic<uint64_t> next_version_;
};

/// One connection's protocol state machine. Feed raw bytes in, read
/// response bytes out. Framing violations (zero/oversized length prefix)
/// latch the session closed; per-request errors (bad JSON, unknown op,
/// out-of-range id, failed swap) produce an error frame and keep going.
class ServeSession {
 public:
  explicit ServeSession(EmbedService* service, SessionOptions options = {});

  /// Consumes a chunk of request bytes, appending any complete responses
  /// (length-prefixed frames, in request order) to the output buffer.
  /// Pipelined query frames that arrive in one chunk are executed as a
  /// single QueryEngine::ExecuteBatch through the thread pool; swap frames
  /// are ordering barriers (queries before a swap answer pre-swap, queries
  /// after it answer post-swap).
  void Consume(std::string_view bytes);

  /// Response bytes ready to write; clears the internal buffer.
  std::string TakeOutput();

  /// True once the session hit a framing violation; the transport should
  /// flush TakeOutput() (it ends with an error frame) and close.
  bool closed() const { return closed_; }

  /// True if the peer disconnected mid-frame (partial bytes pending).
  /// Informational — used by the server to count dirty disconnects.
  bool mid_frame() const { return decoder_.pending_bytes() > 0; }

 private:
  /// One admitted-but-not-yet-executed query plus its arrival stamp.
  struct PendingQuery {
    QueryRequest query;
    double arrival_ms = 0.0;
  };

  void FlushBatch(std::vector<PendingQuery>* batch);

  EmbedService* const service_;
  SessionOptions options_;
  FrameDecoder decoder_;
  std::string output_;
  bool closed_ = false;
};

}  // namespace aneci::serve

#endif  // ANECI_SERVE_SERVICE_H_

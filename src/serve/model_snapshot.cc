#include "serve/model_snapshot.h"

namespace aneci::serve {

StatusOr<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::Load(
    const std::string& path, uint64_t version, Env* env) {
  ANECI_ASSIGN_OR_RETURN(ModelArtifact artifact, LoadModelArtifact(path, env));
  return std::shared_ptr<const ModelSnapshot>(
      new ModelSnapshot(std::move(artifact), version, path));
}

}  // namespace aneci::serve

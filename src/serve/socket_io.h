// The audited raw-I/O shim for the serving layer. This is the ONLY file in
// src/ allowed to touch socket system calls — aneci_lint's banned-raw-io
// check flags socket/bind/listen/accept/connect/recv/send/... anywhere else
// under src/, the same way file I/O is confined to util/env.cc. Everything
// here returns Status; no errno leaks past this boundary.
//
// Scope is deliberately loopback-only: the embed server binds 127.0.0.1 and
// is meant to sit behind a real RPC front end in production (docs/serving.md
// §5 covers the trust model).
#ifndef ANECI_SERVE_SOCKET_IO_H_
#define ANECI_SERVE_SOCKET_IO_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace aneci::serve {

/// Owning socket file descriptor. Move-only; closes on destruction.
class SocketFd {
 public:
  SocketFd() = default;
  explicit SocketFd(int fd) : fd_(fd) {}
  ~SocketFd() { Close(); }

  SocketFd(SocketFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  SocketFd& operator=(SocketFd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  SocketFd(const SocketFd&) = delete;
  SocketFd& operator=(const SocketFd&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
/// port). On success `*bound_port` holds the actual port.
StatusOr<SocketFd> ListenOnLoopback(int port, int* bound_port);

/// Blocks until a client connects. Returns IoError if the listener was
/// closed (the server's shutdown path) or the accept fails.
StatusOr<SocketFd> AcceptConnection(const SocketFd& listener);

/// Connects to 127.0.0.1:`port`.
StatusOr<SocketFd> ConnectToLoopback(int port);

/// Reads up to `capacity` bytes. Returns the bytes read; an empty string
/// means orderly EOF (peer closed). Retries EINTR internally.
StatusOr<std::string> SocketRead(const SocketFd& socket, size_t capacity);

/// Writes all of `bytes`, looping over short writes. Retries EINTR.
Status SocketWriteAll(const SocketFd& socket, std::string_view bytes);

/// Half-closes the write side (client signals "no more requests" while
/// still draining responses).
Status ShutdownWrite(const SocketFd& socket);

/// Shuts down both directions, unblocking any thread parked in recv() on
/// the socket (the server's Stop() path uses this to unwind connection
/// threads whose clients are still connected).
Status ShutdownBoth(const SocketFd& socket);

}  // namespace aneci::serve

#endif  // ANECI_SERVE_SOCKET_IO_H_

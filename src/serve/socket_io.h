// The audited raw-I/O seam for the serving layer. socket_io.cc is the ONLY
// file in src/ allowed to touch socket system calls — aneci_lint's
// banned-raw-io check flags socket/bind/listen/accept/connect/recv/send/
// poll/fcntl/... anywhere else under src/, the same way file I/O is confined
// to util/env.cc. Everything here returns Status; no errno leaks past this
// boundary.
//
// The seam is an injectable interface (`SocketIo`), mirroring util/env.h:
// the production `SocketIo::Default()` talks POSIX, and
// `FaultInjectingSocketIo` wraps any SocketIo to inject transport faults
// (short reads, delayed reads, connection resets, mid-frame disconnects) on
// a deterministic seeded schedule, so the chaos tests and `bench_serve_load
// --chaos` can measure degradation instead of asserting only the happy path.
//
// Deadlines are poll-based and confined to this shim: every Read/WriteAll
// takes a `deadline_ms` budget (<= 0 blocks forever) and surfaces a typed
// Status::DeadlineExceeded when it runs out, which is how the server reaps
// slow-loris clients without hanging a connection thread.
//
// Scope is deliberately loopback-only: the embed server binds 127.0.0.1 and
// is meant to sit behind a real RPC front end in production (docs/serving.md
// §5 covers the trust model).
#ifndef ANECI_SERVE_SOCKET_IO_H_
#define ANECI_SERVE_SOCKET_IO_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "util/rng.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace aneci::serve {

/// Owning socket file descriptor. Move-only; closes on destruction.
/// Close() is idempotent and self-move-assignment is a no-op (both are
/// pinned by tests/serve_protocol_test.cc).
class SocketFd {
 public:
  SocketFd() = default;
  explicit SocketFd(int fd) : fd_(fd) {}
  ~SocketFd() { Close(); }

  SocketFd(SocketFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  SocketFd& operator=(SocketFd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  SocketFd(const SocketFd&) = delete;
  SocketFd& operator=(const SocketFd&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// Monotonic milliseconds since an arbitrary epoch — the serving layer's
/// deadline clock. Defined here (not util/timer.h) so the one blessed
/// time source for request deadlines lives at the same audited boundary as
/// the syscalls it gates.
double MonotonicMs();

/// The socket transport interface. One process-wide Default() instance
/// talks POSIX; tests substitute a FaultInjectingSocketIo. All methods are
/// thread-safe (the implementations hold no per-call state beyond the fds
/// the caller owns).
class SocketIo {
 public:
  virtual ~SocketIo() = default;

  /// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
  /// port). On success `*bound_port` holds the actual port.
  virtual StatusOr<SocketFd> Listen(int port, int* bound_port);

  /// Blocks until a client connects. Returns IoError if the listener was
  /// closed (the server's shutdown path) or the accept fails.
  virtual StatusOr<SocketFd> Accept(const SocketFd& listener);

  /// Connects to 127.0.0.1:`port`.
  virtual StatusOr<SocketFd> Connect(int port);

  /// Reads up to `capacity` bytes. Returns the bytes read; an empty string
  /// means orderly EOF (peer closed). Retries EINTR internally. With
  /// `deadline_ms` > 0, waits at most that long for readability and returns
  /// Status::DeadlineExceeded if nothing arrives in time.
  virtual StatusOr<std::string> Read(const SocketFd& socket, size_t capacity,
                                     int deadline_ms = 0);

  /// Writes all of `bytes`, looping over short writes. Retries EINTR. With
  /// `deadline_ms` > 0, each blocked wait for writability is bounded and a
  /// stalled peer surfaces as Status::DeadlineExceeded.
  virtual Status WriteAll(const SocketFd& socket, std::string_view bytes,
                          int deadline_ms = 0);

  /// Half-closes the read side (the server's graceful-drain path: a blocked
  /// reader on this fd sees EOF, finishes in-flight work, and exits).
  virtual Status ShutdownRead(const SocketFd& socket);

  /// Half-closes the write side (client signals "no more requests" while
  /// still draining responses).
  virtual Status ShutdownWrite(const SocketFd& socket);

  /// Shuts down both directions, unblocking any thread parked in recv() on
  /// the socket (the server's hard-stop path uses this to unwind connection
  /// threads whose clients are still connected).
  virtual Status ShutdownBoth(const SocketFd& socket);

  /// Process-wide default transport (plain POSIX loopback sockets).
  static SocketIo* Default();
};

/// A deterministic seeded fault schedule, the transport analogue of
/// util/env.h's FaultPlan. Probabilistic members draw from one xoshiro
/// stream per FaultInjectingSocketIo (mutex-serialised, so a given seed
/// yields one reproducible fault sequence for a given call order); the
/// `*_at` members target the Nth read/write exactly (0-based, -1 = off) for
/// pinpoint unit tests.
struct SocketFaultSchedule {
  uint64_t seed = 0;

  /// Probability a Read is truncated to at most 8 bytes (exercises
  /// byte-at-a-time frame reassembly on real sockets).
  double short_read = 0.0;
  /// Probability a Read is delayed by `delay_ms` before touching the fd
  /// (slow peer; lets server-side read deadlines fire).
  double delayed_read = 0.0;
  int delay_ms = 5;
  /// Probability a Read fails with an injected ECONNRESET. The socket is
  /// also shut down so the peer observes the drop.
  double reset_read = 0.0;
  /// Probability a WriteAll fails with an injected ECONNRESET before any
  /// byte is sent.
  double reset_write = 0.0;
  /// Probability a WriteAll sends only a prefix and then drops the
  /// connection — a mid-frame disconnect as seen by the peer.
  double partial_write = 0.0;

  /// Targeted one-shot faults against the Nth Read/WriteAll call (0-based).
  int reset_read_at = -1;
  int reset_write_at = -1;
  int partial_write_at = -1;
  size_t partial_write_bytes = 2;
};

/// Wraps a base transport and injects the scheduled faults. Thread-safe;
/// shareable by every connection of one server or client fleet. Injected
/// failures come back as Status::IoError("injected ECONNRESET...") so call
/// sites exercise exactly the paths a real reset would take.
class FaultInjectingSocketIo final : public SocketIo {
 public:
  explicit FaultInjectingSocketIo(SocketFaultSchedule schedule,
                                  SocketIo* base = SocketIo::Default())
      : base_(base), schedule_(schedule), rng_(schedule.seed) {}

  StatusOr<SocketFd> Listen(int port, int* bound_port) override;
  StatusOr<SocketFd> Accept(const SocketFd& listener) override;
  StatusOr<SocketFd> Connect(int port) override;
  StatusOr<std::string> Read(const SocketFd& socket, size_t capacity,
                             int deadline_ms = 0) override;
  Status WriteAll(const SocketFd& socket, std::string_view bytes,
                  int deadline_ms = 0) override;
  Status ShutdownRead(const SocketFd& socket) override;
  Status ShutdownWrite(const SocketFd& socket) override;
  Status ShutdownBoth(const SocketFd& socket) override;

  /// Reads/writes observed so far (faulted calls count).
  int reads() const;
  int writes() const;
  /// Faults injected so far, across all kinds.
  int injected_faults() const;

 private:
  /// One fault decision. Guarded by mu_ so a seed gives one reproducible
  /// fault stream for a given call order.
  enum class ReadFault { kNone, kShort, kDelay, kReset };
  enum class WriteFault { kNone, kReset, kPartial };
  ReadFault NextReadFault();
  WriteFault NextWriteFault();

  SocketIo* const base_;
  const SocketFaultSchedule schedule_;
  mutable std::mutex mu_;
  Rng rng_ ANECI_GUARDED_BY(mu_);
  int reads_ ANECI_GUARDED_BY(mu_) = 0;
  int writes_ ANECI_GUARDED_BY(mu_) = 0;
  int injected_ ANECI_GUARDED_BY(mu_) = 0;
};

}  // namespace aneci::serve

#endif  // ANECI_SERVE_SOCKET_IO_H_
